"""Structured run results — the typed return value of every run loop.

``Simulation.run`` used to return bare wall-clock seconds and
``ResilientRunner.run`` its own ``RunReport``; callers stitching the two
together (benchmarks, the serve layer, tests) had to know which ad-hoc
value they were holding.  :class:`RunResult` unifies them: one frozen
record per ``run`` call carrying the steps advanced, the wall time, the
backend/execution mode that did the work, the measured MLUPS and — for
resilient runs — the full degradation/retry summary
(:class:`~repro.resilience.runner.RunReport`) under :attr:`report`.

``float(result)`` still yields the wall seconds, so arithmetic on the
old return value keeps working during migration; new code should read
the named fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["RunResult"]


@dataclass(frozen=True)
class RunResult:
    """Outcome of one ``run`` call (plain or resilient).

    Attributes
    ----------
    steps:
        Coarse steps advanced by *this* call.
    final_step:
        Absolute ``steps_done`` after the call.
    seconds:
        Wall-clock seconds of this call.
    backend:
        Name of the execution backend that finished the run
        (``"interpreted"``, ``"compiled"``, ``"compiled-aa"``, ``"mp"``).
    mode:
        Execution mode at the end of the run: ``"serial"``,
        ``"threaded"`` or ``"mp"``.
    mlups:
        Measured MLUPS of this call (paper formula; ``0.0`` when the
        call advanced no steps or took no measurable time).
    metrics:
        A small snapshot of run accounting (traced kernels/steps,
        cumulative elapsed seconds).  Deliberately cheap — full metrics
        live in :func:`repro.obs.metrics.run_metrics`.
    report:
        The :class:`~repro.resilience.runner.RunReport` when the run was
        driven by a :class:`~repro.resilience.runner.ResilientRunner`
        (retries, rollbacks, degradation rungs); ``None`` for plain
        ``Simulation.run`` calls.
    """

    steps: int
    final_step: int
    seconds: float
    backend: str = "interpreted"
    mode: str = "serial"
    mlups: float = 0.0
    metrics: dict = field(default_factory=dict)
    report: Any | None = None

    @property
    def outcome(self) -> str:
        """``"ok"`` for plain runs; the resilient report's outcome otherwise."""
        return self.report.outcome if self.report is not None else "ok"

    def __float__(self) -> float:
        return float(self.seconds)

    def as_dict(self) -> dict:
        """JSON-ready digest (job results, bench payloads, CLI output)."""
        return {
            "steps": self.steps,
            "final_step": self.final_step,
            "seconds": self.seconds,
            "backend": self.backend,
            "mode": self.mode,
            "mlups": self.mlups,
            "outcome": self.outcome,
            "metrics": dict(self.metrics),
            "report": self.report.as_dict() if self.report is not None else None,
        }

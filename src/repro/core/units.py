"""LBM units, acoustic scaling and per-level relaxation (paper Section II-A).

All quantities are expressed in *LBM units* of the coarsest level:
``dx_0 = dt_0 = 1`` and ``c_s^2 = 1/3``.  A refinement ratio of two gives
``dx_L = dt_L = 2^{-L}`` (acoustic scaling keeps ``c_s`` constant across
levels), and demanding a level-independent kinematic viscosity yields the
paper's Equation (9) for the relaxation parameter ``omega_L``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .lattice import CS2

__all__ = [
    "omega_from_viscosity",
    "viscosity_from_omega",
    "omega_at_level",
    "tau_at_level",
    "FlowScales",
]


def omega_from_viscosity(nu: float) -> float:
    """Relaxation parameter ``omega = dt / tau`` on the coarsest level.

    From Eq. (4): ``tau = nu / c_s^2 + dt / 2`` with ``dt = 1``.
    """
    if nu <= 0:
        raise ValueError(f"kinematic viscosity must be positive, got {nu}")
    return 1.0 / (nu / CS2 + 0.5)


def viscosity_from_omega(omega: float) -> float:
    """Inverse of :func:`omega_from_viscosity` (Eq. 4 with dt = 1)."""
    if not 0.0 < omega < 2.0:
        raise ValueError(f"omega must lie in (0, 2) for positive viscosity, got {omega}")
    return CS2 * (1.0 / omega - 0.5)


def omega_at_level(omega0: float, level: int) -> float:
    """Equation (9): relaxation parameter on grid level ``level``.

    ``omega_L = 2 omega_0 / (2^{L+1} + (1 - 2^L) omega_0)`` keeps the
    physical viscosity identical on every level under acoustic scaling.
    """
    if level < 0:
        raise ValueError(f"level must be non-negative, got {level}")
    if not 0.0 < omega0 < 2.0:
        raise ValueError(f"omega0 must lie in (0, 2), got {omega0}")
    p = 2.0 ** level
    return 2.0 * omega0 / (2.0 * p + (1.0 - p) * omega0)


def tau_at_level(tau0: float, level: int) -> float:
    """Relaxation *time* on level ``level`` in that level's own time units.

    Derived in Section II-A:
    ``tau_L / dt_L = 2^L (tau_0 / dt_0) + (1 - 2^L) / 2``.
    """
    p = 2.0 ** level
    return p * tau0 + 0.5 * (1.0 - p)


@dataclass(frozen=True)
class FlowScales:
    """Non-dimensional bookkeeping for a simulation setup.

    Parameters
    ----------
    length:
        Characteristic length in *coarse* lattice units (e.g. the cavity
        edge or the sphere radius).
    velocity:
        Characteristic velocity in lattice units; must stay well below
        ``c_s`` for the weakly-compressible regime (Ma = u / c_s).
    reynolds:
        Target Reynolds number ``Re = U L / nu``.
    """

    length: float
    velocity: float
    reynolds: float

    def __post_init__(self) -> None:
        if self.length <= 0 or self.velocity <= 0 or self.reynolds <= 0:
            raise ValueError("length, velocity and reynolds must all be positive")

    @property
    def viscosity(self) -> float:
        """Kinematic viscosity in coarse lattice units."""
        return self.velocity * self.length / self.reynolds

    @property
    def omega0(self) -> float:
        """BGK relaxation parameter on the coarsest level."""
        return omega_from_viscosity(self.viscosity)

    @property
    def mach(self) -> float:
        """Mach number based on the lattice speed of sound."""
        return self.velocity / np.sqrt(CS2)

    def omega(self, level: int) -> float:
        """Relaxation parameter on an arbitrary level (Eq. 9)."""
        return omega_at_level(self.omega0, level)

"""The non-uniform time-stepping recursion (paper Algorithm 1).

One call to :meth:`NonUniformStepper.step` advances the *coarsest* level
by one time step; level ``L`` executes ``2^L`` substeps per coarse step
(acoustic scaling).  The recursion is identical for every
:class:`~repro.core.fusion.FusionConfig` — only the kernel grouping
changes, which is how the paper's Fig. 2 graphs are generated from the
very same driver.

*How* the step executes is delegated to a pluggable backend
(:mod:`repro.backend`): the interpreted reference backend re-drives the
recursion through ``Runtime.launch`` every step, the compiled backends
capture it once into a step plan and replay, and the mp backend ships
shards of that same captured plan to worker processes over shared
memory.  The recursion in :meth:`_advance` stays the single definition
of the algorithm either way — plans are captured *from* it (in this
process or a digest-checked worker), never re-implemented.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .engine import Engine
from .fusion import MODIFIED_BASELINE, FusionConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..backend import Backend

__all__ = ["NonUniformStepper"]


class NonUniformStepper:
    """Drives an :class:`~repro.core.engine.Engine` with Algorithm 1."""

    def __init__(self, engine: Engine, config: FusionConfig = MODIFIED_BASELINE,
                 backend: "Backend | None" = None) -> None:
        self.engine = engine
        self.config = config
        self.num_levels = engine.mgrid.num_levels
        self.steps_done = 0
        if backend is None:
            from ..backend.interpreted import InterpretedBackend
            backend = InterpretedBackend()
        #: Execution strategy for :meth:`step` (see :mod:`repro.backend`).
        self.backend = backend

    def step(self) -> None:
        """Advance the coarsest level by one time step.

        Execution is delegated to :attr:`backend`; every backend honours
        the same contract: one step marker per coarse step, and
        :meth:`~repro.neon.runtime.Runtime.abort_step` before a mid-step
        failure propagates, so span trees stay balanced and the trace
        remains exportable/valid.
        """
        self.backend.step(self)

    def run(self, n_steps: int, callback=None, callback_every: int = 1) -> None:
        """Run ``n_steps`` coarse steps, optionally invoking ``callback(self)``."""
        for k in range(n_steps):
            self.step()
            if callback is not None and (k + 1) % callback_every == 0:
                callback(self)

    def run_until(self, target: int, callback=None,
                  callback_every: int = 1) -> None:
        """Advance until ``steps_done`` reaches ``target`` (absolute count).

        A restored or rolled-back driver resumes toward the same goal
        without recomputing remainders; already-past targets are no-ops.
        """
        self.run(max(0, target - self.steps_done),
                 callback=callback, callback_every=callback_every)

    # -- Algorithm 1 -----------------------------------------------------------
    def _advance(self, lv: int) -> None:
        cfg = self.config
        eng = self.engine
        finest = lv == self.num_levels - 1
        halves = 1 if lv == 0 else 2
        for _ in range(halves):
            if finest and cfg.fuse_cs_finest:
                # Fig. 4f: the whole substep is one CASE kernel.
                eng.op_fused_case(lv)
            else:
                eng.op_collide(
                    lv,
                    fuse_accumulate=cfg.fuse_ca and lv > 0 and not cfg.original_layout)
                if lv > 0 and not (cfg.fuse_ca and not cfg.original_layout):
                    eng.op_accumulate(lv, gather=cfg.original_layout)
                if not finest:
                    self._advance(lv + 1)
                if lv > 0 and cfg.original_layout:
                    eng.op_explosion_copy(lv)
                # Streaming and the cross-level pulls.  Writes of S, E and O
                # target disjoint population entries, so they may execute in
                # any order (on the GPU they run concurrently, Fig. 2); the
                # engine applies the bulk gather first, then the patches.
                eng.op_stream(lv,
                              fuse_explosion=cfg.fuse_se,
                              fuse_coalescence=cfg.fuse_so,
                              exp_from_ghost=cfg.original_layout)
                if not cfg.fuse_se:
                    eng.op_explode(lv, exp_from_ghost=cfg.original_layout)
                if not cfg.fuse_so:
                    eng.op_coalesce(lv)

"""Collision operators: BGK (Eq. 3) and the entropic KBC model (Section II).

All operators act on population arrays of shape ``(Q, N)`` where ``N`` is
the number of cells of one grid level — the flat, structure-of-arrays view
produced by the block-sparse grid (Section V-A of the paper).  Operating on
whole levels at once keeps every kernel a handful of vectorised NumPy
passes, the CPU analogue of one CUDA kernel launch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .lattice import Lattice

__all__ = [
    "macroscopics",
    "density",
    "velocity",
    "pressure",
    "equilibrium",
    "guo_source",
    "CollisionModel",
    "BGK",
    "TRT",
    "KBC",
    "make_collision",
]


def density(lat: Lattice, f: np.ndarray) -> np.ndarray:
    """Fluid density, Eq. (6): ``rho = sum_i f_i``."""
    return f.sum(axis=0)


def velocity(lat: Lattice, f: np.ndarray, rho: np.ndarray | None = None) -> np.ndarray:
    """Fluid velocity, Eq. (7): ``u = (1/rho) sum_i e_i f_i``; shape ``(d, N)``."""
    if rho is None:
        rho = density(lat, f)
    mom = lat.ef.T @ f  # (d, N)
    return mom / rho


def pressure(lat: Lattice, f: np.ndarray) -> np.ndarray:
    """Fluid pressure, Eq. (8): ``p = c_s^2 rho``."""
    return lat.cs2 * density(lat, f)


def macroscopics(lat: Lattice, f: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Density and velocity in one pass over ``f``."""
    rho = density(lat, f)
    return rho, velocity(lat, f, rho)


def equilibrium(lat: Lattice, rho: np.ndarray, u: np.ndarray,
                out: np.ndarray | None = None) -> np.ndarray:
    """Second-order Maxwell-Boltzmann equilibrium, Eq. (5).

    Parameters
    ----------
    rho : shape ``(N,)``
    u : shape ``(d, N)``
    out : optional ``(Q, N)`` buffer written in place.
    """
    rho = np.asarray(rho, dtype=np.float64)
    u = np.asarray(u, dtype=np.float64)
    inv_cs2 = 1.0 / lat.cs2
    eu = lat.ef @ u                       # (Q, N) — e_i . u
    usq = np.einsum("dn,dn->n", u, u)     # |u|^2, shape (N,)
    if out is None:
        out = np.empty_like(eu)
    np.multiply(eu, inv_cs2, out=out)
    out += 0.5 * inv_cs2 * inv_cs2 * eu * eu
    out -= 0.5 * inv_cs2 * usq
    out += 1.0
    out *= lat.w[:, None] * rho
    return out


def guo_source(lat: Lattice, u: np.ndarray, force: np.ndarray,
               omega: float) -> np.ndarray:
    """Guo et al. (2002) forcing source term, shape ``(Q, N)``.

    ``S_i = (1 - omega/2) w_i [ (e_i - u)/c_s^2 + (e_i.u) e_i / c_s^4 ] . F``
    with ``F`` a constant body-force density vector of shape ``(d,)``.
    The matching velocity definition is handled by the caller: the
    equilibrium (and the macroscopic output) must use the half-force
    shifted velocity ``u = (sum e_i f_i + F/2) / rho``.
    """
    force = np.asarray(force, dtype=np.float64)
    inv_cs2 = 1.0 / lat.cs2
    eu = lat.ef @ u                                   # (Q, N)
    ef_dot_f = lat.ef @ force                          # (Q,)
    u_dot_f = force @ u                                # (N,)
    term = inv_cs2 * (ef_dot_f[:, None] - u_dot_f[None, :])
    term += inv_cs2 * inv_cs2 * eu * ef_dot_f[:, None]
    return (1.0 - 0.5 * omega) * lat.w[:, None] * term


@dataclass(frozen=True)
class CollisionModel:
    """Base class; subclasses implement :meth:`collide`.

    ``force`` is an optional constant body-force density vector ``(d,)``
    applied with the Guo scheme (second-order accurate forcing).
    """

    lattice: Lattice

    def collide(self, f: np.ndarray, omega: float,
                out: np.ndarray | None = None,
                force: np.ndarray | None = None) -> np.ndarray:
        raise NotImplementedError

    def _moments(self, f: np.ndarray, force: np.ndarray | None
                 ) -> tuple[np.ndarray, np.ndarray]:
        """Density and (half-force-shifted, if forced) velocity."""
        lat = self.lattice
        rho = f.sum(axis=0)
        mom = lat.ef.T @ f
        if force is not None:
            mom = mom + 0.5 * np.asarray(force, dtype=np.float64)[:, None]
        return rho, mom / rho

    @property
    def name(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class BGK(CollisionModel):
    """Single-relaxation-time Bhatnagar-Gross-Krook operator (Eq. 3)."""

    def collide(self, f: np.ndarray, omega: float,
                out: np.ndarray | None = None,
                force: np.ndarray | None = None) -> np.ndarray:
        lat = self.lattice
        rho, u = self._moments(f, force)
        feq = equilibrium(lat, rho, u)
        if out is None:
            out = np.empty_like(f)
        # f* = (1 - omega) f + omega feq (+ Guo source)
        np.multiply(f, 1.0 - omega, out=out)
        out += omega * feq
        if force is not None:
            out += guo_source(lat, u, force, omega)
        return out


@dataclass(frozen=True)
class TRT(CollisionModel):
    """Two-relaxation-time operator (Ginzburg; d'Humieres & Ginzburg).

    Populations split into even/odd parts about direction reversal:
    ``f+ = (f_i + f_ibar)/2`` relaxes with the viscosity rate ``omega``
    while ``f- = (f_i - f_ibar)/2`` relaxes with ``omega_minus`` chosen
    through the *magic parameter*
    ``Lambda = (1/omega - 1/2)(1/omega_minus - 1/2)``.
    The default ``Lambda = 3/16`` places halfway bounce-back walls
    exactly on the link midpoint, making channel flows grid-exact —
    a well-known robustness upgrade over BGK at no extra memory.
    """

    magic: float = 3.0 / 16.0

    def __post_init__(self) -> None:
        if self.magic <= 0:
            raise ValueError("the magic parameter must be positive")

    def omega_minus(self, omega: float) -> float:
        lam_plus = 1.0 / omega - 0.5
        return 1.0 / (self.magic / lam_plus + 0.5)

    def collide(self, f: np.ndarray, omega: float,
                out: np.ndarray | None = None,
                force: np.ndarray | None = None) -> np.ndarray:
        lat = self.lattice
        rho, u = self._moments(f, force)
        feq = equilibrium(lat, rho, u)
        fneq = f - feq
        fneq_rev = fneq[lat.opp]
        plus = 0.5 * (fneq + fneq_rev)
        minus = 0.5 * (fneq - fneq_rev)
        om = self.omega_minus(omega)
        if out is None:
            out = np.empty_like(f)
        np.subtract(f, omega * plus + om * minus, out=out)
        if force is not None:
            # each parity of the Guo source relaxes with its own rate:
            # the odd part (the force itself) with omega_minus, the even
            # part (the u.F corrections) with omega
            raw = guo_source(lat, u, force, omega=0.0)
            raw_rev = raw[lat.opp]
            even = 0.5 * (raw + raw_rev)
            odd = 0.5 * (raw - raw_rev)
            out += (1.0 - 0.5 * omega) * even + (1.0 - 0.5 * om) * odd
        return out


# Index bookkeeping for the KBC shear-part decomposition.  The shear part
# s_i of the population in direction e_i depends only on the non-equilibrium
# momentum-flux tensor Pi = sum_i e_i e_i (f_i - f_i^eq); see Karlin, Bösch
# and Chikatamarla, Phys. Rev. E 90 (2014) — and the per-cell stabiliser
# gamma is computed from the entropic scalar product.
def _kbc_shear_tables(lat: Lattice):
    """Precompute direction groups for the D3Q27/D2Q9 shear decomposition."""
    e = lat.e
    groups = {
        "x": [], "y": [], "z": [],        # axis-aligned, speed 1
        "xy+": [], "xy-": [],             # planar diagonals
        "xz+": [], "xz-": [],
        "yz+": [], "yz-": [],
    }
    d = lat.d
    for i, v in enumerate(e.tolist()):
        nz = [k for k, c in enumerate(v) if c != 0]
        if len(nz) == 1:
            groups["xyz"[nz[0]]].append(i)
        elif len(nz) == 2 and d >= 2:
            a, b = nz
            key = "xyz"[a] + "xyz"[b]
            sign = "+" if v[a] * v[b] > 0 else "-"
            if key in ("xy", "xz", "yz"):
                groups[key + sign].append(i)
    return groups


@dataclass(frozen=True)
class KBC(CollisionModel):
    """Entropic multi-relaxation KBC operator (Karlin-Bösch-Chikatamarla).

    The population is split as ``f = k + s + h`` (conserved, shear,
    higher-order parts).  Shear relaxes with ``2 beta = omega`` while the
    higher-order part relaxes with a per-cell entropic stabiliser
    ``gamma``; where the higher-order deviation vanishes the operator
    degenerates smoothly to BGK (``gamma = 2``).  Compatible with D3Q27
    (the paper's turbulent runs) and, for testing, D2Q9.
    """

    def __post_init__(self) -> None:
        if self.lattice.d == 3 and self.lattice.q != 27:
            raise ValueError("KBC in 3D requires the D3Q27 lattice")
        object.__setattr__(self, "_groups", _kbc_shear_tables(self.lattice))

    def _delta_s(self, fneq: np.ndarray) -> np.ndarray:
        """Shear part of the non-equilibrium populations, shape (Q, N)."""
        lat = self.lattice
        e = lat.ef
        g = self._groups
        ds = np.zeros_like(fneq)
        if lat.d == 3:
            pi = np.einsum("qa,qb,qn->abn", e, e, fneq)
            nxz = pi[0, 0] - pi[2, 2]
            nyz = pi[1, 1] - pi[2, 2]
            ds[g["x"]] = (2.0 * nxz - nyz) / 6.0
            ds[g["y"]] = (-nxz + 2.0 * nyz) / 6.0
            ds[g["z"]] = (-nxz - nyz) / 6.0
            ds[g["xy+"]] = pi[0, 1] / 4.0
            ds[g["xy-"]] = -pi[0, 1] / 4.0
            ds[g["xz+"]] = pi[0, 2] / 4.0
            ds[g["xz-"]] = -pi[0, 2] / 4.0
            ds[g["yz+"]] = pi[1, 2] / 4.0
            ds[g["yz-"]] = -pi[1, 2] / 4.0
        else:  # D2Q9
            pi = np.einsum("qa,qb,qn->abn", e, e, fneq)
            n = pi[0, 0] - pi[1, 1]
            ds[g["x"]] = n / 4.0
            ds[g["y"]] = -n / 4.0
            ds[g["xy+"]] = pi[0, 1] / 4.0
            ds[g["xy-"]] = -pi[0, 1] / 4.0
        return ds

    def collide(self, f: np.ndarray, omega: float,
                out: np.ndarray | None = None,
                force: np.ndarray | None = None) -> np.ndarray:
        lat = self.lattice
        beta = 0.5 * omega
        rho, u = self._moments(f, force)
        feq = equilibrium(lat, rho, u)
        fneq = f - feq
        ds = self._delta_s(fneq)
        dh = fneq - ds
        # Entropic scalar products <x|y> = sum_i x_i y_i / feq_i.
        inv_feq = 1.0 / feq
        sh = np.einsum("qn,qn->n", ds * inv_feq, dh)
        hh = np.einsum("qn,qn->n", dh * inv_feq, dh)
        inv_beta = 1.0 / beta
        gamma = np.full_like(hh, 2.0)
        mask = hh > 1e-30
        np.divide(sh, hh, out=sh, where=mask)
        gamma[mask] = inv_beta - (2.0 - inv_beta) * sh[mask]
        if out is None:
            out = np.empty_like(f)
        np.subtract(f, beta * (2.0 * ds + gamma[None, :] * dh), out=out)
        if force is not None:
            out += guo_source(lat, u, force, omega)
        return out


def make_collision(model: str, lat: Lattice) -> CollisionModel:
    """Factory: ``model`` is ``"bgk"``, ``"trt"`` or ``"kbc"``."""
    key = model.lower()
    if key == "bgk":
        return BGK(lat)
    if key == "trt":
        return TRT(lat)
    if key == "kbc":
        return KBC(lat)
    raise KeyError(
        f"unknown collision model {model!r}; choose 'bgk', 'trt' or 'kbc'")

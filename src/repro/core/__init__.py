"""Core LBM: lattices, collision, units, engine, fusion variants, stepper."""

from .amr import legalize_regions, regrid, vorticity_indicator
from .collision import (BGK, KBC, TRT, CollisionModel, equilibrium, guo_source,
                        macroscopics, make_collision)
from .config import SimConfig
from .diagnostics import (drag_coefficient, enstrophy_2d, kinetic_energy,
                          solid_force)
from .engine import Engine
from .fusion import (ABLATION_CONFIGS, FUSE_CA, FUSE_CA_SE_SO, FUSE_SE, FUSE_SO,
                     FUSED_FULL, MODIFIED_BASELINE, ORIGINAL_BASELINE, FusionConfig,
                     get_config)
from .lattice import D2Q9, D3Q19, D3Q27, Lattice, get_lattice
from .results import RunResult
from .simulation import Simulation, mlups
from .stepper import NonUniformStepper
from .units import (FlowScales, omega_at_level, omega_from_viscosity, tau_at_level,
                    viscosity_from_omega)

__all__ = [
    "legalize_regions", "regrid", "vorticity_indicator",
    "BGK", "KBC", "TRT", "CollisionModel", "equilibrium", "guo_source",
    "macroscopics", "make_collision",
    "drag_coefficient", "enstrophy_2d", "kinetic_energy", "solid_force",
    "Engine", "NonUniformStepper", "RunResult", "SimConfig", "Simulation", "mlups",
    "ABLATION_CONFIGS", "FUSE_CA", "FUSE_CA_SE_SO", "FUSE_SE", "FUSE_SO",
    "FUSED_FULL", "MODIFIED_BASELINE", "ORIGINAL_BASELINE", "FusionConfig",
    "get_config",
    "D2Q9", "D3Q19", "D3Q27", "Lattice", "get_lattice",
    "FlowScales", "omega_at_level", "omega_from_viscosity", "tau_at_level",
    "viscosity_from_omega",
]

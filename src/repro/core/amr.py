"""Adaptive mesh refinement — the paper's stated future work (Section VII).

The paper closes with: "we foresee promising research opportunities in
Adaptive Mesh Refinement (AMR) for LBM, enabling dynamic grid resolution
adjustments during runtime".  This module provides that capability on
top of the static multi-resolution machinery:

* :func:`legalize_regions` — turn an arbitrary "I want the finest
  resolution here" indicator into nested, octree-aligned refinement
  regions that satisfy every constraint ``build_multigrid`` enforces
  (ΔL = 1, ghost-children clearance);
* :func:`vorticity_indicator` — the classic feature sensor;
* :func:`regrid` — rebuild the grid for new regions and transfer the
  solution (conservative block-mean restriction of the macroscopic
  fields followed by re-equilibration; the non-equilibrium part is
  rebuilt within a few relaxation times).
"""

from __future__ import annotations

import numpy as np

from ..grid.multigrid import RefinementSpec, _dilate
from .simulation import Simulation

__all__ = ["legalize_regions", "vorticity_indicator", "regrid"]


def _coarsen_any(mask: np.ndarray) -> np.ndarray:
    """Parent cells containing at least one flagged child (factor 2)."""
    d = mask.ndim
    if any(s % 2 for s in mask.shape):
        raise ValueError(f"mask shape {mask.shape} is not even")
    shape = []
    for s in mask.shape:
        shape.extend((s // 2, 2))
    view = mask.reshape(shape)
    return view.any(axis=tuple(range(1, 2 * d, 2)))


def _block_mean(arr: np.ndarray, factor: int) -> np.ndarray:
    """Mean over non-overlapping ``factor^d`` blocks."""
    if factor == 1:
        return arr
    d = arr.ndim
    shape = []
    for s in arr.shape:
        if s % factor:
            raise ValueError(f"axis of length {s} not divisible by {factor}")
        shape.extend((s // factor, factor))
    view = arr.reshape(shape)
    return view.mean(axis=tuple(range(1, 2 * d, 2)))


def legalize_regions(desired_finest: np.ndarray, num_levels: int,
                     periodic: list[bool] | None = None) -> list[np.ndarray]:
    """Legal nested refine regions covering ``desired_finest``.

    ``desired_finest`` is a boolean array at the finest resolution
    (shape ``base * 2^(L-1)``) flagging where level ``L-1`` must exist;
    ``periodic`` flags wrap-around axes so clearance is kept across seams.
    Working from fine to coarse, each coarser region is the parent set
    dilated by two cells — enough clearance for both the max-jump and
    the ghost-children constraints of ``build_multigrid``.  Raises if
    the indicator is empty (use a uniform grid instead).
    """
    desired = np.asarray(desired_finest, dtype=bool)
    if num_levels < 2:
        raise ValueError("legalize_regions needs at least two levels")
    if not desired.any():
        raise ValueError("empty indicator: nothing to refine")
    regions: list[np.ndarray] = [None] * (num_levels - 1)
    cur = desired
    for k in range(num_levels - 2, -1, -1):
        parents = _coarsen_any(cur)
        parents = _dilate(parents, 2, periodic)  # clearance for DL=1 + ghosts
        regions[k] = parents
        cur = parents
    return regions


def vorticity_indicator(sim: Simulation, fraction: float = 0.2) -> np.ndarray:
    """Cells (finest resolution) whose vorticity exceeds ``fraction`` of max.

    Vorticity is evaluated on the composite finest-resolution velocity
    field with central differences; solid cells never flag.
    """
    from ..io.sampling import composite_fields
    if not 0.0 < fraction < 1.0:
        raise ValueError("fraction must lie in (0, 1)")
    _, u = composite_fields(sim)
    u = np.nan_to_num(u)
    d = sim.mgrid.d
    if d == 2:
        dvdx = np.gradient(u[1], axis=0)
        dudy = np.gradient(u[0], axis=1)
        mag = np.abs(dvdx - dudy)
    else:
        wx = np.gradient(u[2], axis=1) - np.gradient(u[1], axis=2)
        wy = np.gradient(u[0], axis=2) - np.gradient(u[2], axis=0)
        wz = np.gradient(u[1], axis=0) - np.gradient(u[0], axis=1)
        mag = np.sqrt(wx * wx + wy * wy + wz * wz)
    peak = mag.max()
    if peak == 0.0:
        return np.zeros_like(mag, dtype=bool)
    return mag >= fraction * peak


def regrid(sim: Simulation, desired_finest: np.ndarray | None = None,
           regions: list[np.ndarray] | None = None) -> Simulation:
    """Rebuild the simulation on new refinement regions, keeping the flow.

    Exactly one of ``desired_finest`` (legalised automatically) or
    explicit ``regions`` must be given.  The level count, boundary
    conditions, solid, collision model, relaxation and fusion config are
    preserved.  The macroscopic state transfers by conservative
    block-mean restriction of the composite fields; populations restart
    at the corresponding equilibrium.
    """
    from ..io.sampling import composite_fields
    if (desired_finest is None) == (regions is None):
        raise ValueError("pass exactly one of desired_finest / regions")
    old_spec = sim.mgrid.spec
    if regions is None:
        regions = legalize_regions(desired_finest, sim.num_levels,
                                   old_spec.bc.periodic_axes(sim.mgrid.d))
    new_spec = RefinementSpec(
        base_shape=old_spec.base_shape, refine_regions=regions,
        solid=old_spec.solid, bc=old_spec.bc,
        block_size=old_spec.block_size, curve=old_spec.curve)

    # The old simulation's SimConfig carries collision/relaxation/fusion/
    # dtype/force verbatim; only the domain (the spec) changes.
    new_sim = Simulation.from_config(new_spec, sim.sim_config)

    rho_f, u_f = composite_fields(sim)
    rho_f = np.nan_to_num(rho_f, nan=1.0)
    u_f = np.nan_to_num(u_f)
    lmax = new_sim.num_levels - 1
    from .collision import equilibrium
    for lv, buf in enumerate(new_sim.engine.levels):
        factor = 2 ** (lmax - lv)
        rho_lv = _block_mean(rho_f, factor)
        u_lv = np.stack([_block_mean(u_f[a], factor)
                         for a in range(sim.mgrid.d)])
        pos = buf.positions
        rho = rho_lv[tuple(pos.T)]
        u = u_lv[(slice(None),) + tuple(pos.T)]
        feq = equilibrium(new_sim.lattice, rho, u)
        buf.f[:, :buf.n_owned] = feq
        buf.fstar[:, :buf.n_owned] = feq
        buf.ghost_acc[:] = 0.0
    new_sim.stepper.steps_done = sim.steps_done
    return new_sim

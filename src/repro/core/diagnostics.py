"""Flow diagnostics: obstacle forces, energy budgets, drag coefficients.

The wind-tunnel experiments (paper Figs. 1 and 8) are ultimately about
aerodynamic loads; this module computes them from the running engine via
the momentum-exchange method (Ladd [27], the same halfway-bounce-back
framework the paper uses for its no-slip obstacles).
"""

from __future__ import annotations

import numpy as np

from .engine import Engine

__all__ = ["solid_force", "drag_coefficient", "kinetic_energy", "enstrophy_2d"]


def solid_force(engine: Engine) -> np.ndarray:
    """Instantaneous hydrodynamic force on the solid obstacles.

    Momentum-exchange over every fluid-solid link: the population
    ``f*_i`` about to hit the wall bounces back, transferring ``2 e_i
    f*_i`` of momentum per link and substep.  Contributions are
    volume-weighted per level (a level-L link carries ``2^{-Ld}`` of
    mass) and rated per *coarse* time unit (a level-L link fires ``2^L``
    times per coarse step).  Returned in coarse lattice units; uses the
    current post-collision state, so call it right after a step.
    """
    lat = engine.lat
    d = engine.mgrid.d
    force = np.zeros(d)
    for lv, buf in enumerate(engine.levels):
        if buf.sb_q.size == 0:
            continue
        # populations pointing INTO the wall: direction opp(q) at the cell
        fs = buf.fstar[buf.sb_opp, buf.sb_cell]
        weight = (0.5 ** lv) ** d * (2 ** lv)
        force += weight * 2.0 * (fs[:, None] * buf.sb_e).sum(axis=0)
    return force


def drag_coefficient(force_axial: float, rho: float, speed: float,
                     frontal_area: float) -> float:
    """Standard drag coefficient ``C_d = F / (0.5 rho U^2 A)``."""
    if speed <= 0 or frontal_area <= 0 or rho <= 0:
        raise ValueError("rho, speed and frontal_area must be positive")
    return force_axial / (0.5 * rho * speed * speed * frontal_area)


def kinetic_energy(engine: Engine) -> float:
    """Volume-weighted total kinetic energy ``sum 1/2 rho |u|^2 dV``."""
    total = 0.0
    for lv in range(engine.mgrid.num_levels):
        rho, u = engine.macroscopics(lv)
        vol = (0.5 ** lv) ** engine.mgrid.d
        total += 0.5 * vol * float((rho * (u * u).sum(axis=0)).sum())
    return total


def enstrophy_2d(sim) -> float:
    """Enstrophy ``1/2 integral omega^2 dA`` of a 2-D flow (finest grid)."""
    from ..io.sampling import composite_fields
    if sim.mgrid.d != 2:
        raise ValueError("enstrophy_2d needs a 2-D simulation")
    _, u = composite_fields(sim)
    u = np.nan_to_num(u)
    h = 0.5 ** (sim.num_levels - 1)
    w = (np.gradient(u[1], h, axis=0) - np.gradient(u[0], h, axis=1))
    return 0.5 * float((w * w).sum()) * h * h

"""Lattice descriptors for the LBM velocity sets used in the paper.

The paper (Section II) employs the three-dimensional D3Q19 and D3Q27
lattices; we additionally provide D2Q9 so the physics kernels can be
validated cheaply against analytic two-dimensional solutions
(Taylor-Green, Poiseuille).  A descriptor carries the discrete velocity
set ``e_i``, the quadrature weights ``w_i``, the opposite-direction
permutation used by bounce-back boundaries, and the constant lattice
speed of sound ``c_s^2 = 1/3`` (LBM units, ``dx = dt = 1``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

__all__ = ["Lattice", "D2Q9", "D3Q19", "D3Q27", "get_lattice"]

#: Lattice speed of sound squared in LBM units (Section II).
CS2 = 1.0 / 3.0


@dataclass(frozen=True)
class Lattice:
    """An LBM velocity set.

    Attributes
    ----------
    name:
        Conventional DdQq identifier, e.g. ``"D3Q19"``.
    e:
        Integer array of shape ``(q, d)`` with the discrete velocities.
        Direction 0 is always the rest velocity.
    w:
        Quadrature weights, shape ``(q,)``; they sum to one.
    opp:
        Permutation with ``e[opp[i]] == -e[i]``, used by bounce-back.
    """

    name: str
    e: np.ndarray
    w: np.ndarray
    opp: np.ndarray
    cs2: float = CS2
    # Cached float view of e used in hot loops.
    ef: np.ndarray = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        object.__setattr__(self, "e", np.ascontiguousarray(self.e, dtype=np.int64))
        object.__setattr__(self, "w", np.ascontiguousarray(self.w, dtype=np.float64))
        object.__setattr__(self, "opp", np.ascontiguousarray(self.opp, dtype=np.int64))
        object.__setattr__(self, "ef", self.e.astype(np.float64))
        self.e.setflags(write=False)
        self.w.setflags(write=False)
        self.opp.setflags(write=False)
        self.ef.setflags(write=False)

    @property
    def d(self) -> int:
        """Spatial dimension."""
        return int(self.e.shape[1])

    @property
    def q(self) -> int:
        """Number of discrete velocities."""
        return int(self.e.shape[0])

    def direction_index(self, vec) -> int:
        """Return the index ``i`` with ``e[i] == vec``.

        Raises ``KeyError`` when ``vec`` is not a lattice velocity.
        """
        vec = np.asarray(vec, dtype=np.int64)
        match = np.nonzero((self.e == vec).all(axis=1))[0]
        if match.size == 0:
            raise KeyError(f"{tuple(vec)} is not a velocity of {self.name}")
        return int(match[0])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Lattice({self.name})"


def _sorted_velocities(candidates) -> np.ndarray:
    """Deterministic direction ordering: rest first, then by speed, then lexicographic."""
    vecs = sorted(candidates, key=lambda v: (sum(c * c for c in v), v))
    return np.array(vecs, dtype=np.int64)


def _opposites(e: np.ndarray) -> np.ndarray:
    opp = np.empty(e.shape[0], dtype=np.int64)
    lut = {tuple(v): i for i, v in enumerate(e.tolist())}
    for i, v in enumerate(e.tolist()):
        opp[i] = lut[tuple(-c for c in v)]
    return opp


def _make(name: str, d: int, weight_by_speed: dict[int, float],
          keep) -> Lattice:
    cands = [v for v in itertools.product((-1, 0, 1), repeat=d) if keep(v)]
    e = _sorted_velocities(cands)
    speeds = (e * e).sum(axis=1)
    w = np.array([weight_by_speed[int(s)] for s in speeds], dtype=np.float64)
    return Lattice(name=name, e=e, w=w, opp=_opposites(e))


#: Two-dimensional nine-velocity lattice (validation only).
D2Q9 = _make(
    "D2Q9", 2,
    {0: 4.0 / 9.0, 1: 1.0 / 9.0, 2: 1.0 / 36.0},
    keep=lambda v: True,
)

#: The paper's default lattice for the BGK experiments (Section VI).
D3Q19 = _make(
    "D3Q19", 3,
    {0: 1.0 / 3.0, 1: 1.0 / 18.0, 2: 1.0 / 36.0},
    keep=lambda v: sum(c * c for c in v) <= 2,
)

#: Full 27-velocity lattice, required by the KBC collision model.
D3Q27 = _make(
    "D3Q27", 3,
    {0: 8.0 / 27.0, 1: 2.0 / 27.0, 2: 1.0 / 54.0, 3: 1.0 / 216.0},
    keep=lambda v: True,
)

_REGISTRY = {lat.name: lat for lat in (D2Q9, D3Q19, D3Q27)}


def get_lattice(name: str) -> Lattice:
    """Look a descriptor up by its conventional name (case-insensitive)."""
    key = name.upper()
    if key not in _REGISTRY:
        raise KeyError(f"unknown lattice {name!r}; choose from {sorted(_REGISTRY)}")
    return _REGISTRY[key]

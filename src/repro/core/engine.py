"""Execution engine: state buffers and the kernel bodies of every variant.

The engine owns, per level, the two population buffers (``f`` holds the
post-streaming state at the start of a substep, ``fstar`` the
post-collision state) and the ghost-layer accumulator, plus every
streaming map translated from grid slots to compact *row* space: rows
``0..n_owned-1`` are the owned cells, followed by the fine-ghost rows the
original baseline needs.  Each ``op_*`` method is one GPU kernel: it
executes vectorised NumPy immediately and emits one launch record with
the DRAM traffic the equivalent CUDA kernel would generate — this is what
the cost model consumes.

Fused kernels execute the same arithmetic as their unfused sequence (the
intermediate lives in the ``fstar`` buffer, playing the role of the GPU's
registers), so every fusion variant is bitwise-identical in results and
differs only in its launch/traffic trace — mirroring how kernel fusion
works on the device, where it eliminates intermediate DRAM round-trips
but not arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..grid.multigrid import CompiledLevel, MultiGrid
from ..neon.runtime import FieldRef, Runtime
from .collision import CollisionModel, equilibrium, macroscopics, make_collision
from .units import omega_at_level

__all__ = ["Engine", "LevelBuffers"]

#: Default sentinel for kernel-body inputs that may legitimately be None
#: (``force``): distinguishes "snapshot at call time" from an explicit value.
_EAGER = object()



@dataclass
class LevelBuffers:
    """Per-level state and row-space maps."""

    f: np.ndarray                 # (Q, n_used) post-streaming populations
    fstar: np.ndarray             # (Q, n_used) post-collision populations
    ghost_acc: np.ndarray         # (Q, n_ghost) Accumulate sums
    n_owned: int
    n_used: int
    pull_rows: np.ndarray         # (Q, n_owned) same-level gather rows
    bb_q: np.ndarray; bb_cell: np.ndarray; bb_opp: np.ndarray
    mov_q: np.ndarray; mov_cell: np.ndarray; mov_opp: np.ndarray; mov_term: np.ndarray
    out_q: np.ndarray; out_cell: np.ndarray; out_val: np.ndarray
    sl_q: np.ndarray; sl_cell: np.ndarray; sl_src_q: np.ndarray; sl_src: np.ndarray
    sb_q: np.ndarray; sb_cell: np.ndarray; sb_opp: np.ndarray; sb_e: np.ndarray
    exp_q: np.ndarray; exp_cell: np.ndarray; exp_rows: np.ndarray
    exp_ghost_rows: np.ndarray
    coal_q: np.ndarray; coal_cell: np.ndarray; coal_src: np.ndarray
    acc_fine_rows: np.ndarray     # rows in the FINER level's buffers
    acc_ghost_rows: np.ndarray
    fg_rows: np.ndarray           # this level's fine-ghost rows (4a)
    fg_coarse_rows: np.ndarray    # rows in the coarser level's buffers
    meta_bytes: int               # per-pass structural metadata traffic
    positions: np.ndarray         # (n_owned, d) level-resolution coordinates
    #: True when streaming pulls from the fine-ghost region (rows >=
    #: n_owned; original baseline only) — the S kernel then reads the
    #: logical ``fghost`` field in addition to ``fstar``.
    pulls_fghost: bool = False


class Engine:
    """Functional executor for one compiled multigrid."""

    def __init__(self, mgrid: MultiGrid, collision: CollisionModel | str = "bgk",
                 omega0: float = 1.0, runtime: Runtime | None = None,
                 force=None, dtype=np.float64) -> None:
        self.mgrid = mgrid
        self.dtype = np.dtype(dtype)
        if self.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError("dtype must be float32 or float64")
        #: bytes per stored population value (paper: fp32 halves traffic [9])
        self.itemsize = self.dtype.itemsize
        self.lat = mgrid.lattice
        self.collision = (make_collision(collision, self.lat)
                          if isinstance(collision, str) else collision)
        if self.collision.lattice is not self.lat:
            raise ValueError("collision model built for a different lattice")
        self.rt = runtime if runtime is not None else Runtime()
        self.omega = [omega_at_level(omega0, lv) for lv in range(mgrid.num_levels)]
        # Body-force density in coarse lattice units; on level L the
        # acceleration scales with dt_L^2/dx_L = 2^-L under acoustic scaling.
        if force is None:
            self.force = [None] * mgrid.num_levels
        else:
            f0 = np.asarray(force, dtype=np.float64)
            if f0.shape != (mgrid.d,):
                raise ValueError(f"force must have shape ({mgrid.d},)")
            self.force = [f0 * 0.5 ** lv for lv in range(mgrid.num_levels)]
        #: 1 / (2 * 2^d): the Coalescence average over 2^d children x 2 substeps.
        self.inv_navg = 1.0 / (2.0 * 2 ** mgrid.d)
        #: Bumped whenever engine state is mutated outside the step path
        #: (checkpoint restore); compiled step plans key their cache on it
        #: so a stale plan is never replayed against replaced buffers.
        self.state_epoch = 0
        self.levels = [self._build_level(cl) for cl in mgrid.levels]

    # -- setup ----------------------------------------------------------------
    def _build_level(self, cl: CompiledLevel) -> LevelBuffers:
        lat = self.lat
        Q = lat.q
        row_of_slot = np.full(cl.n_alloc, -1, dtype=np.int64)
        row_of_slot[cl.owned_slots] = np.arange(cl.n_owned)
        n_fg = cl.fine_ghost_slots.size
        row_of_slot[cl.fine_ghost_slots] = cl.n_owned + np.arange(n_fg)
        n_used = cl.n_owned + n_fg

        pull_rows = row_of_slot[cl.pull_src]
        if (pull_rows < 0).any():
            raise AssertionError("interior pull references an unallocated row")
        sl_src_rows = row_of_slot[cl.sl_src] if cl.sl_src.size else cl.sl_src
        pulls_fghost = bool((pull_rows >= cl.n_owned).any()
                            or (sl_src_rows >= cl.n_owned).any())
        grid_meta = sum(cl.grid.metadata_bytes().values())
        return LevelBuffers(
            f=np.zeros((Q, n_used), dtype=self.dtype),
            fstar=np.zeros((Q, n_used), dtype=self.dtype),
            ghost_acc=np.zeros((Q, cl.n_ghost), dtype=self.dtype),
            n_owned=cl.n_owned, n_used=n_used, pull_rows=pull_rows,
            bb_q=cl.bb_q, bb_cell=cl.bb_cell, bb_opp=lat.opp[cl.bb_q],
            mov_q=cl.mov_q, mov_cell=cl.mov_cell, mov_opp=lat.opp[cl.mov_q],
            mov_term=cl.mov_term,
            out_q=cl.out_q, out_cell=cl.out_cell, out_val=cl.out_val,
            sl_q=cl.sl_q, sl_cell=cl.sl_cell, sl_src_q=cl.sl_src_q,
            sl_src=sl_src_rows,
            sb_q=cl.sb_q, sb_cell=cl.sb_cell, sb_opp=lat.opp[cl.sb_q],
            sb_e=lat.ef[lat.opp[cl.sb_q]],
            exp_q=cl.exp_q, exp_cell=cl.exp_cell, exp_rows=np.empty(0, dtype=np.int64),
            exp_ghost_rows=row_of_slot[cl.exp_ghost_src] if cl.exp_ghost_src.size
            else cl.exp_ghost_src,
            coal_q=cl.coal_q, coal_cell=cl.coal_cell, coal_src=cl.coal_src,
            acc_fine_rows=np.empty(0, dtype=np.int64),
            acc_ghost_rows=cl.acc_ghost_rows,
            fg_rows=row_of_slot[cl.fg_slots] if cl.fg_slots.size else cl.fg_slots,
            fg_coarse_rows=np.empty(0, dtype=np.int64),
            meta_bytes=grid_meta,
            positions=cl.grid.cell_positions()[cl.owned_slots],
            pulls_fghost=pulls_fghost,
        )

    def _link_levels(self) -> None:
        """Resolve cross-level row references (needs all levels built)."""
        for lv, (cl, buf) in enumerate(zip(self.mgrid.levels, self.levels)):
            if lv > 0:
                coarse_cl = self.mgrid.levels[lv - 1]
                coarse_rows = np.full(coarse_cl.n_alloc, -1, dtype=np.int64)
                coarse_rows[coarse_cl.owned_slots] = np.arange(coarse_cl.n_owned)
                buf.exp_rows = coarse_rows[cl.exp_src] if cl.exp_src.size else cl.exp_src
                if cl.fg_coarse_src.size:
                    buf.fg_coarse_rows = coarse_rows[cl.fg_coarse_src]
                if buf.exp_rows.size and (buf.exp_rows < 0).any():
                    raise AssertionError("explosion source is not an owned coarse cell")
            if lv < self.mgrid.num_levels - 1 and cl.acc_fine_slots.size:
                fine_cl = self.mgrid.levels[lv + 1]
                fine_rows = np.full(fine_cl.n_alloc, -1, dtype=np.int64)
                fine_rows[fine_cl.owned_slots] = np.arange(fine_cl.n_owned)
                buf.acc_fine_rows = fine_rows[cl.acc_fine_slots]
                if (buf.acc_fine_rows < 0).any():
                    raise AssertionError("accumulate source is not an owned fine cell")

    def initialize(self, rho: float | np.ndarray = 1.0, u=None) -> None:
        """Set every level to the local equilibrium of (rho, u).

        ``u`` may be ``None`` (fluid at rest), a length-``d`` vector, or a
        callable mapping cell-centre positions (in coarse units, ``(N, d)``)
        to velocities ``(d, N)``.
        """
        self._link_levels()
        d = self.mgrid.d
        for lv, buf in enumerate(self.levels):
            n = buf.n_owned
            rr = np.full(n, rho, dtype=np.float64) if np.isscalar(rho) else rho
            if u is None:
                uu = np.zeros((d, n))
            elif callable(u):
                centers = (buf.positions + 0.5) * 2.0 ** (-lv)
                uu = np.asarray(u(centers), dtype=np.float64)
            else:
                uu = np.broadcast_to(np.asarray(u, dtype=np.float64)[:, None], (d, n)).copy()
            feq = equilibrium(self.lat, rr, uu)
            buf.f[:, :n] = feq
            buf.fstar[:, :n] = feq
            buf.ghost_acc[:] = 0.0

    # -- access capture helpers ------------------------------------------------
    def _tracer(self):
        """The runtime's access tracer, if a traced launch is in flight."""
        t = self.rt.tracer
        return t if (t is not None and t.active) else None

    @staticmethod
    def _span(rows: np.ndarray) -> tuple[int, int]:
        """Half-open interval bounding the rows an index array touches."""
        if rows.size == 0:
            return (0, 0)
        return (int(rows.min()), int(rows.max()) + 1)

    def _trace_fstar_read(self, t, lv: int, rows: np.ndarray,
                          extra_rows: list[np.ndarray], nbytes_total: int) -> None:
        """Record a gather from ``fstar``, splitting the fine-ghost region.

        Rows ``>= n_owned`` are the original baseline's fine-ghost layers:
        logically they are the ``fghost`` field, and the declarations name
        them as such.  ``nbytes_total`` is apportioned by value count;
        ``extra_rows`` (boundary-patch sources) extend the intervals but
        carry no extra bytes — on the GPU each destination entry is read
        exactly once, from either the bulk pull or its patch.
        """
        n_owned = self.levels[lv].n_owned
        flat = rows.ravel()
        nvals = flat.size
        all_rows = np.concatenate([flat] + [a for a in extra_rows if a.size]) \
            if extra_rows else flat
        ghost = all_rows >= n_owned
        n_ghost_vals = int((flat >= n_owned).sum())
        per_val = nbytes_total / nvals if nvals else 0.0
        owned_rows, ghost_rows = all_rows[~ghost], all_rows[ghost]
        if owned_rows.size:
            lo, hi = self._span(owned_rows)
            t.read(FieldRef("fstar", lv), lo, hi,
                   round(per_val * (nvals - n_ghost_vals)))
        if ghost_rows.size:
            lo, hi = self._span(ghost_rows)
            t.read(FieldRef("fghost", lv), lo, hi, round(per_val * n_ghost_vals))

    # -- kernel bodies ---------------------------------------------------------
    # Bodies are closures over their enqueue-time inputs (relaxation rate,
    # force, fusion flags): under deferred execution they run at the next
    # flush, and a launch must see the configuration it was issued with —
    # not whatever a callback mutated in between.
    def _collide_into_fstar(self, lv: int, omega: float | None = None,
                            force=_EAGER) -> None:
        if omega is None:
            omega = self.omega[lv]
        if force is _EAGER:
            force = self.force[lv]
        buf = self.levels[lv]
        n = buf.n_owned
        t = self._tracer()
        if t is not None:
            nb = self.lat.q * self.itemsize * n
            t.read(FieldRef("f", lv), 0, n, nb)
            t.write(FieldRef("fstar", lv), 0, n, nb)
        self.collision.collide(buf.f[:, :n], omega,
                               out=buf.fstar[:, :n], force=force)

    def _accumulate_values(self, lv: int, mode: str = "fused") -> None:
        """Add the finer level's fresh post-collision values into our ghosts.

        ``mode`` selects the traffic attribution of the equivalent GPU
        kernel: ``"fused"`` (Collision+Accumulate — the source values sit
        in registers, the scatter is atomic), ``"scatter"`` (standalone
        fine-initiated atomic scatter) or ``"gather"`` (the original
        baseline's coarse-initiated gather, launched over ghost cells).
        The arithmetic is identical in all three.
        """
        buf = self.levels[lv]
        fine = self.levels[lv + 1]
        if buf.acc_ghost_rows.size == 0:
            return
        ng = buf.ghost_acc.shape[1]
        t = self._tracer()
        if t is not None:
            Q, i = self.lat.q, self.itemsize
            m = buf.acc_fine_rows.size
            flo, fhi = self._span(buf.acc_fine_rows)
            glo, ghi = self._span(buf.acc_ghost_rows)
            t.read(FieldRef("fstar", lv + 1), flo, fhi,
                   0 if mode == "fused" else Q * i * m)
            if mode == "gather":
                t.read(FieldRef("gacc", lv), 0, ng, Q * i * ng)
                t.write(FieldRef("gacc", lv), 0, ng, Q * i * ng)
            else:
                if mode == "scatter":
                    t.read(FieldRef("gacc", lv), 0, ng, Q * i * ng)
                t.atomic(FieldRef("gacc", lv), glo, ghi, Q * i * m)
        for q in range(self.lat.q):
            buf.ghost_acc[q] += np.bincount(
                buf.acc_ghost_rows,
                weights=fine.fstar[q, buf.acc_fine_rows],
                minlength=ng)

    def _stream_bulk(self, lv: int) -> None:
        buf = self.levels[lv]
        n = buf.n_owned
        t = self._tracer()
        if t is not None:
            self._trace_fstar_read(
                t, lv, buf.pull_rows,
                [buf.bb_cell, buf.mov_cell, buf.sl_src],
                self.lat.q * self.itemsize * n)
            t.write(FieldRef("f", lv), 0, n, self.lat.q * self.itemsize * n)
            t.meta(buf.meta_bytes)
        for q in range(self.lat.q):
            buf.f[q, :n] = buf.fstar[q, buf.pull_rows[q]]
        # boundary patches (part of the same kernel on the GPU)
        if buf.bb_q.size:
            buf.f[buf.bb_q, buf.bb_cell] = buf.fstar[buf.bb_opp, buf.bb_cell]
        if buf.mov_q.size:
            buf.f[buf.mov_q, buf.mov_cell] = (buf.fstar[buf.mov_opp, buf.mov_cell]
                                              + buf.mov_term)
        if buf.out_q.size:
            buf.f[buf.out_q, buf.out_cell] = buf.out_val
        if buf.sl_q.size:  # specular reflection off a free-slip plane
            buf.f[buf.sl_q, buf.sl_cell] = buf.fstar[buf.sl_src_q, buf.sl_src]

    def _explode_values(self, lv: int, from_ghost: bool,
                        subsumed: bool = False) -> None:
        buf = self.levels[lv]
        if buf.exp_q.size == 0:
            return
        t = self._tracer()
        if t is not None:
            m, i = buf.exp_q.size, self.itemsize
            if from_ghost:
                lo, hi = self._span(buf.exp_ghost_rows)
                t.read(FieldRef("fghost", lv), lo, hi, i * m)
            else:
                lo, hi = self._span(buf.exp_rows)
                t.read(FieldRef("fstar", lv - 1), lo, hi, i * m)
            lo, hi = self._span(buf.exp_cell)
            # fused into streaming, the write lands on entries the bulk
            # pull already paid for — no extra traffic
            t.write(FieldRef("f", lv), lo, hi, 0 if subsumed else i * m)
        if from_ghost:
            buf.f[buf.exp_q, buf.exp_cell] = buf.fstar[buf.exp_q, buf.exp_ghost_rows]
        else:
            coarse = self.levels[lv - 1]
            buf.f[buf.exp_q, buf.exp_cell] = coarse.fstar[buf.exp_q, buf.exp_rows]

    def _coalesce_values(self, lv: int, subsumed: bool = False) -> None:
        buf = self.levels[lv]
        t = self._tracer()
        if t is not None:
            i = self.itemsize
            ng = buf.ghost_acc.shape[1]
            if buf.coal_q.size:
                m = buf.coal_q.size
                lo, hi = self._span(buf.coal_src)
                t.read(FieldRef("gacc", lv), lo, hi, i * m)
                lo, hi = self._span(buf.coal_cell)
                t.write(FieldRef("f", lv), lo, hi, 0 if subsumed else i * m)
            if ng:
                t.write(FieldRef("gacc", lv), 0, ng, i * buf.ghost_acc.size)
        if buf.coal_q.size:
            buf.f[buf.coal_q, buf.coal_cell] = (buf.ghost_acc[buf.coal_q, buf.coal_src]
                                                * self.inv_navg)
        buf.ghost_acc[:] = 0.0

    def _explosion_copy_values(self, lv: int) -> None:
        """Original baseline: mirror coarse post-collision state into fine ghosts."""
        buf = self.levels[lv]
        if buf.fg_rows.size == 0:
            return
        coarse = self.levels[lv - 1]
        t = self._tracer()
        if t is not None:
            nb = self.lat.q * self.itemsize * buf.fg_rows.size
            lo, hi = self._span(buf.fg_coarse_rows)
            t.read(FieldRef("fstar", lv - 1), lo, hi, nb)
            lo, hi = self._span(buf.fg_rows)
            t.write(FieldRef("fghost", lv), lo, hi, nb)
        buf.fstar[:, buf.fg_rows] = coarse.fstar[:, buf.fg_coarse_rows]

    # -- public ops: one launch record each -------------------------------------
    def op_collide(self, lv: int, fuse_accumulate: bool = False) -> None:
        buf = self.levels[lv]
        Q, n = self.lat.q, buf.n_owned
        reads = (FieldRef("f", lv),)
        writes: tuple[FieldRef, ...] = (FieldRef("fstar", lv),)
        atomic = 0
        name = "C"
        m = 0
        if fuse_accumulate and lv > 0:
            parent = self.levels[lv - 1]
            m = parent.acc_fine_rows.size
        omega, force = self.omega[lv], self.force[lv]
        def body() -> None:
            self._collide_into_fstar(lv, omega, force)
            if fuse_accumulate and lv > 0:
                self._accumulate_values(lv - 1, mode="fused")
        if fuse_accumulate and lv > 0 and m:
            name = "CA"
            writes = writes + (FieldRef("gacc", lv - 1),)
            atomic = Q * self.itemsize * m
        self.rt.launch(name, lv, n_cells=n,
                       bytes_read=Q * self.itemsize * n,
                       bytes_written=Q * self.itemsize * n + atomic,
                       atomic_bytes=atomic, reads=reads, writes=writes, fn=body)

    def op_accumulate(self, lv: int, gather: bool = False) -> None:
        """Separate Accumulate kernel: fine level ``lv`` into parent ghosts.

        ``gather=True`` models the original baseline's coarse-initiated
        gather (launched over ghost cells, no atomics); ``False`` the
        modified baseline's fine-initiated atomic scatter.
        """
        if lv == 0:
            raise ValueError("level 0 has no parent to accumulate into")
        parent = self.levels[lv - 1]
        m = parent.acc_fine_rows.size
        if m == 0:
            return
        Q = self.lat.q
        ng = parent.ghost_acc.shape[1]
        self.rt.launch(
            "A", lv,
            n_cells=(ng if gather else m),
            bytes_read=Q * self.itemsize * m + Q * self.itemsize * ng,
            bytes_written=Q * self.itemsize * (ng if gather else m),
            atomic_bytes=0 if gather else Q * self.itemsize * m,
            reads=(FieldRef("fstar", lv), FieldRef("gacc", lv - 1)),
            writes=(FieldRef("gacc", lv - 1),),
            fn=lambda: self._accumulate_values(
                lv - 1, mode="gather" if gather else "scatter"))

    def op_explosion_copy(self, lv: int) -> None:
        """Original baseline's Explosion: coarse f* copied into fine ghost layers."""
        buf = self.levels[lv]
        nfg = buf.fg_rows.size
        if nfg == 0:
            return
        Q = self.lat.q
        self.rt.launch(
            "E", lv, n_cells=nfg,
            bytes_read=Q * self.itemsize * nfg, bytes_written=Q * self.itemsize * nfg,
            reads=(FieldRef("fstar", lv - 1),), writes=(FieldRef("fghost", lv),),
            fn=lambda: self._explosion_copy_values(lv))

    def op_stream(self, lv: int, *, fuse_explosion: bool = False,
                  fuse_coalescence: bool = False, exp_from_ghost: bool = False) -> None:
        """Streaming kernel, optionally fused with Explosion and/or Coalescence."""
        buf = self.levels[lv]
        Q, n = self.lat.q, buf.n_owned
        name = "S"
        reads = [FieldRef("fstar", lv)]
        if buf.pulls_fghost:
            # original baseline: the pull gathers from the fine-ghost
            # layers the Explosion copy just filled
            reads.append(FieldRef("fghost", lv))
        writes = [FieldRef("f", lv)]
        br = Q * self.itemsize * n + buf.meta_bytes
        bw = Q * self.itemsize * n
        do_exp = fuse_explosion and buf.exp_q.size > 0
        do_coal = fuse_coalescence and buf.coal_q.size > 0
        if do_exp:
            name = name + "E"
            reads.append(FieldRef("fghost", lv) if exp_from_ghost
                         else FieldRef("fstar", lv - 1))
            br += self.itemsize * buf.exp_q.size
        if do_coal:
            name = ("SEO" if do_exp else "SO")
            reads.append(FieldRef("gacc", lv))
            writes.append(FieldRef("gacc", lv))
            br += self.itemsize * buf.coal_q.size
            bw += self.itemsize * buf.ghost_acc.size  # reset
        def body() -> None:
            self._stream_bulk(lv)
            if do_exp:
                self._explode_values(lv, exp_from_ghost, subsumed=True)
            if do_coal:
                self._coalesce_values(lv, subsumed=True)
        self.rt.launch(name, lv, n_cells=n, bytes_read=br, bytes_written=bw,
                       reads=tuple(reads), writes=tuple(writes), fn=body)

    def op_explode(self, lv: int, exp_from_ghost: bool = False) -> None:
        """Separate Explosion kernel writing the cross-level pulls of ``f``."""
        buf = self.levels[lv]
        m = buf.exp_q.size
        if m == 0:
            return
        self.rt.launch(
            "E", lv, n_cells=int(np.unique(buf.exp_cell).size),
            bytes_read=self.itemsize * m, bytes_written=self.itemsize * m,
            reads=(FieldRef("fghost", lv) if exp_from_ghost else FieldRef("fstar", lv - 1),),
            writes=(FieldRef("f", lv),),
            fn=lambda: self._explode_values(lv, exp_from_ghost))

    def op_coalesce(self, lv: int) -> None:
        """Separate Coalescence kernel: averaged ghost reads plus the reset."""
        buf = self.levels[lv]
        m = buf.coal_q.size
        if m == 0:
            return
        self.rt.launch(
            "O", lv, n_cells=int(np.unique(buf.coal_cell).size),
            bytes_read=self.itemsize * m,
            bytes_written=self.itemsize * m + self.itemsize * buf.ghost_acc.size,
            reads=(FieldRef("gacc", lv),),
            writes=(FieldRef("f", lv), FieldRef("gacc", lv)),
            fn=lambda: self._coalesce_values(lv))

    def op_fused_case(self, lv: int) -> None:
        """The fully fused finest-level kernel (Fig. 4f).

        Collision + Accumulate + Streaming + Explosion in one launch; the
        post-collision intermediate stays in registers (our ``fstar``
        buffer stands in for them and is excluded from the traffic).
        """
        buf = self.levels[lv]
        Q, n = self.lat.q, buf.n_owned
        reads = [FieldRef("f", lv)]
        writes = [FieldRef("f", lv)]
        atomic = 0
        if lv > 0:
            parent = self.levels[lv - 1]
            m = parent.acc_fine_rows.size
            if m:
                atomic = Q * self.itemsize * m
                writes.append(FieldRef("gacc", lv - 1))
            if buf.exp_q.size:
                reads.append(FieldRef("fstar", lv - 1))
        omega, force = self.omega[lv], self.force[lv]
        def run() -> None:
            self._collide_into_fstar(lv, omega, force)
            if lv > 0:
                self._accumulate_values(lv - 1, mode="fused")
            self._stream_bulk(lv)
            self._explode_values(lv, from_ghost=False, subsumed=True)

        def body() -> None:
            t = self._tracer()
            if t is None:
                run()
            else:
                # the post-collision intermediate lives in registers: its
                # accesses are invisible to DRAM and to the declarations
                with t.suppress(FieldRef("fstar", lv)):
                    run()
        self.rt.launch("CASE", lv, n_cells=n,
                       bytes_read=Q * self.itemsize * n + self.itemsize * buf.exp_q.size + buf.meta_bytes,
                       bytes_written=Q * self.itemsize * n + atomic,
                       atomic_bytes=atomic,
                       reads=tuple(reads), writes=tuple(writes), fn=body)

    # -- fault injection ---------------------------------------------------------
    def corrupt_cell(self, lv: int, cell: int, q: int = 0,
                     value: float = float("nan")) -> float:
        """Overwrite one owned population entry of ``f``; return the old value.

        The write hook of the resilience fault injector (and of tests):
        only the engine knows the buffer/row layout, so the corruption
        lands exactly where :meth:`health_scan` and the watchdog will
        report it.  Functionally this models a device-side soft error —
        a single flipped population value that floods the grid within a
        few steps unless a watchdog catches it.
        """
        buf = self.levels[lv]
        if not 0 <= cell < buf.n_owned:
            raise ValueError(f"cell {cell} outside the {buf.n_owned} owned "
                             f"rows of level {lv}")
        if not 0 <= q < self.lat.q:
            raise ValueError(f"population index {q} outside Q={self.lat.q}")
        old = float(buf.f[q, cell])
        buf.f[q, cell] = value
        return old

    # -- health ------------------------------------------------------------------
    def health_scan(self):
        """Yield a per-level numerical-health snapshot (owned cells only).

        Each item carries the rows whose ``f``/``fstar`` populations are
        non-finite (with one offending value per row, for diagnostics),
        plus density and velocity magnitude.  Consumed by the
        observability watchdog (:mod:`repro.obs.watchdog`); kept on the
        engine because only it knows the buffer/row layout.
        """
        for lv, buf in enumerate(self.levels):
            n = buf.n_owned
            scan: dict = {}
            healthy = True
            for fname in ("f", "fstar"):
                arr = getattr(buf, fname)[:, :n]
                finite = np.isfinite(arr)
                bad = np.nonzero(~finite.all(axis=0))[0]
                scan[f"nonfinite_{fname}"] = bad
                if bad.size:
                    healthy = False
                    first_q = np.argmax(~finite[:, bad], axis=0)
                    scan[f"{fname}_values"] = arr[first_q, bad]
                else:
                    scan[f"{fname}_values"] = arr[:0, 0]
            if healthy:
                rho, u = self.macroscopics(lv)
                scan["rho"] = rho
                scan["umag"] = np.sqrt((u * u).sum(axis=0))
            else:  # moments of non-finite populations are meaningless
                scan["rho"] = np.empty(0)
                scan["umag"] = np.empty(0)
            yield scan

    # -- observables -------------------------------------------------------------
    def macroscopics(self, lv: int) -> tuple[np.ndarray, np.ndarray]:
        """Density and velocity of the owned cells of one level.

        With a body force the velocity carries the Guo half-force shift,
        matching the collision operator's definition.
        """
        buf = self.levels[lv]
        f = buf.f[:, :buf.n_owned]
        if self.force[lv] is None:
            return macroscopics(self.lat, f)
        return self.collision._moments(f, self.force[lv])

    def total_mass(self) -> float:
        """Volume-weighted total mass in coarse-lattice units."""
        total = 0.0
        for lv, buf in enumerate(self.levels):
            vol = (0.5 ** lv) ** self.mgrid.d
            total += vol * float(buf.f[:, :buf.n_owned].sum())
        return total

    def total_momentum(self) -> np.ndarray:
        """Volume-weighted total momentum vector in coarse-lattice units."""
        mom = np.zeros(self.mgrid.d)
        for lv, buf in enumerate(self.levels):
            vol = (0.5 ** lv) ** self.mgrid.d
            mom += vol * (self.lat.ef.T @ buf.f[:, :buf.n_owned]).sum(axis=1)
        return mom

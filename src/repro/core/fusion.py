"""Fusion configurations: the design space of Figure 4 and the Fig. 9 ablation.

Every configuration executes identical arithmetic (see
:mod:`repro.core.engine`); what changes is how the per-substep operations
are grouped into kernels, and — for the original baseline — where the
ghost layer lives and who initiates the Accumulate.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "FusionConfig", "ORIGINAL_BASELINE", "MODIFIED_BASELINE",
    "FUSE_CA", "FUSE_SE", "FUSE_SO", "FUSE_CA_SE_SO", "FUSED_FULL",
    "ABLATION_CONFIGS", "get_config",
]


@dataclass(frozen=True)
class FusionConfig:
    """One point in the optimization space of Section IV.

    Attributes
    ----------
    original_layout:
        ``True`` reproduces the distributed-era algorithm (Fig. 4a): four
        fine ghost layers per interface, Explosion as an explicit
        coarse-to-ghost copy kernel, and Accumulate as a gather initiated
        by the coarse level.  Incompatible with any fusion — the gather
        Accumulate creates the data dependency the paper points out.
    fuse_ca / fuse_se / fuse_so / fuse_cs_finest:
        The fusions of Figs. 4c, 4d, 4e and 4f respectively.
    """

    name: str
    original_layout: bool = False
    fuse_ca: bool = False
    fuse_se: bool = False
    fuse_so: bool = False
    fuse_cs_finest: bool = False

    def __post_init__(self) -> None:
        if self.original_layout and (self.fuse_ca or self.fuse_se or self.fuse_so
                                     or self.fuse_cs_finest):
            raise ValueError(
                "the original baseline cannot fuse kernels: its gather-based "
                "Accumulate forces the coarse level to wait for the fine level "
                "(Section IV-B)")
        if self.fuse_cs_finest and not self.fuse_ca:
            raise ValueError(
                "CASE fusion implies Collision+Accumulate fusion on the finest "
                "level; enable fuse_ca as well")


#: Fig. 4a — the algorithm of Schornbaum & Rüde as designed for clusters.
ORIGINAL_BASELINE = FusionConfig("baseline-4a", original_layout=True)
#: Fig. 4b — the paper's baseline: coarse ghost layer + scatter Accumulate.
MODIFIED_BASELINE = FusionConfig("baseline-4b")
#: Fig. 4c — Collision fused with Accumulate.
FUSE_CA = FusionConfig("fuse-CA", fuse_ca=True)
#: Fig. 4d — Streaming fused with Explosion.
FUSE_SE = FusionConfig("fuse-SE", fuse_se=True)
#: Fig. 4e — Streaming fused with Coalescence.
FUSE_SO = FusionConfig("fuse-SO", fuse_so=True)
#: All single-step fusions, no CASE (Fig. 4e composite).
FUSE_CA_SE_SO = FusionConfig("fuse-CA+SE+SO", fuse_ca=True, fuse_se=True, fuse_so=True)
#: Fig. 4f — our full configuration: CASE on the finest level, SEO elsewhere.
FUSED_FULL = FusionConfig("ours-4f", fuse_ca=True, fuse_se=True, fuse_so=True,
                          fuse_cs_finest=True)

#: The configurations of the Fig. 9 ablation, baseline first.
ABLATION_CONFIGS = (MODIFIED_BASELINE, FUSE_CA, FUSE_SE, FUSE_SO,
                    FUSE_CA_SE_SO, FUSED_FULL)

_BY_NAME = {c.name: c for c in
            (ORIGINAL_BASELINE,) + ABLATION_CONFIGS}


def get_config(name: str) -> FusionConfig:
    """Look a preset up by name (see :data:`ABLATION_CONFIGS`)."""
    if name not in _BY_NAME:
        raise KeyError(f"unknown fusion config {name!r}; choose from {sorted(_BY_NAME)}")
    return _BY_NAME[name]

"""Typed simulation configuration — the one object that fully describes a run.

:class:`~repro.core.simulation.Simulation` grew its construction surface
one keyword at a time (lattice, collision, viscosity/omega0, fusion
config, force, dtype, threaded, max_workers, executor_debug, …), which
made call sites hard to audit and impossible to serialize.  ``SimConfig``
consolidates all of it into a single frozen dataclass:

* **validated once**, at construction (exactly one of viscosity/omega0,
  known fusion preset, well-formed dtype);
* **immutable and comparable** — two simulations built from equal
  configs are bit-identical by the engine's determinism guarantees;
* **replaceable** — :meth:`SimConfig.replace` derives safety profiles
  (the resilience ladder's ``threaded=False`` / reduced-ω rebuilds)
  without mutating the original;
* **serializable** — :meth:`SimConfig.as_dict` feeds checkpoint
  manifests and structured reports.

Construct simulations with ``Simulation.from_config(spec, config)``; the
legacy keyword form still works behind a one-time deprecation warning.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any

import numpy as np

from .fusion import FUSED_FULL, FusionConfig, get_config

__all__ = ["SimConfig"]


@dataclass(frozen=True)
class SimConfig:
    """Everything a :class:`~repro.core.simulation.Simulation` needs
    besides the domain itself (the :class:`~repro.grid.multigrid.RefinementSpec`).

    Attributes
    ----------
    lattice:
        Descriptor name (``"D2Q9"``, ``"D3Q19"``, ``"D3Q27"``) or a
        :class:`~repro.core.lattice.Lattice` instance.
    collision:
        ``"bgk"``, ``"kbc"``, ``"trt"`` or a
        :class:`~repro.core.collision.CollisionModel`.
    viscosity / omega0:
        Exactly one of the two fixes the coarse-level relaxation.
    fusion:
        Kernel-fusion configuration (a :class:`FusionConfig` or a preset
        name such as ``"ours-4f"``); defaults to the paper's best.
    force:
        Optional constant body-force density vector (coarse lattice
        units); stored as a tuple so the config stays hashable.
    dtype:
        ``None`` (float64, the paper's setting), ``numpy.float32`` /
        ``numpy.float64`` or their string names.
    threaded:
        ``None`` defers to ``$REPRO_THREADED``; ``True``/``False`` force
        the deferred wave executor on or off.
    max_workers / executor_debug:
        Forwarded to :class:`~repro.neon.executor.WaveExecutor` when
        threading is enabled.
    backend:
        Execution backend name (see :mod:`repro.backend`):
        ``"interpreted"`` (reference), ``"compiled"`` (step-plan replay),
        ``"compiled-aa"`` (plus AA-pattern buffer dropping) or ``"mp"``
        (process-parallel shared-memory replay).  ``None`` defers to
        ``$REPRO_BACKEND`` and falls back to interpreted.
    mp_workers:
        Worker-process count for the ``"mp"`` backend; ``None`` defers
        to ``$REPRO_MP_WORKERS`` and then a small core-count default.
        Ignored by the in-process backends.
    """

    lattice: Any = "D3Q19"
    collision: Any = "bgk"
    viscosity: float | None = None
    omega0: float | None = None
    fusion: FusionConfig | str = FUSED_FULL
    force: tuple[float, ...] | None = None
    dtype: Any = None
    threaded: bool | None = None
    max_workers: int | None = None
    executor_debug: bool | None = None
    backend: str | None = None
    mp_workers: int | None = None

    def __post_init__(self) -> None:
        if (self.viscosity is None) == (self.omega0 is None):
            raise ValueError("specify exactly one of viscosity / omega0")
        if isinstance(self.fusion, str):
            object.__setattr__(self, "fusion", get_config(self.fusion))
        elif not isinstance(self.fusion, FusionConfig):
            raise TypeError(
                f"fusion must be a FusionConfig or preset name, "
                f"got {type(self.fusion).__name__}")
        if self.force is not None:
            object.__setattr__(self, "force",
                               tuple(float(c) for c in np.asarray(self.force).ravel()))
        if isinstance(self.dtype, str):
            object.__setattr__(self, "dtype", np.dtype(self.dtype).type)
        if self.max_workers is not None and int(self.max_workers) < 1:
            raise ValueError("max_workers must be >= 1")
        if self.mp_workers is not None and int(self.mp_workers) < 1:
            raise ValueError("mp_workers must be >= 1")
        if self.backend is not None:
            from ..backend import available_backends
            if self.backend not in available_backends():
                raise ValueError(
                    f"unknown backend {self.backend!r}; available: "
                    f"{', '.join(available_backends())}")

    def replace(self, **changes) -> "SimConfig":
        """A copy with ``changes`` applied (re-validated).

        ``viscosity`` and ``omega0`` can be swapped in one call, e.g.
        ``cfg.replace(viscosity=None, omega0=1.2)`` — the safety-profile
        rebuilds of :mod:`repro.resilience` rely on this.
        """
        return dataclasses.replace(self, **changes)

    def as_dict(self) -> dict:
        """JSON-ready digest (checkpoint manifests, resilience reports)."""
        return {
            "lattice": getattr(self.lattice, "name", self.lattice),
            "collision": (self.collision if isinstance(self.collision, str)
                          else type(self.collision).__name__),
            "viscosity": self.viscosity,
            "omega0": self.omega0,
            "fusion": self.fusion.name,
            "force": list(self.force) if self.force is not None else None,
            "dtype": np.dtype(self.dtype).name if self.dtype is not None else None,
            "threaded": self.threaded,
            "max_workers": self.max_workers,
            "executor_debug": self.executor_debug,
            "backend": self.backend,
            "mp_workers": self.mp_workers,
        }

"""High-level simulation facade — the package's main entry point.

Wires a :class:`~repro.grid.multigrid.RefinementSpec` through grid
compilation, the engine and the Algorithm-1 stepper, and adds the
bookkeeping every experiment needs: wall-clock timing and the paper's
MLUPS metric (Section VI):

    MLUPS = sum_L V_L * N_L / T      with N_L = 2^L * N, T in microseconds,

where ``V_L`` counts active voxels excluding ghost cells.
"""

from __future__ import annotations

import os
import time
import warnings

import numpy as np

from ..grid.multigrid import MultiGrid, RefinementSpec, build_multigrid
from ..neon.runtime import Runtime
from .collision import CollisionModel
from .config import SimConfig
from .engine import Engine
from .fusion import FUSED_FULL, FusionConfig
from .lattice import Lattice, get_lattice
from .results import RunResult
from .stepper import NonUniformStepper
from .units import omega_from_viscosity

__all__ = ["Simulation", "mlups"]

#: One-time flag for the legacy-kwargs deprecation warning (the shim
#: must not spam a test suite that builds hundreds of simulations).
_legacy_warned = False


def _warn_legacy_kwargs() -> None:
    global _legacy_warned
    if not _legacy_warned:
        _legacy_warned = True
        warnings.warn(
            "Simulation(spec, lattice=..., viscosity=..., ...) keyword "
            "construction is deprecated; build a repro.SimConfig and use "
            "Simulation.from_config(spec, config) instead",
            DeprecationWarning, stacklevel=3)


def mlups(active_per_level: list[int], n_coarse_steps: int, seconds: float) -> float:
    """The paper's MLUPS formula for a nonuniform grid."""
    if seconds <= 0:
        raise ValueError("elapsed time must be positive")
    updates = sum(v * (2 ** lv) * n_coarse_steps
                  for lv, v in enumerate(active_per_level))
    return updates / (seconds * 1e6)


class Simulation:
    """A ready-to-run nonuniform LBM simulation.

    Parameters
    ----------
    spec:
        Domain description (shape, refinement regions, solid, face BCs).
    lattice:
        Descriptor or name (``"D2Q9"``, ``"D3Q19"``, ``"D3Q27"``).
    collision:
        ``"bgk"``, ``"kbc"`` or a :class:`~repro.core.collision.CollisionModel`.
    viscosity / omega0:
        Exactly one of the two fixes the coarse-level relaxation.
    config:
        Kernel-fusion configuration; defaults to the paper's best (Fig. 4f).
    force:
        Optional constant body-force density vector (coarse lattice
        units), applied with the Guo forcing scheme on every level.
    dtype:
        Population storage precision: ``numpy.float64`` (default, the
        paper's setting) or ``numpy.float32`` (halves memory and DRAM
        traffic, cf. reduced-precision LBM [9]).
    threaded:
        Run kernel bodies with the deferred wave executor (see
        :mod:`repro.neon.executor`).  Defaults to ``$REPRO_THREADED``
        (``1``/``true``/``on``/``yes``); results are bit-identical to
        serial execution.  Use the simulation as a context manager (or
        call :meth:`close`) so worker threads are released promptly.
    max_workers / executor_debug:
        Forwarded to :class:`~repro.neon.executor.WaveExecutor` when
        ``threaded``; ignored otherwise.
    """

    def __init__(self, spec: RefinementSpec, lattice: Lattice | str = "D3Q19",
                 collision: CollisionModel | str = "bgk", *,
                 viscosity: float | None = None, omega0: float | None = None,
                 config: FusionConfig = FUSED_FULL,
                 runtime: Runtime | None = None, force=None,
                 dtype=None, threaded: bool | None = None,
                 max_workers: int | None = None,
                 executor_debug: bool | None = None,
                 _config: SimConfig | None = None) -> None:
        if _config is None:
            # Legacy keyword construction: fold everything into a
            # SimConfig (which validates) and warn once per process.
            _warn_legacy_kwargs()
            _config = SimConfig(
                lattice=lattice, collision=collision, viscosity=viscosity,
                omega0=omega0, fusion=config, force=force, dtype=dtype,
                threaded=threaded, max_workers=max_workers,
                executor_debug=executor_debug)
        self._build(spec, _config, runtime)

    @classmethod
    def from_config(cls, spec: RefinementSpec, config: SimConfig | None = None,
                    *, runtime: Runtime | None = None,
                    **overrides) -> "Simulation":
        """Build a simulation from a :class:`~repro.core.config.SimConfig`.

        This is the canonical constructor.  ``overrides`` are applied via
        :meth:`SimConfig.replace` (or build a fresh config when ``config``
        is ``None``), so one base profile can parameterize a sweep::

            base = SimConfig(lattice="D2Q9", viscosity=0.05)
            sim = Simulation.from_config(spec, base, fusion=FUSE_SE)
        """
        if config is None:
            config = SimConfig(**overrides)
        elif overrides:
            config = config.replace(**overrides)
        return cls(spec, runtime=runtime, _config=config)

    def _build(self, spec: RefinementSpec, config: SimConfig,
               runtime: Runtime | None) -> None:
        lat = (get_lattice(config.lattice) if isinstance(config.lattice, str)
               else config.lattice)
        omega0 = (config.omega0 if config.omega0 is not None
                  else omega_from_viscosity(config.viscosity))
        #: The immutable configuration this simulation was built from
        #: (checkpoint manifests and resilience rebuilds read it back).
        self.sim_config: SimConfig = config
        self.mgrid: MultiGrid = build_multigrid(spec, lat)
        self.engine = Engine(self.mgrid, config.collision, omega0,
                             runtime=runtime, force=config.force,
                             dtype=np.float64 if config.dtype is None
                             else config.dtype)
        from ..backend import resolve_backend
        backend = resolve_backend(config.backend)
        configure = getattr(backend, "configure", None)
        if configure is not None:
            # Backend-specific SimConfig knobs (e.g. mp_workers) without
            # widening the duck-typed Backend protocol.
            configure(config)
        self.stepper = NonUniformStepper(self.engine, config.fusion,
                                         backend=backend)
        self.engine.initialize()
        self.elapsed = 0.0
        threaded = config.threaded
        if threaded is None:
            threaded = os.environ.get("REPRO_THREADED", "").lower() \
                in ("1", "true", "on", "yes")
        if threaded:
            self.enable_threading(max_workers=config.max_workers,
                                  debug=config.executor_debug)

    # -- delegation ------------------------------------------------------------
    @property
    def lattice(self) -> Lattice:
        return self.engine.lat

    @property
    def runtime(self) -> Runtime:
        return self.engine.rt

    @property
    def num_levels(self) -> int:
        return self.mgrid.num_levels

    @property
    def steps_done(self) -> int:
        return self.stepper.steps_done

    @property
    def backend(self):
        """The execution backend driving :meth:`step` (see :mod:`repro.backend`)."""
        return self.stepper.backend

    @property
    def mode(self) -> str:
        """Execution mode: ``"mp"``, ``"threaded"`` or ``"serial"``."""
        if getattr(self.backend, "name", "") == "mp":
            return "mp"
        return "threaded" if self.executor is not None else "serial"

    def initialize(self, rho: float = 1.0, u=None) -> None:
        """(Re-)initialise the populations to equilibrium; resets timing."""
        self.engine.initialize(rho, u)
        self.elapsed = 0.0
        self.stepper.steps_done = 0

    def step(self) -> None:
        self.stepper.step()

    def run(self, n_steps: int, callback=None,
            callback_every: int = 1) -> RunResult:
        """Run ``n_steps`` coarse steps; return a typed :class:`RunResult`.

        ``float(result)`` is the wall-clock seconds of this call (the old
        return value); the named fields add steps advanced, the backend
        and execution mode that did the work and the measured MLUPS.
        """
        start_step = self.steps_done
        t0 = time.perf_counter()
        try:
            self.stepper.run(n_steps, callback=callback,
                             callback_every=callback_every)
        finally:
            dt = time.perf_counter() - t0
            self.elapsed += dt
        return self._run_result(start_step, dt)

    def _run_result(self, start_step: int, seconds: float) -> RunResult:
        steps = self.steps_done - start_step
        measured = (mlups(self.mgrid.active_per_level(), steps, seconds)
                    if steps > 0 and seconds > 0 else 0.0)
        rt = self.engine.rt
        return RunResult(
            steps=steps, final_step=self.steps_done, seconds=seconds,
            backend=self.backend.name, mode=self.mode, mlups=measured,
            metrics={"kernels_traced": len(rt.records),
                     "steps_traced": len(rt.markers),
                     "elapsed_total": self.elapsed})

    def run_until(self, target: int, callback=None,
                  callback_every: int = 1) -> RunResult:
        """Run until ``steps_done`` reaches ``target`` (no-op if past it).

        The resumption-friendly variant of :meth:`run`: after a
        checkpoint restore or a rollback the caller states the absolute
        goal instead of recomputing a remainder.
        """
        return self.run(max(0, target - self.steps_done),
                        callback=callback, callback_every=callback_every)

    # -- threaded execution ------------------------------------------------------
    def enable_threading(self, max_workers: int | None = None,
                         debug: bool | None = None):
        """Install a :class:`~repro.neon.executor.WaveExecutor` and return it.

        Kernel bodies are captured per coarse step and replayed in
        dependency waves on a thread pool; results are bit-identical to
        serial execution (the scheduler uses the declared graph, which
        the debug gate race-checks before the first replay of each step
        shape).
        """
        from ..neon.executor import WaveExecutor
        ex = WaveExecutor(max_workers=max_workers, debug=debug)
        self.engine.rt.executor_install(ex)
        return ex

    def disable_threading(self) -> None:
        """Flush pending work, remove the executor and stop its threads."""
        self.engine.rt.executor_install(None)

    @property
    def executor(self):
        """The installed wave executor, or ``None`` in serial mode."""
        return self.engine.rt.executor

    def close(self) -> None:
        """Flush deferred work and release executor/backend resources.

        Backends owning external resources (the mp backend's worker
        processes and shared-memory arena) expose a duck-typed
        ``close()``; in-process backends have nothing to release.

        Idempotent and safe from ``finally`` paths: calling it twice
        (server shutdown racing a worker's own cleanup) is a no-op the
        second time, and a partially-built simulation — ``_build``
        raised before the stepper existed — closes whatever it has
        instead of raising ``AttributeError``.  The simulation itself
        stays usable: stepping again lazily respawns backend resources.
        """
        engine = getattr(self, "engine", None)
        if engine is not None:
            self.disable_threading()
        stepper = getattr(self, "stepper", None)
        if stepper is not None:
            close = getattr(stepper.backend, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "Simulation":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- observability -----------------------------------------------------------
    def enable_tracing(self, recorder=None):
        """Install a wall-clock span recorder on the runtime and return it.

        Spans are opt-in: until this is called the launch hot path pays
        nothing.  Pass an existing
        :class:`~repro.obs.spans.SpanRecorder` to share one recorder
        across simulations; otherwise a fresh one is created.
        """
        if recorder is None:
            from ..obs.spans import SpanRecorder
            recorder = SpanRecorder()
        self.engine.rt.spans_install(recorder)
        return recorder

    def disable_tracing(self) -> None:
        """Remove the span recorder; the hot path reverts to zero overhead."""
        self.engine.rt.spans_install(None)

    def watchdog(self, **kwargs):
        """Build a :class:`~repro.obs.watchdog.HealthWatchdog` for this run.

        ``sim.watchdog(every=5).watch(100)`` runs 100 coarse steps with a
        health check every 5; see the watchdog module for the envelope
        parameters.
        """
        from ..obs.watchdog import HealthWatchdog
        return HealthWatchdog(self, **kwargs)

    # -- observables ------------------------------------------------------------
    def macroscopics(self, level: int) -> tuple[np.ndarray, np.ndarray]:
        return self.engine.macroscopics(level)

    def positions(self, level: int) -> np.ndarray:
        """Owned-cell coordinates of one level, in that level's units."""
        return self.engine.levels[level].positions

    def max_velocity(self) -> float:
        """Maximum velocity magnitude over all levels (stability monitor)."""
        vmax = 0.0
        for lv in range(self.num_levels):
            _, u = self.macroscopics(lv)
            if u.shape[1]:
                vmax = max(vmax, float(np.sqrt((u * u).sum(axis=0)).max()))
        return vmax

    def is_stable(self) -> bool:
        """False once populations contain NaN/Inf (diverged run)."""
        return all(np.isfinite(buf.f[:, :buf.n_owned]).all()
                   for buf in self.engine.levels)

    def wallclock_mlups(self) -> float:
        """Measured MLUPS of all :meth:`run` calls so far (paper formula)."""
        return mlups(self.mgrid.active_per_level(), self.steps_done, self.elapsed)

"""Mini-Neon programming-model substrate: runtime, trace, dependency graphs."""

from .executor import WaveExecutor, WaveRaceError, default_workers
from .graph import (ConflictPair, build_dependency_graph, graph_stats,
                    iter_conflict_pairs, schedule_records, schedule_waves,
                    stream_assignment)
from .runtime import FieldRef, KernelRecord, Runtime

__all__ = ["ConflictPair", "build_dependency_graph", "graph_stats",
           "iter_conflict_pairs", "schedule_records", "schedule_waves",
           "stream_assignment", "FieldRef", "KernelRecord", "Runtime",
           "WaveExecutor", "WaveRaceError", "default_workers"]

"""Mini-Neon programming-model substrate: runtime, trace, dependency graphs."""

from .executor import WaveExecutor, WaveRaceError, default_workers
from .graph import (build_dependency_graph, graph_stats, schedule_records,
                    schedule_waves)
from .runtime import FieldRef, KernelRecord, Runtime

__all__ = ["build_dependency_graph", "graph_stats", "schedule_records",
           "schedule_waves", "FieldRef", "KernelRecord", "Runtime",
           "WaveExecutor", "WaveRaceError", "default_workers"]

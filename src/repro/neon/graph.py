"""Data-dependency graph extraction (paper Fig. 2 and Section V-C).

Neon derives the dependency DAG of a multi-resolution application from
the input/output fields each kernel declares.  We rebuild that analysis
over a recorded kernel trace: kernels become nodes; read-after-write,
write-after-read and write-after-write conflicts on the same
:class:`~repro.neon.runtime.FieldRef` become edges.  The transitive
reduction of this DAG is what the paper draws in Figure 2; its depth is
the number of unavoidable synchronisation points, and its width the
concurrency the scheduler can exploit.

When an ``access_map`` of observed accesses (see
:mod:`repro.analysis.capture`) is supplied, edges are refined to
row-interval granularity: two kernels that touch *disjoint* row ranges of
the same field do not conflict, and concurrent atomic-add scatters to the
same accumulator are commutative and carry no write-write edge.  This is
the check that lets a fused kernel read one range of a field while a
sibling writes another without serialising the pair.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping, NamedTuple, Sequence

import networkx as nx

from .runtime import FieldRef, KernelRecord

#: Observed or statically inferred accesses per record index.  Values
#: are duck-typed (:class:`repro.analysis.capture.Access` or
#: :class:`repro.analysis.static.StaticAccess`): anything with
#: ``field``/``kind``/``lo``/``hi`` attributes.
AccessMap = Mapping[int, Sequence[Any]]

__all__ = ["ConflictPair", "build_dependency_graph", "graph_stats",
           "iter_conflict_pairs", "schedule_records", "schedule_waves",
           "stream_assignment"]

_ATOMIC = "atomic"
_META = "meta"


def _access_overlap(a: Any, b: Any) -> bool:
    """True when two accesses can touch a common buffer entry.

    The coarse test is half-open row-interval intersection (``[lo, hi)``
    intervals that merely *touch* — ``[a,b)`` vs ``[b,c)`` — do not
    conflict, and an *empty* interval ``[x,x)`` conflicts with nothing,
    even when ``x`` lies inside the other interval — which the classic
    two-clause test ``a.lo < b.hi and b.lo < a.hi`` gets wrong).
    Accesses may additionally carry an ``entries`` attribute
    (an exact set of touched entry ids, used by the static analyzer for
    small scatter/gather patches): when **both** sides are exact the
    bounding intervals are only an envelope and the sets decide —
    interleaved-but-disjoint patches (e.g. Explosion vs Coalescence
    writes into the same ``f`` buffer) correctly do not conflict.
    """
    if not max(a.lo, b.lo) < min(a.hi, b.hi):
        return False
    ea = getattr(a, "entries", None)
    eb = getattr(b, "entries", None)
    if ea is not None and eb is not None:
        return not ea.isdisjoint(eb)
    return True


def _side_accesses(access_map: AccessMap, idx: int, ref: FieldRef,
                   want_write: bool) -> list[Any] | None:
    """Observed accesses of record ``idx`` on ``ref``, or None if unknown.

    ``None`` (record not captured, or captured with no access to a field
    it declares) means the caller must be conservative and assume the
    whole field is touched.
    """
    if idx not in access_map:
        return None
    out = [a for a in access_map[idx]
           if a.field == ref and a.kind != _META
           and (a.kind in ("write", _ATOMIC)) == want_write]
    return out or None


def _refs_conflict(access_map: AccessMap, i: int, i_writes: bool,
                   j: int, j_writes: bool, ref: FieldRef) -> bool:
    """Row-interval conflict test between two kernels on one field."""
    a_side = _side_accesses(access_map, i, ref, i_writes)
    b_side = _side_accesses(access_map, j, ref, j_writes)
    if a_side is None or b_side is None:
        return True  # no observation — keep the declared (conservative) edge
    for a in a_side:
        for b in b_side:
            if a.kind == _ATOMIC and b.kind == _ATOMIC:
                continue  # commutative atomic adds
            if _access_overlap(a, b):
                return True
    return False


class ConflictPair(NamedTuple):
    """One ordered conflicting access pair ``records[i]`` -> ``records[j]``.

    ``dep`` is the hazard class (``"raw"``/``"war"``/``"waw"``), ``ref``
    the :class:`~repro.neon.runtime.FieldRef` both kernels touch.  The
    program order ``i < j`` is the happens-before the serial semantics
    guarantees; any schedule (fused, threaded, compiled) must reproduce
    it for every pair this enumeration yields.
    """

    i: int
    j: int
    dep: str
    ref: FieldRef


def iter_conflict_pairs(records: Sequence[KernelRecord],
                        access_map: AccessMap | None = None,
                        ) -> Iterator[ConflictPair]:
    """Enumerate *every* conflicting ordered pair of a kernel stream.

    Unlike :func:`build_dependency_graph` (which keeps only the edges a
    scheduler needs — last writer / readers since last write), this walks
    all ``i < j`` pairs sharing a declared field, so transitively implied
    conflicts are reported too.  This is the ground truth the static
    fusion-legality proof checks a contracted stream against: a valid
    contraction preserves the order of each of these pairs, not merely
    the pruned edge set.

    With an ``access_map`` (observed or statically inferred accesses),
    pairs are refined to row-interval / exact-entry granularity and
    commutative atomic-atomic pairs are dropped, exactly as in
    interval-refined graph construction.
    """
    for j, rj in enumerate(records):
        jr, jw = set(rj.reads), set(rj.writes)
        for i in range(j):
            ri = records[i]
            for ref in jr | jw:
                i_reads = ref in ri.reads
                i_writes = ref in ri.writes
                if not (i_reads or i_writes):
                    continue
                deps: list[str] = []
                if i_writes and ref in jr:
                    deps.append("raw")
                if i_reads and ref in jw:
                    deps.append("war")
                if i_writes and ref in jw:
                    deps.append("waw")
                for dep in deps:
                    if access_map is None or _refs_conflict(
                            access_map, i, dep != "war", j, dep != "raw", ref):
                        yield ConflictPair(i, j, dep, ref)


def build_dependency_graph(records: list[KernelRecord],
                           reduce: bool = True,
                           access_map: AccessMap | None = None,
                           ) -> nx.DiGraph:
    """DAG over a kernel trace; node ``i`` is ``records[i]``.

    Node attributes: ``label`` (e.g. ``"S1"`` — kernel initial + level, the
    paper's Fig. 2 naming), ``name``, ``level``.

    ``access_map`` (record index → observed :class:`~repro.analysis.capture.Access`
    list, e.g. :attr:`repro.neon.runtime.Runtime.captured`) switches edge
    construction to row-interval granularity — see the module docstring.
    """
    g = nx.DiGraph()
    for i, r in enumerate(records):
        g.add_node(i, label=f"{r.name}{r.level}", name=r.name, level=r.level)
    if access_map is None:
        last_writer: dict[FieldRef, int] = {}
        readers_since_write: dict[FieldRef, list[int]] = {}
        for i, r in enumerate(records):
            for ref in r.reads:
                if ref in last_writer:
                    g.add_edge(last_writer[ref], i, dep="raw")
                readers_since_write.setdefault(ref, []).append(i)
            for ref in r.writes:
                for j in readers_since_write.get(ref, ()):  # WAR
                    if j != i:
                        g.add_edge(j, i, dep="war")
                if ref in last_writer and last_writer[ref] != i:  # WAW
                    g.add_edge(last_writer[ref], i, dep="waw")
                last_writer[ref] = i
                readers_since_write[ref] = []
    else:
        # Interval-refined construction: a skipped edge means the two
        # kernels touch disjoint rows, so *older* writers/readers stay
        # live — keep full logs instead of only the most recent writer.
        # Redundant (transitively implied) edges are harmless; the
        # transitive reduction removes them.
        writers: dict[FieldRef, list[int]] = {}
        readers: dict[FieldRef, list[int]] = {}
        for i, r in enumerate(records):
            for ref in r.reads:
                for j in writers.get(ref, ()):  # RAW
                    if j != i and _refs_conflict(access_map, j, True, i, False, ref):
                        g.add_edge(j, i, dep="raw")
            for ref in r.writes:
                for j in readers.get(ref, ()):  # WAR
                    if j != i and _refs_conflict(access_map, j, False, i, True, ref):
                        g.add_edge(j, i, dep="war")
                for j in writers.get(ref, ()):  # WAW
                    if j != i and _refs_conflict(access_map, j, True, i, True, ref):
                        g.add_edge(j, i, dep="waw")
            for ref in r.reads:
                readers.setdefault(ref, []).append(i)
            for ref in r.writes:
                writers.setdefault(ref, []).append(i)
    if reduce and g.number_of_edges():
        tr = nx.transitive_reduction(g)
        tr.add_nodes_from(g.nodes(data=True))
        return tr
    return g


def schedule_waves(g: nx.DiGraph) -> list[list[int]]:
    """Partition kernels into maximal concurrent waves (ASAP schedule).

    Consecutive waves are separated by one device synchronisation; the
    number of waves is therefore the synchronisation count of the step.
    """
    if g.number_of_nodes() == 0:
        return []
    depth = {n: 0 for n in g.nodes}
    for n in nx.topological_sort(g):
        for _, m in g.out_edges(n):
            depth[m] = max(depth[m], depth[n] + 1)
    waves: dict[int, list[int]] = {}
    for n, dd in depth.items():
        waves.setdefault(dd, []).append(n)
    return [sorted(waves[k]) for k in sorted(waves)]


def schedule_records(records: list[KernelRecord],
                     access_map: AccessMap | None = None,
                     ) -> list[list[int]]:
    """Waves of a record list in one call (graph build + ASAP partition).

    The transitive reduction is skipped: redundant edges cannot change
    ASAP depths, and the executor calls this on every step flush.
    """
    return schedule_waves(
        build_dependency_graph(records, reduce=False, access_map=access_map))


def stream_assignment(g: nx.DiGraph) -> dict[int, tuple[int, int]]:
    """Map each node to its ``(wave, stream)`` slot in the ASAP schedule.

    Kernels of one wave run concurrently, one per stream; the stream index
    is stable (position within the sorted wave), so the assignment is the
    per-stream track layout the timeline exporter renders — the schedule a
    Neon-style runtime with per-wave synchronisation would issue.
    """
    out: dict[int, tuple[int, int]] = {}
    for w, wave in enumerate(schedule_waves(g)):
        for s, node in enumerate(wave):
            out[node] = (w, s)
    return out


def graph_stats(g: nx.DiGraph) -> dict[str, int | float]:
    """Kernel count, dependency edges, depth (syncs) and mean width."""
    waves = schedule_waves(g)
    n = g.number_of_nodes()
    return {
        "kernels": n,
        "edges": g.number_of_edges(),
        "depth": len(waves),
        "max_width": max((len(w) for w in waves), default=0),
        "mean_width": (n / len(waves)) if waves else 0.0,
    }

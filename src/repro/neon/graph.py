"""Data-dependency graph extraction (paper Fig. 2 and Section V-C).

Neon derives the dependency DAG of a multi-resolution application from
the input/output fields each kernel declares.  We rebuild that analysis
over a recorded kernel trace: kernels become nodes; read-after-write,
write-after-read and write-after-write conflicts on the same
:class:`~repro.neon.runtime.FieldRef` become edges.  The transitive
reduction of this DAG is what the paper draws in Figure 2; its depth is
the number of unavoidable synchronisation points, and its width the
concurrency the scheduler can exploit.
"""

from __future__ import annotations

import networkx as nx

from .runtime import KernelRecord

__all__ = ["build_dependency_graph", "graph_stats", "schedule_waves"]


def build_dependency_graph(records: list[KernelRecord],
                           reduce: bool = True) -> nx.DiGraph:
    """DAG over a kernel trace; node ``i`` is ``records[i]``.

    Node attributes: ``label`` (e.g. ``"S1"`` — kernel initial + level, the
    paper's Fig. 2 naming), ``name``, ``level``.
    """
    g = nx.DiGraph()
    for i, r in enumerate(records):
        g.add_node(i, label=f"{r.name}{r.level}", name=r.name, level=r.level)
    last_writer: dict[object, int] = {}
    readers_since_write: dict[object, list[int]] = {}
    for i, r in enumerate(records):
        for ref in r.reads:
            if ref in last_writer:
                g.add_edge(last_writer[ref], i, dep="raw")
            readers_since_write.setdefault(ref, []).append(i)
        for ref in r.writes:
            for j in readers_since_write.get(ref, ()):  # WAR
                if j != i:
                    g.add_edge(j, i, dep="war")
            if ref in last_writer and last_writer[ref] != i:  # WAW
                g.add_edge(last_writer[ref], i, dep="waw")
            last_writer[ref] = i
            readers_since_write[ref] = []
    if reduce and g.number_of_edges():
        tr = nx.transitive_reduction(g)
        tr.add_nodes_from(g.nodes(data=True))
        return tr
    return g


def schedule_waves(g: nx.DiGraph) -> list[list[int]]:
    """Partition kernels into maximal concurrent waves (ASAP schedule).

    Consecutive waves are separated by one device synchronisation; the
    number of waves is therefore the synchronisation count of the step.
    """
    if g.number_of_nodes() == 0:
        return []
    depth = {n: 0 for n in g.nodes}
    for n in nx.topological_sort(g):
        for _, m in g.out_edges(n):
            depth[m] = max(depth[m], depth[n] + 1)
    waves: dict[int, list[int]] = {}
    for n, dd in depth.items():
        waves.setdefault(dd, []).append(n)
    return [sorted(waves[k]) for k in sorted(waves)]


def graph_stats(g: nx.DiGraph) -> dict[str, int | float]:
    """Kernel count, dependency edges, depth (syncs) and mean width."""
    waves = schedule_waves(g)
    n = g.number_of_nodes()
    return {
        "kernels": n,
        "edges": g.number_of_edges(),
        "depth": len(waves),
        "max_width": max((len(w) for w in waves), default=0),
        "mean_width": (n / len(waves)) if waves else 0.0,
    }

"""Mini-Neon: the programming-model substrate (paper Section V-C).

Neon composes GPU applications from *kernels* that declare which fields
they read and write; the runtime extracts the data-dependency graph,
schedules kernels, and places synchronisations only where needed.  We
reproduce the parts of that model the paper relies on:

* :class:`FieldRef` — identity of a data container (a field at a level);
* :class:`KernelRecord` — one executed kernel with its declared
  reads/writes and its memory-traffic footprint;
* :class:`Runtime` — executes kernel bodies immediately (host = the
  "device") while recording every launch for the profiler, the
  dependency-graph analysis (Fig. 2) and the GPU cost model.

The *functional* result of a program never depends on the recording; the
records are a faithful trace from which launch counts, bytes moved and
synchronisation depth are derived.

With a :class:`~repro.neon.executor.WaveExecutor` installed
(:meth:`Runtime.executor_install`), ``launch`` switches to a *deferred*
capture path: the record is appended immediately but the body closure is
queued, and at every :meth:`step_marker` (or explicit :meth:`flush`) the
captured step is partitioned into dependency waves and executed
concurrently — the way Neon issues independent kernels on separate CUDA
streams.  Results are bit-identical to immediate execution; the fallback
to immediate mode is automatic while access capture is active.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Any, Callable

__all__ = ["FieldRef", "KernelRecord", "Runtime"]

#: A kernel body: a no-argument closure over the engine's buffers (or
#: ``None`` for declaration-only launches).
KernelBody = Callable[[], None]


@dataclass(frozen=True)
class FieldRef:
    """Identity of a field instance on one grid level."""

    name: str
    level: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}@{self.level}"


@dataclass(frozen=True)
class KernelRecord:
    """Trace entry for one kernel launch.

    ``bytes_read``/``bytes_written`` count the *payload* DRAM traffic the
    equivalent CUDA kernel would generate; ``atomic_bytes`` is the subset
    of the writes performed with atomic adds (the Accumulate scatter).
    ``n_cells`` is the number of lattice cells the kernel touches (its
    thread count, up to block-granularity rounding).
    """

    name: str
    level: int
    n_cells: int
    bytes_read: int
    bytes_written: int
    reads: tuple[FieldRef, ...]
    writes: tuple[FieldRef, ...]
    atomic_bytes: int = 0
    tag: str = ""

    @property
    def bytes_total(self) -> int:
        """Declared DRAM traffic of the launch (reads + writes)."""
        return self.bytes_read + self.bytes_written


class Runtime:
    """Immediate-mode executor with full launch tracing.

    ``launch`` runs ``fn`` (if given) and appends a :class:`KernelRecord`.
    ``step_marker`` tags coarse-timestep boundaries so benchmarks can cut
    the trace per step.
    """

    def __init__(self) -> None:
        self.records: list[KernelRecord] = []
        self.markers: list[int] = []
        #: Active :class:`~repro.analysis.capture.AccessTracer`, or ``None``.
        self.tracer: Any = None
        #: Observed accesses per record index (populated in capture mode).
        self.captured: dict[int, list[Any]] = {}
        #: Active span recorder (see :mod:`repro.obs.spans`), or ``None``.
        #: Duck-typed so the runtime never imports the observability layer:
        #: ``on_launch(index, record, start, duration)`` after every launch,
        #: ``on_step(step_index, start_record, end_record)`` at each coarse-
        #: step marker, ``on_reset()`` on :meth:`reset`.  Spans are opt-in
        #: and, when absent, the hot path pays a single ``None`` test.
        self.spans: Any = None
        #: Installed :class:`~repro.neon.executor.WaveExecutor`, or ``None``
        #: (immediate execution).  Duck-typed: ``execute(runtime, pending)``
        #: and ``shutdown()``.
        self.executor: Any = None
        #: Active fault injector (see :mod:`repro.resilience.faults`), or
        #: ``None``.  Duck-typed like the span recorder so the runtime
        #: never imports the resilience layer: ``wrap_body(name, level,
        #: fn)`` may substitute a kernel body at launch, ``on_step(step)``
        #: fires after each coarse-step marker with the absolute
        #: completed-step count.  When absent the hot path pays a single
        #: ``None`` test.
        self.faults: Any = None
        #: Coarse steps completed before the current trace began (synced by
        #: checkpoint restore / post-warmup :meth:`reset`); per-step metrics
        #: subtract it so a restored run is not skewed by untraced history.
        self.steps_base = 0
        #: Plan-only mode (see :meth:`plan_start`): record launches without
        #: ever running kernel bodies — the declaration stream the static
        #: analyzer (:mod:`repro.analysis.static`) reasons about.
        self.plan_only = False
        self._pending: list[tuple[int, KernelBody | None]] = []

    def launch(self, name: str, level: int, *, n_cells: int,
               bytes_read: int, bytes_written: int,
               reads: tuple[FieldRef, ...] = (), writes: tuple[FieldRef, ...] = (),
               atomic_bytes: int = 0, tag: str = "",
               fn: KernelBody | None = None) -> None:
        """Record one kernel launch and run (or defer/skip) its body.

        Appends a :class:`KernelRecord` built from the *declared*
        access sets and byte counts, then dispatches ``fn`` through
        whichever hooks are installed: plan-only mode records without
        executing, a fault hook may wrap the body, a tracer shadows
        its accesses, and an executor queues it for wave replay.
        """
        if self.plan_only:
            # Declaration-only capture: the record is the whole launch.
            # Bodies, tracers, executors and fault hooks are all bypassed —
            # nothing observes or mutates simulation state, which is the
            # property the static analyzer's "no execution" contract needs.
            self.records.append(KernelRecord(
                name=name, level=level, n_cells=int(n_cells),
                bytes_read=int(bytes_read), bytes_written=int(bytes_written),
                reads=tuple(reads), writes=tuple(writes),
                atomic_bytes=int(atomic_bytes), tag=tag))
            return
        if self.faults is not None:
            # The injector sees every launch and may wrap the body (to
            # raise a simulated kernel/OOM failure when it runs); the
            # record itself is never altered.  Wrapping happens before
            # the deferred-capture branch so injected faults surface
            # identically in immediate and threaded execution.
            fn = self.faults.wrap_body(name, level, fn)
        if self.executor is not None and self.tracer is None:
            # Deferred capture: record now, run the body at the next flush.
            rec = KernelRecord(
                name=name, level=level, n_cells=int(n_cells),
                bytes_read=int(bytes_read), bytes_written=int(bytes_written),
                reads=tuple(reads), writes=tuple(writes),
                atomic_bytes=int(atomic_bytes), tag=tag)
            self.records.append(rec)
            self._pending.append((len(self.records) - 1, fn))
            return
        spans = self.spans
        t0 = perf_counter() if spans is not None else 0.0
        if self.tracer is not None:
            self.tracer.begin_launch()
            try:
                if fn is not None:
                    fn()
            finally:
                self.captured[len(self.records)] = self.tracer.end_launch()
        elif fn is not None:
            fn()
        rec = KernelRecord(
            name=name, level=level, n_cells=int(n_cells),
            bytes_read=int(bytes_read), bytes_written=int(bytes_written),
            reads=tuple(reads), writes=tuple(writes),
            atomic_bytes=int(atomic_bytes), tag=tag)
        self.records.append(rec)
        if spans is not None:
            spans.on_launch(len(self.records) - 1, rec, t0, perf_counter() - t0)

    def step_marker(self) -> None:
        """Mark the end of one coarse time step in the trace.

        In deferred mode this is the step's synchronisation point: every
        queued body has executed before the marker is placed.
        """
        self.flush()
        start = self.markers[-1] if self.markers else 0
        self.markers.append(len(self.records))
        if self.spans is not None:
            self.spans.on_step(len(self.markers) - 1, start, len(self.records))
        if self.faults is not None:
            # Field-corruption faults fire on step completion, before the
            # driver's callbacks (so an armed watchdog sees the damage at
            # the step it was injected).
            self.faults.on_step(self.steps_base + len(self.markers))

    def reset(self, steps_base: int | None = None) -> None:
        """Clear the trace; ``steps_base`` rebases per-step accounting.

        Pass the driver's current coarse-step count when resetting after
        a warmup or a checkpoint restore, so metrics over the new trace
        do not attribute zero-kernel steps to the untraced history.
        """
        self.flush()
        self.records.clear()
        self.markers.clear()
        self.captured.clear()
        if steps_base is not None:
            self.steps_base = int(steps_base)
        if self.spans is not None:
            self.spans.on_reset()

    # -- deferred execution --------------------------------------------------
    def flush(self) -> None:
        """Execute every queued kernel body (no-op in immediate mode).

        With an executor installed the queued step is partitioned into
        dependency waves and run concurrently; if the executor was
        removed with bodies still queued they run serially in program
        order, preserving the exact serial semantics.
        """
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        if self.executor is not None:
            self.executor.execute(self, pending)
        else:
            self._drain_serial(pending)

    def _drain_serial(self, pending: list[tuple[int, KernelBody | None]]) -> None:
        spans = self.spans
        for idx, fn in pending:
            t0 = perf_counter() if spans is not None else 0.0
            try:
                if fn is not None:
                    fn()
            except BaseException as exc:
                rec = self.records[idx]
                # dynamic attribute: the error contract shared with the
                # wave executor (callers look for exc.kernel_span)
                setattr(exc, "kernel_span",
                        {"index": idx, "name": rec.name,
                         "level": rec.level, "n_cells": rec.n_cells,
                         "start": t0, "dur_us": 0.0})
                del self.records[idx:]
                raise
            if spans is not None:
                spans.on_launch(idx, self.records[idx], t0, perf_counter() - t0)

    def abort_step(self) -> None:
        """Close the current (partial) coarse step after a mid-step failure.

        Queued bodies that never ran are discarded along with their
        records — keeping them would fabricate trace entries for kernels
        that never launched.  Whatever *did* execute since the last
        marker is closed off with a step marker, so span trees stay
        balanced and per-step trace queries never leak a partial step
        into the next one.  Idempotent and safe to call in immediate
        mode.
        """
        if self._pending:
            first = self._pending[0][0]
            del self.records[first:]
            self._pending.clear()
        start = self.markers[-1] if self.markers else 0
        if len(self.records) > start:
            self.step_marker()

    def executor_install(self, executor: Any) -> None:
        """Install (or, with ``None``, remove) a wave executor.

        Pending bodies are flushed under the *previous* mode first, and a
        replaced executor is shut down — the caller keeps a single clean
        ownership chain for worker threads.
        """
        if self.executor is executor:
            return
        self.flush()
        old, self.executor = self.executor, executor
        if old is not None:
            old.shutdown()

    # -- fault hooks ---------------------------------------------------------
    def faults_install(self, injector: Any) -> None:
        """Install (or, with ``None``, remove) a fault injector.

        Pending deferred bodies are flushed first so faults armed from
        now on only wrap launches issued from now on — a body captured
        before installation is never retroactively corrupted.
        """
        self.flush()
        self.faults = injector

    # -- span hooks ----------------------------------------------------------
    def spans_install(self, recorder: Any) -> None:
        """Install (or, with ``None``, remove) a span recorder.

        The recorder receives wall-clock start/duration for every launch
        from now on; it observes timing only and cannot perturb declared
        reads/writes, traffic accounting or the functional result.
        """
        self.flush()  # queued bodies report to the recorder active at enqueue
        self.spans = recorder

    # -- plan-only (declaration) capture -------------------------------------
    def plan_start(self) -> None:
        """Record declarations only: from now on no kernel body executes.

        The resulting trace is the *static kernel stream* — identical
        record-for-record to what an executing run would append (launch
        declarations are computed from grid geometry before any body
        runs), but produced without touching a single population value.
        :mod:`repro.analysis.static` builds its proofs over such streams.
        """
        self.flush()
        self.plan_only = True

    def plan_stop(self) -> None:
        """Leave plan-only mode; subsequent launches execute normally."""
        self.plan_only = False

    def capture_plan(self, drive: Callable[[], None]) -> list[KernelRecord]:
        """Capture the declaration stream ``drive`` would launch.

        Runs ``drive`` under plan-only mode and returns the records it
        appended, leaving the runtime's trace exactly as it was: the
        captured declarations are removed again, so profiling and
        per-step accounting never see the phantom launches.  This is the
        capture primitive behind compiled step plans
        (:mod:`repro.backend.compiler`).
        """
        self.flush()
        base = len(self.records)
        self.plan_start()
        try:
            drive()
        finally:
            self.plan_stop()
        captured = self.records[base:]
        del self.records[base:]
        return captured

    # -- access capture ------------------------------------------------------
    def capture_start(self) -> None:
        """Shadow-record every kernel body's actual buffer accesses.

        While active, each ``launch`` runs its body under an
        :class:`~repro.analysis.capture.AccessTracer`; the observed
        accesses land in :attr:`captured`, keyed by record index.  The
        functional result of the program is unaffected.

        Capture takes precedence over deferred execution: while a tracer
        is installed every launch runs its body immediately (serial
        fallback), because shadow recording needs launch bracketing.
        """
        if self.tracer is None:
            from ..analysis.capture import AccessTracer
            self.flush()
            self.tracer = AccessTracer()

    def capture_stop(self) -> dict[int, list[Any]]:
        """Stop capturing; return (and keep) the accesses observed so far."""
        self.tracer = None
        return dict(self.captured)

    # -- trace queries -------------------------------------------------------
    def last_step(self) -> list[KernelRecord]:
        """Records of the most recent complete coarse step."""
        if not self.markers:
            return list(self.records)
        start = self.markers[-2] if len(self.markers) >= 2 else 0
        return self.records[start:self.markers[-1]]

    def launches(self) -> int:
        """Total kernel launches recorded since the last reset."""
        return len(self.records)

    def total_bytes(self) -> int:
        """Total declared DRAM traffic over all recorded launches."""
        return sum(r.bytes_total for r in self.records)

    def summary_by_name(self) -> dict[str, dict[str, int]]:
        """Aggregate launches / cells / bytes per kernel name."""
        out: dict[str, dict[str, int]] = {}
        for r in self.records:
            agg = out.setdefault(r.name, {"launches": 0, "cells": 0, "bytes": 0})
            agg["launches"] += 1
            agg["cells"] += r.n_cells
            agg["bytes"] += r.bytes_total
        return out

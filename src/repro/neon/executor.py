"""Threaded wave executor for deferred kernel graphs (paper Fig. 2, Section V-C).

Neon's runtime does not run kernels in program order: it extracts the
data-dependency DAG of a step, partitions it into *waves* of mutually
independent kernels and issues each wave concurrently on CUDA streams,
synchronising only between waves.  :class:`WaveExecutor` reproduces that
execution model on the host: the runtime's deferred-capture path (see
:meth:`repro.neon.runtime.Runtime.launch`) enqueues each kernel's body
closure next to its :class:`~repro.neon.runtime.KernelRecord`, and at
every flush the executor

1. builds the *declared* dependency graph of the captured step and
   partitions it with :func:`~repro.neon.graph.schedule_waves`;
2. (debug mode) before the first replay of each unique step shape, runs
   the bodies serially under access capture and race-checks every wave
   with :func:`repro.analysis.races.detect_races` — the same gate
   ``python -m repro.analysis`` applies in CI;
3. executes each wave's bodies concurrently on a persistent
   :class:`~concurrent.futures.ThreadPoolExecutor`, with a barrier
   between waves (one barrier = one device synchronisation).

Scheduling over the **declared** graph is what makes threaded execution
bit-identical to serial: same-wave kernels touch disjoint rows of every
field (the race detector proves it per configuration), so each array
element is produced by exactly one body whose internal arithmetic order
is unchanged.  NumPy releases the GIL inside its vectorised kernels, so
independent bodies genuinely overlap on multi-core hosts.

Error contract: if a body raises, the executor drains the in-flight
wave, truncates the trace at the first failed kernel (its record and
every later one never "launched"), and re-raises the original exception
on the main thread with a ``kernel_span`` attribute describing the
failed kernel.  Fallback to serial execution is automatic whenever the
executor is not installed, access capture is active, or the debug gate
is replaying a new step shape.
"""

from __future__ import annotations

import os
import weakref
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter
from typing import Any, Callable, Iterable

from .graph import schedule_records

#: ``(record_index, body)`` pairs captured by the deferred launch path.
Pending = list[tuple[int, "Callable[[], None] | None"]]

__all__ = ["WaveExecutor", "WaveRaceError", "default_workers"]


class WaveRaceError(RuntimeError):
    """The debug gate found same-wave kernels with conflicting accesses."""

    def __init__(self, races: Iterable[Any]) -> None:
        self.races = list(races)
        lines = "\n  ".join(str(r) for r in self.races)
        super().__init__(
            f"{len(self.races)} intra-wave race(s) in the deferred step "
            f"(threaded execution would be unsound):\n  {lines}")


def default_workers() -> int:
    """Worker count: ``$REPRO_THREAD_WORKERS`` or a small per-host default.

    At least 2 so the concurrent path is exercised even on single-core
    hosts (where the pool degrades gracefully to interleaving).
    """
    env = os.environ.get("REPRO_THREAD_WORKERS", "")
    if env:
        return max(1, int(env))
    return max(2, min(8, os.cpu_count() or 1))


def _timed(fn: Callable[[], None] | None) -> tuple[float, float]:
    """Run one kernel body; return ``(start, duration)`` in seconds.

    On failure the timing rides along on the exception so the caller can
    still attach a span to the error report.
    """
    t0 = perf_counter()
    try:
        if fn is not None:
            fn()
    except BaseException as exc:
        setattr(exc, "_wave_timing", (t0, perf_counter() - t0))
        raise
    return t0, perf_counter() - t0


def _shutdown_pool(pool: ThreadPoolExecutor) -> None:
    pool.shutdown(wait=False)


class WaveExecutor:
    """Executes a deferred step's kernel bodies wave-by-wave on threads.

    Parameters
    ----------
    max_workers:
        Thread-pool width (default :func:`default_workers`).  The pool is
        created lazily, reused across flushes, and shut down by
        :meth:`shutdown` (``Simulation.close`` / the context manager) or
        when the executor is garbage-collected.
    debug:
        When true (default; override with ``$REPRO_THREADED_DEBUG=0``),
        the first occurrence of each unique step shape is replayed
        serially under access capture and race-checked before that shape
        is ever run concurrently.  A detected conflict raises
        :class:`WaveRaceError` instead of executing an unsound schedule.
    """

    def __init__(self, max_workers: int | None = None,
                 debug: bool | None = None) -> None:
        if debug is None:
            debug = os.environ.get("REPRO_THREADED_DEBUG", "1").lower() \
                not in ("0", "false", "off")
        self.max_workers = int(max_workers) if max_workers else default_workers()
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.debug = bool(debug)
        #: Per-flush execution stats consumed by ``repro.obs.metrics``.
        self.stats: list[dict[str, Any]] = []
        self._pool: ThreadPoolExecutor | None = None
        self._pool_pid: int | None = None
        self._finalizer: weakref.finalize | None = None
        self._verified: set[tuple[Any, ...]] = set()

    # -- pool lifecycle ------------------------------------------------------
    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is not None and self._pool_pid != os.getpid():
            # Forked child: only the forking thread survives fork, so the
            # inherited pool's worker threads do not exist here — a submit
            # would queue a future nothing ever completes.  Abandon the
            # inherited object (the parent's copy is untouched) and build
            # a fresh pool lazily in this process.
            if self._finalizer is not None:
                self._finalizer.detach()
                self._finalizer = None
            self._pool = None
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers, thread_name_prefix="repro-wave")
            self._pool_pid = os.getpid()
            # Leaked executors (no explicit close) must not pin worker
            # threads for the life of the process.
            self._finalizer = weakref.finalize(self, _shutdown_pool, self._pool)
        return self._pool

    def shutdown(self) -> None:
        """Stop the worker threads; the executor stays reusable (lazy pool)."""
        if self._pool is not None:
            pool, self._pool = self._pool, None
            if self._finalizer is not None:
                self._finalizer.detach()
                self._finalizer = None
            if self._pool_pid != os.getpid():
                # Pool inherited across fork: its threads exist only in
                # the parent, and joining them here would block forever.
                return
            pool.shutdown(wait=True)

    # -- execution -----------------------------------------------------------
    def execute(self, runtime: Any, pending: Pending) -> None:
        """Run the deferred bodies of one flush (called by ``Runtime.flush``).

        ``pending`` holds ``(record_index, body)`` pairs for the tail of
        ``runtime.records``; the body order is program order.
        """
        records = [runtime.records[i] for i, _ in pending]
        waves = schedule_records(records)
        if self.debug:
            key = tuple((r.name, r.level, r.reads, r.writes) for r in records)
            if key not in self._verified:
                self._gate(runtime, pending, records, waves)
                self._verified.add(key)
                return
        self._run_waves(runtime, pending, waves)

    def _run_waves(self, runtime: Any, pending: Pending,
                   waves: list[list[int]]) -> None:
        t_flush = perf_counter()
        timings: dict[int, tuple[float, float]] = {}
        wave_ms: list[float] = []
        for wave in waves:
            w0 = perf_counter()
            failures: list[tuple[int, BaseException]] = []
            if len(wave) == 1 or self.max_workers == 1:
                # A one-kernel wave gains nothing from a dispatch round-trip.
                for k in wave:
                    try:
                        timings[k] = _timed(pending[k][1])
                    except BaseException as exc:  # noqa: BLE001 - re-raised below
                        failures.append((k, exc))
            else:
                pool = self._ensure_pool()
                futures = [(k, pool.submit(_timed, pending[k][1])) for k in wave]
                for k, fut in futures:
                    try:
                        timings[k] = fut.result()
                    except BaseException as exc:  # noqa: BLE001 - re-raised below
                        failures.append((k, exc))
            wave_ms.append((perf_counter() - w0) * 1e3)
            if failures:
                self._fail(runtime, pending, timings, failures)
        self._report_spans(runtime, pending, timings)
        wall_ms = (perf_counter() - t_flush) * 1e3
        self.stats.append({
            "mode": "threaded", "kernels": len(pending), "waves": len(waves),
            "wave_ms": wave_ms, "wall_ms": wall_ms,
            "busy_ms": sum(d for _, d in timings.values()) * 1e3,
            "workers": self.max_workers,
        })

    def _gate(self, runtime: Any, pending: Pending, records: list[Any],
              waves: list[list[int]]) -> None:
        """Serial capture replay + race check of a new step shape."""
        from ..analysis.capture import AccessTracer
        from ..analysis.races import detect_races

        t_flush = perf_counter()
        tracer = AccessTracer()
        prev, runtime.tracer = runtime.tracer, tracer
        accesses: dict[int, list[Any]] = {}
        timings: dict[int, tuple[float, float]] = {}
        try:
            for k, (_, fn) in enumerate(pending):
                tracer.begin_launch()
                try:
                    timings[k] = _timed(fn)
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    accesses[k] = tracer.end_launch()
                    self._fail(runtime, pending, timings, [(k, exc)])
                accesses[k] = tracer.end_launch()
        finally:
            runtime.tracer = prev
        self._report_spans(runtime, pending, timings)
        wall_ms = (perf_counter() - t_flush) * 1e3
        self.stats.append({
            "mode": "debug-gate", "kernels": len(pending), "waves": len(waves),
            "wave_ms": [], "wall_ms": wall_ms, "busy_ms": wall_ms,
            "workers": self.max_workers,
        })
        races = detect_races(records, accesses, waves)
        if races:
            raise WaveRaceError(races)

    # -- error / span plumbing -----------------------------------------------
    def _fail(self, runtime: Any, pending: Pending,
              timings: dict[int, tuple[float, float]],
              failures: list[tuple[int, BaseException]]) -> None:
        """Truncate the trace at the first failed kernel and re-raise.

        Bodies of the same wave may already have executed (their effects
        stand, exactly as in-flight kernels on a device); their records
        and those of never-launched bodies are dropped so the trace only
        describes kernels that ran, keeping spans and records 1:1.
        """
        k_bad, exc = min(failures, key=lambda f: f[0])
        idx_bad = pending[k_bad][0]
        rec = runtime.records[idx_bad]
        self._report_spans(runtime, pending, timings, upto=k_bad)
        start, dur = getattr(exc, "_wave_timing", (0.0, 0.0))
        setattr(exc, "kernel_span", {
            "index": idx_bad, "name": rec.name, "level": rec.level,
            "n_cells": rec.n_cells, "start": start, "dur_us": dur * 1e6,
        })
        del runtime.records[idx_bad:]
        self.stats.append({
            "mode": "error", "kernels": k_bad, "waves": 0, "wave_ms": [],
            "wall_ms": 0.0, "busy_ms": 0.0, "workers": self.max_workers,
        })
        raise exc

    @staticmethod
    def _report_spans(runtime: Any, pending: Pending,
                      timings: dict[int, tuple[float, float]],
                      upto: int | None = None) -> None:
        """Forward measured body timings to the installed span recorder.

        Called from the main thread only, in record order, so the
        recorder needs no locking; observed slices genuinely overlap in
        threaded mode, which is what the per-stream timeline renders.
        """
        spans = runtime.spans
        if spans is None:
            return
        for k in sorted(timings):
            if upto is not None and k >= upto:
                continue
            idx = pending[k][0]
            start, dur = timings[k]
            spans.on_launch(idx, runtime.records[idx], start, dur)

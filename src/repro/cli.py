"""``python -m repro`` — the unified CLI facade.

One front door for every tool the repo grew, instead of five
``python -m repro.<pkg>`` entry points with drifting conventions::

    python -m repro analysis    # fusion-legality verifier, race gate, certs
    python -m repro obs         # telemetry runner (trace + metrics + watchdog)
    python -m repro report      # observatory run report (text/HTML/JSON)
    python -m repro resilience  # fault matrix, bit-identical recovery gate
    python -m repro bench       # bench smoke suite (appends history)
    python -m repro history     # bench-history trajectory + regression gate
    python -m repro serve       # multi-tenant job server (flood demo, summary)

Conventions shared across subcommands: ``--out-dir`` names the artifact
directory everywhere (subcommands whose native flag is ``--out`` get it
translated by the facade), ``--config`` selects a fusion config where
one applies, and ``--json`` switches machine-readable output where the
tool supports it.

The old per-package entry points still work but print a one-line
deprecation notice pointing here.
"""

from __future__ import annotations

import sys
from typing import Callable, Sequence

__all__ = ["main", "SUBCOMMANDS"]


def _analysis(argv: list[str]) -> int:
    from .analysis.cli import main
    return main(argv)


def _obs(argv: list[str]) -> int:
    from .obs.cli import main
    return main(_translate_out(argv))


def _report(argv: list[str]) -> int:
    from .obs.cli import main
    return main(["report"] + _translate_out(argv))


def _resilience(argv: list[str]) -> int:
    from .resilience.cli import main
    return main(_translate_out(argv))


def _bench(argv: list[str]) -> int:
    from .bench.smoke import main
    return main(_translate_out(argv))


def _history(argv: list[str]) -> int:
    from .bench.history import main
    return main(argv)


def _serve(argv: list[str]) -> int:
    from .serve.cli import main
    return main(argv)


#: subcommand -> (runner, one-line help)
SUBCOMMANDS: dict[str, tuple[Callable[[list[str]], int], str]] = {
    "analysis": (_analysis, "static/dynamic kernel-stream analyzer: "
                 "fusion legality, race gate, certificates"),
    "obs": (_obs, "telemetry runner: span trace, metrics, watchdog"),
    "report": (_report, "observatory run report (text/HTML/JSON)"),
    "resilience": (_resilience, "fault matrix with bit-identical "
                   "recovery gate"),
    "bench": (_bench, "benchmark smoke suite (appends BENCH_HISTORY)"),
    "history": (_history, "bench-history trajectory and regression gate"),
    "serve": (_serve, "async multi-tenant simulation job server"),
}


def _translate_out(argv: Sequence[str]) -> list[str]:
    """Map the facade's ``--out-dir`` onto a tool's native ``--out``."""
    out: list[str] = []
    for arg in argv:
        if arg == "--out-dir":
            out.append("--out")
        elif arg.startswith("--out-dir="):
            out.append("--out=" + arg[len("--out-dir="):])
        else:
            out.append(arg)
    return out


def _usage(stream=None) -> None:
    stream = stream if stream is not None else sys.stdout
    print("usage: python -m repro <subcommand> [options]\n", file=stream)
    print("subcommands:", file=stream)
    width = max(len(name) for name in SUBCOMMANDS)
    for name, (_, help_line) in SUBCOMMANDS.items():
        print(f"  {name.ljust(width)}  {help_line}", file=stream)
    print("\nRun 'python -m repro <subcommand> --help' for that tool's "
          "options.", file=stream)


def main(argv: Sequence[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args or args[0] in ("-h", "--help", "help"):
        _usage()
        return 0
    name, rest = args[0], args[1:]
    entry = SUBCOMMANDS.get(name)
    if entry is None:
        print(f"python -m repro: unknown subcommand {name!r}\n",
              file=sys.stderr)
        _usage(sys.stderr)
        return 2
    return entry[0](rest)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Simulation-as-a-service: async multi-tenant job running (Section VI at
fleet scale).

``repro.serve`` turns the single-run machinery — ``Simulation``, the
resilience ladder, checkpoints, the cost model, the unified event log —
into a multi-tenant job service:

* :class:`~repro.serve.spec.JobSpec` / :class:`~repro.serve.spec.JobStatus`
  / :class:`~repro.serve.spec.JobResult` — the typed job lifecycle;
* :func:`~repro.serve.oracle.predict_cost` — allocation-free cost-model
  pricing for admission control and fair scheduling;
* :class:`~repro.serve.server.JobServer` — the asyncio server:
  weighted-fair scheduling by predicted cost, bounded workers, durable
  checkpointed progress, worker-death recovery and restart-resume;
* ``python -m repro serve`` — demo flood + fleet summary CLI.
"""

from .oracle import JobCost, predict_cost
from .server import JobServer
from .spec import (JOB_STATES, TERMINAL_STATES, AdmissionError, JobCancelled,
                   JobResult, JobSpec, JobStatus, UnknownJobError,
                   WorkerKilled)
from .state import state_digest

__all__ = [
    "JOB_STATES", "TERMINAL_STATES", "AdmissionError", "JobCancelled",
    "JobCost", "JobResult", "JobServer", "JobSpec", "JobStatus",
    "UnknownJobError", "WorkerKilled", "predict_cost", "state_digest",
]

"""Durable job state: what survives worker death and server restart.

Each job owns one directory under ``<root>/jobs/<job_id>/``::

    job.json      -- lifecycle snapshot (atomic tmp+replace, like the
                     checkpoint manifest): state, steps done, restarts,
                     the JobSpec's scalar fields
    payload.pkl   -- the RefinementSpec + SimConfig, pickled (domain
                     masks and fusion objects are not JSON-able)
    ckpt/         -- the job's CheckpointStore (atomic generations,
                     keep-K pruning, torn-write fallback)

``job.json`` is the restart index: a new server scans the root, finds
jobs whose recorded state is non-terminal, rebuilds their
:class:`~repro.serve.spec.JobSpec` from ``payload.pkl`` and re-enqueues
them — the checkpoint store then resumes each from its last good
generation.  ``state_digest`` is the bit-identity witness: a SHA-256
over every level's population buffers plus the step count, so a resumed
or fault-recovered run can be proven identical to an unfaulted one.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile

import numpy as np

from .spec import JobSpec

__all__ = ["job_dir", "write_job_state", "read_job_state",
           "write_job_payload", "read_job_payload", "scan_jobs",
           "rebuild_jobspec", "state_digest"]

STATE_FILE = "job.json"
PAYLOAD_FILE = "payload.pkl"
CKPT_DIR = "ckpt"


def job_dir(root: str, job_id: str) -> str:
    """The job's directory under ``root`` (created by the writers)."""
    return os.path.join(str(root), "jobs", str(job_id))


def _atomic_write(path: str, data: bytes) -> None:
    dirname = os.path.dirname(os.path.abspath(path))
    os.makedirs(dirname, exist_ok=True)
    fd, tmp = tempfile.mkstemp(prefix=os.path.basename(path) + ".",
                               suffix=".tmp", dir=dirname)
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def write_job_state(directory: str, state: dict) -> str:
    """Atomically persist one job's lifecycle snapshot; return the path."""
    path = os.path.join(directory, STATE_FILE)
    _atomic_write(path, (json.dumps(state, indent=2, sort_keys=True,
                                    default=str) + "\n").encode())
    return path


def read_job_state(directory: str) -> dict | None:
    """The job's persisted snapshot, or ``None`` when absent/corrupt."""
    try:
        with open(os.path.join(directory, STATE_FILE)) as fh:
            state = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None
    return state if isinstance(state, dict) else None


def write_job_payload(directory: str, spec, config) -> str:
    """Persist the non-JSON-able job payload (domain + SimConfig)."""
    path = os.path.join(directory, PAYLOAD_FILE)
    _atomic_write(path, pickle.dumps({"spec": spec, "config": config},
                                     protocol=pickle.HIGHEST_PROTOCOL))
    return path


def read_job_payload(directory: str) -> tuple:
    """Load the pickled ``(spec, config)`` pair back."""
    with open(os.path.join(directory, PAYLOAD_FILE), "rb") as fh:
        payload = pickle.load(fh)
    return payload["spec"], payload["config"]


def scan_jobs(root: str) -> list[tuple[str, dict]]:
    """Every persisted job under ``root`` as ``(job_id, state)`` pairs.

    Jobs with a missing or unreadable ``job.json`` are skipped — a torn
    state write degrades to "not resumable", never to a crash.  Sorted
    by the recorded submission sequence so a restarted server re-enqueues
    in the original arrival order.
    """
    jobs_root = os.path.join(str(root), "jobs")
    out: list[tuple[str, dict]] = []
    try:
        names = sorted(os.listdir(jobs_root))
    except OSError:
        return out
    for name in names:
        state = read_job_state(os.path.join(jobs_root, name))
        if state is not None and state.get("job_id"):
            out.append((str(state["job_id"]), state))
    out.sort(key=lambda pair: pair[1].get("submitted_seq", 0))
    return out


def rebuild_jobspec(root: str, job_id: str, state: dict) -> JobSpec:
    """Reconstruct the :class:`JobSpec` of a persisted job for resume."""
    spec, config = read_job_payload(job_dir(root, job_id))
    labels = state.get("labels") or {}
    labels = tuple((k, v) for k, v in labels.items() if k != "tenant")
    return JobSpec(spec=spec, config=config,
                   steps=int(state.get("steps", 1)),
                   tenant=str(state.get("tenant", "default")),
                   priority=int(state.get("priority", 0)),
                   checkpoint_every=int(state.get("checkpoint_every", 5)),
                   max_retries=int(state.get("max_retries", 3)),
                   job_id=str(job_id), labels=labels)


def state_digest(sim) -> str:
    """SHA-256 witness of a simulation's exact state.

    Hashes the step count and every level's ``f`` / ``fstar`` /
    ``ghost_acc`` verbatim — the same buffers a checkpoint stores — so
    two runs agree iff they are bit-identical.
    """
    h = hashlib.sha256()
    h.update(f"steps={sim.steps_done}".encode())
    for lv, buf in enumerate(sim.engine.levels):
        for fname in ("f", "fstar", "ghost_acc"):
            arr = np.ascontiguousarray(getattr(buf, fname))
            h.update(f"|{fname}@{lv}:{arr.shape}:{arr.dtype}".encode())
            h.update(arr.tobytes())
    return h.hexdigest()

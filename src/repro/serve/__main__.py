"""Entry point: ``python -m repro.serve`` (alias of ``python -m repro serve``)."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

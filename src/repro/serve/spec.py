"""Typed job descriptions and results for the simulation job server.

A :class:`JobSpec` wraps everything one tenant's simulation needs — the
domain (:class:`~repro.grid.multigrid.RefinementSpec`), the physics and
execution profile (:class:`~repro.core.config.SimConfig`), the step
target — plus the service-level knobs the scheduler cares about: tenant
identity, priority, checkpoint cadence and retry budget.

The job lifecycle is::

    queued -> admitted -> running -> (checkpointed / degraded)* ->
        done | failed | cancelled

``checkpointed`` and ``degraded`` are not separate states: a running job
keeps ``state == "running"`` while its :class:`JobStatus` exposes the
checkpoint count and degradation rungs taken so far (and the unified
event log narrates each transition).  Rejected submissions never enter
the lifecycle — admission control raises :class:`AdmissionError`
synchronously from ``submit``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any
from uuid import uuid4

__all__ = [
    "JOB_STATES", "TERMINAL_STATES", "JobSpec", "JobStatus", "JobResult",
    "AdmissionError", "JobCancelled", "WorkerKilled", "UnknownJobError",
]

#: Every state a job can report.
JOB_STATES = ("queued", "admitted", "running", "done", "failed", "cancelled")
#: States a job never leaves.
TERMINAL_STATES = ("done", "failed", "cancelled")


class AdmissionError(RuntimeError):
    """The server refused a submission (queue or cost budget exceeded)."""

    def __init__(self, message: str, tenant: str | None = None) -> None:
        super().__init__(message)
        self.tenant = tenant


class JobCancelled(RuntimeError):
    """Raised inside a worker when its job's cancellation flag is set."""


class WorkerKilled(RuntimeError):
    """A worker died mid-job (chaos-injected in tests).

    Any exception escaping the per-job resilience machinery is treated
    as worker death by the server — the job is requeued and resumed from
    its last checkpoint by a fresh worker.  This type exists so tests
    and the demo driver can inject exactly that.
    """


class UnknownJobError(KeyError):
    """No job with the requested id is known to this server."""


@dataclass(frozen=True, eq=False)
class JobSpec:
    """One tenant's simulation job, ready to submit.

    Attributes
    ----------
    spec:
        Domain description (:class:`~repro.grid.multigrid.RefinementSpec`).
    config:
        Physics + execution profile (:class:`~repro.core.config.SimConfig`);
        the job honors its backend selection and the per-job resilience
        degradation ladder starts from it.
    steps:
        Coarse steps to run (>= 1).
    tenant:
        Tenant identity — the unit of fair-share scheduling and of the
        per-tenant telemetry labels.
    priority:
        Intra-tenant ordering: among one tenant's queued jobs the higher
        priority starts first (ties resolve in submit order).  Fairness
        *across* tenants is cost-weighted and unaffected by priority.
    checkpoint_every:
        Coarse steps between durable checkpoints; also the cancellation
        and worker-death recovery granularity.
    max_retries:
        Per-incident rollback-retry budget of the job's
        :class:`~repro.resilience.runner.RetryPolicy`.
    job_id:
        Stable identity; auto-generated when omitted.  Also the job's
        run id in the unified event log.
    labels:
        Extra key/value labels stamped on the job's event-log lines.
    """

    spec: Any
    config: Any
    steps: int
    tenant: str = "default"
    priority: int = 0
    checkpoint_every: int = 5
    max_retries: int = 3
    job_id: str = ""
    labels: tuple[tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if int(self.steps) < 1:
            raise ValueError("steps must be >= 1")
        if int(self.checkpoint_every) < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if int(self.max_retries) < 1:
            raise ValueError("max_retries must be >= 1")
        if not str(self.tenant):
            raise ValueError("tenant must be a non-empty string")
        if not self.job_id:
            object.__setattr__(self, "job_id", uuid4().hex[:12])
        if self.labels:
            object.__setattr__(
                self, "labels",
                tuple((str(k), str(v)) for k, v in self.labels))

    def label_dict(self) -> dict[str, str]:
        """The job's event-log labels (tenant always included)."""
        return {"tenant": str(self.tenant), **dict(self.labels)}


@dataclass
class JobStatus:
    """A point-in-time snapshot of one job's lifecycle."""

    job_id: str
    tenant: str
    state: str
    steps: int
    steps_done: int = 0
    priority: int = 0
    predicted_cost_us: float = 0.0
    checkpoints: int = 0
    retries: int = 0
    restarts: int = 0
    degradations: list = field(default_factory=list)
    error: str | None = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def degraded(self) -> bool:
        return bool(self.degradations)

    def as_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "state": self.state,
            "steps": self.steps,
            "steps_done": self.steps_done,
            "priority": self.priority,
            "predicted_cost_us": self.predicted_cost_us,
            "checkpoints": self.checkpoints,
            "retries": self.retries,
            "restarts": self.restarts,
            "degradations": list(self.degradations),
            "error": self.error,
        }


@dataclass
class JobResult:
    """The final outcome of one job.

    ``state`` is one of :data:`TERMINAL_STATES`.  ``run`` is the merged
    :class:`~repro.core.results.RunResult` of the job's segments (the
    last segment's backend/mode, summed steps and wall seconds, the
    final degradation/retry summary); ``state_digest`` is a SHA-256 over
    the final population buffers — two jobs that ran the same
    :class:`JobSpec` to completion must agree on it bit-for-bit,
    regardless of faults survived along the way.
    """

    job_id: str
    tenant: str
    state: str
    steps_done: int
    seconds: float = 0.0
    predicted_cost_us: float = 0.0
    checkpoints: int = 0
    retries: int = 0
    rollback_steps: int = 0
    restarts: int = 0
    degradations: list = field(default_factory=list)
    state_digest: str | None = None
    run: Any | None = None
    error: str | None = None

    def as_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "state": self.state,
            "steps_done": self.steps_done,
            "seconds": self.seconds,
            "predicted_cost_us": self.predicted_cost_us,
            "checkpoints": self.checkpoints,
            "retries": self.retries,
            "rollback_steps": self.rollback_steps,
            "restarts": self.restarts,
            "degradations": list(self.degradations),
            "state_digest": self.state_digest,
            "run": self.run.as_dict() if self.run is not None else None,
            "error": self.error,
        }

"""The scheduler's pricing oracle: cost-model time for a job, unrun.

Admission control and weighted-fair scheduling need the *predicted*
cost of a job before a single kernel executes — and without building
the job's population buffers (pricing a submission must not allocate
the memory the submission is asking for).  This module synthesizes the
job's kernel stream analytically from its
:class:`~repro.grid.multigrid.RefinementSpec` and fusion configuration,
then prices it with the same :func:`repro.gpu.costmodel.cost_trace`
roofline the benchmarks and the static linter use.

Two approximations keep it allocation-free, both deliberate:

* **active cells per level** are read off the spec's refinement masks
  (``refine_regions[k]`` flags the level-``k`` cells subdivided into
  ``k+1``), ignoring the solid mask — an upper bound that is exact for
  obstacle-free domains;
* **the kernel sequence per level** mirrors the stepper's fusion rules
  (CASE on the finest level, CA/SE/SO per flag, explosion only where a
  coarser level exists, coalescence only where a finer one does) with
  one full population read + write per kernel.

The result is deterministic, monotone in domain size and step count,
and differentiates fusion configs the way Fig. 9 does — which is all a
fair scheduler needs from its oracle.  Exact costs of what actually ran
remain the job of :mod:`repro.obs.roofline` after the fact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.fusion import FusionConfig
from ..core.lattice import get_lattice
from ..gpu.costmodel import cost_trace
from ..gpu.device import A100_40GB, DeviceSpec
from ..neon.runtime import KernelRecord

__all__ = ["JobCost", "active_cells_estimate", "level_kernel_names",
           "synthetic_step_records", "predict_cost"]

#: Fraction of a fine level's write traffic that crosses the refinement
#: interface atomically (the Accumulate scatter).  Any fixed fraction
#: keeps the oracle deterministic; 1/4 matches the ghost-to-owned ratio
#: of the small multigrids the test matrix uses.
_ATOMIC_FRACTION = 0.25


@dataclass(frozen=True)
class JobCost:
    """Predicted device cost of one job.

    ``total_us`` is the scheduling weight; the rest is the breakdown the
    fleet summary and the admission log report.
    """

    total_us: float
    per_step_us: float
    steps: int
    updates_per_step: float
    kernels_per_step: int
    active_per_level: tuple[int, ...]
    device: str

    def as_dict(self) -> dict:
        return {
            "total_us": self.total_us,
            "per_step_us": self.per_step_us,
            "steps": self.steps,
            "updates_per_step": self.updates_per_step,
            "kernels_per_step": self.kernels_per_step,
            "active_per_level": list(self.active_per_level),
            "device": self.device,
        }


def active_cells_estimate(spec) -> list[int]:
    """Owned-cell count per level, straight from the spec's masks.

    Level ``k`` holds the cells that exist at its resolution minus the
    ones subdivided away into level ``k+1``; existence at ``k+1`` is
    ``2^d`` children per flagged parent.  No grid is built.
    """
    d = len(spec.base_shape)
    existing = int(np.prod(spec.base_shape))
    counts: list[int] = []
    regions = list(spec.refine_regions)
    for k in range(len(regions) + 1):
        subdivided = int(np.count_nonzero(regions[k])) if k < len(regions) else 0
        counts.append(max(existing - subdivided, 0))
        existing = subdivided * (2 ** d)
    return counts


def level_kernel_names(config: FusionConfig, level: int,
                       num_levels: int) -> list[str]:
    """The kernel families one substep of ``level`` launches.

    Mirrors the stepper's fusion rules: Accumulate exists only on levels
    with a coarser neighbour (the fine side initiates the scatter),
    Explosion only where a coarser level feeds ghosts, Coalescence only
    where a finer level reports back.  The original (Fig. 4a) layout
    adds the explicit Explosion copy and gather Accumulate unfused.
    """
    finest = level == num_levels - 1
    has_coarser = level > 0
    has_finer = not finest
    if config.fuse_cs_finest and finest and has_coarser:
        return ["CASE"]
    names: list[str] = []
    if config.fuse_ca and has_coarser:
        names.append("CA")
    else:
        names.append("C")
        if has_coarser:
            names.append("A")
    fuse_se = config.fuse_se and has_coarser
    fuse_so = config.fuse_so and has_finer
    if fuse_se and fuse_so:
        names.append("SEO")
    elif fuse_se:
        names.append("SE")
        if has_finer:
            names.append("O")
    elif fuse_so:
        names.append("SO")
        if has_coarser:
            names.append("E")
    else:
        names.append("S")
        if has_coarser:
            names.append("E")
        if has_finer:
            names.append("O")
    return names


def synthetic_step_records(spec, config) -> list[KernelRecord]:
    """One coarse step's kernel stream, synthesized without a grid.

    Level ``L`` runs ``2^L`` substeps per coarse step (Algorithm 1);
    each kernel reads and writes one full population set of its level.
    """
    fusion = config.fusion
    lat = (get_lattice(config.lattice) if isinstance(config.lattice, str)
           else config.lattice)
    dsize = 8 if config.dtype is None else np.dtype(config.dtype).itemsize
    active = active_cells_estimate(spec)
    num_levels = len(active)
    records: list[KernelRecord] = []
    for level, cells in enumerate(active):
        payload = int(cells) * lat.q * dsize
        for _ in range(2 ** level):
            for name in level_kernel_names(fusion, level, num_levels):
                atomic = (int(payload * _ATOMIC_FRACTION)
                          if name in ("A", "CA", "CASE") else 0)
                records.append(KernelRecord(
                    name=name, level=level, n_cells=int(cells),
                    bytes_read=payload, bytes_written=payload,
                    reads=(), writes=(), atomic_bytes=atomic,
                    tag="oracle"))
    return records


def predict_cost(spec, config, steps: int,
                 device: DeviceSpec = A100_40GB) -> JobCost:
    """Price ``steps`` coarse steps of a job on ``device``.

    The synthetic stream is costed with the same roofline as every
    benchmark (:func:`repro.gpu.costmodel.cost_trace`, sequential
    mode); the total is linear in ``steps``.
    """
    records = synthetic_step_records(spec, config)
    kbc = (config.collision == "kbc" if isinstance(config.collision, str)
           else type(config.collision).__name__.lower().startswith("kbc"))
    per_step = cost_trace(records, device, kbc=kbc, concurrent=False)
    active = active_cells_estimate(spec)
    updates = float(sum(v * (2 ** lv) for lv, v in enumerate(active)))
    return JobCost(
        total_us=per_step.total_us * int(steps),
        per_step_us=per_step.total_us,
        steps=int(steps),
        updates_per_step=updates,
        kernels_per_step=len(records),
        active_per_level=tuple(active),
        device=device.name)

"""Async multi-tenant simulation job server.

:class:`JobServer` multiplexes many concurrent simulation jobs over a
bounded worker pool.  The event loop owns scheduling, admission and
telemetry; each admitted job runs on a worker thread driving a
:class:`~repro.resilience.runner.ResilientRunner` in checkpoint-cadence
segments, so every job gets the full per-job resilience ladder
(rollback-retry, mp -> threaded -> serial, safety-omega) *and* the
server gets segment-granular cancellation, durable progress and
worker-death recovery on top.

Scheduling policy — weighted fair queueing by predicted cost
-----------------------------------------------------------

Every submission is priced by the cost-model oracle
(:func:`repro.serve.oracle.predict_cost`) before it runs.  Each tenant
carries a *virtual time*: the cost-weighted service it has received,
divided by its weight.  The dispatcher always starts the next job of the
tenant with the **lowest virtual time** (ties break on tenant name, then
priority, then submit order within the tenant), and charges that
tenant's virtual time with the job's predicted cost at dispatch.  The
result: tenants receive device time in proportion to their weights
regardless of how many or how large their jobs are — a flood of small
jobs from one tenant cannot starve another's single big one.  A tenant
first seen mid-flight starts at the minimum live virtual time, so
late joiners neither monopolize nor wait out the backlog.

Durability
----------

Job state (``job.json``), payload (``payload.pkl``) and checkpoints live
under ``<root>/jobs/<job_id>/`` (:mod:`repro.serve.state`).  Worker
death — any exception escaping the resilience machinery — requeues the
job (bounded by ``max_restarts``); a fresh worker resumes from the last
checkpoint generation.  ``stop()`` interrupts running jobs at their next
segment boundary and records them as ``queued``; a new server on the
same root re-admits them on ``start()`` — that is the restart-resume
path, and recovery is bit-identical to an uninterrupted run because the
engine is deterministic and checkpoints are verbatim.

Telemetry
---------

Every job writes its lifecycle to the unified event log
(:mod:`repro.obs.log`) under its own run id with per-tenant labels; all
jobs share one ``events.jsonl`` sink in the server root.  The
:class:`~repro.obs.metrics.MetricsRegistry` carries fleet counters, and
:meth:`JobServer.fleet_summary` renders the per-tenant health snapshot
(also written to ``fleet_summary.json`` on ``stop()``).
"""

from __future__ import annotations

import asyncio
import os
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from ..core.results import RunResult
from ..gpu.device import A100_40GB, DeviceSpec
from ..io.checkpoint import CheckpointError, CheckpointStore
from ..obs.log import EventLog
from ..obs.metrics import MetricsRegistry
from ..resilience.runner import ResilientRunner, RetryExhausted, RetryPolicy
from .oracle import JobCost, predict_cost
from .spec import (TERMINAL_STATES, AdmissionError, JobCancelled, JobResult,
                   JobSpec, JobStatus, UnknownJobError)
from .state import (CKPT_DIR, job_dir, rebuild_jobspec, scan_jobs,
                    state_digest, write_job_payload, write_job_state)

__all__ = ["JobServer"]


class _Interrupted(RuntimeError):
    """Server shutdown reached a worker between segments (not a failure)."""


class _JobFailed(RuntimeError):
    """The job itself is unrecoverable (retry budget + ladder exhausted)."""


@dataclass
class _Job:
    """Server-internal bookkeeping for one submitted job."""

    spec: JobSpec
    status: JobStatus
    predicted: JobCost
    submitted_seq: int
    log: EventLog
    cancel_event: threading.Event = field(default_factory=threading.Event)
    done_event: asyncio.Event = field(default_factory=asyncio.Event)
    result: JobResult | None = None
    rollback_steps: int = 0
    seconds: float = 0.0
    resumed: bool = False
    flushed_lines: int = 0


class JobServer:
    """Simulation-as-a-service: submit jobs, await results.

    Parameters
    ----------
    root:
        Durable state directory (jobs, checkpoints, event sink, fleet
        summary).  ``None`` uses a self-cleaning temporary directory —
        fine for tests, pointless for restart-resume.
    workers:
        Concurrent jobs (worker threads).  Each job may additionally be
        threaded/mp internally per its own ``SimConfig``.
    max_queued_per_tenant:
        Admission bound on one tenant's live (non-terminal) jobs.
    max_outstanding_cost_us:
        Admission bound on the fleet's total predicted unfinished cost
        (cost-model microseconds); ``None`` disables the cap.
    tenant_weights:
        Fair-share weights (default 1.0 per tenant).
    device:
        :class:`~repro.gpu.device.DeviceSpec` the oracle prices against.
    faults:
        Optional ``factory(JobSpec) -> FaultInjector | None`` installed
        on each job's runner — the test matrix's per-job fault seam.
    chaos:
        Optional ``hook(job_id, step)`` called between segments on the
        worker thread; anything it raises is a worker death.  Test seam.
    max_restarts:
        Worker deaths tolerated per job before it is marked ``failed``.
    registry:
        Shared :class:`~repro.obs.metrics.MetricsRegistry` (fresh when
        omitted; exposed as :attr:`registry`).
    """

    def __init__(self, root: str | None = None, *, workers: int = 2,
                 max_queued_per_tenant: int = 64,
                 max_outstanding_cost_us: float | None = None,
                 tenant_weights: dict[str, float] | None = None,
                 device: DeviceSpec = A100_40GB,
                 faults: Callable[[JobSpec], Any] | None = None,
                 chaos: Callable[[str, int], None] | None = None,
                 max_restarts: int = 2,
                 registry: MetricsRegistry | None = None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._tmp = None
        if root is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-serve-")
            root = self._tmp.name
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)
        self.workers = int(workers)
        self.max_queued_per_tenant = int(max_queued_per_tenant)
        self.max_outstanding_cost_us = max_outstanding_cost_us
        self.tenant_weights = dict(tenant_weights or {})
        self.device = device
        self.faults = faults
        self.chaos = chaos
        self.max_restarts = int(max_restarts)
        self.registry = registry if registry is not None else MetricsRegistry()

        self._jobs: dict[str, _Job] = {}
        self._queue: list[str] = []
        self._vtime: dict[str, float] = {}
        self._tenant_stats: dict[str, dict] = {}
        self._outstanding_cost_us = 0.0
        self._seq = 0
        self._active = 0
        self._running = False
        self._stopping = threading.Event()
        self._wake: asyncio.Event | None = None
        self._dispatcher: asyncio.Task | None = None
        self._tasks: set[asyncio.Task] = set()
        #: Dispatch order of job ids — what the fairness tests assert on.
        self.started_order: list[str] = []
        self._log_path = os.path.join(self.root, "events.jsonl")

    # -- lifecycle -------------------------------------------------------------
    async def start(self, resume: bool = True) -> "JobServer":
        """Start the dispatcher; optionally re-admit persisted jobs.

        With ``resume`` every job recorded on disk in a non-terminal
        state (a previous server stopped, or died, mid-flight) is
        re-enqueued; its worker restores the newest readable checkpoint
        generation before stepping.
        """
        if self._running:
            raise RuntimeError("server already started")
        self._wake = asyncio.Event()
        self._stopping.clear()
        self._running = True
        if resume:
            for job_id, state in scan_jobs(self.root):
                if state.get("state") in TERMINAL_STATES or job_id in self._jobs:
                    continue
                try:
                    spec = rebuild_jobspec(self.root, job_id, state)
                except (OSError, KeyError, ValueError):
                    continue  # torn payload: not resumable, keep the dir
                job = self._admit(spec, restarts=int(state.get("restarts", 0)),
                                  resumed=True)
                job.status.steps_done = int(state.get("steps_done", 0))
                job.log.note("resubmitted", origin="server-restart",
                             steps_done=job.status.steps_done)
                self._flush_log(job)
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        return self

    async def stop(self) -> None:
        """Interrupt at segment boundaries, persist, stop dispatching.

        Running jobs are *not* lost: each is recorded as ``queued`` with
        its progress, and a new server on the same root resumes it from
        its last checkpoint.  Also writes ``fleet_summary.json``.
        """
        self._stopping.set()
        self._running = False
        if self._wake is not None:
            self._wake.set()
        if self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)
        if self._dispatcher is not None:
            await self._dispatcher
            self._dispatcher = None
        self.write_fleet_summary()

    async def drain(self) -> None:
        """Wait until every submitted job reaches a terminal state."""
        while True:
            pending = [j.done_event.wait() for j in self._jobs.values()
                       if not j.status.terminal]
            if not pending:
                return
            await asyncio.gather(*pending)

    async def __aenter__(self) -> "JobServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- public API ------------------------------------------------------------
    def predict(self, spec: JobSpec) -> JobCost:
        """The oracle's price for ``spec`` on this server's device."""
        return predict_cost(spec.spec, spec.config, spec.steps, self.device)

    async def submit(self, spec: JobSpec) -> str:
        """Admit one job; return its id or raise :class:`AdmissionError`.

        Admission is synchronous: the job is priced, checked against the
        per-tenant queue bound and the fleet cost budget, persisted, and
        queued for the fair scheduler.
        """
        if not self._running:
            raise RuntimeError("server is not started")
        if spec.job_id in self._jobs:
            raise ValueError(f"job id {spec.job_id!r} already submitted")
        tenant = str(spec.tenant)
        live = sum(1 for j in self._jobs.values()
                   if j.status.tenant == tenant and not j.status.terminal)
        if live >= self.max_queued_per_tenant:
            self._count("serve_rejected_total", "submissions refused")
            raise AdmissionError(
                f"tenant {tenant!r} already has {live} live jobs "
                f"(limit {self.max_queued_per_tenant})", tenant)
        cost = self.predict(spec)
        if (self.max_outstanding_cost_us is not None
                and self._outstanding_cost_us + cost.total_us
                > self.max_outstanding_cost_us):
            self._count("serve_rejected_total", "submissions refused")
            raise AdmissionError(
                f"fleet cost budget exceeded: outstanding "
                f"{self._outstanding_cost_us:.0f}us + job "
                f"{cost.total_us:.0f}us > "
                f"{self.max_outstanding_cost_us:.0f}us", tenant)
        job = self._admit(spec, cost=cost)
        return job.spec.job_id

    def status(self, job_id: str) -> JobStatus:
        """A snapshot of one job's lifecycle."""
        return self._get(job_id).status

    async def result(self, job_id: str) -> JobResult:
        """Wait for the job to finish; return its :class:`JobResult`."""
        job = self._get(job_id)
        await job.done_event.wait()
        assert job.result is not None
        return job.result

    def cancel(self, job_id: str) -> bool:
        """Request cancellation; ``False`` if the job already finished.

        Queued jobs are cancelled immediately; running jobs stop at
        their next segment boundary (checkpoint cadence).
        """
        job = self._get(job_id)
        if job.status.terminal:
            return False
        if job.spec.job_id in self._queue:
            self._queue.remove(job.spec.job_id)
            self._finalize(job, "cancelled")
            return True
        job.cancel_event.set()
        return True

    def jobs(self) -> list[JobStatus]:
        """Every known job's status, in submission order."""
        ordered = sorted(self._jobs.values(), key=lambda j: j.submitted_seq)
        return [j.status for j in ordered]

    # -- admission / bookkeeping -----------------------------------------------
    def _get(self, job_id: str) -> _Job:
        try:
            return self._jobs[str(job_id)]
        except KeyError:
            raise UnknownJobError(str(job_id)) from None

    def _admit(self, spec: JobSpec, cost: JobCost | None = None,
               restarts: int = 0, resumed: bool = False) -> _Job:
        if cost is None:
            cost = self.predict(spec)
        self._seq += 1
        status = JobStatus(job_id=spec.job_id, tenant=str(spec.tenant),
                           state="queued", steps=spec.steps,
                           priority=spec.priority,
                           predicted_cost_us=cost.total_us,
                           restarts=restarts)
        log = EventLog(run_id=spec.job_id, **spec.label_dict())
        job = _Job(spec=spec, status=status, predicted=cost,
                   submitted_seq=self._seq, log=log, resumed=resumed)
        job.status.restarts = restarts
        self._jobs[spec.job_id] = job
        self._queue.append(spec.job_id)
        self._outstanding_cost_us += cost.total_us
        stats = self._tenant(status.tenant)
        stats["submitted"] += 1
        stats["predicted_cost_us"] += cost.total_us
        self._count("serve_submitted_total", "jobs admitted")
        if not resumed:
            jdir = job_dir(self.root, spec.job_id)
            write_job_payload(jdir, spec.spec, spec.config)
            log.emit("meta", steps=spec.steps, tenant=status.tenant,
                     priority=spec.priority,
                     predicted_cost_us=cost.total_us,
                     predicted=cost.as_dict(),
                     config=spec.config.as_dict())
        self._persist(job)
        self._flush_log(job)
        if self._wake is not None:
            self._wake.set()
        return job

    def _tenant(self, tenant: str) -> dict:
        return self._tenant_stats.setdefault(tenant, {
            "submitted": 0, "done": 0, "failed": 0, "cancelled": 0,
            "restarts": 0, "retries": 0, "rollback_steps": 0,
            "degradations": 0, "checkpoints": 0,
            "predicted_cost_us": 0.0, "served_cost_us": 0.0,
            "wall_seconds": 0.0, "steps_done": 0,
        })

    def _count(self, name: str, help: str, amount: float = 1.0) -> None:
        self.registry.counter(name, help).inc(amount)

    def _persist(self, job: _Job) -> None:
        state = job.status.as_dict()
        state.update(
            checkpoint_every=job.spec.checkpoint_every,
            max_retries=job.spec.max_retries,
            labels=job.spec.label_dict(),
            submitted_seq=job.submitted_seq,
            updated_at=time.time())
        write_job_state(job_dir(self.root, job.spec.job_id), state)

    def _flush_log(self, job: _Job) -> None:
        """Append the job's new event lines to the shared sink."""
        lines = job.log.lines[job.flushed_lines:]
        if not lines:
            return
        import json
        with open(self._log_path, "a") as fh:
            for line in lines:
                fh.write(json.dumps(line, sort_keys=True, default=str) + "\n")
        job.flushed_lines = len(job.log.lines)

    # -- the fair scheduler ----------------------------------------------------
    def _weight(self, tenant: str) -> float:
        return float(self.tenant_weights.get(tenant, 1.0)) or 1.0

    def _pick_next(self) -> str:
        """Dequeue the next job under weighted fair queueing.

        Tenant choice: minimum virtual time (cost-weighted service so
        far), ties on tenant name for determinism.  Within the tenant:
        highest priority, then submit order.  The chosen tenant's
        virtual time is charged the job's predicted cost immediately, so
        consecutive picks interleave tenants even before any job ends.
        """
        by_tenant: dict[str, list[str]] = {}
        for jid in self._queue:
            by_tenant.setdefault(self._jobs[jid].status.tenant, []).append(jid)
        live_vt = [self._vtime[t] for t in by_tenant if t in self._vtime]
        floor = min(live_vt) if live_vt else 0.0
        for t in by_tenant:
            self._vtime.setdefault(t, floor)
        tenant = min(by_tenant, key=lambda t: (self._vtime[t], t))
        jid = min(by_tenant[tenant],
                  key=lambda j: (-self._jobs[j].status.priority,
                                 self._jobs[j].submitted_seq))
        self._queue.remove(jid)
        job = self._jobs[jid]
        self._vtime[tenant] += job.predicted.total_us / self._weight(tenant)
        return jid

    async def _dispatch_loop(self) -> None:
        assert self._wake is not None
        while self._running:
            while (self._running and self._queue
                   and self._active < self.workers
                   and not self._stopping.is_set()):
                jid = self._pick_next()
                job = self._jobs[jid]
                self._active += 1
                self.started_order.append(jid)
                job.status.state = "admitted"
                job.log.note("admitted", order=len(self.started_order),
                             predicted_cost_us=job.predicted.total_us)
                task = asyncio.create_task(self._run_job(job))
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)
            self._wake.clear()
            if not self._running:
                return
            await self._wake.wait()

    # -- per-job execution -----------------------------------------------------
    async def _run_job(self, job: _Job) -> None:
        job.status.state = "running"
        job.log.note("running", restarts=job.status.restarts)
        self._persist(job)
        self._flush_log(job)
        try:
            payload = await asyncio.to_thread(self._drive, job)
        except JobCancelled:
            self._note_events(job, [("note", {"message": "cancelled",
                                              "step": job.status.steps_done})])
            self._finalize(job, "cancelled")
        except _Interrupted:
            # Server shutdown: park the job as queued for the next
            # server incarnation; deliberately NOT terminal.
            job.status.state = "queued"
            job.log.note("interrupted", step=job.status.steps_done)
            self._persist(job)
            self._flush_log(job)
        except _JobFailed as exc:
            job.status.error = str(exc)
            self._note_events(job, [("note", {"message": "exhausted",
                                              "error": str(exc)})])
            self._finalize(job, "failed")
        except Exception as exc:  # worker death
            job.status.restarts += 1
            self._tenant(job.status.tenant)["restarts"] += 1
            self._count("serve_worker_deaths_total", "workers lost mid-job")
            job.log.emit("resilience", event="worker-death",
                         step=job.status.steps_done,
                         restart=job.status.restarts,
                         error=f"{type(exc).__name__}: {exc}")
            if (job.status.restarts <= self.max_restarts
                    and not self._stopping.is_set()):
                job.status.state = "queued"
                self._queue.append(job.spec.job_id)
                self._count("serve_requeues_total", "jobs requeued after "
                            "worker death")
                self._persist(job)
                self._flush_log(job)
            else:
                job.status.error = f"{type(exc).__name__}: {exc}"
                self._finalize(job, "failed")
        else:
            job.result = self._build_result(job, payload)
            self._note_events(job, payload["notes"])
            job.log.emit("metric", labels={"final": True},
                         values={"steps_done": job.status.steps_done,
                                 "seconds": job.seconds,
                                 "checkpoints": job.status.checkpoints,
                                 "retries": job.status.retries,
                                 "rollback_steps": job.rollback_steps,
                                 "restarts": job.status.restarts,
                                 "degradations": len(job.status.degradations)})
            self._finalize(job, "done")
        finally:
            self._active -= 1
            if self._wake is not None:
                self._wake.set()

    def _note_events(self, job: _Job, notes: list) -> None:
        for kind, data in notes:
            if kind == "note":
                job.log.note(data.pop("message", "note"), **data)
            else:
                job.log.emit(kind, **data)

    def _build_result(self, job: _Job, payload: dict) -> JobResult:
        return JobResult(
            job_id=job.spec.job_id, tenant=job.status.tenant, state="done",
            steps_done=job.status.steps_done, seconds=job.seconds,
            predicted_cost_us=job.status.predicted_cost_us,
            checkpoints=job.status.checkpoints, retries=job.status.retries,
            rollback_steps=job.rollback_steps, restarts=job.status.restarts,
            degradations=list(job.status.degradations),
            state_digest=payload["digest"], run=payload["run"])

    def _finalize(self, job: _Job, state: str) -> None:
        job.status.state = state
        stats = self._tenant(job.status.tenant)
        stats[{"done": "done", "failed": "failed",
               "cancelled": "cancelled"}[state]] += 1
        stats["wall_seconds"] += job.seconds
        stats["steps_done"] += job.status.steps_done
        stats["retries"] += job.status.retries
        stats["rollback_steps"] += job.rollback_steps
        stats["checkpoints"] += job.status.checkpoints
        stats["degradations"] += len(job.status.degradations)
        if state == "done":
            stats["served_cost_us"] += job.status.predicted_cost_us
        self._outstanding_cost_us = max(
            0.0, self._outstanding_cost_us - job.status.predicted_cost_us)
        self._count(f"serve_jobs_{state}_total", f"jobs {state}")
        if job.result is None:
            job.result = JobResult(
                job_id=job.spec.job_id, tenant=job.status.tenant, state=state,
                steps_done=job.status.steps_done, seconds=job.seconds,
                predicted_cost_us=job.status.predicted_cost_us,
                checkpoints=job.status.checkpoints,
                retries=job.status.retries, rollback_steps=job.rollback_steps,
                restarts=job.status.restarts,
                degradations=list(job.status.degradations),
                error=job.status.error)
        else:
            job.result.state = state
        job.log.note(state, step=job.status.steps_done)
        self.registry.snapshot(tenant=job.status.tenant,
                               job=job.spec.job_id, state=state)
        self._persist(job)
        self._flush_log(job)
        job.done_event.set()

    def _drive(self, job: _Job) -> dict:
        """Worker-thread body: run the job to its target in segments.

        Returns the completion payload; raises :class:`JobCancelled`,
        :class:`_Interrupted` (server stopping), :class:`_JobFailed`
        (retry budget + ladder exhausted) or any other exception, which
        the caller treats as worker death.
        """
        spec = job.spec
        jdir = job_dir(self.root, spec.job_id)
        store = CheckpointStore(os.path.join(jdir, CKPT_DIR), keep=3)
        faults = self.faults(spec) if self.faults is not None else None
        policy = RetryPolicy(checkpoint_every=spec.checkpoint_every,
                             max_retries=spec.max_retries)
        notes: list = []
        segments: list[RunResult] = []
        runner = ResilientRunner(spec.spec, spec.config, policy=policy,
                                 store=store, faults=faults)
        t0 = time.perf_counter()
        try:
            if store.latest() is not None and runner.sim.steps_done == 0:
                # A previous incarnation made progress: resume from the
                # newest readable generation instead of step 0.
                try:
                    restored = store.restore_latest(runner.sim)
                except CheckpointError:
                    restored = 0
                if restored:
                    notes.append(("resilience", {"event": "resume",
                                                 "from_step": restored,
                                                 "restart": job.status.restarts}))
                    job.status.steps_done = restored
            while runner.sim.steps_done < spec.steps:
                if self._stopping.is_set():
                    raise _Interrupted()
                if job.cancel_event.is_set():
                    raise JobCancelled(spec.job_id)
                if self.chaos is not None:
                    self.chaos(spec.job_id, runner.sim.steps_done)
                segment = min(spec.checkpoint_every,
                              spec.steps - runner.sim.steps_done)
                try:
                    res = runner.run(segment)
                except RetryExhausted as exc:
                    raise _JobFailed(str(exc)) from exc
                segments.append(res)
                report = res.report
                job.status.steps_done = res.final_step
                job.status.checkpoints += report.checkpoints
                job.status.retries += report.retries
                job.rollback_steps += report.rollback_steps
                for rung in report.degradations:
                    job.status.degradations.append(rung)
                    notes.append(("resilience", {"event": "degrade", **rung}))
                notes.append(("note", {"message": "checkpointed",
                                       "step": res.final_step}))
                job.seconds += res.seconds
                self._persist(job)
            digest = state_digest(runner.sim)
        finally:
            job.seconds = max(job.seconds, time.perf_counter() - t0)
            runner.close()
        return {"digest": digest, "notes": notes,
                "run": self._merge_segments(segments)}

    @staticmethod
    def _merge_segments(segments: list[RunResult]) -> RunResult | None:
        if not segments:
            return None
        steps = sum(s.steps for s in segments)
        seconds = sum(s.seconds for s in segments)
        last = segments[-1]
        weighted = (sum(s.mlups * s.seconds for s in segments) / seconds
                    if seconds > 0 else 0.0)
        return RunResult(steps=steps, final_step=last.final_step,
                         seconds=seconds, backend=last.backend,
                         mode=last.mode, mlups=weighted,
                         metrics=last.metrics, report=last.report)

    # -- fleet health ----------------------------------------------------------
    def fleet_summary(self) -> dict:
        """Per-tenant and fleet-wide health snapshot (JSON-ready)."""
        states: dict[str, int] = {}
        for j in self._jobs.values():
            states[j.status.state] = states.get(j.status.state, 0) + 1
        return {
            "version": 1,
            "root": self.root,
            "workers": self.workers,
            "device": self.device.name,
            "jobs_total": len(self._jobs),
            "states": states,
            "outstanding_cost_us": self._outstanding_cost_us,
            "started_order": list(self.started_order),
            "tenants": {t: dict(s) for t, s in
                        sorted(self._tenant_stats.items())},
            "jobs": [s.as_dict() for s in self.jobs()],
        }

    def write_fleet_summary(self, path: str | None = None) -> str:
        """Serialize :meth:`fleet_summary` (default ``fleet_summary.json``)."""
        import json
        if path is None:
            path = os.path.join(self.root, "fleet_summary.json")
        with open(path, "w") as fh:
            json.dump(self.fleet_summary(), fh, indent=2, sort_keys=True,
                      default=str)
            fh.write("\n")
        return path

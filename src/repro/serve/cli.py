"""``python -m repro serve`` — the job-server demo flood and fleet summary.

Two modes:

* **flood** (default): synthesize a multi-tenant flood of mixed-size
  lid-cavity jobs, run them through a :class:`~repro.serve.server.JobServer`
  on a bounded worker pool — optionally with chaos-injected worker
  deaths — and print the per-tenant fleet summary.  Everything durable
  (job state, checkpoints, ``events.jsonl``, ``fleet_summary.json``)
  lands in ``--out-dir``.
* **--summary**: post-hoc fleet health from a server root on disk —
  reads ``fleet_summary.json`` when a server wrote one, otherwise
  aggregates the persisted ``job.json`` snapshots.

Shared conventions with the other ``python -m repro`` subcommands:
``--out-dir`` for artifacts, ``--json`` for machine-readable output.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys

from ..bench.workloads import lid_cavity
from ..core.config import SimConfig
from .server import JobServer
from .spec import JobSpec, WorkerKilled
from .state import scan_jobs

__all__ = ["main", "build_flood", "summary_from_disk"]


def build_flood(jobs: int = 20, tenants: int = 3, seed: int = 0,
                steps_min: int = 4, steps_max: int = 10,
                checkpoint_every: int = 2) -> list[JobSpec]:
    """A deterministic multi-tenant flood of mixed-size cavity jobs.

    Sizes, levels and step targets vary per job (seeded), so predicted
    costs differ enough for the fair scheduler to have real work to do.
    """
    rng = random.Random(seed)
    specs: list[JobSpec] = []
    for i in range(jobs):
        base = rng.choice((10, 12, 16))
        levels = rng.choice((1, 2))
        wl = lid_cavity(base=(base, base), num_levels=levels,
                        lattice="D2Q9", collision="bgk")
        cfg = SimConfig(lattice="D2Q9", collision="bgk",
                        viscosity=wl.viscosity, threaded=False)
        specs.append(JobSpec(
            spec=wl.spec, config=cfg,
            steps=rng.randint(steps_min, steps_max),
            tenant=f"tenant-{i % tenants}",
            priority=rng.choice((0, 0, 1)),
            checkpoint_every=checkpoint_every,
            job_id=f"flood-{i:03d}",
            labels=(("workload", wl.name),)))
    return specs


def _chaos_hook(probability: float, seed: int = 0):
    """A seeded worker-death injector for the demo flood."""
    rng = random.Random(seed)

    def chaos(job_id: str, step: int) -> None:
        if step > 0 and rng.random() < probability:
            raise WorkerKilled(f"chaos killed worker of {job_id} at step {step}")

    return chaos


async def _run_flood(args) -> dict:
    chaos = _chaos_hook(args.chaos, args.seed) if args.chaos > 0 else None
    server = JobServer(args.out_dir, workers=args.workers, chaos=chaos,
                       max_restarts=max(4, args.jobs))
    async with server:
        for spec in build_flood(jobs=args.jobs, tenants=args.tenants,
                                seed=args.seed):
            await server.submit(spec)
        await server.drain()
        summary = server.fleet_summary()
    return summary


def summary_from_disk(root: str) -> dict:
    """Fleet summary reconstructed from a server root on disk."""
    import os
    path = os.path.join(str(root), "fleet_summary.json")
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError):
        pass
    jobs = scan_jobs(root)
    tenants: dict[str, dict] = {}
    states: dict[str, int] = {}
    for _, state in jobs:
        t = tenants.setdefault(str(state.get("tenant", "default")), {
            "submitted": 0, "done": 0, "failed": 0, "cancelled": 0,
            "restarts": 0, "retries": 0, "checkpoints": 0,
            "predicted_cost_us": 0.0, "steps_done": 0})
        s = str(state.get("state", "?"))
        states[s] = states.get(s, 0) + 1
        t["submitted"] += 1
        if s in t:
            t[s] += 1
        t["restarts"] += int(state.get("restarts", 0))
        t["retries"] += int(state.get("retries", 0))
        t["checkpoints"] += int(state.get("checkpoints", 0))
        t["predicted_cost_us"] += float(state.get("predicted_cost_us", 0.0))
        t["steps_done"] += int(state.get("steps_done", 0))
    return {"version": 1, "root": str(root), "jobs_total": len(jobs),
            "states": states, "tenants": tenants,
            "jobs": [state for _, state in jobs]}


def _print_summary(summary: dict) -> None:
    print(f"# fleet summary ({summary.get('root', '?')})")
    states = summary.get("states", {})
    print(f"jobs: {summary.get('jobs_total', 0)}  " +
          "  ".join(f"{k}={v}" for k, v in sorted(states.items())))
    tenants = summary.get("tenants", {})
    if tenants:
        cols = ("tenant", "submitted", "done", "failed", "restarts",
                "retries", "checkpoints", "steps_done", "predicted_cost_us")
        rows = [[t] + [s.get(c, 0) for c in cols[1:]]
                for t, s in sorted(tenants.items())]
        widths = [max(len(str(c)), *(len(f"{r[i]:.0f}" if isinstance(r[i], float)
                                         else str(r[i])) for r in rows))
                  for i, c in enumerate(cols)]
        print("  ".join(c.ljust(widths[i]) for i, c in enumerate(cols)))
        for r in rows:
            print("  ".join(
                (f"{v:.0f}" if isinstance(v, float) else str(v)).ljust(widths[i])
                for i, v in enumerate(r)))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="async multi-tenant simulation job server (demo flood "
                    "and fleet summary)")
    parser.add_argument("--jobs", type=int, default=20,
                        help="flood size (default 20)")
    parser.add_argument("--tenants", type=int, default=3,
                        help="tenants in the flood (default 3)")
    parser.add_argument("--workers", type=int, default=2,
                        help="concurrent worker threads (default 2)")
    parser.add_argument("--chaos", type=float, default=0.0, metavar="P",
                        help="per-segment worker-death probability "
                             "(demonstrates recovery; default 0)")
    parser.add_argument("--seed", type=int, default=0,
                        help="flood/chaos RNG seed (default 0)")
    parser.add_argument("--out-dir", default="serve-out",
                        help="server root for durable state and artifacts "
                             "(default ./serve-out)")
    parser.add_argument("--summary", action="store_true",
                        help="print the fleet summary of --out-dir instead "
                             "of running a flood")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable output")
    args = parser.parse_args(argv)

    if args.summary:
        summary = summary_from_disk(args.out_dir)
    else:
        summary = asyncio.run(_run_flood(args))
    if args.json:
        json.dump(summary, sys.stdout, indent=2, sort_keys=True, default=str)
        print()
    else:
        _print_summary(summary)
    if not args.summary:
        lost = [j for j in summary.get("jobs", [])
                if j.get("state") not in ("done", "cancelled")]
        if lost:
            print(f"LOST/FAILED JOBS: {[j.get('job_id') for j in lost]}",
                  file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Dense uniform-grid reference solver.

A deliberately plain, textbook collide-and-stream implementation over a
dense array (one ``np.roll`` per direction), independent of the
block-sparse machinery.  It serves two roles:

* **ground truth** — cross-validating the multi-resolution engine on
  smooth flows (a refined grid must converge to the uniform-fine
  solution);
* **CPU comparator stand-in** — the Section VI-A Palabos comparison runs
  a general-purpose multi-core CPU code; this solver, costed against a
  CPU :class:`~repro.gpu.device.DeviceSpec`, plays that role (see
  EXPERIMENTS.md for the substitution note).

Boundary handling matches the main engine: halfway bounce-back for
walls/moving walls/inlets, lattice weights at outflows, periodic wrap
otherwise.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.collision import equilibrium, macroscopics, make_collision
from ..core.lattice import Lattice
from ..grid.multigrid import DomainBC

__all__ = ["DenseLBM"]


class DenseLBM:
    """Uniform-grid LBM on a dense box."""

    def __init__(self, lat: Lattice, shape: tuple[int, ...], omega: float,
                 bc: DomainBC | None = None, solid: np.ndarray | None = None,
                 collision: str = "bgk") -> None:
        self.lat = lat
        self.shape = tuple(int(s) for s in shape)
        if len(self.shape) != lat.d:
            raise ValueError(f"shape {shape} does not match a {lat.d}-D lattice")
        self.omega = float(omega)
        self.bc = bc if bc is not None else DomainBC()
        self.bc.validate(lat.d)
        self.collision = make_collision(collision, lat)
        self.solid = (np.zeros(self.shape, dtype=bool) if solid is None
                      else np.asarray(solid, dtype=bool))
        if self.solid.shape != self.shape:
            raise ValueError("solid mask shape mismatch")
        self.fluid = ~self.solid
        n = int(np.prod(self.shape))
        self.f = np.empty((lat.q, n))
        self.initialize()
        self._build_boundary_masks()
        self.elapsed = 0.0
        self.steps_done = 0

    # -- setup -----------------------------------------------------------------
    def initialize(self, rho: float = 1.0, u=None) -> None:
        n = int(np.prod(self.shape))
        rr = np.full(n, rho)
        if u is None:
            uu = np.zeros((self.lat.d, n))
        elif callable(u):
            axes = [np.arange(s) + 0.5 for s in self.shape]
            centers = np.stack(np.meshgrid(*axes, indexing="ij"), axis=-1)
            uu = np.asarray(u(centers.reshape(-1, self.lat.d)))
        else:
            uu = np.broadcast_to(np.asarray(u, dtype=np.float64)[:, None],
                                 (self.lat.d, n)).copy()
        self.f = equilibrium(self.lat, rr, uu)
        self.elapsed = 0.0
        self.steps_done = 0

    def _build_boundary_masks(self) -> None:
        """Flat index lists per direction for every non-interior pull."""
        lat, d = self.lat, self.lat.d
        shape = np.asarray(self.shape)
        periodic = self.bc.periodic_axes(d)
        coords = np.stack(np.meshgrid(*[np.arange(s) for s in self.shape],
                                      indexing="ij"), axis=-1).reshape(-1, d)
        fluid_flat = self.fluid.ravel()
        self._patches: list[dict] = []
        for q in range(lat.q):
            v = lat.e[q]
            if not v.any():
                self._patches.append({})
                continue
            src = coords - v
            for axis in range(d):
                if periodic[axis]:
                    src[:, axis] %= shape[axis]
            below, above = src < 0, src >= shape
            outside = (below | above).any(axis=1)
            inside = ~outside
            src_clip = np.clip(src, 0, shape - 1)
            src_flat = np.ravel_multi_index(tuple(src_clip.T), self.shape)
            solid_src = inside & ~fluid_flat[src_flat] & fluid_flat
            patch: dict = {"bb": np.flatnonzero(solid_src)}
            face_rows: dict[int, np.ndarray] = {}
            out_rows = np.flatnonzero(outside & fluid_flat)
            if out_rows.size:
                # governing face by the same precedence as the main engine
                from ..grid.multigrid import _PRECEDENCE, _face_names
                names = _face_names(d)
                rank = np.full(out_rows.size, 99)
                face = np.zeros(out_rows.size, dtype=int)
                for axis in range(d):
                    for side, crossed in ((0, below[out_rows, axis]),
                                          (1, above[out_rows, axis])):
                        fi = 2 * axis + side
                        r = _PRECEDENCE[self.bc.face(names[fi]).kind]
                        better = crossed & (r < rank)
                        rank[better] = r
                        face[better] = fi
                for fi in np.unique(face):
                    face_rows[fi] = out_rows[face == fi]
            patch["faces"] = face_rows
            self._patches.append(patch)

    # -- stepping ----------------------------------------------------------------
    def step(self) -> None:
        lat = self.lat
        fs = self.collision.collide(self.f, self.omega)
        fnew = np.empty_like(fs)
        grid_shape = self.shape
        from ..grid.multigrid import _face_names
        names = _face_names(lat.d)
        for q in range(lat.q):
            rolled = np.roll(fs[q].reshape(grid_shape), shift=tuple(lat.e[q]),
                             axis=tuple(range(lat.d)))
            fnew[q] = rolled.ravel()
            patch = self._patches[q]
            if not patch:
                continue
            opp = lat.opp[q]
            if patch["bb"].size:
                fnew[q, patch["bb"]] = fs[opp, patch["bb"]]
            for fi, rows in patch["faces"].items():
                fbc = self.bc.face(names[fi])
                if fbc.kind == "wall":
                    fnew[q, rows] = fs[opp, rows]
                elif fbc.kind in ("moving", "inlet"):
                    uw = np.asarray(fbc.velocity, dtype=np.float64)
                    term = 2.0 * lat.w[q] * float(lat.ef[q] @ uw) / lat.cs2
                    fnew[q, rows] = fs[opp, rows] + term
                elif fbc.kind == "outflow":
                    fnew[q, rows] = lat.w[q]
        self.f = fnew
        self.steps_done += 1

    def run(self, n_steps: int) -> float:
        t0 = time.perf_counter()
        for _ in range(n_steps):
            self.step()
        dt = time.perf_counter() - t0
        self.elapsed += dt
        return dt

    # -- observables ----------------------------------------------------------------
    def macroscopics(self) -> tuple[np.ndarray, np.ndarray]:
        """Density ``shape`` and velocity ``(d,) + shape`` dense arrays.

        Solid cells hold meaningless values; mask with :attr:`fluid`.
        """
        rho, u = macroscopics(self.lat, self.f)
        return rho.reshape(self.shape), u.reshape((self.lat.d,) + self.shape)

    def total_mass(self) -> float:
        return float(self.f[:, self.fluid.ravel()].sum())

    def seconds_per_step(self) -> float:
        if self.steps_done == 0:
            raise RuntimeError("run() the solver first")
        return self.elapsed / self.steps_done

"""Independent reference implementations used for cross-validation."""

from .dense import DenseLBM

__all__ = ["DenseLBM"]

"""Deterministic fault injection for simulations under test.

A production LBM service dies in three characteristic ways, and each has
a deterministic stand-in here:

* **field corruption** — a NaN/Inf lands in a population buffer (soft
  error, bad reduction, numerical blow-up).  Kind ``"nan"`` / ``"inf"``:
  one owned entry of ``f`` at a chosen step/level/cell is overwritten
  via :meth:`repro.core.engine.Engine.corrupt_cell`.
* **kernel failure** — a launch raises (driver error, illegal access).
  Kind ``"kernel"``: the chosen kernel's body raises
  :class:`InjectedKernelError` instead of running.
* **device OOM** — an allocation fails mid-run.  Kind ``"oom"``: the
  body raises :class:`repro.gpu.memory.DeviceOOMError`.

The :class:`FaultInjector` installs on a runtime via the same duck-typed
hook mechanism as the span recorder (:attr:`repro.neon.runtime.Runtime.faults`):
``wrap_body`` may substitute a kernel body at launch, ``on_step`` fires
after every coarse-step marker.  Faults are armed by **absolute** coarse
step (``Runtime.steps_base`` + markers), so a rollback that rebases the
trace does not re-fire a one-shot fault — exactly the transient-fault
semantics the recovery matrix verifies bit-identical recovery against.
Fired state lives in the injector, surviving re-installation onto
rebuilt simulations (the degradation ladder's serial/safety rebuilds).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..gpu.memory import DeviceOOMError

__all__ = ["Fault", "FaultInjector", "InjectedKernelError"]


class InjectedKernelError(RuntimeError):
    """A fault-injected kernel body failure (stands in for a device fault)."""

    def __init__(self, fault: "Fault", kernel: str, level: int) -> None:
        super().__init__(
            f"injected kernel failure in {kernel}@{level} at step {fault.step}")
        self.fault = fault
        self.kernel = kernel
        self.level = level


@dataclass
class Fault:
    """One scheduled fault.

    Parameters
    ----------
    kind:
        ``"nan"`` / ``"inf"`` (field corruption), ``"kernel"`` (body
        raises :class:`InjectedKernelError`) or ``"oom"`` (body raises
        :class:`~repro.gpu.memory.DeviceOOMError`).
    step:
        Absolute 1-based coarse step.  Field faults fire when that step
        *completes*; kernel/OOM faults fire *during* it.
    level:
        Grid level of the corrupted cell / kernel filter (kernel faults
        match any level when ``kernel`` is ``None``).
    kernel:
        Kernel-name filter for ``kernel``/``oom`` faults (``"C"``,
        ``"CASE"``, …); ``None`` hits the first kernel of the step.
    cell / q:
        Owned-row and population indices for field corruption.
    times:
        Firings before the fault disarms.  ``1`` (default) models a
        transient fault — recovery must converge to the unfaulted
        reference; negative values never disarm (persistent fault, used
        to exercise the degradation ladder).
    only_threaded:
        Fire only while a wave executor is installed — models failures
        specific to the concurrent path, which the ladder's
        fall-back-to-serial rung must survive.
    """

    kind: str
    step: int
    level: int = 0
    kernel: str | None = None
    cell: int = 0
    q: int = 0
    times: int = 1
    only_threaded: bool = False
    remaining: int = field(init=False)

    _KINDS = ("nan", "inf", "kernel", "oom")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"choose from {self._KINDS}")
        if self.step < 1:
            raise ValueError("faults are armed by 1-based coarse step")
        self.remaining = self.times

    @property
    def armed(self) -> bool:
        return self.remaining != 0

    def consume(self) -> None:
        if self.remaining > 0:
            self.remaining -= 1


class FaultInjector:
    """Arms a list of :class:`Fault`\\ s on a simulation's runtime.

    One injector can serve a whole recovery session: :meth:`install` it
    onto every (re)built simulation and already-fired one-shot faults
    stay fired.  The ``fired`` log records every injection for reports
    and assertions.
    """

    def __init__(self, faults) -> None:
        self.faults: list[Fault] = list(faults)
        #: One dict per injection: kind, step, and the injection site.
        self.fired: list[dict] = []
        self._sim = None

    def install(self, sim) -> "FaultInjector":
        """Attach to ``sim``'s runtime (replacing any previous injector)."""
        self._sim = sim
        sim.runtime.faults_install(self)
        return self

    def uninstall(self) -> None:
        if self._sim is not None:
            self._sim.runtime.faults_install(None)
            self._sim = None

    # -- runtime hook protocol ------------------------------------------------
    def wrap_body(self, name: str, level: int, fn):
        """Substitute a raising body when a kernel/OOM fault matches.

        Called by :meth:`repro.neon.runtime.Runtime.launch` for every
        kernel.  The wrapper raises when it *runs* (immediately in
        serial mode, at the flush in deferred mode) and only then
        consumes the fault — a captured-but-aborted body does not burn
        a firing.
        """
        rt = self._sim.runtime
        step = rt.steps_base + len(rt.markers) + 1  # the in-flight step
        for f in self.faults:
            if f.kind not in ("kernel", "oom") or not f.armed:
                continue
            if f.step != step:
                continue
            if f.kernel is not None and (f.kernel != name or f.level != level):
                continue
            if f.only_threaded and rt.executor is None:
                continue

            def raising(f=f, name=name, level=level) -> None:
                if not f.armed:  # disarmed between capture and flush
                    if fn is not None:
                        fn()
                    return
                f.consume()
                self.fired.append({"kind": f.kind, "step": f.step,
                                   "kernel": name, "level": level})
                if f.kind == "oom":
                    raise DeviceOOMError(
                        f"injected allocation failure in {name}@{level} "
                        f"at step {f.step}",
                        requested=1 << 33, capacity=1 << 32)
                raise InjectedKernelError(f, name, level)

            return raising
        return fn

    def on_step(self, step: int) -> None:
        """Fire armed field-corruption faults for completed step ``step``."""
        if self._sim is None:
            return
        for f in self.faults:
            if f.kind not in ("nan", "inf") or not f.armed or f.step != step:
                continue
            if f.only_threaded and self._sim.runtime.executor is None:
                continue
            value = float("nan") if f.kind == "nan" else float("inf")
            f.consume()
            self._sim.engine.corrupt_cell(f.level, f.cell, f.q, value)
            self.fired.append({"kind": f.kind, "step": step,
                               "level": f.level, "cell": f.cell, "q": f.q})

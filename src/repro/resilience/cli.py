"""``python -m repro.resilience`` — the recovery fault matrix.

Runs every requested (fusion config x fault kind x execution mode) cell:
an unfaulted serial run of the workload provides the per-config
reference state, then each faulted run must *recover* — roll back to the
last good checkpoint, retry, and finish with population buffers
**bit-identical** to the reference.  Because serial and threaded
execution are themselves bit-identical, one serial reference per fusion
config covers both modes.

Each cell also has to leave a visible telemetry trail (a nonzero
``retries_total`` counter and at least one ``rollback`` recovery event),
so a recovery that silently happened — or silently didn't — fails the
matrix.  Results land in ``BENCH_resilience.json`` via
:func:`repro.obs.metrics.write_bench_json`; the exit status is non-zero
if any cell failed, which is what CI gates on.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from ..core.config import SimConfig
from ..core.fusion import ABLATION_CONFIGS, ORIGINAL_BASELINE, get_config
from ..core.simulation import Simulation
from ..obs.metrics import write_bench_json
from .faults import Fault, FaultInjector
from .runner import ResilientRunner, RetryExhausted, RetryPolicy

__all__ = ["main", "run_matrix", "MATRIX_WORKLOADS"]

ALL_CONFIGS = (ORIGINAL_BASELINE,) + tuple(ABLATION_CONFIGS)

#: Workloads small enough to run the full matrix functionally.
MATRIX_WORKLOADS: dict[str, dict] = {
    "cavity2d-2lvl": dict(base=(16, 16), num_levels=2, lattice="D2Q9"),
    "cavity2d": dict(base=(24, 24), num_levels=3, lattice="D2Q9",
                     widths=[7.0, 2.0]),
    "cavity3d": dict(base=(10, 10, 10), num_levels=2, lattice="D3Q19"),
}

FAULT_KINDS = ("nan", "kernel", "oom")
MODES = ("serial", "threaded")


def _state(sim: Simulation) -> list:
    return [buf.f[:, :buf.n_owned].copy() for buf in sim.engine.levels]


def _identical(a: list, b: list) -> bool:
    import numpy as np
    return all(np.array_equal(x, y) for x, y in zip(a, b))


def _make_fault(kind: str, step: int) -> Fault:
    # One transient fault mid-run; level 0 / cell 0 / the step's first
    # kernel are always present regardless of workload or fusion config.
    return Fault(kind, step=step)


def run_matrix(workload: str = "cavity2d-2lvl", *,
               configs: Sequence[str] | None = None,
               faults: Sequence[str] = FAULT_KINDS,
               modes: Sequence[str] = MODES,
               steps: int = 10, policy: RetryPolicy | None = None) -> dict:
    """Run the matrix; return ``{"rows": [...], "summary": {...}}``."""
    from ..bench.workloads import lid_cavity

    wl = lid_cavity(**MATRIX_WORKLOADS[workload])
    fusion_cfgs = (ALL_CONFIGS if configs is None
                   else [get_config(c) for c in configs])
    pol = policy if policy is not None else RetryPolicy(checkpoint_every=4)
    fault_step = max(2, steps // 2 + 1)  # mid-run, never the final step
    rows: list[dict] = []
    for fusion in fusion_cfgs:
        base_cfg = SimConfig(lattice=wl.lattice, collision=wl.collision,
                             viscosity=wl.viscosity, fusion=fusion)
        with Simulation.from_config(wl.spec, base_cfg,
                                    threaded=False) as ref_sim:
            ref_sim.run(steps)
            reference = _state(ref_sim)
        for mode in modes:
            cfg = base_cfg.replace(threaded=(mode == "threaded"))
            for kind in faults:
                injector = FaultInjector([_make_fault(kind, fault_step)])
                runner = ResilientRunner(wl.spec, cfg, policy=pol,
                                         faults=injector)
                row = {"config": fusion.name, "mode": mode, "fault": kind,
                       "fault_step": fault_step}
                try:
                    report = runner.run(steps).report
                    rollbacks = sum(1 for e in runner.recorder.events
                                    if e.name == "rollback")
                    row.update(
                        outcome=report.outcome,
                        retries=report.retries,
                        rollback_steps=report.rollback_steps,
                        checkpoints=report.checkpoints,
                        injected=len(injector.fired),
                        identical=_identical(reference, _state(runner.sim)),
                        telemetry=bool(
                            runner.registry["retries_total"].value >= 1
                            and rollbacks >= 1),
                    )
                    row["ok"] = bool(
                        row["outcome"] == "ok" and row["identical"]
                        and row["injected"] >= 1 and row["telemetry"])
                except RetryExhausted as exc:
                    row.update(outcome="failed", retries=exc.report.retries,
                               rollback_steps=exc.report.rollback_steps,
                               checkpoints=exc.report.checkpoints,
                               injected=len(injector.fired),
                               identical=False, telemetry=True, ok=False)
                finally:
                    runner.close()
                rows.append(row)
    passed = sum(1 for r in rows if r["ok"])
    return {
        "workload": wl.name,
        "steps": steps,
        "fault_step": fault_step,
        "rows": rows,
        "summary": {"cells": len(rows), "passed": passed,
                    "failed": len(rows) - passed},
    }


def _print_matrix(result: dict, out) -> None:
    print(f"workload {result['workload']}  steps {result['steps']}  "
          f"fault at step {result['fault_step']}", file=out)
    header = (f"{'config':<18} {'mode':<9} {'fault':<7} {'outcome':<9} "
              f"{'retries':>7} {'rollback':>8} {'identical':>9} {'ok':>4}")
    print(header, file=out)
    print("-" * len(header), file=out)
    for r in result["rows"]:
        print(f"{r['config']:<18} {r['mode']:<9} {r['fault']:<7} "
              f"{r['outcome']:<9} {r['retries']:>7} {r['rollback_steps']:>8} "
              f"{str(r['identical']):>9} {'yes' if r['ok'] else 'NO':>4}",
              file=out)
    s = result["summary"]
    print(f"{s['passed']}/{s['cells']} cells recovered bit-identically",
          file=out)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.resilience",
        description="Fault matrix: inject NaN/kernel/OOM faults across "
                    "fusion configs and execution modes, verify every "
                    "recovered run is bit-identical to an unfaulted "
                    "reference.")
    parser.add_argument("--workload", default="cavity2d-2lvl",
                        choices=sorted(MATRIX_WORKLOADS))
    parser.add_argument("--configs", default="all",
                        help="comma-separated fusion presets, or 'all' "
                             "(default) for the full Fig.-4 set")
    parser.add_argument("--faults", default=",".join(FAULT_KINDS),
                        help=f"comma-separated fault kinds "
                             f"(default {','.join(FAULT_KINDS)})")
    parser.add_argument("--modes", default=",".join(MODES),
                        help="comma-separated execution modes "
                             "(default serial,threaded)")
    parser.add_argument("--steps", type=int, default=10,
                        help="coarse steps per run (default 10)")
    parser.add_argument("--checkpoint-every", type=int, default=4,
                        help="checkpoint cadence in coarse steps")
    parser.add_argument("--max-retries", type=int, default=3)
    parser.add_argument("--out", default=None,
                        help="directory for BENCH_resilience.json "
                             "(default $BENCH_OUT_DIR or cwd)")
    args = parser.parse_args(argv)

    configs = None if args.configs == "all" else args.configs.split(",")
    for kind in args.faults.split(","):
        if kind not in FAULT_KINDS:
            parser.error(f"unknown fault kind {kind!r}")
    for mode in args.modes.split(","):
        if mode not in MODES:
            parser.error(f"unknown mode {mode!r}")

    policy = RetryPolicy(checkpoint_every=args.checkpoint_every,
                         max_retries=args.max_retries)
    try:
        result = run_matrix(args.workload, configs=configs,
                            faults=args.faults.split(","),
                            modes=args.modes.split(","),
                            steps=args.steps, policy=policy)
    except KeyError as exc:
        parser.error(str(exc.args[0]))

    _print_matrix(result, sys.stdout)
    path = write_bench_json("resilience", result, out_dir=args.out)
    print(f"wrote {path}")
    return 0 if result["summary"]["failed"] == 0 else 1

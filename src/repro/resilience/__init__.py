"""Resilience: fault injection, checkpoint-rollback retry, degradation.

The subsystem has three parts (DESIGN.md Section 11):

* :mod:`repro.resilience.faults` — deterministic fault injection
  (field corruption, kernel failures, simulated device OOM) via the
  runtime's duck-typed ``faults`` hook;
* :mod:`repro.resilience.runner` — :class:`ResilientRunner`, which wraps
  ``Simulation.run`` with periodic checkpoints, rollback-and-retry under
  a :class:`RetryPolicy`, and a degradation ladder (threaded -> serial,
  divergence -> reduced-omega safety profile);
* :mod:`repro.resilience.cli` — ``python -m repro.resilience``, the
  fault matrix verifying bit-identical recovery for every fusion config.
"""

from .faults import Fault, FaultInjector, InjectedKernelError
from .runner import ResilientRunner, RetryExhausted, RetryPolicy, RunReport

__all__ = [
    "Fault", "FaultInjector", "InjectedKernelError",
    "ResilientRunner", "RetryExhausted", "RetryPolicy", "RunReport",
]

"""Checkpoint-rollback retry and graceful degradation for long runs.

:class:`ResilientRunner` wraps ``Simulation.run`` the way a production
driver must: checkpoint periodically, watch numerical health, and when
the run fails — a divergence, a kernel fault, a device OOM, a scheduler
race — roll back to the last good checkpoint and retry under a bounded
:class:`RetryPolicy` instead of dying 20k steps into a 30k-step
wind-tunnel experiment.

Recovery from *transient* faults is **bit-identical** to an unfaulted
run: the engine is deterministic, a checkpoint captures every population
buffer verbatim, and a rollback restores all of them before re-running
the lost steps (``python -m repro.resilience`` verifies this across the
whole fusion-config matrix).

When retries alone cannot help, the runner walks a degradation ladder:

1. **mp -> threaded** — repeated worker-pool failures under the
   process-parallel backend (:class:`~repro.backend.mp.MpWorkerError`:
   a worker died, timed out or failed mid-step) rebuild the simulation
   on the in-process threaded executor after
   ``executor_failures_before_serial`` strikes.  Both modes are
   bit-identical to serial, so this rung never changes results.
2. **threaded -> serial** — a :class:`~repro.neon.executor.WaveRaceError`
   (deterministic scheduler defect) falls back immediately; repeated
   kernel failures under the executor fall back after
   ``executor_failures_before_serial`` strikes.  Serial execution is
   bit-identical, so this rung never changes results.
3. **reduced-omega safety profile** — repeated divergence means the
   physics, not the machinery, is unstable; after
   ``divergences_before_safety`` strikes the simulation is rebuilt with
   the coarse relaxation rate scaled by ``omega_safety_scale`` (more
   viscous, more stable) and the report marks the run ``degraded``.

Every recovery is visible in telemetry: ``retries_total`` /
``rollback_steps`` / ``checkpoints_total`` / ``degradations_total``
counters in the :class:`~repro.obs.metrics.MetricsRegistry`, and
``retry`` / ``rollback`` / ``degrade`` events in the
:class:`~repro.obs.spans.SpanRecorder` (events survive the trace resets
that rollbacks cause).
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field

from ..backend.mp import MpWorkerError
from ..core.config import SimConfig
from ..core.results import RunResult
from ..core.simulation import Simulation
from ..core.units import omega_from_viscosity
from ..gpu.memory import DeviceOOMError
from ..io.checkpoint import CheckpointStore
from ..neon.executor import WaveRaceError
from ..obs.metrics import MetricsRegistry
from ..obs.spans import SpanRecorder
from ..obs.watchdog import HealthWatchdog, SimulationDiverged

__all__ = ["RetryPolicy", "RunReport", "RetryExhausted", "ResilientRunner"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounds and cadences of the recovery loop.

    Attributes
    ----------
    max_retries:
        Rollback-retries allowed per ladder rung before either stepping
        down a rung or raising :class:`RetryExhausted`.  Each successful
        checkpoint and each degradation resets the count — the budget
        bounds *consecutive* failures, not failures per run.
    checkpoint_every:
        Coarse steps between automatic checkpoints.  Smaller means less
        recomputation per rollback, more I/O.
    backoff / backoff_factor / max_backoff:
        Seconds slept before the k-th consecutive retry:
        ``min(backoff * backoff_factor**(k-1), max_backoff)``.  The
        default ``backoff=0`` never sleeps (transient faults in this
        host-model runtime do not need wall-clock spacing; a real
        deployment facing flaky devices sets it nonzero).
    keep_checkpoints:
        Generations the :class:`~repro.io.checkpoint.CheckpointStore`
        retains (>= 2 keeps a fallback if the newest write tore).
    watchdog_every:
        Health-check cadence in coarse steps; the state is *always*
        checked right before a checkpoint is written, so a poisoned
        state never becomes a rollback target regardless of cadence.
    executor_failures_before_serial:
        Kernel/OOM failures under the threaded executor tolerated before
        falling back to serial execution (a ``WaveRaceError`` falls back
        on the first strike — it is deterministic, retrying is futile).
    divergences_before_safety:
        Divergences tolerated before rebuilding with the safety profile.
    omega_safety_scale:
        Factor applied to the coarse relaxation rate for the safety
        profile (< 1 raises viscosity, pulling the run away from the
        omega -> 2 stability boundary).
    """

    max_retries: int = 3
    checkpoint_every: int = 5
    backoff: float = 0.0
    backoff_factor: float = 2.0
    max_backoff: float = 30.0
    keep_checkpoints: int = 3
    watchdog_every: int = 1
    executor_failures_before_serial: int = 2
    divergences_before_safety: int = 3
    omega_safety_scale: float = 0.8

    def __post_init__(self) -> None:
        if self.max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.backoff < 0 or self.backoff_factor < 1:
            raise ValueError("backoff must be >= 0 with factor >= 1")
        if not 0 < self.omega_safety_scale < 1:
            raise ValueError("omega_safety_scale must be in (0, 1)")


@dataclass
class RunReport:
    """Structured outcome of one :meth:`ResilientRunner.run`.

    ``outcome`` is ``"ok"`` (target reached, physics untouched),
    ``"degraded"`` (target reached on a safety rung) or ``"failed"``
    (attached to :class:`RetryExhausted`).  ``failures`` lists every
    recovered incident; ``degradations`` the ladder rungs taken.
    """

    outcome: str = "ok"
    target_step: int = 0
    final_step: int = 0
    retries: int = 0
    rollback_steps: int = 0
    checkpoints: int = 0
    mode: str = "serial"
    omega_scale: float = 1.0
    failures: list = field(default_factory=list)
    degradations: list = field(default_factory=list)
    events: list = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "outcome": self.outcome,
            "target_step": self.target_step,
            "final_step": self.final_step,
            "retries": self.retries,
            "rollback_steps": self.rollback_steps,
            "checkpoints": self.checkpoints,
            "mode": self.mode,
            "omega_scale": self.omega_scale,
            "failures": list(self.failures),
            "degradations": list(self.degradations),
            "events": list(self.events),
        }


class RetryExhausted(RuntimeError):
    """Every retry and every ladder rung failed; carries the full report."""

    def __init__(self, message: str, report: RunReport) -> None:
        super().__init__(message)
        self.report = report


from .faults import InjectedKernelError

#: Failure types the runner recovers from; other exceptions recover only
#: when a ``kernel_span`` marks them as a kernel-body failure (attached
#: by the executor / deferred-drain error paths).  Anything else is a
#: programming error and propagates untouched.
_RECOVERABLE = (SimulationDiverged, WaveRaceError, DeviceOOMError,
                InjectedKernelError, MpWorkerError)


class ResilientRunner:
    """Runs a simulation to a target step count, surviving failures.

    Parameters
    ----------
    spec:
        The :class:`~repro.grid.multigrid.RefinementSpec` (rebuilds on
        the degradation ladder recompile the same domain).
    config:
        The :class:`~repro.core.config.SimConfig`; defaults to the
        paper's profile with ``viscosity=0.05``.
    policy:
        :class:`RetryPolicy` (defaults are sensible for tests/CI).
    store:
        A :class:`~repro.io.checkpoint.CheckpointStore`, a directory
        path, or ``None`` for a self-cleaning temporary directory.
    faults:
        Optional :class:`~repro.resilience.faults.FaultInjector`,
        (re-)installed on every build — the test matrix's hook.
    registry / recorder:
        Telemetry sinks; fresh ones are created when omitted and exposed
        as :attr:`registry` / :attr:`recorder`.
    setup:
        Optional ``setup(sim)`` hook run after every (re)build, before
        any stepping — the place to impose initial conditions, since a
        ladder rebuild must re-impose them before the checkpoint restore
        overwrites the state.
    sleep:
        Injectable ``sleep(seconds)`` for backoff (tests pass a stub).
    """

    def __init__(self, spec, config: SimConfig | None = None, *,
                 policy: RetryPolicy | None = None, store=None,
                 faults=None, registry: MetricsRegistry | None = None,
                 recorder: SpanRecorder | None = None,
                 setup=None, sleep=time.sleep) -> None:
        self.spec = spec
        self.config = config if config is not None else SimConfig(viscosity=0.05)
        self.policy = policy if policy is not None else RetryPolicy()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.recorder = recorder if recorder is not None else SpanRecorder()
        self.faults = faults
        self.setup = setup
        self._sleep = sleep
        self._tmp = None
        if store is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-ckpt-")
            store = CheckpointStore(self._tmp.name,
                                    keep=self.policy.keep_checkpoints)
        elif isinstance(store, (str, bytes)):
            store = CheckpointStore(str(store),
                                    keep=self.policy.keep_checkpoints)
        self.store: CheckpointStore = store
        self.sim: Simulation = self._build(self.config)
        self.watchdog: HealthWatchdog = self._make_watchdog()

    # -- construction / rebuilds ----------------------------------------------
    def _build(self, config: SimConfig) -> Simulation:
        sim = Simulation.from_config(self.spec, config)
        sim.enable_tracing(self.recorder)
        if self.faults is not None:
            self.faults.install(sim)
        if self.setup is not None:
            self.setup(sim)
        return sim

    def _make_watchdog(self) -> HealthWatchdog:
        return HealthWatchdog(self.sim, every=self.policy.watchdog_every,
                              registry=self.registry)

    def _rebuild(self, config: SimConfig) -> None:
        """Swap in a fresh simulation built from ``config``.

        The caller restores a checkpoint right after, so the rebuilt
        (re-initialised) state never runs.
        """
        old, self.config = self.sim, config
        old.close()
        self.sim = self._build(config)
        self.watchdog = self._make_watchdog()

    @property
    def mode(self) -> str:
        return self.sim.mode

    # -- counters --------------------------------------------------------------
    def _count(self, name: str, help: str, amount: float = 1.0) -> None:
        self.registry.counter(name, help).inc(amount)

    # -- the recovery loop -----------------------------------------------------
    def run(self, n_steps: int) -> RunResult:
        """Advance ``n_steps`` coarse steps, recovering as needed.

        Returns a :class:`~repro.core.results.RunResult` whose
        :attr:`~repro.core.results.RunResult.report` carries the full
        :class:`RunReport` (retries, rollbacks, degradation rungs);
        raises :class:`RetryExhausted` (report attached) when the budget
        and the ladder are spent.  Callable repeatedly — the checkpoint
        store and telemetry carry over.
        """
        pol = self.policy
        start_step = self.sim.steps_done
        t0 = time.perf_counter()
        report = RunReport(target_step=self.sim.steps_done + int(n_steps),
                           mode=self.mode, omega_scale=self._omega_scale())
        if self.store.latest() is None:
            # Step-0 anchor: the very first failure must have somewhere
            # to roll back to.
            self.store.save(self.sim, kind="initial")
            report.checkpoints += 1
            self._count("checkpoints_total", "checkpoints written")
        attempts = 0
        executor_strikes = 0
        mp_strikes = 0
        divergences = 0
        while self.sim.steps_done < report.target_step:
            segment_end = min(report.target_step,
                              self.sim.steps_done + pol.checkpoint_every)
            try:
                self.sim.run_until(segment_end, callback=self.watchdog.callback)
                # Validate *before* checkpointing: a poisoned state must
                # never become a rollback target (the watchdog cadence
                # may not have landed on this step).
                self.watchdog.check()
            except Exception as exc:
                if (not isinstance(exc, _RECOVERABLE)
                        and not hasattr(exc, "kernel_span")):
                    raise
                attempts += 1
                self._recover(report, exc, attempts)
                if attempts > pol.max_retries:
                    # Budget spent on this rung: step down or give up
                    # (raises RetryExhausted with the report attached).
                    attempts = self._degrade_or_fail(report, exc)
                    executor_strikes = mp_strikes = divergences = 0
                elif isinstance(exc, SimulationDiverged):
                    divergences += 1
                    if (divergences >= pol.divergences_before_safety
                            and self._omega_scale() == 1.0):
                        self._degrade_safety(report)
                        attempts = executor_strikes = divergences = 0
                        mp_strikes = 0
                elif self.mode == "mp":
                    # Worker-pool failures: the backend already respawns
                    # the pool per retry; repeated strikes abandon the
                    # process rung for the in-process threaded executor.
                    mp_strikes += 1
                    if mp_strikes >= pol.executor_failures_before_serial:
                        self._degrade_threaded(report)
                        attempts = mp_strikes = 0
                elif self.sim.executor is not None:
                    strikes_needed = (1 if isinstance(exc, WaveRaceError)
                                      else pol.executor_failures_before_serial)
                    executor_strikes += 1
                    if executor_strikes >= strikes_needed:
                        self._degrade_serial(report)
                        attempts = executor_strikes = 0
                self._rollback(report)
                self._backoff(attempts)
                continue
            self.store.save(self.sim, kind="periodic")
            report.checkpoints += 1
            self._count("checkpoints_total", "checkpoints written")
            attempts = 0
        report.final_step = self.sim.steps_done
        report.mode = self.mode
        report.omega_scale = self._omega_scale()
        report.outcome = "degraded" if report.degradations else "ok"
        report.events = [e.as_dict() for e in self.recorder.events]
        seconds = time.perf_counter() - t0
        result = self.sim._run_result(start_step, seconds)
        return RunResult(steps=result.steps, final_step=result.final_step,
                         seconds=seconds, backend=result.backend,
                         mode=result.mode, mlups=result.mlups,
                         metrics=result.metrics, report=report)

    # -- failure handling ------------------------------------------------------
    def _recover(self, report: RunReport, exc: BaseException,
                 attempt: int) -> None:
        kind = self._classify(exc)
        report.retries += 1
        report.failures.append({
            "step": self.sim.steps_done, "kind": kind,
            "attempt": attempt, "mode": self.mode,
            "error": f"{type(exc).__name__}: {exc}",
        })
        self._count("retries_total", "rollback-retries performed")
        self.recorder.on_event("retry", kind=kind, step=self.sim.steps_done,
                               attempt=attempt, mode=self.mode)

    @staticmethod
    def _classify(exc: BaseException) -> str:
        if isinstance(exc, SimulationDiverged):
            return "divergence"
        if isinstance(exc, WaveRaceError):
            return "race"
        if isinstance(exc, DeviceOOMError):
            return "oom"
        if isinstance(exc, MpWorkerError):
            return "worker"
        return "kernel"

    def _rollback(self, report: RunReport) -> None:
        failed_at = self.sim.steps_done
        restored = self.store.restore_latest(self.sim)
        lost = max(0, failed_at - restored)
        report.rollback_steps += lost
        self._count("rollback_steps", "coarse steps recomputed after "
                    "rollbacks", lost)
        self.recorder.on_event("rollback", from_step=failed_at,
                               to_step=restored, lost_steps=lost)

    def _backoff(self, attempt: int) -> None:
        pol = self.policy
        if pol.backoff <= 0 or attempt < 1:
            return
        self._sleep(min(pol.backoff * pol.backoff_factor ** (attempt - 1),
                        pol.max_backoff))

    # -- the degradation ladder ------------------------------------------------
    def _omega_scale(self) -> float:
        return getattr(self, "_omega_scale_applied", 1.0)

    def _degrade_threaded(self, report: RunReport) -> None:
        """Mp rung: rebuild on the in-process threaded executor.

        The backend choice is baked in at construction, so unlike the
        threaded -> serial rung this needs a rebuild; the caller restores
        a checkpoint right after, exactly like the safety-profile rung.
        """
        at_step = self.sim.steps_done
        self._rebuild(self.config.replace(backend="interpreted",
                                          threaded=True))
        self._note_degradation(report, "threaded", step=at_step)

    def _degrade_serial(self, report: RunReport) -> None:
        """Threaded rung: drop the wave executor; bit-identical by construction."""
        self.sim.disable_threading()
        self.config = self.config.replace(threaded=False)
        self._note_degradation(report, "serial")

    def _degrade_safety(self, report: RunReport) -> None:
        """Rung 2: rebuild with a reduced-omega (more viscous) profile."""
        cfg = self.config
        at_step = self.sim.steps_done
        omega0 = (cfg.omega0 if cfg.omega0 is not None
                  else omega_from_viscosity(cfg.viscosity))
        scaled = omega0 * self.policy.omega_safety_scale
        self._omega_scale_applied = (self._omega_scale()
                                     * self.policy.omega_safety_scale)
        self._rebuild(cfg.replace(viscosity=None, omega0=scaled))
        self._note_degradation(report, "safety-omega", step=at_step,
                               omega0=scaled)

    def _note_degradation(self, report: RunReport, rung: str, **extra) -> None:
        entry = {"rung": rung, "step": self.sim.steps_done, **extra}
        report.degradations.append(entry)
        self._count("degradations_total", "ladder rungs taken")
        self.recorder.on_event("degrade", **entry)

    def _degrade_or_fail(self, report: RunReport, exc: BaseException) -> int:
        """Retry budget spent: step down a rung (returning a reset attempt
        count of 0) or raise :class:`RetryExhausted`."""
        if self.mode == "mp":
            self._degrade_threaded(report)
            return 0
        if self.sim.executor is not None:
            self._degrade_serial(report)
            return 0
        if isinstance(exc, SimulationDiverged) and self._omega_scale() == 1.0:
            self._degrade_safety(report)
            return 0
        report.final_step = self.sim.steps_done
        report.mode = self.mode
        report.omega_scale = self._omega_scale()
        report.outcome = "failed"
        report.events = [e.as_dict() for e in self.recorder.events]
        raise RetryExhausted(
            f"gave up at step {self.sim.steps_done}/{report.target_step} "
            f"after {report.retries} retries "
            f"(last failure: {type(exc).__name__}: {exc})", report)

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        """Release executor threads and the temporary checkpoint dir.

        Idempotent: double-shutdown (a server's ``finally`` path racing
        explicit cleanup) is a no-op the second time, and a runner whose
        construction failed mid-way closes whatever it holds.
        """
        sim = getattr(self, "sim", None)
        if sim is not None:
            sim.close()
        if self.faults is not None:
            self.faults.uninstall()
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None

    def __enter__(self) -> "ResilientRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

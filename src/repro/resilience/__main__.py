"""Entry point: ``python -m repro.resilience`` (deprecated alias).

Kept as a thin shim; the front door is ``python -m repro resilience``.
"""

import sys

from .cli import main

if __name__ == "__main__":
    print("note: 'python -m repro.resilience' is deprecated; use "
          "'python -m repro resilience'", file=sys.stderr)
    sys.exit(main(sys.argv[1:]))

"""Error norms and comparison helpers for validation experiments."""

from __future__ import annotations

import numpy as np

__all__ = ["l2_error", "linf_error", "relative_l2", "interp_profile"]


def l2_error(a: np.ndarray, b: np.ndarray) -> float:
    """Root-mean-square difference."""
    a, b = np.asarray(a, dtype=np.float64), np.asarray(b, dtype=np.float64)
    return float(np.sqrt(np.mean((a - b) ** 2)))


def linf_error(a: np.ndarray, b: np.ndarray) -> float:
    return float(np.max(np.abs(np.asarray(a) - np.asarray(b))))


def relative_l2(a: np.ndarray, ref: np.ndarray) -> float:
    """||a - ref||_2 / ||ref||_2."""
    ref = np.asarray(ref, dtype=np.float64)
    denom = float(np.linalg.norm(ref))
    if denom == 0.0:
        raise ValueError("reference norm is zero")
    return float(np.linalg.norm(np.asarray(a) - ref)) / denom


def interp_profile(x_ref: np.ndarray, x: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Linear interpolation of a simulated profile onto reference abscissae."""
    order = np.argsort(x)
    return np.interp(x_ref, np.asarray(x)[order], np.asarray(values)[order])

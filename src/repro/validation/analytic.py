"""Analytic flows used to validate the LBM physics at machine-checkable
tolerances: the decaying Taylor-Green vortex and plane Poiseuille /
Couette channel flows.  These exercise exactly the code paths the paper's
experiments rely on (collision, streaming, bounce-back, refinement
interfaces) but with closed-form targets.
"""

from __future__ import annotations

import numpy as np

__all__ = ["taylor_green_2d", "taylor_green_decay_rate", "poiseuille_profile",
           "couette_profile"]


def taylor_green_2d(pts: np.ndarray, t: float, nu: float, u0: float,
                    lengths: tuple[float, float]) -> np.ndarray:
    """Velocity of the 2-D Taylor-Green vortex at time ``t``.

    Periodic box of size ``lengths``; ``pts`` is ``(N, 2)``; returns
    velocities ``(2, N)``.  The vortex decays as ``exp(-nu (kx^2+ky^2) t)``.
    """
    lx, ly = lengths
    kx, ky = 2.0 * np.pi / lx, 2.0 * np.pi / ly
    damp = np.exp(-nu * (kx * kx + ky * ky) * t)
    x, y = pts[:, 0], pts[:, 1]
    u = -u0 * np.cos(kx * x) * np.sin(ky * y) * damp
    v = u0 * (kx / ky) * np.sin(kx * x) * np.cos(ky * y) * damp
    return np.stack([u, v], axis=0)


def taylor_green_decay_rate(nu: float, lengths: tuple[float, float]) -> float:
    """Exponential decay rate of the vortex kinetic energy (= 2 nu k^2)."""
    kx, ky = 2.0 * np.pi / lengths[0], 2.0 * np.pi / lengths[1]
    return 2.0 * nu * (kx * kx + ky * ky)


def poiseuille_profile(y: np.ndarray, height: float, u_max: float) -> np.ndarray:
    """Steady plane-Poiseuille x-velocity profile for wall positions 0, H."""
    return 4.0 * u_max * y * (height - y) / (height * height)


def couette_profile(y: np.ndarray, height: float, u_wall: float) -> np.ndarray:
    """Steady plane-Couette profile: lower wall at rest, upper at ``u_wall``."""
    return u_wall * y / height

"""Reference lid-driven cavity profiles of Ghia, Ghia & Shin (1982).

The paper validates its implementation against these profiles (Fig. 7):
normalized velocity components sampled along the two centerlines of the
cavity.  Coordinates are normalized to the cavity edge; the origin used
by the tables below is the *lower-left corner* (the paper's figure shifts
the origin to the box centre — use :func:`centered` for that convention).
"""

from __future__ import annotations

import numpy as np

__all__ = ["GHIA_RE100_U", "GHIA_RE100_V", "GHIA_RE400_U", "GHIA_RE400_V",
           "profiles", "centered"]

# u/u_lid along the vertical centerline (x = 0.5): columns (y, u).
GHIA_RE100_U = np.array([
    [0.0000, 0.00000], [0.0547, -0.03717], [0.0625, -0.04192], [0.0703, -0.04775],
    [0.1016, -0.06434], [0.1719, -0.10150], [0.2813, -0.15662], [0.4531, -0.21090],
    [0.5000, -0.20581], [0.6172, -0.13641], [0.7344, 0.00332], [0.8516, 0.23151],
    [0.9531, 0.68717], [0.9609, 0.73722], [0.9688, 0.78871], [0.9766, 0.84123],
    [1.0000, 1.00000],
])

# v/u_lid along the horizontal centerline (y = 0.5): columns (x, v).
GHIA_RE100_V = np.array([
    [0.0000, 0.00000], [0.0625, 0.09233], [0.0703, 0.10091], [0.0781, 0.10890],
    [0.0938, 0.12317], [0.1563, 0.16077], [0.2266, 0.17507], [0.2344, 0.17527],
    [0.5000, 0.05454], [0.8047, -0.24533], [0.8594, -0.22445], [0.9063, -0.16914],
    [0.9453, -0.10313], [0.9531, -0.08864], [0.9609, -0.07391], [0.9688, -0.05906],
    [1.0000, 0.00000],
])

GHIA_RE400_U = np.array([
    [0.0000, 0.00000], [0.0547, -0.08186], [0.0625, -0.09266], [0.0703, -0.10338],
    [0.1016, -0.14612], [0.1719, -0.24299], [0.2813, -0.32726], [0.4531, -0.17119],
    [0.5000, -0.11477], [0.6172, 0.02135], [0.7344, 0.16256], [0.8516, 0.29093],
    [0.9531, 0.55892], [0.9609, 0.61756], [0.9688, 0.68439], [0.9766, 0.75837],
    [1.0000, 1.00000],
])

GHIA_RE400_V = np.array([
    [0.0000, 0.00000], [0.0625, 0.18360], [0.0703, 0.19713], [0.0781, 0.20920],
    [0.0938, 0.22965], [0.1563, 0.28124], [0.2266, 0.30203], [0.2344, 0.30174],
    [0.5000, 0.05186], [0.8047, -0.38598], [0.8594, -0.44993], [0.9063, -0.23827],
    [0.9453, -0.22847], [0.9531, -0.19254], [0.9609, -0.15663], [0.9688, -0.12146],
    [1.0000, 0.00000],
])

_TABLES = {
    100: (GHIA_RE100_U, GHIA_RE100_V),
    400: (GHIA_RE400_U, GHIA_RE400_V),
}


def profiles(reynolds: int) -> tuple[np.ndarray, np.ndarray]:
    """(u-profile, v-profile) tables for a tabulated Reynolds number."""
    if reynolds not in _TABLES:
        raise KeyError(f"no Ghia table for Re={reynolds}; available: {sorted(_TABLES)}")
    return _TABLES[reynolds]


def centered(table: np.ndarray) -> np.ndarray:
    """Shift the coordinate column to the paper's box-centre origin."""
    out = table.copy()
    out[:, 0] -= 0.5
    return out

"""Validation data and metrics: Ghia cavity profiles, analytic flows, norms."""

from .analytic import (couette_profile, poiseuille_profile, taylor_green_2d,
                       taylor_green_decay_rate)
from .ghia import GHIA_RE100_U, GHIA_RE100_V, centered, profiles
from .metrics import interp_profile, l2_error, linf_error, relative_l2

__all__ = [
    "couette_profile", "poiseuille_profile", "taylor_green_2d",
    "taylor_green_decay_rate",
    "GHIA_RE100_U", "GHIA_RE100_V", "centered", "profiles",
    "interp_profile", "l2_error", "linf_error", "relative_l2",
]

"""repro — GPU-optimized grid refinement for the lattice Boltzmann method.

A full reproduction of Mahmoud, Salehipour & Meneghin, *Optimized GPU
Implementation of Grid Refinement in Lattice Boltzmann Method* (IPDPS
2024): the volume-based multi-resolution LBM algorithm, the block-sparse
grid stack, the mini-Neon kernel runtime, every kernel-fusion variant of
the paper's Figure 4, and an A100 performance/memory model that stands in
for the GPU hardware.

Quickstart::

    from repro import SimConfig, Simulation, RefinementSpec, wall_refinement

    spec = RefinementSpec(base_shape=(24, 24, 24),
                          refine_regions=wall_refinement((24, 24, 24), 2, [4.0]))
    sim = Simulation.from_config(spec, SimConfig(lattice="D3Q19",
                                                 viscosity=0.05))
    sim.run(100)
"""

from .core import (ABLATION_CONFIGS, BGK, D2Q9, D3Q19, D3Q27, FUSED_FULL, KBC, TRT,
                   drag_coefficient, kinetic_energy, legalize_regions, regrid,
                   solid_force, vorticity_indicator,
                   MODIFIED_BASELINE, ORIGINAL_BASELINE, Engine, FlowScales,
                   FusionConfig, Lattice, NonUniformStepper, RunResult, SimConfig,
                   Simulation, get_config, get_lattice, mlups, omega_at_level,
                   omega_from_viscosity)
from .backend import (Backend, CompiledAABackend, CompiledBackend,
                      InterpretedBackend, PlanAdmissionError, StepPlan,
                      available_backends, make_backend, resolve_backend)
from .grid import (AirplaneProxy, BlockSparseGrid, Box, DomainBC, Ellipsoid, FaceBC,
                   MultiGrid, RefinementSpec, Shape, Sphere, build_multigrid,
                   shell_refinement, voxelize, wall_refinement)
from .neon import Runtime, build_dependency_graph, graph_stats

__version__ = "1.0.0"

__all__ = [
    "ABLATION_CONFIGS", "BGK", "D2Q9", "D3Q19", "D3Q27", "FUSED_FULL", "KBC", "TRT",
    "MODIFIED_BASELINE", "ORIGINAL_BASELINE", "Engine", "FlowScales",
    "FusionConfig", "Lattice", "NonUniformStepper", "RunResult", "SimConfig",
    "Simulation",
    "get_config", "get_lattice", "mlups", "omega_at_level", "omega_from_viscosity",
    "AirplaneProxy", "BlockSparseGrid", "Box", "DomainBC", "Ellipsoid", "FaceBC",
    "MultiGrid", "RefinementSpec", "Shape", "Sphere", "build_multigrid",
    "shell_refinement", "voxelize", "wall_refinement",
    "legalize_regions", "regrid", "vorticity_indicator",
    "drag_coefficient", "kinetic_energy", "solid_force",
    "Runtime", "build_dependency_graph", "graph_stats",
    "Backend", "CompiledAABackend", "CompiledBackend", "InterpretedBackend",
    "PlanAdmissionError", "StepPlan", "available_backends", "make_backend",
    "resolve_backend",
    "__version__",
]

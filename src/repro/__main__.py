"""Entry point: ``python -m repro`` (the unified CLI facade)."""

from .cli import main

raise SystemExit(main())

"""``python -m repro.obs report`` — one run, one report.

Joins every telemetry source the repo has into a single artifact, in two
renderings (terminal text and self-contained HTML):

* **trace** — kernel/step counts, wave depth, span coverage, observed
  occupancy (from the span tracer);
* **metrics** — the registry's closing values (MLUPS, bytes/step, ...);
* **roofline** — per-kernel-family achieved bandwidth, predicted-vs-
  observed skew and flagged drift (:mod:`repro.obs.roofline`);
* **lint** — the static linter's opportunities over the last step's
  stream, priced in bytes and microseconds saved
  (:mod:`repro.analysis.lint`);
* **certificate** — the stream digest that identifies the executed step
  plan (:mod:`repro.analysis.certificate`) and ties the report to the
  admission artifacts under ``certificates/``;
* **watchdog + event log** — health status and the unified JSON-lines
  narration (:mod:`repro.obs.log`).

The report degrades gracefully: a truncated trace (a failed kernel
mid-step), an empty trace (zero steps) or a restored-from-checkpoint run
all render, with the anomaly stated rather than hidden.
"""

from __future__ import annotations

import html as _html
import json
from dataclasses import dataclass, field

from ..gpu.device import A100_40GB, DeviceSpec
from .log import EventLog
from .metrics import MetricsRegistry, run_metrics
from .roofline import RooflineSummary, drift_findings, roofline_summary
from .spans import SpanRecorder

__all__ = ["RunReport", "collect_report", "render_text", "render_html"]


@dataclass
class RunReport:
    """Everything one run's report renders, in plain data."""

    workload: str
    config: str
    steps: int                     # coarse steps covered by the trace
    device: str
    backend: str                   # execution backend the run used
    status: dict                   # watchdog outcome ({"status": ...})
    n_records: int
    kernels_per_step: list[int]
    partial_step: bool             # trace truncated mid-step?
    metrics: dict                  # registry closing values {name: value}
    roofline: RooflineSummary | None
    drift: list[dict]              # flagged drift findings (as_dicts)
    lint: dict                     # {"errors": [...], "opportunities": [...],
                                   #  "arena_bytes": int, "naive_bytes": int}
    certificate: dict              # {"stream_digest": ..., "source": ...}
    log_lines: int                 # unified event-log lines emitted
    occupancy: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "workload": self.workload, "config": self.config,
            "steps": self.steps, "device": self.device,
            "backend": self.backend,
            "status": self.status, "n_records": self.n_records,
            "kernels_per_step": self.kernels_per_step,
            "partial_step": self.partial_step,
            "metrics": self.metrics,
            "roofline": self.roofline.as_dict() if self.roofline else None,
            "drift": self.drift,
            "lint": self.lint,
            "certificate": self.certificate,
            "log_lines": self.log_lines,
            "occupancy": self.occupancy,
        }


def _registry_values(registry: MetricsRegistry) -> dict:
    out = {}
    for name in registry.names():
        d = registry[name].as_dict()
        out[name] = d.get("value", d.get("mean"))
    return out


def _lint_last_step(sim) -> dict:
    """Static lint findings over the last complete step's stream.

    Consumes declarations only, so it works on any finished (or aborted)
    run; an empty stream yields an empty report rather than an error.
    """
    records = sim.runtime.last_step()
    if not records:
        return {"errors": [], "opportunities": [],
                "arena_bytes": 0, "naive_bytes": 0}
    from ..analysis.lint import lint_stream
    from ..analysis.static import AccessModel
    report = lint_stream(records, AccessModel(sim.engine))
    return {
        "errors": [str(f) for f in report.errors],
        "opportunities": [{
            "check": f.check, "field": f.field, "kernel": f.kernel,
            "bytes_saved": f.bytes_saved, "capacity_saved": f.capacity_saved,
            "time_saved_us": round(f.time_saved_us, 3), "detail": f.detail,
        } for f in report.opportunities],
        "arena_bytes": report.arena_bytes,
        "naive_bytes": report.naive_bytes,
    }


def _certificate_digest(sim) -> dict:
    """Digest of the executed step plan (ties the run to its certificate)."""
    records = sim.runtime.last_step()
    if not records:
        return {"stream_digest": None, "kernels": 0}
    from ..analysis.certificate import stream_digest
    return {"stream_digest": stream_digest(records), "kernels": len(records)}


def collect_report(sim, recorder: SpanRecorder,
                   registry: MetricsRegistry | None = None, *,
                   workload: str = "", status: dict | None = None,
                   device: DeviceSpec = A100_40GB, kbc: bool = False,
                   drift_factor: float = 3.0,
                   event_log: EventLog | None = None) -> RunReport:
    """Assemble a :class:`RunReport` from a (possibly failed) session.

    ``sim`` may have completed, diverged or aborted mid-step; ``status``
    states which (default ``{"status": "ok"}``).  When ``event_log`` is
    given the session's spans/metrics are folded into it, and the line
    count is reported.
    """
    rt = sim.runtime
    registry = registry if registry is not None else run_metrics(
        sim, recorder=recorder)
    markers = list(rt.markers)
    per_step = [m - (markers[i - 1] if i else 0)
                for i, m in enumerate(markers)]
    done = markers[-1] if markers else 0
    # Steps actually *completed* by the stepper since the trace began
    # (steps_base rebases after a warmup reset or checkpoint restore).
    completed = max(sim.steps_done - getattr(rt, "steps_base", 0), 0)
    # A mid-step failure leaves either records past the last marker (no
    # abort ran) or a closing marker with no completed step behind it
    # (Stepper.step closes the partial step before re-raising).
    partial = len(rt.records) > done or len(markers) > completed

    summary = roofline_summary(recorder, device=device, kbc=kbc) \
        if recorder.kernel_spans else None
    drift = []
    if summary is not None:
        drift = [f.as_dict() for f in drift_findings(
            summary, factor=drift_factor, workload=workload,
            config=sim.stepper.config.name)]

    log_lines = 0
    if event_log is not None:
        event_log.ingest_spans(recorder)
        event_log.ingest_metrics(registry)
        if status and status.get("status") == "diverged":
            event_log.ingest_watchdog(diverged=status.get("payload", {}))
        log_lines = len(event_log)

    return RunReport(
        workload=workload, config=sim.stepper.config.name,
        steps=min(len(markers), completed), device=device.name,
        backend=getattr(sim.stepper.backend, "name", "interpreted"),
        status=status or {"status": "ok"},
        n_records=len(rt.records), kernels_per_step=per_step,
        partial_step=partial,
        metrics=_registry_values(registry),
        roofline=summary, drift=drift,
        lint=_lint_last_step(sim),
        certificate=_certificate_digest(sim),
        log_lines=log_lines,
        occupancy=recorder.observed_occupancy())


# -- terminal rendering --------------------------------------------------------

def _fmt(v, nd: int = 3) -> str:
    if v is None:
        return "-"
    if isinstance(v, float):
        return f"{v:.{nd}f}"
    return str(v)


def render_text(rep: RunReport) -> str:
    """Plain-text rendering for terminals and CI logs."""
    m = rep.metrics
    lines = [
        f"== run report: {rep.workload or '?'} / {rep.config} "
        f"on {rep.device} [{rep.backend}] ==",
        f"status        : {rep.status.get('status', '?')}"
        + ("  [trace truncated mid-step]" if rep.partial_step else ""),
        f"steps         : {rep.steps} traced "
        f"({rep.n_records} kernels; per step {rep.kernels_per_step})",
        f"wall MLUPS    : {_fmt(m.get('wall_mlups'))}   "
        f"bytes/step {_fmt(m.get('bytes_per_step'), 0)}   "
        f"wave depth {_fmt(m.get('wave_depth'), 0)}",
        f"arena peak    : {_fmt(m.get('arena_peak_bytes'), 0)} B "
        f"(naive {_fmt(rep.lint.get('naive_bytes'), 0)} B)",
        f"occupancy     : max {rep.occupancy.get('max_concurrent', 0)} "
        f"mean {_fmt(rep.occupancy.get('mean_concurrent', 0.0), 2)}",
    ]
    if rep.backend == "mp":
        lines.append(
            f"mp pool       : {_fmt(m.get('mp_workers'), 0)} workers  "
            f"util {_fmt(m.get('mp_utilisation'), 2)}  "
            f"imbalance {_fmt(m.get('mp_shard_imbalance'), 2)}  "
            f"restarts {_fmt(m.get('mp_worker_restarts'), 0)}")
    if rep.roofline is not None:
        r = rep.roofline
        lines += [
            "-- roofline --",
            f"achieved bw   : {r.achieved_bw:.1f} B/us "
            f"({100 * r.achieved_fraction:.4f}% of {r.device} sustained); "
            f"median skew {r.median_skew:.1f}x",
            "  family      kernels   bytes      obs_us    pred_us   "
            "bw(B/us)   norm_skew",
        ]
        for fam in r.families:
            d = fam.as_dict()
            lines.append(
                f"  {d['family']:<12}{d['kernels']:<10}{d['bytes']:<11}"
                f"{d['observed_us']:<10.1f}{d['predicted_us']:<10.2f}"
                f"{d['achieved_bw']:<11.1f}{d['norm_skew']:.2f}")
        for f in rep.drift:
            lines.append(f"  drift: {f['family']} norm-skew "
                         f"{f['norm_skew']:.2f} > {f['factor']:g} "
                         f"({f['detail']})")
        if not rep.drift:
            lines.append("  drift: none flagged")
    else:
        lines += ["-- roofline --", "  (empty trace: nothing to join)"]
    lines.append("-- lint --")
    for e in rep.lint.get("errors", []):
        lines.append(f"  ERROR {e}")
    opps = rep.lint.get("opportunities", [])
    for o in opps:
        gain = []
        if o["bytes_saved"]:
            gain.append(f"{o['bytes_saved']} B, {o['time_saved_us']:.2f} us")
        if o["capacity_saved"]:
            gain.append(f"{o['capacity_saved']} B capacity")
        lines.append(f"  {o['check']} {o['field']}"
                     + (f" [saves {'; '.join(gain)}]" if gain else ""))
    if not opps and not rep.lint.get("errors"):
        lines.append("  clean (no findings on the last step's stream)")
    cert = rep.certificate
    lines.append("-- certificate --")
    lines.append(f"  stream digest : {cert.get('stream_digest') or '-'} "
                 f"({cert.get('kernels', 0)} kernels/step)")
    if rep.log_lines:
        lines.append("-- event log --")
        lines.append(f"  {rep.log_lines} unified log lines emitted")
    return "\n".join(lines) + "\n"


# -- HTML rendering ------------------------------------------------------------

_CSS = """
body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto;
       max-width: 64rem; color: #1a1a1a; }
h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin-top: 1.6rem; }
table { border-collapse: collapse; width: 100%; margin: .5rem 0; }
th, td { text-align: left; padding: .25rem .6rem;
         border-bottom: 1px solid #ddd; font-variant-numeric: tabular-nums; }
th { background: #f4f4f4; }
.bad { color: #b00020; font-weight: 600; }
.ok  { color: #1b6e20; }
.tag { display: inline-block; padding: 0 .5rem; border-radius: 8px;
       background: #eef; margin-right: .4rem; }
code { background: #f4f4f4; padding: 0 .3rem; }
"""


def _table(headers: list[str], rows: list[list]) -> str:
    head = "".join(f"<th>{_html.escape(str(h))}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{_html.escape(str(c))}</td>" for c in row)
        + "</tr>" for row in rows)
    return f"<table><tr>{head}</tr>{body}</table>"


def render_html(rep: RunReport) -> str:
    """Self-contained single-file HTML rendering (CI artifact)."""
    m = rep.metrics
    status = rep.status.get("status", "?")
    status_cls = "ok" if status == "ok" else "bad"
    parts = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>run report: {_html.escape(rep.workload)} / "
        f"{_html.escape(rep.config)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>Run report — {_html.escape(rep.workload or '?')} / "
        f"{_html.escape(rep.config)} on {_html.escape(rep.device)}</h1>",
        f"<p><span class='tag {status_cls}'>status: {status}</span>"
        + ("<span class='tag bad'>trace truncated mid-step</span>"
           if rep.partial_step else "")
        + f"<span class='tag'>{rep.steps} steps</span>"
        + f"<span class='tag'>{rep.n_records} kernels</span>"
        + (f"<span class='tag'>{rep.log_lines} log lines</span>"
           if rep.log_lines else "") + "</p>",
        "<h2>Metrics</h2>",
        _table(["metric", "value"],
               [[k, _fmt(v)] for k, v in sorted(m.items())
                if isinstance(v, (int, float))]),
    ]
    if rep.roofline is not None:
        r = rep.roofline
        parts += [
            "<h2>Roofline</h2>",
            f"<p>achieved bandwidth <b>{r.achieved_bw:.1f} B/µs</b> "
            f"({100 * r.achieved_fraction:.4f}% of {_html.escape(r.device)} "
            f"sustained), median skew {r.median_skew:.1f}×</p>",
            _table(["family", "kernels", "bytes", "observed µs",
                    "predicted µs", "bw (B/µs)", "norm skew"],
                   [[d["family"], d["kernels"], d["bytes"],
                     f"{d['observed_us']:.1f}", f"{d['predicted_us']:.2f}",
                     f"{d['achieved_bw']:.1f}", f"{d['norm_skew']:.2f}"]
                    for d in (fam.as_dict() for fam in r.families)]),
        ]
        if rep.drift:
            parts.append("<h2 class='bad'>Drift</h2>")
            parts.append(_table(
                ["family", "norm skew", "factor", "detail"],
                [[f["family"], f"{f['norm_skew']:.2f}", f["factor"],
                  f["detail"]] for f in rep.drift]))
        if r.steps:
            parts.append("<h2>Per-step bandwidth</h2>")
            parts.append(_table(
                ["step", "bytes", "observed µs", "bw (B/µs)"],
                [[s["step"], s["bytes"], f"{s['observed_us']:.1f}",
                  f"{s['achieved_bw']:.1f}"]
                 for s in (sb.as_dict() for sb in r.steps)]))
    errors = rep.lint.get("errors", [])
    opps = rep.lint.get("opportunities", [])
    parts.append("<h2>Lint</h2>")
    if errors:
        parts.append(_table(["error"], [[e] for e in errors]))
    if opps:
        parts.append(_table(
            ["check", "field", "bytes saved", "µs saved", "capacity saved",
             "detail"],
            [[o["check"], o["field"], o["bytes_saved"],
              f"{o['time_saved_us']:.2f}", o["capacity_saved"], o["detail"]]
             for o in opps]))
    if not errors and not opps:
        parts.append("<p class='ok'>clean — no findings on the last step's "
                     "stream</p>")
    cert = rep.certificate
    parts += [
        "<h2>Certificate</h2>",
        f"<p>step-plan stream digest: "
        f"<code>{_html.escape(str(cert.get('stream_digest') or '-'))}</code> "
        f"({cert.get('kernels', 0)} kernels/step)</p>",
        "</body></html>",
    ]
    return "".join(parts)


def write_report(rep: RunReport, stem: str, out_dir: str) -> dict[str, str]:
    """Write the JSON + HTML renderings; returns their paths."""
    import os
    os.makedirs(out_dir, exist_ok=True)
    paths = {
        "json": os.path.join(out_dir, f"report_{stem}.json"),
        "html": os.path.join(out_dir, f"report_{stem}.html"),
    }
    with open(paths["json"], "w") as fh:
        json.dump(rep.as_dict(), fh, indent=2, default=str)
        fh.write("\n")
    with open(paths["html"], "w") as fh:
        fh.write(render_html(rep))
    return paths

"""Entry point: ``python -m repro.obs`` (deprecated alias).

Kept as a thin shim; the front door is ``python -m repro obs`` (and
``python -m repro report`` for the run report).
"""

import sys

from .cli import main

print("note: 'python -m repro.obs' is deprecated; use "
      "'python -m repro obs' (or 'python -m repro report')", file=sys.stderr)
raise SystemExit(main())

"""Wall-clock span tree over the runtime's kernel trace.

A :class:`SpanRecorder` plugs into :attr:`repro.neon.runtime.Runtime.spans`
(see :meth:`~repro.neon.runtime.Runtime.spans_install`) and receives the
wall-clock start/duration of every kernel launch alongside the
:class:`~repro.neon.runtime.KernelRecord` the runtime appends anyway.
Recording is strictly observational: the recorder never sees — let alone
touches — declared reads/writes or byte counts, so capture, the
declaration verifier and the race detector behave identically with spans
on or off.

The raw events are organised into a three-deep span tree:

* **step spans** — one per coarse time step (`step_marker`);
* **level runs** — maximal runs of consecutive same-level kernels inside
  a step (Algorithm 1 interleaves levels; a run is one visit);
* **kernel spans** — one per launch, pointing at its record index.

Timestamps are microseconds relative to the first observed event, the
unit the Chrome-trace/Perfetto exporter (:mod:`repro.obs.trace`) emits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

from ..neon.runtime import KernelRecord

__all__ = ["KernelSpan", "StepSpan", "LevelRun", "EventSpan", "SpanRecorder"]


@dataclass(frozen=True)
class KernelSpan:
    """One kernel launch: trace index, identity and wall-clock interval."""

    index: int                 # position in Runtime.records
    record: KernelRecord
    start_us: float            # relative to the recorder's origin
    dur_us: float

    @property
    def end_us(self) -> float:
        return self.start_us + self.dur_us

    def as_dict(self) -> dict:
        """JSON-friendly view (used by the watchdog's diagnostic dump)."""
        return {
            "index": self.index,
            "name": self.record.name,
            "level": self.record.level,
            "n_cells": self.record.n_cells,
            "bytes": self.record.bytes_total,
            "start_us": round(self.start_us, 3),
            "dur_us": round(self.dur_us, 3),
        }


@dataclass(frozen=True)
class StepSpan:
    """One coarse time step: record range and bounding interval."""

    step: int
    start_record: int
    end_record: int            # half-open
    start_us: float
    end_us: float

    @property
    def dur_us(self) -> float:
        return self.end_us - self.start_us


@dataclass(frozen=True)
class LevelRun:
    """A maximal run of consecutive same-level kernels within one step."""

    step: int
    level: int
    start_record: int
    end_record: int            # half-open
    start_us: float
    end_us: float

    @property
    def dur_us(self) -> float:
        return self.end_us - self.start_us


@dataclass(frozen=True)
class EventSpan:
    """A point event outside the kernel trace (rollback, retry, fallback).

    Emitted by the resilience runner via :meth:`SpanRecorder.on_event`.
    Unlike kernel/step spans, events *survive* trace resets: a rollback
    resets the runtime (clearing the kernel trace of the abandoned
    attempt), and the whole point of the event log is to narrate exactly
    those recoveries.
    """

    name: str
    ts_us: float               # relative to the recorder's origin
    meta: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {"name": self.name, "ts_us": round(self.ts_us, 3), **self.meta}


class SpanRecorder:
    """Collects kernel/step spans from a :class:`~repro.neon.runtime.Runtime`.

    Install with :meth:`install` (or pass to ``Runtime.spans_install``);
    the runtime then reports every launch and step marker here.  All
    timestamps are rebased to the first event so exported traces start
    near zero.
    """

    def __init__(self) -> None:
        self.kernel_spans: list[KernelSpan] = []
        self.step_spans: list[StepSpan] = []
        self.events: list[EventSpan] = []
        self._origin: float | None = None

    # -- installation --------------------------------------------------------
    def install(self, runtime) -> "SpanRecorder":
        """Attach to ``runtime`` and return self (chaining convenience)."""
        runtime.spans_install(self)
        return self

    # -- Runtime hook protocol ----------------------------------------------
    def on_launch(self, index: int, record: KernelRecord,
                  start: float, duration: float) -> None:
        if self._origin is None:
            self._origin = start
        self.kernel_spans.append(KernelSpan(
            index=index, record=record,
            start_us=(start - self._origin) * 1e6,
            dur_us=duration * 1e6))

    def on_step(self, step_index: int, start_record: int,
                end_record: int) -> None:
        inside = [s for s in self.kernel_spans
                  if start_record <= s.index < end_record]
        if inside:
            t0, t1 = inside[0].start_us, max(s.end_us for s in inside)
        else:  # an empty step still gets a (zero-length) span
            t0 = t1 = self.step_spans[-1].end_us if self.step_spans else 0.0
        self.step_spans.append(StepSpan(
            step=step_index, start_record=start_record,
            end_record=end_record, start_us=t0, end_us=t1))

    def on_reset(self) -> None:
        # Events survive: they narrate recoveries, and every rollback
        # resets the trace right after emitting one.
        self.kernel_spans.clear()
        self.step_spans.clear()
        self._origin = None

    def on_event(self, name: str, **meta) -> EventSpan:
        """Record a point event (rollback, retry, degradation, ...).

        Callable any time, including before the first launch; the first
        observation — launch or event — anchors the time origin.
        """
        now = perf_counter()
        if self._origin is None:
            self._origin = now
        ev = EventSpan(name=name, ts_us=(now - self._origin) * 1e6, meta=meta)
        self.events.append(ev)
        return ev

    # -- derived structure ---------------------------------------------------
    def level_runs(self) -> list[LevelRun]:
        """Per-step maximal same-level runs (the mid-tier of the tree)."""
        runs: list[LevelRun] = []
        for step in self.step_spans:
            group: list[KernelSpan] = []
            spans = [s for s in self.kernel_spans
                     if step.start_record <= s.index < step.end_record]
            for s in spans:
                if group and s.record.level != group[-1].record.level:
                    runs.append(self._close_run(step.step, group))
                    group = []
                group.append(s)
            if group:
                runs.append(self._close_run(step.step, group))
        return runs

    @staticmethod
    def _close_run(step: int, group: list[KernelSpan]) -> LevelRun:
        return LevelRun(
            step=step, level=group[0].record.level,
            start_record=group[0].index, end_record=group[-1].index + 1,
            start_us=group[0].start_us,
            end_us=max(s.end_us for s in group))

    # -- queries -------------------------------------------------------------
    def last(self, n: int) -> list[KernelSpan]:
        """The most recent ``n`` kernel spans (diagnostic dumps)."""
        return self.kernel_spans[-n:] if n > 0 else []

    def spans_for_step(self, step: int) -> list[KernelSpan]:
        ss = self.step_spans[step]
        return [s for s in self.kernel_spans
                if ss.start_record <= s.index < ss.end_record]

    def total_us(self) -> float:
        """Wall time from the first launch to the end of the last one."""
        if not self.kernel_spans:
            return 0.0
        return max(s.end_us for s in self.kernel_spans)

    def observed_occupancy(self, step: int | None = None) -> dict:
        """Measured kernel-span overlap — the host analogue of per-stream
        occupancy.

        Serial execution yields ``max_concurrent == 1``; under the
        threaded wave executor genuinely overlapping bodies raise it up
        to the wave width, which is what the Perfetto export renders
        next to the predicted stream tracks.  ``mean_concurrent`` is the
        time-weighted average over the spanned interval.
        """
        spans = (self.kernel_spans if step is None
                 else self.spans_for_step(step))
        if not spans:
            return {"max_concurrent": 0, "mean_concurrent": 0.0,
                    "busy_us": 0.0, "span_us": 0.0}
        edges = sorted([(s.start_us, 1) for s in spans] +
                       [(s.end_us, -1) for s in spans])
        cur = peak = 0
        busy_weighted, prev = 0.0, edges[0][0]
        for t, d in edges:
            busy_weighted += cur * (t - prev)
            prev = t
            cur += d
            peak = max(peak, cur)
        span_us = max(s.end_us for s in spans) - min(s.start_us for s in spans)
        return {"max_concurrent": peak,
                "mean_concurrent": (busy_weighted / span_us) if span_us > 0
                else float(peak),
                "busy_us": sum(s.dur_us for s in spans),
                "span_us": span_us}

"""Metrics registry: counters, gauges and histograms with snapshots.

The registry is the numeric side of the observability layer: benchmarks
and the ``repro.obs`` CLI publish MLUPS, per-step traffic, kernel counts,
active-cell censuses and wave depths here, take periodic snapshots while
a run progresses, and serialize everything to the machine-readable
``BENCH_<name>.json`` files that track the perf trajectory across PRs.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "run_metrics", "write_bench_json", "bench_out_dir"]


@dataclass
class Counter:
    """Monotonic accumulator (launches, bytes, steps)."""

    name: str
    help: str = ""
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def as_dict(self) -> dict:
        return {"type": "counter", "value": self.value, "help": self.help}


@dataclass
class Gauge:
    """Point-in-time value (MLUPS, active cells, wave depth)."""

    name: str
    help: str = ""
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def as_dict(self) -> dict:
        return {"type": "gauge", "value": self.value, "help": self.help}


@dataclass
class Histogram:
    """Streaming distribution: count / sum / min / max / mean.

    Keeps running moments rather than raw samples so a long run stays
    O(1) in memory; the most recent ``keep_last`` samples are retained
    for diagnostic dumps.
    """

    name: str
    help: str = ""
    keep_last: int = 32
    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")
    recent: list = field(default_factory=list)

    def observe(self, value: float) -> None:
        v = float(value)
        self.count += 1
        self.total += v
        self.min = min(self.min, v)
        self.max = max(self.max, v)
        self.recent.append(v)
        if len(self.recent) > self.keep_last:
            del self.recent[0]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {"type": "histogram", "count": self.count, "sum": self.total,
                "min": self.min if self.count else None,
                "max": self.max if self.count else None,
                "mean": self.mean if self.count else None,
                "help": self.help}


class MetricsRegistry:
    """Named metrics plus a time series of labelled snapshots."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self.snapshots: list[dict] = []

    # -- registration --------------------------------------------------------
    def _get(self, cls, name: str, help: str):
        m = self._metrics.get(name)
        if m is None:
            m = cls(name=name, help=help)
            self._metrics[name] = m
        elif not isinstance(m, cls):
            raise TypeError(f"metric {name!r} already registered as "
                            f"{type(m).__name__}")
        return m

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._get(Histogram, name, help)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __getitem__(self, name: str) -> Counter | Gauge | Histogram:
        return self._metrics[name]

    def names(self) -> list[str]:
        return sorted(self._metrics)

    # -- snapshots -----------------------------------------------------------
    def snapshot(self, **labels) -> dict:
        """Freeze every metric's current state, tagged with ``labels``.

        The snapshot is appended to :attr:`snapshots` (the periodic time
        series a monitored run accumulates) and returned.
        """
        snap = {"labels": dict(labels),
                "metrics": {n: m.as_dict() for n, m in
                            sorted(self._metrics.items())}}
        self.snapshots.append(snap)
        return snap

    def as_dict(self) -> dict:
        return {"metrics": {n: m.as_dict() for n, m in
                            sorted(self._metrics.items())},
                "snapshots": self.snapshots}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)


def run_metrics(sim, registry: MetricsRegistry | None = None,
                recorder=None) -> MetricsRegistry:
    """Publish the standard per-run metrics of a finished ``Simulation``.

    Covers the quantities the paper argues with: kernels/step and
    bytes/step (Fig. 2 / Fig. 9), atomic traffic, active cells per level
    (Table I), dependency-wave depth (Section V-C) and measured MLUPS.
    ``recorder`` (a :class:`~repro.obs.spans.SpanRecorder`) adds observed
    wall time per kernel family.
    """
    from ..core.simulation import mlups
    from ..neon.graph import build_dependency_graph, schedule_waves

    reg = registry if registry is not None else MetricsRegistry()
    rt = sim.runtime
    # Steps covered by the *trace*: the runtime may have been reset after
    # a warmup or checkpoint restore, in which case steps_done counts
    # coarse steps the trace never saw — subtract the rebased history.
    base = getattr(rt, "steps_base", 0)
    traced_steps = len(rt.markers) if rt.markers else \
        max(sim.steps_done - base, 0)
    steps = max(traced_steps, 1)
    records = rt.records

    reg.counter("kernels_total", "kernel launches recorded").value = len(records)
    reg.counter("bytes_total", "payload DRAM traffic (B)").value = \
        float(sum(r.bytes_total for r in records))
    reg.counter("atomic_bytes_total", "atomically-written bytes (B)").value = \
        float(sum(r.atomic_bytes for r in records))
    reg.counter("steps_total", "coarse steps in the trace").value = traced_steps
    reg.gauge("kernels_per_step", "launches per coarse step").set(
        len(records) / steps)
    reg.gauge("bytes_per_step", "payload traffic per coarse step (B)").set(
        sum(r.bytes_total for r in records) / steps)
    for lv, n in enumerate(sim.mgrid.active_per_level()):
        reg.gauge(f"active_cells.L{lv}",
                  f"active voxels on level {lv}").set(n)
    last = rt.last_step()
    if last:
        g = build_dependency_graph(last, reduce=False)
        waves = schedule_waves(g)
        reg.gauge("wave_depth", "sync points per coarse step").set(len(waves))
        reg.gauge("wave_max_width", "widest concurrency wave").set(
            max(len(w) for w in waves))
        # Buffer-arena peak occupancy over the step's stream: derive
        # live ranges from the symbolic access sets, pack them with the
        # linear-scan allocator and report the arena capacity that
        # assignment needs (gpu/memory.py lifetimes).
        from ..analysis.lint import stream_lifetimes
        from ..analysis.static import AccessModel
        from ..gpu.memory import arena_assign, arena_peak_bytes
        lts = arena_assign(stream_lifetimes(last, AccessModel(sim.engine)))
        reg.gauge("arena_peak_bytes",
                  "buffer-arena peak occupancy over one step (B)").set(
            arena_peak_bytes(lts))
    backend = getattr(getattr(sim, "stepper", None), "backend", None)
    stats = getattr(backend, "stats", None)
    if stats:
        # Compiled backends: plan-cache behaviour and compile overhead.
        for key in ("plan_cache_hits", "plan_cache_misses",
                    "plan_fallback_steps"):
            if key in stats:
                reg.counter(key, {
                    "plan_cache_hits": "steps replayed from a cached plan",
                    "plan_cache_misses": "step-plan compilations",
                    "plan_fallback_steps":
                        "steps delegated to the interpreted path",
                }[key]).value = float(stats[key])
        if "plan_compile_seconds" in stats:
            reg.gauge("plan_compile_seconds",
                      "wall time spent compiling step plans").set(
                float(stats["plan_compile_seconds"]))
        if "mp_steps" in stats:
            # Process-parallel backend: pool shape, load balance and the
            # overheads that bound its speedup (IPC + spawn amortisation).
            reg.counter("mp_steps",
                        "coarse steps replayed on the worker pool").value = \
                float(stats["mp_steps"])
            reg.counter("mp_worker_restarts",
                        "worker-pool respawns after a failure").value = \
                float(stats["mp_worker_restarts"])
            reg.gauge("mp_workers", "worker-process pool width").set(
                float(stats["mp_workers"]))
            reg.gauge("mp_shard_imbalance",
                      "peak max/mean busy-time ratio across workers").set(
                float(stats["mp_shard_imbalance"]))
            reg.gauge("mp_setup_seconds",
                      "pool spawn + shared-memory setup wall time").set(
                float(stats["mp_setup_seconds"]))
            reg.gauge("mp_ipc_overhead_ms",
                      "step wall time not covered by worker busy time").set(
                float(stats["mp_ipc_overhead_ms"]))
            wall = float(stats.get("mp_step_wall_ms", 0.0))
            workers = float(stats.get("mp_workers", 0.0))
            if wall > 0 and workers:
                reg.gauge(
                    "mp_utilisation",
                    "busy-time share of the pool during mp steps",
                ).set(float(stats["mp_worker_busy_ms"]) / (wall * workers))
    if sim.elapsed > 0 and traced_steps > 0:
        reg.gauge("wall_mlups", "measured MLUPS (paper formula)").set(
            mlups(sim.mgrid.active_per_level(), traced_steps, sim.elapsed))
        reg.gauge("wall_seconds", "wall time of run() calls").set(sim.elapsed)
    if recorder is not None:
        per_name = reg.histogram("kernel_wall_us",
                                 "observed wall time per kernel (us)")
        for s in recorder.kernel_spans:
            per_name.observe(s.dur_us)
        reg.gauge("span_total_us", "wall time covered by spans (us)").set(
            recorder.total_us())
        occ = recorder.observed_occupancy()
        reg.gauge("observed_max_concurrency",
                  "peak overlapping kernel spans").set(occ["max_concurrent"])
        reg.gauge("observed_mean_concurrency",
                  "time-weighted mean overlapping kernel spans").set(
            occ["mean_concurrent"])
    executor = getattr(rt, "executor", None)
    if executor is not None and getattr(executor, "stats", None):
        wave_ms = reg.histogram("wave_exec_ms",
                                "wall time per dependency wave (ms)")
        util: list[float] = []
        threaded_flushes = 0
        for st in executor.stats:
            for w in st.get("wave_ms", ()):
                wave_ms.observe(w)
            if st.get("mode") == "threaded":
                threaded_flushes += 1
                wall, workers = st.get("wall_ms", 0.0), st.get("workers", 1)
                if wall > 0 and workers:
                    util.append(st.get("busy_ms", 0.0) / (wall * workers))
        reg.counter("executor_flushes", "deferred-step flushes").value = \
            float(len(executor.stats))
        reg.counter("executor_threaded_flushes",
                    "flushes executed on the thread pool").value = \
            float(threaded_flushes)
        reg.gauge("executor_workers", "wave-executor thread-pool width").set(
            executor.max_workers)
        if util:
            reg.gauge(
                "thread_utilisation",
                "mean busy-time share of the pool during threaded flushes",
            ).set(sum(util) / len(util))
    return reg


def bench_out_dir() -> str:
    """Directory for ``BENCH_*.json`` artifacts.

    ``$BENCH_OUT_DIR`` when set; otherwise the repository root, so a
    plain benchmark run persists its trajectory where
    ``BENCH_HISTORY.jsonl`` accumulates across PRs instead of scattering
    artifacts over whatever the working directory happens to be.
    """
    env = os.environ.get("BENCH_OUT_DIR")
    if env:
        return env
    from ..bench.history import repo_root
    return repo_root()


def write_bench_json(name: str, payload: dict, out_dir: str | None = None) -> str:
    """Write ``BENCH_<name>.json`` and return its path.

    Every benchmark emits one of these so the performance trajectory is
    machine-readable across PRs; ``payload`` may contain plain values,
    registry dicts (:meth:`MetricsRegistry.as_dict`) or nested tables.

    Every call *also* appends one extracted record to
    ``BENCH_HISTORY.jsonl`` in the same directory: the snapshot file is
    overwritten run-to-run (and gitignored), the history line is the
    append-only trajectory the regression gate
    (``python -m repro.bench.history --check``) judges.
    """
    from ..bench.history import append_record, history_path, record_from_bench

    out = out_dir if out_dir is not None else bench_out_dir()
    os.makedirs(out, exist_ok=True)
    # One coercion pass (numpy scalars, dataclass-ish values) shared by
    # the snapshot file and the extracted history record.
    clean = json.loads(json.dumps({"bench": name, **payload},
                                  default=_json_default))
    path = os.path.join(out, f"BENCH_{name}.json")
    with open(path, "w") as fh:
        json.dump(clean, fh, indent=2)
        fh.write("\n")
    append_record(record_from_bench(name, clean), history_path(out))
    return path


def _json_default(obj):
    """Best-effort coercion for numpy scalars and dataclass-ish values."""
    for attr in ("item", "as_dict"):
        fn = getattr(obj, attr, None)
        if callable(fn):
            return fn()
    return str(obj)

"""Numerical-health watchdog for running simulations.

Grid-refinement LBM runs fail in a characteristic way: an instability
(too-high lattice velocity, under-resolved interface, ω too close to 2)
breeds a NaN that silently floods every level within a few coarse steps,
after which all reported numbers are garbage.  The watchdog checks the
populations and macroscopic fields of every level at a configurable
cadence and raises a structured :class:`SimulationDiverged` — carrying
the offending level/step/cells and the last-N kernel spans — the moment
the run leaves its envelope, instead of letting it run to completion.

Checks, per level, on the owned cells:

* **finiteness** of the population buffers ``f`` and ``fstar``;
* **density bounds**: ρ inside ``rho_bounds`` (LBM works near ρ = 1);
* **velocity bound**: |u| below ``max_velocity`` (default c_s = 1/√3,
  the incompressibility/stability envelope).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["SimulationDiverged", "HealthWatchdog", "CS_LATTICE"]

#: Lattice speed of sound — above it the low-Mach expansion is meaningless.
CS_LATTICE = 1.0 / math.sqrt(3.0)


class SimulationDiverged(RuntimeError):
    """A watchdog check failed; the run's state is no longer trustworthy.

    The structured :attr:`payload` carries everything a post-mortem
    needs: which check tripped (``reason``), where (``level``, ``field``,
    ``cells`` with their coordinates and ``values``), when (``step``) and
    what the device was doing (``spans`` — the last-N kernel spans when a
    recorder is installed).
    """

    def __init__(self, message: str, payload: dict) -> None:
        super().__init__(message)
        self.payload = payload

    @property
    def step(self) -> int:
        return self.payload["step"]

    @property
    def level(self) -> int:
        return self.payload["level"]

    @property
    def reason(self) -> str:
        return self.payload["reason"]


class HealthWatchdog:
    """Periodic numerical-health monitor for one ``Simulation``.

    Parameters
    ----------
    sim:
        The :class:`~repro.core.simulation.Simulation` to watch.
    every:
        Check cadence in coarse steps (``callback`` honours it; direct
        :meth:`check` calls always run).
    rho_bounds:
        Closed density envelope; LBM operates near ρ = 1, so excursions
        past a factor of a few mean the run is gone.
    max_velocity:
        Maximum admissible |u| in lattice units (default: c_s).
    last_n_spans:
        Size of the span dump attached to a divergence report.
    registry:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; every check
        publishes per-level ρ/|u| extrema gauges and a check counter.
    max_cells_reported:
        Cap on offending cells included in the payload.
    """

    def __init__(self, sim, *, every: int = 1,
                 rho_bounds: tuple[float, float] = (0.2, 5.0),
                 max_velocity: float = CS_LATTICE,
                 last_n_spans: int = 16,
                 registry=None,
                 max_cells_reported: int = 8) -> None:
        if every < 1:
            raise ValueError("cadence must be >= 1 step")
        if rho_bounds[0] >= rho_bounds[1]:
            raise ValueError("rho_bounds must be an increasing pair")
        self.sim = sim
        self.every = every
        self.rho_bounds = rho_bounds
        self.max_velocity = max_velocity
        self.last_n_spans = last_n_spans
        self.registry = registry
        self.max_cells_reported = max_cells_reported
        self.checks_run = 0
        #: Last successful report (None until the first check passes).
        self.last_report: dict | None = None

    # -- wiring --------------------------------------------------------------
    def callback(self, stepper) -> None:
        """Per-step hook for ``Simulation.run(callback=...)``."""
        if stepper.steps_done % self.every == 0:
            self.check()

    def watch(self, n_steps: int):
        """Run ``n_steps`` coarse steps under supervision.

        Returns the :class:`~repro.core.results.RunResult` of the
        underlying :meth:`~repro.core.simulation.Simulation.run`.
        """
        return self.sim.run(n_steps, callback=self.callback, callback_every=1)

    # -- the check -----------------------------------------------------------
    def check(self) -> dict:
        """Inspect every level now; raise or return a health report."""
        self.checks_run += 1
        step = self.sim.steps_done
        levels = []
        for lv, scan in enumerate(self.sim.engine.health_scan()):
            for fname in ("f", "fstar"):
                bad = scan[f"nonfinite_{fname}"]
                if bad.size:
                    self._raise(step, lv, fname, "non-finite",
                                bad, scan[f"{fname}_values"])
            rho, u = scan["rho"], scan["umag"]
            lo, hi = self.rho_bounds
            out = np.nonzero((rho < lo) | (rho > hi))[0]
            if out.size:
                self._raise(step, lv, "rho", "density-bounds", out, rho[out])
            fast = np.nonzero(u > self.max_velocity)[0]
            if fast.size:
                self._raise(step, lv, "u", "velocity-bound", fast, u[fast])
            stats = {
                "level": lv,
                "rho_min": float(rho.min()) if rho.size else None,
                "rho_max": float(rho.max()) if rho.size else None,
                "u_max": float(u.max()) if u.size else None,
            }
            levels.append(stats)
            if self.registry is not None and rho.size:
                self.registry.gauge(f"rho_min.L{lv}").set(stats["rho_min"])
                self.registry.gauge(f"rho_max.L{lv}").set(stats["rho_max"])
                self.registry.gauge(f"u_max.L{lv}").set(stats["u_max"])
        if self.registry is not None:
            self.registry.counter("watchdog_checks", "health checks run").inc()
        self.last_report = {"status": "ok", "step": step, "levels": levels,
                            "checks_run": self.checks_run}
        return self.last_report

    # -- failure path --------------------------------------------------------
    def _raise(self, step: int, level: int, fname: str, reason: str,
               cells: np.ndarray, values: np.ndarray) -> None:
        k = self.max_cells_reported
        cells = np.asarray(cells)[:k]
        values = np.asarray(values).ravel()[:k]
        buf = self.sim.engine.levels[level]
        pos = buf.positions[cells[cells < buf.n_owned]]
        recorder = self.sim.runtime.spans
        spans = ([s.as_dict() for s in recorder.last(self.last_n_spans)]
                 if recorder is not None else [])
        payload = {
            "step": step, "level": level, "field": fname, "reason": reason,
            "n_offending": int(np.asarray(cells).size),
            "cells": [int(c) for c in cells],
            "positions": [[int(x) for x in p] for p in pos],
            "values": [None if not np.isfinite(v) else float(v)
                       for v in values],
            "spans": spans,
        }
        if self.registry is not None:
            self.registry.counter("watchdog_trips", "divergences detected").inc()
        raise SimulationDiverged(
            f"simulation diverged at coarse step {step}: {reason} in "
            f"{fname}@{level} ({payload['n_offending']} cell(s), first "
            f"rows {payload['cells']})", payload)

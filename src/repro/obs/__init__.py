"""Observability layer: span tracing, timeline export, metrics, watchdog.

Built on the runtime's launch trace (DESIGN.md §9):

* :mod:`repro.obs.spans` — wall-clock spans per kernel launch, nested
  under per-coarse-step and per-level parents;
* :mod:`repro.obs.trace` — Chrome-trace-event / Perfetto JSON export,
  one track per concurrency stream plus the cost-model-predicted
  schedule;
* :mod:`repro.obs.metrics` — counter/gauge/histogram registry with
  periodic snapshots and the ``BENCH_*.json`` writers;
* :mod:`repro.obs.watchdog` — numerical-health monitor raising a
  structured :class:`~repro.obs.watchdog.SimulationDiverged`;
* ``python -m repro.obs`` (:mod:`repro.obs.cli`) — run a workload under
  full telemetry and emit the trace + metrics artifacts.
"""

from .metrics import (Counter, Gauge, Histogram, MetricsRegistry, run_metrics,
                      write_bench_json)
from .spans import KernelSpan, LevelRun, SpanRecorder, StepSpan
from .trace import chrome_trace, validate_trace, write_chrome_trace
from .watchdog import CS_LATTICE, HealthWatchdog, SimulationDiverged

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "run_metrics",
    "write_bench_json",
    "KernelSpan", "LevelRun", "SpanRecorder", "StepSpan",
    "chrome_trace", "validate_trace", "write_chrome_trace",
    "CS_LATTICE", "HealthWatchdog", "SimulationDiverged",
]

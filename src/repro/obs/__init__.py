"""Observability layer: span tracing, timeline export, metrics, watchdog.

Built on the runtime's launch trace (DESIGN.md §9):

* :mod:`repro.obs.spans` — wall-clock spans per kernel launch, nested
  under per-coarse-step and per-level parents;
* :mod:`repro.obs.trace` — Chrome-trace-event / Perfetto JSON export,
  one track per concurrency stream plus the cost-model-predicted
  schedule;
* :mod:`repro.obs.metrics` — counter/gauge/histogram registry with
  periodic snapshots and the ``BENCH_*.json`` writers;
* :mod:`repro.obs.watchdog` — numerical-health monitor raising a
  structured :class:`~repro.obs.watchdog.SimulationDiverged`;
* :mod:`repro.obs.roofline` — observed-vs-predicted bandwidth join and
  the cross-config drift report (DESIGN.md §13);
* :mod:`repro.obs.log` — unified JSON-lines event log (spans, metrics,
  watchdog, resilience) with per-run labels;
* :mod:`repro.obs.report` — one-shot run report (text / HTML / JSON)
  joining trace, metrics, roofline, lint and certificates;
* ``python -m repro.obs`` (:mod:`repro.obs.cli`) — run a workload under
  full telemetry and emit the trace + metrics artifacts;
  ``python -m repro.obs report`` renders the unified run report.
"""

from .log import EventLog, read_log, split_runs, validate_log
from .metrics import (Counter, Gauge, Histogram, MetricsRegistry, run_metrics,
                      write_bench_json)
from .report import (RunReport, collect_report, render_html, render_text,
                     write_report)
from .roofline import (DriftFinding, DriftReport, FamilyRoofline,
                       KernelRoofline, RooflineSummary, drift_findings,
                       drift_report, kernel_rooflines, roofline_summary)
from .spans import KernelSpan, LevelRun, SpanRecorder, StepSpan
from .trace import chrome_trace, validate_trace, write_chrome_trace
from .watchdog import CS_LATTICE, HealthWatchdog, SimulationDiverged

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "run_metrics",
    "write_bench_json",
    "KernelSpan", "LevelRun", "SpanRecorder", "StepSpan",
    "chrome_trace", "validate_trace", "write_chrome_trace",
    "CS_LATTICE", "HealthWatchdog", "SimulationDiverged",
    "EventLog", "read_log", "split_runs", "validate_log",
    "RunReport", "collect_report", "render_html", "render_text",
    "write_report",
    "DriftFinding", "DriftReport", "FamilyRoofline", "KernelRoofline",
    "RooflineSummary", "drift_findings", "drift_report", "kernel_rooflines",
    "roofline_summary",
]

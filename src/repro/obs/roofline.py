"""Roofline accounting: observed wall time joined with predicted traffic.

The paper argues in bandwidth, not wall clock: fusion exists to cut
kernels/step and DRAM traffic (Fig. 2), and the sparse-LBM literature
reports results as *achieved fraction of device bandwidth*.  This module
joins the two telemetry sources the repo already has —

* the span tracer (:mod:`repro.obs.spans`), which observes the wall-clock
  duration of every kernel launch, and
* the cost model (:mod:`repro.gpu.costmodel`), which predicts each
  kernel's bytes and roofline time on a target device —

into per-kernel and per-step *achieved bandwidth* (payload bytes moved
per observed microsecond), the achieved fraction of the device's
sustained bandwidth, and the **skew** between observed and predicted
time.

Functional runs execute on a NumPy host, so absolute skew against an
A100 prediction is large and host-dependent; what is diagnostic is the
*normalized* skew — each kernel family's skew divided by the run's
median skew.  A family whose normalized skew exceeds a configurable
factor moves bytes disproportionately slowly compared to the rest of the
same run (an interpretation bug, a pathological access pattern, or a
cost-model error), and that signal is host-independent because the
host-vs-device constant cancels.  :func:`drift_report` sweeps all seven
fusion configurations (2D and 3D) and flags exactly those families.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from ..gpu.costmodel import kernel_time_us
from ..gpu.device import A100_40GB, DeviceSpec
from .spans import SpanRecorder

__all__ = [
    "KernelRoofline", "FamilyRoofline", "StepBandwidth", "RooflineSummary",
    "DriftFinding", "DriftReport",
    "kernel_rooflines", "roofline_summary", "drift_findings", "drift_report",
    "DRIFT_WORKLOADS",
]


@dataclass(frozen=True)
class KernelRoofline:
    """One kernel launch joined with its cost-model prediction."""

    index: int                 # position in Runtime.records
    name: str                  # kernel family ("C", "SEO", "CASE", ...)
    level: int
    bytes_total: int           # payload DRAM traffic the kernel declared
    observed_us: float         # wall-clock duration of the span
    predicted_us: float        # roofline time on the target device
    mem_us: float              # memory term of the prediction

    @property
    def family(self) -> str:
        """Aggregation key: kernel name at its level (``"SEO@1"``)."""
        return f"{self.name}@{self.level}"

    @property
    def achieved_bw(self) -> float:
        """Payload bytes per observed microsecond (B/us)."""
        return self.bytes_total / self.observed_us if self.observed_us > 0 \
            else 0.0

    @property
    def skew(self) -> float:
        """Observed over predicted time (dimensionless, > 0)."""
        return self.observed_us / self.predicted_us if self.predicted_us > 0 \
            else float("inf")

    def as_dict(self) -> dict:
        return {
            "index": self.index, "name": self.name, "level": self.level,
            "bytes": self.bytes_total,
            "observed_us": round(self.observed_us, 3),
            "predicted_us": round(self.predicted_us, 4),
            "achieved_bw": round(self.achieved_bw, 4),
            "skew": round(self.skew, 4),
        }


@dataclass(frozen=True)
class FamilyRoofline:
    """All launches of one kernel family, aggregated."""

    family: str
    kernels: int
    bytes_total: int
    observed_us: float
    predicted_us: float
    skew: float                # total observed / total predicted
    norm_skew: float           # skew / run median skew

    def as_dict(self) -> dict:
        return {
            "family": self.family, "kernels": self.kernels,
            "bytes": self.bytes_total,
            "observed_us": round(self.observed_us, 3),
            "predicted_us": round(self.predicted_us, 4),
            "achieved_bw": round(self.bytes_total / self.observed_us, 4)
                           if self.observed_us > 0 else 0.0,
            "skew": round(self.skew, 4),
            "norm_skew": round(self.norm_skew, 4),
        }


@dataclass(frozen=True)
class StepBandwidth:
    """Achieved bandwidth of one coarse step."""

    step: int
    bytes_total: int
    observed_us: float

    @property
    def achieved_bw(self) -> float:
        return self.bytes_total / self.observed_us if self.observed_us > 0 \
            else 0.0

    def as_dict(self) -> dict:
        return {"step": self.step, "bytes": self.bytes_total,
                "observed_us": round(self.observed_us, 3),
                "achieved_bw": round(self.achieved_bw, 4)}


@dataclass(frozen=True)
class RooflineSummary:
    """Whole-run roofline report: totals, per-family and per-step views."""

    device: str
    kernels: int
    bytes_total: int
    observed_us: float         # sum of span durations (busy time)
    predicted_us: float
    median_skew: float
    families: tuple[FamilyRoofline, ...]
    steps: tuple[StepBandwidth, ...]
    #: Achieved fraction of the device's *sustained* bandwidth.  On the
    #: NumPy host this is tiny; on a real device backend it becomes the
    #: paper's headline number.
    achieved_fraction: float

    @property
    def achieved_bw(self) -> float:
        """Run-wide payload bytes per busy microsecond."""
        return self.bytes_total / self.observed_us if self.observed_us > 0 \
            else 0.0

    def as_dict(self) -> dict:
        return {
            "device": self.device, "kernels": self.kernels,
            "bytes_total": self.bytes_total,
            "observed_us": round(self.observed_us, 3),
            "predicted_us": round(self.predicted_us, 4),
            "achieved_bw": round(self.achieved_bw, 4),
            "achieved_fraction": self.achieved_fraction,
            "median_skew": round(self.median_skew, 4),
            "families": [f.as_dict() for f in self.families],
            "steps": [s.as_dict() for s in self.steps],
        }


def kernel_rooflines(recorder: SpanRecorder, *,
                     device: DeviceSpec = A100_40GB,
                     kbc: bool = False) -> list[KernelRoofline]:
    """Join every recorded kernel span with its roofline prediction."""
    out: list[KernelRoofline] = []
    for s in recorder.kernel_spans:
        cost = kernel_time_us(s.record, device, kbc=kbc)
        out.append(KernelRoofline(
            index=s.index, name=s.record.name, level=s.record.level,
            bytes_total=s.record.bytes_total,
            observed_us=s.dur_us, predicted_us=cost.time_us,
            mem_us=cost.mem_us))
    return out


def roofline_summary(recorder: SpanRecorder, *,
                     device: DeviceSpec = A100_40GB,
                     kbc: bool = False) -> RooflineSummary:
    """Aggregate the joined spans into the run-level roofline report."""
    joined = kernel_rooflines(recorder, device=device, kbc=kbc)
    by_family: dict[str, list[KernelRoofline]] = {}
    for k in joined:
        by_family.setdefault(k.family, []).append(k)
    skews = [k.skew for k in joined if k.predicted_us > 0]
    median = statistics.median(skews) if skews else 0.0

    families = []
    for fam, ks in sorted(by_family.items()):
        obs = sum(k.observed_us for k in ks)
        pred = sum(k.predicted_us for k in ks)
        skew = obs / pred if pred > 0 else float("inf")
        families.append(FamilyRoofline(
            family=fam, kernels=len(ks),
            bytes_total=sum(k.bytes_total for k in ks),
            observed_us=obs, predicted_us=pred, skew=skew,
            norm_skew=skew / median if median > 0 else float("inf")))

    steps = []
    for ss in recorder.step_spans:
        inside = [k for k in joined if ss.start_record <= k.index < ss.end_record]
        steps.append(StepBandwidth(
            step=ss.step,
            bytes_total=sum(k.bytes_total for k in inside),
            observed_us=sum(k.observed_us for k in inside)))

    total_bytes = sum(k.bytes_total for k in joined)
    total_obs = sum(k.observed_us for k in joined)
    bw = total_bytes / total_obs if total_obs > 0 else 0.0
    return RooflineSummary(
        device=device.name, kernels=len(joined), bytes_total=total_bytes,
        observed_us=total_obs,
        predicted_us=sum(k.predicted_us for k in joined),
        median_skew=median, families=tuple(families), steps=tuple(steps),
        achieved_fraction=bw / device.effective_bandwidth)


@dataclass(frozen=True)
class DriftFinding:
    """One kernel family whose skew is out of line with its run."""

    workload: str
    config: str
    family: str
    skew: float
    norm_skew: float
    factor: float
    detail: str

    def __str__(self) -> str:
        return (f"{self.workload}/{self.config}: {self.family} "
                f"norm-skew {self.norm_skew:.2f} exceeds factor "
                f"{self.factor:g} ({self.detail})")

    def as_dict(self) -> dict:
        return {"workload": self.workload, "config": self.config,
                "family": self.family, "skew": round(self.skew, 4),
                "norm_skew": round(self.norm_skew, 4),
                "factor": self.factor, "detail": self.detail}


def drift_findings(summary: RooflineSummary, *, factor: float = 3.0,
                   workload: str = "", config: str = "",
                   min_observed_us: float = 50.0) -> list[DriftFinding]:
    """Families whose normalized skew exceeds ``factor`` (either way).

    ``min_observed_us`` suppresses families whose total wall time is too
    small for the host clock to resolve meaningfully — a 2 µs family
    reading 5× the median is timer noise, not drift.
    """
    if factor <= 1.0:
        raise ValueError("drift factor must be > 1")
    out: list[DriftFinding] = []
    for fam in summary.families:
        if fam.observed_us < min_observed_us:
            continue
        if fam.norm_skew > factor:
            detail = (f"{fam.observed_us:.0f} us observed vs "
                      f"{fam.predicted_us:.2f} us predicted; run median "
                      f"skew {summary.median_skew:.1f}")
            out.append(DriftFinding(workload=workload, config=config,
                                    family=fam.family, skew=fam.skew,
                                    norm_skew=fam.norm_skew, factor=factor,
                                    detail="slower than peers: " + detail))
        elif fam.norm_skew < 1.0 / factor:
            detail = (f"{fam.observed_us:.0f} us observed vs "
                      f"{fam.predicted_us:.2f} us predicted; run median "
                      f"skew {summary.median_skew:.1f}")
            out.append(DriftFinding(workload=workload, config=config,
                                    family=fam.family, skew=fam.skew,
                                    norm_skew=fam.norm_skew, factor=factor,
                                    detail="faster than peers (cost model "
                                           "overprices it): " + detail))
    return out


@dataclass(frozen=True)
class DriftReport:
    """Roofline summaries and drift findings for a config sweep."""

    device: str
    factor: float
    entries: tuple[dict, ...]          # {workload, config, summary}
    findings: tuple[DriftFinding, ...]

    @property
    def flagged(self) -> bool:
        return bool(self.findings)

    def as_dict(self) -> dict:
        return {
            "device": self.device, "factor": self.factor,
            "entries": [{"workload": e["workload"], "config": e["config"],
                         "summary": e["summary"].as_dict()}
                        for e in self.entries],
            "findings": [f.as_dict() for f in self.findings],
        }


#: Small 2D and 3D cavities the drift sweep runs every config on.
DRIFT_WORKLOADS: dict[str, dict] = {
    "cavity2d": dict(base=(20, 20), num_levels=2, lattice="D2Q9"),
    "cavity3d": dict(base=(10, 10, 10), num_levels=2, lattice="D3Q19"),
}


def drift_report(*, steps: int = 2, factor: float = 3.0,
                 device: DeviceSpec = A100_40GB,
                 workloads: dict[str, dict] | None = None) -> DriftReport:
    """Run all 7 fusion configs on 2D and 3D cavities; join and flag.

    This is the observatory's cross-config oracle: every config's span
    trace is joined with the cost model and families whose normalized
    skew exceeds ``factor`` are reported.  An empty ``findings`` tuple
    means observed time tracks predicted traffic uniformly across the
    whole fusion design space.
    """
    from ..bench.workloads import lid_cavity
    from ..core.fusion import ABLATION_CONFIGS, ORIGINAL_BASELINE
    from ..core.simulation import Simulation

    wls = workloads if workloads is not None else DRIFT_WORKLOADS
    configs = (ORIGINAL_BASELINE,) + ABLATION_CONFIGS
    entries: list[dict] = []
    findings: list[DriftFinding] = []
    for wl_name, kwargs in wls.items():
        wl = lid_cavity(**kwargs)
        for cfg in configs:
            sim = Simulation.from_config(wl.spec, wl.sim_config(fusion=cfg))
            recorder = sim.enable_tracing()
            with sim:
                sim.run(steps)
            summary = roofline_summary(recorder, device=device,
                                       kbc=wl.collision.lower() == "kbc")
            entries.append({"workload": wl_name, "config": cfg.name,
                            "summary": summary})
            findings.extend(drift_findings(summary, factor=factor,
                                           workload=wl_name, config=cfg.name))
    return DriftReport(device=device.name, factor=factor,
                       entries=tuple(entries), findings=tuple(findings))

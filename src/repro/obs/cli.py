"""``python -m repro.obs`` — run a workload under full telemetry.

Runs one (workload, fusion-config) pair with the span tracer installed
and the health watchdog armed, then emits

* ``trace_<workload>_<config>.json`` — a Chrome-trace/Perfetto timeline
  (load it at https://ui.perfetto.dev) with one observed track per
  concurrency stream plus the cost-model-predicted schedule;
* ``metrics_<workload>_<config>.json`` — the metrics-registry report
  (MLUPS, bytes/step, kernels/step, active cells, wave depth, watchdog
  status and its periodic snapshots).

The emitted trace is validated structurally before the process exits
(exactly one complete slice per kernel record, parseable JSON); exit
status is non-zero on validation failure or a detected divergence.

``python -m repro.obs report`` is the observatory entry point: the same
telemetry session rendered as one terminal/HTML run report — trace
summary, metrics, roofline accounting (achieved bandwidth + drift),
lint opportunities, the step-plan certificate digest and a unified
JSON-lines event log (see :mod:`repro.obs.report`).  ``report --drift``
additionally sweeps all 7 fusion configs (2D and 3D) through the
roofline join and reports families whose predicted-vs-observed skew is
out of line.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Sequence

from ..core.fusion import get_config
from ..core.simulation import Simulation
from ..gpu.device import get_device
from .metrics import MetricsRegistry, run_metrics
from .spans import SpanRecorder
from .trace import chrome_trace, validate_trace
from .watchdog import HealthWatchdog, SimulationDiverged

__all__ = ["main", "report_main", "run_workload", "OBS_WORKLOADS",
           "CONFIG_ALIASES"]

#: Named workloads small enough for functional telemetry runs.
#: ``cavity2d`` is the Fig. 2 golden setup: a 3-level 24x24 cavity whose
#: per-coarse-step kernel counts are 29 (baseline-4b) / 10 (ours-4f).
OBS_WORKLOADS: dict[str, dict] = {
    "cavity2d": dict(base=(24, 24), num_levels=3, lattice="D2Q9",
                     widths=[7.0, 2.0]),
    "cavity2d-2lvl": dict(base=(20, 20), num_levels=2, lattice="D2Q9"),
    "cavity3d": dict(base=(12, 12, 12), num_levels=3, lattice="D3Q19"),
}

#: Friendly spellings of the fusion presets.
CONFIG_ALIASES: dict[str, str] = {
    "case": "ours-4f", "ours": "ours-4f", "fused": "ours-4f",
    "baseline": "baseline-4b", "original": "baseline-4a",
}


def _resolve_config(name: str):
    return get_config(CONFIG_ALIASES.get(name, name))


def _telemetry_session(workload: str, config_name: str, *, steps: int = 3,
                       watchdog_every: int = 1) -> dict:
    """Run one instrumented session and return the live objects.

    Shared by the trace-export path (:func:`run_workload`) and the
    observatory report path (:func:`report_main`): builds the workload,
    installs the span tracer, arms the watchdog, runs, and publishes the
    standard metrics.  Divergence is caught and reported in ``status``.
    """
    from ..bench.workloads import lid_cavity

    cfg = _resolve_config(config_name)
    wl = lid_cavity(**OBS_WORKLOADS[workload])
    sim = Simulation.from_config(wl.spec, wl.sim_config(fusion=cfg))
    recorder = sim.enable_tracing()
    registry = MetricsRegistry()
    watchdog = HealthWatchdog(sim, every=watchdog_every, registry=registry)

    def monitor(stepper) -> None:
        watchdog.callback(stepper)
        if stepper.steps_done % max(watchdog_every, 1) == 0:
            registry.snapshot(step=stepper.steps_done)

    try:
        sim.run(steps, callback=monitor, callback_every=1)
        status: dict = {"status": "ok"}
    except SimulationDiverged as exc:
        status = {"status": "diverged", "payload": exc.payload}

    run_metrics(sim, registry, recorder=recorder)
    return {"sim": sim, "recorder": recorder, "registry": registry,
            "watchdog": watchdog, "status": status, "workload": wl,
            "config": cfg, "kbc": wl.collision.lower() == "kbc"}


def run_workload(workload: str, config_name: str, *, steps: int = 3,
                 device_name: str = "A100-40GB",
                 watchdog_every: int = 1) -> dict:
    """Run one telemetry session; return trace/metrics/report dicts."""
    device = get_device(device_name)
    ses = _telemetry_session(workload, config_name, steps=steps,
                             watchdog_every=watchdog_every)
    sim, recorder, registry = ses["sim"], ses["recorder"], ses["registry"]
    watchdog, status, wl, cfg = (ses["watchdog"], ses["status"],
                                 ses["workload"], ses["config"])
    trace = chrome_trace(recorder, device=device, kbc=ses["kbc"])
    per_step = [m - (sim.runtime.markers[i - 1] if i else 0)
                for i, m in enumerate(sim.runtime.markers)]
    return {
        "workload": wl.name,
        "config": cfg.name,
        "steps": sim.steps_done,
        "trace": trace,
        "kernels_per_step": per_step,
        "metrics": registry.as_dict(),
        "watchdog": {**status, "checks_run": watchdog.checks_run,
                     "last_report": watchdog.last_report},
        "n_records": len(sim.runtime.records),
    }


def _print_report(res: dict, out) -> None:
    metrics = res["metrics"]["metrics"]

    def val(name):
        m = metrics.get(name)
        return m["value"] if m else float("nan")

    print(f"workload {res['workload']}  config {res['config']}  "
          f"steps {res['steps']}", file=out)
    print(f"  kernels/step : {val('kernels_per_step'):.1f}  "
          f"(per step: {res['kernels_per_step']})", file=out)
    print(f"  bytes/step   : {val('bytes_per_step') / 1e6:.3f} MB", file=out)
    print(f"  atomic bytes : {val('atomic_bytes_total') / 1e3:.1f} kB total",
          file=out)
    print(f"  wave depth   : {val('wave_depth'):.0f} syncs/step "
          f"(max width {val('wave_max_width'):.0f})", file=out)
    print(f"  MLUPS (wall) : {val('wall_mlups'):.3f}", file=out)
    print(f"  span cover   : {val('span_total_us'):.0f} us over "
          f"{res['n_records']} kernels", file=out)
    wd = res["watchdog"]
    print(f"  watchdog     : {wd['status']} after {wd['checks_run']} check(s)",
          file=out)
    if wd["status"] == "diverged":
        p = wd["payload"]
        print(f"      {p['reason']} in {p['field']}@{p['level']} at step "
              f"{p['step']}, cells {p['cells']}", file=out)


def report_main(argv: Sequence[str] | None = None) -> int:
    """``python -m repro.obs report`` — the observatory run report."""
    from .log import EventLog
    from .report import collect_report, render_text, write_report
    from .roofline import drift_report

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs report",
        description="Render one telemetry session as a terminal/HTML run "
                    "report: trace + metrics + roofline + lint "
                    "opportunities + certificate digest + event log.")
    parser.add_argument("--workload", default="cavity2d",
                        choices=sorted(OBS_WORKLOADS))
    parser.add_argument("--config", default="case",
                        help="fusion config name or alias")
    parser.add_argument("--steps", type=int, default=3)
    parser.add_argument("--device", default="A100-40GB")
    parser.add_argument("--watchdog-every", type=int, default=1)
    parser.add_argument("--out", default=".",
                        help="output directory for report + event log")
    parser.add_argument("--drift", action="store_true",
                        help="also sweep all 7 fusion configs (2D+3D) "
                             "through the roofline join and report drift")
    parser.add_argument("--drift-factor", type=float, default=3.0,
                        help="normalized-skew factor that flags a family")
    parser.add_argument("--run-id", default=None,
                        help="run identity stamped on every event-log line")
    parser.add_argument("--label", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="extra event-log label (repeatable) — the "
                             "per-tenant seam")
    args = parser.parse_args(argv)

    try:
        cfg = _resolve_config(args.config)
        device = get_device(args.device)
    except KeyError as exc:
        parser.error(str(exc.args[0]))
    labels = {}
    for item in args.label:
        if "=" not in item:
            parser.error(f"--label wants KEY=VALUE, got {item!r}")
        k, _, v = item.partition("=")
        labels[k] = v

    ses = _telemetry_session(args.workload, args.config, steps=args.steps,
                             watchdog_every=args.watchdog_every)
    log = EventLog(run_id=args.run_id, workload=args.workload,
                   config=cfg.name, **labels)
    log.emit("meta", workload=args.workload, config=cfg.name,
             steps=args.steps, device=device.name)
    rep = collect_report(ses["sim"], ses["recorder"], ses["registry"],
                         workload=args.workload, status=ses["status"],
                         device=device, kbc=ses["kbc"],
                         drift_factor=args.drift_factor, event_log=log)
    rep.log_lines = len(log)

    os.makedirs(args.out, exist_ok=True)
    stem = f"{args.workload}_{cfg.name}"
    paths = write_report(rep, stem, args.out)
    log_path = os.path.join(args.out, f"events_{stem}.jsonl")
    log.write(log_path, append=False)

    sys.stdout.write(render_text(rep))
    print(f"report json   : {paths['json']}")
    print(f"report html   : {paths['html']}")
    print(f"event log     : {log_path}")

    if args.drift:
        dr = drift_report(steps=max(args.steps, 2), device=device,
                          factor=args.drift_factor)
        drift_path = os.path.join(args.out, "drift_report.json")
        with open(drift_path, "w") as fh:
            json.dump(dr.as_dict(), fh, indent=2)
            fh.write("\n")
        print(f"drift sweep   : {len(dr.entries)} (workload, config) "
              f"entries, {len(dr.findings)} flagged -> {drift_path}")
        for f in dr.findings:
            print(f"  {f}")

    return 1 if rep.status.get("status") != "ok" else 0


def main(argv: Sequence[str] | None = None) -> int:
    args_in = list(sys.argv[1:] if argv is None else argv)
    if args_in and args_in[0] == "report":
        return report_main(args_in[1:])
    return _run_main(args_in)


def _run_main(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Telemetry runner: span tracer + Perfetto timeline "
                    "export + metrics report + health watchdog.  "
                    "Subcommand 'report' renders the observatory run "
                    "report instead (see python -m repro.obs report -h).")
    parser.add_argument("--workload", default="cavity2d",
                        choices=sorted(OBS_WORKLOADS),
                        help="workload to run (default cavity2d, the "
                             "Fig. 2 golden setup)")
    parser.add_argument("--config", default="case",
                        help="fusion config name or alias "
                             f"({', '.join(sorted(CONFIG_ALIASES))}, or any "
                             "preset name; default 'case' = ours-4f)")
    parser.add_argument("--steps", type=int, default=3,
                        help="coarse steps to run (default 3)")
    parser.add_argument("--device", default="A100-40GB",
                        help="device spec for the predicted track")
    parser.add_argument("--watchdog-every", type=int, default=1,
                        help="health-check cadence in coarse steps")
    parser.add_argument("--out", default=".",
                        help="output directory for the JSON artifacts")
    args = parser.parse_args(argv)

    try:
        cfg = _resolve_config(args.config)
    except KeyError as exc:
        parser.error(str(exc.args[0]))
    try:
        get_device(args.device)
    except KeyError as exc:
        parser.error(str(exc.args[0]))

    res = run_workload(args.workload, args.config, steps=args.steps,
                       device_name=args.device,
                       watchdog_every=args.watchdog_every)

    os.makedirs(args.out, exist_ok=True)
    stem = f"{args.workload}_{cfg.name}"
    trace_path = os.path.join(args.out, f"trace_{stem}.json")
    with open(trace_path, "w") as fh:
        json.dump(res["trace"], fh)
        fh.write("\n")
    metrics_path = os.path.join(args.out, f"metrics_{stem}.json")
    with open(metrics_path, "w") as fh:
        json.dump({k: v for k, v in res.items() if k != "trace"}, fh, indent=2)
        fh.write("\n")

    _print_report(res, sys.stdout)
    print(f"  trace        : {trace_path}  (open at https://ui.perfetto.dev)")
    print(f"  metrics      : {metrics_path}")

    # Validate what actually landed on disk, round-tripped through JSON.
    with open(trace_path) as fh:
        problems = validate_trace(json.load(fh), res["n_records"])
    for p in problems:
        print(f"  trace INVALID: {p}", file=sys.stderr)
    if not problems:
        print(f"  trace OK     : {res['n_records']} kernel slices, "
              f"1 per record")
    diverged = res["watchdog"]["status"] != "ok"
    return 1 if (problems or diverged) else 0

"""Unified structured event log: one JSON-lines schema for everything.

The observability layer grew four disjoint record streams — kernel/step
spans (:mod:`repro.obs.spans`), metric snapshots
(:mod:`repro.obs.metrics`), watchdog findings
(:mod:`repro.obs.watchdog`) and resilience events
(retry/rollback/degrade from :mod:`repro.resilience.runner`).  This
module folds them into **one** append-friendly JSON-lines schema so a
single file narrates a whole run, and so several concurrent runs can
share one sink and still be teased apart: every line carries the run's
identity and labels (the per-tenant seam the future ``repro.serve``
layer multiplexes on).

Line schema (``v`` = :data:`LOG_VERSION`)::

    {"v": 1, "run": {"id": "...", <labels>}, "kind": "<kind>",
     "seq": <int>, "ts_us": <float|null>, "data": {...}}

``kind`` is one of :data:`LOG_KINDS`:

* ``meta``      — one opening line per run: workload, config, host;
* ``kernel``    — one kernel span (index, name, level, bytes, timing);
* ``step``      — one coarse-step span (record range, timing);
* ``metric``    — one metrics-registry snapshot (labels + values);
* ``watchdog``  — a health check outcome (ok stats or divergence payload);
* ``resilience``— a recovery event (retry / rollback / degrade / fault);
* ``note``      — free-form annotations (regrids, phase markers, ...).

``seq`` is a per-run monotone sequence number — the total order of the
log even where timestamps tie or are absent.  ``ts_us`` is microseconds
relative to the run's span origin when the source stream has one.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterable, Sequence
from uuid import uuid4

__all__ = ["LOG_VERSION", "LOG_KINDS", "EventLog", "read_log",
           "validate_log", "split_runs"]

LOG_VERSION = 1
LOG_KINDS = ("meta", "kernel", "step", "metric", "watchdog",
             "resilience", "note")


class EventLog:
    """Accumulates one run's events; serializes to JSON lines.

    Parameters
    ----------
    run_id:
        Stable identity of the run; auto-generated when omitted.
    labels:
        Arbitrary key/value labels stamped on **every** line (tenant,
        workload, config, job id, ...).
    """

    def __init__(self, run_id: str | None = None, **labels: Any) -> None:
        self.run_id = run_id if run_id is not None else uuid4().hex[:12]
        self.labels = {str(k): v for k, v in labels.items()}
        self.lines: list[dict] = []
        self._seq = 0

    # -- emission ------------------------------------------------------------
    def emit(self, kind: str, ts_us: float | None = None,
             **data: Any) -> dict:
        """Append one event line and return it."""
        if kind not in LOG_KINDS:
            raise ValueError(f"unknown log kind {kind!r}; one of {LOG_KINDS}")
        line = {
            "v": LOG_VERSION,
            "run": {"id": self.run_id, **self.labels},
            "kind": kind,
            "seq": self._seq,
            "ts_us": round(ts_us, 3) if ts_us is not None else None,
            "data": data,
        }
        self._seq += 1
        self.lines.append(line)
        return line

    def note(self, message: str, **data: Any) -> dict:
        return self.emit("note", message=message, **data)

    # -- ingestion from the existing telemetry sources -----------------------
    def ingest_spans(self, recorder) -> int:
        """Fold a :class:`~repro.obs.spans.SpanRecorder` into the log.

        Emits one ``kernel`` line per kernel span, one ``step`` line per
        step span and one ``resilience`` line per surviving event span
        (the recorder's events are exactly the recovery narration).
        Returns the number of lines emitted.
        """
        n = 0
        for s in recorder.kernel_spans:
            self.emit("kernel", ts_us=s.start_us, index=s.index,
                      name=s.record.name, level=s.record.level,
                      n_cells=s.record.n_cells, bytes=s.record.bytes_total,
                      atomic_bytes=s.record.atomic_bytes,
                      dur_us=round(s.dur_us, 3))
            n += 1
        for ss in recorder.step_spans:
            self.emit("step", ts_us=ss.start_us, step=ss.step,
                      start_record=ss.start_record, end_record=ss.end_record,
                      dur_us=round(ss.dur_us, 3))
            n += 1
        n += self.ingest_events(e.as_dict() for e in recorder.events)
        return n

    def ingest_events(self, events: Iterable[dict]) -> int:
        """Fold resilience events (``EventSpan.as_dict()`` shape) in."""
        n = 0
        for ev in events:
            ev = dict(ev)
            ts = ev.pop("ts_us", None)
            name = ev.pop("name", "event")
            self.emit("resilience", ts_us=ts, event=name, **ev)
            n += 1
        return n

    def ingest_metrics(self, registry, *, final: bool = True) -> int:
        """Fold a :class:`~repro.obs.metrics.MetricsRegistry` in.

        Each recorded snapshot becomes one ``metric`` line (value-only
        view — help strings stay in the registry dump); with ``final``
        the registry's closing state is appended as a last snapshot
        labelled ``{"final": True}``.
        """
        n = 0
        for snap in registry.snapshots:
            self.emit("metric", labels=snap.get("labels", {}),
                      values={k: m.get("value", m.get("mean"))
                              for k, m in snap.get("metrics", {}).items()})
            n += 1
        if final:
            self.emit("metric", labels={"final": True},
                      values={name: registry[name].as_dict().get(
                          "value", registry[name].as_dict().get("mean"))
                          for name in registry.names()})
            n += 1
        return n

    def ingest_watchdog(self, report: dict | None = None,
                        diverged: dict | None = None) -> int:
        """Fold a watchdog outcome in: an ok report or a divergence.

        ``report`` is :attr:`HealthWatchdog.last_report`; ``diverged`` is
        a :class:`~repro.obs.watchdog.SimulationDiverged` payload (its
        span dump is dropped — the spans are already ``kernel`` lines).
        """
        n = 0
        if report is not None:
            self.emit("watchdog", status="ok", step=report.get("step"),
                      checks_run=report.get("checks_run"),
                      levels=report.get("levels"))
            n += 1
        if diverged is not None:
            payload = {k: v for k, v in diverged.items() if k != "spans"}
            self.emit("watchdog", status="diverged", **payload)
            n += 1
        return n

    # -- serialization -------------------------------------------------------
    def dump(self) -> str:
        return "".join(json.dumps(line, sort_keys=True, default=str) + "\n"
                       for line in self.lines)

    def write(self, path: str, append: bool = True) -> str:
        """Serialize to ``path`` (append by default: logs are shared sinks)."""
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "a" if append else "w") as fh:
            fh.write(self.dump())
        return path

    def __len__(self) -> int:
        return len(self.lines)


def read_log(path: str) -> list[dict]:
    """Parse a JSON-lines event log; blank/torn lines are skipped."""
    out: list[dict] = []
    with open(path) as fh:
        for raw in fh:
            raw = raw.strip()
            if not raw:
                continue
            try:
                line = json.loads(raw)
            except json.JSONDecodeError:
                continue
            if isinstance(line, dict):
                out.append(line)
    return out


def validate_log(lines: Sequence[dict]) -> list[str]:
    """Schema lint of event-log lines; returns found problems.

    Checks the invariants consumers key on: version, a known ``kind``, a
    run identity on every line, numeric-or-null ``ts_us``, and strictly
    increasing ``seq`` within each run.
    """
    problems: list[str] = []
    last_seq: dict[str, int] = {}
    for i, line in enumerate(lines):
        if line.get("v") != LOG_VERSION:
            problems.append(f"line {i}: unsupported version {line.get('v')!r}")
            continue
        kind = line.get("kind")
        if kind not in LOG_KINDS:
            problems.append(f"line {i}: unknown kind {kind!r}")
        run = line.get("run")
        if not isinstance(run, dict) or not run.get("id"):
            problems.append(f"line {i}: missing run identity")
            continue
        ts = line.get("ts_us")
        if ts is not None and not isinstance(ts, (int, float)):
            problems.append(f"line {i}: non-numeric ts_us {ts!r}")
        seq = line.get("seq")
        rid = str(run["id"])
        if not isinstance(seq, int):
            problems.append(f"line {i}: missing seq")
        else:
            if rid in last_seq and seq <= last_seq[rid]:
                problems.append(f"line {i}: seq {seq} not increasing for "
                                f"run {rid}")
            last_seq[rid] = seq
        if not isinstance(line.get("data"), dict):
            problems.append(f"line {i}: data is not an object")
    return problems


def split_runs(lines: Sequence[dict]) -> dict[str, list[dict]]:
    """Group a shared sink's lines by run id (the multi-tenant read path)."""
    out: dict[str, list[dict]] = {}
    for line in lines:
        rid = str(line.get("run", {}).get("id", "?"))
        out.setdefault(rid, []).append(line)
    return out

"""Chrome-trace-event / Perfetto export of the recorded span tree.

Renders a :class:`~repro.obs.spans.SpanRecorder` as the JSON object
format every Chrome-trace consumer (``ui.perfetto.dev``,
``chrome://tracing``) loads directly:

* **pid 1 — observed (wall clock)**: the step spans (track ``coarse
  steps``), the per-level runs (track ``level runs``) and one track per
  *concurrency stream* carrying the kernel slices.  Streams follow the
  dependency-wave schedule (:func:`repro.neon.graph.stream_assignment`):
  kernels sharing a wave sit on different stream tracks, so the width of
  the schedule is visible even though the functional run executes
  sequentially.
* **pid 2 — cost model (predicted)**: the same kernels re-timed by the
  roofline model (:mod:`repro.gpu.costmodel`) and laid out wave-by-wave
  the way the device scheduler would issue them.  Lining the two
  processes up makes observed-vs-modelled skew visible per kernel; each
  observed slice also carries ``predicted_us`` and ``skew`` in its args.

Every kernel slice is a *complete* event (``"ph": "X"``) with
microsecond ``ts``/``dur`` — exactly one per
:class:`~repro.neon.runtime.KernelRecord`, which is the invariant
:func:`validate_trace` (and the golden test) checks.
"""

from __future__ import annotations

import json

from ..gpu.costmodel import kernel_time_us
from ..gpu.device import A100_40GB, DeviceSpec
from ..neon.graph import build_dependency_graph, stream_assignment
from .spans import SpanRecorder

__all__ = ["chrome_trace", "write_chrome_trace", "validate_trace",
           "OBSERVED_PID", "MODELLED_PID"]

OBSERVED_PID = 1
MODELLED_PID = 2
_STEP_TID = 0
_LEVEL_TID = 1
_STREAM_TID0 = 10          # stream s renders on tid _STREAM_TID0 + s


def _meta(pid: int, tid: int | None, name: str, value: str) -> dict:
    ev = {"ph": "M", "name": name, "pid": pid, "args": {"name": value}}
    if tid is not None:
        ev["tid"] = tid
    return ev


def _slice(name: str, cat: str, pid: int, tid: int, ts: float, dur: float,
           args: dict) -> dict:
    return {"name": name, "cat": cat, "ph": "X", "pid": pid, "tid": tid,
            "ts": round(ts, 3), "dur": round(max(dur, 0.0), 3), "args": args}


def chrome_trace(recorder: SpanRecorder, *, device: DeviceSpec = A100_40GB,
                 kbc: bool = False) -> dict:
    """Render the recorded spans as a Chrome-trace-event JSON object."""
    events: list[dict] = [
        _meta(OBSERVED_PID, None, "process_name", "observed (wall clock)"),
        _meta(OBSERVED_PID, _STEP_TID, "thread_name", "coarse steps"),
        _meta(OBSERVED_PID, _LEVEL_TID, "thread_name", "level runs"),
        _meta(MODELLED_PID, None, "process_name",
              f"cost model (predicted, {device.name})"),
    ]

    for ss in recorder.step_spans:
        events.append(_slice(
            f"step {ss.step}", "step", OBSERVED_PID, _STEP_TID,
            ss.start_us, ss.dur_us,
            {"step": ss.step, "kernels": ss.end_record - ss.start_record}))
    for run in recorder.level_runs():
        events.append(_slice(
            f"L{run.level}", "level", OBSERVED_PID, _LEVEL_TID,
            run.start_us, run.dur_us,
            {"step": run.step, "level": run.level,
             "kernels": run.end_record - run.start_record}))

    streams_seen: set[int] = set()
    # Kernels before the first step marker (a partial step) still export.
    bounds = [(ss.step, ss.start_record, ss.end_record)
              for ss in recorder.step_spans]
    done = bounds[-1][2] if bounds else 0
    tail = [s for s in recorder.kernel_spans if s.index >= done]
    if tail:
        bounds.append((len(bounds), tail[0].index, tail[-1].index + 1))

    for step, start, end in bounds:
        spans = [s for s in recorder.kernel_spans if start <= s.index < end]
        if not spans:
            continue
        records = [s.record for s in spans]
        slots = stream_assignment(build_dependency_graph(records, reduce=False))
        cursor = spans[0].start_us
        wave_end = {}
        for pos, span in enumerate(spans):
            rec = span.record
            wave, stream = slots[pos]
            streams_seen.add(stream)
            cost = kernel_time_us(rec, device, kbc=kbc)
            label = f"{rec.name}{rec.level}"
            args = {
                "index": span.index, "step": step, "level": rec.level,
                "n_cells": rec.n_cells, "bytes": rec.bytes_total,
                "atomic_bytes": rec.atomic_bytes,
                "wave": wave, "stream": stream,
                "predicted_us": round(cost.time_us, 4),
                "skew": round(span.dur_us / cost.time_us, 3)
                        if cost.time_us > 0 else None,
            }
            events.append(_slice(label, "kernel", OBSERVED_PID,
                                 _STREAM_TID0 + stream,
                                 span.start_us, span.dur_us, args))
            # Modelled schedule: a wave's kernels start together; the next
            # wave starts when the slowest kernel of this one retires.
            start_t = wave_end.setdefault(wave, cursor)
            events.append(_slice(label, "kernel-predicted", MODELLED_PID,
                                 _STREAM_TID0 + stream,
                                 start_t, cost.time_us,
                                 {"index": span.index, "step": step,
                                  "wave": wave,
                                  "observed_us": round(span.dur_us, 3)}))
            finish = start_t + cost.time_us + device.sync_overhead_us
            if wave + 1 not in wave_end or finish > wave_end[wave + 1]:
                wave_end[wave + 1] = finish

    for s in sorted(streams_seen):
        events.append(_meta(OBSERVED_PID, _STREAM_TID0 + s,
                            "thread_name", f"stream {s}"))
        events.append(_meta(MODELLED_PID, _STREAM_TID0 + s,
                            "thread_name", f"stream {s}"))

    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": {"generator": "repro.obs",
                          "device": device.name,
                          "kernel_slices": len(recorder.kernel_spans),
                          # Observed overlap of the wall-clock slices —
                          # 1.0 serial, up to the wave width threaded.
                          "occupancy": recorder.observed_occupancy()}}


def write_chrome_trace(path: str, recorder: SpanRecorder, *,
                       device: DeviceSpec = A100_40GB, kbc: bool = False) -> str:
    """Serialize :func:`chrome_trace` to ``path``; returns the path."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(recorder, device=device, kbc=kbc), fh)
        fh.write("\n")
    return path


def validate_trace(trace: dict, expected_kernels: int | None = None) -> list[str]:
    """Structural lint of an exported trace; returns found problems.

    Checks the invariants the CI smoke job relies on: parseability (the
    caller typically round-trips through ``json.dumps``/``loads`` first),
    complete-event shape for every slice, and — when
    ``expected_kernels`` is given — exactly one observed kernel slice
    per :class:`~repro.neon.runtime.KernelRecord`.
    """
    problems: list[str] = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    kernel_slices = 0
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph not in ("X", "M"):
            problems.append(f"event {i}: unexpected phase {ph!r}")
            continue
        if ph == "X":
            if not all(k in ev for k in ("name", "ts", "dur", "pid", "tid")):
                problems.append(f"event {i}: incomplete slice {ev.get('name')!r}")
            elif ev["dur"] < 0:
                problems.append(f"event {i}: negative duration")
            if ev.get("cat") == "kernel":
                kernel_slices += 1
    if expected_kernels is not None and kernel_slices != expected_kernels:
        problems.append(f"{kernel_slices} kernel slices for "
                        f"{expected_kernels} kernel records")
    return problems

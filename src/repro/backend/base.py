"""Backend protocol and registry.

A backend is anything with a ``name`` and a ``step(stepper)`` method
that advances the coarsest level by one time step, honouring the
runtime's trace/step-marker contract (records appended per launch, one
marker per coarse step, :meth:`~repro.neon.runtime.Runtime.abort_step`
on mid-step failure).  The registry maps the names accepted by
``SimConfig(backend=...)`` and ``$REPRO_BACKEND`` to constructors.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Callable, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.stepper import NonUniformStepper

__all__ = ["Backend", "PlanAdmissionError", "BACKEND_ENV",
           "available_backends", "make_backend", "resolve_backend"]

#: Environment variable consulted when ``SimConfig.backend`` is ``None``.
BACKEND_ENV = "REPRO_BACKEND"


@runtime_checkable
class Backend(Protocol):
    """Duck-typed execution strategy for one coarse step.

    Implementations must advance ``stepper.steps_done`` by one, close the
    step with a runtime step marker, and call
    :meth:`~repro.neon.runtime.Runtime.abort_step` before re-raising a
    mid-step failure, so traces stay balanced under every backend.
    """

    #: Registry name the backend answers to (``"interpreted"``, ...).
    name: str

    def step(self, stepper: "NonUniformStepper") -> None:
        """Advance the coarsest level of ``stepper`` by one time step."""
        ...  # pragma: no cover - protocol stub


class PlanAdmissionError(RuntimeError):
    """A compiled step plan failed its admission contract.

    Raised when the captured kernel stream has lint *errors* (dead
    stores, arena aliasing) or fails certificate validation (digest
    mismatch, hazard-order violation, illegal fusion contraction).  The
    plan is never executed: admission failures mean the declarations the
    plan would be replayed from cannot be trusted.
    """

    def __init__(self, problems: list[str]) -> None:
        self.problems = list(problems)
        super().__init__("step plan refused admission: "
                         + "; ".join(self.problems[:5]))


def _registry() -> dict[str, Callable[[], Backend]]:
    from .compiled import CompiledAABackend, CompiledBackend
    from .interpreted import InterpretedBackend
    from .mp import MultiprocessBackend
    return {
        "interpreted": InterpretedBackend,
        "compiled": CompiledBackend,
        "compiled-aa": CompiledAABackend,
        "mp": MultiprocessBackend,
    }


def available_backends() -> tuple[str, ...]:
    """Registered backend names, in presentation order."""
    return tuple(_registry())


def make_backend(name: str) -> Backend:
    """Construct a fresh backend instance by registry name."""
    try:
        ctor = _registry()[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; available: "
            f"{', '.join(available_backends())}") from None
    return ctor()


def resolve_backend(name: str | None) -> Backend:
    """Resolve a configured backend name to an instance.

    ``None`` defers to ``$REPRO_BACKEND`` and falls back to the
    interpreted reference backend — the same layering as
    ``SimConfig.threaded`` and ``$REPRO_THREADED``.
    """
    if name is None:
        name = os.environ.get(BACKEND_ENV, "").strip() or "interpreted"
    return make_backend(name)

"""Compiled step plans: a pre-resolved kernel stream replayed without dispatch.

A :class:`StepPlan` is the product of one plan compilation
(:mod:`repro.backend.compiler`): the captured
:class:`~repro.neon.runtime.KernelRecord` stream of one coarse step,
one pre-bound body closure per record (field views resolved, index maps
flattened, scratch assigned from the buffer arena), the stream digest
that ties the plan to its admission certificate, and the arena model the
scratch came from.  :meth:`StepPlan.execute` is the entire replay hot
path: call the closures in order, append the prebuilt records — no
``Runtime.launch``, no record construction, no per-launch Python
re-dispatch.
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING, Any, Callable, Sequence

from ..neon.runtime import KernelRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..gpu.memory import BufferLifetime
    from ..neon.runtime import Runtime

__all__ = ["StepPlan"]


class StepPlan:
    """One compiled coarse step: prebuilt records plus pre-bound bodies.

    The record tuple is shared across every replay (records are frozen
    dataclasses; appending the same instances each step is what makes
    the trace of a compiled run bit-identical to the interpreted one).
    """

    def __init__(self, records: Sequence[KernelRecord],
                 bodies: Sequence[Callable[[], None]],
                 *, digest: str, certificate: dict[str, Any],
                 arena: Sequence["BufferLifetime"] = (),
                 arena_bytes: int = 0,
                 dropped: Sequence[str] = (),
                 label: str = "") -> None:
        if len(records) != len(bodies):
            raise ValueError("one body per record is the plan invariant")
        self.records: tuple[KernelRecord, ...] = tuple(records)
        self.bodies: tuple[Callable[[], None], ...] = tuple(bodies)
        #: SHA-256 stream digest (also in the admission certificate).
        self.digest = digest
        #: Admission certificate the plan validated against (PR-5 schema).
        self.certificate = certificate
        #: Arena lifetimes backing the plan's scratch allocations.
        self.arena: tuple["BufferLifetime", ...] = tuple(arena)
        #: Arena capacity the scratch slabs occupy, in bytes.
        self.arena_bytes = int(arena_bytes)
        #: Fields whose double buffer was physically dropped (AA mode).
        self.dropped: tuple[str, ...] = tuple(dropped)
        #: Human label for spans/diagnostics (config + workload shape).
        self.label = label
        self.replays = 0

    def __len__(self) -> int:
        return len(self.records)

    def execute(self, rt: "Runtime") -> None:
        """Replay the plan once: run every body, append every record.

        Mirrors the runtime's serial error contract: on a mid-plan
        failure the records of the bodies that *did* run are kept, the
        exception gains a ``kernel_span`` attribute naming the failed
        kernel, and the caller is expected to close the partial step
        with :meth:`~repro.neon.runtime.Runtime.abort_step`.

        With a span recorder installed the replay times each body and
        reports it through ``on_launch`` exactly like immediate
        execution does, so Perfetto timelines and the roofline work
        unchanged over compiled runs.
        """
        records = rt.records
        spans = rt.spans
        done = 0
        try:
            if spans is None:
                for body in self.bodies:
                    body()
                    done += 1
            else:
                base = len(records)
                for i, body in enumerate(self.bodies):
                    t0 = perf_counter()
                    body()
                    done += 1
                    records.append(self.records[i])
                    spans.on_launch(base + i, self.records[i], t0,
                                    perf_counter() - t0)
        except BaseException as exc:
            if spans is None:
                records.extend(self.records[:done])
            rec = self.records[done]
            setattr(exc, "kernel_span",
                    {"index": len(records), "name": rec.name,
                     "level": rec.level, "n_cells": rec.n_cells,
                     "start": 0.0, "dur_us": 0.0})
            raise
        if spans is None:
            records.extend(self.records)
        self.replays += 1

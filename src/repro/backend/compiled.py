"""Compiled backends: cache a step plan per step shape, then replay.

The first execution of each unique step shape — fusion config, per-level
relaxation rates, body force, engine state epoch — compiles a
:class:`~repro.backend.plan.StepPlan` (capture, admit, pre-resolve,
pre-allocate; see :mod:`repro.backend.compiler`) and caches it.  Every
later step of the same shape replays the cached plan with zero Python
re-dispatch of the launch path.

Runtime hooks that must observe or intercept *individual launches*
(tracer, fault injector, deferred executor) make replay meaningless, so
steps running under them fall back to the interpreted reference path —
counted, never silent.  Span recorders keep working through the plan's
timed replay, and checkpoint restores bump the engine's state epoch so
stale plans are never replayed against restored state.
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING, Any

from .compiler import compile_plan
from .interpreted import InterpretedBackend
from .plan import StepPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.stepper import NonUniformStepper

__all__ = ["CompiledBackend", "CompiledAABackend"]

PlanKey = tuple[Any, ...]


class CompiledBackend:
    """Compile-once / replay-many execution of the coarse step."""

    name = "compiled"
    #: AA-pattern buffer dropping is the :class:`CompiledAABackend` opt-in.
    drop_proven = False

    def __init__(self) -> None:
        self.plans: dict[PlanKey, StepPlan] = {}
        self._fallback = InterpretedBackend()
        #: Counters surfaced through ``repro.obs.metrics.run_metrics``.
        self.stats: dict[str, float] = {
            "plan_cache_hits": 0,
            "plan_cache_misses": 0,
            "plan_fallback_steps": 0,
            "plan_compile_seconds": 0.0,
        }

    def _plan_key(self, stepper: "NonUniformStepper") -> PlanKey:
        """Everything a cached plan's bindings depend on.

        ``SimConfig`` changes and regrids build a new ``Simulation`` (and
        with it a fresh backend instance), so those invalidate by
        construction; checkpoint restores mutate buffers in place and are
        keyed via the engine's ``state_epoch``.
        """
        engine = stepper.engine
        force_key = tuple(
            None if fv is None else tuple(float(c) for c in fv)
            for fv in engine.force)
        return (stepper.config, tuple(engine.omega), force_key,
                engine.state_epoch)

    def _must_fall_back(self, stepper: "NonUniformStepper") -> bool:
        """True when a runtime hook needs to see individual launches."""
        rt = stepper.engine.rt
        return (rt.plan_only or rt.tracer is not None
                or rt.faults is not None or rt.executor is not None)

    def _obtain_plan(self, stepper: "NonUniformStepper") -> StepPlan:
        key = self._plan_key(stepper)
        plan = self.plans.get(key)
        if plan is not None:
            self.stats["plan_cache_hits"] += 1
            return plan
        t0 = perf_counter()
        plan = compile_plan(stepper, drop_proven=self.drop_proven)
        dt = perf_counter() - t0
        self.stats["plan_cache_misses"] += 1
        self.stats["plan_compile_seconds"] += dt
        self.plans[key] = plan
        spans = stepper.engine.rt.spans
        on_event = getattr(spans, "on_event", None)
        if on_event is not None:
            on_event("plan_compile", label=plan.label, kernels=len(plan),
                     digest=plan.digest, seconds=dt,
                     arena_bytes=plan.arena_bytes,
                     dropped=list(plan.dropped))
        return plan

    def step(self, stepper: "NonUniformStepper") -> None:
        """Advance one coarse step by plan replay (or counted fallback)."""
        if self._must_fall_back(stepper):
            self.stats["plan_fallback_steps"] += 1
            self._fallback.step(stepper)
            return
        plan = self._obtain_plan(stepper)
        rt = stepper.engine.rt
        try:
            plan.execute(rt)
            rt.step_marker()
        except BaseException:
            rt.abort_step()
            raise
        stepper.steps_done += 1


class CompiledAABackend(CompiledBackend):
    """Compiled plans with AA-pattern in-place streaming (paper §VI-B).

    Population double buffers the lint pass proves droppable — the fused
    CASE path never reads ``fstar`` outside its own substep — are
    physically replaced by arena scratch, so the engine's ``fstar``
    allocation on those levels goes cold.  Field values the stream
    declares as outputs stay bit-identical to the interpreted path;
    *undeclared* buffer contents (the dropped ``fstar``) intentionally
    diverge, which is why this is a separate opt-in backend rather than
    the ``compiled`` default.
    """

    name = "compiled-aa"
    drop_proven = True

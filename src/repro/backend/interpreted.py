"""The interpreted reference backend: re-dispatched immediate execution.

This is the package's original hot path, extracted verbatim from
``NonUniformStepper.step``: every coarse step re-drives the Algorithm-1
recursion, and every ``op_*`` goes through
:meth:`~repro.neon.runtime.Runtime.launch` — constructing its record,
consulting the tracer/fault/executor hooks and executing (or deferring)
its body.  Slowest, most observable, and the correctness reference every
other backend is gated against bit-for-bit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.stepper import NonUniformStepper

__all__ = ["InterpretedBackend"]


class InterpretedBackend:
    """Reference execution: one ``Runtime.launch`` per kernel per step."""

    name = "interpreted"

    def step(self, stepper: "NonUniformStepper") -> None:
        """Advance the coarsest level by one time step.

        If a kernel body raises mid-step, the partial step is closed
        (:meth:`~repro.neon.runtime.Runtime.abort_step`) before the
        exception propagates, so span trees stay balanced and the trace
        remains exportable/valid.
        """
        rt = stepper.engine.rt
        try:
            stepper._advance(0)
            rt.step_marker()
        except BaseException:
            rt.abort_step()
            raise
        stepper.steps_done += 1

"""Pluggable compute backends: how one coarse step actually executes.

The Algorithm-1 stepper (:mod:`repro.core.stepper`) describes *what* a
coarse step does; a backend decides *how* it runs:

* :class:`~repro.backend.interpreted.InterpretedBackend` — the reference
  path: every ``op_*`` re-dispatches through :meth:`Runtime.launch
  <repro.neon.runtime.Runtime.launch>` each step (immediate NumPy
  execution, full tracing, all runtime hooks).
* :class:`~repro.backend.compiled.CompiledBackend` — compile-once step
  plans: the first execution of each unique step shape captures the
  kernel stream in plan-only mode, pre-resolves every field view and
  index map, pre-allocates scratch from the buffer arena and replays
  the plan on later steps with zero Python re-dispatch of the launch
  path.  Bit-identical to the interpreted path by contract.
* :class:`~repro.backend.compiled.CompiledAABackend` — the compiled
  plan plus AA-pattern in-place streaming: population double buffers
  the static linter proves droppable are physically replaced by arena
  scratch (paper §VI-B's memory win).
* :class:`~repro.backend.mp.MultiprocessBackend` — process-parallel
  replay of the same admitted plans: level buffers live in shared
  memory, a spawn-based worker pool executes cost-model-balanced
  kernel shards wave-by-wave, escaping the GIL entirely.  Bit-identical
  to the interpreted path; worker death surfaces as a recoverable
  :class:`~repro.backend.mp.MpWorkerError`.

Select a backend with ``SimConfig(backend="compiled")`` or the
``$REPRO_BACKEND`` environment variable; the default is interpreted.
The seam is duck-typed (``step(stepper)`` + a ``name``), sized so a
torch or genuinely device-compiled backend can slot in later without
touching the stepper.
"""

from .base import (Backend, PlanAdmissionError, available_backends,
                   make_backend, resolve_backend)
from .compiled import CompiledAABackend, CompiledBackend
from .interpreted import InterpretedBackend
from .mp import MpWorkerError, MultiprocessBackend
from .plan import StepPlan

__all__ = [
    "Backend", "PlanAdmissionError", "available_backends", "make_backend",
    "resolve_backend", "InterpretedBackend", "CompiledBackend",
    "CompiledAABackend", "MultiprocessBackend", "MpWorkerError", "StepPlan",
]

"""Step-plan compiler: capture, admit, pre-resolve, pre-allocate.

Compilation of one coarse step runs in four stages:

1. **Capture** — the kernel stream is recorded in the runtime's
   plan-only mode (:meth:`~repro.neon.runtime.Runtime.capture_plan`):
   record-for-record identical to an executing step's trace, produced
   without touching a population value.
2. **Admission** — the captured stream must pass the PR-5 contract
   before any body is built: the lint pass reports zero errors, the
   fusion config is proven a legal contraction of the modified baseline
   (on the *live* engine's geometry, not a canned workload), and the
   assembled step-plan certificate validates against the stream (digest
   + hazard order).  Failure raises
   :class:`~repro.backend.base.PlanAdmissionError` — an inadmissible
   plan is never executed.
3. **Pre-resolution** — every field view and index map the kernel
   bodies need is resolved once: bulk pulls, boundary patches,
   explosion/coalescence maps and the accumulate scatter are flattened
   to precomputed 1-D index arrays over contiguous buffer views, so a
   replayed body is a handful of ``take``/fancy-index calls instead of
   per-``q`` Python loops.  Adjacent elementwise expressions of the
   fused CA/SE/SO/CASE kernels become a single pre-bound closure whose
   sub-expressions share those resolved operands.
4. **Scratch allocation** — temporaries (the fine-ghost stream gather,
   AA-dropped double buffers) are packed into slabs by the
   ``gpu/memory.py`` buffer arena (:func:`arena_assign`), and the
   assignment is re-checked with :func:`arena_check` before any slab is
   materialised.

Every closure reproduces the interpreted kernel body's NumPy operations
in the same order on the same operands, so compiled execution is
bit-identical to the interpreted path — the property the backend-parity
suite asserts across all fusion configs in 2D and 3D.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from ..analysis.certificate import build_certificate, validate_certificate
from ..analysis.lint import lint_stream
from ..analysis.static import AccessModel, LegalityProof, check_contraction
from ..gpu.memory import (BufferLifetime, arena_assign, arena_check,
                          arena_peak_bytes)
from ..neon.runtime import KernelRecord
from .base import PlanAdmissionError
from .plan import StepPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.stepper import NonUniformStepper

__all__ = ["admit_stream", "compile_plan", "prove_plan_legality"]

KernelBody = Callable[[], None]

#: Kernel names whose body contains the bulk streaming gather.
_STREAM_NAMES = ("S", "SE", "SO", "SEO", "CASE")


def prove_plan_legality(stepper: "NonUniformStepper",
                        records: list[KernelRecord],
                        model: AccessModel) -> LegalityProof:
    """Prove the captured stream is a legal contraction, on the live grid.

    Unlike :func:`repro.analysis.static.prove_fusion_legality` (which
    proves configs on a canonical workload), this runs the contraction
    check against a modified-baseline stream captured from the *same*
    engine — the plan is admitted for the geometry it will actually
    replay on.  The original Fig. 4a layout is a different algorithm,
    not a contraction, and keeps its ``"baseline"`` verdict.
    """
    from ..core.fusion import MODIFIED_BASELINE
    from ..core.stepper import NonUniformStepper

    cfg = stepper.config
    if cfg.original_layout:
        return LegalityProof(config=cfg.name, baseline=cfg.name,
                             verdict="baseline", pairs_checked=0,
                             primitives=0, counterexamples=())
    baseline = NonUniformStepper(stepper.engine, MODIFIED_BASELINE)
    base_records = stepper.engine.rt.capture_plan(
        lambda: baseline._advance(0))
    pairs, prims, cex = check_contraction(
        base_records, model.access_map(base_records), records,
        model.decompose)
    return LegalityProof(
        config=cfg.name, baseline=MODIFIED_BASELINE.name,
        verdict="legal" if not cex else "illegal", pairs_checked=pairs,
        primitives=prims, counterexamples=tuple(cex))


def admit_stream(stepper: "NonUniformStepper", *, workload: str = ""):
    """Capture one step's declaration stream and run plan admission.

    The shared front half of every plan-replaying backend: the stream is
    captured in plan-only mode, linted, proven a legal contraction on
    the live geometry and tied to a validated certificate.  Returns
    ``(records, certificate, lint_report)``; raises
    :class:`~repro.backend.base.PlanAdmissionError` when any part of the
    PR-5 contract fails — an inadmissible stream is never executed, in
    this process or any worker process replaying shards of it.
    """
    engine = stepper.engine
    rt = engine.rt
    records = rt.capture_plan(lambda: stepper._advance(0))
    if not records:
        raise PlanAdmissionError(["captured step stream is empty"])
    model = AccessModel(engine)
    lint = lint_stream(records, model)
    problems = [str(f) for f in lint.errors]
    proof = prove_plan_legality(stepper, records, model)
    if proof.verdict == "illegal":
        problems.extend(str(c) for c in proof.counterexamples[:3])
    label = workload or f"live-{engine.mgrid.d}d-{stepper.num_levels}lvl"
    cert = build_certificate(stepper.config.name, label, records, model,
                             proof, lint, steps=1)
    problems.extend(validate_certificate(cert, records))
    if problems:
        raise PlanAdmissionError(problems)
    return records, cert, lint


def compile_plan(stepper: "NonUniformStepper", *, drop_proven: bool = False,
                 workload: str = "") -> StepPlan:
    """Compile one coarse step of ``stepper`` into a :class:`StepPlan`.

    ``drop_proven`` enables AA-pattern in-place streaming: population
    double buffers the lint pass proves droppable (allocated but never
    accessed by any kernel of the stream — the CASE register file) are
    physically replaced by arena scratch instead of the engine buffer.
    """
    engine = stepper.engine
    records, cert, lint = admit_stream(stepper, workload=workload)
    label = workload or f"live-{engine.mgrid.d}d-{stepper.num_levels}lvl"

    dropped: tuple[str, ...] = ()
    if drop_proven:
        # ``fghost`` rows live in the tail of the fstar allocation; only
        # a whole-buffer fstar drop replaces physical storage.
        dropped = tuple(f.field for f in lint.opportunities
                        if f.check == "droppable-buffer"
                        and f.field.startswith("fstar@"))

    builder = _PlanBuilder(engine, stepper.config, records, dropped)
    bodies, lifetimes, arena_bytes = builder.build()
    return StepPlan(records, bodies, digest=cert["stream_digest"],
                    certificate=cert, arena=lifetimes,
                    arena_bytes=arena_bytes, dropped=dropped,
                    label=f"{stepper.config.name}/{label}")


class _Level:
    """Pre-resolved views and index maps of one level's buffers.

    Index maps flatten 2-D ``(q, row)`` addressing into precomputed 1-D
    indices over the contiguous ``(Q, n_used)`` buffers, so every kernel
    body is a single gather/scatter instead of a per-``q`` loop.  Built
    lazily: a plan only pays for the maps its stream uses.
    """

    def __init__(self, engine: Any, lv: int,
                 fstar_store: np.ndarray | None) -> None:
        buf = engine.levels[lv]
        self.buf = buf
        self.Q = engine.lat.q
        self.n = buf.n_owned
        self.n_used = buf.n_used
        self.ng = buf.ghost_acc.shape[1]
        # row offset of population q in the flattened (Q, n_used) buffer
        self.qoff = (np.arange(self.Q, dtype=np.int64) * self.n_used)[:, None]
        self.f_flat = buf.f.reshape(-1)
        self.f_view = buf.f[:, :self.n]
        #: The array standing in for ``fstar``: the engine buffer, or an
        #: arena slab when the double buffer was proven droppable.
        self.fstar = fstar_store if fstar_store is not None else buf.fstar
        self.fstar_flat = self.fstar.reshape(-1)
        self.fstar_view = self.fstar[:, :self.n]
        self.gacc = buf.ghost_acc
        self.gacc_flat = buf.ghost_acc.reshape(-1)
        self._maps: dict[str, Any] = {}

    def map(self, key: str, make: Callable[[], Any]) -> Any:
        got = self._maps.get(key)
        if got is None:
            got = make()
            self._maps[key] = got
        return got

    def pull_flat(self) -> np.ndarray:
        return self.map("pull", lambda: np.ascontiguousarray(
            (self.qoff + self.buf.pull_rows).reshape(-1)))

    def patches(self) -> tuple:
        """Boundary-patch scatter maps, in interpreted apply order."""
        def make() -> tuple:
            b = self.buf
            nu = self.n_used
            bb = ((b.bb_q * nu + b.bb_cell, b.bb_opp * nu + b.bb_cell)
                  if b.bb_q.size else None)
            mov = ((b.mov_q * nu + b.mov_cell, b.mov_opp * nu + b.mov_cell,
                    b.mov_term) if b.mov_q.size else None)
            out = ((b.out_q * nu + b.out_cell, b.out_val)
                   if b.out_q.size else None)
            sl = ((b.sl_q * nu + b.sl_cell, b.sl_src_q * nu + b.sl_src)
                  if b.sl_q.size else None)
            return bb, mov, out, sl
        return self.map("patches", make)


class _PlanBuilder:
    """Builds the body closures and arena scratch of one step plan."""

    def __init__(self, engine: Any, config: Any,
                 records: list[KernelRecord],
                 dropped: tuple[str, ...]) -> None:
        self.engine = engine
        self.config = config
        self.records = records
        self.itemsize = engine.itemsize
        self.dropped_levels = {int(f.partition("@")[2]) for f in dropped}
        self._levels: dict[int, _Level] = {}
        self._scratch: dict[str, np.ndarray] = {}

    # -- arena ---------------------------------------------------------------
    def _scratch_requests(self) -> list[BufferLifetime]:
        """Scratch the plan needs, as arena lifetime requests.

        AA-dropped double buffers live for the whole step (they are the
        CASE register file between collide and stream); the fine-ghost
        stream gather staging is live for exactly its own record, so the
        arena can fold every staging buffer onto one slab.
        """
        reqs: list[BufferLifetime] = []
        last = len(self.records) - 1
        Q = self.engine.lat.q
        for lv in sorted(self.dropped_levels):
            buf = self.engine.levels[lv]
            reqs.append(BufferLifetime(
                name=f"plan:fstar@{lv}",
                nbytes=Q * buf.n_used * self.itemsize, first=0, last=last))
        for i, rec in enumerate(self.records):
            if rec.name in _STREAM_NAMES:
                buf = self.engine.levels[rec.level]
                if buf.n_owned < buf.n_used:
                    reqs.append(BufferLifetime(
                        name=f"plan:stream@{rec.level}#{i}",
                        nbytes=Q * buf.n_owned * self.itemsize,
                        first=i, last=i))
        return reqs

    def _allocate(self) -> tuple[list[BufferLifetime], int]:
        lifetimes = arena_assign(self._scratch_requests())
        problems = arena_check(lifetimes)
        if problems:
            raise PlanAdmissionError(
                [f"plan arena: {p}" for p in problems])
        slab_nbytes: dict[int, int] = {}
        for lt in lifetimes:
            slab_nbytes[lt.slab] = max(slab_nbytes.get(lt.slab, 0), lt.nbytes)
        dtype = self.engine.dtype
        slabs = {s: np.empty(-(-nb // self.itemsize), dtype=dtype)
                 for s, nb in slab_nbytes.items()}
        for lt in lifetimes:
            self._scratch[lt.name] = slabs[lt.slab][:lt.nbytes // self.itemsize]
        return lifetimes, arena_peak_bytes(lifetimes)

    def _level(self, lv: int) -> _Level:
        L = self._levels.get(lv)
        if L is None:
            store = None
            if lv in self.dropped_levels:
                buf = self.engine.levels[lv]
                store = self._scratch[f"plan:fstar@{lv}"].reshape(
                    self.engine.lat.q, buf.n_used)
            L = _Level(self.engine, lv, store)
            self._levels[lv] = L
        return L

    # -- kernel-body builders ------------------------------------------------
    # Each builder returns a closure reproducing the interpreted body's
    # NumPy operations in the same order on the same operands — the
    # bit-identity contract.  Empty sub-maps compile to no code, exactly
    # like the interpreted bodies' early returns.
    def _make_collide(self, lv: int, with_accumulate: bool) -> KernelBody:
        L = self._level(lv)
        collide = self.engine.collision.collide
        omega = self.engine.omega[lv]
        force = self.engine.force[lv]
        f_view, fstar_view = L.f_view, L.fstar_view
        acc = self._make_accumulate(lv) if with_accumulate else None
        if acc is None:
            def body() -> None:
                collide(f_view, omega, out=fstar_view, force=force)
            return body

        def body_ca() -> None:
            collide(f_view, omega, out=fstar_view, force=force)
            acc()
        return body_ca

    def _make_accumulate(self, fine_lv: int) -> KernelBody | None:
        """Accumulate fine level ``fine_lv`` into its parent's ghosts.

        The per-``q`` ``bincount`` loop folds into one flat ``bincount``
        over ``q``-offset bins: contributions to each bin keep their
        original order, so the float accumulation order — and therefore
        the result — is bitwise identical.
        """
        parent = self.engine.levels[fine_lv - 1]
        if parent.acc_ghost_rows.size == 0:
            return None
        P, F = self._level(fine_lv - 1), self._level(fine_lv)
        rows_flat = np.ascontiguousarray(
            ((np.arange(P.Q, dtype=np.int64) * P.ng)[:, None]
             + parent.acc_ghost_rows).reshape(-1))
        src_flat = np.ascontiguousarray(
            (F.qoff + parent.acc_fine_rows).reshape(-1))
        minlength = P.Q * P.ng
        gacc_flat, fstar_flat = P.gacc_flat, F.fstar_flat
        bincount = np.bincount

        def body() -> None:
            gacc_flat[:] += bincount(rows_flat, weights=fstar_flat[src_flat],
                                     minlength=minlength)
        return body

    def _make_stream(self, i: int, lv: int, *, do_exp: bool, do_coal: bool,
                     from_ghost: bool) -> KernelBody:
        L = self._level(lv)
        take = np.take
        pull_flat = L.pull_flat()
        bb, mov, out, sl = L.patches()
        f_flat, fstar_flat = L.f_flat, L.fstar_flat
        if L.n == L.n_used:
            stage = None
        else:  # gather staged through the arena, then one strided copy
            stage = self._scratch[f"plan:stream@{lv}#{i}"]
        stage2d = stage.reshape(L.Q, L.n) if stage is not None else None
        f_view = L.f_view
        exp = self._make_explode(lv, from_ghost) if do_exp else None
        coal = self._make_coalesce(lv) if do_coal else None

        def body() -> None:
            if stage is None:
                take(fstar_flat, pull_flat, out=f_flat)
            else:
                take(fstar_flat, pull_flat, out=stage)
                f_view[:] = stage2d
            # boundary patches, in the interpreted order: the patch sets
            # may overlap at a (q, cell) and last-write-wins must hold
            if bb is not None:
                f_flat[bb[0]] = fstar_flat[bb[1]]
            if mov is not None:
                f_flat[mov[0]] = fstar_flat[mov[1]] + mov[2]
            if out is not None:
                f_flat[out[0]] = out[1]
            if sl is not None:
                f_flat[sl[0]] = fstar_flat[sl[1]]
            if exp is not None:
                exp()
            if coal is not None:
                coal()
        return body

    def _make_explode(self, lv: int, from_ghost: bool) -> KernelBody | None:
        L = self._level(lv)
        b = L.buf
        if b.exp_q.size == 0:
            return None
        dst = b.exp_q * L.n_used + b.exp_cell
        if from_ghost:
            src = b.exp_q * L.n_used + b.exp_ghost_rows
            src_flat = L.fstar_flat
        else:
            C = self._level(lv - 1)
            src = b.exp_q * C.n_used + b.exp_rows
            src_flat = C.fstar_flat
        f_flat = L.f_flat

        def body() -> None:
            f_flat[dst] = src_flat[src]
        return body

    def _make_coalesce(self, lv: int) -> KernelBody:
        L = self._level(lv)
        b = L.buf
        inv_navg = self.engine.inv_navg
        gacc, gacc_flat, f_flat = L.gacc, L.gacc_flat, L.f_flat
        if b.coal_q.size == 0:
            def reset_only() -> None:
                gacc.fill(0.0)
            return reset_only
        dst = b.coal_q * L.n_used + b.coal_cell
        src = b.coal_q * L.ng + b.coal_src

        def body() -> None:
            f_flat[dst] = gacc_flat[src] * inv_navg
            gacc.fill(0.0)
        return body

    def _make_explosion_copy(self, lv: int) -> KernelBody:
        """Original baseline's Explosion: coarse f* into fine-ghost rows."""
        L, C = self._level(lv), self._level(lv - 1)
        b = L.buf
        dst = np.ascontiguousarray((L.qoff + b.fg_rows).reshape(-1))
        src = np.ascontiguousarray((C.qoff + b.fg_coarse_rows).reshape(-1))
        fstar_flat, coarse_flat = L.fstar_flat, C.fstar_flat

        def body() -> None:
            fstar_flat[dst] = coarse_flat[src]
        return body

    def _make_case(self, i: int, lv: int) -> KernelBody:
        """The fully fused CASE substep as one pre-bound closure."""
        collide = self._make_collide(lv, with_accumulate=False)
        acc = self._make_accumulate(lv) if lv > 0 else None
        stream = self._make_stream(i, lv, do_exp=False, do_coal=False,
                                   from_ghost=False)
        exp = self._make_explode(lv, from_ghost=False) if lv > 0 else None

        def body() -> None:
            collide()
            if acc is not None:
                acc()
            stream()
            if exp is not None:
                exp()
        return body

    # -- dispatch ------------------------------------------------------------
    def build(self) -> tuple[list[KernelBody], list[BufferLifetime], int]:
        """Compile every record of the captured stream to a body closure."""
        lifetimes, arena_bytes = self._allocate()
        original = bool(self.config.original_layout)
        bodies: list[KernelBody] = []
        for i, rec in enumerate(self.records):
            lv, name = rec.level, rec.name
            body: KernelBody | None
            if name in ("C", "CA"):
                body = self._make_collide(lv, with_accumulate=(name == "CA"))
            elif name == "A":
                body = self._make_accumulate(lv)
            elif name == "E" and any(w.name == "fghost" for w in rec.writes):
                body = self._make_explosion_copy(lv)
            elif name == "E":
                body = self._make_explode(lv, from_ghost=original)
            elif name in ("S", "SE", "SO", "SEO"):
                body = self._make_stream(
                    i, lv, do_exp=name in ("SE", "SEO"),
                    do_coal=name in ("SO", "SEO"), from_ghost=original)
            elif name == "O":
                body = self._make_coalesce(lv)
            elif name == "CASE":
                body = self._make_case(i, lv)
            else:
                raise PlanAdmissionError(
                    [f"no compiled body for kernel {name!r} "
                     f"(record #{i}, level {lv})"])
            if body is None:
                raise PlanAdmissionError(
                    [f"kernel {name!r} (record #{i}, level {lv}) declares "
                     f"work but compiles to an empty body"])
            bodies.append(body)
        return bodies, lifetimes, arena_bytes

"""Process-parallel step-plan backend: escaping the GIL with shared memory.

The threaded :class:`~repro.neon.executor.WaveExecutor` runs dependency
waves concurrently, but every NumPy kernel body still contends for one
interpreter lock whenever it touches Python between array ops.  This
backend moves wave execution into *processes*: every level's population
buffers live in a :mod:`multiprocessing.shared_memory` segment, a
persistent pool of spawn-based workers rebuilds the same engine geometry
against those segments, and each admitted step plan is partitioned into
per-worker kernel shards replayed wave-by-wave with a process barrier
between waves.

Bit-identity is inherited, not re-derived:

* workers build their kernel bodies with the same
  :class:`~repro.backend.compiler._PlanBuilder` the compiled backend
  uses, over the same captured stream (digest-checked against the
  parent's admission certificate), on the same shared buffers;
* the only mp-specific body is the column shard of a pure collide
  kernel — collision is a per-cell operator, so a column slice computes
  exactly the values the whole-buffer call would;
* kernels with order-sensitive float accumulation (the Accumulate
  ``bincount`` scatter, and every fused kernel containing it) are never
  split across workers.

Load balance comes from the GPU cost model: each wave's kernels are
priced with :func:`~repro.gpu.costmodel.kernel_time_us` and placed by
greedy LPT, with idle workers absorbing column shards of the most
expensive splittable kernels.

The error contract matches the other backends: a mid-step failure (or a
worker death, detected via process sentinels) surfaces as
:class:`MpWorkerError` carrying the runtime's ``kernel_span`` payload,
the partial step is closed with
:meth:`~repro.neon.runtime.Runtime.abort_step`, the pool is torn down
and respawned lazily — and the resilience ladder can step the run down
to the threaded executor (see :mod:`repro.resilience.runner`).
"""

from __future__ import annotations

import os
import pickle
import traceback
import weakref
from threading import BrokenBarrierError
from time import perf_counter
from typing import TYPE_CHECKING, Any

import numpy as np

from ..analysis.certificate import stream_digest
from ..gpu.costmodel import kernel_time_us
from ..gpu.device import A100_40GB
from ..neon.graph import schedule_records
from .compiler import admit_stream
from .interpreted import InterpretedBackend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.stepper import NonUniformStepper

__all__ = ["MultiprocessBackend", "MpWorkerError", "default_mp_workers"]

#: Environment variable fixing the worker count (``SimConfig.mp_workers``
#: wins when set).
WORKERS_ENV = "REPRO_MP_WORKERS"
#: Environment variable overriding the per-wave barrier timeout (seconds).
TIMEOUT_ENV = "REPRO_MP_TIMEOUT"
#: Default per-wave barrier / reply timeout in seconds.
DEFAULT_TIMEOUT = 60.0
#: Owned-cell count below which a collide kernel is not worth splitting
#: (the per-shard dispatch overhead would exceed the saved work).
MIN_SHARD_CELLS = 2048

#: Buffer fields of one :class:`~repro.core.engine.LevelBuffers` that
#: carry mutable simulation state and therefore live in shared memory.
_SHARED_FIELDS = ("f", "fstar", "ghost_acc")


def default_mp_workers() -> int:
    """Worker count: ``$REPRO_MP_WORKERS`` or a small core-count default."""
    env = os.environ.get(WORKERS_ENV, "").strip()
    if env:
        return max(1, int(env))
    return max(2, min(4, os.cpu_count() or 1))


class MpWorkerError(RuntimeError):
    """A worker process failed or died while replaying a step plan.

    Carries the runtime's shared ``kernel_span`` error contract, so the
    resilience runner treats it like any other kernel-body failure:
    roll back, retry, and eventually step down the degradation ladder
    (mp -> threaded -> serial).
    """

    def __init__(self, message: str, *, worker: int | None = None,
                 span: dict | None = None) -> None:
        super().__init__(message)
        self.worker = worker
        self.kernel_span = span if span is not None else {
            "index": -1, "name": "?", "level": -1, "n_cells": 0,
            "start": 0.0, "dur_us": 0.0}


# -- plan partitioning ---------------------------------------------------------

def _partition(records, waves, n_workers,
               device=A100_40GB) -> list[list[list[tuple[int, int, int]]]]:
    """Assign every wave's kernels (or shards of them) to workers.

    Returns ``assignment[worker][wave] = [(record_index, lo, hi), ...]``
    with ``lo == hi == -1`` for a whole kernel and an owned-cell column
    range for a collide shard.  Per wave: each splittable pure-collide
    kernel may be cut into column shards to occupy otherwise-idle
    workers, then all items are placed by greedy LPT using the cost
    model as the pricing oracle.
    """
    assignment: list[list[list[tuple[int, int, int]]]] = [
        [[] for _ in waves] for _ in range(n_workers)]
    for w, wave in enumerate(waves):
        costs = {i: kernel_time_us(records[i], device).time_us for i in wave}
        shares = {i: 1 for i in wave}
        extra = n_workers - len(wave)
        if extra > 0:
            splittable = sorted(
                (i for i in wave if records[i].name == "C"
                 and records[i].n_cells >= MIN_SHARD_CELLS),
                key=lambda i: -costs[i])
            k = 0
            while extra > 0 and splittable:
                shares[splittable[k % len(splittable)]] += 1
                extra -= 1
                k += 1
        items: list[tuple[float, int, int, int]] = []
        for i in wave:
            rec = records[i]
            if shares[i] == 1:
                items.append((costs[i], i, -1, -1))
                continue
            bounds = np.linspace(0, rec.n_cells, shares[i] + 1).astype(int)
            for lo, hi in zip(bounds[:-1], bounds[1:]):
                if hi > lo:
                    items.append((costs[i] * (hi - lo) / rec.n_cells,
                                  i, int(lo), int(hi)))
        items.sort(key=lambda it: -it[0])
        loads = [0.0] * n_workers
        for cost, i, lo, hi in items:
            tgt = min(range(n_workers), key=loads.__getitem__)
            loads[tgt] += cost
            assignment[tgt][w].append((i, lo, hi))
    return assignment


class _MpPlan:
    """Parent-side handle of one admitted, partitioned step plan."""

    __slots__ = ("plan_id", "records", "digest", "n_waves", "assignment",
                 "certificate", "pool_gen", "replays")

    def __init__(self, plan_id: int, records, digest: str, n_waves: int,
                 assignment, certificate: dict) -> None:
        self.plan_id = plan_id
        self.records = tuple(records)
        self.digest = digest
        self.n_waves = n_waves
        self.assignment = assignment
        self.certificate = certificate
        self.pool_gen = -1   # pool generation the plan was distributed to
        self.replays = 0


# -- worker process ------------------------------------------------------------

def _attach_shared(levels, shm, manifest, dtype) -> None:
    """Swap each level's state buffers to views over the shared segment."""
    for lv, fname, shape, off in manifest:
        buf = levels[lv]
        cur = getattr(buf, fname)
        if cur.shape != tuple(shape):
            raise ValueError(
                f"shared-memory manifest mismatch: {fname}@{lv} is "
                f"{cur.shape}, manifest says {tuple(shape)}")
        setattr(buf, fname, np.ndarray(shape, dtype=dtype,
                                       buffer=shm.buf, offset=off))


def _shard_collide(engine, rec, lo: int, hi: int):
    """Body computing columns ``[lo, hi)`` of one pure collide kernel.

    Collision is per-cell, so the slice is bitwise identical to the same
    columns of the whole-buffer call the interpreted path makes.
    """
    buf = engine.levels[rec.level]
    collide = engine.collision.collide
    omega = engine.omega[rec.level]
    force = engine.force[rec.level]
    f = buf.f[:, lo:hi]
    out = buf.fstar[:, lo:hi]

    def body() -> None:
        collide(f, omega, out=out, force=force)
    return body


def _build_shards(engine, records, bodies, waves_assignment):
    """Resolve one worker's wave assignment to executable (idx, body, rec)."""
    out = []
    for wave_items in waves_assignment:
        row = []
        for idx, lo, hi in wave_items:
            rec = records[idx]
            body = bodies[idx] if lo < 0 else _shard_collide(engine, rec,
                                                             lo, hi)
            row.append((idx, body, rec))
        out.append(row)
    return out


def _worker_main(worker_id: int, blob: bytes, conn, barrier,
                 timeout: float) -> None:
    """Entry point of one spawned worker (module-level: spawn pickles by
    reference, so this must stay importable as ``repro.backend.mp``)."""
    try:
        from multiprocessing import shared_memory

        from ..core.engine import Engine
        from ..core.stepper import NonUniformStepper

        setup = pickle.loads(blob)
        # Attaching re-registers the segment with the resource tracker
        # (bpo-39959).  Spawned children share the parent's tracker and
        # its cache is a set, so the duplicate registration is a no-op
        # and the parent's unlink clears the single entry; unregistering
        # here would instead strip the parent's own registration.
        shm = shared_memory.SharedMemory(name=setup["shm"])
        engine = Engine(setup["mgrid"], setup["collision"], omega0=1.0,
                        dtype=setup["dtype"])
        engine._link_levels()
        _attach_shared(engine.levels, shm, setup["manifest"], engine.dtype)
        stepper = NonUniformStepper(engine, setup["fusion"])
        plans: dict[int, tuple[int, list]] = {}
        conn.send(("ready", worker_id, None))
        while True:
            msg = conn.recv()
            kind = msg[0]
            if kind == "exit":
                break
            if kind == "plan":
                _, plan_id, payload = msg
                try:
                    engine.omega = list(payload["omega"])
                    engine.force = [None if fv is None else np.asarray(fv)
                                    for fv in payload["force"]]
                    records = engine.rt.capture_plan(
                        lambda: stepper._advance(0))
                    mine = stream_digest(records)
                    if mine != payload["digest"]:
                        conn.send(("plan-err", plan_id,
                                   ("digest", f"worker stream digest {mine} "
                                    f"!= parent {payload['digest']}")))
                        continue
                    from .compiler import _PlanBuilder
                    bodies, _, _ = _PlanBuilder(
                        engine, stepper.config, records, ()).build()
                    plans[plan_id] = (payload["n_waves"], _build_shards(
                        engine, records, bodies, payload["waves"]))
                    conn.send(("plan-ok", plan_id, None))
                except Exception:
                    conn.send(("plan-err", plan_id,
                               ("build", traceback.format_exc())))
            elif kind == "step":
                _, plan_id, _payload = msg
                n_waves, shards = plans[plan_id]
                err = None
                busy = 0.0
                times: list[tuple[int, float, float]] = []
                for w in range(n_waves):
                    try:
                        for idx, body, rec in shards[w]:
                            t0 = perf_counter()
                            body()
                            dt = perf_counter() - t0
                            busy += dt
                            times.append((idx, t0, dt * 1e6))
                    except BaseException as exc:
                        barrier.abort()
                        err = {"index": idx, "name": rec.name,
                               "level": rec.level, "n_cells": rec.n_cells,
                               "error": f"{type(exc).__name__}: {exc}"}
                        break
                    try:
                        barrier.wait(timeout)
                    except BrokenBarrierError:
                        err = {"index": None,
                               "error": "wave barrier broken by a peer"}
                        break
                if err is None:
                    conn.send(("done", plan_id,
                               {"busy_ms": busy * 1e3,
                                "kernels": len(times), "times": times}))
                else:
                    conn.send(("err", plan_id, err))
    except (EOFError, OSError, KeyboardInterrupt):  # parent went away
        pass
    except BaseException:
        try:
            conn.send(("fatal", -1, traceback.format_exc()))
        except Exception:
            pass


# -- parent-side cleanup helpers (module-level: weakref finalizers must
# not retain the backend instance) --------------------------------------------

def _shutdown_procs(procs, conns) -> None:
    for c in conns:
        try:
            c.send(("exit", None, None))
        except (OSError, ValueError, BrokenPipeError):
            pass
    for p in procs:
        p.join(timeout=2.0)
    for p in procs:
        if p.is_alive():
            p.terminate()
            p.join(timeout=2.0)
    for c in conns:
        try:
            c.close()
        except OSError:
            pass


def _release_shm(shm) -> None:
    try:
        shm.close()
    except BufferError:  # a stray view is still alive; unlink regardless
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        pass


class MultiprocessBackend:
    """Process-parallel replay of admitted step plans over shared memory.

    Lifecycle: the first executed step builds the shared-memory arena
    (swapping the engine's level buffers to views over it — restores and
    interpreted fallback steps keep working in place), spawns the worker
    pool and distributes the admitted plan; later steps of the same
    shape replay with one round of pipe messages and one process barrier
    per wave.  ``close()`` (called by ``Simulation.close``) stops the
    pool, copies the state back into private arrays and unlinks the
    segment.

    Runtime hooks that must observe or intercept individual launches
    (tracer, fault injector, deferred thread executor, plan-only mode)
    fall back to the interpreted reference path — counted, never silent.
    Span recorders keep working: workers report per-kernel wall times
    (``perf_counter`` is CLOCK_MONOTONIC, comparable across processes on
    one host) and the parent republishes them through ``on_launch``.
    """

    name = "mp"

    def __init__(self, workers: int | None = None) -> None:
        from multiprocessing import get_context
        self.workers = int(workers) if workers else default_mp_workers()
        self._ctx = get_context("spawn")
        self._fallback = InterpretedBackend()
        self._procs: list = []
        self._conns: list = []
        self._barrier = None
        self._shm = None
        self._manifest: list | None = None
        self._engine = None
        self._plans: dict[tuple, _MpPlan] = {}
        self._next_plan_id = 0
        self._pool_gen = 0
        self._ever_ready = False
        self._disabled: str | None = None
        self._timeout = DEFAULT_TIMEOUT
        self._proc_finalizer = None
        self._shm_finalizer = None
        #: Counters surfaced through ``repro.obs.metrics.run_metrics``.
        self.stats: dict[str, float] = {
            "plan_cache_hits": 0,
            "plan_cache_misses": 0,
            "plan_fallback_steps": 0,
            "plan_compile_seconds": 0.0,
            "mp_workers": 0,
            "mp_steps": 0,
            "mp_step_wall_ms": 0.0,
            "mp_worker_busy_ms": 0.0,
            "mp_shard_imbalance": 0.0,
            "mp_ipc_overhead_ms": 0.0,
            "mp_setup_seconds": 0.0,
            "mp_worker_restarts": 0,
        }

    # -- configuration seam ----------------------------------------------------
    def configure(self, config) -> None:
        """Apply ``SimConfig`` knobs (called by ``Simulation._build``)."""
        mp_workers = getattr(config, "mp_workers", None)
        if mp_workers:
            self.workers = int(mp_workers)

    # -- step ------------------------------------------------------------------
    def _must_fall_back(self, stepper: "NonUniformStepper") -> bool:
        """True when a runtime hook needs to see individual launches."""
        rt = stepper.engine.rt
        return (rt.plan_only or rt.tracer is not None
                or rt.faults is not None or rt.executor is not None)

    def step(self, stepper: "NonUniformStepper") -> None:
        """Advance one coarse step on the worker pool (or counted fallback)."""
        rt = stepper.engine.rt
        if self._disabled is not None or self._must_fall_back(stepper):
            self.stats["plan_fallback_steps"] += 1
            self._fallback.step(stepper)
            return
        try:
            self._ensure_pool(stepper)
        except Exception as exc:
            if self._ever_ready:
                raise  # a previously-working pool failed to respawn
            # The environment cannot host the pool at all (no /dev/shm,
            # unpicklable setup, spawn refused): permanent counted
            # fallback rather than paying the failure every step.
            self._disable(f"{type(exc).__name__}: {exc}")
            self.stats["plan_fallback_steps"] += 1
            self._fallback.step(stepper)
            return
        plan = self._obtain_plan(stepper)
        try:
            self._replay(stepper, plan)
            rt.step_marker()
        except BaseException:
            rt.abort_step()
            raise
        stepper.steps_done += 1

    def _disable(self, reason: str) -> None:
        self._disabled = reason
        self._teardown_pool()
        self.stats["mp_workers"] = 0

    # -- shared-memory arena ---------------------------------------------------
    def _build_arena(self, engine) -> None:
        from multiprocessing import shared_memory
        total = sum(getattr(buf, f).nbytes
                    for buf in engine.levels for f in _SHARED_FIELDS)
        shm = shared_memory.SharedMemory(create=True, size=max(1, total))
        manifest: list[tuple[int, str, tuple, int]] = []
        off = 0
        for lv, buf in enumerate(engine.levels):
            for fname in _SHARED_FIELDS:
                arr = getattr(buf, fname)
                view = np.ndarray(arr.shape, dtype=arr.dtype,
                                  buffer=shm.buf, offset=off)
                view[:] = arr
                setattr(buf, fname, view)
                manifest.append((lv, fname, arr.shape, off))
                off += arr.nbytes
        self._shm = shm
        self._manifest = manifest
        self._engine = engine
        self._shm_finalizer = weakref.finalize(self, _release_shm, shm)

    def _close_arena(self) -> None:
        if self._shm is None:
            return
        if self._engine is not None:
            # Swap private copies back in so the simulation stays usable
            # after close() and no view pins the segment open.
            for lv, fname, _shape, _off in self._manifest:
                buf = self._engine.levels[lv]
                setattr(buf, fname, np.array(getattr(buf, fname)))
        if self._shm_finalizer is not None:
            self._shm_finalizer.detach()
            self._shm_finalizer = None
        _release_shm(self._shm)
        self._shm = None
        self._manifest = None
        self._engine = None

    # -- pool lifecycle --------------------------------------------------------
    def _ensure_pool(self, stepper: "NonUniformStepper") -> None:
        engine = stepper.engine
        if self._engine is not None and self._engine is not engine:
            # The backend was handed a different simulation: rebind.
            self._teardown_pool()
            self._close_arena()
            self._plans.clear()
        if self._shm is None:
            self._build_arena(engine)
        if not self._procs:
            self._spawn(stepper)

    def _spawn(self, stepper: "NonUniformStepper") -> None:
        t0 = perf_counter()
        engine = stepper.engine
        blob = pickle.dumps({
            "mgrid": engine.mgrid,
            "collision": engine.collision,
            "dtype": engine.dtype,
            "fusion": stepper.config,
            "shm": self._shm.name,
            "manifest": self._manifest,
        })
        self._timeout = float(os.environ.get(TIMEOUT_ENV, "").strip()
                              or DEFAULT_TIMEOUT)
        self._barrier = self._ctx.Barrier(self.workers)
        procs, conns = [], []
        try:
            for i in range(self.workers):
                parent_conn, child_conn = self._ctx.Pipe()
                p = self._ctx.Process(
                    target=_worker_main, name=f"repro-mp-{i}",
                    args=(i, blob, child_conn, self._barrier, self._timeout),
                    daemon=True)
                p.start()
                child_conn.close()
                procs.append(p)
                conns.append(parent_conn)
        except BaseException:
            _shutdown_procs(procs, conns)
            raise
        self._procs, self._conns = procs, conns
        self._pool_gen += 1
        self._proc_finalizer = weakref.finalize(
            self, _shutdown_procs, list(procs), list(conns))
        self._collect()  # ready handshakes (raises on a dead worker)
        self._ever_ready = True
        self.stats["mp_setup_seconds"] += perf_counter() - t0
        self.stats["mp_workers"] = self.workers

    def _teardown_pool(self) -> None:
        if self._proc_finalizer is not None:
            self._proc_finalizer.detach()
            self._proc_finalizer = None
        if self._procs or self._conns:
            _shutdown_procs(self._procs, self._conns)
        self._procs, self._conns, self._barrier = [], [], None

    def _restart(self, rt) -> None:
        """Tear the pool down after a step failure; respawn lazily."""
        self._teardown_pool()
        self.stats["mp_worker_restarts"] += 1
        self._emit(rt, "mp_restart", restarts=self.stats["mp_worker_restarts"])

    def close(self) -> None:
        """Stop the pool, copy state out of shared memory, unlink it."""
        self._teardown_pool()
        self._close_arena()
        self._plans.clear()

    # -- plan admission / distribution ----------------------------------------
    def _plan_key(self, stepper: "NonUniformStepper") -> tuple:
        # No state_epoch: checkpoint restores write the shared buffers in
        # place, so a distributed plan's worker bindings stay valid.
        engine = stepper.engine
        force_key = tuple(None if fv is None else tuple(float(c) for c in fv)
                          for fv in engine.force)
        return (stepper.config, tuple(engine.omega), force_key)

    def _obtain_plan(self, stepper: "NonUniformStepper") -> _MpPlan:
        key = self._plan_key(stepper)
        plan = self._plans.get(key)
        if plan is None:
            t0 = perf_counter()
            records, cert, _lint = admit_stream(stepper)
            waves = schedule_records(records)
            assignment = _partition(records, waves, self.workers)
            plan = _MpPlan(self._next_plan_id, records,
                           cert["stream_digest"], len(waves), assignment,
                           cert)
            self._next_plan_id += 1
            dt = perf_counter() - t0
            self.stats["plan_cache_misses"] += 1
            self.stats["plan_compile_seconds"] += dt
            self._plans[key] = plan
            self._emit(stepper.engine.rt, "mp_plan",
                       label=f"{stepper.config.name}", digest=plan.digest,
                       kernels=len(records), waves=plan.n_waves,
                       workers=self.workers, seconds=dt)
        else:
            self.stats["plan_cache_hits"] += 1
        if plan.pool_gen != self._pool_gen:
            self._distribute(stepper, plan)
        return plan

    def _distribute(self, stepper: "NonUniformStepper", plan: _MpPlan) -> None:
        engine = stepper.engine
        omega = [float(o) for o in engine.omega]
        force = [None if fv is None else np.asarray(fv)
                 for fv in engine.force]
        for i in range(len(self._conns)):
            self._send(i, ("plan", plan.plan_id, {
                "omega": omega, "force": force, "digest": plan.digest,
                "n_waves": plan.n_waves, "waves": plan.assignment[i]}))
        replies = self._collect()
        for i, (kind, _pid, payload) in enumerate(replies):
            if kind != "plan-err":
                continue
            why, detail = payload
            self._restart(engine.rt)
            if why == "digest":
                from .base import PlanAdmissionError
                raise PlanAdmissionError(
                    [f"worker {i} rejected plan {plan.plan_id}: {detail}"])
            raise MpWorkerError(
                f"worker {i} failed to build plan {plan.plan_id}: {detail}",
                worker=i)
        plan.pool_gen = self._pool_gen

    # -- replay ----------------------------------------------------------------
    def _replay(self, stepper: "NonUniformStepper", plan: _MpPlan) -> None:
        rt = stepper.engine.rt
        t_step = perf_counter()
        for i in range(len(self._conns)):
            self._send(i, ("step", plan.plan_id, None))
        replies = self._collect()
        wall_ms = (perf_counter() - t_step) * 1e3
        errs = [(i, payload) for i, (kind, _pid, payload)
                in enumerate(replies) if kind == "err"]
        if errs:
            self._fail(rt, plan, errs)
        plan.replays += 1
        self._account(wall_ms, [payload for _k, _p, payload in replies])
        self._publish(rt, plan, [payload for _k, _p, payload in replies],
                      t_step)

    def _fail(self, rt, plan: _MpPlan, errs) -> None:
        real = [(i, e) for i, e in errs if e.get("index") is not None]
        if real:
            worker, e = min(real, key=lambda it: it[1]["index"])
            idx = e["index"]
            # Waves before the failing one completed on every worker;
            # keep their records, like the serial drain and plan replay.
            rt.records.extend(plan.records[:idx])
            span = {"index": len(rt.records), "name": e["name"],
                    "level": e["level"], "n_cells": e["n_cells"],
                    "start": 0.0, "dur_us": 0.0}
            message = (f"worker {worker} failed in kernel {e['name']} "
                       f"(level {e['level']}): {e['error']}")
        else:
            worker, e = errs[0]
            span = {"index": len(rt.records), "name": "?", "level": -1,
                    "n_cells": 0, "start": 0.0, "dur_us": 0.0}
            message = f"worker {worker}: {e['error']}"
        self._restart(rt)
        raise MpWorkerError(message, worker=worker, span=span)

    def _account(self, wall_ms: float, stats_list) -> None:
        busy = [st["busy_ms"] for st in stats_list]
        total_busy = sum(busy)
        self.stats["mp_steps"] += 1
        self.stats["mp_step_wall_ms"] += wall_ms
        self.stats["mp_worker_busy_ms"] += total_busy
        mean = total_busy / len(busy) if busy else 0.0
        if mean > 0:
            self.stats["mp_shard_imbalance"] = max(
                self.stats["mp_shard_imbalance"], max(busy) / mean)
        if busy:
            self.stats["mp_ipc_overhead_ms"] += max(0.0, wall_ms - max(busy))

    def _publish(self, rt, plan: _MpPlan, stats_list, t_step: float) -> None:
        """Append the plan's records (span-aware, like plan replay)."""
        spans = rt.spans
        if spans is None:
            rt.records.extend(plan.records)
            return
        merged: dict[int, tuple[float, float]] = {}
        for st in stats_list:
            for idx, t0, dur_us in st["times"]:
                end = t0 + dur_us / 1e6
                got = merged.get(idx)
                merged[idx] = (t0, end) if got is None else (
                    min(got[0], t0), max(got[1], end))
        base = len(rt.records)
        for i, rec in enumerate(plan.records):
            t0, end = merged.get(i, (t_step, t_step))
            rt.records.append(rec)
            spans.on_launch(base + i, rec, t0, max(0.0, end - t0))

    # -- pool I/O --------------------------------------------------------------
    def _send(self, i: int, message: tuple) -> None:
        """Send to worker ``i``; a broken pipe is a worker death."""
        try:
            self._conns[i].send(message)
        except (BrokenPipeError, OSError):
            self._death(i, f"worker {i} died before receiving "
                        f"{message[0]!r} (exit code "
                        f"{self._procs[i].exitcode})")

    def _collect(self) -> list[tuple]:
        """One reply per worker; death/timeout becomes :class:`MpWorkerError`.

        Waits on the pipe connections *and* the process sentinels, so a
        killed worker is detected immediately instead of at the peers'
        barrier timeout.
        """
        from multiprocessing import connection
        conn_of = {c: i for i, c in enumerate(self._conns)}
        sent_of = {p.sentinel: i for i, p in enumerate(self._procs)}
        replies: list = [None] * len(self._conns)
        deadline = perf_counter() + self._timeout + 30.0
        while any(r is None for r in replies):
            pend_conns = [c for c, i in conn_of.items() if replies[i] is None]
            pend_sents = [s for s, i in sent_of.items() if replies[i] is None]
            remain = deadline - perf_counter()
            if remain <= 0:
                self._death(None, "timed out waiting for worker replies")
            ready = connection.wait(pend_conns + pend_sents, timeout=remain)
            if not ready:
                self._death(None, "timed out waiting for worker replies")
            for obj in ready:
                if obj in conn_of:
                    i = conn_of[obj]
                    try:
                        reply = obj.recv()
                    except (EOFError, OSError):
                        self._death(i, f"worker {i} closed its pipe "
                                    f"mid-step")
                    if reply[0] == "fatal":
                        rt = self._engine.rt if self._engine else None
                        self._teardown_pool()
                        if rt is not None:
                            self.stats["mp_worker_restarts"] += 1
                        raise MpWorkerError(
                            f"worker {i} hit a fatal error:\n{reply[2]}",
                            worker=i)
                    replies[i] = reply
                elif obj in sent_of:
                    i = sent_of[obj]
                    if replies[i] is None:
                        code = self._procs[i].exitcode
                        self._death(i, f"worker {i} died (exit code {code})")
        return replies

    def _death(self, worker: int | None, message: str) -> None:
        rt = self._engine.rt if self._engine is not None else None
        if rt is not None:
            self._restart(rt)
        else:  # pragma: no cover - death before the arena ever bound
            self._teardown_pool()
        span = {"index": -1, "name": "?", "level": -1, "n_cells": 0,
                "start": 0.0, "dur_us": 0.0}
        raise MpWorkerError(message, worker=worker, span=span)

    # -- telemetry -------------------------------------------------------------
    @staticmethod
    def _emit(rt, event: str, **kw) -> None:
        on_event = getattr(rt.spans, "on_event", None) \
            if rt.spans is not None else None
        if on_event is not None:
            on_event(event, **kw)

"""Entry point: ``python -m repro.analysis`` (deprecated alias).

Kept as a thin shim; the front door is ``python -m repro analysis``.
"""

import sys

from .cli import main

print("note: 'python -m repro.analysis' is deprecated; use "
      "'python -m repro analysis'", file=sys.stderr)
raise SystemExit(main())

"""Machine-readable step-plan certificates.

A certificate is the static analyzer's output frozen as JSON: the
declaration stream, its symbolic access sets, the wave schedule a
dependency-driven runtime would issue, the fusion-legality verdict and
the lint findings — everything a compiled backend needs to *admit* a
step plan without re-deriving the analysis (ROADMAP: "compiled step
plans" behind the pluggable backend).

The stream digest binds a certificate to the exact declaration stream it
proves things about: an executor can hash its own records and refuse a
stale certificate.  ``validate_certificate`` re-checks the structural
invariants (digest match, schema version, wave schedule is a permutation
respecting program-order hazards) so a tampered or hand-edited file is
rejected before anything trusts it.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Mapping, Sequence

from ..neon.graph import build_dependency_graph, graph_stats, schedule_waves
from ..neon.runtime import FieldRef, KernelRecord
from .lint import LintReport
from .static import AccessModel, LegalityProof, StaticAccess

__all__ = ["CERTIFICATE_VERSION", "stream_digest", "build_certificate",
           "validate_certificate", "write_certificate", "load_certificate"]

#: Bump on any incompatible change to the certificate layout; consumers
#: must refuse versions they do not know.
CERTIFICATE_VERSION = 1


def stream_digest(records: Sequence[KernelRecord]) -> str:
    """Stable content hash of a declaration stream.

    Covers exactly the declared launch parameters (not accesses — those
    are derived).  Field order inside reads/writes is significant: it is
    part of the declaration.
    """
    h = hashlib.sha256()
    for r in records:
        h.update(repr((r.name, r.level, r.n_cells, r.bytes_read,
                       r.bytes_written, r.atomic_bytes, r.tag,
                       tuple((f.name, f.level) for f in r.reads),
                       tuple((f.name, f.level) for f in r.writes),
                       )).encode())
    return h.hexdigest()


def _ref_json(ref: FieldRef) -> str:
    return f"{ref.name}@{ref.level}"


def _access_json(a: StaticAccess) -> dict[str, Any]:
    out: dict[str, Any] = {
        "field": _ref_json(a.field) if a.field is not None else None,
        "kind": a.kind, "rows": [a.lo, a.hi], "nbytes": a.nbytes,
    }
    if a.entries is not None:
        out["exact_entries"] = len(a.entries)
    return out


def build_certificate(config: str, workload: str,
                      records: Sequence[KernelRecord], model: AccessModel,
                      proof: LegalityProof, lint: LintReport,
                      steps: int) -> dict[str, Any]:
    """Assemble the certificate document for one (config, workload) plan."""
    static_map = model.access_map(records)
    g = build_dependency_graph(list(records), reduce=False,
                               access_map=static_map)
    waves = schedule_waves(g)
    kernels = []
    for i, r in enumerate(records):
        kernels.append({
            "index": i, "name": r.name, "level": r.level,
            "n_cells": r.n_cells, "bytes_read": r.bytes_read,
            "bytes_written": r.bytes_written, "atomic_bytes": r.atomic_bytes,
            "reads": [_ref_json(f) for f in r.reads],
            "writes": [_ref_json(f) for f in r.writes],
            "accesses": [_access_json(a) for a in static_map[i]],
        })
    return {
        "version": CERTIFICATE_VERSION,
        "config": config,
        "workload": workload,
        "steps": steps,
        "stream_digest": stream_digest(records),
        "kernels": kernels,
        "wave_schedule": [list(w) for w in waves],
        "graph": graph_stats(g),
        "legality": {
            "verdict": proof.verdict,
            "baseline": proof.baseline,
            "pairs_checked": proof.pairs_checked,
            "primitives": proof.primitives,
            "counterexamples": [str(c) for c in proof.counterexamples],
        },
        "lint": {
            "errors": len(lint.errors),
            "opportunities": len(lint.opportunities),
            "findings": [{
                "check": f.check, "severity": f.severity, "field": f.field,
                "index": f.index, "kernel": f.kernel,
                "bytes_saved": f.bytes_saved,
                "capacity_saved": f.capacity_saved,
                "time_saved_us": round(f.time_saved_us, 3),
                "detail": f.detail,
            } for f in lint.findings],
        },
        "arena": {
            "peak_bytes": lint.arena_bytes,
            "naive_bytes": lint.naive_bytes,
            "lifetimes": [{
                "name": lt.name, "nbytes": lt.nbytes, "first": lt.first,
                "last": lt.last, "slab": lt.slab,
            } for lt in lint.lifetimes],
        },
    }


def validate_certificate(cert: Mapping[str, Any],
                         records: Sequence[KernelRecord] | None = None,
                         ) -> list[str]:
    """Structural admission checks a consumer runs before trusting a plan.

    Returns problems (empty = admissible).  With ``records``, the digest
    is recomputed against the live stream — the staleness check a
    compiled backend performs at load time.
    """
    problems: list[str] = []
    version = cert.get("version")
    if version != CERTIFICATE_VERSION:
        problems.append(f"unknown certificate version {version!r} "
                        f"(expected {CERTIFICATE_VERSION})")
        return problems
    for key in ("config", "workload", "stream_digest", "kernels",
                "wave_schedule", "legality", "lint"):
        if key not in cert:
            problems.append(f"missing field {key!r}")
    if problems:
        return problems

    kernels = cert["kernels"]
    n = len(kernels)
    waves: list[list[int]] = [list(w) for w in cert["wave_schedule"]]
    flat = [i for w in waves for i in w]
    if sorted(flat) != list(range(n)):
        problems.append("wave schedule is not a permutation of the kernels")
    else:
        # program-order hazards must never be scheduled *backwards*: a
        # kernel may not sit in an earlier wave than a conflicting
        # predecessor.  Same-wave sharing is allowed — the schedule is
        # interval/entry-refined and the race gate proves disjointness.
        wave_of = {i: w for w, wave in enumerate(waves) for i in wave}
        writes: dict[str, list[int]] = {}
        reads: dict[str, list[int]] = {}
        for k in kernels:
            i = k["index"]
            for fld in k["reads"]:
                for j in writes.get(fld, ()):  # RAW
                    if wave_of[i] < wave_of[j]:
                        problems.append(
                            f"wave schedule breaks RAW {fld}: #{j} -> #{i}")
            for fld in k["writes"]:
                for j in reads.get(fld, []) + writes.get(fld, []):
                    if j != i and wave_of[i] < wave_of[j]:
                        problems.append(
                            f"wave schedule breaks hazard on {fld}: "
                            f"#{j} -> #{i}")
            for fld in k["reads"]:
                reads.setdefault(fld, []).append(i)
            for fld in k["writes"]:
                writes.setdefault(fld, []).append(i)
    verdict = cert["legality"].get("verdict")
    if verdict not in ("legal", "illegal", "baseline"):
        problems.append(f"unknown legality verdict {verdict!r}")
    if verdict == "illegal" and not cert["legality"].get("counterexamples"):
        problems.append("illegal verdict without a counterexample")
    if records is not None:
        digest = stream_digest(records)
        if digest != cert["stream_digest"]:
            problems.append("stream digest mismatch: certificate was built "
                            "for a different declaration stream")
    # keep only unique problems, first occurrence wins
    seen: set[str] = set()
    unique: list[str] = []
    for p in problems:
        if p not in seen:
            seen.add(p)
            unique.append(p)
    return unique[:20]


def write_certificate(cert: Mapping[str, Any], path: str | Path) -> Path:
    """Serialise one certificate to ``path`` (parent dirs created)."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(json.dumps(cert, indent=2, sort_keys=False) + "\n")
    return p


def load_certificate(path: str | Path) -> dict[str, Any]:
    """Read a certificate back; raises on malformed JSON."""
    out = json.loads(Path(path).read_text())
    if not isinstance(out, dict):
        raise ValueError(f"{path}: certificate must be a JSON object")
    return out

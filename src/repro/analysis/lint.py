"""Static lint pass over a kernel stream's symbolic access sets.

Consumes the declaration stream and the :class:`~repro.analysis.static.AccessModel`
(never a population value) and reports two severities:

* ``error`` — the step plan is wasteful or unsound as declared and the
  ``--static`` gate fails: **dead stores** (a write fully shadowed by a
  later write with no intervening overlapping read — the classic
  write-write shadowing bug) and **arena aliasing** (two buffers sharing
  an arena slab while both are live, via the lifetime model in
  :mod:`repro.gpu.memory`).
* ``opportunity`` — legal but leaving performance on the table, reported
  with predicted bytes (and µs on the reference device) saved:
  **redundant loads** (the same rows of a field read twice with no
  intervening write — a fusion or caching candidate), **AA-pattern
  double buffering** (a level whose ``f``/``fstar`` ping-pong in-place
  AA streaming (§VI-B) would collapse into one buffer, the cuda_lbm
  71%-of-bandwidth transformation) and **droppable buffers** (allocated
  but never touched by any kernel of the stream — e.g. the finest-level
  ``fstar`` once CASE keeps the post-collision state in registers).

All findings carry machine-readable fields so certificates can embed
them; ``lint_stream`` is pure over its inputs and never executes a body.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..gpu.costmodel import traffic_time_us
from ..gpu.device import DeviceSpec, get_device
from ..gpu.memory import BufferLifetime, arena_assign, arena_check, arena_peak_bytes
from ..neon.graph import _access_overlap
from ..neon.runtime import FieldRef, KernelRecord
from .capture import ATOMIC, META, READ, WRITE
from .static import AccessModel, StaticAccess

__all__ = ["LintFinding", "LintReport", "lint_stream", "build_lifetimes",
           "stream_lifetimes"]


@dataclass(frozen=True)
class LintFinding:
    """One lint diagnostic over a kernel stream."""

    check: str                  # dead-store | arena-alias | redundant-load
                                # | aa-double-buffer | droppable-buffer
    severity: str               # "error" | "opportunity"
    field: str                  # field label ("fstar@1") or buffer name
    index: int                  # record index the finding anchors to (-1: global)
    kernel: str                 # kernel label at that index ("" for global)
    bytes_saved: int            # predicted DRAM traffic eliminated
    capacity_saved: int         # predicted device capacity freed
    time_saved_us: float        # bytes_saved at the device's bandwidth
    detail: str

    def __str__(self) -> str:
        where = f"#{self.index} {self.kernel}" if self.index >= 0 else "stream"
        gain = ""
        if self.bytes_saved or self.capacity_saved:
            parts = []
            if self.bytes_saved:
                parts.append(f"{self.bytes_saved} B traffic, "
                             f"{self.time_saved_us:.2f} us")
            if self.capacity_saved:
                parts.append(f"{self.capacity_saved} B capacity")
            gain = f" [saves {'; '.join(parts)}]"
        return (f"{self.severity}:{self.check} {self.field} at {where}: "
                f"{self.detail}{gain}")


@dataclass(frozen=True)
class LintReport:
    """All findings of one stream, plus the arena model that produced them."""

    findings: tuple[LintFinding, ...]
    lifetimes: tuple[BufferLifetime, ...]
    arena_bytes: int
    naive_bytes: int

    @property
    def errors(self) -> tuple[LintFinding, ...]:
        return tuple(f for f in self.findings if f.severity == "error")

    @property
    def opportunities(self) -> tuple[LintFinding, ...]:
        return tuple(f for f in self.findings if f.severity == "opportunity")


def _label(records: Sequence[KernelRecord], i: int) -> str:
    return f"{records[i].name}{records[i].level}"


def _flat(static_map: Mapping[int, Sequence[StaticAccess]],
          ) -> list[tuple[int, StaticAccess]]:
    """(record index, access) pairs in stream order, meta dropped."""
    out: list[tuple[int, StaticAccess]] = []
    for i in sorted(static_map):
        for a in static_map[i]:
            if a.kind != META and a.field is not None and a.hi > a.lo:
                out.append((i, a))
    return out


# -- individual checks ---------------------------------------------------------

def _dead_stores(records: Sequence[KernelRecord],
                 flat: list[tuple[int, StaticAccess]],
                 device: DeviceSpec) -> list[LintFinding]:
    """Writes fully shadowed by a later write before any overlapping read.

    Atomics count as reads (read-modify-write) and as shadowing writes.
    The *last* write of a field in the stream is exempt: it is the step's
    output, alive beyond the analyzed window (the next step reads it).
    """
    out: list[LintFinding] = []
    per_field: dict[FieldRef, list[tuple[int, StaticAccess]]] = {}
    for i, a in flat:
        assert a.field is not None
        per_field.setdefault(a.field, []).append((i, a))
    for ref, accs in per_field.items():
        for k, (i, a) in enumerate(accs):
            if a.kind != WRITE:
                continue
            shadowed: tuple[int, StaticAccess] | None = None
            for j, b in accs[k + 1:]:
                if not _access_overlap(a, b):
                    continue
                if b.kind in (READ, ATOMIC):
                    break
                # a scattered (exact-entry) write has a wide envelope but
                # only touches isolated entries — it never fully covers
                if b.kind == WRITE and b.entries is None and b.covers(a.lo, a.hi):
                    shadowed = (j, b)
                    break
            if shadowed is not None:
                j, b = shadowed
                out.append(LintFinding(
                    check="dead-store", severity="error",
                    field=str(ref), index=i, kernel=_label(records, i),
                    bytes_saved=a.nbytes, capacity_saved=0,
                    time_saved_us=traffic_time_us(a.nbytes, device),
                    detail=(f"write of rows [{a.lo},{a.hi}) is overwritten by "
                            f"#{j} {_label(records, j)} before any read")))
    return out


def _redundant_loads(records: Sequence[KernelRecord],
                     flat: list[tuple[int, StaticAccess]],
                     device: DeviceSpec) -> list[LintFinding]:
    """Two overlapping reads of one field with no intervening write.

    Legal, but the second read re-fetches rows the first already moved
    through DRAM — a fusion (or persistent-cache) candidate.  One
    finding per (field, later record), anchored at the re-reader.
    """
    out: list[LintFinding] = []
    per_field: dict[FieldRef, list[tuple[int, StaticAccess]]] = {}
    for i, a in flat:
        assert a.field is not None
        per_field.setdefault(a.field, []).append((i, a))
    for ref, accs in per_field.items():
        reported: set[int] = set()
        for k, (j, b) in enumerate(accs):
            if b.kind != READ or j in reported:
                continue
            for i, a in reversed(accs[:k]):
                if i == j or not _access_overlap(a, b):
                    continue
                if a.kind in (WRITE, ATOMIC):
                    break
                saved = min(a.nbytes, b.nbytes)
                if saved <= 0:
                    break
                reported.add(j)
                out.append(LintFinding(
                    check="redundant-load", severity="opportunity",
                    field=str(ref), index=j, kernel=_label(records, j),
                    bytes_saved=saved, capacity_saved=0,
                    time_saved_us=traffic_time_us(saved, device),
                    detail=(f"rows [{max(a.lo, b.lo)},{min(a.hi, b.hi)}) were "
                            f"already read by #{i} {_label(records, i)} with "
                            f"no intervening write")))
                break
    return out


def _aa_double_buffer(records: Sequence[KernelRecord],
                      flat: list[tuple[int, StaticAccess]],
                      model: AccessModel,
                      device: DeviceSpec) -> list[LintFinding]:
    """Levels whose f/fstar ping-pong AA-pattern streaming would collapse.

    Signature (per level): Collision writes ``fstar``, Streaming reads it
    back and writes ``f`` — two full population buffers where the AA
    pattern [7] keeps one, reading and writing the same buffer in
    alternating orientations.  Predicted savings: the whole ``fstar``
    allocation (capacity) and every byte of traffic through it.
    """
    out: list[LintFinding] = []
    levels = {r.level for r in records}
    for lv in sorted(levels):
        ref = FieldRef("fstar", lv)
        touched = [(i, a) for i, a in flat if a.field == ref]
        writes = [t for t in touched if t[1].kind == WRITE and t[1].nbytes > 0]
        reads = [t for t in touched if t[1].kind == READ and t[1].nbytes > 0]
        if not writes or not reads:
            continue
        traffic = sum(a.nbytes for _, a in touched)
        capacity = model.field_nbytes(ref)
        i0 = writes[0][0]
        out.append(LintFinding(
            check="aa-double-buffer", severity="opportunity",
            field=str(ref), index=i0, kernel=_label(records, i0),
            bytes_saved=traffic, capacity_saved=capacity,
            time_saved_us=traffic_time_us(traffic, device),
            detail=(f"level {lv} ping-pongs f/fstar ({len(writes)} writes, "
                    f"{len(reads)} reads per window); in-place AA-pattern "
                    f"streaming would drop the second buffer")))
    return out


def _droppable_buffers(model: AccessModel,
                       flat: list[tuple[int, StaticAccess]],
                       ) -> list[LintFinding]:
    """Allocated buffers no kernel of the stream ever touches."""
    touched = {a.field for _, a in flat}
    out: list[LintFinding] = []
    for ref in model.known_fields():
        if ref in touched:
            continue
        nbytes = model.field_nbytes(ref)
        if nbytes <= 0:
            continue
        out.append(LintFinding(
            check="droppable-buffer", severity="opportunity",
            field=str(ref), index=-1, kernel="",
            bytes_saved=0, capacity_saved=nbytes, time_saved_us=0.0,
            detail="allocated but never accessed by any kernel of the stream"))
    return out


# -- arena lifetime model ------------------------------------------------------

def build_lifetimes(model: AccessModel,
                    flat: list[tuple[int, StaticAccess]],
                    ) -> list[BufferLifetime]:
    """Buffer live ranges over the stream, from symbolic access sets.

    ``fghost`` rows physically live in the tail of the ``fstar``
    allocation, so the two are merged into one lifetime (splitting them
    would let the arena "free" half an allocation).  Untouched buffers
    get no lifetime — the droppable-buffer check reports those.
    """
    spans: dict[FieldRef, tuple[int, int]] = {}
    for i, a in flat:
        assert a.field is not None
        ref = a.field
        if ref.name == "fghost":  # tail of the fstar allocation
            ref = FieldRef("fstar", ref.level)
        lo, hi = spans.get(ref, (i, i))
        spans[ref] = (min(lo, i), max(hi, i))
    return [BufferLifetime(name=str(ref), nbytes=model.field_nbytes(ref),
                           first=lo, last=hi)
            for ref, (lo, hi) in sorted(spans.items(),
                                        key=lambda kv: str(kv[0]))]


def stream_lifetimes(records: Sequence[KernelRecord],
                     model: AccessModel) -> list[BufferLifetime]:
    """Buffer live ranges of a stream, straight from a record list.

    Convenience over :func:`build_lifetimes` for callers outside the
    lint pass (the metrics registry publishes the packed arena's peak
    occupancy per step): derives the symbolic access map and flattens it
    the same way :func:`lint_stream` does.
    """
    return build_lifetimes(model, _flat(model.access_map(records)))


def lint_stream(records: Sequence[KernelRecord], model: AccessModel,
                device: DeviceSpec | None = None,
                lifetimes: Sequence[BufferLifetime] | None = None,
                ) -> LintReport:
    """Run every lint check over one stream.

    ``lifetimes`` overrides the derived arena model (tests inject broken
    assignments); by default live ranges are derived from the access sets
    and packed with :func:`~repro.gpu.memory.arena_assign`, whose result
    is then itself verified with :func:`~repro.gpu.memory.arena_check` —
    the allocator is not trusted by the linter that gates on it.
    """
    dev = device if device is not None else get_device("A100-40GB")
    static_map = model.access_map(records)
    flat = _flat(static_map)
    findings: list[LintFinding] = []
    findings.extend(_dead_stores(records, flat, dev))
    findings.extend(_redundant_loads(records, flat, dev))
    findings.extend(_aa_double_buffer(records, flat, model, dev))
    findings.extend(_droppable_buffers(model, flat))

    if lifetimes is None:
        lts = arena_assign(build_lifetimes(model, flat))
    else:
        lts = list(lifetimes)
    for problem in arena_check(lts):
        findings.append(LintFinding(
            check="arena-alias", severity="error", field="", index=-1,
            kernel="", bytes_saved=0, capacity_saved=0, time_saved_us=0.0,
            detail=problem))
    naive = sum(lt.nbytes for lt in lts)
    return LintReport(findings=tuple(findings), lifetimes=tuple(lts),
                      arena_bytes=arena_peak_bytes(lts), naive_bytes=naive)

"""Declaration verifier: diff observed accesses against kernel declarations.

For every traced :class:`~repro.neon.runtime.KernelRecord` we compare

* the fields the body *actually* read/wrote (captured by
  :mod:`repro.analysis.capture`) against the declared ``reads``/``writes``
  tuples the scheduler trusts, and
* the observed DRAM traffic against the declared
  ``bytes_read``/``bytes_written``/``atomic_bytes``.

A read of a field the same kernel wrote earlier in its own body is an
*internal forwarding* (registers / same-launch visibility) and needs no
declaration — the fused Collision+Accumulate kernel re-reads its own
post-collision output this way.  Atomic scatters count as writes for
declaration purposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..neon.runtime import FieldRef, KernelRecord
from .capture import ATOMIC, META, READ, Access

__all__ = ["Finding", "verify_record", "verify_trace"]


@dataclass(frozen=True)
class Finding:
    """One declared-vs-observed discrepancy on one kernel launch."""

    check: str          # e.g. "undeclared-read", "bytes-written-mismatch"
    index: int          # record index within the trace
    kernel: str         # Fig.-2 style label, e.g. "SEO1"
    field: str          # "f@1" or "" for byte-level checks
    detail: str

    def __str__(self) -> str:
        where = f" [{self.field}]" if self.field else ""
        return f"#{self.index} {self.kernel}: {self.check}{where} — {self.detail}"


def _label(r: KernelRecord) -> str:
    return f"{r.name}{r.level}"


def verify_record(index: int, record: KernelRecord,
                  accesses: Sequence[Access]) -> list[Finding]:
    """Findings for one launch: field-set diffs and byte-count diffs."""
    declared_r, declared_w = set(record.reads), set(record.writes)
    written_so_far: set[FieldRef] = set()
    observed_r_external: set[FieldRef] = set()
    observed_r_any: set[FieldRef] = set()
    observed_w: set[FieldRef] = set()
    rbytes = wbytes = abytes = 0
    for a in accesses:
        if a.kind == META:
            rbytes += a.nbytes
            continue
        assert a.field is not None
        if a.kind == READ:
            observed_r_any.add(a.field)
            if a.field not in written_so_far:
                observed_r_external.add(a.field)
            rbytes += a.nbytes
        else:  # write or atomic
            observed_w.add(a.field)
            written_so_far.add(a.field)
            wbytes += a.nbytes
            if a.kind == ATOMIC:
                abytes += a.nbytes

    label = _label(record)
    out: list[Finding] = []

    def add(check: str, field: FieldRef | None, detail: str) -> None:
        out.append(Finding(check=check, index=index, kernel=label,
                           field=str(field) if field is not None else "",
                           detail=detail))

    for ref in sorted(observed_r_external - declared_r, key=str):
        add("undeclared-read", ref,
            "body reads this field but the kernel does not declare it; "
            "the scheduler will miss a RAW/WAR dependency")
    for ref in sorted(declared_r - observed_r_any, key=str):
        add("over-declared-read", ref,
            "declared as input but the body never reads it; "
            "the schedule carries a spurious dependency")
    for ref in sorted(observed_w - declared_w, key=str):
        add("undeclared-write", ref,
            "body writes this field but the kernel does not declare it; "
            "the scheduler will miss a RAW/WAW dependency")
    for ref in sorted(declared_w - observed_w, key=str):
        add("over-declared-write", ref,
            "declared as output but the body never writes it")

    if rbytes != record.bytes_read:
        add("bytes-read-mismatch", None,
            f"declared {record.bytes_read} B, observed {rbytes} B")
    if wbytes != record.bytes_written:
        add("bytes-written-mismatch", None,
            f"declared {record.bytes_written} B, observed {wbytes} B")
    if abytes != record.atomic_bytes:
        add("atomic-bytes-mismatch", None,
            f"declared {record.atomic_bytes} B, observed {abytes} B")
    return out


def verify_trace(records: Sequence[KernelRecord],
                 captured: Mapping[int, Sequence[Access]],
                 indices: Iterable[int] | None = None) -> list[Finding]:
    """Verify every captured launch of a trace.

    ``captured`` is :attr:`repro.neon.runtime.Runtime.captured`;
    ``indices`` restricts the check (default: every record).  A record
    executed while capture was active but yielding no trace entry is
    reported as ``uncaptured`` so silent gaps cannot pass the gate.
    """
    out: list[Finding] = []
    for i in (range(len(records)) if indices is None else indices):
        r = records[i]
        if i not in captured:
            out.append(Finding(check="uncaptured", index=i, kernel=_label(r),
                               field="",
                               detail="no accesses captured for this launch"))
            continue
        out.extend(verify_record(i, r, captured[i]))
    return out

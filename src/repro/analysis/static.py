"""Declaration-only (static) kernel-stream analysis.

PR 1's verifier needs the kernel bodies to *run* (shadow-execution
capture); the compiled-backend roadmap needs the same guarantees proved
**before** anything executes.  This module reasons about a kernel stream
from two inputs only:

* the :class:`~repro.neon.runtime.KernelRecord` declarations (fields,
  byte totals, atomics) a plan-only run records
  (:meth:`~repro.neon.runtime.Runtime.plan_start` — no body executes),
* the grid geometry already compiled into the engine's per-level index
  arrays (row counts, scatter/gather maps) — data, not execution.

From these it infers **symbolic access sets** — field x level x
half-open row interval x read/write/atomic, with exact entry sets for
the small scatter/gather patches — and proves:

* **declaration consistency**: the symbolic sets reproduce each record's
  declared field sets and byte totals exactly (the dynamic verifier's
  checks, statically);
* **fusion legality**: a fused stream is a valid *contraction* of the
  modified-baseline stream — every conflicting access pair of the
  baseline keeps its happens-before order, either inside one fused
  kernel (body order) or across kernels (a path in the fused declared
  DAG).  Violations produce a structured :class:`Counterexample` naming
  the conflicting pair;
* **dynamic containment**: statically inferred access sets are a
  superset of anything shadow-execution capture observes (the
  cross-check mode of ``python -m repro.analysis --static``).

The symbolic access sets also feed the lint pass
(:mod:`repro.analysis.lint`) and the step-plan certificates
(:mod:`repro.analysis.certificate`) the future compiled backend consumes
as its admission contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

import numpy as np

from ..core.fusion import MODIFIED_BASELINE, FusionConfig
from ..neon.graph import build_dependency_graph, iter_conflict_pairs
from ..neon.runtime import FieldRef, KernelRecord, Runtime
from .capture import ATOMIC, META, READ, WRITE
from .verify import Finding, verify_record

if TYPE_CHECKING:
    from ..core.engine import Engine, LevelBuffers

__all__ = [
    "StaticAccess", "AccessModel", "plan_stream",
    "verify_static", "superset_findings",
    "Counterexample", "LegalityProof", "check_contraction",
    "prove_fusion_legality", "swap_declaration", "seeded_illegal_proof",
]


@dataclass(frozen=True)
class StaticAccess:
    """One symbolic access: a field, a row interval, an optional exact set.

    Attribute-compatible with :class:`~repro.analysis.capture.Access`
    (``field``/``kind``/``lo``/``hi``/``nbytes``) so the dynamic
    verifier and the graph conflict tests consume either.  ``entries``
    (when not ``None``) is the exact set of touched entry ids
    ``q * n_rows + row`` — the bounding interval is then only an
    envelope, and two exact accesses conflict only if the sets
    intersect (see :func:`repro.neon.graph._access_overlap`).
    """

    field: FieldRef | None
    kind: str
    lo: int
    hi: int
    nbytes: int
    entries: frozenset[int] | None = None

    def covers(self, lo: int, hi: int) -> bool:
        """True when ``[lo, hi)`` lies inside this access's interval."""
        return self.lo <= lo and hi <= self.hi

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        where = f"{self.field}[{self.lo}:{self.hi}]" if self.field else "meta"
        exact = f" ({len(self.entries)} exact)" if self.entries is not None else ""
        return f"{self.kind} {where}{exact} ({self.nbytes} B)"


def _span(rows: np.ndarray) -> tuple[int, int]:
    if rows.size == 0:
        return (0, 0)
    return (int(rows.min()), int(rows.max()) + 1)


def _entries(qs: np.ndarray, rows: np.ndarray, width: int) -> frozenset[int]:
    """Exact entry ids of a ``(q, row)`` patch in a ``(Q, width)`` buffer."""
    return frozenset((np.asarray(qs, dtype=np.int64) * width
                      + np.asarray(rows, dtype=np.int64)).tolist())


class AccessModel:
    """Symbolic per-kernel access sets from engine geometry alone.

    Mirrors, index array by index array, what the shadow tracer in
    :mod:`repro.core.engine` records when the body actually runs — but
    reads only the compiled row maps, never a population value.  The
    ``--static`` cross-check gate asserts the mirror stays a superset of
    dynamic capture on every configuration.
    """

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self.q: int = engine.lat.q
        self.itemsize: int = engine.itemsize

    # -- geometry helpers ----------------------------------------------------
    def _buf(self, lv: int) -> "LevelBuffers":
        return self.engine.levels[lv]

    def has_accumulate(self, lv: int) -> bool:
        """True when level ``lv`` scatters into a parent ghost layer."""
        return lv > 0 and self._buf(lv - 1).acc_fine_rows.size > 0

    def has_explosion(self, lv: int) -> bool:
        return self._buf(lv).exp_q.size > 0

    def field_nbytes(self, ref: FieldRef) -> int:
        """Allocated bytes of the buffer backing ``ref``.

        ``fghost`` rows live in the tail of the ``fstar`` allocation
        (rows ``n_owned..n_used``); they are reported separately so the
        arena model can see both regions, but share one allocation.
        """
        buf = self._buf(ref.level)
        if ref.name in ("f", "fstar"):
            return self.q * buf.n_used * self.itemsize
        if ref.name == "fghost":
            return self.q * (buf.n_used - buf.n_owned) * self.itemsize
        if ref.name == "gacc":
            return int(buf.ghost_acc.size) * self.itemsize
        raise KeyError(f"unknown field {ref}")

    def known_fields(self) -> list[FieldRef]:
        """Every allocatable field of the compiled stack, all levels."""
        out: list[FieldRef] = []
        for lv, buf in enumerate(self.engine.levels):
            out.append(FieldRef("f", lv))
            out.append(FieldRef("fstar", lv))
            if buf.ghost_acc.size:
                out.append(FieldRef("gacc", lv))
            if buf.n_used > buf.n_owned:
                out.append(FieldRef("fghost", lv))
        return out

    # -- per-kernel-family access builders -----------------------------------
    def _collide(self, lv: int) -> list[StaticAccess]:
        buf = self._buf(lv)
        nb = self.q * self.itemsize * buf.n_owned
        return [StaticAccess(FieldRef("f", lv), READ, 0, buf.n_owned, nb),
                StaticAccess(FieldRef("fstar", lv), WRITE, 0, buf.n_owned, nb)]

    def _accumulate(self, lv: int, mode: str) -> list[StaticAccess]:
        """Accumulate of fine level ``lv`` into its parent's ghosts."""
        parent = self._buf(lv - 1)
        if parent.acc_fine_rows.size == 0:
            return []
        Q, i = self.q, self.itemsize
        m = parent.acc_fine_rows.size
        ng = parent.ghost_acc.shape[1]
        flo, fhi = _span(parent.acc_fine_rows)
        glo, ghi = _span(parent.acc_ghost_rows)
        out = [StaticAccess(FieldRef("fstar", lv), READ, flo, fhi,
                            0 if mode == "fused" else Q * i * m)]
        if mode == "gather":
            out.append(StaticAccess(FieldRef("gacc", lv - 1), READ, 0, ng, Q * i * ng))
            out.append(StaticAccess(FieldRef("gacc", lv - 1), WRITE, 0, ng, Q * i * ng))
        else:
            if mode == "scatter":
                out.append(StaticAccess(FieldRef("gacc", lv - 1), READ, 0, ng,
                                        Q * i * ng))
            out.append(StaticAccess(FieldRef("gacc", lv - 1), ATOMIC, glo, ghi,
                                    Q * i * m))
        return out

    def _stream_reads(self, lv: int) -> list[StaticAccess]:
        """The bulk ``fstar`` gather, split owned/fine-ghost like the tracer."""
        buf = self._buf(lv)
        Q, i, n = self.q, self.itemsize, buf.n_owned
        flat = buf.pull_rows.ravel()
        nvals = flat.size
        extra = [a for a in (buf.bb_cell, buf.mov_cell, buf.sl_src) if a.size]
        all_rows = np.concatenate([flat] + extra) if extra else flat
        ghost = all_rows >= n
        n_ghost_vals = int((flat >= n).sum())
        per_val = (Q * i * n) / nvals if nvals else 0.0
        out: list[StaticAccess] = []
        owned_rows, ghost_rows = all_rows[~ghost], all_rows[ghost]
        if owned_rows.size:
            lo, hi = _span(owned_rows)
            out.append(StaticAccess(FieldRef("fstar", lv), READ, lo, hi,
                                    round(per_val * (nvals - n_ghost_vals))))
        if ghost_rows.size:
            lo, hi = _span(ghost_rows)
            out.append(StaticAccess(FieldRef("fghost", lv), READ, lo, hi,
                                    round(per_val * n_ghost_vals)))
        return out

    def _explode(self, lv: int, from_ghost: bool, subsumed: bool) -> list[StaticAccess]:
        buf = self._buf(lv)
        m = buf.exp_q.size
        if m == 0:
            return []
        i = self.itemsize
        out: list[StaticAccess] = []
        if from_ghost:
            lo, hi = _span(buf.exp_ghost_rows)
            out.append(StaticAccess(FieldRef("fghost", lv), READ, lo, hi, i * m))
        else:
            lo, hi = _span(buf.exp_rows)
            out.append(StaticAccess(FieldRef("fstar", lv - 1), READ, lo, hi, i * m))
        lo, hi = _span(buf.exp_cell)
        out.append(StaticAccess(FieldRef("f", lv), WRITE, lo, hi,
                                0 if subsumed else i * m,
                                entries=_entries(buf.exp_q, buf.exp_cell,
                                                 buf.n_used)))
        return out

    def _coalesce(self, lv: int, subsumed: bool) -> list[StaticAccess]:
        buf = self._buf(lv)
        i = self.itemsize
        ng = buf.ghost_acc.shape[1]
        out: list[StaticAccess] = []
        if buf.coal_q.size:
            m = buf.coal_q.size
            lo, hi = _span(buf.coal_src)
            out.append(StaticAccess(FieldRef("gacc", lv), READ, lo, hi, i * m,
                                    entries=_entries(buf.coal_q, buf.coal_src, ng)))
            lo, hi = _span(buf.coal_cell)
            out.append(StaticAccess(FieldRef("f", lv), WRITE, lo, hi,
                                    0 if subsumed else i * m,
                                    entries=_entries(buf.coal_q, buf.coal_cell,
                                                     buf.n_used)))
        if ng:
            out.append(StaticAccess(FieldRef("gacc", lv), WRITE, 0, ng,
                                    i * int(buf.ghost_acc.size)))
        return out

    def _explosion_copy(self, lv: int) -> list[StaticAccess]:
        buf = self._buf(lv)
        nfg = buf.fg_rows.size
        if nfg == 0:
            return []
        nb = self.q * self.itemsize * nfg
        rlo, rhi = _span(buf.fg_coarse_rows)
        wlo, whi = _span(buf.fg_rows)
        return [StaticAccess(FieldRef("fstar", lv - 1), READ, rlo, rhi, nb),
                StaticAccess(FieldRef("fghost", lv), WRITE, wlo, whi, nb)]

    # -- dispatch ------------------------------------------------------------
    def accesses(self, record: KernelRecord) -> list[StaticAccess]:
        """Symbolic access set of one launch, in body order."""
        lv = record.level
        buf = self._buf(lv)
        name = record.name
        Q, i, n = self.q, self.itemsize, buf.n_owned
        if name == "C":
            return self._collide(lv)
        if name == "CA":
            return self._collide(lv) + self._accumulate(lv, "fused")
        if name == "A":
            mode = "scatter" if record.atomic_bytes else "gather"
            return self._accumulate(lv, mode)
        if name == "E":
            if any(r.name == "fghost" for r in record.writes):
                return self._explosion_copy(lv)
            from_ghost = any(r.name == "fghost" for r in record.reads)
            return self._explode(lv, from_ghost, subsumed=False)
        if name == "O":
            return self._coalesce(lv, subsumed=False)
        if name in ("S", "SE", "SO", "SEO"):
            out = self._stream_reads(lv)
            out.append(StaticAccess(FieldRef("f", lv), WRITE, 0, n, Q * i * n))
            if buf.meta_bytes:
                out.append(StaticAccess(None, META, 0, 0, buf.meta_bytes))
            if "E" in name:
                # fused Streaming+Explosion only exists in the optimized
                # layout, where Explosion reads the coarse fstar directly
                out.extend(self._explode(lv, from_ghost=False, subsumed=True))
            if "O" in name:
                out.extend(self._coalesce(lv, subsumed=True))
            return out
        if name == "CASE":
            # the post-collision intermediate is register-resident: every
            # fstar@lv access of the C/A/S parts disappears, exactly as
            # the tracer's suppress() hides them dynamically
            me = FieldRef("fstar", lv)
            out = [a for a in self._collide(lv) if a.field != me]
            if self.has_accumulate(lv):
                out.extend(a for a in self._accumulate(lv, "fused")
                           if a.field != me)
            out.extend(a for a in self._stream_reads(lv) if a.field != me)
            out.append(StaticAccess(FieldRef("f", lv), WRITE, 0, n, Q * i * n))
            if buf.meta_bytes:
                out.append(StaticAccess(None, META, 0, 0, buf.meta_bytes))
            if lv > 0 and self.has_explosion(lv):
                out.extend(self._explode(lv, from_ghost=False, subsumed=True))
            return out
        raise KeyError(f"no static access model for kernel {name!r}")

    def access_map(self, records: Sequence[KernelRecord],
                   ) -> dict[int, list[StaticAccess]]:
        """``record index -> symbolic accesses`` for a whole stream."""
        return {i: self.accesses(r) for i, r in enumerate(records)}

    # -- primitive decomposition ---------------------------------------------
    def decompose(self, record: KernelRecord) -> list[tuple[str, int]]:
        """Primitive operations a (possibly fused) kernel executes, in order.

        Primitives are the modified baseline's kernels — ``C``, ``A``,
        ``S``, ``E``, ``O`` at a level.  ``CASE`` is resolved against
        the geometry (its name does not encode whether the level has an
        Accumulate or Explosion part).
        """
        lv = record.level
        fixed = {"C": ("C",), "A": ("A",), "S": ("S",), "E": ("E",), "O": ("O",),
                 "CA": ("C", "A"), "SE": ("S", "E"), "SO": ("S", "O"),
                 "SEO": ("S", "E", "O")}
        if record.name in fixed:
            return [(p, lv) for p in fixed[record.name]]
        if record.name == "CASE":
            prims = ["C"]
            if self.has_accumulate(lv):
                prims.append("A")
            prims.append("S")
            if lv > 0 and self.has_explosion(lv):
                prims.append("E")
            return [(p, lv) for p in prims]
        raise KeyError(f"cannot decompose kernel {record.name!r}")


def plan_stream(fusion: FusionConfig, wl_kwargs: Mapping[str, Any],
                steps: int = 2) -> tuple[list[KernelRecord], AccessModel]:
    """Record the declaration stream of a workload without executing bodies.

    Builds the simulation (grid compilation + buffer allocation are
    setup, not kernel execution), switches the runtime to plan-only mode
    and drives the Algorithm-1 stepper: every ``op_*`` records its
    declaration and skips its body.  The resulting stream is
    record-for-record identical to an executing run's trace — asserted
    by the ``--static`` cross-check gate.
    """
    from ..bench.workloads import lid_cavity
    from ..core.simulation import Simulation

    wl = lid_cavity(**wl_kwargs)
    rt = Runtime()
    sim = Simulation.from_config(wl.spec, wl.sim_config(fusion=fusion,
                                                        threaded=False),
                                 runtime=rt)
    rt.plan_start()
    sim.run(steps)
    rt.plan_stop()
    return list(rt.records), AccessModel(sim.engine)


# -- static declaration verification -----------------------------------------

def verify_static(records: Sequence[KernelRecord],
                  model: AccessModel) -> list[Finding]:
    """The dynamic verifier's checks, over symbolic access sets.

    For every record, the statically inferred accesses must reproduce
    the declared field sets and the exact byte/atomic totals.  A kernel
    whose declaration was hand-edited (or has drifted from the engine's
    geometry) is caught here without running anything.
    """
    out: list[Finding] = []
    for i, r in enumerate(records):
        try:
            accesses = model.accesses(r)
        except KeyError as exc:
            out.append(Finding(check="unmodeled-kernel", index=i,
                               kernel=f"{r.name}{r.level}", field="",
                               detail=str(exc)))
            continue
        out.extend(verify_record(i, r, accesses))
    return out


# -- dynamic-containment cross-check -----------------------------------------

def superset_findings(records: Sequence[KernelRecord],
                      captured: Mapping[int, Sequence[Any]],
                      static_map: Mapping[int, Sequence[StaticAccess]],
                      ) -> list[str]:
    """Check static access sets contain everything dynamic capture saw.

    For each observed access there must be static accesses of the same
    field and kind whose merged intervals cover the observed interval.
    Violations mean the static model under-approximates real behaviour —
    any proof built on it would be unsound — so this gates in CI.
    """
    problems: list[str] = []
    for idx, accesses in captured.items():
        statics = static_map.get(idx, ())
        label = f"#{idx} {records[idx].name}{records[idx].level}"
        for a in accesses:
            if a.kind == META or a.field is None or a.hi <= a.lo:
                continue
            spans = sorted((s.lo, s.hi) for s in statics
                           if s.field == a.field and s.kind == a.kind
                           and s.hi > s.lo)
            # merge and check [a.lo, a.hi) is covered
            pos = a.lo
            for lo, hi in spans:
                if lo > pos:
                    break
                pos = max(pos, hi)
            if pos < a.hi or a.lo < (spans[0][0] if spans else a.hi):
                problems.append(
                    f"{label}: observed {a.kind} {a.field}[{a.lo}:{a.hi}) "
                    f"not covered by static access set "
                    f"{[(lo, hi) for lo, hi in spans]}")
    return problems


# -- fusion-legality contraction proof ----------------------------------------

@dataclass(frozen=True)
class Counterexample:
    """Why a fused stream is *not* a contraction of its baseline.

    Names the conflicting baseline access pair whose happens-before
    order the fused stream fails to reproduce, plus the fused kernels
    it mapped into.
    """

    reason: str                    # "unordered" | "reordered" | "structure"
    field: str
    hazard: str
    base_i: int
    base_j: int
    kernel_i: str
    kernel_j: str
    interval_i: tuple[int, int]
    interval_j: tuple[int, int]
    fused_i: int
    fused_j: int
    fused_kernel_i: str
    fused_kernel_j: str
    detail: str

    def __str__(self) -> str:
        return (f"{self.reason}: baseline {self.kernel_i}#{self.base_i} "
                f"{self.hazard.upper()} {self.field}{list(self.interval_i)} -> "
                f"{self.kernel_j}#{self.base_j} {self.field}{list(self.interval_j)}"
                f" lost in fused stream ({self.fused_kernel_i}#{self.fused_i} vs "
                f"{self.fused_kernel_j}#{self.fused_j}): {self.detail}")


@dataclass(frozen=True)
class LegalityProof:
    """Outcome of one contraction check."""

    config: str
    baseline: str
    verdict: str                   # "legal" | "illegal" | "baseline"
    pairs_checked: int
    primitives: int
    counterexamples: tuple[Counterexample, ...]

    @property
    def legal(self) -> bool:
        return self.verdict in ("legal", "baseline")


def _label(records: Sequence[KernelRecord], i: int) -> str:
    return f"{records[i].name}{records[i].level}"


def _witness(base_map: Mapping[int, Sequence[StaticAccess]], i: int, j: int,
             dep: str, ref: FieldRef) -> tuple[tuple[int, int], tuple[int, int]]:
    """Representative conflicting intervals of one baseline pair."""
    from ..neon.graph import _access_overlap
    i_side = [a for a in base_map.get(i, ()) if a.field == ref
              and (a.kind in (WRITE, ATOMIC)) == (dep != "war")]
    j_side = [a for a in base_map.get(j, ()) if a.field == ref
              and (a.kind in (WRITE, ATOMIC)) == (dep != "raw")]
    for a in i_side:
        for b in j_side:
            if a.kind == ATOMIC and b.kind == ATOMIC:
                continue
            if _access_overlap(a, b):
                return (a.lo, a.hi), (b.lo, b.hi)
    return (0, 0), (0, 0)


def check_contraction(base_records: Sequence[KernelRecord],
                      base_map: Mapping[int, Sequence[StaticAccess]],
                      fused_records: Sequence[KernelRecord],
                      decompose: Callable[[KernelRecord], list[tuple[str, int]]],
                      max_counterexamples: int = 10,
                      ) -> tuple[int, int, list[Counterexample]]:
    """Core proof: the fused stream contracts the baseline stream.

    Returns ``(pairs_checked, primitives_mapped, counterexamples)``.
    The mapping aligns the ``k``-th occurrence of each primitive
    ``(name, level)`` in the baseline with the ``k``-th occurrence in
    the fused stream's decomposition — substeps are never reordered by
    fusion, and any genuinely reordered conflicting pair fails the
    happens-before check below anyway.
    """
    cex: list[Counterexample] = []

    # -- align primitives -----------------------------------------------------
    seen: dict[tuple[str, int], int] = {}
    base_key: list[tuple[str, int, int]] = []
    for r in base_records:
        prims = decompose(r)
        if len(prims) != 1:
            cex.append(Counterexample(
                reason="structure", field="", hazard="", base_i=0, base_j=0,
                kernel_i=f"{r.name}{r.level}", kernel_j="", interval_i=(0, 0),
                interval_j=(0, 0), fused_i=-1, fused_j=-1, fused_kernel_i="",
                fused_kernel_j="",
                detail="baseline stream contains a fused kernel"))
            return 0, 0, cex
        name, lv = prims[0]
        k = seen.get((name, lv), 0)
        seen[(name, lv)] = k + 1
        base_key.append((name, lv, k))

    seen.clear()
    fused_pos: dict[tuple[str, int, int], tuple[int, int]] = {}
    for fi, r in enumerate(fused_records):
        for pos, (name, lv) in enumerate(decompose(r)):
            k = seen.get((name, lv), 0)
            seen[(name, lv)] = k + 1
            fused_pos[(name, lv, k)] = (fi, pos)

    missing = [key for key in base_key if key not in fused_pos]
    extra = len(fused_pos) - (len(base_key) - len(missing))
    if missing or extra:
        detail = []
        if missing:
            name, lv, k = missing[0]
            detail.append(f"baseline primitive {name}{lv} (occurrence {k + 1}) "
                          f"has no image in the fused stream")
        if extra:
            detail.append(f"fused stream has {extra} primitive(s) the baseline "
                          f"does not execute")
        cex.append(Counterexample(
            reason="structure", field="", hazard="", base_i=0, base_j=0,
            kernel_i="", kernel_j="", interval_i=(0, 0), interval_j=(0, 0),
            fused_i=-1, fused_j=-1, fused_kernel_i="", fused_kernel_j="",
            detail="; ".join(detail)))
        return 0, len(fused_pos), cex

    # -- happens-before on every conflicting pair -----------------------------
    import networkx as nx
    g = build_dependency_graph(list(fused_records), reduce=False)
    descendants: dict[int, set[int]] = {}
    pairs = 0
    for i, j, dep, ref in iter_conflict_pairs(base_records, base_map):
        pairs += 1
        fi, pi = fused_pos[base_key[i]]
        fj, pj = fused_pos[base_key[j]]
        if fi == fj:
            if pi < pj:
                continue
            reason, detail = "reordered", (
                "both map into one fused kernel but the body order is reversed")
        else:
            if fi not in descendants:
                descendants[fi] = set(nx.descendants(g, fi))
            if fj in descendants[fi]:
                continue
            reason, detail = "unordered", (
                "no dependency path orders the fused kernels; the scheduler "
                "may run them concurrently or reversed")
        iv_i, iv_j = _witness(base_map, i, j, dep, ref)
        cex.append(Counterexample(
            reason=reason, field=str(ref), hazard=dep, base_i=i, base_j=j,
            kernel_i=_label(base_records, i), kernel_j=_label(base_records, j),
            interval_i=iv_i, interval_j=iv_j, fused_i=fi, fused_j=fj,
            fused_kernel_i=_label(fused_records, fi),
            fused_kernel_j=_label(fused_records, fj), detail=detail))
        if len(cex) >= max_counterexamples:
            break
    return pairs, len(fused_pos), cex


def prove_fusion_legality(fusion: FusionConfig, wl_kwargs: Mapping[str, Any],
                          steps: int = 2,
                          tamper: Callable[[list[KernelRecord]],
                                           list[KernelRecord]] | None = None,
                          ) -> LegalityProof:
    """Prove a fusion configuration is a legal contraction of Fig. 4b.

    ``tamper`` (tests, the CLI's seeded negative control) may rewrite
    the fused stream's declarations before the proof runs; the baseline
    side and the geometry model are never tampered, so a declaration
    lie surfaces as a lost happens-before pair.

    The original Fig. 4a layout is a different *algorithm* (gather
    Accumulate, fine-ghost Explosion copies), not a contraction of 4b:
    it gets the verdict ``"baseline"`` and an empty proof.
    """
    if fusion.original_layout:
        return LegalityProof(config=fusion.name, baseline=fusion.name,
                             verdict="baseline", pairs_checked=0,
                             primitives=0, counterexamples=())
    base_records, base_model = plan_stream(MODIFIED_BASELINE, wl_kwargs, steps)
    fused_records, fused_model = plan_stream(fusion, wl_kwargs, steps)
    if tamper is not None:
        fused_records = tamper(fused_records)
    base_map = base_model.access_map(base_records)
    pairs, prims, cex = check_contraction(base_records, base_map,
                                          fused_records, fused_model.decompose)
    return LegalityProof(
        config=fusion.name, baseline=MODIFIED_BASELINE.name,
        verdict="legal" if not cex else "illegal", pairs_checked=pairs,
        primitives=prims, counterexamples=tuple(cex))


# -- seeded negative control ---------------------------------------------------

def swap_declaration(records: list[KernelRecord],
                     name: str = "E") -> list[KernelRecord]:
    """Swap the read/write declarations of the first ``name`` kernel.

    The classic declaration bug: a kernel that *writes* a field but
    declares it as an input (and vice versa).  The scheduler then drops
    the dependency edges that ordered the kernel against its true
    consumers — which the contraction proof must detect.
    """
    from dataclasses import replace
    out = list(records)
    for i, r in enumerate(out):
        if r.name == name:
            out[i] = replace(r, reads=r.writes, writes=r.reads)
            return out
    raise ValueError(f"stream has no {name!r} kernel to tamper with")


def seeded_illegal_proof(wl_kwargs: Mapping[str, Any],
                         steps: int = 2) -> LegalityProof:
    """Negative control: a swapped declaration must be rejected.

    Runs the contraction proof for Streaming+Coalescence fusion with the
    first standalone Explosion kernel's reads/writes swapped.  The
    tampered E loses its RAW edge into the next substep's Collision
    (both now only *read* the shared field), so the conflicting pair
    ``E writes f`` -> ``C reads f`` becomes unordered — the proof must
    return ``"illegal"`` with a counterexample naming that pair.
    """
    from ..core.fusion import FUSE_SO
    return prove_fusion_legality(FUSE_SO, wl_kwargs, steps,
                                 tamper=swap_declaration)

"""Shadow-recording of the buffer accesses a kernel body actually performs.

The engine's kernel bodies are instrumented at the point where they index
into the population / accumulator buffers: every read, plain write and
atomic-add scatter is reported to the active :class:`AccessTracer` with
the *actual* row interval taken from the index arrays the body uses.
Declarations (the ``reads=``/``writes=`` tuples and byte counts handed to
:meth:`~repro.neon.runtime.Runtime.launch`) never feed into the capture;
the two sides stay independent so :mod:`repro.analysis.verify` can diff
them.

Row coordinates are the engine's compact row space: rows ``0..n_owned-1``
are the owned cells of a level, rows ``n_owned..n_used-1`` the fine-ghost
region of the original baseline.  The engine maps accesses to the ghost
region of ``fstar`` onto the logical ``fghost`` field, matching how the
declarations name it.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from ..neon.runtime import FieldRef

__all__ = ["Access", "AccessTracer", "READ", "WRITE", "ATOMIC", "META"]

#: Access kinds.  ``META`` is structural-metadata traffic (neighbour
#: tables, bitmasks): it contributes to the read-byte total but names no
#: field, so it is exempt from declaration matching and race checks.
READ = "read"
WRITE = "write"
ATOMIC = "atomic"
META = "meta"

_KINDS = frozenset((READ, WRITE, ATOMIC, META))


@dataclass(frozen=True)
class Access:
    """One observed access: a field, a half-open row interval, a payload.

    ``nbytes`` models the DRAM traffic of the access under the same
    accounting the declarations use (register-resident re-reads inside a
    fused kernel carry 0 bytes); ``lo``/``hi`` bound the rows actually
    indexed, so two accesses conflict only if their intervals overlap.
    """

    field: FieldRef | None
    kind: str
    lo: int
    hi: int
    nbytes: int

    def overlaps(self, other: "Access") -> bool:
        # max/min form: an empty interval [x,x) overlaps nothing, even
        # when x lies strictly inside the other interval
        return max(self.lo, other.lo) < min(self.hi, other.hi)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        where = f"{self.field}[{self.lo}:{self.hi}]" if self.field else "meta"
        return f"{self.kind} {where} ({self.nbytes} B)"


class AccessTracer:
    """Collects :class:`Access` records for the kernel body in flight.

    The runtime brackets every traced launch with :meth:`begin_launch` /
    :meth:`end_launch`; engine bodies call :meth:`read` / :meth:`write` /
    :meth:`atomic` / :meth:`meta` only while a launch is active.  Fields
    registered through :meth:`suppress` are register-resident for the
    duration of the ``with`` block (the fused CASE kernel keeps the
    post-collision populations in registers): their accesses are not
    recorded at all.
    """

    def __init__(self) -> None:
        self._current: list[Access] | None = None
        self._suppressed: set[FieldRef] = set()

    @property
    def active(self) -> bool:
        """True while a launch body is executing under capture."""
        return self._current is not None

    # -- launch bracketing ---------------------------------------------------
    def begin_launch(self) -> None:
        if self._current is not None:
            raise RuntimeError("nested kernel launches cannot be traced")
        self._current = []

    def end_launch(self) -> list[Access]:
        if self._current is None:
            raise RuntimeError("end_launch() without begin_launch()")
        out, self._current = self._current, None
        return out

    # -- register-resident fields -------------------------------------------
    @contextmanager
    def suppress(self, *fields: FieldRef) -> Iterator[None]:
        added = set(fields) - self._suppressed
        self._suppressed |= added
        try:
            yield
        finally:
            self._suppressed -= added

    # -- recording ------------------------------------------------------------
    def _add(self, field: FieldRef | None, kind: str, lo: int, hi: int,
             nbytes: int) -> None:
        if kind not in _KINDS:
            raise ValueError(f"unknown access kind {kind!r}")
        if self._current is None:
            return
        if field is not None and field in self._suppressed:
            return
        self._current.append(Access(field=field, kind=kind, lo=int(lo),
                                    hi=int(hi), nbytes=int(nbytes)))

    def read(self, field: FieldRef, lo: int, hi: int, nbytes: int) -> None:
        self._add(field, READ, lo, hi, nbytes)

    def write(self, field: FieldRef, lo: int, hi: int, nbytes: int) -> None:
        self._add(field, WRITE, lo, hi, nbytes)

    def atomic(self, field: FieldRef, lo: int, hi: int, nbytes: int) -> None:
        self._add(field, ATOMIC, lo, hi, nbytes)

    def meta(self, nbytes: int) -> None:
        """Structural metadata traffic (no field identity)."""
        if nbytes:
            self._add(None, META, 0, 0, nbytes)

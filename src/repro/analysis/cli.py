"""``python -m repro.analysis`` — lint every fusion configuration.

For each requested :class:`~repro.core.fusion.FusionConfig` and workload
the linter runs a short functional simulation under access capture, then

1. diffs every kernel's observed accesses against its declarations
   (:mod:`repro.analysis.verify`),
2. schedules the declared dependency graph into concurrency waves and
   race-checks every wave at row-interval granularity
   (:mod:`repro.analysis.races`), and
3. repeats the race check on the interval-refined graph (the schedule a
   runtime exploiting disjoint row ranges would use).

Exit status is non-zero when any finding or race survives — this is the
CI gate that every future fusion/optimisation change must keep green.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from ..bench.workloads import lid_cavity
from ..core.fusion import ABLATION_CONFIGS, ORIGINAL_BASELINE, FusionConfig, get_config
from ..core.simulation import Simulation
from ..neon.graph import build_dependency_graph, schedule_waves
from ..neon.runtime import Runtime
from .races import detect_races
from .verify import verify_trace

__all__ = ["ALL_CONFIGS", "lint_config", "main", "small_workloads",
           "threaded_check"]

#: Every configuration the linter gates: the Fig. 9 ablation plus the
#: original (Fig. 4a) baseline.
ALL_CONFIGS: tuple[FusionConfig, ...] = (ORIGINAL_BASELINE,) + ABLATION_CONFIGS


def small_workloads() -> dict[str, dict]:
    """Small-but-representative multigrid workloads for functional linting.

    Both exercise moving-wall + no-slip boundaries and every cross-level
    operator (Explosion, Accumulate, Coalescence) while staying fast
    enough to sweep 7 configurations x 2 workloads in seconds.
    """
    return {
        "cavity2d-2lvl": dict(base=(20, 20), num_levels=2, lattice="D2Q9"),
        "cavity3d-3lvl": dict(base=(12, 12, 12), num_levels=3, lattice="D3Q19"),
    }


def lint_config(config: FusionConfig, workload: str = "cavity2d-2lvl",
                steps: int = 2) -> dict:
    """Run one config on one workload under capture; return a report dict."""
    wl_kwargs = small_workloads()[workload]
    wl = lid_cavity(**wl_kwargs)
    rt = Runtime()
    rt.capture_start()
    sim = Simulation.from_config(wl.spec, wl.sim_config(fusion=config),
                                 runtime=rt)
    sim.run(steps)
    captured = rt.capture_stop()
    records = rt.records

    findings = verify_trace(records, captured)
    declared = build_dependency_graph(records, reduce=False)
    declared_waves = schedule_waves(declared)
    races = detect_races(records, captured, declared_waves)
    refined = build_dependency_graph(records, reduce=False, access_map=captured)
    refined_waves = schedule_waves(refined)
    refined_races = detect_races(records, captured, refined_waves)

    return {
        "config": config.name,
        "workload": workload,
        "steps": steps,
        "kernels": len(records),
        "declared_edges": declared.number_of_edges(),
        "declared_waves": len(declared_waves),
        "refined_edges": refined.number_of_edges(),
        "refined_waves": len(refined_waves),
        "findings": [str(f) for f in findings],
        "races": [str(r) for r in races],
        "refined_races": [str(r) for r in refined_races],
        "stable": sim.is_stable(),
    }


def threaded_check(config: FusionConfig, workload: str = "cavity2d-2lvl",
                   steps: int = 2) -> bool:
    """True when threaded execution is bit-identical to serial.

    Runs the workload twice — immediate mode, then the deferred wave
    executor with the debug gate *on* (each unique step shape is replayed
    under capture and race-checked before its first concurrent run) —
    and compares every level's ``f``/``fstar``/``ghost_acc`` bitwise.
    """
    import numpy as np

    wl_kwargs = small_workloads()[workload]
    wl = lid_cavity(**wl_kwargs)

    def _state(threaded: bool):
        sim = Simulation.from_config(
            wl.spec, wl.sim_config(fusion=config, threaded=threaded,
                                   executor_debug=True))
        with sim:
            sim.run(steps)
            return [(b.f.copy(), b.fstar.copy(), b.ghost_acc.copy())
                    for b in sim.engine.levels]

    return all(np.array_equal(a, b)
               for sl, tl in zip(_state(False), _state(True))
               for a, b in zip(sl, tl))


def _run_reports(configs: Sequence[FusionConfig], workloads: Sequence[str],
                 steps: int, threaded: bool = False) -> list[dict]:
    reports = []
    for cfg in configs:
        for wl in workloads:
            rep = lint_config(cfg, wl, steps=steps)
            if threaded:
                rep["threaded_identical"] = threaded_check(cfg, wl, steps=steps)
            reports.append(rep)
    return reports


def _problems(report: dict) -> int:
    return (len(report["findings"]) + len(report["races"])
            + len(report["refined_races"]) + (0 if report["stable"] else 1)
            + (0 if report.get("threaded_identical", True) else 1))


def _print_text(reports: list[dict], out) -> None:
    for rep in reports:
        status = "OK" if _problems(rep) == 0 else "FAIL"
        print(f"[{status}] {rep['config']:>14s} x {rep['workload']:<14s} "
              f"kernels={rep['kernels']:4d} "
              f"waves={rep['declared_waves']:3d} "
              f"(refined {rep['refined_waves']:3d}) "
              f"findings={len(rep['findings'])} races={len(rep['races'])}",
              file=out)
        for f in rep["findings"]:
            print(f"    declaration: {f}", file=out)
        for r in rep["races"]:
            print(f"    race: {r}", file=out)
        for r in rep["refined_races"]:
            print(f"    race (refined schedule): {r}", file=out)
        if not rep["stable"]:
            print("    simulation diverged (NaN/Inf populations)", file=out)
        if not rep.get("threaded_identical", True):
            print("    threaded execution differs from serial", file=out)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Trace-based declaration verifier and race detector "
                    "for every kernel-fusion configuration.")
    parser.add_argument("--config", action="append", default=None,
                        metavar="NAME",
                        help="lint one configuration (repeatable); "
                             f"choices: {', '.join(c.name for c in ALL_CONFIGS)}")
    parser.add_argument("--all-configs", action="store_true",
                        help="lint the full Fig. 9 ablation plus the "
                             "original baseline (default when no --config)")
    parser.add_argument("--workload", action="append", default=None,
                        choices=sorted(small_workloads()),
                        help="workload(s) to lint on (default: all)")
    parser.add_argument("--steps", type=int, default=2,
                        help="coarse time steps to trace (default 2)")
    parser.add_argument("--threaded", action="store_true",
                        help="also verify the threaded wave executor is "
                             "bit-identical to serial execution")
    parser.add_argument("--json", action="store_true",
                        help="emit a machine-readable JSON report")
    args = parser.parse_args(argv)

    if args.config:
        try:
            configs = [get_config(name) for name in args.config]
        except KeyError as exc:
            parser.error(str(exc.args[0]))
    else:
        configs = list(ALL_CONFIGS)
    workloads = args.workload or sorted(small_workloads())

    reports = _run_reports(configs, workloads, args.steps,
                           threaded=args.threaded)
    total = sum(_problems(r) for r in reports)
    if args.json:
        json.dump({"runs": reports, "total_problems": total}, sys.stdout,
                  indent=2)
        print()
    else:
        _print_text(reports, sys.stdout)
        print(f"{len(reports)} runs, {total} problem(s)")
    return 1 if total else 0

"""``python -m repro.analysis`` — lint every fusion configuration.

For each requested :class:`~repro.core.fusion.FusionConfig` and workload
the linter runs a short functional simulation under access capture, then

1. diffs every kernel's observed accesses against its declarations
   (:mod:`repro.analysis.verify`),
2. schedules the declared dependency graph into concurrency waves and
   race-checks every wave at row-interval granularity
   (:mod:`repro.analysis.races`), and
3. repeats the race check on the interval-refined graph (the schedule a
   runtime exploiting disjoint row ranges would use).

Exit status is non-zero when any finding or race survives — this is the
CI gate that every future fusion/optimisation change must keep green.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Sequence, TextIO

from ..bench.workloads import lid_cavity
from ..core.fusion import ABLATION_CONFIGS, ORIGINAL_BASELINE, FusionConfig, get_config
from ..core.simulation import Simulation
from ..neon.graph import build_dependency_graph, schedule_waves
from ..neon.runtime import Runtime
from .races import detect_races
from .verify import verify_trace

__all__ = ["ALL_CONFIGS", "lint_config", "main", "small_workloads",
           "static_check", "threaded_check"]

#: Every configuration the linter gates: the Fig. 9 ablation plus the
#: original (Fig. 4a) baseline.
ALL_CONFIGS: tuple[FusionConfig, ...] = (ORIGINAL_BASELINE,) + ABLATION_CONFIGS


def small_workloads() -> dict[str, dict[str, Any]]:
    """Small-but-representative multigrid workloads for functional linting.

    Both exercise moving-wall + no-slip boundaries and every cross-level
    operator (Explosion, Accumulate, Coalescence) while staying fast
    enough to sweep 7 configurations x 2 workloads in seconds.
    """
    return {
        "cavity2d-2lvl": dict(base=(20, 20), num_levels=2, lattice="D2Q9"),
        "cavity3d-3lvl": dict(base=(12, 12, 12), num_levels=3, lattice="D3Q19"),
    }


def lint_config(config: FusionConfig, workload: str = "cavity2d-2lvl",
                steps: int = 2) -> dict[str, Any]:
    """Run one config on one workload under capture; return a report dict."""
    wl_kwargs = small_workloads()[workload]
    wl = lid_cavity(**wl_kwargs)
    rt = Runtime()
    rt.capture_start()
    sim = Simulation.from_config(wl.spec, wl.sim_config(fusion=config),
                                 runtime=rt)
    sim.run(steps)
    captured = rt.capture_stop()
    records = rt.records

    findings = verify_trace(records, captured)
    declared = build_dependency_graph(records, reduce=False)
    declared_waves = schedule_waves(declared)
    races = detect_races(records, captured, declared_waves)
    refined = build_dependency_graph(records, reduce=False, access_map=captured)
    refined_waves = schedule_waves(refined)
    refined_races = detect_races(records, captured, refined_waves)

    return {
        "config": config.name,
        "workload": workload,
        "steps": steps,
        "kernels": len(records),
        "declared_edges": declared.number_of_edges(),
        "declared_waves": len(declared_waves),
        "refined_edges": refined.number_of_edges(),
        "refined_waves": len(refined_waves),
        "findings": [str(f) for f in findings],
        "races": [str(r) for r in races],
        "refined_races": [str(r) for r in refined_races],
        "stable": sim.is_stable(),
    }


def threaded_check(config: FusionConfig, workload: str = "cavity2d-2lvl",
                   steps: int = 2) -> bool:
    """True when threaded execution is bit-identical to serial.

    Runs the workload twice — immediate mode, then the deferred wave
    executor with the debug gate *on* (each unique step shape is replayed
    under capture and race-checked before its first concurrent run) —
    and compares every level's ``f``/``fstar``/``ghost_acc`` bitwise.
    """
    import numpy as np

    wl_kwargs = small_workloads()[workload]
    wl = lid_cavity(**wl_kwargs)

    def _state(threaded: bool) -> list[tuple[Any, Any, Any]]:
        sim = Simulation.from_config(
            wl.spec, wl.sim_config(fusion=config, threaded=threaded,
                                   executor_debug=True))
        with sim:
            sim.run(steps)
            return [(b.f.copy(), b.fstar.copy(), b.ghost_acc.copy())
                    for b in sim.engine.levels]

    return all(np.array_equal(a, b)
               for sl, tl in zip(_state(False), _state(True))
               for a, b in zip(sl, tl))


def static_check(config: FusionConfig, workload: str = "cavity2d-2lvl",
                 steps: int = 2, cert_dir: str | None = None) -> dict[str, Any]:
    """Declaration-only analysis of one config; returns a report dict.

    Gates (each failure is a ``problem``):

    1. the plan-only stream equals the executing stream record-for-record
       (the declarations the analyzer saw are the declarations that run);
    2. symbolic access sets reproduce every declaration exactly
       (:func:`~repro.analysis.static.verify_static`);
    3. static access sets ⊇ dynamically captured ones (soundness of the
       static model);
    4. the fusion is proved a legal contraction of the modified baseline
       (:func:`~repro.analysis.static.prove_fusion_legality`);
    5. the lint pass reports no ``error``-severity findings;
    6. the emitted certificate validates against the live stream.

    With ``cert_dir``, the step-plan certificate is written there as
    ``<config>--<workload>.json``.
    """
    from .certificate import build_certificate, validate_certificate, \
        write_certificate
    from .lint import lint_stream
    from .static import plan_stream, prove_fusion_legality, \
        superset_findings, verify_static

    wl_kwargs = small_workloads()[workload]
    records, model = plan_stream(config, wl_kwargs, steps=steps)

    wl = lid_cavity(**wl_kwargs)
    rt = Runtime()
    rt.capture_start()
    sim = Simulation.from_config(wl.spec, wl.sim_config(fusion=config),
                                 runtime=rt)
    sim.run(steps)
    captured = rt.capture_stop()

    stream_mismatch = list(rt.records) != records
    static_map = model.access_map(records)
    findings = verify_static(records, model)
    superset = superset_findings(records, captured, static_map)
    proof = prove_fusion_legality(config, wl_kwargs, steps=steps)
    lint = lint_stream(records, model)
    cert = build_certificate(config.name, workload, records, model, proof,
                             lint, steps)
    cert_problems = validate_certificate(cert, records)
    cert_path = None
    if cert_dir is not None:
        cert_path = str(write_certificate(
            cert, f"{cert_dir}/{config.name}--{workload}.json"))

    aa = [f for f in lint.opportunities if f.check == "aa-double-buffer"]
    return {
        "config": config.name,
        "workload": workload,
        "steps": steps,
        "kernels": len(records),
        "stream_mismatch": stream_mismatch,
        "findings": [str(f) for f in findings],
        "superset": superset,
        "verdict": proof.verdict,
        "pairs_checked": proof.pairs_checked,
        "counterexamples": [str(c) for c in proof.counterexamples],
        "lint_errors": [str(f) for f in lint.errors],
        "lint_opportunities": len(lint.opportunities),
        "aa_bytes_saved": sum(f.bytes_saved for f in aa),
        "certificate_problems": cert_problems,
        "certificate": cert_path,
    }


def _static_negative_control(workload: str, steps: int) -> dict[str, Any]:
    """The seeded-illegal gate: a swapped declaration must be rejected."""
    from .static import seeded_illegal_proof

    proof = seeded_illegal_proof(small_workloads()[workload], steps=steps)
    return {
        "workload": workload,
        "verdict": proof.verdict,
        "rejected": proof.verdict == "illegal" and bool(proof.counterexamples),
        "counterexamples": [str(c) for c in proof.counterexamples],
    }


def _static_problems(report: dict[str, Any]) -> int:
    return ((1 if report["stream_mismatch"] else 0)
            + len(report["findings"]) + len(report["superset"])
            + (0 if report["verdict"] in ("legal", "baseline") else 1)
            + len(report["lint_errors"]) + len(report["certificate_problems"]))


def _run_static(configs: Sequence[FusionConfig], workloads: Sequence[str],
                steps: int, cert_dir: str | None,
                out: TextIO) -> tuple[list[dict[str, Any]], int]:
    reports = []
    total = 0
    for cfg in configs:
        for wl in workloads:
            rep = static_check(cfg, wl, steps=steps, cert_dir=cert_dir)
            reports.append(rep)
            n = _static_problems(rep)
            total += n
            status = "OK" if n == 0 else "FAIL"
            print(f"[{status}] static {rep['config']:>14s} x "
                  f"{rep['workload']:<14s} kernels={rep['kernels']:4d} "
                  f"verdict={rep['verdict']:8s} "
                  f"pairs={rep['pairs_checked']:4d} "
                  f"aa-saves={rep['aa_bytes_saved']} B", file=out)
            for msg in (rep["findings"] + rep["superset"]
                        + rep["lint_errors"] + rep["certificate_problems"]):
                print(f"    {msg}", file=out)
            if rep["stream_mismatch"]:
                print("    plan-only stream differs from executing stream",
                      file=out)
            if rep["verdict"] == "illegal":
                for c in rep["counterexamples"]:
                    print(f"    counterexample: {c}", file=out)
    controls = []
    for wl in workloads:
        ctl = _static_negative_control(wl, steps)
        controls.append(ctl)
        if not ctl["rejected"]:
            total += 1
            print(f"[FAIL] seeded illegal fusion NOT rejected on {wl}",
                  file=out)
        else:
            print(f"[OK] seeded illegal fusion rejected on {wl}: "
                  f"{ctl['counterexamples'][0]}", file=out)
    return reports + [{"negative_controls": controls}], total


def _run_reports(configs: Sequence[FusionConfig], workloads: Sequence[str],
                 steps: int, threaded: bool = False) -> list[dict[str, Any]]:
    reports = []
    for cfg in configs:
        for wl in workloads:
            rep = lint_config(cfg, wl, steps=steps)
            if threaded:
                rep["threaded_identical"] = threaded_check(cfg, wl, steps=steps)
            reports.append(rep)
    return reports


def _problems(report: dict[str, Any]) -> int:
    return (len(report["findings"]) + len(report["races"])
            + len(report["refined_races"]) + (0 if report["stable"] else 1)
            + (0 if report.get("threaded_identical", True) else 1))


def _print_text(reports: list[dict[str, Any]], out: TextIO) -> None:
    for rep in reports:
        status = "OK" if _problems(rep) == 0 else "FAIL"
        print(f"[{status}] {rep['config']:>14s} x {rep['workload']:<14s} "
              f"kernels={rep['kernels']:4d} "
              f"waves={rep['declared_waves']:3d} "
              f"(refined {rep['refined_waves']:3d}) "
              f"findings={len(rep['findings'])} races={len(rep['races'])}",
              file=out)
        for f in rep["findings"]:
            print(f"    declaration: {f}", file=out)
        for r in rep["races"]:
            print(f"    race: {r}", file=out)
        for r in rep["refined_races"]:
            print(f"    race (refined schedule): {r}", file=out)
        if not rep["stable"]:
            print("    simulation diverged (NaN/Inf populations)", file=out)
        if not rep.get("threaded_identical", True):
            print("    threaded execution differs from serial", file=out)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Trace-based declaration verifier and race detector "
                    "for every kernel-fusion configuration.")
    parser.add_argument("--config", action="append", default=None,
                        metavar="NAME",
                        help="lint one configuration (repeatable); "
                             f"choices: {', '.join(c.name for c in ALL_CONFIGS)}")
    parser.add_argument("--all-configs", action="store_true",
                        help="lint the full Fig. 9 ablation plus the "
                             "original baseline (default when no --config)")
    parser.add_argument("--workload", action="append", default=None,
                        choices=sorted(small_workloads()),
                        help="workload(s) to lint on (default: all)")
    parser.add_argument("--steps", type=int, default=2,
                        help="coarse time steps to trace (default 2)")
    parser.add_argument("--threaded", action="store_true",
                        help="also verify the threaded wave executor is "
                             "bit-identical to serial execution")
    parser.add_argument("--static", action="store_true",
                        help="declaration-only mode: symbolic access sets, "
                             "fusion-legality proofs, lint pass, step-plan "
                             "certificates and the static ⊇ dynamic "
                             "cross-check (plus a seeded-illegal control)")
    parser.add_argument("--cert-dir", default=None, metavar="DIR",
                        help="with --static: write step-plan certificates "
                             "to DIR (one JSON per config x workload)")
    parser.add_argument("--json", action="store_true",
                        help="emit a machine-readable JSON report")
    args = parser.parse_args(argv)

    if args.config:
        try:
            configs = [get_config(name) for name in args.config]
        except KeyError as exc:
            parser.error(str(exc.args[0]))
    else:
        configs = list(ALL_CONFIGS)
    workloads = args.workload or sorted(small_workloads())

    if args.static:
        out = sys.stderr if args.json else sys.stdout
        reports, total = _run_static(configs, workloads, args.steps,
                                     args.cert_dir, out)
        if args.json:
            json.dump({"runs": reports, "total_problems": total}, sys.stdout,
                      indent=2)
            print()
        else:
            print(f"{len(reports) - 1} static runs, {total} problem(s)")
        return 1 if total else 0

    reports = _run_reports(configs, workloads, args.steps,
                           threaded=args.threaded)
    total = sum(_problems(r) for r in reports)
    if args.json:
        json.dump({"runs": reports, "total_problems": total}, sys.stdout,
                  indent=2)
        print()
    else:
        _print_text(reports, sys.stdout)
        print(f"{len(reports)} runs, {total} problem(s)")
    return 1 if total else 0

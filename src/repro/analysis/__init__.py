"""Trace-based verification of the mini-Neon programming model.

The Neon runtime (paper Section V-C) derives the dependency DAG — and
therefore every synchronisation the schedule contains — from the field
sets each kernel *declares*.  A declaration that drifts from the kernel
body's actual buffer accesses silently corrupts the schedule, which on a
real GPU is a data race.  This subsystem closes that loop:

* :mod:`repro.analysis.capture` — shadow-records the *actual* per-field,
  per-row-range reads/writes (including atomic Accumulate scatters) each
  kernel body performs while it executes;
* :mod:`repro.analysis.verify` — diffs captured accesses against each
  :class:`~repro.neon.runtime.KernelRecord`'s declared reads/writes and
  byte counts;
* :mod:`repro.analysis.races` — flags same-wave kernels whose observed
  accesses conflict at row-interval granularity (atomic-atomic pairs are
  commutative and exempt);
* :mod:`repro.analysis.cli` — ``python -m repro.analysis`` lints every
  fusion configuration on small multigrid workloads.
"""

from .capture import Access, AccessTracer
from .cli import ALL_CONFIGS, lint_config, main, small_workloads
from .races import Race, detect_races
from .verify import Finding, verify_record, verify_trace

__all__ = [
    "ALL_CONFIGS",
    "Access",
    "AccessTracer",
    "Finding",
    "Race",
    "detect_races",
    "lint_config",
    "main",
    "small_workloads",
    "verify_record",
    "verify_trace",
]

"""Trace-based and declaration-only verification of the mini-Neon model.

The Neon runtime (paper Section V-C) derives the dependency DAG — and
therefore every synchronisation the schedule contains — from the field
sets each kernel *declares*.  A declaration that drifts from the kernel
body's actual buffer accesses silently corrupts the schedule, which on a
real GPU is a data race.  This subsystem closes that loop twice over:

dynamically (PR 1):

* :mod:`repro.analysis.capture` — shadow-records the *actual* per-field,
  per-row-range reads/writes (including atomic Accumulate scatters) each
  kernel body performs while it executes;
* :mod:`repro.analysis.verify` — diffs captured accesses against each
  :class:`~repro.neon.runtime.KernelRecord`'s declared reads/writes and
  byte counts;
* :mod:`repro.analysis.races` — flags same-wave kernels whose observed
  accesses conflict at row-interval granularity (atomic-atomic pairs are
  commutative and exempt);

and statically, from declarations plus grid geometry alone — nothing
executes:

* :mod:`repro.analysis.static` — symbolic per-kernel access sets,
  fusion-legality contraction proofs with structured counterexamples,
  and the static ⊇ dynamic containment cross-check;
* :mod:`repro.analysis.lint` — dead stores, redundant loads, arena
  lifetime/aliasing violations and AA-pattern double-buffer
  opportunities priced by the :mod:`repro.gpu` cost model;
* :mod:`repro.analysis.certificate` — machine-readable step-plan
  certificates (access sets, wave schedule, legality verdict, lint
  findings) the future compiled backend consumes as its admission
  contract;
* :mod:`repro.analysis.cli` — ``python -m repro.analysis`` lints every
  fusion configuration on small multigrid workloads; ``--static`` runs
  the declaration-only gate.
"""

from .capture import Access, AccessTracer
from .certificate import (CERTIFICATE_VERSION, build_certificate,
                          load_certificate, stream_digest,
                          validate_certificate, write_certificate)
from .cli import ALL_CONFIGS, lint_config, main, small_workloads, static_check
from .lint import LintFinding, LintReport, lint_stream
from .races import Race, detect_races
from .static import (AccessModel, Counterexample, LegalityProof, StaticAccess,
                     plan_stream, prove_fusion_legality, seeded_illegal_proof,
                     superset_findings, verify_static)
from .verify import Finding, verify_record, verify_trace

__all__ = [
    "ALL_CONFIGS",
    "Access",
    "AccessModel",
    "AccessTracer",
    "CERTIFICATE_VERSION",
    "Counterexample",
    "Finding",
    "LegalityProof",
    "LintFinding",
    "LintReport",
    "Race",
    "StaticAccess",
    "build_certificate",
    "detect_races",
    "lint_config",
    "lint_stream",
    "load_certificate",
    "main",
    "plan_stream",
    "prove_fusion_legality",
    "seeded_illegal_proof",
    "small_workloads",
    "static_check",
    "stream_digest",
    "superset_findings",
    "validate_certificate",
    "verify_record",
    "verify_static",
    "verify_trace",
    "write_certificate",
]

"""Wave-level race detection over observed accesses.

:func:`~repro.neon.graph.schedule_waves` partitions a kernel trace into
maximal concurrent waves — kernels in one wave run with no
synchronisation between them, so any pair whose *observed* accesses
conflict on overlapping row intervals of the same field is a data race on
the device.  Conflict rules:

* read / read — never a conflict;
* atomic / atomic — commutative (the Accumulate scatter is an
  atomic-add), never a conflict;
* write / write, write / read — a conflict when row intervals overlap;
* atomic / plain (read or write) — a conflict when intervals overlap:
  atomicity does not order an atomic add against a plain access.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..neon.runtime import KernelRecord
from .capture import ATOMIC, META, READ, Access

__all__ = ["Race", "access_conflict", "detect_races"]


@dataclass(frozen=True)
class Race:
    """Two same-wave kernels with conflicting observed accesses."""

    wave: int
    field: str
    hazard: str               # "waw" | "rw" | "atomic-plain"
    a: int                    # record index of the first kernel
    b: int                    # record index of the second kernel
    kernel_a: str
    kernel_b: str
    kind_a: str
    kind_b: str
    interval_a: tuple[int, int]
    interval_b: tuple[int, int]

    def __str__(self) -> str:
        return (f"wave {self.wave}: {self.kernel_a}#{self.a} {self.kind_a} "
                f"{self.field}{list(self.interval_a)} races "
                f"{self.kernel_b}#{self.b} {self.kind_b} "
                f"{self.field}{list(self.interval_b)} ({self.hazard})")


def access_conflict(a: Access, b: Access) -> str | None:
    """Hazard name if the two accesses conflict when concurrent, else None."""
    if a.kind == META or b.kind == META:
        return None
    if a.kind == READ and b.kind == READ:
        return None
    if a.kind == ATOMIC and b.kind == ATOMIC:
        return None  # commutative atomic adds
    if not a.overlaps(b):
        return None
    if ATOMIC in (a.kind, b.kind):
        return "atomic-plain"
    if a.kind == READ or b.kind == READ:
        return "rw"
    return "waw"


def detect_races(records: Sequence[KernelRecord],
                 captured: Mapping[int, Sequence[Access]],
                 waves: Sequence[Sequence[int]]) -> list[Race]:
    """Flag every conflicting same-wave pair at row-interval granularity.

    ``waves`` is :func:`~repro.neon.graph.schedule_waves` output over the
    same ``records``; ``captured`` the runtime's observed accesses.  A
    record without captured accesses contributes nothing — run the
    declaration verifier alongside to catch such gaps.
    """
    out: list[Race] = []
    for w_idx, wave in enumerate(waves):
        if len(wave) < 2:
            continue
        per_field: dict[object, list[tuple[int, Access]]] = {}
        for idx in wave:
            for acc in captured.get(idx, ()):
                if acc.field is None:
                    continue
                per_field.setdefault(acc.field, []).append((idx, acc))
        for field, entries in per_field.items():
            for n1, (i, a) in enumerate(entries):
                for j, b in entries[n1 + 1:]:
                    if i == j:
                        continue
                    hazard = access_conflict(a, b)
                    if hazard is None:
                        continue
                    out.append(Race(
                        wave=w_idx, field=str(field), hazard=hazard,
                        a=i, b=j,
                        kernel_a=f"{records[i].name}{records[i].level}",
                        kernel_b=f"{records[j].name}{records[j].level}",
                        kind_a=a.kind, kind_b=b.kind,
                        interval_a=(a.lo, a.hi), interval_b=(b.lo, b.hi)))
    return out

"""Per-(cell, direction) pull classification used by the streaming kernels.

During streaming, every owned cell pulls population ``f_i`` from the
position ``x - e_i``.  The compile step (:mod:`repro.grid.multigrid`)
classifies each pull once, so the time loop is pure vectorised gathers:

* ``INTERIOR``    — source owned by the same level (includes periodic wraps);
* ``BOUNCEBACK``  — source is a resting solid / wall: halfway bounce-back;
* ``MOVING``      — source is a moving wall (lid, inlet): bounce-back plus
  the ``2 w_i rho_w (e_i . u_w)/c_s^2`` momentum term;
* ``OUTFLOW``     — source is an open outlet: the missing population is
  assigned the lattice weight ``w_i`` (paper Section VI-B);
* ``SLIP``        — source is a free-slip (symmetry) plane: specular
  reflection, the wall-normal velocity component flips;
* ``EXPLOSION``   — source owned by the next-coarser level (Eq. 10);
* ``COALESCENCE`` — source owned by the next-finer level: read the ghost
  accumulator and average (Eq. 11).
"""

from __future__ import annotations

import numpy as np

INTERIOR = np.int8(0)
BOUNCEBACK = np.int8(1)
MOVING = np.int8(2)
OUTFLOW = np.int8(3)
EXPLOSION = np.int8(4)
COALESCENCE = np.int8(5)
SLIP = np.int8(6)

KIND_NAMES = {
    int(INTERIOR): "interior",
    int(BOUNCEBACK): "bounceback",
    int(MOVING): "moving",
    int(OUTFLOW): "outflow",
    int(EXPLOSION): "explosion",
    int(COALESCENCE): "coalescence",
    int(SLIP): "slip",
}

"""Space-filling curves for block ordering (paper Section V-A).

Blocks are arranged in memory along a space-filling curve — Sweep
(lexicographic), Morton (Z-order) or Hilbert — to improve locality between
neighbouring blocks.  All encoders are vectorised over arrays of integer
coordinates.
"""

from __future__ import annotations

import numpy as np

__all__ = ["morton_key", "morton_decode", "hilbert_key", "sweep_key",
           "block_order", "CURVES"]

CURVES = ("sweep", "morton", "hilbert")


def _bits_needed(shape) -> int:
    m = max(int(s) for s in shape)
    if m <= 1:
        return 1
    return int(m - 1).bit_length()


def _interleave(coords: np.ndarray, bits: int) -> np.ndarray:
    """Interleave ``(N, d)`` coordinates bit-by-bit into a single uint64 key.

    Axis 0 contributes the most significant bit of each ``d``-bit group.
    """
    coords = np.asarray(coords, dtype=np.uint64)
    n, d = coords.shape
    if bits * d > 64:
        raise ValueError(f"{bits} bits x {d} axes exceeds 64-bit keys")
    key = np.zeros(n, dtype=np.uint64)
    for b in range(bits - 1, -1, -1):
        for axis in range(d):
            bit = (coords[:, axis] >> np.uint64(b)) & np.uint64(1)
            key = (key << np.uint64(1)) | bit
    return key


def morton_key(coords: np.ndarray, bits: int | None = None,
               shape=None) -> np.ndarray:
    """Morton (Z-order) key of each coordinate row of ``coords`` ``(N, d)``."""
    coords = np.asarray(coords)
    if (coords < 0).any():
        raise ValueError("Morton keys require non-negative coordinates")
    if bits is None:
        bits = _bits_needed(shape if shape is not None else coords.max(axis=0) + 1)
    return _interleave(coords, bits)


def morton_decode(keys: np.ndarray, d: int, bits: int) -> np.ndarray:
    """Inverse of :func:`morton_key`; returns ``(N, d)`` coordinates."""
    keys = np.asarray(keys, dtype=np.uint64)
    out = np.zeros((keys.shape[0], d), dtype=np.uint64)
    for b in range(bits):
        for axis in range(d):
            shift = np.uint64(b * d + (d - 1 - axis))
            out[:, axis] |= ((keys >> shift) & np.uint64(1)) << np.uint64(b)
    return out.astype(np.int64)


def _axes_to_transpose(x: np.ndarray, bits: int) -> np.ndarray:
    """Skilling's AxesToTranspose, vectorised over rows of ``x`` ``(N, d)``."""
    x = x.astype(np.int64).copy()
    n = x.shape[1]
    m = 1 << (bits - 1)
    q = m
    while q > 1:
        p = q - 1
        for i in range(n):
            cond = (x[:, i] & q) != 0
            x[cond, 0] ^= p  # invert
            t = (x[:, 0] ^ x[:, i]) & p  # exchange
            t[cond] = 0
            x[:, 0] ^= t
            x[:, i] ^= t
        q >>= 1
    for i in range(1, n):  # Gray encode
        x[:, i] ^= x[:, i - 1]
    t = np.zeros(x.shape[0], dtype=np.int64)
    q = m
    while q > 1:
        cond = (x[:, n - 1] & q) != 0
        t[cond] ^= q - 1
        q >>= 1
    x ^= t[:, None]
    return x


def hilbert_key(coords: np.ndarray, bits: int | None = None,
                shape=None) -> np.ndarray:
    """Hilbert-curve key of each coordinate row (Skilling's algorithm)."""
    coords = np.asarray(coords)
    if (coords < 0).any():
        raise ValueError("Hilbert keys require non-negative coordinates")
    if bits is None:
        bits = _bits_needed(shape if shape is not None else coords.max(axis=0) + 1)
    transposed = _axes_to_transpose(np.atleast_2d(coords), bits)
    return _interleave(transposed, bits)


def sweep_key(coords: np.ndarray, shape) -> np.ndarray:
    """Plain lexicographic (row-major) key over a box of the given shape."""
    coords = np.asarray(coords, dtype=np.int64)
    shape = np.asarray(shape, dtype=np.int64)
    key = np.zeros(coords.shape[0], dtype=np.int64)
    for axis in range(coords.shape[1]):
        key = key * shape[axis] + coords[:, axis]
    return key.astype(np.uint64)


def block_order(coords: np.ndarray, shape, curve: str = "morton") -> np.ndarray:
    """Permutation that sorts blocks along the requested space-filling curve.

    Returns indices such that ``coords[perm]`` is curve-ordered.  Ties are
    impossible because keys are injective over the box.
    """
    curve = curve.lower()
    if curve == "sweep":
        keys = sweep_key(coords, shape)
    elif curve == "morton":
        keys = morton_key(coords, shape=shape)
    elif curve == "hilbert":
        keys = hilbert_key(coords, shape=shape)
    else:
        raise KeyError(f"unknown curve {curve!r}; choose from {CURVES}")
    return np.argsort(keys, kind="stable")

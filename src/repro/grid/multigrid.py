"""Multi-resolution grid stack and its compile step (paper Sections III & V-B).

The grid-refinement data structure is a *stack of uniform block-sparse
grids*, one per level, with glue information for the multi-level
operations (Explosion, Coalescence).  Level 0 is the coarsest; a level-L
cell subdivides into ``2^d`` level-(L+1) cells; the jump between
neighbouring cells is at most one level (strongly balanced octree).

Construction happens in two phases:

1. :class:`RefinementSpec` describes the domain: the coarse shape, nested
   refinement regions (each given at the resolution of the level being
   subdivided, which guarantees octree alignment), an optional solid
   obstacle at the finest resolution, and the boundary conditions of the
   six domain faces.
2. :func:`build_multigrid` validates the spec, derives the per-level
   ownership partition, allocates one :class:`BlockSparseGrid` per level
   (owned cells + the ghost layers of *both* algorithm variants) and
   pre-classifies every (cell, direction) streaming pull into the kinds of
   :mod:`repro.grid.kinds`.  After this compile step the time loop is pure
   vectorised gathers — the CPU analogue of the paper's precomputed
   neighbour/ghost indices on the GPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import ndimage

from ..core.lattice import Lattice
from . import kinds
from .sparse_grid import BlockSparseGrid

__all__ = ["FaceBC", "DomainBC", "RefinementSpec", "CompiledLevel",
           "MultiGrid", "build_multigrid"]

_FACE_KINDS = ("wall", "moving", "inlet", "outflow", "periodic", "slip")
# When a diagonal pull exits through several faces at once, the face with
# the highest precedence decides the boundary treatment.
_PRECEDENCE = {"inlet": 0, "moving": 1, "wall": 2, "slip": 3, "outflow": 4}

#: Owner codes used in the per-level label arrays.
_SELF, _FINER, _COARSER, _SOLID = np.int8(0), np.int8(1), np.int8(2), np.int8(3)


@dataclass(frozen=True)
class FaceBC:
    """Boundary condition of one domain face."""

    kind: str = "wall"
    velocity: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if self.kind not in _FACE_KINDS:
            raise ValueError(f"unknown face BC {self.kind!r}; choose from {_FACE_KINDS}")
        if self.kind in ("moving", "inlet") and self.velocity is None:
            raise ValueError(f"{self.kind!r} faces need a velocity")


def _face_names(d: int) -> list[str]:
    return [f"{'xyz'[a]}{s}" for a in range(d) for s in ("-", "+")]


@dataclass(frozen=True)
class DomainBC:
    """Boundary conditions for all faces of the bounding box.

    ``faces`` maps face names (``"x-"``, ``"x+"``, ``"y-"``, ...) to
    :class:`FaceBC`; unspecified faces default to resting no-slip walls,
    the paper's default (halfway bounce-back).
    """

    faces: dict[str, FaceBC] = field(default_factory=dict)

    def face(self, name: str) -> FaceBC:
        return self.faces.get(name, FaceBC("wall"))

    def validate(self, d: int) -> None:
        valid = set(_face_names(d))
        for name in self.faces:
            if name not in valid:
                raise ValueError(f"unknown face {name!r} for a {d}-D domain")
        for axis in range(d):
            lo, hi = self.face(f"{'xyz'[axis]}-"), self.face(f"{'xyz'[axis]}+")
            if (lo.kind == "periodic") != (hi.kind == "periodic"):
                raise ValueError(f"axis {'xyz'[axis]}: periodic BCs must be paired")

    def periodic_axes(self, d: int) -> list[bool]:
        return [self.face(f"{'xyz'[a]}-").kind == "periodic" for a in range(d)]


@dataclass
class RefinementSpec:
    """Input description of a multi-resolution domain.

    Attributes
    ----------
    base_shape:
        Domain size in *coarse* (level-0) cells.
    refine_regions:
        ``refine_regions[k]`` is a boolean array at level-``k`` resolution
        (shape ``base_shape * 2^k``) flagging the level-``k`` cells to be
        subdivided into level ``k+1``.  An empty list gives a uniform grid.
    solid:
        Optional boolean obstacle mask at the *finest* resolution; solid
        cells are removed from the fluid and exchange momentum with it
        through halfway bounce-back.
    bc:
        Boundary conditions of the domain faces.
    block_size / curve:
        Storage parameters forwarded to :class:`BlockSparseGrid`.
    """

    base_shape: tuple[int, ...]
    refine_regions: list[np.ndarray] = field(default_factory=list)
    solid: np.ndarray | None = None
    bc: DomainBC = field(default_factory=DomainBC)
    block_size: int = 4
    curve: str = "morton"

    @property
    def num_levels(self) -> int:
        return len(self.refine_regions) + 1

    @property
    def d(self) -> int:
        return len(self.base_shape)

    def level_shape(self, level: int) -> tuple[int, ...]:
        return tuple(int(s) * 2 ** level for s in self.base_shape)


def _upsample2(mask: np.ndarray) -> np.ndarray:
    out = mask
    for axis in range(mask.ndim):
        out = np.repeat(out, 2, axis=axis)
    return out


def _dilate(mask: np.ndarray, radius: int,
            periodic: list[bool] | None = None) -> np.ndarray:
    """Chebyshev dilation, wrapping around periodic axes.

    Refinement interfaces interact across periodic seams (a cell at x=0
    neighbours x=N-1), so ghost layers and the level-jump validation must
    see the wrapped adjacency.
    """
    if not mask.any():
        return mask.copy()
    if periodic is None or not any(periodic):
        footprint = np.ones((2 * radius + 1,) * mask.ndim, dtype=bool)
        return ndimage.binary_dilation(mask, structure=footprint)
    out = mask.copy()
    for _ in range(radius):
        # sequential per-axis dilation yields the full Chebyshev footprint
        for axis in range(mask.ndim):
            snap = out.copy()
            for shift in (-1, 1):
                rolled = np.roll(snap, shift, axis=axis)
                if not periodic[axis]:
                    # rolled-in values from the far side are invalid
                    edge = [slice(None)] * mask.ndim
                    edge[axis] = 0 if shift == 1 else -1
                    rolled[tuple(edge)] = False
                out |= rolled
    return out


def _validate_spec(spec: RefinementSpec) -> None:
    spec.bc.validate(spec.d)
    per = spec.bc.periodic_axes(spec.d)
    covered = np.ones(spec.base_shape, dtype=bool)
    for k, region in enumerate(spec.refine_regions):
        region = np.asarray(region, dtype=bool)
        expected = spec.level_shape(k)
        if region.shape != expected:
            raise ValueError(
                f"refine_regions[{k}] has shape {region.shape}, expected {expected}"
            )
        if not region.any():
            raise ValueError(f"refine_regions[{k}] refines nothing")
        if (region & ~covered).any():
            raise ValueError(
                f"refine_regions[{k}] refines cells not covered by level {k} "
                "(refinement regions must nest)"
            )
        # Strong balance: a refined cell may not touch a cell that level k
        # does not cover, otherwise the level jump would exceed one.
        if (_dilate(region, 1, per) & ~covered).any():
            raise ValueError(
                f"refine_regions[{k}] violates the max level jump of 1 "
                "(needs at least one unrefined cell of the previous level "
                "between successive refinement boundaries)"
            )
        # The coarse-ghost layer of level k lives in the first level-k cell
        # ring inside the refined region; its level-(k+1) children must be
        # owned by level k+1, so the next interface has to stay clear of it.
        if k + 1 < len(spec.refine_regions):
            owned_k = covered & ~region
            ghost_k = _dilate(owned_k, 1, per) & region
            nxt = np.asarray(spec.refine_regions[k + 1], dtype=bool)
            if (_upsample2(ghost_k) & nxt).any():
                raise ValueError(
                    f"refine_regions[{k + 1}] starts too close to the "
                    f"level-{k}/{k + 1} interface: the ghost layer's children "
                    f"must remain level-{k + 1} cells (leave at least two "
                    f"level-{k + 1} cells between successive interfaces)"
                )
        covered = _upsample2(region)
    if spec.solid is not None:
        solid = np.asarray(spec.solid, dtype=bool)
        finest = spec.level_shape(spec.num_levels - 1)
        if solid.shape != finest:
            raise ValueError(
                f"solid mask has shape {solid.shape}, expected finest-level {finest}"
            )
        if solid.any() and spec.num_levels > 1 and (_dilate(solid, 1, per) & ~covered).any():
            raise ValueError(
                "solid cells must be surrounded by finest-level cells "
                "(refine around the obstacle)"
            )


@dataclass
class CompiledLevel:
    """One level of the stack with every precomputed streaming map.

    All COO tables (``bb_*``, ``mov_*``, ``out_*``, ``exp_*``, ``coal_*``)
    index into the *owned-cell row space* (0..n_owned-1) paired with a
    lattice direction.  ``pull_src`` holds, per direction and owned cell,
    the same-level source slot for interior pulls (self-referencing where a
    special kind applies; those entries are patched by the kind tables).
    """

    level: int
    grid: BlockSparseGrid
    owned_slots: np.ndarray           # (n_owned,) slot ids, ordered by slot
    ghost_slots: np.ndarray           # coarse-ghost accumulator cells
    fine_ghost_slots: np.ndarray      # 4-layer fine ghosts (original baseline)
    pull_src: np.ndarray              # (Q, n_owned) same-level source slots
    kind: np.ndarray                  # (Q, n_owned) int8 pull classification
    # -- boundary tables -----------------------------------------------------
    bb_q: np.ndarray; bb_cell: np.ndarray
    mov_q: np.ndarray; mov_cell: np.ndarray; mov_term: np.ndarray
    out_q: np.ndarray; out_cell: np.ndarray; out_val: np.ndarray
    sl_q: np.ndarray; sl_cell: np.ndarray; sl_src_q: np.ndarray; sl_src: np.ndarray
    # -- solid-link subset of the bounce-back table (momentum exchange) ------
    sb_q: np.ndarray; sb_cell: np.ndarray
    # -- cross-level tables ----------------------------------------------------
    exp_q: np.ndarray; exp_cell: np.ndarray; exp_src: np.ndarray       # coarse slots
    exp_ghost_src: np.ndarray        # same values but as own fine-ghost slots (4a)
    coal_q: np.ndarray; coal_cell: np.ndarray; coal_src: np.ndarray    # ghost rows
    # -- accumulate maps (present when a finer level exists) -----------------
    acc_fine_slots: np.ndarray       # slots in the *finer* level's arrays
    acc_ghost_rows: np.ndarray       # rows of this level's ghost accumulator
    # -- original-baseline explosion copy (coarse f* -> fine ghost slots) ----
    fg_slots: np.ndarray             # this level's fine-ghost slots (4a)
    fg_coarse_src: np.ndarray        # source slots in the coarser level

    @property
    def n_owned(self) -> int:
        return int(self.owned_slots.size)

    @property
    def n_ghost(self) -> int:
        return int(self.ghost_slots.size)

    @property
    def n_alloc(self) -> int:
        return self.grid.n_alloc

    @property
    def n_interface_fine(self) -> int:
        """Owned cells with at least one explosion pull (fine side of an interface)."""
        return int(np.unique(self.exp_cell).size)

    @property
    def n_interface_coarse(self) -> int:
        """Owned cells with at least one coalescence pull (coarse side)."""
        return int(np.unique(self.coal_cell).size)


@dataclass
class MultiGrid:
    """The compiled stack of levels plus shared metadata."""

    spec: RefinementSpec
    lattice: Lattice
    levels: list[CompiledLevel]

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    @property
    def d(self) -> int:
        return self.spec.d

    def total_active(self) -> int:
        """Active voxels over all levels, ghost cells excluded (paper's V_L sum)."""
        return sum(lv.n_owned for lv in self.levels)

    def active_per_level(self) -> list[int]:
        return [lv.n_owned for lv in self.levels]

    def finest_first_distribution(self) -> list[int]:
        """Voxel counts ordered finest-to-coarsest, as reported in Table I."""
        return [lv.n_owned for lv in reversed(self.levels)]


def _owner_labels(spec: RefinementSpec) -> list[np.ndarray]:
    """Per-level label arrays over the full box at each level's resolution."""
    labels: list[np.ndarray] = []
    covered = np.ones(spec.base_shape, dtype=bool)
    for lvl in range(spec.num_levels):
        lab = np.full(spec.level_shape(lvl), _COARSER, dtype=np.int8)
        lab[covered] = _SELF
        if lvl < spec.num_levels - 1:
            region = np.asarray(spec.refine_regions[lvl], dtype=bool)
            lab[region] = _FINER
            covered = _upsample2(region)
        elif spec.solid is not None:
            lab[np.asarray(spec.solid, dtype=bool)] = _SOLID
        labels.append(lab)
    return labels


def _compile_level(spec: RefinementSpec, lat: Lattice, lvl: int,
                   labels: list[np.ndarray]) -> tuple[BlockSparseGrid, dict]:
    """Build one level's sparse grid and classify every streaming pull."""
    d, Q = spec.d, lat.q
    lab = labels[lvl]
    shape = np.asarray(spec.level_shape(lvl), dtype=np.int64)
    owned_mask = lab == _SELF
    # Coarse-ghost layer: one layer of this level's cells inside the finer
    # region, adjacent to owned cells (Section IV-A).
    per = spec.bc.periodic_axes(d)
    if lvl < spec.num_levels - 1:
        ghost_mask = _dilate(owned_mask, 1, per) & (lab == _FINER)
    else:
        ghost_mask = np.zeros_like(owned_mask)
    # Fine-ghost region of the original baseline: four layers of this
    # level's cells outside the owned region, overlapping the coarser
    # parent (Section III / Fig. 4a).
    if lvl > 0:
        parent_owned = _upsample2(labels[lvl - 1] == _SELF)
        fine_ghost_mask = _dilate(owned_mask, 4, per) & parent_owned
    else:
        fine_ghost_mask = np.zeros_like(owned_mask)
    alloc = owned_mask | ghost_mask | fine_ghost_mask
    grid = BlockSparseGrid.from_mask(alloc, level=lvl, block_size=spec.block_size,
                                     curve=spec.curve)
    pos_all = grid.cell_positions()
    # blocks are padded to B^d: slots past the box boundary are never active
    inside = np.all(pos_all < shape, axis=1)

    def slots_of(mask: np.ndarray) -> np.ndarray:
        flag = np.zeros(grid.n_alloc, dtype=bool)
        flag[inside] = mask[tuple(pos_all[inside].T)]
        return np.flatnonzero(flag & grid.active())

    owned_slots = slots_of(owned_mask)
    ghost_slots = slots_of(ghost_mask)
    fine_ghost_slots = slots_of(fine_ghost_mask)
    return grid, {
        "owned_mask": owned_mask, "ghost_mask": ghost_mask,
        "owned_slots": owned_slots, "ghost_slots": ghost_slots,
        "fine_ghost_slots": fine_ghost_slots, "shape": shape,
    }


def build_multigrid(spec: RefinementSpec, lat: Lattice) -> MultiGrid:
    """Validate ``spec`` and compile the full multi-resolution stack."""
    if lat.d != spec.d:
        raise ValueError(f"lattice is {lat.d}-D but the domain is {spec.d}-D")
    _validate_spec(spec)
    labels = _owner_labels(spec)
    Q, d = lat.q, spec.d
    periodic = spec.bc.periodic_axes(d)
    face_names = _face_names(d)

    pre = [_compile_level(spec, lat, lvl, labels) for lvl in range(spec.num_levels)]
    grids = [g for g, _ in pre]
    metas = [m for _, m in pre]

    levels: list[CompiledLevel] = []
    for lvl in range(spec.num_levels):
        grid, meta = grids[lvl], metas[lvl]
        lab = labels[lvl]
        shape = meta["shape"]
        owned_slots = meta["owned_slots"]
        ghost_slots = meta["ghost_slots"]
        fine_ghost_slots = meta["fine_ghost_slots"]
        n_owned = owned_slots.size
        pos = grid.cell_positions()[owned_slots]          # (n_owned, d)

        ghost_row_of_slot = np.full(grid.n_alloc, -1, dtype=np.int64)
        ghost_row_of_slot[ghost_slots] = np.arange(ghost_slots.size)

        pull_src = np.tile(owned_slots, (Q, 1))
        kind = np.full((Q, n_owned), kinds.INTERIOR, dtype=np.int8)

        bb, mov, out, exp, coal = [], [], [], [], []
        solid_bb, slip = [], []
        for q in range(Q):
            v = lat.e[q]
            if not v.any():  # rest population: trivially interior (self)
                continue
            src = pos - v                                  # pull source position
            for axis in range(d):
                if periodic[axis]:
                    src[:, axis] %= shape[axis]
            below = src < 0
            above = src >= shape
            outside = below | above
            is_out = outside.any(axis=1)
            inside_rows = np.flatnonzero(~is_out)

            if inside_rows.size:
                s = src[inside_rows]
                code = lab[tuple(s.T)]
                sel_self = code == _SELF
                rows = inside_rows[sel_self]
                slots = grid.lookup(s[sel_self])
                pull_src[q, rows] = slots
                sel_fine = code == _FINER
                if sel_fine.any():
                    rows_f = inside_rows[sel_fine]
                    gslots = grid.lookup(s[sel_fine])
                    coal.append((q, rows_f, ghost_row_of_slot[gslots]))
                    kind[q, rows_f] = kinds.COALESCENCE
                sel_coarse = code == _COARSER
                if sel_coarse.any():
                    rows_c = inside_rows[sel_coarse]
                    parent_pos = s[sel_coarse] // 2
                    cslots = grids[lvl - 1].lookup(parent_pos)
                    own_ghost = grid.lookup(s[sel_coarse])   # 4a alternative source
                    exp.append((q, rows_c, cslots, own_ghost))
                    kind[q, rows_c] = kinds.EXPLOSION
                sel_solid = code == _SOLID
                if sel_solid.any():
                    rows_s = inside_rows[sel_solid]
                    bb.append((q, rows_s))
                    solid_bb.append((q, rows_s))
                    kind[q, rows_s] = kinds.BOUNCEBACK

            if is_out.any():
                rows_o = np.flatnonzero(is_out)
                # pick the governing face by precedence among crossed faces
                best_rank = np.full(rows_o.size, 99, dtype=np.int64)
                best_face = np.zeros(rows_o.size, dtype=np.int64)
                for axis in range(d):
                    if periodic[axis]:  # wrapped already, cannot be crossed
                        continue
                    for side, crossed in ((0, below[rows_o, axis]),
                                          (1, above[rows_o, axis])):
                        fi = 2 * axis + side
                        rank = _PRECEDENCE[spec.bc.face(face_names[fi]).kind]
                        better = crossed & (rank < best_rank)
                        best_rank[better] = rank
                        best_face[better] = fi
                for fi in np.unique(best_face):
                    fbc = spec.bc.face(face_names[fi])
                    rows = rows_o[best_face == fi]
                    if fbc.kind == "wall":
                        bb.append((q, rows))
                        kind[q, rows] = kinds.BOUNCEBACK
                    elif fbc.kind in ("moving", "inlet"):
                        uw = np.zeros(d) if fbc.velocity is None else np.asarray(fbc.velocity)
                        term = 2.0 * lat.w[q] * float(lat.ef[q] @ uw) / lat.cs2
                        mov.append((q, rows, term))
                        kind[q, rows] = kinds.MOVING
                    elif fbc.kind == "slip":
                        # Specular reflection at the halfway plane: sample
                        # the mirrored direction at the tangential
                        # neighbour on the cell's own wall-adjacent row
                        # (the mirror image of the out-of-domain source).
                        axis = fi // 2
                        mvec = lat.e[q].copy()
                        mvec[axis] = -mvec[axis]
                        mq = lat.direction_index(mvec)
                        tvec = lat.e[q].copy()
                        tvec[axis] = 0
                        mpos = pos[rows] - tvec
                        for ax in range(d):  # corners: wrap periodic axes
                            if periodic[ax]:
                                mpos[:, ax] %= shape[ax]
                        ok = np.all((mpos >= 0) & (mpos < shape), axis=1)
                        ok_idx = np.zeros(rows.size, dtype=bool)
                        if ok.any():
                            sl_code = lab[tuple(mpos[ok].T)]
                            good = sl_code == _SELF
                            tmp = np.flatnonzero(ok)
                            ok_idx[tmp[good]] = True
                        if ok_idx.any():
                            srows = rows[ok_idx]
                            slots = grid.lookup(mpos[ok_idx])
                            slip.append((q, srows, mq, slots))
                            kind[q, srows] = kinds.SLIP
                        if (~ok_idx).any():
                            # mirrored source unavailable (interface or
                            # corner): degrade gracefully to bounce-back
                            brows = rows[~ok_idx]
                            bb.append((q, brows))
                            kind[q, brows] = kinds.BOUNCEBACK
                    elif fbc.kind == "outflow":
                        out.append((q, rows))
                        kind[q, rows] = kinds.OUTFLOW
                    else:  # pragma: no cover - periodic was wrapped already
                        raise AssertionError("periodic faces cannot be crossed")

        def _cat(parts, col, dtype=np.int64):
            if not parts:
                return np.empty(0, dtype=dtype)
            return np.concatenate([
                np.broadcast_to(np.asarray(p[col]), np.asarray(p[1]).shape).astype(dtype)
                for p in parts
            ])

        bb_q, bb_cell = _cat(bb, 0), _cat(bb, 1)
        mov_q, mov_cell = _cat(mov, 0), _cat(mov, 1)
        mov_term = _cat(mov, 2, dtype=np.float64)
        out_q, out_cell = _cat(out, 0), _cat(out, 1)
        out_val = lat.w[out_q] if out_q.size else np.empty(0)
        exp_q, exp_cell = _cat(exp, 0), _cat(exp, 1)
        exp_src, exp_ghost_src = _cat(exp, 2), _cat(exp, 3)
        coal_q, coal_cell, coal_src = _cat(coal, 0), _cat(coal, 1), _cat(coal, 2)
        sl_q, sl_cell = _cat(slip, 0), _cat(slip, 1)
        sl_src_q, sl_src = _cat(slip, 2), _cat(slip, 3)
        sb_q, sb_cell = _cat(solid_bb, 0), _cat(solid_bb, 1)
        if exp_src.size and (exp_src < 0).any():
            raise AssertionError("explosion source not allocated on the coarser level")
        if coal_src.size and (coal_src < 0).any():
            raise AssertionError("coalescence source missing from the ghost layer")

        # Accumulate map: children of every coarse-ghost cell on the finer level.
        if lvl < spec.num_levels - 1 and ghost_slots.size:
            gpos = grid.cell_positions()[ghost_slots]
            children_off = np.stack(np.meshgrid(*([np.arange(2)] * d),
                                                indexing="ij"), axis=-1).reshape(-1, d)
            fine = (gpos[:, None, :] * 2 + children_off[None, :, :]).reshape(-1, d)
            acc_fine_slots = grids[lvl + 1].lookup(fine)
            if (acc_fine_slots < 0).any():
                raise AssertionError("ghost child not allocated on the finer level")
            acc_ghost_rows = np.repeat(np.arange(ghost_slots.size), 2 ** d)
        else:
            acc_fine_slots = np.empty(0, dtype=np.int64)
            acc_ghost_rows = np.empty(0, dtype=np.int64)

        # Original-baseline explosion copy: every fine-ghost cell mirrors its
        # coarse parent's post-collision state.
        if fine_ghost_slots.size:
            fpos = grid.cell_positions()[fine_ghost_slots]
            fg_coarse_src = grids[lvl - 1].lookup(fpos // 2)
            if (fg_coarse_src < 0).any():
                raise AssertionError("fine-ghost parent not allocated on coarser level")
        else:
            fg_coarse_src = np.empty(0, dtype=np.int64)

        levels.append(CompiledLevel(
            level=lvl, grid=grid, owned_slots=owned_slots, ghost_slots=ghost_slots,
            fine_ghost_slots=fine_ghost_slots, pull_src=pull_src, kind=kind,
            bb_q=bb_q, bb_cell=bb_cell,
            mov_q=mov_q, mov_cell=mov_cell, mov_term=mov_term.astype(np.float64),
            out_q=out_q, out_cell=out_cell, out_val=out_val,
            sl_q=sl_q, sl_cell=sl_cell, sl_src_q=sl_src_q, sl_src=sl_src,
            sb_q=sb_q, sb_cell=sb_cell,
            exp_q=exp_q, exp_cell=exp_cell, exp_src=exp_src,
            exp_ghost_src=exp_ghost_src,
            coal_q=coal_q, coal_cell=coal_cell, coal_src=coal_src,
            acc_fine_slots=acc_fine_slots, acc_ghost_rows=acc_ghost_rows,
            fg_slots=fine_ghost_slots, fg_coarse_src=fg_coarse_src,
        ))
    return MultiGrid(spec=spec, lattice=lat, levels=levels)

"""Implicit geometry used to set up domains, obstacles and refinement regions.

Shapes are signed predicates over *continuous* coordinates; voxelisation
samples cell centres at a requested resolution level.  The helpers at the
bottom build the nested refinement regions used by the paper's experiments
(shells of finer resolution hugging an obstacle or the domain walls).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "Shape", "Sphere", "Box", "Ellipsoid", "Union", "AirplaneProxy",
    "cell_centers", "voxelize", "distance_field",
    "shell_refinement", "wall_refinement", "enforce_shell_separation",
]


class Shape:
    """Base class: subclasses implement a vectorised signed distance."""

    def sdf(self, pts: np.ndarray) -> np.ndarray:
        """Signed distance of points ``(N, d)``: negative inside."""
        raise NotImplementedError

    def contains(self, pts: np.ndarray) -> np.ndarray:
        return self.sdf(pts) < 0.0

    def __or__(self, other: "Shape") -> "Union":
        return Union((self, other))


@dataclass(frozen=True)
class Sphere(Shape):
    """Ball of the given radius (works in any dimension)."""

    center: tuple[float, ...]
    radius: float

    def sdf(self, pts: np.ndarray) -> np.ndarray:
        c = np.asarray(self.center, dtype=np.float64)
        return np.linalg.norm(pts - c, axis=1) - self.radius


@dataclass(frozen=True)
class Box(Shape):
    """Axis-aligned box given by its two opposite corners."""

    lo: tuple[float, ...]
    hi: tuple[float, ...]

    def sdf(self, pts: np.ndarray) -> np.ndarray:
        lo = np.asarray(self.lo, dtype=np.float64)
        hi = np.asarray(self.hi, dtype=np.float64)
        center = 0.5 * (lo + hi)
        half = 0.5 * (hi - lo)
        q = np.abs(pts - center) - half
        outside = np.linalg.norm(np.maximum(q, 0.0), axis=1)
        inside = np.minimum(q.max(axis=1), 0.0)
        return outside + inside


@dataclass(frozen=True)
class Ellipsoid(Shape):
    """Axis-aligned ellipsoid (approximate SDF, exact sign)."""

    center: tuple[float, ...]
    radii: tuple[float, ...]

    def sdf(self, pts: np.ndarray) -> np.ndarray:
        c = np.asarray(self.center, dtype=np.float64)
        r = np.asarray(self.radii, dtype=np.float64)
        k = np.linalg.norm((pts - c) / r, axis=1)
        return (k - 1.0) * r.min()


@dataclass(frozen=True)
class Union(Shape):
    """Boolean union of shapes."""

    parts: tuple[Shape, ...]

    def sdf(self, pts: np.ndarray) -> np.ndarray:
        d = self.parts[0].sdf(pts)
        for p in self.parts[1:]:
            np.minimum(d, p.sdf(pts), out=d)
        return d


@dataclass(frozen=True)
class AirplaneProxy(Shape):
    """A stand-in for the paper's aircraft model (Fig. 1).

    The real mesh is not available, so we compose an ellipsoidal fuselage,
    swept main wings and a tail fin from primitive shapes.  The proxy
    matches what the capability experiment needs: a slender body whose
    refinement shells concentrate the fine voxels in a small fraction of
    the virtual wind tunnel.  Dimensions are relative to ``length``.
    """

    center: tuple[float, float, float]
    length: float
    _shape: Shape = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        cx, cy, cz = self.center
        ln = self.length
        fuselage = Ellipsoid((cx, cy, cz), (0.50 * ln, 0.055 * ln, 0.055 * ln))
        wings = Ellipsoid((cx, cy, cz), (0.09 * ln, 0.42 * ln, 0.012 * ln))
        tail_h = Ellipsoid((cx + 0.42 * ln, cy, cz), (0.06 * ln, 0.15 * ln, 0.010 * ln))
        tail_v = Ellipsoid((cx + 0.42 * ln, cy, cz + 0.08 * ln),
                           (0.06 * ln, 0.010 * ln, 0.10 * ln))
        object.__setattr__(self, "_shape", Union((fuselage, wings, tail_h, tail_v)))

    def sdf(self, pts: np.ndarray) -> np.ndarray:
        return self._shape.sdf(pts)


# -- voxelisation ----------------------------------------------------------

def cell_centers(shape: tuple[int, ...], level: int) -> np.ndarray:
    """Cell-centre coordinates of a level-``level`` grid, in *coarse* units.

    A level-L cell has size ``2^-L``; centres sit at ``(i + 0.5) * 2^-L``.
    Returns an array of shape ``shape + (d,)``.
    """
    h = 2.0 ** (-level)
    axes = [(np.arange(n) + 0.5) * h for n in shape]
    mesh = np.meshgrid(*axes, indexing="ij")
    return np.stack(mesh, axis=-1)


def voxelize(shape_obj: Shape, grid_shape: tuple[int, ...], level: int) -> np.ndarray:
    """Boolean mask of level-``level`` cells whose centre lies inside the shape."""
    pts = cell_centers(grid_shape, level).reshape(-1, len(grid_shape))
    return shape_obj.contains(pts).reshape(grid_shape)


def distance_field(shape_obj: Shape, grid_shape: tuple[int, ...], level: int) -> np.ndarray:
    """Signed distance (coarse units) sampled at cell centres."""
    pts = cell_centers(grid_shape, level).reshape(-1, len(grid_shape))
    return shape_obj.sdf(pts).reshape(grid_shape)


# -- refinement-region builders ---------------------------------------------

def enforce_shell_separation(widths: list[float]) -> list[float]:
    """Clamp decreasing shell widths to legal interface spacing.

    ``build_multigrid`` requires (a) at least one unrefined parent cell
    between successive interfaces and (b) the coarse-ghost layer's
    children to stay unrefined — together roughly three level-(k+1) cells
    of clearance between the interfaces at ``widths[k]`` and
    ``widths[k+1]``.  Widths are widened from the innermost shell
    outwards until the clearance holds, which keeps tiny scaled-down
    workload instances valid.
    """
    w = [float(v) for v in widths]
    for k in range(len(w) - 1, -1, -1):
        # smallest useful shell: ~1.5 cells of the level being created
        w[k] = max(w[k], 1.5 * 2.0 ** -k)
        if k + 1 < len(w):
            # interface clearance: a level-k diagonal neighbour offset
            # (sqrt(3) cells) plus the child-centre offset (sqrt(3)/4),
            # with margin for sampling jitter.
            w[k] = max(w[k], w[k + 1] + 2.75 * 2.0 ** -k)
    return w

def shell_refinement(obstacle: Shape, base_shape: tuple[int, ...],
                     num_levels: int, widths: list[float]) -> list[np.ndarray]:
    """Nested refinement regions as distance shells around an obstacle.

    ``widths[k]`` is the distance (coarse units) within which resolution is
    at least level ``k + 1``; widths must be strictly decreasing so regions
    nest.  Returns the ``refine_regions`` list for
    :class:`repro.grid.multigrid.RefinementSpec`: entry ``k`` lives at
    level-``k`` resolution and flags the level-``k`` cells to subdivide.
    """
    if len(widths) != num_levels - 1:
        raise ValueError(f"need {num_levels - 1} widths, got {len(widths)}")
    if any(b >= a for a, b in zip(widths, widths[1:])):
        raise ValueError("widths must be strictly decreasing so shells nest")
    regions = []
    for lvl, w in enumerate(widths):  # region at level `lvl` resolution
        shp = tuple(n * 2 ** lvl for n in base_shape)
        dist = distance_field(obstacle, shp, lvl)
        regions.append(dist < w)
    return regions


def wall_refinement(base_shape: tuple[int, ...], num_levels: int,
                    widths: list[float]) -> list[np.ndarray]:
    """Refinement shells hugging all domain walls (lid-driven cavity, Fig. 6).

    ``widths[k]`` is the distance from any wall (coarse units) within which
    resolution is at least level ``k + 1``.
    """
    if len(widths) != num_levels - 1:
        raise ValueError(f"need {num_levels - 1} widths, got {len(widths)}")
    if any(b >= a for a, b in zip(widths, widths[1:])):
        raise ValueError("widths must be strictly decreasing so shells nest")
    regions = []
    for lvl, w in enumerate(widths):
        shp = tuple(n * 2 ** lvl for n in base_shape)
        centers = cell_centers(shp, lvl)
        dims = np.asarray(base_shape, dtype=np.float64)
        dist_lo = centers.min(axis=-1)
        dist_hi = (dims - centers).min(axis=-1)
        wall_dist = np.minimum(dist_lo, dist_hi)
        regions.append(wall_dist < w)
    return regions

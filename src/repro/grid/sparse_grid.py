"""Block-sparse grid of one resolution level (paper Section V-A).

The domain is partitioned into ``B^d`` blocks placed only where the fluid
is active.  Each block stores an activity bitmask and the indices of its
``3^d - 1`` neighbouring blocks, so that any cell's neighbour in any
lattice direction is found with cheap divisions/modulo — intra-block
neighbours stay inside the block, inter-block neighbours go through the
block neighbour table.  Storage is allocated at block granularity: a block
with a single active cell still occupies ``B^d`` slots, exactly like the
CUDA implementation (one block = one CUDA block, one cell = one thread).

Blocks are ordered along a space-filling curve; a cell's *flat id* is
``block_id * B^d + local_id`` with C-ordered local ids, which is the
layout the AoSoA fields use.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from . import bitmask as bm
from .sfc import block_order

__all__ = ["BlockSparseGrid"]


def _local_offsets(d: int, B: int) -> np.ndarray:
    """Local coordinates of every cell of a block, C-ordered, shape (B^d, d)."""
    axes = np.meshgrid(*([np.arange(B)] * d), indexing="ij")
    return np.stack([a.ravel() for a in axes], axis=1).astype(np.int64)


def _offset_index(carry: np.ndarray) -> np.ndarray:
    """Map per-axis carries in {-1, 0, 1} to a 3^d block-direction index."""
    idx = np.zeros(carry.shape[0], dtype=np.int64)
    for axis in range(carry.shape[1]):
        idx = idx * 3 + (carry[:, axis] + 1)
    return idx


@dataclass
class BlockSparseGrid:
    """One level of the multi-resolution stack.

    Construct with :meth:`from_mask`.  ``shape`` is the bounding box of the
    level in this level's cell units; ``mask`` flags the cells that must be
    allocated (fluid plus any ghost cells the algorithms need).
    """

    level: int
    shape: tuple[int, ...]
    block_size: int
    block_coords: np.ndarray           # (nb, d) in block units, curve-ordered
    block_lut: np.ndarray              # dense (block-space) -> block id or -1
    bitmask_words: np.ndarray          # (nb, words) uint64 — active cells
    block_neighbors: np.ndarray        # (nb, 3^d) int32 block ids, -1 if absent
    curve: str = "morton"
    _local: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._local = _local_offsets(self.d, self.block_size)

    # -- construction -----------------------------------------------------
    @classmethod
    def from_mask(cls, mask: np.ndarray, *, level: int = 0, block_size: int = 4,
                  curve: str = "morton") -> "BlockSparseGrid":
        mask = np.asarray(mask, dtype=bool)
        d = mask.ndim
        B = block_size
        if B < 2:
            raise ValueError("block_size must be at least 2")
        shape = mask.shape
        nblk_axes = tuple(-(-s // B) for s in shape)  # ceil division
        padded_shape = tuple(n * B for n in nblk_axes)
        padded = np.zeros(padded_shape, dtype=bool)
        padded[tuple(slice(0, s) for s in shape)] = mask
        # view as (nbx, B, nby, B, ...) and reduce over the local axes
        view = padded
        new_shape: list[int] = []
        for n in nblk_axes:
            new_shape.extend((n, B))
        view = padded.reshape(new_shape)
        local_axes = tuple(range(1, 2 * d, 2))
        occupied = view.any(axis=local_axes)
        coords = np.argwhere(occupied).astype(np.int64)
        if coords.shape[0] == 0:
            raise ValueError("mask selects no cells; cannot build an empty grid")
        perm = block_order(coords, nblk_axes, curve)
        coords = coords[perm]
        nb = coords.shape[0]
        lut = np.full(nblk_axes, -1, dtype=np.int64)
        lut[tuple(coords.T)] = np.arange(nb)
        # per-block activity bits, C-ordered local cells
        block_axes_first = tuple(range(0, 2 * d, 2)) + local_axes
        cells = view.transpose(block_axes_first).reshape(occupied.shape + (B ** d,))
        flags = cells[tuple(coords.T)]
        words = bm.pack_bits(flags)
        # 3^d block neighbour table
        offsets = np.array(list(itertools.product((-1, 0, 1), repeat=d)), dtype=np.int64)
        nbr = np.full((nb, 3 ** d), -1, dtype=np.int32)
        for k, off in enumerate(offsets):
            tgt = coords + off
            ok = np.all((tgt >= 0) & (tgt < np.asarray(nblk_axes)), axis=1)
            nbr[ok, k] = lut[tuple(tgt[ok].T)]
        return cls(level=level, shape=tuple(int(s) for s in shape), block_size=B,
                   block_coords=coords, block_lut=lut, bitmask_words=words,
                   block_neighbors=nbr, curve=curve)

    # -- basic queries ------------------------------------------------------
    @property
    def d(self) -> int:
        return int(self.block_coords.shape[1])

    @property
    def n_blocks(self) -> int:
        return int(self.block_coords.shape[0])

    @property
    def cells_per_block(self) -> int:
        return self.block_size ** self.d

    @property
    def n_alloc(self) -> int:
        """Number of allocated cell slots (block granularity)."""
        return self.n_blocks * self.cells_per_block

    @property
    def n_active(self) -> int:
        return int(bm.popcount(self.bitmask_words).sum())

    def active(self) -> np.ndarray:
        """Boolean activity flag for every allocated slot, shape (n_alloc,)."""
        return bm.unpack_bits(self.bitmask_words, self.cells_per_block).ravel()

    def cell_positions(self) -> np.ndarray:
        """Global (level-resolution) coordinates of every allocated slot."""
        base = self.block_coords[:, None, :] * self.block_size  # (nb, 1, d)
        return (base + self._local[None, :, :]).reshape(-1, self.d)

    def lookup(self, positions: np.ndarray) -> np.ndarray:
        """Flat slot ids of the given positions; -1 when not allocated.

        Positions outside the bounding box also yield -1.  Activity is not
        checked — use :meth:`active` for that.
        """
        pos = np.atleast_2d(np.asarray(positions, dtype=np.int64))
        B = self.block_size
        ids = np.full(pos.shape[0], -1, dtype=np.int64)
        inside = np.all((pos >= 0) & (pos < np.asarray(self.shape)), axis=1)
        if not inside.any():
            return ids
        p = pos[inside]
        bc = p // B
        local = p - bc * B
        blk = self.block_lut[tuple(bc.T)]
        loc_idx = np.zeros(p.shape[0], dtype=np.int64)
        for axis in range(self.d):
            loc_idx = loc_idx * B + local[:, axis]
        out = np.where(blk >= 0, blk * self.cells_per_block + loc_idx, -1)
        ids[inside] = out
        return ids

    def neighbor_ids(self, direction) -> np.ndarray:
        """Flat ids of each allocated slot's neighbour along ``direction``.

        Resolution goes through the block neighbour table: intra-block
        neighbours are found with modular arithmetic, inter-block ones via
        ``block_neighbors`` (-1 when the neighbouring block is absent) —
        mirroring the paper's data structure.
        Returns shape ``(n_alloc,)`` with -1 for missing neighbours.
        """
        v = np.asarray(direction, dtype=np.int64)
        B = self.block_size
        cpb = self.cells_per_block
        nb = self.n_blocks
        nl = self._local[None, :, :] + v[None, None, :]     # (1, cpb, d) broadcast
        carry = np.floor_divide(nl, B)                       # -1/0/1 per axis
        local = nl - carry * B
        loc_idx = np.zeros((1, cpb), dtype=np.int64)
        for axis in range(self.d):
            loc_idx = loc_idx * B + local[:, :, axis]
        diridx = _offset_index(carry.reshape(-1, self.d)).reshape(1, cpb)
        block_ids = np.arange(nb, dtype=np.int64)[:, None]   # (nb, 1)
        tgt_block = np.where(
            diridx == (3 ** self.d - 1) // 2,                # zero offset -> same block
            np.broadcast_to(block_ids, (nb, cpb)),
            self.block_neighbors[block_ids, diridx].astype(np.int64),
        )
        out = np.where(tgt_block >= 0, tgt_block * cpb + loc_idx, -1)
        return out.reshape(-1)

    def neighbor_table(self, e: np.ndarray) -> np.ndarray:
        """Stacked :meth:`neighbor_ids` for every lattice direction, (Q, n_alloc)."""
        return np.stack([self.neighbor_ids(v) for v in np.asarray(e)], axis=0)

    # -- memory accounting (feeds repro.gpu.memory) -------------------------
    def metadata_bytes(self) -> dict[str, int]:
        """Bytes of structural metadata as allocated on the GPU."""
        return {
            "bitmask": self.bitmask_words.size * 8,
            "block_neighbors": self.block_neighbors.size * 4,
            "block_origins": self.block_coords.size * 4,
        }

    def field_bytes(self, ncomp: int, itemsize: int = 8) -> int:
        """Bytes of one AoSoA field with ``ncomp`` components over this grid."""
        return self.n_alloc * ncomp * itemsize

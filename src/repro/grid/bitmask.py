"""Per-block activity bitmasks (paper Section V-A).

Each block of ``B^d`` cells carries a bitmask recording which of its cells
are active.  With the default ``B = 4`` in 3D a block holds 64 cells, i.e.
exactly one ``uint64`` word — the same trick the CUDA implementation uses.
Bits are indexed by the block-local cell index (C-order within the block).
"""

from __future__ import annotations

import numpy as np

__all__ = ["pack_bits", "unpack_bits", "popcount", "test_bits", "words_per_block"]


def words_per_block(cells_per_block: int) -> int:
    """Number of ``uint64`` words needed to cover ``cells_per_block`` bits."""
    if cells_per_block <= 0:
        raise ValueError("cells_per_block must be positive")
    return (cells_per_block + 63) // 64


def pack_bits(flags: np.ndarray) -> np.ndarray:
    """Pack a boolean array ``(nblocks, cells_per_block)`` into uint64 words.

    Returns an array of shape ``(nblocks, words_per_block)``.
    """
    flags = np.asarray(flags, dtype=bool)
    if flags.ndim != 2:
        raise ValueError(f"expected 2-D flags array, got shape {flags.shape}")
    nb, ncell = flags.shape
    nw = words_per_block(ncell)
    padded = np.zeros((nb, nw * 64), dtype=bool)
    padded[:, :ncell] = flags
    bits = padded.reshape(nb, nw, 64)
    weights = (np.uint64(1) << np.arange(64, dtype=np.uint64))
    return (bits.astype(np.uint64) * weights).sum(axis=2, dtype=np.uint64)


def unpack_bits(words: np.ndarray, cells_per_block: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`; returns ``(nblocks, cells_per_block)`` bools."""
    words = np.asarray(words, dtype=np.uint64)
    if words.ndim != 2:
        raise ValueError(f"expected 2-D word array, got shape {words.shape}")
    nb, nw = words.shape
    shifts = np.arange(64, dtype=np.uint64)
    bits = (words[:, :, None] >> shifts) & np.uint64(1)
    flat = bits.reshape(nb, nw * 64).astype(bool)
    return flat[:, :cells_per_block]


def popcount(words: np.ndarray) -> np.ndarray:
    """Number of set bits per block, shape ``(nblocks,)``."""
    words = np.asarray(words, dtype=np.uint64)
    if hasattr(np, "bitwise_count"):  # NumPy >= 2.0
        return np.bitwise_count(words).sum(axis=-1).astype(np.int64)
    shifts = np.arange(64, dtype=np.uint64)
    bits = (words[..., None] >> shifts) & np.uint64(1)
    return bits.sum(axis=(-1, -2)).astype(np.int64)


def test_bits(words: np.ndarray, block_ids: np.ndarray, local_ids: np.ndarray) -> np.ndarray:
    """Vectorised bit test: is cell ``local_ids[k]`` of block ``block_ids[k]`` set?"""
    block_ids = np.asarray(block_ids, dtype=np.int64)
    local_ids = np.asarray(local_ids, dtype=np.int64)
    word = local_ids // 64
    bit = (local_ids % 64).astype(np.uint64)
    return ((words[block_ids, word] >> bit) & np.uint64(1)).astype(bool)

"""Block-sparse multi-resolution grid substrate."""

from .geometry import (AirplaneProxy, Box, Ellipsoid, Shape, Sphere, Union,
                       shell_refinement, voxelize, wall_refinement)
from .multigrid import (CompiledLevel, DomainBC, FaceBC, MultiGrid, RefinementSpec,
                        build_multigrid)
from .sparse_grid import BlockSparseGrid

__all__ = [
    "AirplaneProxy", "Box", "Ellipsoid", "Shape", "Sphere", "Union",
    "shell_refinement", "voxelize", "wall_refinement",
    "CompiledLevel", "DomainBC", "FaceBC", "MultiGrid", "RefinementSpec",
    "build_multigrid", "BlockSparseGrid",
]

"""Field sampling: per-level dense views, composite finest-resolution
fields, centerline probes and NPZ snapshots.

The multi-resolution solution lives on the owned cells of each level; for
validation (Fig. 7) and visualisation (Figs. 1, 6, 8) it is convenient to
resample everything onto the finest resolution.  Coarse cells are
injected as piecewise-constant blocks — adequate for profiles and plots,
and the refinement always places fine cells where gradients live.
"""

from __future__ import annotations

import numpy as np

from ..core.simulation import Simulation

__all__ = ["level_dense", "composite_fields", "centerline_profile",
           "plane_slice", "save_snapshot", "load_snapshot"]


def level_dense(sim: Simulation, level: int) -> tuple[np.ndarray, np.ndarray]:
    """Dense (rho, u) arrays of one level over its full box; NaN where not owned.

    Shapes: rho ``level_shape``, u ``(d,) + level_shape``.
    """
    spec = sim.mgrid.spec
    shape = spec.level_shape(level)
    d = spec.d
    rho_dense = np.full(shape, np.nan)
    u_dense = np.full((d,) + shape, np.nan)
    rho, u = sim.macroscopics(level)
    pos = sim.positions(level)
    idx = tuple(pos.T)
    rho_dense[idx] = rho
    for a in range(d):
        u_dense[(a,) + idx] = u[a]
    return rho_dense, u_dense


def _upsample_to(arr: np.ndarray, factor: int) -> np.ndarray:
    out = arr
    for axis in range(arr.ndim):
        out = np.repeat(out, factor, axis=axis)
    return out


def composite_fields(sim: Simulation) -> tuple[np.ndarray, np.ndarray]:
    """(rho, u) of the whole domain resampled at the finest resolution.

    Every cell is covered by exactly one level, so the composite has no
    NaNs outside solid cells.
    """
    spec = sim.mgrid.spec
    lmax = sim.num_levels - 1
    finest_shape = spec.level_shape(lmax)
    d = spec.d
    rho_out = np.full(finest_shape, np.nan)
    u_out = np.full((d,) + finest_shape, np.nan)
    for lv in range(sim.num_levels):
        factor = 2 ** (lmax - lv)
        rho_l, u_l = level_dense(sim, lv)
        rho_up = _upsample_to(rho_l, factor)
        owned = ~np.isnan(rho_up)
        rho_out[owned] = rho_up[owned]
        for a in range(d):
            ua = _upsample_to(u_l[a], factor)
            u_out[a][owned] = ua[owned]
    return rho_out, u_out


def centerline_profile(sim: Simulation, axis: int, component: int
                       ) -> tuple[np.ndarray, np.ndarray]:
    """Velocity component along the domain centerline parallel to ``axis``.

    Returns ``(s, value)`` where ``s`` is the normalized coordinate in
    [0, 1] along the line through the box centre.  This is the Fig.-7
    probe: e.g. ``axis=1, component=0`` samples u(y) on the vertical
    centerline.
    """
    _, u = composite_fields(sim)
    comp = u[component]
    idx: list = []
    for a, n in enumerate(comp.shape):
        if a == axis:
            idx.append(slice(None))
        else:
            idx.append(n // 2)
    line = comp[tuple(idx)]
    n = comp.shape[axis]
    s = (np.arange(n) + 0.5) / n
    return s, line


def plane_slice(sim: Simulation, axis: int, position: float = 0.5
                ) -> tuple[np.ndarray, np.ndarray]:
    """(rho, |u|) on the plane ``axis = position`` (normalized), finest res."""
    rho, u = composite_fields(sim)
    k = int(position * rho.shape[axis])
    k = min(max(k, 0), rho.shape[axis] - 1)
    sl = [slice(None)] * rho.ndim
    sl[axis] = k
    speed = np.sqrt((u ** 2).sum(axis=0))
    return rho[tuple(sl)], speed[tuple(sl)]


def save_snapshot(sim: Simulation, path: str) -> None:
    """Persist the composite fields plus metadata to an ``.npz`` file."""
    rho, u = composite_fields(sim)
    np.savez_compressed(
        path, rho=rho, u=u,
        steps=sim.steps_done,
        active_per_level=np.asarray(sim.mgrid.active_per_level()),
        base_shape=np.asarray(sim.mgrid.spec.base_shape),
    )


def load_snapshot(path: str) -> dict:
    with np.load(path) as data:
        return {k: data[k] for k in data.files}

"""Snapshots, slices, probes and report tables."""

from .checkpoint import (CheckpointError, CheckpointStore, restore_checkpoint,
                         save_checkpoint)
from .sampling import (centerline_profile, composite_fields, level_dense,
                       load_snapshot, plane_slice, save_snapshot)
from .tables import format_table, print_table

__all__ = ["CheckpointError", "CheckpointStore",
           "restore_checkpoint", "save_checkpoint",
           "centerline_profile", "composite_fields", "level_dense",
           "load_snapshot", "plane_slice", "save_snapshot",
           "format_table", "print_table"]

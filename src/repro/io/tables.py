"""Plain-text table rendering for the benchmark harness output."""

from __future__ import annotations

__all__ = ["format_table", "print_table"]


def format_table(headers: list[str], rows: list[list], title: str | None = None,
                 floatfmt: str = "{:.2f}") -> str:
    """Monospace table with right-aligned numeric columns."""
    def fmt(v) -> str:
        if isinstance(v, float):
            return floatfmt.format(v)
        return str(v)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
              for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(headers: list[str], rows: list[list], title: str | None = None,
                floatfmt: str = "{:.2f}") -> None:
    print(format_table(headers, rows, title=title, floatfmt=floatfmt))

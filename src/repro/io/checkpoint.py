"""Exact checkpoint/restore of a running simulation.

Long wind-tunnel runs (the paper's 30k-iteration sphere experiment)
need restartability.  A checkpoint stores every level's population
buffers and ghost accumulators verbatim, so a restored run continues
bit-for-bit identically — which the test suite asserts.
"""

from __future__ import annotations

import numpy as np

from ..core.simulation import Simulation

__all__ = ["save_checkpoint", "restore_checkpoint"]

_FORMAT = 1


def save_checkpoint(sim: Simulation, path: str) -> None:
    """Write the full engine state to ``path`` (``.npz``)."""
    payload: dict[str, np.ndarray] = {
        "format": np.asarray(_FORMAT),
        "steps": np.asarray(sim.steps_done),
        "num_levels": np.asarray(sim.num_levels),
        "base_shape": np.asarray(sim.mgrid.spec.base_shape),
        "lattice": np.asarray(sim.lattice.name),
        "active_per_level": np.asarray(sim.mgrid.active_per_level()),
    }
    for lv, buf in enumerate(sim.engine.levels):
        payload[f"f_{lv}"] = buf.f
        payload[f"fstar_{lv}"] = buf.fstar
        payload[f"gacc_{lv}"] = buf.ghost_acc
    np.savez_compressed(path, **payload)


def restore_checkpoint(sim: Simulation, path: str) -> None:
    """Load a checkpoint into a simulation built from the *same* spec.

    The target must match the checkpoint structurally (levels, lattice,
    per-level cell counts) — the function validates and raises otherwise.
    """
    with np.load(path) as data:
        if int(data["format"]) != _FORMAT:
            raise ValueError(f"unsupported checkpoint format {int(data['format'])}")
        if int(data["num_levels"]) != sim.num_levels:
            raise ValueError("level count differs from the checkpoint")
        ck_shape = tuple(int(x) for x in data["base_shape"])
        if ck_shape != tuple(sim.mgrid.spec.base_shape):
            # Cell counts can coincide across different domains (e.g. a
            # transposed box) — the shape itself must match.
            raise ValueError(
                f"base shape differs from the checkpoint: "
                f"{ck_shape} vs {tuple(sim.mgrid.spec.base_shape)}")
        if str(data["lattice"]) != sim.lattice.name:
            raise ValueError("lattice differs from the checkpoint")
        if data["active_per_level"].tolist() != sim.mgrid.active_per_level():
            raise ValueError("grid layout differs from the checkpoint")
        for lv, buf in enumerate(sim.engine.levels):
            f = data[f"f_{lv}"]
            if f.shape != buf.f.shape:
                raise ValueError(f"level {lv} buffer shape mismatch")
            buf.f[:] = f
            buf.fstar[:] = data[f"fstar_{lv}"]
            buf.ghost_acc[:] = data[f"gacc_{lv}"]
        steps = int(data["steps"])
        sim.stepper.steps_done = steps
        # Rebase the trace: the restored steps happened outside this
        # runtime's records, so per-step metrics must not average the new
        # trace over them (they'd report skewed kernels/bytes per step).
        sim.runtime.reset(steps_base=steps)

"""Exact checkpoint/restore of a running simulation.

Long wind-tunnel runs (the paper's 30k-iteration sphere experiment)
need restartability.  A checkpoint stores every level's population
buffers and ghost accumulators verbatim, so a restored run continues
bit-for-bit identically — which the test suite asserts.

Two layers:

* :class:`CheckpointStore` — the directory-based API: atomic writes
  (temp file + ``os.replace``, so a crash mid-write never leaves a
  half-checkpoint under the real name), a ``manifest.json`` with
  step/config metadata, keep-last-K pruning and generation fallback on
  restore.  This is what :class:`~repro.resilience.ResilientRunner`
  rolls back through.
* :func:`save_checkpoint` / :func:`restore_checkpoint` — single-file
  module functions, kept as thin compatibility wrappers over the same
  serialization (and themselves crash-safe).

Corruption (a truncated or non-checkpoint file) raises the structured
:class:`CheckpointError`; structural mismatch against the target
simulation keeps raising ``ValueError`` as before.  Restore is
all-or-nothing: every array is loaded and validated **before** the first
byte lands in the simulation's buffers.
"""

from __future__ import annotations

import json
import os
import tempfile
import zipfile

import numpy as np

from ..core.simulation import Simulation

__all__ = ["CheckpointError", "CheckpointStore",
           "save_checkpoint", "restore_checkpoint"]

_FORMAT = 1


class CheckpointError(RuntimeError):
    """A checkpoint file is unreadable (truncated, corrupt, missing keys).

    Distinct from the ``ValueError`` raised for *structural* mismatch
    (wrong lattice/shape/levels): a ``CheckpointError`` means the file
    itself is damaged, so a caller holding older generations should fall
    back to the previous one — which
    :meth:`CheckpointStore.restore_latest` does automatically.
    """

    def __init__(self, message: str, path: str | None = None) -> None:
        super().__init__(message if path is None else f"{message} ({path})")
        self.path = path


def _payload(sim: Simulation) -> dict[str, np.ndarray]:
    payload: dict[str, np.ndarray] = {
        "format": np.asarray(_FORMAT),
        "steps": np.asarray(sim.steps_done),
        "num_levels": np.asarray(sim.num_levels),
        "base_shape": np.asarray(sim.mgrid.spec.base_shape),
        "lattice": np.asarray(sim.lattice.name),
        "active_per_level": np.asarray(sim.mgrid.active_per_level()),
    }
    for lv, buf in enumerate(sim.engine.levels):
        payload[f"f_{lv}"] = buf.f
        payload[f"fstar_{lv}"] = buf.fstar
        payload[f"gacc_{lv}"] = buf.ghost_acc
    return payload


def _atomic_write_npz(path: str, payload: dict[str, np.ndarray]) -> None:
    """Write ``payload`` so ``path`` only ever holds a complete archive.

    The bytes go to a temp file in the same directory (same filesystem,
    so the final ``os.replace`` is atomic); a process dying mid-write
    leaves only the temp file, never a truncated checkpoint under the
    real name.
    """
    dirname = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(prefix=os.path.basename(path) + ".",
                               suffix=".tmp", dir=dirname)
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez_compressed(fh, **payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def save_checkpoint(sim: Simulation, path: str) -> None:
    """Write the full engine state to ``path`` (``.npz``), atomically."""
    _atomic_write_npz(path, _payload(sim))


def _load_arrays(path: str) -> dict[str, np.ndarray]:
    """Read every array of a checkpoint into memory, or raise CheckpointError.

    ``np.load`` on an ``.npz`` is lazy — members are decompressed on
    access — so a truncated file can fail *midway through a restore*.
    Materializing everything first makes restore all-or-nothing.
    """
    try:
        with np.load(path, allow_pickle=False) as data:
            return {k: data[k] for k in data.files}
    except (zipfile.BadZipFile, EOFError, OSError, KeyError, ValueError) as exc:
        raise CheckpointError(
            f"checkpoint is unreadable or truncated: {exc}", path) from exc


def restore_checkpoint(sim: Simulation, path: str) -> None:
    """Load a checkpoint into a simulation built from the *same* spec.

    The target must match the checkpoint structurally (levels, lattice,
    per-level cell counts) — the function validates and raises
    ``ValueError`` otherwise; a damaged file raises
    :class:`CheckpointError`.  The simulation is only modified once the
    whole file has been read and validated.
    """
    data = _load_arrays(path)
    try:
        fmt = int(data["format"])
    except KeyError as exc:
        raise CheckpointError("file is not a repro checkpoint "
                              "(no format marker)", path) from exc
    if fmt != _FORMAT:
        raise ValueError(f"unsupported checkpoint format {fmt}")
    if int(data["num_levels"]) != sim.num_levels:
        raise ValueError("level count differs from the checkpoint")
    ck_shape = tuple(int(x) for x in data["base_shape"])
    if ck_shape != tuple(sim.mgrid.spec.base_shape):
        # Cell counts can coincide across different domains (e.g. a
        # transposed box) — the shape itself must match.
        raise ValueError(
            f"base shape differs from the checkpoint: "
            f"{ck_shape} vs {tuple(sim.mgrid.spec.base_shape)}")
    if str(data["lattice"]) != sim.lattice.name:
        raise ValueError("lattice differs from the checkpoint")
    if data["active_per_level"].tolist() != sim.mgrid.active_per_level():
        raise ValueError("grid layout differs from the checkpoint")
    for lv, buf in enumerate(sim.engine.levels):
        for key, target in ((f"f_{lv}", buf.f), (f"fstar_{lv}", buf.fstar),
                            (f"gacc_{lv}", buf.ghost_acc)):
            if key not in data:
                raise CheckpointError(f"missing array {key!r}", path)
            if data[key].shape != target.shape:
                raise ValueError(f"level {lv} buffer shape mismatch")
    for lv, buf in enumerate(sim.engine.levels):
        buf.f[:] = data[f"f_{lv}"]
        buf.fstar[:] = data[f"fstar_{lv}"]
        buf.ghost_acc[:] = data[f"gacc_{lv}"]
    steps = int(data["steps"])
    sim.stepper.steps_done = steps
    # State mutated outside the step path: compiled backends key their
    # plan cache on the epoch, so a plan bound before the restore is
    # recompiled rather than replayed against the restored buffers.
    sim.engine.state_epoch += 1
    # Rebase the trace: the restored steps happened outside this
    # runtime's records, so per-step metrics must not average the new
    # trace over them (they'd report skewed kernels/bytes per step).
    sim.runtime.reset(steps_base=steps)


class CheckpointStore:
    """Directory of rolling checkpoints with a manifest and keep-K pruning.

    Files are named ``ckpt_<step:08d>.npz`` and written atomically;
    ``manifest.json`` (also atomically replaced) records step, file name
    and the simulation's :class:`~repro.core.config.SimConfig` digest per
    generation.  :meth:`restore_latest` walks generations newest-first
    and transparently skips damaged files, so one torn write never
    strands a recovery.

    Parameters
    ----------
    directory:
        Created if missing.  One store per simulation lineage — the
        structural validation of :func:`restore_checkpoint` still guards
        against crossing streams.
    keep:
        Number of most-recent generations retained; older checkpoint
        files are deleted after each successful save.  ``keep >= 2``
        is what makes generation fallback meaningful.
    """

    MANIFEST = "manifest.json"

    def __init__(self, directory: str, keep: int = 3) -> None:
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.directory = str(directory)
        self.keep = keep
        os.makedirs(self.directory, exist_ok=True)

    # -- paths / listing -----------------------------------------------------
    def path_for(self, step: int) -> str:
        return os.path.join(self.directory, f"ckpt_{int(step):08d}.npz")

    def steps(self) -> list[int]:
        """Steps with a checkpoint file on disk, ascending."""
        out = []
        for name in os.listdir(self.directory):
            if name.startswith("ckpt_") and name.endswith(".npz"):
                try:
                    out.append(int(name[5:-4]))
                except ValueError:
                    continue
        return sorted(out)

    def latest(self) -> int | None:
        """Newest checkpointed step, or ``None`` for an empty store."""
        steps = self.steps()
        return steps[-1] if steps else None

    def manifest(self) -> dict:
        """The on-disk manifest (empty skeleton when absent/corrupt)."""
        path = os.path.join(self.directory, self.MANIFEST)
        try:
            with open(path) as fh:
                return json.load(fh)
        except (OSError, json.JSONDecodeError):
            return {"format": _FORMAT, "entries": []}

    # -- writing -------------------------------------------------------------
    def save(self, sim: Simulation, **meta) -> str:
        """Checkpoint ``sim`` at its current step; return the file path.

        Saving the same step twice overwrites that generation (the
        rollback-retry loop re-checkpoints reliably).  A save at a step
        *earlier* than existing generations — rollback, then re-run —
        makes this step the new head of the lineage: generations beyond
        it belong to the abandoned timeline and are dropped, so
        :meth:`restore_latest` can never resurrect state the run
        explicitly rolled back past.  Extra ``meta`` keys land in the
        manifest entry.
        """
        step = sim.steps_done
        path = self.path_for(step)
        _atomic_write_npz(path, _payload(sim))
        entry = {
            "step": int(step),
            "file": os.path.basename(path),
            "lattice": sim.lattice.name,
            "base_shape": list(sim.mgrid.spec.base_shape),
            "config": sim.sim_config.as_dict()
            if getattr(sim, "sim_config", None) is not None else None,
            **meta,
        }
        man = self.manifest()
        man["format"] = _FORMAT
        man["entries"] = ([e for e in man.get("entries", [])
                           if isinstance(e.get("step"), int)
                           and e["step"] < int(step)] + [entry])
        man["entries"].sort(key=lambda e: e.get("step", 0))
        self._prune(man)
        self._write_manifest(man)
        return path

    def _prune(self, man: dict) -> None:
        """Retain the newest ``keep`` generations of the current lineage.

        The lineage head is the newest manifest entry (the save that just
        happened).  On-disk files beyond the head are abandoned-timeline
        leftovers and are always deleted; files at or before the head
        count toward ``keep`` even when the manifest was lost, so a
        corrupt manifest does not wipe every fallback generation.
        """
        entries = man.get("entries", [])[-self.keep:]
        man["entries"] = entries
        head = entries[-1].get("step") if entries else None
        on_disk = self.steps()
        lineage = [s for s in on_disk if head is None or s <= head]
        keep_steps = {e.get("step") for e in entries}
        keep_steps.update(lineage[-self.keep:])
        for step in on_disk:
            if step not in keep_steps:
                try:
                    os.unlink(self.path_for(step))
                except OSError:
                    pass

    def _write_manifest(self, man: dict) -> None:
        path = os.path.join(self.directory, self.MANIFEST)
        fd, tmp = tempfile.mkstemp(prefix=self.MANIFEST + ".",
                                   suffix=".tmp", dir=self.directory)
        with os.fdopen(fd, "w") as fh:
            json.dump(man, fh, indent=2)
            fh.write("\n")
        os.replace(tmp, path)

    # -- reading -------------------------------------------------------------
    def restore(self, sim: Simulation, step: int | None = None) -> int:
        """Restore one generation (default: the newest); return its step.

        Raises :class:`CheckpointError` if that generation is damaged or
        the store is empty — use :meth:`restore_latest` for automatic
        fallback.
        """
        if step is None:
            step = self.latest()
            if step is None:
                raise CheckpointError("checkpoint store is empty",
                                      self.directory)
        restore_checkpoint(sim, self.path_for(step))
        return int(step)

    def restore_latest(self, sim: Simulation) -> int:
        """Restore the newest *readable* generation; return its step.

        Damaged generations (torn writes, truncation) are skipped
        newest-to-oldest; only when every generation is unreadable does
        the error propagate.  A generation deleted between the directory
        listing and its open — another process' :meth:`save` pruning
        while we restore — surfaces as the same :class:`CheckpointError`
        and falls back identically, so prune racing restore degrades to
        an older generation instead of crashing.
        """
        steps = self.steps()
        if not steps:
            raise CheckpointError("checkpoint store is empty", self.directory)
        last_error: CheckpointError | None = None
        for step in reversed(steps):
            try:
                restore_checkpoint(sim, self.path_for(step))
                return step
            except CheckpointError as exc:
                last_error = exc
        raise CheckpointError(
            f"all {len(steps)} checkpoint generation(s) are unreadable; "
            f"last error: {last_error}", self.directory)

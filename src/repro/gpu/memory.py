"""Memory footprint model (paper Section IV-A, Fig. 1 and Section VI-B).

Two accounting paths:

* **exact** — byte counts taken from a compiled :class:`MultiGrid`
  (used for the ghost-layer comparison of Section IV-A and all
  scaled-down experiments);
* **analytic / Monte-Carlo** — per-level voxel counts estimated by
  sampling the refinement shells' signed distance, for paper-scale
  domains (e.g. the 1596x840x840 airplane tunnel) that are too large to
  voxelise here.  Sampling error is ~0.1% at the default sample count,
  far below the 8x level-to-level volume ratios that drive the result.

The uniform-grid comparison implements the AA-method accounting [7]:
a single population buffer, which is the most memory-frugal uniform
layout — the paper's ~794^3 capacity bound for a 40 GB device.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..grid.geometry import Shape
from ..grid.multigrid import MultiGrid
from .device import DeviceSpec

__all__ = [
    "DeviceOOMError", "ensure_fits",
    "MemoryReport", "grid_memory_report", "ghost_layer_bytes",
    "uniform_memory_bytes", "uniform_aa_max_cube",
    "mc_level_counts", "refined_memory_bytes",
    "BufferLifetime", "arena_assign", "arena_check", "arena_peak_bytes",
]


class DeviceOOMError(MemoryError):
    """A (modelled) device allocation does not fit the card.

    Raised by :func:`ensure_fits` when a compiled grid's footprint
    exceeds the device capacity, and by the resilience fault injector to
    simulate a mid-run allocation failure (the way fragmentation or a
    co-tenant process kills long GPU runs in production).  Carries the
    byte counts so recovery policies and reports can show headroom.
    """

    def __init__(self, message: str, *, requested: int = 0,
                 capacity: int = 0) -> None:
        super().__init__(message)
        self.requested = int(requested)
        self.capacity = int(capacity)


def ensure_fits(report: "MemoryReport", device: DeviceSpec) -> None:
    """Raise :class:`DeviceOOMError` unless ``report`` fits ``device``."""
    if not report.fits(device):
        raise DeviceOOMError(
            f"grid needs {report.total / 2**30:.2f} GiB but {device.name} "
            f"has {device.capacity_bytes / 2**30:.2f} GiB",
            requested=report.total, capacity=device.capacity_bytes)


@dataclass(frozen=True)
class MemoryReport:
    """Bytes by category for one configuration."""

    populations: int
    ghost_accumulators: int
    ghost_populations: int
    metadata: int

    @property
    def total(self) -> int:
        return (self.populations + self.ghost_accumulators
                + self.ghost_populations + self.metadata)

    def fits(self, device: DeviceSpec) -> bool:
        return self.total <= device.capacity_bytes


def _pop_bytes(n_cells: int, q: int, itemsize: int, buffers: int = 2) -> int:
    return int(n_cells) * q * itemsize * buffers


def grid_memory_report(mgrid: MultiGrid, itemsize: int = 8,
                       scheme: str = "optimized") -> MemoryReport:
    """Exact device memory of a compiled stack under either ghost scheme.

    ``scheme="optimized"`` is the paper's layout (Fig. 4b+): one ghost
    layer on the coarse side holding a Q-component accumulator.
    ``scheme="original"`` is the distributed-era layout (Fig. 4a): four
    fine ghost layers per interface storing full population copies in
    both buffers.
    """
    if scheme not in ("optimized", "original"):
        raise ValueError(f"unknown scheme {scheme!r}")
    q = mgrid.lattice.q
    pops = sum(_pop_bytes(lv.n_owned, q, itemsize) for lv in mgrid.levels)
    meta = sum(sum(lv.grid.metadata_bytes().values()) for lv in mgrid.levels)
    if scheme == "optimized":
        gacc = sum(lv.n_ghost * q * itemsize for lv in mgrid.levels)
        gpop = 0
    else:
        gacc = 0
        gpop = sum(_pop_bytes(lv.fine_ghost_slots.size, q, itemsize)
                   for lv in mgrid.levels)
    return MemoryReport(populations=pops, ghost_accumulators=gacc,
                        ghost_populations=gpop, metadata=meta)


def ghost_layer_bytes(mgrid: MultiGrid, itemsize: int = 8) -> dict[str, int]:
    """Ghost-only bytes of both schemes — the Section IV-A comparison."""
    q = mgrid.lattice.q
    return {
        "optimized": sum(lv.n_ghost * q * itemsize for lv in mgrid.levels),
        "original": sum(_pop_bytes(lv.fine_ghost_slots.size, q, itemsize)
                        for lv in mgrid.levels),
    }


def uniform_memory_bytes(shape: tuple[int, ...], q: int, itemsize: int = 8,
                         buffers: int = 2) -> int:
    """Population bytes of a dense uniform grid (AB: buffers=2, AA: 1)."""
    return _pop_bytes(int(np.prod(shape)), q, itemsize, buffers)


def uniform_aa_max_cube(device: DeviceSpec, q: int = 19, itemsize: int = 4) -> int:
    """Largest cubic uniform domain the AA-method fits on ``device``.

    The paper quotes ~794^3 for a 40 GB card with D3Q19 (Section VI-B);
    that bound corresponds to single-precision populations
    (794^3 * 19 * 4 B = 38 GB), hence the fp32 default here.
    """
    cells = device.capacity_bytes / (q * itemsize)
    return int(np.floor(cells ** (1.0 / 3.0)))


# -- buffer-arena lifetimes (static-analysis hooks) ---------------------------

@dataclass(frozen=True)
class BufferLifetime:
    """Live range of one buffer over a kernel stream.

    ``first``/``last`` are inclusive record indices of the first and last
    kernels touching the buffer (the static analyzer derives them from
    symbolic access sets).  ``slab`` is assigned by :func:`arena_assign`;
    two lifetimes on the same slab alias the same storage, which is legal
    only if their index ranges are disjoint — checked by
    :func:`arena_check`.
    """

    name: str
    nbytes: int
    first: int
    last: int
    slab: int = -1

    def overlaps(self, other: "BufferLifetime") -> bool:
        """Inclusive live-range overlap (both kernels may run the buffer)."""
        return self.first <= other.last and other.first <= self.last


def arena_assign(lifetimes: list[BufferLifetime]) -> list[BufferLifetime]:
    """Greedy linear-scan slab assignment over buffer live ranges.

    Buffers whose live ranges never overlap may share a slab (the arena
    reuses the freed storage); the classic register-allocation sweep by
    increasing ``first`` index is optimal for interval graphs.  Returns
    new lifetimes with ``slab`` filled in.
    """
    out: list[BufferLifetime] = []
    slab_free_at: list[int] = []  # slab index -> last index still in use
    slab_size: list[int] = []
    for lt in sorted(lifetimes, key=lambda t: (t.first, t.last, t.name)):
        slab = -1
        for s, busy_until in enumerate(slab_free_at):
            if busy_until < lt.first and slab_size[s] >= lt.nbytes:
                slab = s
                break
        if slab < 0:
            slab = len(slab_free_at)
            slab_free_at.append(lt.last)
            slab_size.append(lt.nbytes)
        else:
            slab_free_at[slab] = lt.last
        out.append(BufferLifetime(name=lt.name, nbytes=lt.nbytes,
                                  first=lt.first, last=lt.last, slab=slab))
    return out


def arena_check(lifetimes: list[BufferLifetime]) -> list[str]:
    """Aliasing violations of a slab assignment.

    A violation is two buffers assigned to one slab whose live ranges
    overlap — some kernel could read one buffer while the arena has
    already handed its bytes to the other.  Returns human-readable
    findings (empty = assignment is sound).
    """
    problems: list[str] = []
    by_slab: dict[int, list[BufferLifetime]] = {}
    for lt in lifetimes:
        if lt.slab < 0:
            problems.append(f"buffer {lt.name} has no slab assignment")
            continue
        by_slab.setdefault(lt.slab, []).append(lt)
    for slab, members in sorted(by_slab.items()):
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                if a.overlaps(b):
                    problems.append(
                        f"slab {slab}: {a.name} (live [{a.first},{a.last}]) "
                        f"aliases {b.name} (live [{b.first},{b.last}]) "
                        f"while both are in use")
    return problems


def arena_peak_bytes(lifetimes: list[BufferLifetime]) -> int:
    """Arena capacity of an assignment: sum of per-slab maximum sizes."""
    slabs: dict[int, int] = {}
    for lt in lifetimes:
        slabs[lt.slab] = max(slabs.get(lt.slab, 0), lt.nbytes)
    return sum(slabs.values())


# -- Monte-Carlo estimates for paper-scale domains ---------------------------

def mc_level_counts(obstacle: Shape, base_shape: tuple[int, ...],
                    widths: list[float], samples: int = 2_000_000,
                    seed: int = 7) -> dict[str, list[int]]:
    """Per-level voxel counts of a shell-refined domain, by sampling.

    Levels follow :func:`repro.grid.geometry.shell_refinement`: resolution
    is at least ``k+1`` within distance ``widths[k]`` of the obstacle.
    Returns, per level: ``owned`` voxel counts (solid excluded on the
    finest level), ``ghost`` (the optimized scheme's one-coarse-layer
    count) and ``fine_ghost`` (the original scheme's four-fine-layer
    count).
    """
    d = len(base_shape)
    num_levels = len(widths) + 1
    rng = np.random.default_rng(seed)
    pts = rng.random((samples, d)) * np.asarray(base_shape, dtype=np.float64)
    dist = obstacle.sdf(pts)
    domain_cells = float(np.prod(base_shape))

    def frac(mask: np.ndarray) -> float:
        return float(np.count_nonzero(mask)) / samples

    owned, ghost, fine_ghost = [], [], []
    bounds = [np.inf] + list(widths) + [-np.inf]  # level k: bounds[k+1] <= d < bounds[k]
    for lv in range(num_levels):
        cells_at_level = domain_cells * (2 ** (lv * d))
        lo, hi = bounds[lv + 1], bounds[lv]
        own = (dist >= lo) & (dist < hi)
        if lv == num_levels - 1:
            own &= dist >= 0.0  # solid obstacle excluded from the fluid
        owned.append(int(frac(own) * cells_at_level))
        # optimized ghost: one level-lv layer just inside the finer region
        if lv < num_levels - 1:
            h = 2.0 ** (-lv)
            band = (dist < lo) & (dist >= lo - h)
            ghost.append(int(frac(band) * cells_at_level))
        else:
            ghost.append(0)
        # original ghost: four level-lv layers just outside the owned region
        if lv > 0:
            h = 2.0 ** (-lv)
            band = (dist >= hi) & (dist < hi + 4.0 * h)
            fine_ghost.append(int(frac(band) * cells_at_level))
        else:
            fine_ghost.append(0)
    return {"owned": owned, "ghost": ghost, "fine_ghost": fine_ghost}


def refined_memory_bytes(counts: dict[str, list[int]], q: int,
                         itemsize: int = 8, scheme: str = "optimized",
                         metadata_fraction: float = 0.01) -> MemoryReport:
    """Analytic memory of a refined domain from per-level voxel counts.

    ``metadata_fraction`` approximates bitmasks/neighbour tables, which
    the exact accounting shows to be ~1% of the population storage.
    """
    pops = sum(_pop_bytes(n, q, itemsize) for n in counts["owned"])
    if scheme == "optimized":
        gacc = sum(n * q * itemsize for n in counts["ghost"])
        gpop = 0
    elif scheme == "original":
        gacc = 0
        gpop = sum(_pop_bytes(n, q, itemsize) for n in counts["fine_ghost"])
    else:
        raise ValueError(f"unknown scheme {scheme!r}")
    return MemoryReport(populations=pops, ghost_accumulators=gacc,
                        ghost_populations=gpop,
                        metadata=int(metadata_fraction * pops))

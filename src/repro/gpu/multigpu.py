"""Multi-GPU scaling model — the paper's first future-work item.

Section VII: "The foundation laid by our optimized single GPU algorithm
positions us favorably for future research in extending this approach to
multi-GPU frameworks".  This module provides the analytic projection of
that extension: a slab decomposition of the refined domain across ``G``
devices, with per-level halo exchanges over an interconnect.

Model assumptions (documented, deliberately simple):

* voxels of every level split evenly across slabs (the paper's workloads
  centre the refined region, so a balanced split needs a load-balancing
  partitioner — we model its *outcome*, perfect balance, and expose an
  ``imbalance`` knob for sensitivity studies);
* DRAM-traffic time divides by ``G``; per-step launch/sync overhead does
  not (each device drives its own schedule);
* each slab exchanges two halo faces per level per substep; a level's
  face holds ``~V_L^(2/3)`` voxels with a full population set each.
"""

from __future__ import annotations

from dataclasses import dataclass

from .costmodel import TraceCost

__all__ = ["Interconnect", "NVLINK3", "PCIE4", "multi_gpu_time_us",
           "scaling_curve"]


@dataclass(frozen=True)
class Interconnect:
    """Device-to-device link parameters."""

    name: str
    bandwidth_gbs: float       # effective uni-directional bandwidth
    latency_us: float          # per-message overhead

    @property
    def bytes_per_us(self) -> float:
        return self.bandwidth_gbs * 1e3


#: NVLink 3.0 (A100, as in the paper's DGX box).
NVLINK3 = Interconnect("NVLink3", bandwidth_gbs=250.0, latency_us=8.0)
PCIE4 = Interconnect("PCIe4 x16", bandwidth_gbs=24.0, latency_us=15.0)


def _halo_bytes_per_step(active_per_level: list[int], q: int,
                         itemsize: int) -> tuple[float, int]:
    """(bytes, messages) exchanged per coarse step for one slab."""
    total = 0.0
    msgs = 0
    for lv, v in enumerate(active_per_level):
        if v <= 0:
            continue
        face = float(v) ** (2.0 / 3.0)
        substeps = 2 ** lv
        total += 2.0 * face * q * itemsize * substeps
        msgs += 2 * substeps
    return total, msgs


def multi_gpu_time_us(single: TraceCost, n_steps: int,
                      active_per_level: list[int], gpus: int, *,
                      q: int = 27, itemsize: int = 8,
                      link: Interconnect = NVLINK3,
                      imbalance: float = 1.0) -> float:
    """Projected time of ``n_steps`` coarse steps on ``gpus`` devices.

    ``single`` is the single-device cost of the same trace;
    ``imbalance`` >= 1 inflates the slowest slab's compute share.
    """
    if gpus < 1:
        raise ValueError("gpus must be >= 1")
    if imbalance < 1.0:
        raise ValueError("imbalance is a >= 1 multiplier on the slowest slab")
    compute = single.mem_us * imbalance / gpus + single.launch_us
    if gpus == 1:
        return compute
    halo_bytes, msgs = _halo_bytes_per_step(active_per_level, q, itemsize)
    comm = n_steps * (halo_bytes / link.bytes_per_us + msgs * link.latency_us)
    return compute + comm


def scaling_curve(single: TraceCost, n_steps: int,
                  active_per_level: list[int], max_gpus: int = 8, *,
                  q: int = 27, itemsize: int = 8,
                  link: Interconnect = NVLINK3,
                  imbalance: float = 1.0) -> list[dict]:
    """Strong-scaling table: one row per device count.

    Each row reports the projected time, MLUPS, speedup over one device
    and parallel efficiency.
    """
    updates = sum(v * 2 ** lv for lv, v in enumerate(active_per_level)) * n_steps
    rows = []
    t1 = None
    for g in range(1, max_gpus + 1):
        t = multi_gpu_time_us(single, n_steps, active_per_level, g,
                              q=q, itemsize=itemsize, link=link,
                              imbalance=imbalance)
        if t1 is None:
            t1 = t
        rows.append({
            "gpus": g,
            "time_us": t,
            "mlups": updates / t,
            "speedup": t1 / t,
            "efficiency": t1 / (t * g),
        })
    return rows

"""GPU hardware model: device specs, roofline cost model, memory footprint."""

from .costmodel import (FLOPS_PER_CELL, KernelCost, TraceCost, cost_trace,
                        kernel_time_us, predicted_mlups)
from .device import (A100_40GB, A100_80GB, CPU_XEON_32C, V100_32GB, DeviceSpec,
                     get_device)
from .memory import (DeviceOOMError, MemoryReport, ensure_fits,
                     ghost_layer_bytes, grid_memory_report, mc_level_counts,
                     refined_memory_bytes, uniform_aa_max_cube,
                     uniform_memory_bytes)

__all__ = [
    "FLOPS_PER_CELL", "KernelCost", "TraceCost", "cost_trace", "kernel_time_us",
    "predicted_mlups",
    "A100_40GB", "A100_80GB", "CPU_XEON_32C", "V100_32GB", "DeviceSpec",
    "get_device",
    "DeviceOOMError", "ensure_fits",
    "MemoryReport", "ghost_layer_bytes", "grid_memory_report", "mc_level_counts",
    "refined_memory_bytes", "uniform_aa_max_cube", "uniform_memory_bytes",
]

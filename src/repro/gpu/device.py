"""Device specifications for the performance model.

The paper's numbers come from an NVIDIA A100-40GB (DGX, CUDA 11.2).  This
module captures the handful of hardware parameters the cost model needs.
LBM is memory-bound (Section I), so the dominant terms are DRAM bandwidth
and — for the many small interface kernels of the baseline — the fixed
kernel launch latency.

The CPU specs parameterize the comparators of Section VI-A: Palabos runs
on a multi-core CPU, so its stand-in is costed against CPU bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceSpec", "A100_40GB", "A100_80GB", "V100_32GB", "CPU_XEON_32C",
           "get_device"]


@dataclass(frozen=True)
class DeviceSpec:
    """Hardware parameters of one execution target.

    Attributes
    ----------
    mem_bandwidth_gbs:
        Peak DRAM bandwidth in GB/s.
    sustained_fraction:
        Fraction of peak a well-coalesced stencil kernel sustains
        (AoSoA layout + SFC ordering keep this high; Section V-A).
    launch_overhead_us:
        Fixed cost of one kernel launch (driver + scheduling), in
        microseconds.  On CPUs this models the per-sweep function-call
        and OpenMP fork/join cost instead.
    sync_overhead_us:
        Cost of one device synchronisation point, charged once per
        dependency wave (concurrent scheduling) or once per kernel
        (naive serial scheduling).  This is the dominant term for the
        baseline's many tiny interface kernels on small domains —
        exactly the overhead the paper's fusion removes.
    atomic_penalty:
        Multiplier applied to atomically-written bytes (the Accumulate
        scatter).  Contention is low — at most ``2^d`` writers per ghost
        cell (Section IV-A) — so the penalty is modest.
    flops_gflops:
        Double-precision throughput, used for the (rarely binding)
        compute roof.
    mem_capacity_gb:
        Device memory, the Fig. 1 capacity constraint.
    """

    name: str
    mem_bandwidth_gbs: float
    mem_capacity_gb: float
    launch_overhead_us: float = 4.0
    sync_overhead_us: float = 120.0
    sustained_fraction: float = 0.72
    atomic_penalty: float = 2.0
    flops_gflops: float = 9700.0

    @property
    def effective_bandwidth(self) -> float:
        """Sustained bandwidth in bytes per microsecond."""
        return self.mem_bandwidth_gbs * self.sustained_fraction * 1e3

    @property
    def capacity_bytes(self) -> int:
        return int(self.mem_capacity_gb * 1e9)


#: The paper's device (Section VI).
A100_40GB = DeviceSpec("A100-40GB", mem_bandwidth_gbs=1555.0, mem_capacity_gb=40.0)
A100_80GB = DeviceSpec("A100-80GB", mem_bandwidth_gbs=2039.0, mem_capacity_gb=80.0)
V100_32GB = DeviceSpec("V100-32GB", mem_bandwidth_gbs=900.0, mem_capacity_gb=32.0,
                       flops_gflops=7800.0)
#: Comparator for the Palabos (multi-core CPU) experiment of Section VI-A.
CPU_XEON_32C = DeviceSpec("Xeon-32c", mem_bandwidth_gbs=200.0, mem_capacity_gb=512.0,
                          launch_overhead_us=1.0, sync_overhead_us=5.0,
                          sustained_fraction=0.55, atomic_penalty=1.0,
                          flops_gflops=1500.0)

_REGISTRY = {d.name: d for d in (A100_40GB, A100_80GB, V100_32GB, CPU_XEON_32C)}


def get_device(name: str) -> DeviceSpec:
    if name not in _REGISTRY:
        raise KeyError(f"unknown device {name!r}; choose from {sorted(_REGISTRY)}")
    return _REGISTRY[name]

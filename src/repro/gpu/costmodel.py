"""Roofline cost model: kernel traces -> simulated device time -> MLUPS.

This is the hardware substitution of the reproduction (DESIGN.md §2):
instead of timing CUDA kernels on an A100 we cost the recorded kernel
trace of the functional run.  Each kernel pays

    t = launch_overhead + max(bytes_effective / BW_sustained,
                              flops / flop_throughput)

with atomically-written bytes inflated by the device's atomic penalty.
Kernel fusion is rewarded for exactly the physical reasons the paper
gives: fused kernels move fewer intermediate bytes through DRAM and pay
fewer fixed launch overheads.  The optional *concurrent* mode groups
independent kernels (per dependency wave, Section V-C) so they share one
launch overhead — Neon's stream-level concurrency.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..neon.graph import build_dependency_graph, schedule_waves
from ..neon.runtime import KernelRecord
from .device import DeviceSpec

__all__ = ["KernelCost", "TraceCost", "kernel_time_us", "cost_trace",
           "predicted_mlups", "traffic_time_us", "FLOPS_PER_CELL"]

#: Per-cell double-precision flop estimates by kernel family.  Collision
#: dominates (equilibrium + relaxation); KBC roughly triples BGK.  These
#: only matter for the compute roof, which memory-bound LBM rarely hits.
FLOPS_PER_CELL = {
    "C": 260.0, "CA": 270.0,
    "S": 40.0, "SE": 45.0, "SO": 50.0, "SEO": 55.0,
    "CASE": 310.0,
    "A": 30.0, "E": 10.0, "O": 20.0,
}
_KBC_EXTRA = 420.0  # additional flops/cell for the entropic stabiliser


@dataclass(frozen=True)
class KernelCost:
    record: KernelRecord
    time_us: float
    mem_us: float
    flop_us: float


@dataclass(frozen=True)
class TraceCost:
    """Aggregate cost of a kernel trace on one device."""

    total_us: float
    launch_us: float
    mem_us: float
    kernels: int
    bytes_total: int
    device: DeviceSpec

    def per_step(self, n_steps: int) -> float:
        """Simulated microseconds per coarse step."""
        return self.total_us / n_steps


def traffic_time_us(nbytes: int, device: DeviceSpec) -> float:
    """DRAM time of moving ``nbytes`` at the device's sustained bandwidth.

    The bytes-saved -> time-saved conversion the static linter uses to
    price an optimization opportunity (e.g. the double-buffer traffic an
    AA-pattern rewrite would eliminate), kept consistent with the
    roofline memory term of :func:`kernel_time_us`.
    """
    return nbytes / device.effective_bandwidth


def kernel_time_us(rec: KernelRecord, device: DeviceSpec,
                   kbc: bool = False, include_launch: bool = True) -> KernelCost:
    """Roofline time of one kernel on ``device``."""
    eff_bytes = (rec.bytes_read + rec.bytes_written
                 + (device.atomic_penalty - 1.0) * rec.atomic_bytes)
    mem_us = eff_bytes / device.effective_bandwidth
    fpc = FLOPS_PER_CELL.get(rec.name, 100.0)
    if kbc and rec.name in ("C", "CA", "CASE"):
        fpc += _KBC_EXTRA
    flop_us = rec.n_cells * fpc / (device.flops_gflops * 1e3)
    t = max(mem_us, flop_us)
    if include_launch:
        t += device.launch_overhead_us
    return KernelCost(rec, t, mem_us, flop_us)


def cost_trace(records: list[KernelRecord], device: DeviceSpec, *,
               kbc: bool = False, concurrent: bool = False) -> TraceCost:
    """Simulated total time of a trace.

    ``concurrent=True`` models Neon's dependency-driven scheduling: the
    kernels of one dependency wave run on parallel streams and share one
    synchronisation point, while their memory traffic still serialises on
    the shared DRAM interface.  ``concurrent=False`` models the naive
    port with a device synchronisation after every kernel — the
    distributed-heritage behaviour the paper starts from.
    """
    mem = sum(kernel_time_us(r, device, kbc=kbc, include_launch=False).time_us
              for r in records)
    launch = device.launch_overhead_us * len(records)
    if concurrent:
        g = build_dependency_graph(records, reduce=False)
        waves = schedule_waves(g)
        launch += device.sync_overhead_us * len(waves)
    else:
        launch += device.sync_overhead_us * len(records)
    return TraceCost(total_us=launch + mem, launch_us=launch, mem_us=mem,
                     kernels=len(records),
                     bytes_total=sum(r.bytes_total for r in records),
                     device=device)


def predicted_mlups(active_per_level: list[int], n_coarse_steps: int,
                    trace: TraceCost) -> float:
    """The paper's MLUPS metric against the *simulated* device time."""
    updates = sum(v * (2 ** lv) * n_coarse_steps
                  for lv, v in enumerate(active_per_level))
    return updates / trace.total_us

"""Workload builders for the paper's experiments (Section VI).

Each builder returns a :class:`Workload` bundling the refinement spec,
lattice/collision choice and the relaxation parameter, ready to hand to
:class:`~repro.core.simulation.Simulation`.  Paper-scale domains do not
fit a CPU-functional run, so builders take a ``scale`` factor; the
benchmarks run the scaled domain functionally and extrapolate the kernel
trace to full size with :mod:`repro.bench.model`.
"""

from __future__ import annotations

from dataclasses import dataclass


from ..grid.geometry import (AirplaneProxy, Shape, Sphere, enforce_shell_separation,
                             shell_refinement, voxelize, wall_refinement)
from ..grid.multigrid import DomainBC, FaceBC, RefinementSpec

__all__ = ["Workload", "lid_cavity", "sphere_tunnel", "airplane_tunnel",
           "TABLE1_SIZES", "TABLE1_DISTRIBUTIONS"]

#: The finest-level domain sizes of Table I.
TABLE1_SIZES = ((272, 192, 272), (544, 384, 544), (816, 576, 816))
#: Active-voxel distributions of Table I, finest level first (x 10^6).
TABLE1_DISTRIBUTIONS = ((0.602e6, 0.296e6, 0.175e6),
                        (4.81e6, 2.37e6, 1.40e6),
                        (16.25e6, 8.0e6, 4.74e6))


@dataclass
class Workload:
    """A fully specified simulation setup."""

    name: str
    spec: RefinementSpec
    lattice: str
    collision: str
    viscosity: float
    char_velocity: float
    reynolds: float
    description: str = ""
    obstacle: Shape | None = None

    def finest_shape(self) -> tuple[int, ...]:
        return self.spec.level_shape(self.spec.num_levels - 1)

    def sim_config(self, **overrides):
        """The workload's physics as a :class:`~repro.core.config.SimConfig`.

        ``overrides`` (fusion, threaded, dtype, ...) are folded in, so
        ``Simulation.from_config(wl.spec, wl.sim_config(fusion=cfg))`` is
        the one-line way to instantiate any benchmark setup.
        """
        from ..core.config import SimConfig
        return SimConfig(lattice=self.lattice, collision=self.collision,
                         viscosity=self.viscosity, **overrides)


def lid_cavity(base: tuple[int, ...] = (24, 24, 24), num_levels: int = 3,
               reynolds: float = 100.0, lid_speed: float = 0.06,
               lattice: str = "D3Q19", collision: str = "bgk",
               widths: list[float] | None = None,
               block_size: int = 4) -> Workload:
    """Lid-driven cavity with wall-hugging refinement (Figs. 6-7).

    The lid (top face of the last axis) moves along +x; all other faces
    are resting no-slip walls.  ``reynolds = lid_speed * edge / nu`` with
    the edge length measured in coarse cells.
    """
    d = len(base)
    if widths is None:
        # geometric shells: each level halves the band width
        w0 = max(2.5, min(base) / 5.0)
        widths = enforce_shell_separation([w0 / (2 ** k)
                                           for k in range(num_levels - 1)])
    regions = wall_refinement(base, num_levels, widths) if num_levels > 1 else []
    lid_axis = f"{'xyz'[d - 1]}+"
    vel = tuple([lid_speed] + [0.0] * (d - 1))
    bc = DomainBC({lid_axis: FaceBC("moving", velocity=vel)})
    nu = lid_speed * base[0] / reynolds
    return Workload(
        name=f"cavity-{'x'.join(map(str, base))}-L{num_levels}",
        spec=RefinementSpec(base_shape=base, refine_regions=regions, bc=bc,
                            block_size=block_size),
        lattice=lattice, collision=collision, viscosity=nu,
        char_velocity=lid_speed, reynolds=reynolds,
        description="lid-driven cavity, halfway bounce-back walls + moving lid")


def sphere_tunnel(finest_shape: tuple[int, int, int] = TABLE1_SIZES[0],
                  scale: float = 1.0, num_levels: int = 3,
                  reynolds: float = 4000.0, inlet_speed: float = 0.05,
                  lattice: str = "D3Q27", collision: str = "kbc",
                  block_size: int = 4) -> Workload:
    """Virtual wind tunnel with a sphere (Table I, Figs. 8-9).

    ``finest_shape`` is the tunnel size expressed at the finest level, as
    in Table I; ``scale`` shrinks it for functional runs.  Inlet at x-,
    outflow at x+, no-slip side walls; sphere no-slip by halfway
    bounce-back.  ``reynolds = inlet_speed * R / nu`` (paper, Fig. 8).
    """
    fine_factor = 2 ** (num_levels - 1)
    base = tuple(max(int(round(s * scale)) // fine_factor, 8) for s in finest_shape)
    # Sphere a third of the way downstream, sized relative to the tunnel
    # cross-section; shells sized to keep interfaces legally separated.
    cx = base[0] / 3.0
    cy, cz = base[1] / 2.0, base[2] / 2.0
    radius = 0.11 * min(base[1], base[2])
    sphere = Sphere((cx, cy, cz), radius)
    widths = enforce_shell_separation([radius * 2.2 / (2 ** k)
                                       for k in range(num_levels - 1)])
    regions = shell_refinement(sphere, base, num_levels, widths) if num_levels > 1 else []
    solid = voxelize(sphere, tuple(s * fine_factor for s in base), num_levels - 1)
    bc = DomainBC({"x-": FaceBC("inlet", velocity=(inlet_speed, 0.0, 0.0)),
                   "x+": FaceBC("outflow")})
    nu = inlet_speed * radius * fine_factor / reynolds  # R in coarse units -> finest
    nu = max(nu, 1e-4)
    return Workload(
        name=f"sphere-{'x'.join(map(str, finest_shape))}-s{scale:g}",
        spec=RefinementSpec(base_shape=base, refine_regions=regions, solid=solid,
                            bc=bc, block_size=block_size),
        lattice=lattice, collision=collision, viscosity=nu,
        char_velocity=inlet_speed, reynolds=reynolds,
        description="flow over a sphere in a virtual wind tunnel",
        obstacle=sphere)


def airplane_geometry(finest_shape: tuple[int, int, int] = (1596, 840, 840),
                      scale: float = 1.0, num_levels: int = 4):
    """Geometry of the Fig.-1 workload without building any grid masks.

    Returns ``(base_shape, airplane_proxy, shell_widths)`` — all the
    analytic memory/capability experiments need.  Use this (not
    :func:`airplane_tunnel`) at ``scale=1.0``: voxelising the full
    1596x840x840 domain would need tens of GB of host memory.
    """
    fine_factor = 2 ** (num_levels - 1)
    base = tuple(max(int(round(s * scale)) // fine_factor, 10) for s in finest_shape)
    length = 0.45 * base[0]
    plane = AirplaneProxy((base[0] / 2.2, base[1] / 2.0, base[2] / 2.0), length)
    widths = enforce_shell_separation([length * 0.18 / (2.7 ** k)
                                       for k in range(num_levels - 1)])
    return base, plane, widths


def airplane_tunnel(finest_shape: tuple[int, int, int] = (1596, 840, 840),
                    scale: float = 1.0, num_levels: int = 4,
                    inlet_speed: float = 0.05, reynolds: float = 1e5,
                    lattice: str = "D3Q27", collision: str = "kbc",
                    block_size: int = 4) -> Workload:
    """The Fig.-1 capability experiment: an aircraft in a 1596x840x840 tunnel.

    The paper's aircraft mesh is proprietary; :class:`AirplaneProxy`
    substitutes a primitive-composed airframe with the same role — a
    slender body that concentrates fine voxels in a small fraction of the
    tunnel (see DESIGN.md).  Use ``scale`` << 1 for functional runs; the
    memory benchmark evaluates the full size analytically.
    """
    # Thin shells hugging the airframe: this is what makes the Fig.-1
    # domain fit a 40 GB card (~18 GB at full scale, see the memory bench).
    fine_factor = 2 ** (num_levels - 1)
    base, plane, widths = airplane_geometry(finest_shape, scale, num_levels)
    length = 0.45 * base[0]
    regions = shell_refinement(plane, base, num_levels, widths) if num_levels > 1 else []
    solid = voxelize(plane, tuple(s * fine_factor for s in base), num_levels - 1)
    bc = DomainBC({"x-": FaceBC("inlet", velocity=(inlet_speed, 0.0, 0.0)),
                   "x+": FaceBC("outflow")})
    chord = length * fine_factor
    nu = max(inlet_speed * chord / reynolds, 1e-4)
    return Workload(
        name=f"airplane-{'x'.join(map(str, finest_shape))}-s{scale:g}",
        spec=RefinementSpec(base_shape=base, refine_regions=regions, solid=solid,
                            bc=bc, block_size=block_size),
        lattice=lattice, collision=collision, viscosity=nu,
        char_velocity=inlet_speed, reynolds=reynolds,
        description="airflow over an airplane proxy in a virtual wind tunnel",
        obstacle=plane)

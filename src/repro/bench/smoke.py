"""``python -m repro.bench.smoke`` — the quick benchmark pass CI tracks.

One small lid-cavity measurement per direction-setting fusion config
(the original baseline, the modified baseline and the full fusion),
under **both** execution backends: the interpreted reference and the
compiled step-plan replay (:mod:`repro.backend`).  The payload carries
both series plus the per-config speedup, is written as
``BENCH_smoke.json`` and — through the shared writer — appended to
``BENCH_HISTORY.jsonl``.  The point is not absolute speed (the
functional NumPy host is slow); it is a *stable series*: the same tiny
workload measured the same way every PR, so the regression gate
(:mod:`repro.bench.history`) has a trajectory to judge.

The smoke pass also *asserts* the compiled backend's raison d'être: the
geometric-mean speedup over the interpreted path must reach
``$REPRO_SMOKE_MIN_SPEEDUP`` (default 1.3×) or the process exits
non-zero — a compiled backend that stops paying for itself fails CI the
same way a broken test would.  The history line is written *before* the
gate is judged, so a failing run still leaves its evidence in the
trajectory.

A second leg (:func:`run_mp_smoke`, skippable with ``--skip-mp``)
measures the process-parallel mp backend against the threaded executor
on a larger cavity and appends its own ``smoke_mp`` history record,
salted with ``backend="mp"`` so the series keeps a separate baseline.
On hosts with two or more cores the mp leg gates on
``$REPRO_SMOKE_MP_MIN_SPEEDUP`` (default 1.3×); everywhere it gates on
the pool actually being used (zero counted fallback steps).

Runs in seconds and needs nothing beyond the package itself, which is
what ``make bench-check`` and the ``perf-observatory`` CI job want.
"""

from __future__ import annotations

import argparse
import os
from typing import Sequence

__all__ = ["SMOKE_CONFIGS", "MP_SMOKE_CONFIG", "DEFAULT_MIN_SPEEDUP",
           "DEFAULT_MP_MIN_SPEEDUP", "run_smoke", "run_mp_smoke", "main"]

#: Config names measured by the smoke pass — the endpoints of Fig. 9's
#: ablation (both baselines and the full fusion), enough to catch a
#: regression in either the unfused or the fused code path.
SMOKE_CONFIGS = ("baseline-4a", "baseline-4b", "ours-4f")

#: Compiled-over-interpreted geometric-mean speedup the smoke pass
#: requires (override with ``$REPRO_SMOKE_MIN_SPEEDUP``).
DEFAULT_MIN_SPEEDUP = 1.3

#: Config measured by the process-parallel leg (the paper's best; one
#: config keeps the leg fast — the bit-identity of the others is the
#: test suite's job, not the benchmark's).
MP_SMOKE_CONFIG = "ours-4f"

#: mp-over-threaded speedup the smoke pass requires on multi-core hosts
#: (override with ``$REPRO_SMOKE_MP_MIN_SPEEDUP``).  Single-core hosts
#: report the ratio but never gate on it: with one core the worker pool
#: cannot beat in-process threads no matter how well it shards.
DEFAULT_MP_MIN_SPEEDUP = 1.3


def _geomean(values: Sequence[float]) -> float:
    prod = 1.0
    for v in values:
        prod *= v
    return prod ** (1.0 / len(values)) if values else 0.0


def run_smoke(steps: int = 3, warmup: int = 1) -> dict:
    """Measure the smoke workload under every smoke config and backend.

    Returns the full payload: ``measurements`` (interpreted series, the
    historical key so old trajectory series continue), ``compiled``
    (compiled series) and ``speedup`` (per-config wall-clock ratios plus
    their geometric mean).  The compiled measurements absorb plan
    compilation in the warmup, so the ratio compares steady-state replay
    against steady-state interpretation.
    """
    from ..core.fusion import get_config
    from .harness import measure
    from .workloads import lid_cavity

    wl = lid_cavity(base=(16, 16), num_levels=2, lattice="D2Q9")
    payload: dict = {"workload": wl.name, "steps": steps,
                     "backend": "compiled",
                     "measurements": {}, "compiled": {}, "speedup": {}}
    ratios: list[float] = []
    for name in SMOKE_CONFIGS:
        cfg = get_config(name)
        mi = measure(wl, cfg, steps=steps, warmup=warmup,
                     backend="interpreted")
        mc = measure(wl, cfg, steps=steps, warmup=warmup,
                     backend="compiled")
        payload["measurements"][name] = mi.summary()
        payload["compiled"][name] = mc.summary()
        ratio = (mi.wall_seconds / mc.wall_seconds
                 if mc.wall_seconds > 0 else float("inf"))
        ratios.append(ratio)
        payload["speedup"][name] = {"speedup": ratio}
    payload["speedup"]["mean"] = {"speedup": _geomean(ratios)}
    return payload


def run_mp_smoke(steps: int = 3, warmup: int = 1) -> dict:
    """Measure the mp backend against the threaded in-process executor.

    Uses a larger cavity than the main pass (64x64) so kernel work
    dominates the per-wave IPC round-trips, and a single config
    (:data:`MP_SMOKE_CONFIG`).  The payload carries ``backend: "mp"``,
    which salts the history record's config digest — the mp series gets
    its own regression baseline instead of being judged against (or
    flattering) the in-process series.
    """
    from ..core.fusion import get_config
    from .harness import measure
    from .workloads import lid_cavity

    wl = lid_cavity(base=(64, 64), num_levels=2, lattice="D2Q9")
    cfg = get_config(MP_SMOKE_CONFIG)
    mt = measure(wl, cfg, steps=steps, warmup=warmup,
                 backend="interpreted", threaded=True)
    mm = measure(wl, cfg, steps=steps, warmup=warmup,
                 backend="mp", threaded=False)
    speedup = (mt.wall_seconds / mm.wall_seconds
               if mm.wall_seconds > 0 else float("inf"))
    vals = mm.metrics.get("metrics", {})

    def _val(key):
        return vals.get(key, {}).get("value", 0.0)

    return {
        "workload": wl.name, "steps": steps, "backend": "mp",
        "cpu_count": os.cpu_count() or 1,
        "threaded": mt.summary(), "mp": mm.summary(),
        "speedup": {MP_SMOKE_CONFIG: {"speedup": speedup}},
        "mp_pool": {"workers": _val("mp_workers"),
                    "utilisation": _val("mp_utilisation"),
                    "imbalance": _val("mp_shard_imbalance"),
                    "fallback_steps": _val("plan_fallback_steps")},
    }


def main(argv: Sequence[str] | None = None) -> int:
    from ..obs.metrics import write_bench_json

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.smoke",
        description="Quick benchmark pass: one small cavity measurement "
                    "per direction-setting fusion config, under both the "
                    "interpreted and compiled backends; appends to "
                    "BENCH_HISTORY.jsonl and gates on the compiled "
                    "speedup.")
    parser.add_argument("--steps", type=int, default=3,
                        help="coarse steps per measurement (default 3)")
    parser.add_argument("--out", default=None,
                        help="output directory (default: $BENCH_OUT_DIR "
                             "or the repo root)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="required compiled/interpreted geomean "
                             "speedup (default $REPRO_SMOKE_MIN_SPEEDUP "
                             f"or {DEFAULT_MIN_SPEEDUP})")
    parser.add_argument("--skip-mp", action="store_true",
                        help="skip the process-parallel (mp backend) leg")
    args = parser.parse_args(argv)
    min_speedup = args.min_speedup
    if min_speedup is None:
        min_speedup = float(os.environ.get("REPRO_SMOKE_MIN_SPEEDUP",
                                           DEFAULT_MIN_SPEEDUP))

    payload = run_smoke(steps=args.steps)
    # History first: a gate failure must still leave its evidence line.
    path = write_bench_json("smoke", payload, args.out)
    for name, s in payload["measurements"].items():
        ratio = payload["speedup"][name]["speedup"]
        print(f"  {name:<14} interpreted {s['wall_seconds']:.3f}s  "
              f"compiled {payload['compiled'][name]['wall_seconds']:.3f}s  "
              f"speedup {ratio:.2f}x  "
              f"{s['kernels_per_step']:.0f} kernels/step")
    mean = payload["speedup"]["mean"]["speedup"]
    print(f"  geomean speedup {mean:.2f}x (gate: >= {min_speedup:.2f}x)")
    print(f"  wrote {path} (+ BENCH_HISTORY.jsonl line)")
    failed = mean < min_speedup
    if failed:
        print(f"  FAIL: compiled backend below the {min_speedup:.2f}x "
              f"speedup gate")
    if not args.skip_mp:
        mp_min = float(os.environ.get("REPRO_SMOKE_MP_MIN_SPEEDUP",
                                      DEFAULT_MP_MIN_SPEEDUP))
        mp_payload = run_mp_smoke(steps=args.steps)
        # Separate bench name + backend salt: the mp series starts its
        # own baseline in the history trajectory.
        mp_path = write_bench_json("smoke_mp", mp_payload, args.out)
        ratio = mp_payload["speedup"][MP_SMOKE_CONFIG]["speedup"]
        pool = mp_payload["mp_pool"]
        cores = mp_payload["cpu_count"]
        print(f"  {MP_SMOKE_CONFIG:<14} threaded "
              f"{mp_payload['threaded']['wall_seconds']:.3f}s  "
              f"mp {mp_payload['mp']['wall_seconds']:.3f}s  "
              f"speedup {ratio:.2f}x  "
              f"({pool['workers']:.0f} workers, "
              f"util {pool['utilisation']:.2f}, {cores} cores)")
        print(f"  wrote {mp_path} (+ BENCH_HISTORY.jsonl line)")
        if pool["fallback_steps"]:
            print(f"  FAIL: mp leg fell back to in-process execution for "
                  f"{pool['fallback_steps']:.0f} steps")
            failed = True
        elif cores >= 2 and ratio < mp_min:
            # Only gate where a speedup is physically possible.
            print(f"  FAIL: mp backend below the {mp_min:.2f}x "
                  f"speedup gate on a {cores}-core host")
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m
    import sys
    print("note: 'python -m repro.bench.smoke' is deprecated; use "
          "'python -m repro bench'", file=sys.stderr)
    raise SystemExit(main())

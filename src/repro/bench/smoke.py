"""``python -m repro.bench.smoke`` — the quick benchmark pass CI tracks.

One small lid-cavity measurement per direction-setting fusion config
(the original baseline, the modified baseline and the full fusion),
written as ``BENCH_smoke.json`` and — through the shared writer —
appended to ``BENCH_HISTORY.jsonl``.  The point is not absolute speed
(the functional NumPy host is slow); it is a *stable series*: the same
tiny workload measured the same way every PR, so the regression gate
(:mod:`repro.bench.history`) has a trajectory to judge.

Runs in seconds and needs nothing beyond the package itself, which is
what ``make bench-check`` and the ``perf-observatory`` CI job want.
"""

from __future__ import annotations

import argparse
from typing import Sequence

__all__ = ["SMOKE_CONFIGS", "run_smoke", "main"]

#: Config names measured by the smoke pass — the endpoints of Fig. 9's
#: ablation (both baselines and the full fusion), enough to catch a
#: regression in either the unfused or the fused code path.
SMOKE_CONFIGS = ("baseline-4a", "baseline-4b", "ours-4f")


def run_smoke(steps: int = 3, warmup: int = 1) -> dict:
    """Measure the smoke workload under every smoke config."""
    from ..core.fusion import get_config
    from .harness import measure
    from .workloads import lid_cavity

    wl = lid_cavity(base=(16, 16), num_levels=2, lattice="D2Q9")
    payload: dict = {"workload": wl.name, "steps": steps,
                     "measurements": {}}
    for name in SMOKE_CONFIGS:
        m = measure(wl, get_config(name), steps=steps, warmup=warmup)
        payload["measurements"][name] = m.summary()
    return payload


def main(argv: Sequence[str] | None = None) -> int:
    from ..obs.metrics import write_bench_json

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.smoke",
        description="Quick benchmark pass: one small cavity measurement "
                    "per direction-setting fusion config; appends to "
                    "BENCH_HISTORY.jsonl for the regression gate.")
    parser.add_argument("--steps", type=int, default=3,
                        help="coarse steps per measurement (default 3)")
    parser.add_argument("--out", default=None,
                        help="output directory (default: $BENCH_OUT_DIR "
                             "or the repo root)")
    args = parser.parse_args(argv)

    payload = run_smoke(steps=args.steps)
    path = write_bench_json("smoke", payload, args.out)
    for name, s in payload["measurements"].items():
        print(f"  {name:<14} wall {s['wall_seconds']:.3f}s  "
              f"{s['kernels_per_step']:.0f} kernels/step  "
              f"arena peak {s['arena_peak_bytes']} B")
    print(f"  wrote {path} (+ BENCH_HISTORY.jsonl line)")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m
    raise SystemExit(main())

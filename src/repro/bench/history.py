"""Benchmark history: an append-only perf trajectory with a regression gate.

Every benchmark run appends one JSON line to ``BENCH_HISTORY.jsonl`` at
the repository root (the ``BENCH_*.json`` snapshot files are overwritten
per run and gitignored; the history line is what survives across PRs).
A record carries everything needed to compare runs honestly:

* ``git_sha`` — the commit the run measured;
* ``host`` — a fingerprint of the machine (regressions are only judged
  against a baseline from the *same* host: cross-host wall clock is not
  comparable);
* ``config_digest`` — a hash of the benchmark's watched-metric key set,
  so a benchmark that changes shape starts a fresh baseline instead of
  "regressing" against an incomparable series;
* ``metrics`` — the flat numeric watch-list extracted from the
  ``BENCH_*.json`` payload (wall seconds, MLUPS, kernels/step, ...);
* ``bandwidth`` — the roofline summary when the run traced spans.

The regression detector is noise-aware: the baseline for each
(bench, host, digest, metric) series is the **rolling median** of the
previous ``window`` values, the threshold is ``k`` times the scaled
**median absolute deviation** of those values (with a relative noise
floor), and a deviation must *also* exceed ``min_ratio`` to be reported
at all.  Findings worse than ``fail_ratio`` are severity ``fail`` and
gate the exit status of ``python -m repro.bench.history --check``;
milder findings are ``warn`` and informational (shared CI hosts are
noisy), unless ``--strict``.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import subprocess
import sys
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Any, Iterable, Sequence

try:  # POSIX only; appends on other platforms skip the >PIPE_BUF lock
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX host
    fcntl = None  # type: ignore[assignment]

try:
    from select import PIPE_BUF as _PIPE_BUF
except ImportError:  # pragma: no cover - non-POSIX host
    _PIPE_BUF = 512

__all__ = [
    "HISTORY_VERSION", "WATCHED_METRICS", "LOWER_IS_BETTER",
    "repo_root", "history_path", "git_sha", "host_fingerprint",
    "config_digest", "build_record", "record_from_bench", "append_record",
    "load_history", "RegressionFinding", "RegressionReport",
    "detect_regressions", "seed_synthetic_history", "main",
]

HISTORY_VERSION = 1
HISTORY_BASENAME = "BENCH_HISTORY.jsonl"

#: Metric leaf keys worth tracking across PRs, with their direction.
#: ``True`` means lower is better (time, traffic, footprint); ``False``
#: means higher is better (throughput, bandwidth, speedup).
LOWER_IS_BETTER: dict[str, bool] = {
    "wall_seconds": True,
    "kernels_per_step": True,
    "bytes_per_step": True,
    "atomic_bytes": True,
    "arena_peak_bytes": True,
    "wall_mlups": False,
    "sim_mlups": False,
    "speedup": False,
    "achieved_bw": False,
    "achieved_fraction": False,
    "mlups": False,
}
WATCHED_METRICS = frozenset(LOWER_IS_BETTER)


# -- provenance ----------------------------------------------------------------

def repo_root(start: str | None = None) -> str:
    """Nearest ancestor directory holding ``pyproject.toml`` or ``.git``.

    Searched from ``start`` (default: this file's location, then the
    working directory), falling back to the working directory — so the
    trajectory lands at the repo root for a source checkout and in cwd
    for an installed package.
    """
    candidates = [start] if start else [os.path.dirname(os.path.abspath(__file__)),
                                        os.getcwd()]
    for origin in candidates:
        d = os.path.abspath(origin)
        while True:
            if any(os.path.exists(os.path.join(d, probe))
                   for probe in ("pyproject.toml", ".git")):
                return d
            parent = os.path.dirname(d)
            if parent == d:
                break
            d = parent
    return os.getcwd()


def history_path(out_dir: str | None = None) -> str:
    """Location of the append-only trajectory file."""
    return os.path.join(out_dir if out_dir is not None else repo_root(),
                        HISTORY_BASENAME)


def git_sha(cwd: str | None = None) -> str:
    """Current commit hash, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd or repo_root(),
            capture_output=True, text=True, timeout=10)
        sha = out.stdout.strip()
        return sha if out.returncode == 0 and sha else "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def host_fingerprint() -> dict:
    """Stable identity of the measuring machine.

    ``id`` is a short hash of the stable components; the regression
    detector groups series by it so baselines never mix hosts.
    """
    info = {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count() or 1,
    }
    digest = hashlib.sha256(
        json.dumps(info, sort_keys=True).encode()).hexdigest()[:12]
    return {"id": digest, **info}


def config_digest(metrics: dict[str, float],
                  backend: str | None = None) -> str:
    """Hash of the watched-metric *key set* — the series identity.

    Two runs are comparable when they measured the same quantities; a
    benchmark that adds or drops a config/workload changes its key set
    and therefore starts a fresh baseline.  ``backend`` salts the digest
    so compiled-backend runs start their own baseline instead of
    "improving" against interpreted history (and interpreted runs never
    regress against compiled ones); ``None`` leaves digests of
    backend-agnostic benchmarks unchanged.
    """
    keys = sorted(metrics)
    if backend:
        keys.append(f"backend={backend}")
    return hashlib.sha256("\n".join(keys).encode()).hexdigest()[:12]


# -- record construction -------------------------------------------------------

def _numeric_leaves(payload: Any, prefix: str = "",
                    depth: int = 0) -> Iterable[tuple[str, float]]:
    """Watched numeric leaves of a nested bench payload, dotted paths."""
    if depth > 6:
        return
    if isinstance(payload, dict):
        for k, v in payload.items():
            key = f"{prefix}.{k}" if prefix else str(k)
            if isinstance(v, bool):
                continue
            if isinstance(v, (int, float)) and k in WATCHED_METRICS:
                yield key, float(v)
            elif isinstance(v, dict):
                yield from _numeric_leaves(v, key, depth + 1)


def build_record(bench: str, metrics: dict[str, float], *,
                 bandwidth: dict | None = None,
                 labels: dict | None = None,
                 sha: str | None = None,
                 backend: str | None = None) -> dict:
    """Assemble one history line (see the module docstring for fields).

    ``backend`` records which execution backend produced the numbers and
    salts the :func:`config_digest`, so per-backend series never share a
    regression baseline.
    """
    rec = {
        "v": HISTORY_VERSION,
        "bench": bench,
        "recorded_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "git_sha": sha if sha is not None else git_sha(),
        "host": host_fingerprint(),
        "config_digest": config_digest(metrics, backend=backend),
        "metrics": dict(sorted(metrics.items())),
        "bandwidth": bandwidth or {},
        "labels": labels or {},
    }
    if backend is not None:
        rec["backend"] = backend
    return rec


def record_from_bench(name: str, payload: dict) -> dict:
    """History record extracted from a ``BENCH_<name>.json`` payload.

    Scans the (possibly nested) payload for watched numeric leaves; the
    dotted path disambiguates per-config entries
    (``measurements.ours-4f.wall_mlups``).  A ``backend`` key in the
    payload is carried into the record and its digest.
    """
    metrics = dict(_numeric_leaves(payload))
    bandwidth = payload.get("bandwidth") if isinstance(
        payload.get("bandwidth"), dict) else None
    backend = payload.get("backend") if isinstance(
        payload.get("backend"), str) else None
    return build_record(name, metrics, bandwidth=bandwidth, backend=backend)


def append_record(record: dict, path: str | None = None) -> str:
    """Append one JSON line to the trajectory; returns the file path.

    The encoded line goes down in a single unbuffered ``os.write`` on an
    ``O_APPEND`` fd — no user-space buffering that could flush a record
    in interleaving chunks — so concurrent benchmark processes (parallel
    CI legs, mp workers) only ever append whole lines.  Lines longer
    than ``PIPE_BUF`` additionally take an advisory ``flock``, since the
    POSIX atomicity guarantee stops there.
    """
    p = path if path is not None else history_path()
    os.makedirs(os.path.dirname(p) or ".", exist_ok=True)
    data = (json.dumps(record, sort_keys=True, default=str) + "\n").encode()
    fd = os.open(p, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        if len(data) > _PIPE_BUF and fcntl is not None:
            # Atomicity of a single O_APPEND write is only guaranteed up
            # to PIPE_BUF by POSIX; bigger lines serialize writers via an
            # advisory lock (released with the fd on close).
            try:
                fcntl.flock(fd, fcntl.LOCK_EX)
            except OSError:
                pass  # e.g. filesystems without lock support
        view = memoryview(data)
        while view:
            view = view[os.write(fd, view):]
    finally:
        os.close(fd)
    return p


def load_history(path: str | None = None) -> list[dict]:
    """All parseable records, oldest first; torn/blank lines are skipped."""
    p = path if path is not None else history_path()
    out: list[dict] = []
    if not os.path.exists(p):
        return out
    with open(p) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail of an interrupted writer
            if isinstance(rec, dict) and "bench" in rec:
                out.append(rec)
    return out


# -- regression detection ------------------------------------------------------

@dataclass(frozen=True)
class RegressionFinding:
    """One metric of one benchmark moving the wrong way."""

    bench: str
    metric: str
    host: str
    value: float
    baseline: float            # rolling median of the prior window
    ratio: float               # value/baseline oriented so > 1 is worse
    threshold: float           # MAD-scaled deviation that was exceeded
    window: int                # prior points the baseline stands on
    severity: str              # "warn" | "fail"
    git_sha: str

    def __str__(self) -> str:
        return (f"{self.severity}: {self.bench}:{self.metric} = "
                f"{self.value:.6g} vs baseline {self.baseline:.6g} "
                f"({self.ratio:.2f}x worse over {self.window} runs, "
                f"host {self.host}, {self.git_sha[:10]})")

    def as_dict(self) -> dict:
        return {"bench": self.bench, "metric": self.metric, "host": self.host,
                "value": self.value, "baseline": self.baseline,
                "ratio": round(self.ratio, 4), "threshold": self.threshold,
                "window": self.window, "severity": self.severity,
                "git_sha": self.git_sha}


@dataclass(frozen=True)
class RegressionReport:
    """Outcome of one ``--check`` sweep."""

    records: int
    series_checked: int
    findings: tuple[RegressionFinding, ...]

    @property
    def failures(self) -> tuple[RegressionFinding, ...]:
        return tuple(f for f in self.findings if f.severity == "fail")

    @property
    def warnings(self) -> tuple[RegressionFinding, ...]:
        return tuple(f for f in self.findings if f.severity == "warn")

    def as_dict(self) -> dict:
        return {"records": self.records, "series_checked": self.series_checked,
                "findings": [f.as_dict() for f in self.findings]}


def _median(values: Sequence[float]) -> float:
    s = sorted(values)
    n = len(s)
    mid = n // 2
    return s[mid] if n % 2 else 0.5 * (s[mid - 1] + s[mid])


def detect_regressions(history: Sequence[dict], *, window: int = 8,
                       mad_factor: float = 4.0, min_ratio: float = 1.25,
                       fail_ratio: float = 5.0, min_history: int = 3,
                       noise_floor: float = 0.10) -> RegressionReport:
    """Judge the newest record of every series against its own past.

    A series is (bench, host id, config digest, metric).  The newest
    value is compared to the rolling median of up to ``window``
    *earlier* values; at least ``min_history`` of them must exist.  The
    value is flagged when it is worse than the baseline by more than

        max(mad_factor * 1.4826 * MAD, noise_floor * |baseline|)

    **and** the worse-direction ratio exceeds ``min_ratio`` (both guards
    must agree: the MAD term adapts to each series' own noise, the ratio
    term keeps a perfectly quiet series from flagging microscopic
    drift).  Ratios at or above ``fail_ratio`` escalate to ``fail``.
    """
    by_series: dict[tuple[str, str, str], list[dict]] = {}
    for rec in history:
        key = (rec.get("bench", "?"),
               rec.get("host", {}).get("id", "?"),
               rec.get("config_digest", "?"))
        by_series.setdefault(key, []).append(rec)

    findings: list[RegressionFinding] = []
    series_checked = 0
    for (bench, host, _digest), recs in sorted(by_series.items()):
        if len(recs) < min_history + 1:
            continue
        latest = recs[-1]
        prior = recs[-(window + 1):-1]
        for metric, lower_better in LOWER_IS_BETTER.items():
            pairs = [(r["metrics"].get(k), k)
                     for r in [latest]
                     for k in latest.get("metrics", {})
                     if k == metric or k.endswith("." + metric)]
            for value, key in pairs:
                if value is None:
                    continue
                past = [r["metrics"][key] for r in prior
                        if isinstance(r.get("metrics", {}).get(key),
                                      (int, float))]
                if len(past) < min_history:
                    continue
                series_checked += 1
                baseline = _median(past)
                if baseline == 0:
                    continue
                mad = _median([abs(v - baseline) for v in past])
                threshold = max(mad_factor * 1.4826 * mad,
                                noise_floor * abs(baseline))
                delta = (value - baseline) if lower_better \
                    else (baseline - value)
                if delta <= threshold:
                    continue
                ratio = (value / baseline) if lower_better \
                    else (baseline / value if value > 0 else float("inf"))
                if ratio < min_ratio:
                    continue
                findings.append(RegressionFinding(
                    bench=bench, metric=key, host=host,
                    value=float(value), baseline=float(baseline),
                    ratio=float(ratio), threshold=float(threshold),
                    window=len(past),
                    severity="fail" if ratio >= fail_ratio else "warn",
                    git_sha=str(latest.get("git_sha", "unknown"))))
    return RegressionReport(records=len(history),
                            series_checked=series_checked,
                            findings=tuple(findings))


def seed_synthetic_history(path: str, *, runs: int = 6,
                           slowdown: float | None = None,
                           bench: str = "synthetic",
                           base_seconds: float = 1.0,
                           jitter: float = 0.02) -> str:
    """Write a deterministic fixture history (tests and the README demo).

    Emits ``runs`` records of one benchmark with ±``jitter`` alternating
    noise around ``base_seconds``; when ``slowdown`` is given the *last*
    record's ``wall_seconds`` is multiplied by it (and its MLUPS divided),
    simulating a PR that regressed the hot path.
    """
    host = host_fingerprint()
    for i in range(runs):
        wobble = 1.0 + jitter * (1 if i % 2 else -1)
        seconds = base_seconds * wobble
        mlups = 100.0 / wobble
        if slowdown is not None and i == runs - 1:
            seconds *= slowdown
            mlups /= slowdown
        metrics = {"wall_seconds": seconds, "wall_mlups": mlups,
                   "kernels_per_step": 10.0, "bytes_per_step": 1e6}
        rec = build_record(bench, metrics, sha=f"seed{i:07d}")
        rec["host"] = host
        append_record(rec, path)
    return path


# -- CLI -----------------------------------------------------------------------

def _print_report(report: RegressionReport, out) -> None:
    print(f"history: {report.records} record(s), "
          f"{report.series_checked} series checked", file=out)
    for f in report.findings:
        print(f"  {f}", file=out)
    if not report.findings:
        print("  no regressions detected", file=out)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.history",
        description="Benchmark-trajectory tools: inspect BENCH_HISTORY.jsonl "
                    "and gate on noise-aware regression detection.")
    parser.add_argument("--path", default=None,
                        help="history file (default: BENCH_HISTORY.jsonl at "
                             "the repo root)")
    parser.add_argument("--check", action="store_true",
                        help="run the regression detector over the history")
    parser.add_argument("--show", action="store_true",
                        help="print the trailing records of the trajectory")
    parser.add_argument("--tail", type=int, default=5,
                        help="records to print with --show (default 5)")
    parser.add_argument("--window", type=int, default=8,
                        help="rolling-baseline window (default 8 runs)")
    parser.add_argument("--mad-factor", type=float, default=4.0,
                        help="MAD multiplier for the deviation threshold")
    parser.add_argument("--min-ratio", type=float, default=1.25,
                        help="minimum worse-direction ratio to report")
    parser.add_argument("--fail-ratio", type=float, default=5.0,
                        help="ratio at which a finding gates the exit status")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero on warnings too (quiet hosts)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write the check report as JSON")
    args = parser.parse_args(argv)

    path = args.path if args.path is not None else history_path()
    history = load_history(path)

    if args.show or not args.check:
        print(f"{path}: {len(history)} record(s)")
        for rec in history[-args.tail:]:
            mets = rec.get("metrics", {})
            brief = ", ".join(f"{k}={v:.4g}" for k, v in sorted(mets.items())
                              if isinstance(v, (int, float)))
            print(f"  {rec.get('recorded_at', '?')} "
                  f"{str(rec.get('git_sha', '?'))[:10]} "
                  f"{rec.get('bench', '?')}: {brief[:160]}")
    if not args.check:
        return 0

    report = detect_regressions(history, window=args.window,
                                mad_factor=args.mad_factor,
                                min_ratio=args.min_ratio,
                                fail_ratio=args.fail_ratio)
    _print_report(report, sys.stdout)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report.as_dict(), fh, indent=2)
            fh.write("\n")
    if report.failures:
        return 1
    if args.strict and report.warnings:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m
    import sys
    print("note: 'python -m repro.bench.history' is deprecated; use "
          "'python -m repro history'", file=sys.stderr)
    raise SystemExit(main())

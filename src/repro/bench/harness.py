"""Measurement harness shared by the ``benchmarks/`` suite and examples.

`measure` runs a workload functionally under one fusion configuration and
returns both the wall-clock MLUPS of the NumPy execution and the
simulated-A100 MLUPS from the cost model over the recorded kernel trace.
`full_scale_mlups` extrapolates the trace to paper-size voxel counts
(see :mod:`repro.bench.model`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.fusion import FusionConfig
from ..core.simulation import Simulation, mlups
from ..gpu.costmodel import TraceCost, cost_trace, predicted_mlups
from ..gpu.device import A100_40GB, DeviceSpec
from ..neon.runtime import KernelRecord
from .model import level_factors, scale_trace
from .workloads import Workload

__all__ = ["Measurement", "compare_serial_threaded", "measure",
           "full_scale_mlups"]


@dataclass
class Measurement:
    """One (workload, fusion-config) data point."""

    workload: str
    config: str
    steps: int
    active_per_level: list[int]
    wall_seconds: float
    wall_mlups: float
    trace: list[KernelRecord]
    cost: TraceCost
    sim_mlups: float
    #: Execution backend that produced the wall-clock numbers
    #: (``"interpreted"``, ``"compiled"``, ``"compiled-aa"``).
    backend: str = "interpreted"
    #: Metrics-registry snapshot of the measured run (see
    #: :func:`repro.obs.metrics.run_metrics`); what the benchmarks
    #: serialize into their ``BENCH_*.json`` artifacts.
    metrics: dict = field(default_factory=dict)
    #: Buffer-arena peak occupancy over one step's stream, from the
    #: ``gpu/memory.py`` lifetime model (0 when the trace is empty).
    arena_peak_bytes: int = 0

    @property
    def kernels_per_step(self) -> float:
        return self.cost.kernels / self.steps if self.steps else 0.0

    @property
    def bytes_per_step(self) -> float:
        return self.cost.bytes_total / self.steps if self.steps else 0.0

    def summary(self) -> dict:
        """JSON-ready digest for the ``BENCH_*.json`` perf trajectory."""
        return {
            "workload": self.workload,
            "config": self.config,
            "backend": self.backend,
            "steps": self.steps,
            "active_per_level": list(self.active_per_level),
            "wall_seconds": self.wall_seconds,
            "wall_mlups": self.wall_mlups,
            "sim_mlups": self.sim_mlups,
            "kernels_per_step": self.kernels_per_step,
            "bytes_per_step": self.bytes_per_step,
            "atomic_bytes": sum(r.atomic_bytes for r in self.trace),
            "arena_peak_bytes": self.arena_peak_bytes,
            "metrics": self.metrics,
        }


def default_concurrency(config: FusionConfig) -> bool:
    """Scheduling used to cost a config: the two baselines model the
    distributed-heritage port (device sync after every kernel), while the
    fused variants run under Neon's dependency-wave scheduling
    (Section V-C)."""
    return not config.name.startswith("baseline")


def measure(workload: Workload, config: FusionConfig, steps: int = 5,
            warmup: int = 1, device: DeviceSpec = A100_40GB,
            concurrent: bool | None = None,
            backend: str | None = None,
            threaded: bool | None = None) -> Measurement:
    """Run ``steps`` coarse steps and cost the recorded trace on ``device``.

    ``backend`` selects the execution backend (``None`` defers to
    ``$REPRO_BACKEND``, like direct construction does); with a compiled
    backend the ``warmup`` steps absorb plan compilation, so the timed
    window measures pure replay.  ``threaded`` forces the wave executor
    on or off (``None`` defers to ``$REPRO_THREADED``).  The simulation
    is closed before returning, so mp worker pools and executor threads
    never outlive the measurement.
    """
    if concurrent is None:
        concurrent = default_concurrency(config)
    sim = Simulation.from_config(
        workload.spec, workload.sim_config(fusion=config, threaded=threaded),
        backend=backend)
    try:
        if warmup:
            sim.run(warmup)
        sim.runtime.reset(steps_base=sim.steps_done)
        sim.elapsed = 0.0
        start_steps = sim.steps_done
        sim.run(steps)
        n = sim.steps_done - start_steps
        records = list(sim.runtime.records)
        kbc = workload.collision.lower() == "kbc"
        cost = cost_trace(records, device, kbc=kbc, concurrent=concurrent)
        active = sim.mgrid.active_per_level()
        from ..obs.metrics import run_metrics
        registry = run_metrics(sim)
        registry.gauge("sim_mlups",
                       "cost-model MLUPS on the target device").set(
            predicted_mlups(active, n, cost))
        arena_peak = int(registry["arena_peak_bytes"].value) \
            if "arena_peak_bytes" in registry else 0
        return Measurement(
            workload=workload.name, config=config.name, steps=n,
            backend=sim.backend.name,
            active_per_level=active,
            wall_seconds=sim.elapsed,
            wall_mlups=mlups(active, n, sim.elapsed),
            trace=records, cost=cost,
            sim_mlups=predicted_mlups(active, n, cost),
            metrics=registry.as_dict(),
            arena_peak_bytes=arena_peak)
    finally:
        sim.close()


def compare_serial_threaded(workload: Workload, config: FusionConfig,
                            steps: int = 5, warmup: int = 1,
                            max_workers: int | None = None) -> dict:
    """Serial vs threaded wall-clock comparison on one workload/config.

    Runs the identical measurement twice — immediate execution, then the
    deferred wave executor (debug gate off: the shapes are proven by the
    analysis suite) — and reports wall seconds, speedup and a bitwise
    equality check of every level's ``f``/``fstar``/``ghost_acc``.  The
    result feeds ``BENCH_*.json``; ``cpu_count`` rides along because a
    single-core host cannot show a real speedup regardless of schedule
    width.
    """
    import os

    import numpy as np

    def _one(threaded: bool):
        sim = Simulation.from_config(
            workload.spec,
            workload.sim_config(fusion=config, threaded=threaded,
                                max_workers=max_workers,
                                executor_debug=False))
        with sim:
            if warmup:
                sim.run(warmup)
            sim.runtime.reset(steps_base=sim.steps_done)
            sim.elapsed = 0.0
            if sim.executor is not None:
                sim.executor.stats.clear()  # drop warmup flushes
            seconds = sim.run(steps).seconds
            state = [(b.f.copy(), b.fstar.copy(), b.ghost_acc.copy())
                     for b in sim.engine.levels]
            stats = list(sim.executor.stats) if sim.executor else []
        return seconds, state, stats

    serial_s, serial_state, _ = _one(False)
    threaded_s, threaded_state, stats = _one(True)
    identical = all(
        np.array_equal(a, b)
        for sl, tl in zip(serial_state, threaded_state)
        for a, b in zip(sl, tl))
    waves = [st for st in stats if st["mode"] == "threaded"]
    return {
        "workload": workload.name,
        "config": config.name,
        "steps": steps,
        "serial_seconds": serial_s,
        "threaded_seconds": threaded_s,
        "speedup": serial_s / threaded_s if threaded_s > 0 else float("inf"),
        "bit_identical": bool(identical),
        "workers": waves[0]["workers"] if waves else 0,
        "cpu_count": os.cpu_count() or 1,
        "threaded_flushes": len(waves),
        "mean_waves_per_step": (sum(st["waves"] for st in waves) / len(waves))
                               if waves else 0.0,
    }


def full_scale_mlups(m: Measurement, full_counts_finest_first: list[float],
                     device: DeviceSpec = A100_40GB, kbc: bool = True,
                     concurrent: bool | None = None) -> tuple[float, TraceCost]:
    """Extrapolate a measurement's trace to full-size per-level counts.

    ``full_counts_finest_first`` follows Table I's convention (finest
    level first); the measurement's counts are coarsest-first.
    """
    if concurrent is None:
        concurrent = not m.config.startswith("baseline")
    full = list(reversed(full_counts_finest_first))
    if len(full) != len(m.active_per_level):
        raise ValueError("level count mismatch between measurement and target")
    vol, area = level_factors(m.active_per_level, full, d=3)
    scaled = scale_trace(m.trace, vol, area)
    cost = cost_trace(scaled, device, kbc=kbc, concurrent=concurrent)
    return predicted_mlups([int(c) for c in full], m.steps, cost), cost

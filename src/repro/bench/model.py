"""Trace extrapolation to paper-scale domains.

The Table-I domains (up to 816x576x816 at the finest level) are far
beyond what a functional NumPy run can hold, but the *kernel schedule* of
a coarse step is size-independent: the same launches happen, only with
more cells and bytes.  We therefore record the trace of a scaled-down
instance and rescale each kernel:

* bulk kernels (C, CA, S, SE, SO, SEO, CASE) grow with the owned-cell
  count of their level — a volume factor;
* interface kernels (A, E, O) grow with the interface size — an area
  factor, ``volume_factor^(2/3)`` in 3D.

The per-level full-size voxel counts come either from Table I itself
(``TABLE1_DISTRIBUTIONS``) or from the Monte-Carlo geometry estimate.
"""

from __future__ import annotations


from ..neon.runtime import KernelRecord

__all__ = ["scale_trace", "level_factors"]

_BULK = {"C", "CA", "S", "SE", "SO", "SEO", "CASE"}
_INTERFACE = {"A", "E", "O"}


def level_factors(scaled_counts: list[int], full_counts: list[float],
                  d: int = 3) -> tuple[list[float], list[float]]:
    """(volume, interface) growth factors per level."""
    if len(scaled_counts) != len(full_counts):
        raise ValueError("per-level count lists differ in length")
    vol = [float(f) / float(s) for s, f in zip(scaled_counts, full_counts)]
    area = [v ** ((d - 1) / d) for v in vol]
    return vol, area


def scale_trace(records: list[KernelRecord], vol_factor: list[float],
                iface_factor: list[float]) -> list[KernelRecord]:
    """Rescale a recorded schedule to a larger domain, launch-for-launch."""
    out: list[KernelRecord] = []
    for r in records:
        if r.name in _BULK:
            f = vol_factor[r.level]
        elif r.name in _INTERFACE:
            f = iface_factor[r.level]
        else:
            raise KeyError(f"unknown kernel name {r.name!r} in trace")
        # Atomic (Accumulate) traffic is interface-proportional even inside
        # fused bulk kernels; the remaining payload follows the kernel class.
        fa = iface_factor[r.level]
        atomic = int(round(r.atomic_bytes * fa))
        written = int(round((r.bytes_written - r.atomic_bytes) * f)) + atomic
        out.append(KernelRecord(
            name=r.name, level=r.level,
            n_cells=int(round(r.n_cells * f)),
            bytes_read=int(round(r.bytes_read * f)),
            bytes_written=written,
            reads=r.reads, writes=r.writes,
            atomic_bytes=atomic,
            tag=r.tag))
    return out

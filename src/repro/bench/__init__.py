"""Benchmark harness: workloads, measurement, trace extrapolation,
perf-trajectory history (``BENCH_HISTORY.jsonl``) and its regression
gate (``python -m repro.bench.history --check``)."""

from .harness import Measurement, compare_serial_threaded, full_scale_mlups, measure
from .model import level_factors, scale_trace
from .workloads import (TABLE1_DISTRIBUTIONS, TABLE1_SIZES, Workload,
                        airplane_geometry, airplane_tunnel, lid_cavity, sphere_tunnel)

# repro.bench.history is deliberately *not* imported here: it is run as
# ``python -m repro.bench.history`` and an eager package import would
# shadow the module execution (runpy's double-import warning).

__all__ = ["Measurement", "compare_serial_threaded", "full_scale_mlups", "measure",
           "level_factors", "scale_trace",
           "TABLE1_DISTRIBUTIONS", "TABLE1_SIZES", "Workload",
           "airplane_geometry", "airplane_tunnel", "lid_cavity", "sphere_tunnel"]

"""Benchmark harness: workloads, measurement, trace extrapolation."""

from .harness import Measurement, compare_serial_threaded, full_scale_mlups, measure
from .model import level_factors, scale_trace
from .workloads import (TABLE1_DISTRIBUTIONS, TABLE1_SIZES, Workload,
                        airplane_geometry, airplane_tunnel, lid_cavity, sphere_tunnel)

__all__ = ["Measurement", "compare_serial_threaded", "full_scale_mlups", "measure",
           "level_factors", "scale_trace",
           "TABLE1_DISTRIBUTIONS", "TABLE1_SIZES", "Workload",
           "airplane_geometry", "airplane_tunnel", "lid_cavity", "sphere_tunnel"]

"""SimConfig: validation, replace semantics, and the legacy-kwargs shim."""

import warnings

import numpy as np
import pytest

import repro.core.simulation as sim_mod
from repro import FUSED_FULL, SimConfig, Simulation, get_config
from repro.grid.geometry import wall_refinement
from repro.grid.multigrid import DomainBC, FaceBC, RefinementSpec


def cavity_spec():
    base = (16, 16)
    bc = DomainBC({"y+": FaceBC("moving", velocity=(0.06, 0.0))})
    return RefinementSpec(base, wall_refinement(base, 2, [3.0]), bc=bc)


class TestValidation:
    def test_requires_exactly_one_relaxation_input(self):
        with pytest.raises(ValueError, match="exactly one"):
            SimConfig(lattice="D2Q9")
        with pytest.raises(ValueError, match="exactly one"):
            SimConfig(lattice="D2Q9", viscosity=0.05, omega0=1.2)

    def test_fusion_preset_name_resolves(self):
        cfg = SimConfig(viscosity=0.05, fusion="ours-4f")
        assert cfg.fusion is get_config("ours-4f")

    def test_bad_fusion_type_rejected(self):
        with pytest.raises(TypeError, match="fusion"):
            SimConfig(viscosity=0.05, fusion=42)

    def test_bad_preset_name_rejected(self):
        with pytest.raises(KeyError):
            SimConfig(viscosity=0.05, fusion="no-such-preset")

    def test_max_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="max_workers"):
            SimConfig(viscosity=0.05, max_workers=0)

    def test_force_normalized_to_tuple(self):
        cfg = SimConfig(viscosity=0.05, force=np.array([1e-5, 0.0, 0.0]))
        assert cfg.force == (1e-5, 0.0, 0.0)
        hash(cfg)  # stays hashable

    def test_dtype_string_resolves(self):
        cfg = SimConfig(viscosity=0.05, dtype="float32")
        assert cfg.dtype is np.float32


class TestReplace:
    def test_replace_swaps_viscosity_for_omega(self):
        cfg = SimConfig(lattice="D2Q9", viscosity=0.05)
        safe = cfg.replace(viscosity=None, omega0=1.1)
        assert safe.omega0 == 1.1 and safe.viscosity is None
        assert cfg.viscosity == 0.05  # original untouched

    def test_replace_revalidates(self):
        cfg = SimConfig(lattice="D2Q9", viscosity=0.05)
        with pytest.raises(ValueError):
            cfg.replace(omega0=1.2)  # both set now

    def test_as_dict_is_json_ready(self):
        import json
        cfg = SimConfig(lattice="D2Q9", viscosity=0.05, fusion=FUSED_FULL,
                        dtype=np.float32, threaded=False)
        d = cfg.as_dict()
        json.dumps(d)
        assert d["lattice"] == "D2Q9"
        assert d["fusion"] == FUSED_FULL.name
        assert d["dtype"] == "float32"
        assert d["threaded"] is False


class TestShim:
    def test_legacy_kwargs_warn_once_per_process(self, monkeypatch):
        monkeypatch.setattr(sim_mod, "_legacy_warned", False)
        spec = cavity_spec()
        with pytest.warns(DeprecationWarning, match="from_config"):
            sim = Simulation(spec, "D2Q9", "bgk", viscosity=0.05,
                             threaded=False)
        sim.close()
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # second build must stay silent
            Simulation(spec, "D2Q9", "bgk", viscosity=0.05,
                       threaded=False).close()

    def test_from_config_never_warns(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            sim = Simulation.from_config(
                cavity_spec(), SimConfig(lattice="D2Q9", viscosity=0.05,
                                         threaded=False))
        sim.close()

    def test_legacy_and_config_paths_are_bit_identical(self, monkeypatch):
        monkeypatch.setattr(sim_mod, "_legacy_warned", True)
        spec = cavity_spec()
        legacy = Simulation(spec, "D2Q9", "bgk", viscosity=0.05,
                            config=FUSED_FULL, threaded=False)
        modern = Simulation.from_config(
            spec, SimConfig(lattice="D2Q9", collision="bgk", viscosity=0.05,
                            fusion=FUSED_FULL, threaded=False))
        legacy.run(5)
        modern.run(5)
        for a, b in zip(legacy.engine.levels, modern.engine.levels):
            assert np.array_equal(a.f[:, :a.n_owned], b.f[:, :b.n_owned])
        legacy.close()
        modern.close()

    def test_from_config_overrides_apply_via_replace(self):
        base = SimConfig(lattice="D2Q9", viscosity=0.05)
        sim = Simulation.from_config(cavity_spec(), base,
                                     fusion="fuse-SE", threaded=False)
        assert sim.sim_config.fusion is get_config("fuse-SE")
        assert base.fusion is FUSED_FULL  # base profile untouched
        sim.close()

    def test_simulation_records_its_config(self):
        cfg = SimConfig(lattice="D2Q9", viscosity=0.05, threaded=False)
        sim = Simulation.from_config(cavity_spec(), cfg)
        assert sim.sim_config == cfg
        sim.close()

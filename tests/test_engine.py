"""Engine state, kernel bodies and launch records."""

import numpy as np
import pytest

from repro.core.engine import Engine
from repro.core.lattice import D2Q9
from repro.core.stepper import NonUniformStepper
from repro.grid.multigrid import DomainBC, FaceBC, RefinementSpec, build_multigrid
from repro.grid.geometry import wall_refinement


def make_engine(bc=None, base=(16, 16), omega0=1.2):
    regions = wall_refinement(base, 2, [3.0])
    spec = RefinementSpec(base_shape=base, refine_regions=regions,
                          bc=bc or DomainBC())
    mg = build_multigrid(spec, D2Q9)
    eng = Engine(mg, "bgk", omega0=omega0)
    eng.initialize()
    return eng


class TestInitialize:
    def test_rest_equilibrium(self):
        eng = make_engine()
        lat = eng.lat
        for buf in eng.levels:
            assert np.allclose(buf.f[:, :buf.n_owned], lat.w[:, None])

    def test_velocity_vector_init(self):
        eng = make_engine()
        eng.initialize(u=np.array([0.02, 0.0]))
        for lv in range(2):
            _, u = eng.macroscopics(lv)
            assert np.allclose(u[0], 0.02, atol=1e-12)
            assert np.allclose(u[1], 0.0, atol=1e-12)

    def test_callable_init_uses_coarse_units(self):
        eng = make_engine()
        seen = {}

        def u_field(centers):
            seen[id(centers)] = centers
            return 0.01 * np.ones((2, centers.shape[0]))

        eng.initialize(u=u_field)
        # both levels were sampled; fine-level centres must lie within the
        # coarse-unit domain box
        all_centers = np.concatenate(list(seen.values()))
        assert all_centers.max() <= 16.0
        assert all_centers.min() >= 0.0

    def test_total_mass_volume_weighted(self):
        eng = make_engine()
        expected = sum((0.25 ** lv.level if False else (0.5 ** lv.level) ** 2) * lv.n_owned
                       for lv in eng.mgrid.levels)
        assert eng.total_mass() == pytest.approx(expected)

    def test_total_momentum_zero_at_rest(self):
        eng = make_engine()
        assert np.allclose(eng.total_momentum(), 0.0, atol=1e-12)


class TestOmegaPerLevel:
    def test_eq9_applied(self):
        eng = make_engine(omega0=1.5)
        from repro.core.units import omega_at_level
        assert eng.omega[0] == pytest.approx(1.5)
        assert eng.omega[1] == pytest.approx(omega_at_level(1.5, 1))


class TestKernelRecords:
    def test_collide_record(self):
        eng = make_engine()
        eng.op_collide(0)
        rec = eng.rt.records[-1]
        assert rec.name == "C" and rec.level == 0
        assert rec.n_cells == eng.levels[0].n_owned
        assert rec.bytes_read == 9 * 8 * rec.n_cells

    def test_fused_collide_accumulate_record(self):
        eng = make_engine()
        eng.op_collide(1, fuse_accumulate=True)
        rec = eng.rt.records[-1]
        assert rec.name == "CA"
        assert rec.atomic_bytes > 0

    def test_stream_fusion_names(self):
        eng = make_engine()
        eng.op_collide(0)
        eng.op_collide(1, fuse_accumulate=True)
        eng.op_stream(1, fuse_explosion=True)
        assert eng.rt.records[-1].name == "SE"
        eng.op_stream(0, fuse_coalescence=True)
        assert eng.rt.records[-1].name == "SO"
        eng.op_stream(1, fuse_explosion=True, fuse_coalescence=True)
        assert eng.rt.records[-1].name == "SE"  # finest has no coalescence

    def test_case_record_traffic_is_two_passes(self):
        eng = make_engine()
        eng.op_collide(0)
        eng.op_fused_case(1)
        rec = eng.rt.records[-1]
        n = eng.levels[1].n_owned
        assert rec.name == "CASE"
        # one read + one write of the f field, plus interface extras
        assert rec.bytes_read >= 9 * 8 * n
        assert rec.bytes_read < 1.5 * 9 * 8 * n
        assert rec.bytes_written - rec.atomic_bytes == 9 * 8 * n

    def test_separate_interface_kernels(self):
        eng = make_engine()
        eng.op_collide(0)
        eng.op_collide(1)
        eng.op_accumulate(1)
        assert eng.rt.records[-1].name == "A"
        eng.op_stream(1)
        eng.op_explode(1)
        assert eng.rt.records[-1].name == "E"
        eng.op_stream(0)
        eng.op_coalesce(0)
        assert eng.rt.records[-1].name == "O"

    def test_accumulate_level0_rejected(self):
        eng = make_engine()
        with pytest.raises(ValueError):
            eng.op_accumulate(0)


class TestStreamingSemantics:
    def test_explosion_is_homogeneous_copy(self):
        # after one coarse collide, fine explosion entries equal the coarse
        # post-collision value of the parent cell, verbatim (Eq. 10)
        eng = make_engine()
        eng.initialize(u=np.array([0.01, 0.005]))
        eng.op_collide(0)
        eng.op_collide(1)
        eng.op_stream(1, fuse_explosion=True)
        fine = eng.levels[1]
        coarse = eng.levels[0]
        got = fine.f[fine.exp_q, fine.exp_cell]
        expected = coarse.fstar[fine.exp_q, fine.exp_rows]
        assert np.array_equal(got, expected)

    def test_coalescence_is_scaled_average(self):
        eng = make_engine()
        eng.initialize(u=np.array([0.01, 0.0]))
        # run the full two-substep fine cycle so the accumulator holds 2x4 samples
        stepper = NonUniformStepper(eng)
        eng.op_collide(0)
        eng.op_collide(1, fuse_accumulate=True)
        eng.op_stream(1, fuse_explosion=True)
        eng.op_collide(1, fuse_accumulate=True)
        eng.op_stream(1, fuse_explosion=True)
        coarse = eng.levels[0]
        acc = coarse.ghost_acc.copy()
        eng.op_stream(0, fuse_coalescence=True)
        got = coarse.f[coarse.coal_q, coarse.coal_cell]
        expected = acc[coarse.coal_q, coarse.coal_src] / 8.0  # 2 * 2^2
        assert np.allclose(got, expected, atol=1e-15)

    def test_ghost_reset_after_coalescence(self):
        eng = make_engine()
        eng.op_collide(0)
        eng.op_collide(1, fuse_accumulate=True)
        assert np.abs(eng.levels[0].ghost_acc).max() > 0
        eng.op_stream(0, fuse_coalescence=True)
        assert (eng.levels[0].ghost_acc == 0).all()

    def test_accumulate_gather_equals_scatter(self):
        eng1 = make_engine()
        eng2 = make_engine()
        for eng, gather in ((eng1, False), (eng2, True)):
            eng.initialize(u=np.array([0.02, -0.01]))
            eng.op_collide(1)
            eng.op_accumulate(1, gather=gather)
        assert np.allclose(eng1.levels[0].ghost_acc, eng2.levels[0].ghost_acc)

    def test_explosion_copy_mirrors_coarse(self):
        eng = make_engine()
        eng.initialize(u=np.array([0.01, 0.02]))
        eng.op_collide(0)
        eng.op_explosion_copy(1)
        fine = eng.levels[1]
        coarse = eng.levels[0]
        assert np.array_equal(fine.fstar[:, fine.fg_rows],
                              coarse.fstar[:, fine.fg_coarse_rows])

    def test_stream_from_ghost_equals_direct(self):
        # 4a explosion path (via ghost copies) gives identical pull values
        eng_a = make_engine()
        eng_b = make_engine()
        for eng in (eng_a, eng_b):
            eng.initialize(u=np.array([0.015, 0.0]))
            eng.op_collide(0)
            eng.op_collide(1)
        eng_a.op_explosion_copy(1)
        eng_a.op_stream(1, fuse_explosion=True, exp_from_ghost=True)
        eng_b.op_stream(1, fuse_explosion=True, exp_from_ghost=False)
        a, b = eng_a.levels[1], eng_b.levels[1]
        assert np.array_equal(a.f[:, :a.n_owned], b.f[:, :b.n_owned])


class TestBoundaryPhysics:
    def test_moving_lid_injects_x_momentum(self):
        bc = DomainBC({"y+": FaceBC("moving", velocity=(0.05, 0.0))})
        eng = make_engine(bc=bc)
        stepper = NonUniformStepper(eng)
        stepper.step()
        mom = eng.total_momentum()
        assert mom[0] > 0.0
        assert abs(mom[1]) < abs(mom[0]) * 0.2

    def test_resting_walls_keep_rest_state(self):
        eng = make_engine()
        stepper = NonUniformStepper(eng)
        f0 = [b.f[:, :b.n_owned].copy() for b in eng.levels]
        stepper.run(3)
        for buf, ref in zip(eng.levels, f0):
            assert np.allclose(buf.f[:, :buf.n_owned], ref, atol=1e-14)

    def test_outflow_sets_weights(self):
        bc = DomainBC({"x+": FaceBC("outflow")})
        eng = make_engine(bc=bc)
        eng.initialize(u=np.array([0.03, 0.0]))
        eng.op_collide(1)
        eng.op_stream(1)
        fine = eng.levels[1]
        got = fine.f[fine.out_q, fine.out_cell]
        assert np.allclose(got, eng.lat.w[fine.out_q])

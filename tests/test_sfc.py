"""Space-filling curves for block ordering (paper Section V-A)."""

import itertools

import numpy as np
import pytest

from repro.grid.sfc import (CURVES, block_order, hilbert_key, morton_decode,
                            morton_key, sweep_key)

RNG = np.random.default_rng(11)


def full_box(shape):
    return np.array(list(itertools.product(*[range(s) for s in shape])))


class TestMorton:
    @pytest.mark.parametrize("d", [2, 3])
    def test_roundtrip(self, d):
        coords = RNG.integers(0, 64, (200, d))
        keys = morton_key(coords, bits=6)
        assert np.array_equal(morton_decode(keys, d, 6), coords)

    def test_injective_over_box(self):
        coords = full_box((8, 8, 8))
        keys = morton_key(coords, shape=(8, 8, 8))
        assert len(np.unique(keys)) == len(coords)

    def test_origin_is_zero(self):
        assert morton_key(np.array([[0, 0, 0]]), bits=4)[0] == 0

    def test_known_2d_values(self):
        # Z-order of the 2x2 quad: (0,0) (0,1) (1,0) (1,1)
        coords = np.array([[0, 0], [0, 1], [1, 0], [1, 1]])
        keys = morton_key(coords, bits=1)
        assert sorted(keys.tolist()) == keys.tolist()

    def test_locality_beats_sweep(self):
        # RMS jump between consecutive blocks: Morton suppresses the long
        # row-wrap jumps of a plain sweep; Hilbert is perfectly local.
        shape = (16, 16, 16)
        coords = full_box(shape)
        def rms_jump(order):
            c = coords[order]
            d = np.abs(np.diff(c, axis=0)).sum(axis=1).astype(float)
            return np.sqrt((d * d).mean())
        sweep = rms_jump(block_order(coords, shape, "sweep"))
        morton = rms_jump(block_order(coords, shape, "morton"))
        hilbert = rms_jump(block_order(coords, shape, "hilbert"))
        assert hilbert < morton < sweep
        assert hilbert == pytest.approx(1.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            morton_key(np.array([[-1, 0]]))


class TestHilbert:
    @pytest.mark.parametrize("shape", [(8, 8), (8, 8, 8), (4, 16, 8)])
    def test_injective(self, shape):
        coords = full_box(shape)
        keys = hilbert_key(coords, shape=shape)
        assert len(np.unique(keys)) == len(coords)

    @pytest.mark.parametrize("d,bits", [(2, 3), (3, 2)])
    def test_unit_steps(self, d, bits):
        # The defining Hilbert property: consecutive curve positions are
        # face neighbours (unit Manhattan distance).
        n = 2 ** bits
        coords = full_box((n,) * d)
        keys = hilbert_key(coords, bits=bits)
        path = coords[np.argsort(keys)]
        steps = np.abs(np.diff(path, axis=0)).sum(axis=1)
        assert (steps == 1).all()

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            hilbert_key(np.array([[0, -2]]))


class TestSweep:
    def test_is_row_major(self):
        shape = (4, 5, 6)
        coords = full_box(shape)
        keys = sweep_key(coords, shape)
        assert np.array_equal(np.argsort(keys), np.arange(len(coords)))


class TestBlockOrder:
    @pytest.mark.parametrize("curve", CURVES)
    def test_is_permutation(self, curve):
        shape = (8, 8, 8)
        coords = full_box(shape)
        perm = block_order(coords, shape, curve)
        assert sorted(perm.tolist()) == list(range(len(coords)))

    def test_subset_of_box(self):
        # sparse block sets (the realistic case) still order consistently
        shape = (16, 16)
        coords = full_box(shape)
        keep = RNG.random(len(coords)) < 0.3
        sub = coords[keep]
        perm = block_order(sub, shape, "hilbert")
        keys = hilbert_key(sub, shape=shape)
        assert (np.diff(keys[perm].astype(np.int64)) > 0).all()

    def test_unknown_curve(self):
        with pytest.raises(KeyError):
            block_order(np.zeros((1, 3), dtype=int), (2, 2, 2), "peano")

"""Memory footprint model (Section IV-A, Section VI-B, Fig. 1)."""

import pytest

from repro.core.lattice import D3Q19, D3Q27
from repro.grid.geometry import Sphere, shell_refinement, voxelize, wall_refinement
from repro.grid.multigrid import RefinementSpec, build_multigrid
from repro.gpu.device import A100_40GB
from repro.gpu.memory import (MemoryReport, ghost_layer_bytes, grid_memory_report,
                              mc_level_counts, refined_memory_bytes,
                              uniform_aa_max_cube, uniform_memory_bytes)


@pytest.fixture(scope="module")
def mg():
    base = (16, 16, 16)
    spec = RefinementSpec(base, wall_refinement(base, 2, [3.0]))
    return build_multigrid(spec, D3Q19)


class TestGridReport:
    def test_population_bytes(self, mg):
        rep = grid_memory_report(mg, itemsize=8, scheme="optimized")
        expected = sum(lv.n_owned for lv in mg.levels) * 19 * 8 * 2
        assert rep.populations == expected

    def test_optimized_ghost_is_accumulator_only(self, mg):
        rep = grid_memory_report(mg, scheme="optimized")
        assert rep.ghost_populations == 0
        assert rep.ghost_accumulators == mg.levels[0].n_ghost * 19 * 8

    def test_original_ghost_is_population_copies(self, mg):
        rep = grid_memory_report(mg, scheme="original")
        assert rep.ghost_accumulators == 0
        assert rep.ghost_populations == mg.levels[1].fine_ghost_slots.size * 19 * 8 * 2

    def test_optimized_ghost_much_smaller(self, mg):
        # Section IV-A: the coarse-side ghost layer shrinks ghost storage by
        # a large factor (the paper quotes 3x counted in overlapped coarse
        # layers; exact cell-count accounting gives far more).
        gb = ghost_layer_bytes(mg)
        assert gb["optimized"] * 3 <= gb["original"]

    def test_total_and_fits(self, mg):
        rep = grid_memory_report(mg)
        assert rep.total == (rep.populations + rep.ghost_accumulators
                             + rep.ghost_populations + rep.metadata)
        assert rep.fits(A100_40GB)

    def test_unknown_scheme(self, mg):
        with pytest.raises(ValueError):
            grid_memory_report(mg, scheme="aa")


class TestUniform:
    def test_uniform_bytes(self):
        assert uniform_memory_bytes((10, 10, 10), 19, 8, buffers=2) == 1000 * 19 * 16

    def test_aa_max_cube_matches_paper(self):
        # Section VI-B: "the largest feasible domain ... approximately 794^3"
        n = uniform_aa_max_cube(A100_40GB, q=19, itemsize=4)
        assert 780 <= n <= 810

    def test_aa_max_cube_double_precision(self):
        n = uniform_aa_max_cube(A100_40GB, q=19, itemsize=8)
        assert 600 <= n <= 660


class TestMonteCarloCounts:
    def test_matches_exact_voxelisation(self):
        sphere = Sphere((8.0, 8.0, 8.0), 2.0)
        base = (16, 16, 16)
        widths = [4.0]
        counts = mc_level_counts(sphere, base, widths, samples=400_000, seed=1)
        spec = RefinementSpec(base, shell_refinement(sphere, base, 2, widths),
                              solid=voxelize(sphere, (32, 32, 32), 1))
        mgrid = build_multigrid(spec, D3Q27)
        exact = mgrid.active_per_level()
        for lv in range(2):
            assert counts["owned"][lv] == pytest.approx(exact[lv], rel=0.08)

    def test_counts_structure(self):
        sphere = Sphere((8.0, 8.0, 8.0), 2.0)
        counts = mc_level_counts(sphere, (16, 16, 16), [5.0, 2.0], samples=100_000)
        assert len(counts["owned"]) == 3
        assert counts["ghost"][-1] == 0        # finest has no finer interface
        assert counts["fine_ghost"][0] == 0    # coarsest has no parent

    def test_deterministic_with_seed(self):
        sphere = Sphere((8.0, 8.0, 8.0), 2.0)
        a = mc_level_counts(sphere, (16, 16, 16), [4.0], samples=50_000, seed=3)
        b = mc_level_counts(sphere, (16, 16, 16), [4.0], samples=50_000, seed=3)
        assert a == b


class TestRefinedMemoryBytes:
    def test_fig1_airplane_capability(self):
        # The headline claim: 1596x840x840 with refinement fits in 40 GB
        # while the uniform grid cannot represent it at all.
        from repro.grid.geometry import AirplaneProxy
        finest = (1596, 840, 840)
        base = tuple(s // 8 for s in finest)  # 4 levels
        plane = AirplaneProxy((base[0] / 2.2, base[1] / 2.0, base[2] / 2.0),
                              0.45 * base[0])
        widths = [16.0, 6.0, 2.2]
        counts = mc_level_counts(plane, base, widths, samples=300_000)
        rep = refined_memory_bytes(counts, q=27, itemsize=8, scheme="optimized")
        assert rep.fits(A100_40GB)
        uniform = uniform_memory_bytes(finest, 27, 8, buffers=1)
        assert uniform > A100_40GB.capacity_bytes

    def test_original_scheme_needs_more(self):
        sphere = Sphere((8.0, 8.0, 8.0), 2.0)
        counts = mc_level_counts(sphere, (16, 16, 16), [4.0], samples=100_000)
        opt = refined_memory_bytes(counts, 19, scheme="optimized")
        orig = refined_memory_bytes(counts, 19, scheme="original")
        assert orig.total > opt.total

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            refined_memory_bytes({"owned": [1], "ghost": [0], "fine_ghost": [0]},
                                 19, scheme="x")

    def test_report_arithmetic(self):
        rep = MemoryReport(populations=100, ghost_accumulators=10,
                           ghost_populations=5, metadata=1)
        assert rep.total == 116

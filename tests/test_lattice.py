"""Lattice descriptor invariants (paper Section II)."""

import numpy as np
import pytest

from repro.core.lattice import CS2, D2Q9, D3Q19, D3Q27, get_lattice

ALL = [D2Q9, D3Q19, D3Q27]


@pytest.mark.parametrize("lat", ALL, ids=lambda l: l.name)
class TestStructure:
    def test_shapes(self, lat):
        assert lat.e.shape == (lat.q, lat.d)
        assert lat.w.shape == (lat.q,)
        assert lat.opp.shape == (lat.q,)

    def test_rest_velocity_first(self, lat):
        assert not lat.e[0].any()

    def test_velocities_unique(self, lat):
        assert len({tuple(v) for v in lat.e.tolist()}) == lat.q

    def test_velocity_set_closed_under_negation(self, lat):
        vecs = {tuple(v) for v in lat.e.tolist()}
        for v in vecs:
            assert tuple(-c for c in v) in vecs

    def test_opposites(self, lat):
        assert np.array_equal(lat.e[lat.opp], -lat.e)

    def test_opposite_is_involution(self, lat):
        assert np.array_equal(lat.opp[lat.opp], np.arange(lat.q))

    def test_weights_positive_and_normalized(self, lat):
        assert (lat.w > 0).all()
        assert lat.w.sum() == pytest.approx(1.0, abs=1e-14)

    def test_weights_equal_for_opposites(self, lat):
        assert np.allclose(lat.w[lat.opp], lat.w)

    def test_first_moment_vanishes(self, lat):
        assert np.allclose(lat.w @ lat.ef, 0.0, atol=1e-15)

    def test_second_moment_isotropy(self, lat):
        # sum_i w_i e_ia e_ib = c_s^2 delta_ab — the condition behind Eq. (5)
        m2 = np.einsum("q,qa,qb->ab", lat.w, lat.ef, lat.ef)
        assert np.allclose(m2, CS2 * np.eye(lat.d), atol=1e-14)

    def test_third_moment_vanishes(self, lat):
        m3 = np.einsum("q,qa,qb,qc->abc", lat.w, lat.ef, lat.ef, lat.ef)
        assert np.allclose(m3, 0.0, atol=1e-14)

    def test_fourth_moment_isotropy(self, lat):
        # sum w e^4 = c_s^4 (d_ab d_cd + d_ac d_bd + d_ad d_bc)
        m4 = np.einsum("q,qa,qb,qc,qd->abcd", lat.w, lat.ef, lat.ef, lat.ef, lat.ef)
        eye = np.eye(lat.d)
        expected = CS2 ** 2 * (np.einsum("ab,cd->abcd", eye, eye)
                               + np.einsum("ac,bd->abcd", eye, eye)
                               + np.einsum("ad,bc->abcd", eye, eye))
        assert np.allclose(m4, expected, atol=1e-14)

    def test_arrays_readonly(self, lat):
        for arr in (lat.e, lat.w, lat.opp, lat.ef):
            with pytest.raises(ValueError):
                arr[0] = 0

    def test_direction_index(self, lat):
        for i in range(lat.q):
            assert lat.direction_index(lat.e[i]) == i

    def test_direction_index_missing(self, lat):
        with pytest.raises(KeyError):
            lat.direction_index([5] * lat.d)


def test_counts():
    assert (D2Q9.d, D2Q9.q) == (2, 9)
    assert (D3Q19.d, D3Q19.q) == (3, 19)
    assert (D3Q27.d, D3Q27.q) == (3, 27)


def test_d3q19_excludes_corners():
    speeds = (D3Q19.e ** 2).sum(axis=1)
    assert speeds.max() == 2


def test_d3q27_includes_corners():
    speeds = (D3Q27.e ** 2).sum(axis=1)
    assert (speeds == 3).sum() == 8


def test_known_weights():
    assert D2Q9.w[0] == pytest.approx(4.0 / 9.0)
    assert D3Q19.w[0] == pytest.approx(1.0 / 3.0)
    assert D3Q27.w[0] == pytest.approx(8.0 / 27.0)


def test_get_lattice():
    assert get_lattice("d3q19") is D3Q19
    assert get_lattice("D2Q9") is D2Q9
    with pytest.raises(KeyError):
        get_lattice("D3Q15")

"""Implicit geometry, voxelisation and refinement-region builders."""

import numpy as np
import pytest

from repro.grid.geometry import (AirplaneProxy, Box, Ellipsoid, Sphere, Union,
                                 cell_centers, distance_field,
                                 enforce_shell_separation, shell_refinement,
                                 voxelize, wall_refinement)


class TestSphere:
    def test_sign(self):
        s = Sphere((0.0, 0.0, 0.0), 2.0)
        assert s.sdf(np.array([[0.0, 0.0, 0.0]]))[0] == pytest.approx(-2.0)
        assert s.sdf(np.array([[3.0, 0.0, 0.0]]))[0] == pytest.approx(1.0)

    def test_voxel_volume(self):
        s = Sphere((8.0, 8.0, 8.0), 5.0)
        mask = voxelize(s, (16, 16, 16), level=0)
        expected = 4.0 / 3.0 * np.pi * 5.0 ** 3
        assert mask.sum() == pytest.approx(expected, rel=0.08)

    def test_finer_voxelization_converges(self):
        s = Sphere((4.0, 4.0, 4.0), 2.5)
        exact = 4.0 / 3.0 * np.pi * 2.5 ** 3
        err = []
        for lvl in (0, 1, 2):
            mask = voxelize(s, tuple(8 * 2 ** lvl for _ in range(3)), level=lvl)
            vol = mask.sum() * (0.5 ** lvl) ** 3
            err.append(abs(vol - exact) / exact)
        assert err[2] < err[0]


class TestBox:
    def test_inside_outside(self):
        b = Box((0.0, 0.0), (2.0, 4.0))
        assert b.contains(np.array([[1.0, 2.0]]))[0]
        assert not b.contains(np.array([[3.0, 2.0]]))[0]

    def test_distance_outside_is_euclidean(self):
        b = Box((0.0, 0.0), (2.0, 2.0))
        d = b.sdf(np.array([[5.0, 1.0]]))[0]
        assert d == pytest.approx(3.0)

    def test_corner_distance(self):
        b = Box((0.0, 0.0), (2.0, 2.0))
        d = b.sdf(np.array([[3.0, 3.0]]))[0]
        assert d == pytest.approx(np.sqrt(2.0))


class TestEllipsoidUnion:
    def test_ellipsoid_sign(self):
        e = Ellipsoid((0.0, 0.0, 0.0), (4.0, 2.0, 1.0))
        assert e.contains(np.array([[3.0, 0.0, 0.0]]))[0]
        assert not e.contains(np.array([[0.0, 3.0, 0.0]]))[0]

    def test_union_is_min(self):
        a, b = Sphere((0.0, 0.0), 1.0), Sphere((5.0, 0.0), 1.0)
        u = a | b
        assert isinstance(u, Union)
        pts = np.array([[0.0, 0.0], [5.0, 0.0], [2.5, 0.0]])
        assert np.allclose(u.sdf(pts), np.minimum(a.sdf(pts), b.sdf(pts)))


class TestAirplaneProxy:
    def test_has_volume_and_is_slender(self):
        base = (40, 21, 21)
        plane = AirplaneProxy((20.0, 10.5, 10.5), 18.0)
        mask = voxelize(plane, base, level=0)
        frac = mask.sum() / mask.size
        assert 0.001 < frac < 0.15  # present but much smaller than the tunnel

    def test_wingspan_exceeds_body_width(self):
        plane = AirplaneProxy((0.0, 0.0, 0.0), 10.0)
        wing_tip = np.array([[0.0, 3.5, 0.0]])
        above_body = np.array([[0.0, 0.0, 3.5]])
        assert plane.contains(wing_tip)[0]
        assert not plane.contains(above_body)[0]


class TestCellCenters:
    def test_level0(self):
        c = cell_centers((2, 2), 0)
        assert c[0, 0].tolist() == [0.5, 0.5]
        assert c[1, 1].tolist() == [1.5, 1.5]

    def test_level1_halves_spacing(self):
        c = cell_centers((2, 2), 1)
        assert c[0, 0].tolist() == [0.25, 0.25]

    def test_distance_field_shape(self):
        s = Sphere((1.0, 1.0), 0.5)
        d = distance_field(s, (4, 4), 1)
        assert d.shape == (4, 4)


class TestShellRefinement:
    def test_regions_nest(self):
        s = Sphere((8.0, 8.0), 2.0)
        regions = shell_refinement(s, (16, 16), 3, [5.0, 2.0])
        up = np.repeat(np.repeat(regions[0], 2, 0), 2, 1)
        assert not (regions[1] & ~up).any()

    def test_region_resolutions(self):
        s = Sphere((8.0, 8.0), 2.0)
        regions = shell_refinement(s, (16, 16), 3, [5.0, 2.0])
        assert regions[0].shape == (16, 16)
        assert regions[1].shape == (32, 32)

    def test_width_validation(self):
        s = Sphere((8.0, 8.0), 2.0)
        with pytest.raises(ValueError):
            shell_refinement(s, (16, 16), 3, [5.0])
        with pytest.raises(ValueError):
            shell_refinement(s, (16, 16), 3, [2.0, 5.0])


class TestWallRefinement:
    def test_hugs_all_walls(self):
        regions = wall_refinement((16, 16), 2, [3.0])
        r = regions[0]
        assert r[0, 8] and r[15, 8] and r[8, 0] and r[8, 15]
        assert not r[8, 8]

    def test_nesting(self):
        regions = wall_refinement((16, 16, 16), 3, [4.0, 1.5])
        up = np.repeat(np.repeat(np.repeat(regions[0], 2, 0), 2, 1), 2, 2)
        assert not (regions[1] & ~up).any()

    def test_validation(self):
        with pytest.raises(ValueError):
            wall_refinement((16, 16), 3, [3.0])


class TestEnforceShellSeparation:
    def test_preserves_generous_widths(self):
        w = enforce_shell_separation([8.0, 4.0, 2.0])
        assert w == [8.0, 4.0, 2.0]

    def test_fixes_tight_widths(self):
        w = enforce_shell_separation([0.5, 0.4])
        assert w[0] - w[1] >= 2.75 - 1e-12
        assert w[1] >= 0.75

    def test_output_strictly_decreasing(self):
        w = enforce_shell_separation([1.0, 1.0, 1.0])
        assert all(a > b for a, b in zip(w, w[1:]))

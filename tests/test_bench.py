"""Workload builders, the measurement harness and trace extrapolation."""

import pytest

from repro.bench.harness import default_concurrency, full_scale_mlups, measure
from repro.bench.model import level_factors, scale_trace
from repro.bench.workloads import (TABLE1_DISTRIBUTIONS, TABLE1_SIZES,
                                   airplane_tunnel, lid_cavity, sphere_tunnel)
from repro.core.fusion import FUSED_FULL, MODIFIED_BASELINE, ORIGINAL_BASELINE
from repro.core.simulation import Simulation
from repro.neon.runtime import KernelRecord


class TestWorkloads:
    def test_cavity_builds_and_runs(self):
        wl = lid_cavity(base=(12, 12), num_levels=2, lattice="D2Q9")
        sim = Simulation(wl.spec, wl.lattice, wl.collision, viscosity=wl.viscosity)
        sim.run(2)
        assert sim.is_stable()

    def test_cavity_reynolds(self):
        wl = lid_cavity(base=(24, 24, 24), num_levels=3)
        assert wl.viscosity == pytest.approx(wl.char_velocity * 24 / 100.0)

    def test_cavity_finest_shape(self):
        wl = lid_cavity(base=(24, 24, 24), num_levels=3)
        assert wl.finest_shape() == (96, 96, 96)

    def test_sphere_tunnel_scaled(self):
        wl = sphere_tunnel(scale=0.125)
        sim = Simulation(wl.spec, wl.lattice, wl.collision, viscosity=wl.viscosity)
        sim.run(2)
        assert sim.is_stable()
        assert sim.num_levels == 3
        assert wl.spec.solid.any()

    def test_sphere_tunnel_has_inlet_outflow(self):
        wl = sphere_tunnel(scale=0.125)
        assert wl.spec.bc.face("x-").kind == "inlet"
        assert wl.spec.bc.face("x+").kind == "outflow"

    def test_airplane_tunnel_scaled(self):
        wl = airplane_tunnel(scale=0.06, num_levels=3)
        sim = Simulation(wl.spec, wl.lattice, wl.collision, viscosity=wl.viscosity)
        sim.run(1)
        assert sim.is_stable()

    def test_table1_constants(self):
        assert len(TABLE1_SIZES) == len(TABLE1_DISTRIBUTIONS) == 3
        for dist in TABLE1_DISTRIBUTIONS:
            assert dist[0] > dist[1] > dist[2]  # finest level dominates


class TestMeasure:
    @pytest.fixture(scope="class")
    def wl(self):
        return sphere_tunnel(scale=0.125)

    def test_measurement_fields(self, wl):
        m = measure(wl, MODIFIED_BASELINE, steps=2, warmup=1)
        assert m.steps == 2
        assert m.wall_mlups > 0
        assert m.sim_mlups > 0
        assert m.kernels_per_step > 0
        assert len(m.trace) == m.cost.kernels

    def test_fused_beats_baseline_in_model(self, wl):
        mb = measure(wl, MODIFIED_BASELINE, steps=2)
        mo = measure(wl, FUSED_FULL, steps=2)
        assert mo.sim_mlups > mb.sim_mlups
        assert mo.kernels_per_step < mb.kernels_per_step
        assert mo.bytes_per_step < mb.bytes_per_step

    def test_default_concurrency_policy(self):
        assert not default_concurrency(MODIFIED_BASELINE)
        assert not default_concurrency(ORIGINAL_BASELINE)
        assert default_concurrency(FUSED_FULL)

    def test_table1_shape_reproduced(self, wl):
        """The headline Table-I result: 1.3-2.3x speedup, decaying with size."""
        mb = measure(wl, MODIFIED_BASELINE, steps=2)
        mo = measure(wl, FUSED_FULL, steps=2)
        speedups = []
        for dist in TABLE1_DISTRIBUTIONS:
            fb, _ = full_scale_mlups(mb, list(dist))
            fo, _ = full_scale_mlups(mo, list(dist))
            speedups.append(fo / fb)
        assert 1.8 <= speedups[0] <= 2.6    # paper: 2.20 on 272x192x272
        assert 1.2 <= speedups[2] <= 1.7    # paper: 1.30 on 816x576x816
        assert speedups[0] > speedups[1] > speedups[2]

    def test_full_scale_level_mismatch(self, wl):
        m = measure(wl, FUSED_FULL, steps=1)
        with pytest.raises(ValueError):
            full_scale_mlups(m, [1e6, 2e6])


class TestScaleTrace:
    def test_level_factors(self):
        vol, area = level_factors([100, 800], [800.0, 6400.0], d=3)
        assert vol == [8.0, 8.0]
        assert area[0] == pytest.approx(4.0)

    def test_bulk_scales_by_volume(self):
        rec = KernelRecord("C", 0, 100, 1000, 1000, (), ())
        out = scale_trace([rec], [8.0], [4.0])[0]
        assert out.n_cells == 800
        assert out.bytes_read == 8000

    def test_interface_scales_by_area(self):
        rec = KernelRecord("E", 1, 100, 1000, 1000, (), ())
        out = scale_trace([rec], [8.0, 8.0], [4.0, 4.0])[0]
        assert out.n_cells == 400

    def test_atomic_bytes_scale_by_area_inside_bulk(self):
        rec = KernelRecord("CA", 1, 100, 1000, 1100, (), (), atomic_bytes=100)
        out = scale_trace([rec], [8.0, 8.0], [4.0, 4.0])[0]
        assert out.atomic_bytes == 400
        assert out.bytes_written == 1000 * 8 + 400

    def test_unknown_kernel_rejected(self):
        rec = KernelRecord("Z", 0, 1, 1, 1, (), ())
        with pytest.raises(KeyError):
            scale_trace([rec], [1.0], [1.0])

    def test_launch_count_preserved(self):
        recs = [KernelRecord("C", 0, 10, 10, 10, (), ()) for _ in range(5)]
        assert len(scale_trace(recs, [2.0], [2.0])) == 5

"""Dense reference solver and cross-validation against the refined engine."""

import numpy as np
import pytest

from repro.core.lattice import D2Q9, D3Q19
from repro.core.units import omega_at_level, omega_from_viscosity
from repro.core.simulation import Simulation
from repro.grid.multigrid import DomainBC, FaceBC, RefinementSpec
from repro.reference.dense import DenseLBM
from repro.validation.analytic import taylor_green_2d, taylor_green_decay_rate

PERIODIC_2D = DomainBC({f: FaceBC("periodic") for f in ("x-", "x+", "y-", "y+")})


class TestDenseBasics:
    def test_rest_state_fixed_point(self):
        solver = DenseLBM(D2Q9, (12, 12), omega=1.3)
        f0 = solver.f.copy()
        solver.run(5)
        assert np.abs(solver.f - f0).max() < 1e-14

    def test_mass_conservation_closed_box(self):
        solver = DenseLBM(D2Q9, (12, 12), omega=1.3,
                          bc=DomainBC({"y+": FaceBC("moving", velocity=(0.05, 0.0))}))
        m0 = solver.total_mass()
        solver.run(40)
        assert solver.total_mass() == pytest.approx(m0, rel=1e-12)

    def test_taylor_green_accuracy(self):
        L, nu, u0 = 32, 0.02, 0.02
        solver = DenseLBM(D2Q9, (L, L), omega=omega_from_viscosity(nu),
                          bc=PERIODIC_2D)
        solver.initialize(u=lambda c: taylor_green_2d(c, 0.0, nu, u0, (L, L)))
        solver.run(200)
        _, u = solver.macroscopics()
        from repro.grid.geometry import cell_centers
        pts = cell_centers((L, L), 0).reshape(-1, 2)
        ua = taylor_green_2d(pts, 200.0, nu, u0, (L, L)).reshape(2, L, L)
        assert np.abs(u - ua).max() / u0 < 0.015

    def test_solid_obstacle_blocks_flow(self):
        solid = np.zeros((16, 16), dtype=bool)
        solid[6:10, 6:10] = True
        solver = DenseLBM(D2Q9, (16, 16), omega=1.2, bc=PERIODIC_2D, solid=solid)
        solver.initialize(u=np.array([0.03, 0.0]))
        solver.run(30)
        assert np.isfinite(solver.f[:, solver.fluid.ravel()]).all()
        _, u = solver.macroscopics()
        # drag: average fluid speed must fall below the initial uniform value
        speed = np.sqrt((u ** 2).sum(axis=0))[solver.fluid]
        assert speed.mean() < 0.03

    def test_3d_smoke(self):
        solver = DenseLBM(D3Q19, (8, 8, 8), omega=1.0,
                          bc=DomainBC({"z+": FaceBC("moving", velocity=(0.03, 0, 0))}))
        solver.run(5)
        assert np.isfinite(solver.f).all()

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            DenseLBM(D2Q9, (8, 8, 8), omega=1.0)
        with pytest.raises(ValueError):
            DenseLBM(D2Q9, (8, 8), omega=1.0, solid=np.zeros((4, 4), dtype=bool))

    def test_seconds_per_step_requires_run(self):
        solver = DenseLBM(D2Q9, (8, 8), omega=1.0)
        with pytest.raises(RuntimeError):
            solver.seconds_per_step()
        solver.run(2)
        assert solver.seconds_per_step() > 0


class TestCrossValidation:
    """The refined engine against an independent uniform-fine solution."""

    def test_refined_cavity_matches_dense_fine(self):
        # two-level 12^2->24^2 cavity vs an independent 24^2 uniform run,
        # compared on the fine level's own cells after the same physical time
        H = 12
        lid = (0.08, 0.0)
        nu = 0.06  # coarse-lattice units
        from repro.grid.geometry import wall_refinement
        bc = DomainBC({"y+": FaceBC("moving", velocity=lid)})
        spec = RefinementSpec((H, H), wall_refinement((H, H), 2, [3.0]), bc=bc)
        sim = Simulation(spec, "D2Q9", "bgk", viscosity=nu)
        steps = 120
        sim.run(steps)

        omega_fine = omega_at_level(omega_from_viscosity(nu), 1)
        dense = DenseLBM(D2Q9, (2 * H, 2 * H), omega=omega_fine, bc=bc)
        dense.run(2 * steps)  # fine time steps
        _, u_dense = dense.macroscopics()

        _, u = sim.macroscopics(1)
        pos = sim.positions(1)
        diff = u - u_dense[:, pos[:, 0], pos[:, 1]]
        assert np.abs(diff).max() / lid[0] < 0.08

    def test_uniform_engine_matches_dense_exactly(self):
        # with one level the engine and the dense solver are two independent
        # implementations of the same discrete system: results must agree to
        # machine precision
        bc = DomainBC({"y+": FaceBC("moving", velocity=(0.05, 0.0))})
        spec = RefinementSpec((10, 10), bc=bc)
        sim = Simulation(spec, "D2Q9", "bgk", omega0=1.25)
        sim.run(20)
        dense = DenseLBM(D2Q9, (10, 10), omega=1.25, bc=bc)
        dense.run(20)
        _, u_sim = sim.macroscopics(0)
        _, u_dense = dense.macroscopics()
        pos = sim.positions(0)
        diff = u_sim - u_dense[:, pos[:, 0], pos[:, 1]]
        assert np.abs(diff).max() < 1e-13

    def test_uniform_engine_matches_dense_with_outflow(self):
        bc = DomainBC({"x-": FaceBC("inlet", velocity=(0.04, 0.0)),
                       "x+": FaceBC("outflow")})
        spec = RefinementSpec((12, 10), bc=bc)
        sim = Simulation(spec, "D2Q9", "bgk", omega0=1.1)
        sim.run(15)
        dense = DenseLBM(D2Q9, (12, 10), omega=1.1, bc=bc)
        dense.run(15)
        _, u_sim = sim.macroscopics(0)
        _, u_dense = dense.macroscopics()
        pos = sim.positions(0)
        diff = u_sim - u_dense[:, pos[:, 0], pos[:, 1]]
        assert np.abs(diff).max() < 1e-13

    def test_taylor_green_decay_agreement(self):
        # independent implementations agree on the measured decay rate
        L, nu, u0 = 24, 0.03, 0.02
        dense = DenseLBM(D2Q9, (L, L), omega=omega_from_viscosity(nu),
                         bc=PERIODIC_2D)
        dense.initialize(u=lambda c: taylor_green_2d(c, 0.0, nu, u0, (L, L)))
        e0 = (dense.macroscopics()[1] ** 2).sum()
        dense.run(100)
        e1 = (dense.macroscopics()[1] ** 2).sum()
        rate = -np.log(e1 / e0) / 100.0
        assert rate == pytest.approx(taylor_green_decay_rate(nu, (L, L)), rel=0.03)

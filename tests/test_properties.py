"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.collision import BGK, equilibrium, macroscopics
from repro.core.lattice import CS2, D2Q9, D3Q19, D3Q27
from repro.core.units import omega_at_level, omega_from_viscosity, viscosity_from_omega
from repro.grid.bitmask import pack_bits, popcount, unpack_bits
from repro.grid.geometry import enforce_shell_separation
from repro.grid.sfc import hilbert_key, morton_decode, morton_key

LATTICES = {"D2Q9": D2Q9, "D3Q19": D3Q19, "D3Q27": D3Q27}


# -- space-filling curves ----------------------------------------------------

@given(st.lists(st.tuples(st.integers(0, 1023), st.integers(0, 1023),
                          st.integers(0, 1023)), min_size=1, max_size=50))
def test_morton_roundtrip_3d(coords):
    arr = np.array(coords, dtype=np.int64)
    keys = morton_key(arr, bits=10)
    assert np.array_equal(morton_decode(keys, 3, 10), arr)


@given(st.lists(st.tuples(st.integers(0, 255), st.integers(0, 255)),
                min_size=2, max_size=50, unique=True))
def test_morton_injective_2d(coords):
    arr = np.array(coords, dtype=np.int64)
    keys = morton_key(arr, bits=8)
    assert len(np.unique(keys)) == len(coords)


@given(st.lists(st.tuples(st.integers(0, 63), st.integers(0, 63),
                          st.integers(0, 63)), min_size=2, max_size=50,
                unique=True))
def test_hilbert_injective_3d(coords):
    arr = np.array(coords, dtype=np.int64)
    keys = hilbert_key(arr, bits=6)
    assert len(np.unique(keys)) == len(coords)


@given(st.integers(0, 63), st.integers(0, 63))
def test_morton_monotone_in_high_bits(x, y):
    # doubling every coordinate shifts the key by d bits exactly
    k1 = morton_key(np.array([[x, y]]), bits=7)[0]
    k2 = morton_key(np.array([[2 * x, 2 * y]]), bits=7)[0]
    assert k2 == k1 << np.uint64(2)


# -- bitmask ------------------------------------------------------------------

@given(arrays(bool, st.tuples(st.integers(1, 8), st.integers(1, 130))))
def test_bitmask_roundtrip(flags):
    words = pack_bits(flags)
    assert np.array_equal(unpack_bits(words, flags.shape[1]), flags)
    assert np.array_equal(popcount(words), flags.sum(axis=1))


# -- units --------------------------------------------------------------------

@given(st.floats(1e-5, 10.0))
def test_omega_viscosity_roundtrip(nu):
    assert viscosity_from_omega(omega_from_viscosity(nu)) == pytest.approx(nu)


@given(st.floats(0.05, 1.99), st.integers(0, 8))
def test_eq9_preserves_viscosity(omega0, level):
    wl = omega_at_level(omega0, level)
    dt = 0.5 ** level
    nu_l = CS2 * dt * (1.0 / wl - 0.5)
    nu_0 = CS2 * (1.0 / omega0 - 0.5)
    assert nu_l == pytest.approx(nu_0, rel=1e-9)
    assert 0.0 < wl < 2.0


# -- collision ----------------------------------------------------------------

@st.composite
def flow_state(draw, lat):
    n = draw(st.integers(1, 16))
    rho = 1.0 + 0.1 * draw(arrays(np.float64, n,
                                  elements=st.floats(-1, 1)))
    u = 0.05 * draw(arrays(np.float64, (lat.d, n),
                           elements=st.floats(-1, 1)))
    return rho, u


@pytest.mark.parametrize("name", list(LATTICES))
@given(data=st.data())
@settings(max_examples=25, deadline=None)
def test_equilibrium_moments_exact(name, data):
    lat = LATTICES[name]
    rho, u = data.draw(flow_state(lat))
    feq = equilibrium(lat, rho, u)
    assert np.allclose(feq.sum(axis=0), rho, rtol=1e-12)
    assert np.allclose(lat.ef.T @ feq, rho * u, atol=1e-12)


@pytest.mark.parametrize("name", list(LATTICES))
@given(data=st.data())
@settings(max_examples=25, deadline=None)
def test_bgk_conserves_invariants(name, data):
    lat = LATTICES[name]
    rho, u = data.draw(flow_state(lat))
    omega = data.draw(st.floats(0.1, 1.99))
    feq = equilibrium(lat, rho, u)
    noise = 0.01 * feq * data.draw(
        arrays(np.float64, feq.shape, elements=st.floats(-1, 1)))
    f = feq + noise
    out = BGK(lat).collide(f, omega)
    rho0, u0 = macroscopics(lat, f)
    rho1, u1 = macroscopics(lat, out)
    assert np.allclose(rho1, rho0, rtol=1e-12)
    assert np.allclose(u1 * rho1, u0 * rho0, atol=1e-12)


# -- geometry helpers -----------------------------------------------------------

@given(st.lists(st.floats(0.01, 50.0), min_size=1, max_size=5))
def test_shell_separation_always_legal(widths):
    w = enforce_shell_separation(sorted(widths, reverse=True))
    for k in range(len(w) - 1):
        assert w[k] - w[k + 1] >= 2.75 * 2.0 ** -k - 1e-9
    for k, v in enumerate(w):
        assert v >= 1.5 * 2.0 ** -k - 1e-12


@given(st.lists(st.floats(3.0, 50.0), min_size=1, max_size=4))
def test_shell_separation_keeps_generous_widths(widths):
    widths = sorted(widths, reverse=True)
    assume(all(a - b >= 3.0 for a, b in zip(widths, widths[1:])))
    assert enforce_shell_separation(widths) == widths


# -- accumulate identity ---------------------------------------------------------

@given(st.integers(1, 30), st.data())
@settings(max_examples=20, deadline=None)
def test_bincount_accumulate_matches_add_at(n_ghost, data):
    # the engine uses bincount as a deterministic stand-in for atomic adds
    m = n_ghost * 4
    idx = np.repeat(np.arange(n_ghost), 4)
    vals = data.draw(arrays(np.float64, m, elements=st.floats(-10, 10)))
    via_bincount = np.bincount(idx, weights=vals, minlength=n_ghost)
    via_add_at = np.zeros(n_ghost)
    np.add.at(via_add_at, idx, vals)
    assert np.allclose(via_bincount, via_add_at, atol=1e-12)


# -- end-to-end schedule property -------------------------------------------------

@given(st.sampled_from(["baseline-4a", "baseline-4b", "fuse-CA", "fuse-SE",
                        "fuse-SO", "fuse-CA+SE+SO", "ours-4f"]),
       st.integers(1, 3))
@settings(max_examples=10, deadline=None)
def test_any_config_any_steps_mass_bounded(config_name, steps):
    from repro.core.fusion import get_config
    from repro.core.simulation import Simulation
    from repro.grid.geometry import wall_refinement
    from repro.grid.multigrid import DomainBC, FaceBC, RefinementSpec

    bc = DomainBC({"y+": FaceBC("moving", velocity=(0.05, 0.0))})
    spec = RefinementSpec((16, 16), wall_refinement((16, 16), 2, [3.0]), bc=bc)
    sim = Simulation(spec, "D2Q9", "bgk", viscosity=0.05,
                     config=get_config(config_name))
    m0 = sim.engine.total_mass()
    sim.run(steps)
    assert sim.is_stable()
    assert abs(sim.engine.total_mass() - m0) / m0 < 1e-4

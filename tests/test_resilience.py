"""Resilience subsystem: fault injection, rollback-retry, degradation.

The central claim mirrors the paper's determinism guarantees: a run that
suffers a *transient* fault (field corruption, kernel failure, simulated
device OOM) and recovers through checkpoint rollback finishes
**bit-identical** to an unfaulted run — for every fusion config of
Fig. 4 and in both serial and threaded execution (the matrix honours the
ambient ``REPRO_THREADED``, so ``make test-threaded`` covers the
deferred path).
"""

import os

import numpy as np
import pytest

from repro.core.config import SimConfig
from repro.core.fusion import ABLATION_CONFIGS, ORIGINAL_BASELINE
from repro.core.simulation import Simulation
from repro.gpu.memory import DeviceOOMError
from repro.grid.geometry import wall_refinement
from repro.grid.multigrid import DomainBC, FaceBC, RefinementSpec
from repro.io.checkpoint import (CheckpointError, CheckpointStore,
                                 restore_checkpoint, save_checkpoint)
from repro.obs.watchdog import SimulationDiverged
from repro.resilience import (Fault, FaultInjector, InjectedKernelError,
                              ResilientRunner, RetryExhausted, RetryPolicy)

ALL_CONFIGS = (ORIGINAL_BASELINE,) + tuple(ABLATION_CONFIGS)


def cavity_spec():
    base = (16, 16)
    bc = DomainBC({"y+": FaceBC("moving", velocity=(0.06, 0.0))})
    return RefinementSpec(base, wall_refinement(base, 2, [3.0]), bc=bc)


def cavity_config(**overrides):
    return SimConfig(lattice="D2Q9", viscosity=0.05, **overrides)


def state(sim):
    return [buf.f[:, :buf.n_owned].copy() for buf in sim.engine.levels]


def identical(a, b):
    return all(np.array_equal(x, y) for x, y in zip(a, b))


def reference_state(spec, config, steps):
    with Simulation.from_config(spec, config) as sim:
        sim.run(steps)
        return state(sim)


# -- fault injection ----------------------------------------------------------

class TestFaultInjector:
    def test_nan_fault_fires_at_chosen_step_and_site(self):
        spec = cavity_spec()
        sim = Simulation.from_config(spec, cavity_config(threaded=False))
        inj = FaultInjector([Fault("nan", step=3, level=1, cell=4, q=2)])
        inj.install(sim)
        sim.run(2)
        assert sim.is_stable() and not inj.fired
        sim.run(1)
        assert not sim.is_stable()
        assert np.isnan(sim.engine.levels[1].f[2, 4])
        assert inj.fired == [{"kind": "nan", "step": 3, "level": 1,
                              "cell": 4, "q": 2}]

    def test_inf_fault(self):
        sim = Simulation.from_config(cavity_spec(),
                                     cavity_config(threaded=False))
        FaultInjector([Fault("inf", step=1)]).install(sim)
        sim.run(1)
        assert np.isinf(sim.engine.levels[0].f[0, 0])

    def test_nan_fault_trips_watchdog_at_injected_step(self):
        sim = Simulation.from_config(cavity_spec(),
                                     cavity_config(threaded=False))
        FaultInjector([Fault("nan", step=3)]).install(sim)
        with pytest.raises(SimulationDiverged) as exc:
            sim.watchdog(every=1).watch(6)
        assert exc.value.step == 3
        assert exc.value.reason == "non-finite"

    def test_kernel_fault_raises_and_aborts_step(self):
        sim = Simulation.from_config(cavity_spec(),
                                     cavity_config(threaded=False))
        inj = FaultInjector([Fault("kernel", step=3)])
        inj.install(sim)
        with pytest.raises(InjectedKernelError):
            sim.run(5)
        assert sim.steps_done == 2  # the faulted step never completed
        assert inj.fired[0]["kind"] == "kernel"

    def test_oom_fault_raises_device_oom(self):
        sim = Simulation.from_config(cavity_spec(),
                                     cavity_config(threaded=False))
        FaultInjector([Fault("oom", step=2)]).install(sim)
        with pytest.raises(DeviceOOMError) as exc:
            sim.run(5)
        assert exc.value.requested > exc.value.capacity

    def test_one_shot_fault_disarms_after_firing(self):
        sim = Simulation.from_config(cavity_spec(),
                                     cavity_config(threaded=False))
        inj = FaultInjector([Fault("kernel", step=2, times=1)])
        inj.install(sim)
        with pytest.raises(InjectedKernelError):
            sim.run(3)
        assert not inj.faults[0].armed
        sim.run(3)  # disarmed: runs clean
        assert len(inj.fired) == 1

    def test_kernel_name_filter(self):
        sim = Simulation.from_config(cavity_spec(),
                                     cavity_config(threaded=False))
        inj = FaultInjector([Fault("kernel", step=1, kernel="SO", level=0)])
        inj.install(sim)
        with pytest.raises(InjectedKernelError) as exc:
            sim.run(1)
        assert exc.value.kernel == "SO" and exc.value.level == 0

    def test_only_threaded_fault_is_inert_in_serial(self):
        sim = Simulation.from_config(cavity_spec(),
                                     cavity_config(threaded=False))
        inj = FaultInjector([Fault("kernel", step=2, only_threaded=True)])
        inj.install(sim)
        sim.run(4)
        assert not inj.fired and sim.steps_done == 4

    def test_bad_fault_kind_rejected(self):
        with pytest.raises(ValueError):
            Fault("segfault", step=1)
        with pytest.raises(ValueError):
            Fault("nan", step=0)


# -- checkpoint store ---------------------------------------------------------

class TestCheckpointStore:
    def test_prunes_to_keep_last_k(self, tmp_path):
        sim = Simulation.from_config(cavity_spec(),
                                     cavity_config(threaded=False))
        store = CheckpointStore(tmp_path / "ck", keep=2)
        for _ in range(3):
            sim.run(2)
            store.save(sim)
        assert store.steps() == [4, 6]
        entries = store.manifest()["entries"]
        assert [e["step"] for e in entries] == [4, 6]
        assert entries[-1]["config"]["lattice"] == "D2Q9"

    def test_restore_specific_generation(self, tmp_path):
        sim = Simulation.from_config(cavity_spec(),
                                     cavity_config(threaded=False))
        store = CheckpointStore(tmp_path / "ck")
        sim.run(2)
        store.save(sim)
        mid = state(sim)
        sim.run(2)
        store.save(sim)
        other = Simulation.from_config(cavity_spec(),
                                       cavity_config(threaded=False))
        assert store.restore(other, 2) == 2
        assert other.steps_done == 2
        assert identical(mid, state(other))

    def test_truncated_checkpoint_raises_structured_error(self, tmp_path):
        # Regression: a torn/truncated file used to surface as a raw
        # zipfile/EOF error mid-restore, after buffers were already
        # partially overwritten.
        sim = Simulation.from_config(cavity_spec(),
                                     cavity_config(threaded=False))
        sim.run(2)
        path = str(tmp_path / "ck.npz")
        save_checkpoint(sim, path)
        blob = open(path, "rb").read()
        open(path, "wb").write(blob[:len(blob) // 3])
        before = state(sim)
        with pytest.raises(CheckpointError) as exc:
            restore_checkpoint(sim, path)
        assert exc.value.path == path
        # all-or-nothing: the failed restore touched no buffer
        assert identical(before, state(sim))

    def test_restore_latest_falls_back_over_torn_generation(self, tmp_path):
        sim = Simulation.from_config(cavity_spec(),
                                     cavity_config(threaded=False))
        store = CheckpointStore(tmp_path / "ck")
        sim.run(2)
        store.save(sim)
        good = state(sim)
        sim.run(2)
        newest = store.save(sim)
        blob = open(newest, "rb").read()
        open(newest, "wb").write(blob[:100])
        other = Simulation.from_config(cavity_spec(),
                                       cavity_config(threaded=False))
        assert store.restore_latest(other) == 2
        assert identical(good, state(other))

    def test_all_generations_torn_raises(self, tmp_path):
        sim = Simulation.from_config(cavity_spec(),
                                     cavity_config(threaded=False))
        store = CheckpointStore(tmp_path / "ck")
        sim.run(1)
        p = store.save(sim)
        open(p, "wb").write(b"junk")
        with pytest.raises(CheckpointError):
            store.restore_latest(sim)

    def test_empty_store_raises(self, tmp_path):
        sim = Simulation.from_config(cavity_spec(),
                                     cavity_config(threaded=False))
        with pytest.raises(CheckpointError):
            CheckpointStore(tmp_path / "ck").restore_latest(sim)

    def test_rollback_then_resave_drops_abandoned_timeline(self, tmp_path):
        # PR-9 regression: a save below existing generations used to
        # leave the rolled-back-past checkpoints on disk and in the
        # manifest, so restore_latest resurrected abandoned state.
        sim = Simulation.from_config(cavity_spec(),
                                     cavity_config(threaded=False))
        store = CheckpointStore(tmp_path / "ck", keep=3)
        sim.run(2)
        store.save(sim)                     # step 2
        for _ in range(2):
            sim.run(2)
            store.save(sim)                 # steps 4, 6
        store.restore(sim, 2)
        sim.run(1)                          # new timeline from step 2
        store.save(sim)                     # step 3 is now the head
        assert store.steps() == [2, 3]
        assert [e["step"] for e in store.manifest()["entries"]] == [2, 3]
        other = Simulation.from_config(cavity_spec(),
                                       cavity_config(threaded=False))
        assert store.restore_latest(other) == 3
        assert other.steps_done == 3

    def test_lost_manifest_keeps_fallback_generations(self, tmp_path):
        # PR-9 regression: with the manifest gone, pruning used to keep
        # only the step just saved and delete every fallback generation.
        sim = Simulation.from_config(cavity_spec(),
                                     cavity_config(threaded=False))
        store = CheckpointStore(tmp_path / "ck", keep=3)
        for _ in range(2):
            sim.run(2)
            store.save(sim)                 # steps 2, 4
        os.unlink(os.path.join(store.directory, CheckpointStore.MANIFEST))
        sim.run(2)
        store.save(sim)                     # step 6, manifest rebuilt
        assert store.steps() == [2, 4, 6]

    def test_restore_latest_tolerates_prune_racing_restore(self, tmp_path,
                                                           monkeypatch):
        # Another process' save() can prune a generation between our
        # directory listing and the open; the vanished file must read as
        # a damaged generation and fall back, not crash.
        sim = Simulation.from_config(cavity_spec(),
                                     cavity_config(threaded=False))
        store = CheckpointStore(tmp_path / "ck")
        sim.run(2)
        store.save(sim)
        good = state(sim)
        listed = store.steps()
        monkeypatch.setattr(CheckpointStore, "steps",
                            lambda self: listed + [99])
        other = Simulation.from_config(cavity_spec(),
                                       cavity_config(threaded=False))
        assert store.restore_latest(other) == 2
        assert identical(good, state(other))

    def test_no_temp_files_left_behind(self, tmp_path):
        sim = Simulation.from_config(cavity_spec(),
                                     cavity_config(threaded=False))
        store = CheckpointStore(tmp_path / "ck", keep=1)
        for _ in range(3):
            sim.run(1)
            store.save(sim)
        leftovers = [n for n in os.listdir(store.directory)
                     if n.endswith(".tmp")]
        assert leftovers == []


# -- the recovery matrix ------------------------------------------------------

@pytest.mark.parametrize("fusion", ALL_CONFIGS, ids=lambda c: c.name)
@pytest.mark.parametrize("kind", ["nan", "kernel", "oom"])
def test_recovery_bit_identical(fusion, kind):
    """Every fusion config recovers bit-identically from every fault kind.

    ``threaded`` is left at ``None`` so the ambient ``REPRO_THREADED``
    decides the execution mode — the threaded CI lane runs this exact
    matrix through the wave executor.
    """
    spec = cavity_spec()
    config = cavity_config(fusion=fusion)
    steps = 8
    reference = reference_state(spec, config, steps)
    injector = FaultInjector([Fault(kind, step=5)])
    with ResilientRunner(spec, config, faults=injector,
                         policy=RetryPolicy(checkpoint_every=3)) as runner:
        report = runner.run(steps).report
        assert report.outcome == "ok"
        assert report.retries == 1
        assert len(injector.fired) == 1
        assert identical(reference, state(runner.sim))


def test_recovery_is_visible_in_telemetry():
    spec = cavity_spec()
    injector = FaultInjector([Fault("nan", step=4)])
    with ResilientRunner(spec, cavity_config(), faults=injector,
                         policy=RetryPolicy(checkpoint_every=3)) as runner:
        report = runner.run(6).report
    assert runner.registry["retries_total"].value == 1
    assert runner.registry["rollback_steps"].value >= 1
    assert runner.registry["checkpoints_total"].value == report.checkpoints
    names = [e.name for e in runner.recorder.events]
    # events survive the trace reset the rollback performs
    assert names.count("retry") == 1 and names.count("rollback") == 1
    assert report.events and report.events[0]["name"] == "retry"


def test_retry_budget_exhaustion_carries_report():
    spec = cavity_spec()
    injector = FaultInjector([Fault("kernel", step=3, times=-1)])
    runner = ResilientRunner(spec, cavity_config(threaded=False),
                             faults=injector,
                             policy=RetryPolicy(max_retries=2,
                                                checkpoint_every=3))
    with runner:
        with pytest.raises(RetryExhausted) as exc:
            runner.run(6)
    report = exc.value.report
    assert report.outcome == "failed"
    assert report.retries == 3  # initial try + 2 retries all failed
    assert report.failures[-1]["kind"] == "kernel"


def test_ladder_falls_back_to_serial_and_stays_bit_identical():
    spec = cavity_spec()
    config = cavity_config(threaded=True)
    steps = 8
    reference = reference_state(spec, cavity_config(threaded=False), steps)
    injector = FaultInjector([Fault("kernel", step=5, times=-1,
                                    only_threaded=True)])
    with ResilientRunner(spec, config, faults=injector,
                         policy=RetryPolicy(
                             checkpoint_every=3,
                             executor_failures_before_serial=2)) as runner:
        report = runner.run(steps).report
        assert report.outcome == "degraded"
        assert report.mode == "serial"
        assert [d["rung"] for d in report.degradations] == ["serial"]
        assert runner.config.threaded is False
        assert identical(reference, state(runner.sim))
        assert runner.registry["degradations_total"].value == 1


def test_ladder_rebuilds_with_safety_omega_on_repeated_divergence():
    spec = cavity_spec()
    # The fault fires twice, pushing the divergence count to the ladder
    # threshold, then disarms — the safety rerun completes.
    injector = FaultInjector([Fault("nan", step=4, times=2)])
    policy = RetryPolicy(checkpoint_every=3, divergences_before_safety=2,
                         omega_safety_scale=0.8)
    with ResilientRunner(spec, cavity_config(threaded=False),
                         faults=injector, policy=policy) as runner:
        omega_before = runner.sim.engine.omega[0]
        report = runner.run(6).report
        assert report.outcome == "degraded"
        assert report.omega_scale == pytest.approx(0.8)
        assert [d["rung"] for d in report.degradations] == ["safety-omega"]
        assert runner.sim.engine.omega[0] == pytest.approx(0.8 * omega_before)
        assert runner.sim.steps_done == 6 and runner.sim.is_stable()


def test_backoff_schedule_uses_injected_sleep():
    spec = cavity_spec()
    naps = []
    injector = FaultInjector([Fault("kernel", step=2, times=3)])
    policy = RetryPolicy(max_retries=5, checkpoint_every=2, backoff=0.5,
                         backoff_factor=2.0, max_backoff=1.5)
    with ResilientRunner(spec, cavity_config(threaded=False),
                         faults=injector, policy=policy,
                         sleep=naps.append) as runner:
        report = runner.run(4).report
    assert report.outcome == "ok"
    assert naps == [0.5, 1.0, 1.5]  # geometric, capped at max_backoff


def test_runner_uses_provided_store_directory(tmp_path):
    spec = cavity_spec()
    with ResilientRunner(spec, cavity_config(threaded=False),
                         store=str(tmp_path / "ck"),
                         policy=RetryPolicy(checkpoint_every=2)) as runner:
        runner.run(4)
        assert runner.store.steps()  # persisted under the given directory
        assert (tmp_path / "ck" / "manifest.json").exists()


def test_unrecognised_exception_propagates():
    spec = cavity_spec()

    def explode(sim):
        raise KeyError("not a kernel failure")

    runner = ResilientRunner(spec, cavity_config(threaded=False))
    runner.watchdog.callback = explode
    with runner:
        with pytest.raises(KeyError):
            runner.run(2)

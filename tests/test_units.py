"""Acoustic scaling and the per-level relaxation of Eq. (9)."""

import numpy as np
import pytest

from repro.core.lattice import CS2
from repro.core.units import (FlowScales, omega_at_level, omega_from_viscosity,
                              tau_at_level, viscosity_from_omega)


class TestOmegaViscosity:
    def test_roundtrip(self):
        for nu in (0.001, 0.05, 0.4, 2.0):
            assert viscosity_from_omega(omega_from_viscosity(nu)) == pytest.approx(nu)

    def test_range(self):
        assert 0 < omega_from_viscosity(1e-6) < 2
        assert 0 < omega_from_viscosity(100.0) < 2

    def test_omega_one_means_tau_one(self):
        # omega = 1 <=> tau = 1 <=> nu = c_s^2 / 2
        assert omega_from_viscosity(CS2 / 2.0) == pytest.approx(1.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            omega_from_viscosity(0.0)
        with pytest.raises(ValueError):
            omega_from_viscosity(-1.0)
        with pytest.raises(ValueError):
            viscosity_from_omega(2.0)
        with pytest.raises(ValueError):
            viscosity_from_omega(0.0)


class TestEquation9:
    def test_level_zero_identity(self):
        for w0 in (0.3, 1.0, 1.7, 1.99):
            assert omega_at_level(w0, 0) == pytest.approx(w0)

    @pytest.mark.parametrize("w0", [0.5, 1.0, 1.5, 1.9, 1.99])
    @pytest.mark.parametrize("lvl", [0, 1, 2, 3, 5])
    def test_viscosity_invariant_across_levels(self, w0, lvl):
        # nu_L = c_s^2 (tau_L - dt_L/2) must equal nu_0, with dt_L = 2^-L
        # and tau_L = dt_L / omega_L.
        wl = omega_at_level(w0, lvl)
        dt = 0.5 ** lvl
        nu_l = CS2 * dt * (1.0 / wl - 0.5)
        nu_0 = CS2 * (1.0 / w0 - 0.5)
        assert nu_l == pytest.approx(nu_0, rel=1e-12)

    def test_omega_decreases_with_level(self):
        # finer levels have larger tau/dt, i.e. smaller omega, for omega0 < 2
        w0 = 1.8
        values = [omega_at_level(w0, lv) for lv in range(6)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_omega_stays_in_stability_range(self):
        for w0 in np.linspace(0.05, 1.99, 40):
            for lv in range(8):
                assert 0.0 < omega_at_level(w0, lv) < 2.0

    def test_matches_tau_relation(self):
        # tau_L/dt_L = 2^L tau_0 + (1 - 2^L)/2 (Section II-A)
        w0 = 1.6
        tau0 = 1.0 / w0
        for lv in range(5):
            tau_ratio = tau_at_level(tau0, lv)
            assert omega_at_level(w0, lv) == pytest.approx(1.0 / tau_ratio, rel=1e-12)

    def test_invalid(self):
        with pytest.raises(ValueError):
            omega_at_level(1.0, -1)
        with pytest.raises(ValueError):
            omega_at_level(2.5, 1)


class TestFlowScales:
    def test_cavity_example(self):
        fs = FlowScales(length=48.0, velocity=0.06, reynolds=100.0)
        assert fs.viscosity == pytest.approx(0.0288)
        assert 0 < fs.omega0 < 2
        assert fs.mach == pytest.approx(0.06 / np.sqrt(CS2))

    def test_omega_matches_eq9(self):
        fs = FlowScales(length=32.0, velocity=0.05, reynolds=400.0)
        for lv in range(4):
            assert fs.omega(lv) == pytest.approx(omega_at_level(fs.omega0, lv))

    def test_invalid(self):
        with pytest.raises(ValueError):
            FlowScales(length=0, velocity=0.1, reynolds=10)
        with pytest.raises(ValueError):
            FlowScales(length=1, velocity=-0.1, reynolds=10)

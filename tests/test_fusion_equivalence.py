"""The central correctness claim: every fusion variant of Fig. 4 computes
bit-identical physics; only the kernel schedule changes (Section IV)."""

import numpy as np
import pytest

from repro.core.fusion import (ABLATION_CONFIGS, FUSE_CA, FUSED_FULL,
                               MODIFIED_BASELINE, ORIGINAL_BASELINE, FusionConfig,
                               get_config)
from repro.core.simulation import Simulation
from repro.grid.geometry import Sphere, shell_refinement, voxelize, wall_refinement
from repro.grid.multigrid import DomainBC, FaceBC, RefinementSpec

ALL_CONFIGS = (ORIGINAL_BASELINE,) + tuple(ABLATION_CONFIGS)


def state_vector(sim):
    return np.concatenate([b.f[:, :b.n_owned].ravel() for b in sim.engine.levels])


def cavity_2d():
    base = (16, 16)
    bc = DomainBC({"y+": FaceBC("moving", velocity=(0.06, 0.0))})
    return RefinementSpec(base, wall_refinement(base, 2, [3.0]), bc=bc), "D2Q9", "bgk"


def cavity_2d_three_levels():
    base = (24, 24)
    bc = DomainBC({"y+": FaceBC("moving", velocity=(0.05, 0.0))})
    return (RefinementSpec(base, wall_refinement(base, 3, [7.0, 2.0]), bc=bc),
            "D2Q9", "bgk")


def sphere_3d():
    sphere = Sphere((6.0, 5.0, 5.0), 1.3)
    base = (14, 10, 10)
    regions = shell_refinement(sphere, base, 2, [3.0])
    solid = voxelize(sphere, (28, 20, 20), 1)
    bc = DomainBC({"x-": FaceBC("inlet", velocity=(0.04, 0.0, 0.0)),
                   "x+": FaceBC("outflow")})
    return (RefinementSpec(base, regions, solid=solid, bc=bc), "D3Q27", "kbc")


@pytest.mark.parametrize("setup", [cavity_2d, cavity_2d_three_levels, sphere_3d],
                         ids=["cavity2d", "cavity2d-3lvl", "sphere3d-kbc"])
def test_all_variants_bitwise_identical(setup):
    spec, lattice, collision = setup()
    ref = None
    for cfg in ALL_CONFIGS:
        sim = Simulation(spec, lattice, collision, viscosity=0.04, config=cfg)
        sim.run(6)
        state = state_vector(sim)
        assert np.isfinite(state).all(), cfg.name
        if ref is None:
            ref = state
        else:
            assert np.array_equal(state, ref), f"{cfg.name} diverged from reference"


def test_kernel_count_reduction_matches_fig2():
    # Paper: "around three times fewer kernels" for the fully fused variant.
    spec, lattice, collision = cavity_2d_three_levels()
    counts = {}
    for cfg in (MODIFIED_BASELINE, FUSED_FULL):
        sim = Simulation(spec, lattice, collision, viscosity=0.04, config=cfg)
        sim.run(1)
        counts[cfg.name] = sim.runtime.launches()
    ratio = counts["baseline-4b"] / counts["ours-4f"]
    assert 2.5 <= ratio <= 3.5


def test_launch_counts_strictly_ordered():
    spec, lattice, collision = cavity_2d()
    launches = []
    for cfg in (ORIGINAL_BASELINE, MODIFIED_BASELINE, FUSE_CA, FUSED_FULL):
        sim = Simulation(spec, lattice, collision, viscosity=0.04, config=cfg)
        sim.run(1)
        launches.append(sim.runtime.launches())
    assert launches == sorted(launches, reverse=True)
    assert len(set(launches)) == len(launches)


def test_fused_full_uses_case_kernel_on_finest_only():
    spec, lattice, collision = cavity_2d_three_levels()
    sim = Simulation(spec, lattice, collision, viscosity=0.04, config=FUSED_FULL)
    sim.run(1)
    case = [r for r in sim.runtime.records if r.name == "CASE"]
    assert case and all(r.level == 2 for r in case)
    assert len(case) == 4  # finest level runs 2^2 substeps per coarse step


def test_original_baseline_uses_gather_accumulate_and_ghost_explosion():
    spec, lattice, collision = cavity_2d()
    sim = Simulation(spec, lattice, collision, viscosity=0.04,
                     config=ORIGINAL_BASELINE)
    sim.run(1)
    names = [r.name for r in sim.runtime.records]
    assert names.count("A") == 2      # gather per fine collision
    assert names.count("E") == 4      # ghost copy + explosion patch, per substep
    a_recs = [r for r in sim.runtime.records if r.name == "A"]
    assert all(r.atomic_bytes == 0 for r in a_recs)  # gather needs no atomics


def test_modified_baseline_accumulate_uses_atomics():
    spec, lattice, collision = cavity_2d()
    sim = Simulation(spec, lattice, collision, viscosity=0.04,
                     config=MODIFIED_BASELINE)
    sim.run(1)
    a_recs = [r for r in sim.runtime.records if r.name == "A"]
    assert a_recs and all(r.atomic_bytes > 0 for r in a_recs)


def test_bytes_per_step_decrease_with_fusion():
    spec, lattice, collision = cavity_2d_three_levels()
    totals = {}
    for cfg in (MODIFIED_BASELINE, FUSED_FULL):
        sim = Simulation(spec, lattice, collision, viscosity=0.04, config=cfg)
        sim.run(2)
        totals[cfg.name] = sim.runtime.total_bytes()
    assert totals["ours-4f"] < 0.8 * totals["baseline-4b"]


class TestFusionConfigValidation:
    def test_original_cannot_fuse(self):
        with pytest.raises(ValueError, match="cannot fuse"):
            FusionConfig("bad", original_layout=True, fuse_ca=True)

    def test_case_requires_ca(self):
        with pytest.raises(ValueError, match="fuse_ca"):
            FusionConfig("bad", fuse_cs_finest=True)

    def test_get_config(self):
        assert get_config("ours-4f") is FUSED_FULL
        with pytest.raises(KeyError):
            get_config("nope")

    def test_ablation_order_baseline_first(self):
        assert ABLATION_CONFIGS[0] is MODIFIED_BASELINE
        assert ABLATION_CONFIGS[-1] is FUSED_FULL


def test_uniform_grid_supports_fused_cs():
    # single-level grids accept the CASE path too (plain fused collide-stream)
    spec = RefinementSpec((12, 12))
    a = Simulation(spec, "D2Q9", "bgk", viscosity=0.04, config=MODIFIED_BASELINE)
    b = Simulation(spec, "D2Q9", "bgk", viscosity=0.04, config=FUSED_FULL)
    for sim in (a, b):
        sim.initialize(u=lambda c: 0.01 * np.stack([np.sin(2 * np.pi * c[:, 1] / 12),
                                                    np.cos(2 * np.pi * c[:, 0] / 12)]))
        sim.run(4)
    assert np.array_equal(state_vector(a), state_vector(b))
    assert [r.name for r in b.runtime.records].count("CASE") == 4

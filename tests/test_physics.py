"""Physics validation: analytic flows, conservation, stability.

Accuracy expectations follow the method's published characteristics: the
volume-based scheme (Rohde et al., as used by the paper) applies *no*
non-equilibrium rescaling and holds the coarse state frozen over both
fine substeps, so refinement interfaces are first-order accurate in time.
Steady flows are accurate to a few percent; unsteady flows show larger
but bounded interface errors while uniform states and flows remain exact.
"""

import numpy as np
import pytest

from repro.core.simulation import Simulation
from repro.grid.multigrid import DomainBC, FaceBC, RefinementSpec
from repro.grid.geometry import wall_refinement
from repro.validation.analytic import (couette_profile, taylor_green_2d,
                                       taylor_green_decay_rate)

PERIODIC_2D = DomainBC({f: FaceBC("periodic") for f in ("x-", "x+", "y-", "y+")})


def tg_sim(L, refined, nu=0.02, u0=0.02):
    regions = []
    if refined:
        q = L // 16
        region = np.zeros((L, L), dtype=bool)
        region[5 * q:11 * q, 5 * q:11 * q] = True
        regions = [region]
    spec = RefinementSpec((L, L), regions, bc=PERIODIC_2D)
    sim = Simulation(spec, "D2Q9", "bgk", viscosity=nu)
    sim.initialize(u=lambda c: taylor_green_2d(c, 0.0, nu, u0, (L, L)))
    return sim


def level_errors(sim, t, nu, u0, L):
    errs = []
    for lv in range(sim.num_levels):
        _, u = sim.macroscopics(lv)
        centers = (sim.positions(lv) + 0.5) * 2.0 ** (-lv)
        ua = taylor_green_2d(centers, t, nu, u0, (L, L))
        errs.append(np.abs(u - ua).max() / u0)
    return errs


def kinetic_energy(sim):
    e = 0.0
    for lv in range(sim.num_levels):
        _, u = sim.macroscopics(lv)
        e += float((u * u).sum()) * (0.5 ** lv) ** 2
    return e


class TestTaylorGreenUniform:
    def test_velocity_field_accuracy(self):
        sim = tg_sim(32, refined=False)
        sim.run(200)
        errs = level_errors(sim, 200.0, 0.02, 0.02, 32)
        assert errs[0] < 0.015  # sub-2% on a 32^2 uniform grid

    def test_decay_rate(self):
        sim = tg_sim(32, refined=False)
        e0 = kinetic_energy(sim)
        sim.run(150)
        rate = -np.log(kinetic_energy(sim) / e0) / 150.0
        exact = taylor_green_decay_rate(0.02, (32.0, 32.0))
        assert rate == pytest.approx(exact, rel=0.03)


class TestTaylorGreenRefined:
    def test_velocity_field_bounded_interface_error(self):
        sim = tg_sim(32, refined=True)
        sim.run(200)
        errs = level_errors(sim, 200.0, 0.02, 0.02, 32)
        # first-order interface coupling: larger than uniform, but bounded
        assert max(errs) < 0.15

    def test_decay_rate_approximates_viscous_physics(self):
        sim = tg_sim(32, refined=True)
        e0 = kinetic_energy(sim)
        sim.run(150)
        rate = -np.log(kinetic_energy(sim) / e0) / 150.0
        exact = taylor_green_decay_rate(0.02, (32.0, 32.0))
        assert rate == pytest.approx(exact, rel=0.15)

    def test_no_spurious_energy_growth(self):
        sim = tg_sim(32, refined=True)
        e = [kinetic_energy(sim)]
        for _ in range(5):
            sim.run(30)
            e.append(kinetic_energy(sim))
        assert all(b < a for a, b in zip(e, e[1:]))


class TestUniformFlowExactness:
    """Constant states must cross refinement interfaces exactly (Eq. 10/11)."""

    def test_rest_state_fixed_point(self):
        spec = RefinementSpec((16, 16), wall_refinement((16, 16), 2, [3.0]))
        sim = Simulation(spec, "D2Q9", "bgk", viscosity=0.05)
        f0 = [b.f[:, :b.n_owned].copy() for b in sim.engine.levels]
        sim.run(4)
        for buf, ref in zip(sim.engine.levels, f0):
            assert np.abs(buf.f[:, :buf.n_owned] - ref).max() < 1e-14

    def test_uniform_advection_exact(self):
        region = np.zeros((16, 16), dtype=bool)
        region[5:11, 5:11] = True
        spec = RefinementSpec((16, 16), [region], bc=PERIODIC_2D)
        sim = Simulation(spec, "D2Q9", "bgk", viscosity=0.05)
        sim.initialize(u=np.array([0.02, 0.01]))
        sim.run(8)
        for lv in range(2):
            rho, u = sim.macroscopics(lv)
            assert np.abs(rho - 1.0).max() < 1e-13
            assert np.abs(u[0] - 0.02).max() < 1e-13
            assert np.abs(u[1] - 0.01).max() < 1e-13


class TestCouette:
    def make(self, H=12, nu=0.3, uw=0.05, steps=600):
        bc = DomainBC({"x-": FaceBC("periodic"), "x+": FaceBC("periodic"),
                       "y+": FaceBC("moving", velocity=(uw, 0.0))})
        region = np.zeros((H, H), dtype=bool)
        region[:, :4] = True  # refine the lower part of the channel
        spec = RefinementSpec((H, H), [region], bc=bc)
        sim = Simulation(spec, "D2Q9", "bgk", viscosity=nu)
        sim.run(steps)
        return sim

    def test_steady_linear_profile_across_interface(self):
        H, uw = 12, 0.05
        sim = self.make(H=H, uw=uw)
        for lv in range(2):
            _, u = sim.macroscopics(lv)
            centers = (sim.positions(lv) + 0.5) * 2.0 ** (-lv)
            exact = couette_profile(centers[:, 1], float(H), uw)
            assert np.abs(u[0] - exact).max() / uw < 0.05

    def test_transverse_velocity_negligible(self):
        sim = self.make()
        for lv in range(2):
            _, u = sim.macroscopics(lv)
            assert np.abs(u[1]).max() < 0.002


class TestConservation:
    def test_single_level_mass_exact(self):
        bc = DomainBC({"y+": FaceBC("moving", velocity=(0.05, 0.0))})
        spec = RefinementSpec((16, 16), bc=bc)
        sim = Simulation(spec, "D2Q9", "bgk", viscosity=0.05)
        m0 = sim.engine.total_mass()
        sim.run(50)
        assert sim.engine.total_mass() == pytest.approx(m0, rel=1e-12)

    def test_multi_level_mass_drift_small(self):
        bc = DomainBC({"y+": FaceBC("moving", velocity=(0.05, 0.0))})
        spec = RefinementSpec((16, 16), wall_refinement((16, 16), 2, [3.0]), bc=bc)
        sim = Simulation(spec, "D2Q9", "bgk", viscosity=0.05)
        m0 = sim.engine.total_mass()
        sim.run(50)
        drift = abs(sim.engine.total_mass() - m0) / m0
        assert drift < 1e-4  # homogeneous redistribution: small, bounded

    def test_periodic_multi_level_mass_drift_small(self):
        region = np.zeros((16, 16), dtype=bool)
        region[5:11, 5:11] = True
        spec = RefinementSpec((16, 16), [region], bc=PERIODIC_2D)
        sim = Simulation(spec, "D2Q9", "bgk", viscosity=0.05)
        sim.initialize(u=lambda c: taylor_green_2d(c, 0.0, 0.05, 0.02, (16, 16)))
        m0 = sim.engine.total_mass()
        sim.run(50)
        assert abs(sim.engine.total_mass() - m0) / m0 < 1e-4


class TestStability:
    def test_cavity_stays_stable_and_bounded(self):
        bc = DomainBC({"y+": FaceBC("moving", velocity=(0.08, 0.0))})
        spec = RefinementSpec((16, 16), wall_refinement((16, 16), 2, [3.0]), bc=bc)
        sim = Simulation(spec, "D2Q9", "bgk", viscosity=0.02)
        sim.run(150)
        assert sim.is_stable()
        assert sim.max_velocity() < 0.2  # bounded by the lid speed scale

    def test_kbc_stable_at_low_viscosity_3d(self):
        from repro.bench.workloads import sphere_tunnel
        wl = sphere_tunnel(scale=0.125)
        sim = Simulation(wl.spec, wl.lattice, wl.collision, viscosity=wl.viscosity)
        sim.run(10)
        assert sim.is_stable()

"""Adaptive mesh refinement (the paper's Section-VII future work)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.amr import legalize_regions, regrid, vorticity_indicator
from repro.core.simulation import Simulation
from repro.grid.multigrid import DomainBC, FaceBC, RefinementSpec, build_multigrid
from repro.core.lattice import D2Q9
from repro.validation.analytic import taylor_green_2d

PERIODIC = DomainBC({f: FaceBC("periodic") for f in ("x-", "x+", "y-", "y+")})


class TestLegalize:
    def test_covers_indicator(self):
        desired = np.zeros((64, 64), dtype=bool)
        desired[20:30, 34:40] = True
        regions = legalize_regions(desired, num_levels=2)
        covered = np.repeat(np.repeat(regions[0], 2, 0), 2, 1)
        assert (covered & desired).sum() == desired.sum()

    def test_three_levels_build(self):
        desired = np.zeros((64, 64), dtype=bool)
        desired[24:36, 24:36] = True
        regions = legalize_regions(desired, num_levels=3)
        spec = RefinementSpec((16, 16), regions)
        mg = build_multigrid(spec, D2Q9)  # must not raise
        assert mg.num_levels == 3

    def test_empty_indicator_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            legalize_regions(np.zeros((8, 8), dtype=bool), 2)

    def test_single_level_rejected(self):
        with pytest.raises(ValueError):
            legalize_regions(np.ones((8, 8), dtype=bool), 1)

    @given(st.integers(0, 47), st.integers(0, 47), st.integers(1, 16),
           st.integers(1, 16))
    @settings(max_examples=25, deadline=None)
    def test_random_indicator_always_legal(self, x, y, w, h):
        # any rectangular indicator anywhere must produce a spec that
        # passes every build_multigrid constraint
        desired = np.zeros((64, 64), dtype=bool)
        desired[x:min(x + w, 64), y:min(y + h, 64)] = True
        regions = legalize_regions(desired, num_levels=3,
                                   periodic=[True, True])
        spec = RefinementSpec((16, 16), regions, bc=PERIODIC)
        build_multigrid(spec, D2Q9)  # must not raise


class TestVorticityIndicator:
    def make_sim(self):
        region = np.zeros((32, 32), dtype=bool)
        region[4:12, 4:12] = True
        spec = RefinementSpec((32, 32), [region], bc=PERIODIC)
        sim = Simulation(spec, "D2Q9", "bgk", viscosity=0.02)
        sim.initialize(u=lambda c: taylor_green_2d(c, 0.0, 0.02, 0.03, (32, 32)))
        sim.run(3)
        return sim

    def test_flags_vortex_cores(self):
        sim = self.make_sim()
        ind = vorticity_indicator(sim, fraction=0.5)
        assert ind.shape == (64, 64)
        assert 0 < ind.sum() < ind.size

    def test_fraction_monotone(self):
        sim = self.make_sim()
        loose = vorticity_indicator(sim, fraction=0.2).sum()
        tight = vorticity_indicator(sim, fraction=0.8).sum()
        assert tight <= loose

    def test_fraction_validated(self):
        sim = self.make_sim()
        with pytest.raises(ValueError):
            vorticity_indicator(sim, fraction=0.0)

    def test_rest_flow_flags_nothing(self):
        region = np.zeros((16, 16), dtype=bool)
        region[4:10, 4:10] = True
        spec = RefinementSpec((16, 16), [region], bc=PERIODIC)
        sim = Simulation(spec, "D2Q9", "bgk", viscosity=0.05)
        assert not vorticity_indicator(sim).any()


class TestRegrid:
    def make_sim(self):
        region = np.zeros((32, 32), dtype=bool)
        region[4:12, 4:12] = True
        spec = RefinementSpec((32, 32), [region], bc=PERIODIC)
        sim = Simulation(spec, "D2Q9", "bgk", viscosity=0.02)
        sim.initialize(u=lambda c: taylor_green_2d(c, 0.0, 0.02, 0.03, (32, 32)))
        sim.run(5)
        return sim

    def test_moves_refinement(self):
        sim = self.make_sim()
        desired = np.zeros((64, 64), dtype=bool)
        desired[40:52, 40:52] = True
        new = regrid(sim, desired_finest=desired)
        pos = new.positions(1)
        assert pos.size > 0
        # the new fine region sits in the requested corner (+ clearance)
        assert pos.min() >= 30

    def test_conserves_mass(self):
        sim = self.make_sim()
        desired = np.zeros((64, 64), dtype=bool)
        desired[40:52, 40:52] = True
        new = regrid(sim, desired_finest=desired)
        assert new.engine.total_mass() == pytest.approx(sim.engine.total_mass(),
                                                        rel=1e-10)

    def test_preserves_velocity_field(self):
        sim = self.make_sim()
        desired = np.zeros((64, 64), dtype=bool)
        desired[8:24, 8:24] = True
        new = regrid(sim, desired_finest=desired)
        from repro.io.sampling import composite_fields
        _, u_old = composite_fields(sim)
        _, u_new = composite_fields(new)
        scale = np.abs(np.nan_to_num(u_old)).max()
        diff = np.abs(np.nan_to_num(u_new) - np.nan_to_num(u_old)).max()
        assert diff / scale < 0.35  # restriction + block constants only

    def test_keeps_settings(self):
        sim = self.make_sim()
        new = regrid(sim, regions=sim.mgrid.spec.refine_regions)
        assert new.stepper.config is sim.stepper.config
        assert new.engine.omega == sim.engine.omega
        assert new.steps_done == sim.steps_done
        assert new.engine.dtype == sim.engine.dtype

    def test_continues_stably(self):
        sim = self.make_sim()
        new = regrid(sim, desired_finest=vorticity_indicator(sim, 0.4))
        new.run(5)
        assert new.is_stable()

    def test_argument_validation(self):
        sim = self.make_sim()
        with pytest.raises(ValueError):
            regrid(sim)
        with pytest.raises(ValueError):
            regrid(sim, desired_finest=np.ones((64, 64), dtype=bool),
                   regions=[np.ones((32, 32), dtype=bool)])

"""Deferred threaded wave execution: determinism, fallback and errors."""

import os
import signal
import time

import numpy as np
import pytest

from repro.analysis.cli import ALL_CONFIGS
from repro.bench.harness import compare_serial_threaded
from repro.bench.workloads import lid_cavity
from repro.core.fusion import FUSED_FULL, MODIFIED_BASELINE
from repro.core.simulation import Simulation
from repro.io.checkpoint import restore_checkpoint, save_checkpoint
from repro.neon.executor import WaveExecutor, WaveRaceError, default_workers
from repro.neon.runtime import FieldRef, Runtime

WORKLOADS = {
    "2d": lambda: lid_cavity(base=(16, 16), num_levels=2, lattice="D2Q9"),
    "3d": lambda: lid_cavity(base=(10, 10, 10), num_levels=3, lattice="D3Q19"),
}


def full_state(sim):
    return [(b.f.copy(), b.fstar.copy(), b.ghost_acc.copy())
            for b in sim.engine.levels]


def states_equal(a, b):
    return all(np.array_equal(x, y)
               for la, lb in zip(a, b) for x, y in zip(la, lb))


def run_cavity(wl, config, threaded, steps=3, **kwargs):
    sim = Simulation(wl.spec, wl.lattice, wl.collision,
                     viscosity=wl.viscosity, config=config,
                     threaded=threaded, **kwargs)
    with sim:
        sim.run(steps)
        return full_state(sim)


class TestDeterminism:
    """Threaded replay must be bit-identical to serial execution."""

    @pytest.mark.parametrize("dim", sorted(WORKLOADS))
    @pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: c.name)
    def test_bit_identical_to_serial(self, dim, config):
        wl = WORKLOADS[dim]()
        serial = run_cavity(wl, config, threaded=False)
        threaded = run_cavity(wl, config, threaded=True)
        assert states_equal(serial, threaded)

    def test_debug_gate_races_each_new_shape_once(self):
        wl = WORKLOADS["2d"]()
        sim = Simulation(wl.spec, wl.lattice, wl.collision,
                         viscosity=wl.viscosity, threaded=True,
                         executor_debug=True)
        with sim:
            sim.run(3)
            ex = sim.executor
            stats = list(ex.stats)
        gates = [s for s in stats if s["mode"] == "debug-gate"]
        threaded = [s for s in stats if s["mode"] == "threaded"]
        # The steady-state step shape is verified once, then replayed
        # concurrently; at least one later flush must be threaded.
        assert gates and threaded
        assert len(ex._verified) == len(gates)

    def test_checkpoint_restore_threaded_continue(self, tmp_path):
        wl = WORKLOADS["3d"]()
        path = str(tmp_path / "ck.npz")

        def fresh(threaded):
            return Simulation(wl.spec, wl.lattice, wl.collision,
                              viscosity=wl.viscosity, threaded=threaded)

        a = fresh(False)
        a.run(2)
        save_checkpoint(a, path)
        a.run(2)
        reference = full_state(a)

        b = fresh(True)
        with b:
            restore_checkpoint(b, path)
            assert b.steps_done == 2
            b.run(2)
            assert states_equal(reference, full_state(b))


class TestDeferredRuntime:
    def record_kernel(self, rt, name, fn, reads=(), writes=()):
        rt.launch(name, 0, n_cells=4, bytes_read=0, bytes_written=32,
                  reads=reads, writes=writes, fn=fn)

    def test_bodies_deferred_until_marker(self):
        rt = Runtime()
        rt.executor_install(WaveExecutor(max_workers=2, debug=False))
        hits = []
        self.record_kernel(rt, "A", lambda: hits.append("A"),
                           writes=(FieldRef("a", 0),))
        self.record_kernel(rt, "B", lambda: hits.append("B"),
                           writes=(FieldRef("b", 0),))
        assert hits == []
        assert rt.launches() == 2  # records appear immediately
        rt.step_marker()
        assert sorted(hits) == ["A", "B"]
        rt.executor_install(None)

    def test_executor_removal_drains_serially(self):
        rt = Runtime()
        rt.executor_install(WaveExecutor(max_workers=2, debug=False))
        hits = []
        self.record_kernel(rt, "A", lambda: hits.append("A"))
        rt.executor_install(None)  # flushes under the previous mode
        assert hits == ["A"]

    def test_capture_takes_precedence_over_deferred(self):
        rt = Runtime()
        rt.executor_install(WaveExecutor(max_workers=2, debug=False))
        rt.capture_start()
        hits = []
        self.record_kernel(rt, "A", lambda: hits.append("A"))
        assert hits == ["A"]  # eager serial fallback while capturing
        rt.capture_stop()
        rt.executor_install(None)

    def test_error_truncates_trace_and_attaches_span(self):
        rt = Runtime()
        rt.executor_install(WaveExecutor(max_workers=2, debug=False))
        self.record_kernel(rt, "ok", lambda: None,
                           writes=(FieldRef("a", 0),))

        def boom():
            raise RuntimeError("kernel exploded")

        # same field => later wave, so "ok" has already run when it fails
        self.record_kernel(rt, "bad", boom, reads=(FieldRef("a", 0),),
                           writes=(FieldRef("b", 0),))
        with pytest.raises(RuntimeError, match="kernel exploded") as err:
            rt.step_marker()
        span = err.value.kernel_span
        assert span["name"] == "bad" and span["index"] == 1
        # the failed kernel's record is gone; the executed one remains
        assert [r.name for r in rt.records] == ["ok"]
        rt.executor_install(None)

    def test_race_gate_rejects_misdeclared_overlap(self):
        rt = Runtime()
        rt.executor_install(WaveExecutor(max_workers=2, debug=True))
        shared = FieldRef("x", 0)

        def write_shared():
            if rt.tracer is not None:
                rt.tracer.write(shared, 0, 4, 32)

        # Both kernels *declare* disjoint fields (same wave) but actually
        # write the same rows of one field — the gate must refuse.
        self.record_kernel(rt, "A", write_shared, writes=(FieldRef("a", 0),))
        self.record_kernel(rt, "B", write_shared, writes=(FieldRef("b", 0),))
        with pytest.raises(WaveRaceError) as err:
            rt.step_marker()
        assert err.value.races
        rt.executor_install(None)

    def test_default_workers_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_THREAD_WORKERS", "5")
        assert default_workers() == 5
        monkeypatch.delenv("REPRO_THREAD_WORKERS")
        assert default_workers() >= 2


class TestForkSafety:
    """A live pool inherited across ``fork`` must be replaced, not reused.

    Only the forking thread survives ``fork``: the child's copy of the
    parent's ``ThreadPoolExecutor`` lists worker threads that do not
    exist, so a submit there queues futures nothing will ever complete.
    Pre-fix, the child's first flush hung forever on ``fut.result()``.
    """

    @pytest.mark.skipif(not hasattr(os, "fork"), reason="requires fork()")
    def test_fork_then_flush_does_not_hang(self):
        import threading

        rt = Runtime()
        ex = WaveExecutor(max_workers=2, debug=False)
        rt.executor_install(ex)
        # The two bodies rendezvous, forcing the pool to its full two
        # worker threads (a fast body can otherwise finish before the
        # second submit, leaving a one-thread pool whose child copy could
        # still grow a live thread and mask the bug).
        both = threading.Barrier(2)
        rt.launch("A", 0, n_cells=4, bytes_read=0, bytes_written=32,
                  writes=(FieldRef("a", 0),), fn=lambda: both.wait(timeout=10))
        rt.launch("B", 0, n_cells=4, bytes_read=0, bytes_written=32,
                  writes=(FieldRef("b", 0),), fn=lambda: both.wait(timeout=10))
        rt.step_marker()
        assert len(ex._pool._threads) == 2  # noqa: SLF001 - the bug's setup
        time.sleep(0.2)  # let both workers go idle before forking
        pid = os.fork()
        if pid == 0:  # child: flush a fresh two-kernel wave, then report
            try:
                signal.alarm(20)  # hang guard — pre-fix this fires
                rt.launch("C", 0, n_cells=4, bytes_read=0, bytes_written=32,
                          writes=(FieldRef("c", 0),), fn=lambda: None)
                rt.launch("D", 0, n_cells=4, bytes_read=0, bytes_written=32,
                          writes=(FieldRef("d", 0),), fn=lambda: None)
                rt.step_marker()
                ex.shutdown()  # must not join the parent's threads either
                os._exit(0)
            except BaseException:
                os._exit(2)
        deadline = time.monotonic() + 30
        status = None
        while time.monotonic() < deadline:
            done, status = os.waitpid(pid, os.WNOHANG)
            if done:
                break
            time.sleep(0.05)
        else:
            os.kill(pid, signal.SIGKILL)
            os.waitpid(pid, 0)
            pytest.fail("forked child hung flushing the inherited pool")
        assert os.waitstatus_to_exitcode(status) == 0
        rt.executor_install(None)
        ex.shutdown()


class TestSimulationIntegration:
    def make(self, threaded, **kwargs):
        wl = WORKLOADS["2d"]()
        kwargs.setdefault("config", FUSED_FULL)
        return Simulation(wl.spec, wl.lattice, wl.collision,
                          viscosity=wl.viscosity, threaded=threaded, **kwargs)

    def test_env_knob_enables_executor(self, monkeypatch):
        monkeypatch.setenv("REPRO_THREADED", "1")
        with self.make(threaded=None) as sim:
            assert sim.executor is not None
        monkeypatch.setenv("REPRO_THREADED", "0")
        with self.make(threaded=None) as sim:
            assert sim.executor is None

    def test_context_manager_shuts_down_pool(self):
        # The unfused baseline has multi-kernel waves, so the pool is
        # actually exercised (singleton waves run inline).
        sim = self.make(threaded=True, executor_debug=False,
                        config=MODIFIED_BASELINE)
        with sim:
            sim.run(2)
            ex = sim.runtime.executor
            assert ex._pool is not None  # pool actually spun up
        assert sim.executor is None
        assert ex._pool is None

    def test_trace_identical_to_serial(self):
        serial = self.make(threaded=False)
        serial.run(2)
        with self.make(threaded=True) as threaded:
            threaded.run(2)
            assert threaded.runtime.markers == serial.runtime.markers
            assert threaded.runtime.records == serial.runtime.records

    def test_metrics_report_executor_stats(self):
        from repro.obs.metrics import run_metrics
        with self.make(threaded=True, executor_debug=False) as sim:
            sim.run(3)
            reg = run_metrics(sim)
        assert reg["wave_exec_ms"].count > 0
        assert reg["executor_workers"].value >= 1
        assert reg["executor_threaded_flushes"].value > 0
        assert 0.0 < reg["thread_utilisation"].value <= 1.0

    def test_spans_record_threaded_timings(self):
        with self.make(threaded=True, executor_debug=False) as sim:
            rec = sim.enable_tracing()
            sim.run(2)
            sim.close()  # final flush before reading spans
            assert len(rec.kernel_spans) == len(sim.runtime.records)
            occ = rec.observed_occupancy()
            assert occ["max_concurrent"] >= 1


class TestMidStepFailure:
    """A kernel failure mid-step must not leave the trace unbalanced."""

    def make(self, threaded):
        wl = WORKLOADS["2d"]()
        sim = Simulation(wl.spec, wl.lattice, wl.collision,
                         viscosity=wl.viscosity, config=MODIFIED_BASELINE,
                         threaded=threaded)
        # The failure is injected by monkeypatching an engine kernel
        # body, which only the re-dispatching interpreted backend can
        # observe (compiled plans bind bodies at compile time); the
        # compiled-path error contract is covered in test_backend.py.
        from repro.backend import InterpretedBackend
        sim.stepper.backend = InterpretedBackend()
        return sim

    @pytest.mark.parametrize("threaded", [False, True])
    def test_partial_step_closed_on_error(self, threaded):
        from repro.obs.trace import chrome_trace, validate_trace

        with self.make(threaded) as sim:
            rec = sim.enable_tracing()
            sim.run(1)
            clean = len(sim.runtime.last_step())

            def boom(lv, *args, **kwargs):
                raise RuntimeError("mid-step failure")

            sim.engine._coalesce_values = boom
            with pytest.raises(RuntimeError, match="mid-step failure"):
                sim.run(1)
            rt = sim.runtime
            # The partial step was closed: no record dangles beyond the
            # last marker, so per-step queries can't leak it onwards.
            assert rt.markers and rt.markers[-1] == len(rt.records)
            assert len(rt.records) > rt.markers[-2]  # partial work kept
            # steps_done not bumped for the failed step
            assert sim.steps_done == 1
            # The exported trace stays valid: 1 kernel slice per record.
            problems = validate_trace(chrome_trace(rec), len(rt.records))
            assert problems == []

            del sim.engine._coalesce_values  # un-patch
            sim.run(1)
            assert len(sim.runtime.last_step()) == clean


class TestBenchComparison:
    def test_compare_serial_threaded_reports(self):
        wl = WORKLOADS["2d"]()
        cmp = compare_serial_threaded(wl, FUSED_FULL, steps=2, warmup=1)
        assert cmp["bit_identical"]
        assert cmp["serial_seconds"] > 0 and cmp["threaded_seconds"] > 0
        assert cmp["workers"] >= 1 and cmp["cpu_count"] >= 1
        assert cmp["threaded_flushes"] == 2

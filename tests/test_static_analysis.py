"""Static kernel-stream analyzer: access sets, legality proofs, lint,
certificates (repro.analysis.static / lint / certificate)."""

from dataclasses import replace

import pytest

from repro.analysis.capture import AccessTracer, READ, WRITE
from repro.analysis.certificate import (CERTIFICATE_VERSION, build_certificate,
                                        load_certificate, stream_digest,
                                        validate_certificate,
                                        write_certificate)
from repro.analysis.cli import small_workloads, static_check
from repro.analysis.lint import LintFinding, build_lifetimes, lint_stream
from repro.analysis.static import (AccessModel, StaticAccess, check_contraction,
                                   plan_stream, prove_fusion_legality,
                                   seeded_illegal_proof, superset_findings,
                                   swap_declaration, verify_static)
from repro.bench.workloads import lid_cavity
from repro.core.fusion import (ABLATION_CONFIGS, FUSE_SO, FUSED_FULL,
                               MODIFIED_BASELINE, ORIGINAL_BASELINE)
from repro.core.simulation import Simulation
from repro.gpu.device import get_device
from repro.gpu.memory import (BufferLifetime, arena_assign, arena_check,
                              arena_peak_bytes)
from repro.neon.runtime import FieldRef, KernelRecord, Runtime

WL2D = dict(base=(20, 20), num_levels=2, lattice="D2Q9")
WL3D = dict(base=(12, 12, 12), num_levels=3, lattice="D3Q19")
ALL = (ORIGINAL_BASELINE,) + ABLATION_CONFIGS


def rec(name, level=0, reads=(), writes=(), n_cells=4, bytes_read=0,
        bytes_written=0, atomic_bytes=0):
    return KernelRecord(name=name, level=level, n_cells=n_cells,
                        bytes_read=bytes_read, bytes_written=bytes_written,
                        reads=tuple(reads), writes=tuple(writes),
                        atomic_bytes=atomic_bytes)


def captured_run(config, wl_kwargs, steps=2):
    wl = lid_cavity(**wl_kwargs)
    rt = Runtime()
    rt.capture_start()
    sim = Simulation.from_config(wl.spec, wl.sim_config(fusion=config),
                                 runtime=rt)
    sim.run(steps)
    return list(rt.records), rt.capture_stop()


# ---------------------------------------------------------------- plan streams

class TestPlanStream:
    @pytest.mark.parametrize("config", ALL, ids=lambda c: c.name)
    def test_plan_equals_executing_stream_2d(self, config):
        records, _ = plan_stream(config, WL2D, steps=2)
        executed, _ = captured_run(config, WL2D, steps=2)
        assert records == executed

    def test_plan_equals_executing_stream_3d(self):
        records, _ = plan_stream(FUSED_FULL, WL3D, steps=2)
        executed, _ = captured_run(FUSED_FULL, WL3D, steps=2)
        assert records == executed

    def test_plan_only_runs_no_bodies(self):
        wl = lid_cavity(**WL2D)
        rt = Runtime()
        sim = Simulation.from_config(
            wl.spec, wl.sim_config(fusion=MODIFIED_BASELINE), runtime=rt)
        before = [lv.f.copy() for lv in sim.engine.levels]
        rt.plan_start()
        sim.run(2)
        rt.plan_stop()
        for lv, f0 in zip(sim.engine.levels, before):
            assert (lv.f == f0).all()


# ------------------------------------------------- static access verification

class TestStaticAccessSets:
    @pytest.mark.parametrize("config", ALL, ids=lambda c: c.name)
    def test_static_sets_reproduce_declarations_2d(self, config):
        records, model = plan_stream(config, WL2D, steps=2)
        assert verify_static(records, model) == []

    @pytest.mark.parametrize("config", (ORIGINAL_BASELINE, MODIFIED_BASELINE,
                                        FUSED_FULL), ids=lambda c: c.name)
    def test_static_sets_reproduce_declarations_3d(self, config):
        records, model = plan_stream(config, WL3D, steps=2)
        assert verify_static(records, model) == []

    def test_broken_declaration_is_caught(self):
        # hand-edit one kernel's declared byte count: the symbolic sets
        # no longer reproduce the declaration
        records, model = plan_stream(MODIFIED_BASELINE, WL2D, steps=1)
        bad = list(records)
        bad[0] = replace(bad[0], bytes_read=bad[0].bytes_read + 64)
        findings = verify_static(bad, model)
        assert findings and any("bytes" in f.check for f in findings)

    def test_swapped_field_declaration_is_caught(self):
        records, model = plan_stream(MODIFIED_BASELINE, WL2D, steps=1)
        bad = swap_declaration(list(records), "C")
        findings = verify_static(bad, model)
        checks = {f.check for f in findings}
        assert "undeclared-read" in checks or "undeclared-write" in checks

    def test_unknown_kernel_reported_not_raised(self):
        records, model = plan_stream(MODIFIED_BASELINE, WL2D, steps=1)
        bad = [replace(records[0], name="XYZ")]
        findings = verify_static(bad, model)
        assert [f.check for f in findings] == ["unmodeled-kernel"]

    @pytest.mark.parametrize("config", ALL, ids=lambda c: c.name)
    def test_static_superset_of_dynamic_2d(self, config):
        records, model = plan_stream(config, WL2D, steps=2)
        executed, captured = captured_run(config, WL2D, steps=2)
        assert records == executed
        assert superset_findings(records, captured,
                                 model.access_map(records)) == []

    def test_static_superset_of_dynamic_3d(self):
        records, model = plan_stream(FUSED_FULL, WL3D, steps=2)
        _, captured = captured_run(FUSED_FULL, WL3D, steps=2)
        assert superset_findings(records, captured,
                                 model.access_map(records)) == []

    def test_superset_violation_detected(self):
        records, model = plan_stream(MODIFIED_BASELINE, WL2D, steps=1)
        static_map = model.access_map(records)
        # fabricate an observation outside every static interval
        fake = StaticAccess(FieldRef("f", 0), READ, 10**6, 10**6 + 4, 32)
        problems = superset_findings(records, {0: [fake]}, static_map)
        assert len(problems) == 1 and "not covered" in problems[0]


# ------------------------------------------------------------ legality proofs

class TestFusionLegality:
    @pytest.mark.parametrize("config", ALL, ids=lambda c: c.name)
    def test_all_configs_legal_2d(self, config):
        proof = prove_fusion_legality(config, WL2D, steps=2)
        assert proof.legal, proof.counterexamples
        if config.original_layout:
            assert proof.verdict == "baseline"
        else:
            assert proof.verdict == "legal"
            assert proof.pairs_checked > 0

    def test_case_fusion_legal_3d(self):
        proof = prove_fusion_legality(FUSED_FULL, WL3D, steps=2)
        assert proof.verdict == "legal"
        assert proof.pairs_checked > 0

    @pytest.mark.parametrize("wl", (WL2D, WL3D), ids=("2d", "3d"))
    def test_seeded_illegal_fusion_rejected(self, wl):
        proof = seeded_illegal_proof(wl, steps=2)
        assert proof.verdict == "illegal"
        cex = proof.counterexamples[0]
        # the counterexample names the conflicting access pair
        assert cex.kernel_i.startswith("E") and cex.kernel_j.startswith("C")
        assert cex.hazard == "raw"
        assert cex.field.startswith("f@")
        assert cex.interval_i[1] > cex.interval_i[0]

    def test_tampered_stream_via_swap_declaration(self):
        proof = prove_fusion_legality(
            FUSE_SO, WL2D, steps=2,
            tamper=lambda recs: swap_declaration(recs, "E"))
        assert proof.verdict == "illegal"

    def test_missing_primitive_is_structural_counterexample(self):
        records, model = plan_stream(MODIFIED_BASELINE, WL2D, steps=1)
        base_map = model.access_map(records)
        _, _, cex = check_contraction(records, base_map, records[:-1],
                                      model.decompose)
        assert cex and cex[0].reason == "structure"
        assert "no image" in cex[0].detail

    def test_reordered_conflicting_pair_rejected(self):
        records, model = plan_stream(MODIFIED_BASELINE, WL2D, steps=1)
        base_map = model.access_map(records)
        # swap the first C with the S of the same substep: C writes fstar
        # that S reads, so the contraction must reject the reversal
        idx_c = next(i for i, r in enumerate(records) if r.name == "C")
        idx_s = next(i for i, r in enumerate(records)
                     if r.name.startswith("S") and r.level == records[idx_c].level)
        shuffled = list(records)
        shuffled[idx_c], shuffled[idx_s] = shuffled[idx_s], shuffled[idx_c]
        _, _, cex = check_contraction(records, base_map, shuffled,
                                      model.decompose)
        assert cex


# -------------------------------------------------------------------- linting

class TestLint:
    @pytest.mark.parametrize("config", ALL, ids=lambda c: c.name)
    def test_real_streams_have_no_lint_errors(self, config):
        records, model = plan_stream(config, WL2D, steps=2)
        assert lint_stream(records, model).errors == ()

    def test_aa_double_buffer_opportunity_with_bytes_saved(self):
        records, model = plan_stream(MODIFIED_BASELINE, WL2D, steps=2)
        report = lint_stream(records, model)
        aa = [f for f in report.opportunities if f.check == "aa-double-buffer"]
        assert aa, "baseline must expose the AA-pattern rewrite"
        assert all(f.bytes_saved > 0 and f.capacity_saved > 0 for f in aa)
        assert all(f.time_saved_us > 0 for f in aa)

    def test_case_drops_finest_fstar(self):
        records, model = plan_stream(FUSED_FULL, WL2D, steps=2)
        report = lint_stream(records, model)
        drop = [f for f in report.opportunities
                if f.check == "droppable-buffer"]
        finest = len(model.engine.levels) - 1
        assert any(f.field == f"fstar@{finest}" for f in drop)

    def test_synthetic_dead_store_flagged(self):
        records, model = plan_stream(MODIFIED_BASELINE, WL2D, steps=1)
        # duplicate the first Collision: its fstar write is immediately
        # overwritten by the copy with nothing reading in between
        idx = next(i for i, r in enumerate(records) if r.name == "C")
        bad = records[:idx + 1] + [records[idx]] + records[idx + 1:]
        report = lint_stream(bad, model)
        dead = [f for f in report.errors if f.check == "dead-store"]
        assert dead and dead[0].index == idx
        assert dead[0].bytes_saved > 0

    def test_synthetic_redundant_load_flagged(self):
        records, model = plan_stream(MODIFIED_BASELINE, WL2D, steps=1)
        report = lint_stream(records, model)
        red = [f for f in report.opportunities if f.check == "redundant-load"]
        # consecutive substeps re-read f/fstar rows without intervening
        # writes somewhere in any real stream
        assert red
        assert all(f.bytes_saved > 0 for f in red)

    def test_injected_arena_violation_flagged(self):
        records, model = plan_stream(MODIFIED_BASELINE, WL2D, steps=1)
        lts = [BufferLifetime("x", 64, 0, 5, slab=0),
               BufferLifetime("y", 64, 3, 8, slab=0)]
        report = lint_stream(records, model, lifetimes=lts)
        alias = [f for f in report.errors if f.check == "arena-alias"]
        assert alias and "x" in alias[0].detail and "y" in alias[0].detail


# ------------------------------------------------------------ arena lifetimes

class TestArena:
    def test_disjoint_lifetimes_share_a_slab(self):
        lts = arena_assign([BufferLifetime("a", 100, 0, 3),
                            BufferLifetime("b", 80, 5, 9)])
        assert lts[0].slab == lts[1].slab
        assert arena_check(lts) == []
        assert arena_peak_bytes(lts) == 100

    def test_overlapping_lifetimes_get_distinct_slabs(self):
        lts = arena_assign([BufferLifetime("a", 100, 0, 6),
                            BufferLifetime("b", 80, 5, 9)])
        assert lts[0].slab != lts[1].slab
        assert arena_peak_bytes(lts) == 180

    def test_undersized_slab_not_reused(self):
        # the freed slab is too small for the second buffer
        lts = arena_assign([BufferLifetime("small", 10, 0, 1),
                            BufferLifetime("big", 100, 3, 5)])
        assert lts[0].slab != lts[1].slab

    def test_arena_check_catches_bad_assignment(self):
        bad = [BufferLifetime("a", 10, 0, 5, slab=0),
               BufferLifetime("b", 10, 2, 7, slab=0)]
        problems = arena_check(bad)
        assert problems and "aliases" in problems[0]

    def test_unassigned_lifetime_reported(self):
        assert arena_check([BufferLifetime("a", 10, 0, 5)]) \
            == ["buffer a has no slab assignment"]

    def test_lifetimes_merge_fghost_into_fstar(self):
        records, model = plan_stream(ORIGINAL_BASELINE, WL2D, steps=1)
        flat = [(i, a) for i, accs in model.access_map(records).items()
                for a in accs if a.field is not None and a.hi > a.lo]
        names = {lt.name for lt in build_lifetimes(model, flat)}
        assert not any(n.startswith("fghost") for n in names)


# --------------------------------------------------------------- certificates

class TestCertificates:
    def _cert(self, config=MODIFIED_BASELINE, wl=WL2D, steps=1):
        records, model = plan_stream(config, wl, steps=steps)
        proof = prove_fusion_legality(config, wl, steps=steps)
        lint = lint_stream(records, model)
        cert = build_certificate(config.name, "wl", records, model, proof,
                                 lint, steps)
        return records, cert

    def test_roundtrip_and_validate(self, tmp_path):
        records, cert = self._cert()
        path = write_certificate(cert, tmp_path / "certs" / "c.json")
        loaded = load_certificate(path)
        assert loaded == cert
        assert validate_certificate(loaded, records) == []
        assert loaded["version"] == CERTIFICATE_VERSION
        assert loaded["legality"]["verdict"] == "legal"
        assert len(loaded["kernels"]) == len(records)
        assert all(k["accesses"] for k in loaded["kernels"])

    def test_digest_binds_stream(self):
        records, cert = self._cert()
        tampered = list(records)
        tampered[0] = replace(tampered[0], n_cells=tampered[0].n_cells + 1)
        problems = validate_certificate(cert, tampered)
        assert problems and "digest" in problems[0]
        assert stream_digest(records) != stream_digest(tampered)

    def test_unknown_version_rejected(self):
        _, cert = self._cert()
        cert = dict(cert, version=99)
        problems = validate_certificate(cert)
        assert problems == [f"unknown certificate version 99 "
                            f"(expected {CERTIFICATE_VERSION})"]

    def test_bad_wave_schedule_rejected(self):
        records, cert = self._cert()
        bad = dict(cert, wave_schedule=[[0]])
        assert any("permutation" in p for p in validate_certificate(bad))
        reversed_waves = [list(w) for w in reversed(cert["wave_schedule"])]
        bad = dict(cert, wave_schedule=reversed_waves)
        assert any("breaks" in p for p in validate_certificate(bad))

    def test_illegal_verdict_needs_counterexample(self):
        _, cert = self._cert()
        bad = dict(cert, legality=dict(cert["legality"], verdict="illegal",
                                       counterexamples=[]))
        assert any("without a counterexample" in p
                   for p in validate_certificate(bad))


# ------------------------------------------------------------------- CLI gate

class TestStaticCLI:
    def test_static_check_clean_on_case(self, tmp_path):
        rep = static_check(FUSED_FULL, "cavity2d-2lvl", steps=2,
                           cert_dir=str(tmp_path))
        assert not rep["stream_mismatch"]
        assert rep["findings"] == [] and rep["superset"] == []
        assert rep["verdict"] == "legal"
        assert rep["lint_errors"] == []
        assert rep["certificate_problems"] == []
        assert rep["aa_bytes_saved"] > 0
        assert load_certificate(rep["certificate"])["config"] == "ours-4f"

    def test_cli_static_single_config(self, capsys):
        from repro.analysis.cli import main
        code = main(["--static", "--config", "baseline-4b",
                     "--workload", "cavity2d-2lvl"])
        out = capsys.readouterr().out
        assert code == 0
        assert "verdict=legal" in out
        assert "seeded illegal fusion rejected" in out

"""BGK and KBC collision operators (paper Eqs. 3-8 and Section II)."""

import numpy as np
import pytest

from repro.core.collision import (BGK, KBC, density, equilibrium, macroscopics,
                                  make_collision, pressure, velocity)
from repro.core.lattice import CS2, D2Q9, D3Q19, D3Q27

RNG = np.random.default_rng(42)


def random_state(lat, n=64, amp=0.02):
    """A physically plausible random population set (near equilibrium)."""
    rho = 1.0 + amp * RNG.standard_normal(n)
    u = amp * RNG.standard_normal((lat.d, n))
    feq = equilibrium(lat, rho, u)
    noise = 0.02 * amp * RNG.standard_normal(feq.shape) * feq
    return feq + noise


@pytest.mark.parametrize("lat", [D2Q9, D3Q19, D3Q27], ids=lambda l: l.name)
class TestEquilibrium:
    def test_zeroth_moment(self, lat):
        rho = 1.0 + 0.05 * RNG.standard_normal(50)
        u = 0.03 * RNG.standard_normal((lat.d, 50))
        feq = equilibrium(lat, rho, u)
        assert np.allclose(feq.sum(axis=0), rho, rtol=1e-13)

    def test_first_moment(self, lat):
        rho = 1.0 + 0.05 * RNG.standard_normal(50)
        u = 0.03 * RNG.standard_normal((lat.d, 50))
        feq = equilibrium(lat, rho, u)
        mom = lat.ef.T @ feq
        assert np.allclose(mom, rho * u, atol=1e-13)

    def test_second_moment(self, lat):
        # Pi_eq = rho (c_s^2 I + u u) — exact for the quadratic equilibrium
        rho = np.array([1.1])
        u = 0.04 * np.ones((lat.d, 1))
        feq = equilibrium(lat, rho, u)
        pi = np.einsum("qa,qb,qn->ab", lat.ef, lat.ef, feq)
        expected = rho[0] * (CS2 * np.eye(lat.d) + np.outer(u[:, 0], u[:, 0]))
        assert np.allclose(pi, expected, atol=1e-12)

    def test_rest_equilibrium_is_weights(self, lat):
        feq = equilibrium(lat, np.ones(3), np.zeros((lat.d, 3)))
        assert np.allclose(feq, lat.w[:, None])

    def test_out_parameter(self, lat):
        rho = np.ones(10)
        u = 0.01 * np.ones((lat.d, 10))
        buf = np.empty((lat.q, 10))
        res = equilibrium(lat, rho, u, out=buf)
        assert res is buf
        assert np.allclose(buf, equilibrium(lat, rho, u))

    def test_positive_at_moderate_velocity(self, lat):
        u = np.full((lat.d, 1), 0.1 / np.sqrt(lat.d))
        feq = equilibrium(lat, np.ones(1), u)
        assert (feq > 0).all()


@pytest.mark.parametrize("lat", [D2Q9, D3Q19, D3Q27], ids=lambda l: l.name)
class TestMacroscopics:
    def test_density_velocity(self, lat):
        f = random_state(lat)
        rho, u = macroscopics(lat, f)
        assert np.allclose(rho, f.sum(axis=0))
        assert np.allclose(u * rho, lat.ef.T @ f)

    def test_pressure_is_cs2_rho(self, lat):
        f = random_state(lat)
        assert np.allclose(pressure(lat, f), CS2 * density(lat, f))

    def test_velocity_with_precomputed_rho(self, lat):
        f = random_state(lat)
        rho = density(lat, f)
        assert np.allclose(velocity(lat, f), velocity(lat, f, rho))


@pytest.mark.parametrize("lat", [D2Q9, D3Q19, D3Q27], ids=lambda l: l.name)
@pytest.mark.parametrize("model", ["bgk", "kbc"])
class TestCollisionCommon:
    def make(self, model, lat):
        if model == "kbc" and lat is D3Q19:
            pytest.skip("KBC requires D3Q27 in 3D (paper Section II)")
        return make_collision(model, lat)

    def test_conserves_density(self, model, lat):
        op = self.make(model, lat)
        f = random_state(lat)
        out = op.collide(f, 1.3)
        assert np.allclose(out.sum(axis=0), f.sum(axis=0), rtol=1e-12)

    def test_conserves_momentum(self, model, lat):
        op = self.make(model, lat)
        f = random_state(lat)
        out = op.collide(f, 1.3)
        assert np.allclose(lat.ef.T @ out, lat.ef.T @ f, atol=1e-13)

    def test_equilibrium_fixed_point(self, model, lat):
        op = self.make(model, lat)
        rho = 1.0 + 0.02 * RNG.standard_normal(20)
        u = 0.02 * RNG.standard_normal((lat.d, 20))
        feq = equilibrium(lat, rho, u)
        out = op.collide(feq, 1.7)
        assert np.allclose(out, feq, atol=1e-12)

    def test_drives_toward_equilibrium(self, model, lat):
        op = self.make(model, lat)
        f = random_state(lat, amp=0.05)
        rho, u = macroscopics(lat, f)
        feq = equilibrium(lat, rho, u)
        out = op.collide(f, 1.0)
        assert np.linalg.norm(out - feq) < np.linalg.norm(f - feq)


class TestBGK:
    def test_omega_one_projects_to_equilibrium(self):
        lat = D3Q19
        f = random_state(lat)
        rho, u = macroscopics(lat, f)
        out = BGK(lat).collide(f, 1.0)
        assert np.allclose(out, equilibrium(lat, rho, u), atol=1e-13)

    def test_explicit_relaxation_formula(self):
        lat = D2Q9
        f = random_state(lat)
        rho, u = macroscopics(lat, f)
        feq = equilibrium(lat, rho, u)
        omega = 1.4
        out = BGK(lat).collide(f, omega)
        assert np.allclose(out, f - omega * (f - feq), atol=1e-13)

    def test_out_buffer(self):
        lat = D2Q9
        f = random_state(lat)
        buf = np.empty_like(f)
        res = BGK(lat).collide(f, 1.2, out=buf)
        assert res is buf


class TestKBC:
    def test_requires_d3q27_in_3d(self):
        with pytest.raises(ValueError):
            KBC(D3Q19)

    def test_shear_part_is_traceless_in_moments(self):
        # The shear decomposition conserves mass and momentum by itself.
        lat = D3Q27
        op = KBC(lat)
        f = random_state(lat)
        rho, u = macroscopics(lat, f)
        fneq = f - equilibrium(lat, rho, u)
        ds = op._delta_s(fneq)
        assert np.allclose(ds.sum(axis=0), 0.0, atol=1e-13)
        assert np.allclose(lat.ef.T @ ds, 0.0, atol=1e-13)

    def test_shear_part_carries_offdiagonal_stress(self):
        lat = D3Q27
        op = KBC(lat)
        f = random_state(lat, amp=0.05)
        rho, u = macroscopics(lat, f)
        fneq = f - equilibrium(lat, rho, u)
        ds = op._delta_s(fneq)
        pi_f = np.einsum("qa,qb,qn->abn", lat.ef, lat.ef, fneq)
        pi_s = np.einsum("qa,qb,qn->abn", lat.ef, lat.ef, ds)
        assert np.allclose(pi_s[0, 1], pi_f[0, 1], atol=1e-12)
        assert np.allclose(pi_s[0, 2], pi_f[0, 2], atol=1e-12)
        assert np.allclose(pi_s[1, 2], pi_f[1, 2], atol=1e-12)

    def test_reduces_to_bgk_when_gamma_two(self):
        # With gamma = 2 the KBC update is exactly BGK; at equilibrium the
        # stabiliser is irrelevant, slightly off equilibrium it stays ~2.
        lat = D3Q27
        rho = np.ones(8)
        u = 0.01 * RNG.standard_normal((3, 8))
        feq = equilibrium(lat, rho, u)
        out_kbc = KBC(lat).collide(feq, 1.5)
        out_bgk = BGK(lat).collide(feq, 1.5)
        assert np.allclose(out_kbc, out_bgk, atol=1e-12)

    def test_2d_variant_runs(self):
        lat = D2Q9
        f = random_state(lat)
        out = KBC(lat).collide(f, 1.5)
        assert np.allclose(out.sum(axis=0), f.sum(axis=0), rtol=1e-12)

    def test_high_omega_stability(self):
        # KBC's raison d'etre: stable where BGK would need omega ~ 2.
        lat = D3Q27
        f = random_state(lat, amp=0.08)
        out = KBC(lat).collide(f, 1.995)
        assert np.isfinite(out).all()


def test_make_collision_errors():
    with pytest.raises(KeyError):
        make_collision("mrt", D2Q9)


def test_make_collision_names():
    assert make_collision("bgk", D2Q9).name == "BGK"
    assert make_collision("kbc", D3Q27).name == "KBC"

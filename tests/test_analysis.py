"""Access capture, declaration verifier, race detector (repro.analysis)."""

import json

import numpy as np
import pytest

from repro.analysis.capture import ATOMIC, META, READ, WRITE, Access, AccessTracer
from repro.analysis.cli import ALL_CONFIGS, lint_config, main, small_workloads
from repro.analysis.races import access_conflict, detect_races
from repro.analysis.verify import verify_record, verify_trace
from repro.bench.workloads import lid_cavity
from repro.core.engine import Engine
from repro.core.fusion import FUSED_FULL, MODIFIED_BASELINE
from repro.core.simulation import Simulation
from repro.core.stepper import NonUniformStepper
from repro.grid.multigrid import build_multigrid
from repro.core.lattice import get_lattice
from repro.neon.graph import build_dependency_graph, schedule_waves
from repro.neon.runtime import FieldRef, KernelRecord, Runtime

F0, FS0 = FieldRef("f", 0), FieldRef("fstar", 0)
A0, B0 = FieldRef("a", 0), FieldRef("b", 0)


def rec(name, level=0, reads=(), writes=(), bytes_read=0, bytes_written=0,
        atomic_bytes=0):
    return KernelRecord(name=name, level=level, n_cells=4,
                        bytes_read=bytes_read, bytes_written=bytes_written,
                        reads=tuple(reads), writes=tuple(writes),
                        atomic_bytes=atomic_bytes)


def traced_sim(config, base=(20, 20), num_levels=2, lattice="D2Q9", steps=2):
    wl = lid_cavity(base=base, num_levels=num_levels, lattice=lattice)
    rt = Runtime()
    rt.capture_start()
    sim = Simulation(wl.spec, wl.lattice, wl.collision, viscosity=wl.viscosity,
                     config=config, runtime=rt)
    sim.run(steps)
    return sim, rt


class TestAccessTracer:
    def test_launch_bracketing(self):
        t = AccessTracer()
        assert not t.active
        t.begin_launch()
        t.read(F0, 0, 4, 32)
        t.write(FS0, 0, 4, 32)
        accs = t.end_launch()
        assert [a.kind for a in accs] == [READ, WRITE]
        assert accs[0].lo == 0 and accs[0].hi == 4 and accs[0].nbytes == 32
        assert not t.active

    def test_recording_outside_launch_is_dropped(self):
        t = AccessTracer()
        t.read(F0, 0, 4, 32)  # no launch in flight
        t.begin_launch()
        assert t.end_launch() == []

    def test_suppressed_fields_invisible(self):
        t = AccessTracer()
        t.begin_launch()
        with t.suppress(FS0):
            t.write(FS0, 0, 4, 32)
            t.read(F0, 0, 4, 32)
        assert [a.field for a in t.end_launch()] == [F0]

    def test_nested_launch_rejected(self):
        t = AccessTracer()
        t.begin_launch()
        with pytest.raises(RuntimeError):
            t.begin_launch()

    def test_meta_has_no_field(self):
        t = AccessTracer()
        t.begin_launch()
        t.meta(128)
        (a,) = t.end_launch()
        assert a.kind == META and a.field is None and a.nbytes == 128


class TestRuntimeCapture:
    def test_capture_aligns_with_records(self):
        _, rt = traced_sim(MODIFIED_BASELINE)
        assert set(rt.captured) == set(range(len(rt.records)))
        assert all(rt.captured[i] for i in rt.captured), \
            "every engine kernel body must record at least one access"

    def test_capture_stop_freezes(self):
        sim, rt = traced_sim(MODIFIED_BASELINE)
        n = len(rt.records)
        rt.capture_stop()
        sim.run(1)
        assert len(rt.records) > n
        assert set(rt.captured) == set(range(n))

    def test_functional_result_unchanged_by_capture(self):
        wl = lid_cavity(base=(16, 16), num_levels=2, lattice="D2Q9")
        plain = Simulation(wl.spec, wl.lattice, wl.collision,
                           viscosity=wl.viscosity, config=FUSED_FULL)
        rt = Runtime()
        rt.capture_start()
        traced = Simulation(wl.spec, wl.lattice, wl.collision,
                            viscosity=wl.viscosity, config=FUSED_FULL,
                            runtime=rt)
        plain.run(3)
        traced.run(3)
        for lv in range(plain.num_levels):
            a, b = plain.engine.levels[lv], traced.engine.levels[lv]
            np.testing.assert_array_equal(a.f[:, :a.n_owned], b.f[:, :b.n_owned])

    def test_case_keeps_intermediate_in_registers(self):
        sim, rt = traced_sim(FUSED_FULL)
        finest = sim.num_levels - 1
        case_idx = [i for i, r in enumerate(rt.records) if r.name == "CASE"]
        assert case_idx, "FUSED_FULL must launch CASE kernels"
        for i in case_idx:
            fields = {a.field for a in rt.captured[i] if a.field is not None}
            assert FieldRef("fstar", finest) not in fields

    def test_accumulate_scatter_is_atomic(self):
        _, rt = traced_sim(FUSED_FULL)
        atomics = [a for accs in rt.captured.values() for a in accs
                   if a.kind == ATOMIC]
        assert atomics and all(a.field.name == "gacc" for a in atomics)


class TestVerifier:
    @pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: c.name)
    def test_all_declarations_sound_2d(self, config):
        _, rt = traced_sim(config)
        assert verify_trace(rt.records, rt.captured) == []

    def test_undeclared_read_flagged(self):
        r = rec("C", reads=(), writes=(FS0,), bytes_read=32, bytes_written=32)
        accs = [Access(F0, READ, 0, 4, 32), Access(FS0, WRITE, 0, 4, 32)]
        checks = {f.check for f in verify_record(0, r, accs)}
        assert checks == {"undeclared-read"}

    def test_internal_forwarding_needs_no_declaration(self):
        # CA-style kernel: re-reads its own freshly written output
        r = rec("CA", reads=(F0,), writes=(FS0,), bytes_read=32, bytes_written=32)
        accs = [Access(F0, READ, 0, 4, 32), Access(FS0, WRITE, 0, 4, 32),
                Access(FS0, READ, 0, 4, 0)]
        assert verify_record(0, r, accs) == []

    def test_over_declarations_flagged(self):
        r = rec("S", reads=(FS0, A0), writes=(F0, B0),
                bytes_read=32, bytes_written=32)
        accs = [Access(FS0, READ, 0, 4, 32), Access(F0, WRITE, 0, 4, 32)]
        checks = sorted(f.check for f in verify_record(0, r, accs))
        assert checks == ["over-declared-read", "over-declared-write"]

    def test_byte_mismatches_flagged(self):
        r = rec("A", reads=(FS0,), writes=(A0,), bytes_read=100,
                bytes_written=64, atomic_bytes=0)
        accs = [Access(FS0, READ, 0, 4, 32), Access(A0, ATOMIC, 0, 4, 64)]
        checks = {f.check for f in verify_record(0, r, accs)}
        assert checks == {"bytes-read-mismatch", "atomic-bytes-mismatch"}

    def test_uncaptured_record_flagged(self):
        r = rec("C", reads=(F0,), writes=(FS0,))
        findings = verify_trace([r], {})
        assert [f.check for f in findings] == ["uncaptured"]

    def test_misdeclared_engine_kernel_caught_end_to_end(self):
        """A kernel whose declaration drifts from its body is detected."""

        class MisdeclaredEngine(Engine):
            def op_collide(self, lv, fuse_accumulate=False):
                buf = self.levels[lv]
                Q, n = self.lat.q, buf.n_owned
                self.rt.launch(
                    "C", lv, n_cells=n,
                    bytes_read=Q * self.itemsize * n,
                    bytes_written=Q * self.itemsize * n,
                    reads=(FieldRef("f", lv),),
                    writes=(),  # forgot to declare the fstar output
                    fn=lambda: self._collide_into_fstar(lv))

        wl = lid_cavity(base=(16, 16), num_levels=2, lattice="D2Q9")
        mgrid = build_multigrid(wl.spec, get_lattice(wl.lattice))
        rt = Runtime()
        rt.capture_start()
        eng = MisdeclaredEngine(mgrid, wl.collision, 1.2, runtime=rt)
        eng.initialize()
        NonUniformStepper(eng, MODIFIED_BASELINE).step()
        findings = verify_trace(rt.records, rt.captured)
        bad = [f for f in findings if f.check == "undeclared-write"]
        assert bad and all("fstar" in f.field for f in bad)


class TestRaceDetector:
    def test_injected_same_wave_plain_write_conflict(self):
        # declared field sets are disjoint -> both kernels land in wave 0;
        # the bodies actually write overlapping rows of the same field.
        records = [rec("X", writes=(A0,)), rec("Y", writes=(B0,))]
        captured = {0: [Access(F0, WRITE, 0, 10, 80)],
                    1: [Access(F0, WRITE, 5, 15, 80)]}
        waves = schedule_waves(build_dependency_graph(records, reduce=False))
        assert waves == [[0, 1]]
        races = detect_races(records, captured, waves)
        assert len(races) == 1 and races[0].hazard == "waw"
        assert races[0].field == str(F0)

    def test_disjoint_rows_do_not_race(self):
        records = [rec("X", writes=(A0,)), rec("Y", writes=(B0,))]
        captured = {0: [Access(F0, WRITE, 0, 5, 40)],
                    1: [Access(F0, WRITE, 5, 10, 40)]}
        waves = [[0, 1]]
        assert detect_races(records, captured, waves) == []

    def test_atomic_atomic_commutes(self):
        captured = {0: [Access(A0, ATOMIC, 0, 10, 80)],
                    1: [Access(A0, ATOMIC, 0, 10, 80)]}
        records = [rec("X"), rec("Y")]
        assert detect_races(records, captured, [[0, 1]]) == []

    def test_atomic_vs_plain_races(self):
        records = [rec("X"), rec("Y")]
        captured = {0: [Access(A0, ATOMIC, 0, 10, 80)],
                    1: [Access(A0, READ, 2, 4, 16)]}
        races = detect_races(records, captured, [[0, 1]])
        assert len(races) == 1 and races[0].hazard == "atomic-plain"

    def test_read_read_is_fine(self):
        records = [rec("X"), rec("Y")]
        captured = {0: [Access(A0, READ, 0, 10, 80)],
                    1: [Access(A0, READ, 0, 10, 80)]}
        assert detect_races(records, captured, [[0, 1]]) == []

    def test_conflict_matrix(self):
        w = Access(A0, WRITE, 0, 4, 32)
        r = Access(A0, READ, 0, 4, 32)
        a = Access(A0, ATOMIC, 0, 4, 32)
        assert access_conflict(w, w) == "waw"
        assert access_conflict(w, r) == "rw"
        assert access_conflict(a, r) == "atomic-plain"
        assert access_conflict(a, a) is None
        assert access_conflict(r, r) is None


class TestIntervalRefinedGraph:
    def test_disjoint_row_ranges_do_not_conflict(self):
        records = [rec("X", writes=(F0,)), rec("Y", writes=(F0,))]
        access_map = {0: [Access(F0, WRITE, 0, 5, 40)],
                      1: [Access(F0, WRITE, 5, 10, 40)]}
        g = build_dependency_graph(records, reduce=False, access_map=access_map)
        assert g.number_of_edges() == 0
        g_decl = build_dependency_graph(records, reduce=False)
        assert g_decl.number_of_edges() == 1  # declared view must serialise

    def test_overlapping_rows_keep_edge(self):
        records = [rec("X", writes=(F0,)), rec("Y", writes=(F0,))]
        access_map = {0: [Access(F0, WRITE, 0, 6, 48)],
                      1: [Access(F0, WRITE, 5, 10, 40)]}
        g = build_dependency_graph(records, reduce=False, access_map=access_map)
        assert g.has_edge(0, 1)

    def test_atomic_scatters_commute(self):
        records = [rec("X", writes=(A0,)), rec("Y", writes=(A0,))]
        access_map = {0: [Access(A0, ATOMIC, 0, 10, 80)],
                      1: [Access(A0, ATOMIC, 0, 10, 80)]}
        g = build_dependency_graph(records, reduce=False, access_map=access_map)
        assert g.number_of_edges() == 0

    def test_missing_capture_stays_conservative(self):
        records = [rec("X", writes=(F0,)), rec("Y", writes=(F0,))]
        g = build_dependency_graph(records, reduce=False,
                                   access_map={0: [Access(F0, WRITE, 0, 5, 40)]})
        assert g.has_edge(0, 1)

    def test_skipped_edge_keeps_older_writer_live(self):
        # k0 writes rows [0,10); k1 writes rows [10,20) (no WAW with k0);
        # k2 reads rows [0,5) -> must depend on k0 even though k1 wrote last.
        records = [rec("W1", writes=(F0,)), rec("W2", writes=(F0,)),
                   rec("R", reads=(F0,))]
        access_map = {0: [Access(F0, WRITE, 0, 10, 80)],
                      1: [Access(F0, WRITE, 10, 20, 80)],
                      2: [Access(F0, READ, 0, 5, 40)]}
        g = build_dependency_graph(records, reduce=False, access_map=access_map)
        assert g.has_edge(0, 2)
        assert not g.has_edge(1, 2)
        assert not g.has_edge(0, 1)

    def test_refined_trace_stays_schedulable(self):
        _, rt = traced_sim(FUSED_FULL)
        g = build_dependency_graph(rt.records, reduce=False,
                                   access_map=rt.captured)
        waves = schedule_waves(g)
        assert detect_races(rt.records, rt.captured, waves) == []


class TestCLI:
    def test_lint_config_report_shape(self):
        rep = lint_config(MODIFIED_BASELINE, "cavity2d-2lvl", steps=1)
        assert rep["findings"] == [] and rep["races"] == []
        assert rep["kernels"] > 0 and rep["declared_waves"] > 0
        assert rep["stable"]

    def test_main_single_config_ok(self, capsys):
        assert main(["--config", "ours-4f", "--workload", "cavity2d-2lvl"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "0 problem(s)" in out

    def test_main_json_output(self, capsys):
        code = main(["--config", "baseline-4b", "--workload", "cavity2d-2lvl",
                     "--json"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["total_problems"] == 0
        assert data["runs"][0]["config"] == "baseline-4b"

    def test_workloads_cover_2d_and_3d(self):
        wls = small_workloads()
        dims = {len(kw["base"]) for kw in wls.values()}
        levels = {kw["num_levels"] for kw in wls.values()}
        assert dims == {2, 3} and {2, 3} <= levels

"""Field sampling, composite resampling, probes and snapshots."""

import numpy as np
import pytest

from repro.core.simulation import Simulation
from repro.grid.geometry import Sphere, shell_refinement, voxelize, wall_refinement
from repro.grid.multigrid import DomainBC, FaceBC, RefinementSpec
from repro.io.sampling import (centerline_profile, composite_fields, level_dense,
                               load_snapshot, plane_slice, save_snapshot)
from repro.io.tables import format_table


@pytest.fixture(scope="module")
def sim():
    bc = DomainBC({"y+": FaceBC("moving", velocity=(0.06, 0.0))})
    spec = RefinementSpec((16, 16), wall_refinement((16, 16), 2, [3.0]), bc=bc)
    s = Simulation(spec, "D2Q9", "bgk", viscosity=0.05)
    s.run(30)
    return s


class TestLevelDense:
    def test_nan_outside_owned(self, sim):
        rho0, u0 = level_dense(sim, 0)
        assert rho0.shape == (16, 16)
        assert u0.shape == (2, 16, 16)
        # the coarse level owns the centre, not the wall band
        assert np.isnan(rho0[0, 0])
        assert not np.isnan(rho0[8, 8])

    def test_values_match_macroscopics(self, sim):
        rho1, _ = level_dense(sim, 1)
        rho, _ = sim.macroscopics(1)
        pos = sim.positions(1)
        assert np.allclose(rho1[tuple(pos.T)], rho)


class TestComposite:
    def test_full_coverage(self, sim):
        rho, u = composite_fields(sim)
        assert rho.shape == (32, 32)
        assert not np.isnan(rho).any()
        assert not np.isnan(u).any()

    def test_coarse_cells_become_constant_blocks(self, sim):
        rho, _ = composite_fields(sim)
        # centre of the domain is coarse-owned: 2x2 fine blocks are constant
        block = rho[16:18, 16:18]
        assert np.ptp(block) == 0.0

    def test_solid_cells_remain_nan(self):
        sphere = Sphere((8.0, 8.0), 2.0)
        base = (16, 16)
        spec = RefinementSpec(base, shell_refinement(sphere, base, 2, [4.0]),
                              solid=voxelize(sphere, (32, 32), 1))
        s = Simulation(spec, "D2Q9", "bgk", viscosity=0.05)
        rho, _ = composite_fields(s)
        assert np.isnan(rho[16, 16])       # sphere centre
        assert not np.isnan(rho[2, 2])     # far-field fluid


class TestProbes:
    def test_centerline_profile_shape(self, sim):
        y, u = centerline_profile(sim, axis=1, component=0)
        assert y.shape == u.shape == (32,)
        assert y[0] == pytest.approx(0.5 / 32)
        assert y[-1] == pytest.approx(31.5 / 32)

    def test_lid_drives_positive_u_near_top(self, sim):
        y, u = centerline_profile(sim, axis=1, component=0)
        assert u[-1] > 0.0
        assert abs(u[0]) < u[-1]

    def test_plane_slice(self, sim):
        rho, speed = plane_slice(sim, axis=0, position=0.5)
        assert rho.shape == (32,)
        assert (speed >= 0).all()

    def test_plane_slice_clamps_position(self, sim):
        rho, _ = plane_slice(sim, axis=1, position=1.5)
        assert rho.shape == (32,)


class TestSnapshots:
    def test_roundtrip(self, sim, tmp_path):
        path = str(tmp_path / "snap.npz")
        save_snapshot(sim, path)
        data = load_snapshot(path)
        assert data["steps"] == sim.steps_done
        assert data["rho"].shape == (32, 32)
        assert data["u"].shape == (2, 32, 32)
        assert data["active_per_level"].tolist() == sim.mgrid.active_per_level()
        rho, _ = composite_fields(sim)
        assert np.allclose(data["rho"], rho)


class TestTables:
    def test_format_alignment(self):
        out = format_table(["name", "mlups"], [["ours", 1805.03], ["base", 1299.7]],
                           title="Table I")
        lines = out.splitlines()
        assert lines[0] == "Table I"
        assert "1805.03" in out and "1299.70" in out

    def test_empty_rows(self):
        out = format_table(["a"], [])
        assert "a" in out

    def test_floatfmt(self):
        out = format_table(["x"], [[1.23456]], floatfmt="{:.4f}")
        assert "1.2346" in out

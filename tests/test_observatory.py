"""Performance observatory: roofline join, drift sweep, bench history
regression gate, unified event log and the ``obs report`` CLI.

Covers the acceptance criteria of the observatory PR:

* the roofline/drift report runs on **all 7 fusion configs**, 2D and 3D;
* the regression detector flags a seeded 2x synthetic slowdown in a
  fixture history while passing a clean one;
* the report CLI degrades gracefully on an empty trace, a trace
  truncated mid-step by a failed kernel, and a restored-from-checkpoint
  run (no double-counting of pre-restore steps).
"""

import json
import os

import pytest

from repro.bench.harness import measure
from repro.bench.history import (LOWER_IS_BETTER, RegressionReport,
                                 append_record, build_record, config_digest,
                                 detect_regressions, history_path,
                                 load_history, record_from_bench,
                                 seed_synthetic_history)
from repro.bench.history import main as history_main
from repro.bench.workloads import lid_cavity
from repro.core.fusion import ABLATION_CONFIGS, FUSED_FULL, ORIGINAL_BASELINE
from repro.core.simulation import Simulation
from repro.gpu.device import A100_40GB
from repro.io.checkpoint import restore_checkpoint, save_checkpoint
from repro.obs import write_bench_json
from repro.obs.cli import main as obs_main
from repro.obs.log import EventLog, read_log, split_runs, validate_log
from repro.obs.report import (collect_report, render_html, render_text,
                              write_report)
from repro.obs.roofline import (DRIFT_WORKLOADS, drift_findings, drift_report,
                                kernel_rooflines, roofline_summary)
from repro.resilience import Fault, FaultInjector, InjectedKernelError

ALL_CONFIGS = (ORIGINAL_BASELINE,) + ABLATION_CONFIGS


def small_sim(config=FUSED_FULL):
    wl = lid_cavity(base=(16, 16), num_levels=2, lattice="D2Q9")
    return Simulation.from_config(wl.spec, wl.sim_config(fusion=config))


def traced_run(config=FUSED_FULL, steps=2):
    sim = small_sim(config)
    recorder = sim.enable_tracing()
    with sim:
        sim.run(steps)
    return sim, recorder


# -- roofline accounting -------------------------------------------------------

class TestRoofline:
    def test_join_covers_every_span(self):
        sim, rec = traced_run()
        joined = kernel_rooflines(rec)
        assert len(joined) == len(rec.kernel_spans) == len(sim.runtime.records)
        for k in joined:
            assert k.bytes_total > 0
            assert k.observed_us > 0
            assert k.predicted_us > 0
            assert k.achieved_bw == pytest.approx(
                k.bytes_total / k.observed_us)

    def test_summary_totals_and_fraction(self):
        _, rec = traced_run()
        s = roofline_summary(rec)
        assert s.kernels == len(rec.kernel_spans)
        assert s.bytes_total == sum(sp.record.bytes_total
                                    for sp in rec.kernel_spans)
        assert s.median_skew > 0
        # NumPy host is far below A100 sustained bandwidth.
        assert 0 < s.achieved_fraction < 1
        assert s.achieved_bw == pytest.approx(s.bytes_total / s.observed_us)
        # Family norm-skews are centred on the run median: some <= 1 <= some.
        norms = [f.norm_skew for f in s.families]
        assert min(norms) <= 1.0 <= max(norms)

    def test_per_step_bandwidth_partitions_the_trace(self):
        _, rec = traced_run(steps=3)
        s = roofline_summary(rec)
        assert len(s.steps) == 3
        assert sum(st.bytes_total for st in s.steps) == s.bytes_total

    def test_drift_findings_factor_validation(self):
        _, rec = traced_run()
        s = roofline_summary(rec)
        with pytest.raises(ValueError):
            drift_findings(s, factor=1.0)

    def test_drift_findings_flag_outliers_both_ways(self):
        _, rec = traced_run()
        s = roofline_summary(rec)
        # A tight factor with no noise floor must flag the extremes...
        tight = drift_findings(s, factor=1.01, min_observed_us=0.0)
        norms = [f.norm_skew for f in s.families]
        if any(n > 1.01 or n < 1 / 1.01 for n in norms):
            assert tight
        # ...and an absurdly loose factor must flag nothing.
        assert drift_findings(s, factor=1e9, min_observed_us=0.0) == []

    def test_min_observed_us_suppresses_timer_noise(self):
        _, rec = traced_run()
        s = roofline_summary(rec)
        assert drift_findings(s, factor=1.01, min_observed_us=1e12) == []


class TestDriftSweep:
    """Acceptance: roofline/drift runs on all 7 configs, 2D and 3D."""

    def test_sweep_covers_all_configs_2d_and_3d(self):
        dr = drift_report(steps=2)
        seen = {(e["workload"], e["config"]) for e in dr.entries}
        expected = {(wl, cfg.name) for wl in DRIFT_WORKLOADS
                    for cfg in ALL_CONFIGS}
        assert seen == expected
        assert len(dr.entries) == 2 * 7
        for e in dr.entries:
            s = e["summary"]
            assert s.kernels > 0 and s.bytes_total > 0
            assert s.observed_us > 0 and s.median_skew > 0
        # Findings (if any) refer to swept entries and serialize cleanly.
        for f in dr.findings:
            assert (f.workload, f.config) in seen
            assert f.norm_skew > f.factor or f.norm_skew < 1 / f.factor
        json.dumps(dr.as_dict())


# -- bench history + regression gate -------------------------------------------

class TestHistoryRecords:
    def test_build_record_provenance(self):
        rec = build_record("b", {"wall_seconds": 1.0}, sha="abc")
        assert rec["v"] == 1
        assert rec["git_sha"] == "abc"
        assert rec["host"]["id"]
        assert rec["config_digest"] == config_digest({"wall_seconds": 1.0})

    def test_config_digest_tracks_key_set_not_values(self):
        a = config_digest({"wall_seconds": 1.0, "wall_mlups": 2.0})
        b = config_digest({"wall_seconds": 9.0, "wall_mlups": 0.1})
        c = config_digest({"wall_seconds": 1.0})
        assert a == b
        assert a != c

    def test_record_from_bench_extracts_watched_leaves_only(self):
        payload = {"summary": {"wall_seconds": 1.5, "irrelevant": 3.0,
                               "nested": {"wall_mlups": 7.0}},
                   "steps": 5, "wall_seconds": 1.5}
        rec = record_from_bench("x", payload)
        assert rec["metrics"] == {"summary.nested.wall_mlups": 7.0,
                                  "summary.wall_seconds": 1.5,
                                  "wall_seconds": 1.5}

    def test_append_and_load_roundtrip_skips_torn_lines(self, tmp_path):
        p = str(tmp_path / "BENCH_HISTORY.jsonl")
        append_record(build_record("b", {"wall_seconds": 1.0}), p)
        with open(p, "a") as fh:
            fh.write('{"torn": \n')   # interrupted writer
        append_record(build_record("b", {"wall_seconds": 1.1}), p)
        recs = load_history(p)
        assert len(recs) == 2
        assert [r["metrics"]["wall_seconds"] for r in recs] == [1.0, 1.1]

    def test_write_bench_json_appends_history(self, tmp_path):
        out = str(tmp_path)
        write_bench_json("t", {"wall_seconds": 2.0}, out)
        write_bench_json("t", {"wall_seconds": 2.1}, out)
        hist = history_path(out)
        assert os.path.basename(hist) == "BENCH_HISTORY.jsonl"
        recs = load_history(hist)
        assert len(recs) == 2
        assert all(r["bench"] == "t" for r in recs)
        # The snapshot file is still written alongside.
        snap = json.load(open(os.path.join(out, "BENCH_T.json"))) \
            if os.path.exists(os.path.join(out, "BENCH_T.json")) \
            else json.load(open(os.path.join(out, "BENCH_t.json")))
        assert snap["wall_seconds"] == 2.1

    def test_append_is_one_unbuffered_o_append_write(self, tmp_path,
                                                     monkeypatch):
        # PR-9 regression: buffered text-mode appends left record
        # atomicity to the io stack's flushing whims; the contract is a
        # single os.write of the whole line on an O_APPEND fd.
        rec = build_record("b", {"wall_seconds": 1.0}, sha="abc")
        real_open, real_write = os.open, os.write
        opened_flags, writes = {}, []

        def spy_open(path, flags, *a, **k):
            fd = real_open(path, flags, *a, **k)
            opened_flags[fd] = flags
            return fd

        def spy_write(fd, data):
            writes.append((fd, bytes(data)))
            return real_write(fd, data)

        monkeypatch.setattr(os, "open", spy_open)
        monkeypatch.setattr(os, "write", spy_write)
        p = append_record(rec, str(tmp_path / "h.jsonl"))
        assert len(writes) == 1
        fd, data = writes[0]
        assert opened_flags[fd] & os.O_APPEND
        assert data.endswith(b"\n")
        assert json.loads(data)["bench"] == "b"
        assert load_history(p)[0]["git_sha"] == "abc"

    def test_append_locks_lines_beyond_pipe_buf(self, tmp_path, monkeypatch):
        import repro.bench.history as hist
        if hist.fcntl is None:
            pytest.skip("no fcntl on this platform")
        locked = []
        real_flock = hist.fcntl.flock
        monkeypatch.setattr(
            hist.fcntl, "flock",
            lambda fd, op: (locked.append(op), real_flock(fd, op))[1])
        p = str(tmp_path / "h.jsonl")
        append_record(build_record("b", {"wall_seconds": 1.0}, sha="a"), p)
        assert locked == []  # short line: O_APPEND alone is atomic
        big = build_record("b", {"wall_seconds": 1.0}, sha="a",
                           labels={"blob": "x" * (2 * hist._PIPE_BUF)})
        append_record(big, p)
        assert locked == [hist.fcntl.LOCK_EX]
        assert len(load_history(p)) == 2

    @pytest.mark.skipif(not hasattr(os, "fork"), reason="requires fork()")
    def test_concurrent_appends_keep_records_whole(self, tmp_path):
        # Parallel CI legs and mp workers append to one trajectory; the
        # reader must only ever see whole records, even for lines far
        # beyond any stdio buffer size.
        p = str(tmp_path / "h.jsonl")
        n_proc, n_rec = 4, 12
        blob = "x" * 32768
        pids = []
        for w in range(n_proc):
            pid = os.fork()
            if pid == 0:
                try:
                    for i in range(n_rec):
                        append_record(build_record(
                            f"w{w}", {"wall_seconds": float(i + 1)},
                            labels={"blob": blob}, sha="f" * 8), p)
                    os._exit(0)
                except BaseException:
                    os._exit(1)
            pids.append(pid)
        assert all(os.waitpid(pid, 0)[1] == 0 for pid in pids)
        lines = open(p).read().splitlines()
        assert len(lines) == n_proc * n_rec
        for line in lines:
            assert json.loads(line)["labels"]["blob"] == blob
        assert len(load_history(p)) == n_proc * n_rec

    def test_bench_out_dir_defaults_to_repo_root(self, monkeypatch):
        from repro.bench.history import repo_root
        from repro.obs.metrics import bench_out_dir
        monkeypatch.delenv("BENCH_OUT_DIR", raising=False)
        assert bench_out_dir() == repo_root()
        assert os.path.exists(os.path.join(bench_out_dir(),
                                           "pyproject.toml"))
        monkeypatch.setenv("BENCH_OUT_DIR", "/tmp/elsewhere")
        assert bench_out_dir() == "/tmp/elsewhere"


class TestRegressionDetector:
    """Acceptance: seeded 2x slowdown flagged; clean history passes."""

    def test_clean_history_passes(self, tmp_path):
        p = seed_synthetic_history(str(tmp_path / "h.jsonl"), runs=6)
        report = detect_regressions(load_history(p))
        assert isinstance(report, RegressionReport)
        assert report.series_checked > 0
        assert report.findings == ()

    def test_seeded_2x_slowdown_is_flagged(self, tmp_path):
        p = seed_synthetic_history(str(tmp_path / "h.jsonl"), runs=6,
                                   slowdown=2.0)
        report = detect_regressions(load_history(p))
        flagged = {f.metric for f in report.findings}
        assert "wall_seconds" in flagged
        f = next(f for f in report.findings if f.metric == "wall_seconds")
        assert f.ratio == pytest.approx(2.0, rel=0.1)
        assert f.severity == "warn"       # < fail_ratio: informational

    def test_6x_slowdown_escalates_to_fail(self, tmp_path):
        p = seed_synthetic_history(str(tmp_path / "h.jsonl"), runs=6,
                                   slowdown=6.0)
        report = detect_regressions(load_history(p))
        f = next(f for f in report.findings if f.metric == "wall_seconds")
        assert f.severity == "fail"
        assert report.failures

    def test_improvement_is_not_flagged(self, tmp_path):
        p = seed_synthetic_history(str(tmp_path / "h.jsonl"), runs=6,
                                   slowdown=0.5)   # got *faster*
        report = detect_regressions(load_history(p))
        assert not any(f.metric == "wall_seconds" for f in report.findings)

    def test_short_history_is_not_judged(self, tmp_path):
        p = seed_synthetic_history(str(tmp_path / "h.jsonl"), runs=3,
                                   slowdown=10.0)
        report = detect_regressions(load_history(p))
        assert report.findings == ()

    def test_direction_table_covers_bench_summary_keys(self):
        m = measure(lid_cavity(base=(16, 16), num_levels=2, lattice="D2Q9"),
                    FUSED_FULL, steps=1, warmup=0)
        s = m.summary()
        assert s["arena_peak_bytes"] > 0
        watched = {k for k in s if k in LOWER_IS_BETTER}
        assert {"wall_seconds", "wall_mlups", "sim_mlups",
                "kernels_per_step", "bytes_per_step", "atomic_bytes",
                "arena_peak_bytes"} <= watched


class TestHistoryCLI:
    def test_check_clean_exits_zero(self, tmp_path, capsys):
        p = seed_synthetic_history(str(tmp_path / "h.jsonl"), runs=6)
        assert history_main(["--path", p, "--check"]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_check_2x_warns_but_exits_zero(self, tmp_path, capsys):
        p = seed_synthetic_history(str(tmp_path / "h.jsonl"), runs=6,
                                   slowdown=2.0)
        assert history_main(["--path", p, "--check"]) == 0
        assert "warn: synthetic:wall_seconds" in capsys.readouterr().out

    def test_check_2x_strict_exits_one(self, tmp_path):
        p = seed_synthetic_history(str(tmp_path / "h.jsonl"), runs=6,
                                   slowdown=2.0)
        assert history_main(["--path", p, "--check", "--strict"]) == 1

    def test_check_6x_fails(self, tmp_path, capsys):
        p = seed_synthetic_history(str(tmp_path / "h.jsonl"), runs=6,
                                   slowdown=6.0)
        assert history_main(["--path", p, "--check"]) == 1
        assert "fail: synthetic:wall_seconds" in capsys.readouterr().out

    def test_show_and_json_report(self, tmp_path, capsys):
        p = seed_synthetic_history(str(tmp_path / "h.jsonl"), runs=6,
                                   slowdown=2.0)
        jpath = str(tmp_path / "report.json")
        assert history_main(["--path", p, "--check", "--show", "--tail", "2",
                             "--json", jpath]) == 0
        out = capsys.readouterr().out
        assert "6 record(s)" in out
        rep = json.load(open(jpath))
        assert rep["records"] == 6
        assert any(f["metric"] == "wall_seconds" for f in rep["findings"])

    def test_missing_history_is_empty_not_an_error(self, tmp_path):
        assert history_main(["--path", str(tmp_path / "nope.jsonl"),
                             "--check"]) == 0


# -- unified event log ---------------------------------------------------------

class TestEventLog:
    def test_roundtrip_and_validate(self, tmp_path):
        sim, rec = traced_run()
        log = EventLog(run_id="r1", tenant="t0", workload="cavity")
        log.emit("meta", purpose="test")
        log.ingest_spans(rec)
        from repro.obs.metrics import run_metrics
        log.ingest_metrics(run_metrics(sim, recorder=rec))
        p = str(tmp_path / "events.jsonl")
        log.write(p)
        lines = read_log(p)
        assert len(lines) == len(log)
        assert validate_log(lines) == []
        kinds = {ln["kind"] for ln in lines}
        assert {"meta", "kernel", "step", "metric"} <= kinds
        for ln in lines:
            assert ln["run"]["id"] == "r1"
            assert ln["run"]["tenant"] == "t0"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            EventLog(run_id="x").emit("bogus")

    def test_seq_strictly_increasing_per_run(self, tmp_path):
        log = EventLog(run_id="a")
        for _ in range(5):
            log.note("tick")
        lines = log.lines
        assert [ln["seq"] for ln in lines] == sorted(
            {ln["seq"] for ln in lines})
        assert validate_log(lines) == []

    def test_split_runs_on_shared_sink(self, tmp_path):
        p = str(tmp_path / "events.jsonl")
        a, b = EventLog(run_id="a"), EventLog(run_id="b", tenant="t1")
        a.note("from a")
        b.note("from b")
        b.note("again")
        a.write(p)
        b.write(p)                      # append: multi-tenant shared sink
        lines = read_log(p)
        runs = split_runs(lines)
        assert set(runs) == {"a", "b"}
        assert len(runs["a"]) == 1 and len(runs["b"]) == 2
        assert validate_log(lines) == []

    def test_validate_flags_corruption(self):
        log = EventLog(run_id="a")
        log.note("fine")
        lines = log.lines
        bad = [dict(lines[0], v=99)]
        assert validate_log(bad)
        bad = [dict(lines[0], kind="nonsense")]
        assert validate_log(bad)


# -- report CLI edge cases -----------------------------------------------------

class TestReportEdgeCases:
    def test_empty_trace_renders(self):
        sim = small_sim()
        rec = sim.enable_tracing()       # zero steps: nothing recorded
        rep = collect_report(sim, rec, workload="empty")
        assert rep.steps == 0
        assert rep.n_records == 0
        assert rep.roofline is None
        assert not rep.partial_step
        text = render_text(rep)
        assert "empty trace" in text
        html = render_html(rep)
        assert "Run report" in html
        json.dumps(rep.as_dict(), default=str)

    def test_empty_trace_via_cli(self, tmp_path, capsys):
        out = str(tmp_path)
        code = obs_main(["report", "--workload", "cavity2d-2lvl",
                         "--steps", "0", "--out", out])
        assert code == 0
        assert "empty trace" in capsys.readouterr().out
        assert os.path.exists(
            os.path.join(out, "report_cavity2d-2lvl_ours-4f.json"))

    def test_truncated_mid_step_by_failed_kernel(self):
        # Target the *last* kernel of a step: the failing launch's own
        # record is rolled back, so earlier launches of the same step
        # are what makes the trace end mid-step.
        probe = small_sim()
        with probe:
            probe.run(1)
        last = probe.runtime.last_step()[-1]
        assert len(probe.runtime.last_step()) > 1

        sim = small_sim()
        rec = sim.enable_tracing()
        inj = FaultInjector([Fault("kernel", step=2, kernel=last.name,
                                   level=last.level)])
        inj.install(sim)
        with sim:
            sim.run(1)
            with pytest.raises(InjectedKernelError):
                sim.run(1)
        # Stepper.step closed the aborted partial step with a marker but
        # did not count it as done: one more marker than completed steps,
        # and the partial step is shorter than a full one.
        assert sim.steps_done == 1
        assert len(sim.runtime.markers) == 2
        per = [b - a for a, b in zip([0] + sim.runtime.markers,
                                     sim.runtime.markers)]
        assert per[1] < per[0]
        rep = collect_report(sim, rec, workload="truncated",
                             status={"status": "failed",
                                     "payload": {"reason": "injected"}})
        assert rep.partial_step
        assert rep.steps == 1            # only the complete step counts
        text = render_text(rep)
        assert "trace truncated mid-step" in text
        assert "truncated mid-step" in render_html(rep)
        # Roofline still joins whatever spans exist.
        assert rep.roofline is not None
        assert rep.roofline.kernels == len(rec.kernel_spans)

    def test_restored_run_does_not_double_count(self, tmp_path):
        ck = str(tmp_path / "ck.npz")
        pre = small_sim()
        with pre:
            pre.run(2)
            save_checkpoint(pre, ck)

        sim = small_sim()
        rec = sim.enable_tracing()
        restore_checkpoint(sim, ck)      # rebases: steps_base = 2
        assert sim.steps_done == 2
        assert sim.runtime.steps_base == 2
        with sim:
            sim.run(2)
        rep = collect_report(sim, rec, workload="restored")
        # Only the 2 post-restore steps are traced; per-step metrics must
        # average over them, not over steps_done = 4.
        assert rep.steps == 2
        assert sim.steps_done == 4
        per_step = rep.metrics["kernels_per_step"]
        assert per_step == pytest.approx(rep.n_records / 2)
        assert not rep.partial_step
        render_text(rep)

    def test_report_cli_writes_artifacts_and_event_log(self, tmp_path,
                                                       capsys):
        out = str(tmp_path)
        code = obs_main(["report", "--workload", "cavity2d-2lvl",
                         "--steps", "2", "--out", out,
                         "--run-id", "r42", "--label", "tenant=t9"])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "roofline" in stdout
        assert "stream digest" in stdout
        rep = json.load(open(
            os.path.join(out, "report_cavity2d-2lvl_ours-4f.json")))
        assert rep["steps"] == 2
        assert rep["certificate"]["stream_digest"]
        assert rep["metrics"]["arena_peak_bytes"] > 0
        html = open(
            os.path.join(out, "report_cavity2d-2lvl_ours-4f.html")).read()
        assert "Roofline" in html
        lines = read_log(os.path.join(out,
                                      "events_cavity2d-2lvl_ours-4f.jsonl"))
        assert validate_log(lines) == []
        assert all(ln["run"]["id"] == "r42" for ln in lines)
        assert all(ln["run"]["tenant"] == "t9" for ln in lines)

    def test_report_written_files_roundtrip(self, tmp_path):
        sim, rec = traced_run()
        rep = collect_report(sim, rec, workload="w")
        paths = write_report(rep, "w_case", str(tmp_path))
        loaded = json.load(open(paths["json"]))
        assert loaded["workload"] == "w"
        assert loaded["roofline"]["kernels"] == rep.roofline.kernels
        assert open(paths["html"]).read().startswith("<!doctype html>")

"""The job server: admission, fairness, durability, chaos, bit-identity.

The acceptance bar this suite enforces (DESIGN.md §16):

* a flood of >= 20 concurrent mixed-size jobs across >= 3 tenants
  completes with **zero lost jobs** while workers are being killed and
  kernel faults injected, and every survivor's final state is
  bit-identical to an unfaulted serial run of the same job;
* dispatch order matches the weighted-fair virtual-time schedule
  replayed from the cost oracle's predictions;
* jobs survive a full server shutdown: a second server on the same root
  resumes them from their checkpoints, bit-identically;
* per-tenant telemetry is visible in the unified event log and the
  fleet summary.
"""

import asyncio
import os

import pytest

from repro.core.config import SimConfig
from repro.core.simulation import Simulation
from repro.bench.workloads import lid_cavity
from repro.obs.log import read_log, split_runs, validate_log
from repro.resilience.faults import Fault, FaultInjector
from repro.serve import (AdmissionError, JobServer, JobSpec, UnknownJobError,
                         WorkerKilled, predict_cost, state_digest)
from repro.serve.cli import build_flood, summary_from_disk
from repro.serve.oracle import active_cells_estimate


def cavity_job(base=10, levels=1, steps=4, tenant="default", priority=0,
               checkpoint_every=2, job_id="", labels=()):
    wl = lid_cavity(base=(base, base), num_levels=levels,
                    lattice="D2Q9", collision="bgk")
    cfg = SimConfig(lattice="D2Q9", collision="bgk",
                    viscosity=wl.viscosity, threaded=False)
    return JobSpec(spec=wl.spec, config=cfg, steps=steps, tenant=tenant,
                   priority=priority, checkpoint_every=checkpoint_every,
                   job_id=job_id, labels=labels)


def serial_digest(spec: JobSpec) -> str:
    """The unfaulted serial reference digest of a job."""
    sim = Simulation.from_config(spec.spec, spec.config)
    try:
        sim.run(spec.steps)
        return state_digest(sim)
    finally:
        sim.close()


class TestOracle:
    def test_active_cells_match_built_grid(self):
        # Obstacle-free domains: the mask arithmetic must be exact.
        for base, levels in [((12, 12), 2), ((10, 10), 1)]:
            wl = lid_cavity(base=base, num_levels=levels, lattice="D2Q9")
            sim = Simulation.from_config(
                wl.spec, SimConfig(lattice="D2Q9", viscosity=0.01,
                                   threaded=False))
            try:
                assert (active_cells_estimate(wl.spec)
                        == list(sim.mgrid.active_per_level()))
            finally:
                sim.close()

    def test_cost_linear_in_steps(self):
        job = cavity_job(steps=4)
        c1 = predict_cost(job.spec, job.config, 4)
        c2 = predict_cost(job.spec, job.config, 8)
        assert c2.total_us == pytest.approx(2 * c1.total_us)
        assert c2.per_step_us == pytest.approx(c1.per_step_us)

    def test_cost_monotone_in_domain(self):
        small, big = cavity_job(base=10), cavity_job(base=16, levels=2)
        assert (predict_cost(big.spec, big.config, 4).total_us
                > predict_cost(small.spec, small.config, 4).total_us)

    def test_unfused_baseline_costs_more(self):
        job = cavity_job(base=12, levels=2)
        fused = predict_cost(job.spec, job.config, 4)
        unfused = predict_cost(job.spec,
                               job.config.replace(fusion="baseline-4a"), 4)
        assert unfused.total_us > fused.total_us
        assert unfused.kernels_per_step > fused.kernels_per_step


class TestAdmission:
    def test_per_tenant_queue_cap(self, tmp_path):
        async def run():
            async with JobServer(str(tmp_path), workers=1,
                                 max_queued_per_tenant=2) as srv:
                await srv.submit(cavity_job(tenant="t0", job_id="a"))
                await srv.submit(cavity_job(tenant="t0", job_id="b"))
                with pytest.raises(AdmissionError):
                    await srv.submit(cavity_job(tenant="t0", job_id="c"))
                # other tenants are unaffected by t0's backlog
                await srv.submit(cavity_job(tenant="t1", job_id="d"))
                await srv.drain()
        asyncio.run(run())

    def test_fleet_cost_budget(self, tmp_path):
        async def run():
            probe = cavity_job(job_id="probe")
            async with JobServer(str(tmp_path), workers=1) as srv:
                cap = srv.predict(probe).total_us * 1.5
            async with JobServer(str(tmp_path) + "-b", workers=1,
                                 max_outstanding_cost_us=cap) as srv:
                await srv.submit(cavity_job(tenant="t0", job_id="a"))
                with pytest.raises(AdmissionError):
                    await srv.submit(cavity_job(tenant="t1", job_id="b"))
                await srv.drain()
        asyncio.run(run())

    def test_unknown_job(self, tmp_path):
        async def run():
            async with JobServer(str(tmp_path), workers=1) as srv:
                with pytest.raises(UnknownJobError):
                    srv.status("nope")
        asyncio.run(run())


class TestLifecycle:
    def test_single_job_done_bit_identical(self, tmp_path):
        spec = cavity_job(base=12, levels=2, steps=5, tenant="t0",
                          job_id="solo")

        async def run():
            async with JobServer(str(tmp_path), workers=1) as srv:
                jid = await srv.submit(spec)
                res = await srv.result(jid)
                st = srv.status(jid)
            return res, st

        res, st = asyncio.run(run())
        assert st.state == "done" and st.terminal
        assert res.state == "done"
        assert res.steps_done == 5
        assert res.checkpoints >= 3  # step-0 anchor + every cadence
        assert res.run is not None and res.run.steps == 5
        # $REPRO_BACKEND is an ambient override on SimConfig, so the
        # tiered CI legs legitimately report a different backend here.
        ambient = os.environ.get("REPRO_BACKEND", "interpreted")
        assert res.run.backend == ambient and res.run.mode == "serial"
        assert res.predicted_cost_us > 0
        assert res.state_digest == serial_digest(spec)

    def test_cancel_queued_job(self, tmp_path):
        async def run():
            async with JobServer(str(tmp_path), workers=1) as srv:
                first = await srv.submit(cavity_job(steps=6, job_id="first"))
                queued = await srv.submit(cavity_job(steps=6, job_id="second"))
                assert srv.cancel(queued)
                res = await srv.result(queued)
                assert res.state == "cancelled" and res.steps_done == 0
                done = await srv.result(first)
                assert done.state == "done"
                assert not srv.cancel(queued)  # already terminal
        asyncio.run(run())

    def test_cancel_running_job(self, tmp_path):
        async def run():
            async with JobServer(str(tmp_path), workers=1) as srv:
                jid = await srv.submit(cavity_job(steps=50, job_id="long",
                                                  checkpoint_every=1))
                while srv.status(jid).steps_done < 1:
                    await asyncio.sleep(0.005)
                assert srv.cancel(jid)
                res = await srv.result(jid)
                assert res.state == "cancelled"
                assert 1 <= res.steps_done < 50
        asyncio.run(run())

    def test_failed_job_reports_error(self, tmp_path):
        # A persistent kernel fault under an exhausted ladder: serial
        # mode with a never-disarming fault burns the retry budget and
        # the job must land in `failed` with the error recorded — not
        # lost, not hung.
        def faults(spec):
            return FaultInjector([Fault("kernel", step=1, times=-1)])

        async def run():
            async with JobServer(str(tmp_path), workers=1, faults=faults,
                                 max_restarts=0) as srv:
                jid = await srv.submit(cavity_job(steps=4, job_id="doomed"))
                res = await srv.result(jid)
                assert res.state == "failed"
                assert res.error and "injected" in res.error
        asyncio.run(run())


class TestFairness:
    """Dispatch order must equal the virtual-time replay of the oracle."""

    @staticmethod
    def replay_schedule(server, specs):
        """The weighted-fair order the scheduler must produce."""
        jobs = {s.job_id: s for s in specs}
        seq = {s.job_id: i for i, s in enumerate(specs)}
        cost = {s.job_id: server.predict(s).total_us for s in specs}
        queue = [s.job_id for s in specs]
        vtime: dict[str, float] = {}
        order = []
        while queue:
            tenants = {}
            for jid in queue:
                tenants.setdefault(jobs[jid].tenant, []).append(jid)
            live = [vtime[t] for t in tenants if t in vtime]
            floor = min(live) if live else 0.0
            for t in tenants:
                vtime.setdefault(t, floor)
            t = min(tenants, key=lambda t: (vtime[t], t))
            jid = min(tenants[t],
                      key=lambda j: (-jobs[j].priority, seq[j]))
            queue.remove(jid)
            vtime[t] += cost[jid] / float(
                server.tenant_weights.get(t, 1.0))
            order.append(jid)
        return order

    def test_started_order_matches_virtual_time_replay(self, tmp_path):
        # Mixed sizes and priorities across 3 tenants; tenant-a dumps
        # its whole (expensive) backlog first.  workers=1 makes the
        # dispatch order observable and deterministic.
        specs = (
            [cavity_job(base=16, levels=2, steps=8, tenant="a",
                        job_id=f"a{i}") for i in range(4)]
            + [cavity_job(base=10, steps=3, tenant="b", job_id=f"b{i}",
                          priority=(1 if i == 2 else 0)) for i in range(4)]
            + [cavity_job(base=12, levels=2, steps=4, tenant="c",
                          job_id=f"c{i}") for i in range(4)]
        )

        async def run():
            async with JobServer(str(tmp_path), workers=1) as srv:
                expected = self.replay_schedule(srv, specs)
                # submit() never suspends, so the dispatcher cannot
                # start picking before the whole flood is queued
                for s in specs:
                    await srv.submit(s)
                await srv.drain()
                return expected, list(srv.started_order)

        expected, actual = asyncio.run(run())
        assert actual == expected
        # Non-vacuous: fair share interleaves tenants instead of
        # serving tenant a's head-of-line backlog first.
        assert actual != [s.job_id for s in specs]
        assert {a[0] for a in actual[:3]} == {"a", "b", "c"}
        # b's priority-1 job overtakes its earlier same-tenant siblings.
        assert actual.index("b2") < actual.index("b1")


class TestChaosFlood:
    """>= 20 mixed jobs, >= 3 tenants, worker deaths + kernel faults."""

    def test_flood_survives_chaos_bit_identically(self, tmp_path):
        specs = build_flood(jobs=20, tenants=3, seed=7,
                            steps_min=3, steps_max=6)
        killed: set[str] = set()

        def chaos(job_id: str, step: int) -> None:
            # Deterministic: every job loses its worker exactly once,
            # at its first checkpoint boundary.
            if step > 0 and job_id not in killed:
                killed.add(job_id)
                raise WorkerKilled(f"chaos: {job_id} at step {step}")

        def faults(spec: JobSpec):
            # tenant-0 additionally takes a transient kernel fault.
            if spec.tenant == "tenant-0":
                return FaultInjector([Fault("kernel", step=1)])
            return None

        async def run():
            async with JobServer(str(tmp_path), workers=3, chaos=chaos,
                                 faults=faults, max_restarts=2) as srv:
                for s in specs:
                    await srv.submit(s)
                await srv.drain()
                results = {s.job_id: await srv.result(s.job_id)
                           for s in specs}
                return results, srv.fleet_summary()

        results, summary = asyncio.run(run())

        # Zero lost jobs: every submission reached `done`.
        assert len(results) == 20
        assert all(r.state == "done" for r in results.values())
        assert all(r.steps_done == s.steps for s, r in
                   zip(specs, [results[s.job_id] for s in specs]))
        # Every job lost a worker once and was requeued + resumed.
        assert len(killed) == 20
        assert all(r.restarts >= 1 for r in results.values())
        # Recovery is bit-identical to unfaulted serial runs.
        for s in specs:
            assert results[s.job_id].state_digest == serial_digest(s), s.job_id
        # The injected kernel faults were actually exercised and healed.
        t0_retries = sum(r.retries for r in results.values()
                         if r.tenant == "tenant-0")
        assert t0_retries > 0

        # Fleet summary: per-tenant accounting adds up.
        tenants = summary["tenants"]
        assert set(tenants) == {"tenant-0", "tenant-1", "tenant-2"}
        assert sum(t["done"] for t in tenants.values()) == 20
        assert sum(t["restarts"] for t in tenants.values()) >= 20
        assert summary["states"] == {"done": 20}

    def test_event_log_narrates_every_tenant(self, tmp_path):
        specs = build_flood(jobs=6, tenants=3, seed=2,
                            steps_min=2, steps_max=3)

        async def run():
            async with JobServer(str(tmp_path), workers=2) as srv:
                for s in specs:
                    await srv.submit(s)
                await srv.drain()

        asyncio.run(run())
        lines = read_log(os.path.join(str(tmp_path), "events.jsonl"))
        assert validate_log(lines) == []
        runs = split_runs(lines)
        assert set(runs) == {s.job_id for s in specs}
        for s in specs:
            job_lines = runs[s.job_id]
            assert all(l["run"]["tenant"] == s.tenant for l in job_lines)
            kinds = [l["kind"] for l in job_lines]
            assert kinds[0] == "meta"
            assert "metric" in kinds  # final per-job metrics line
            notes = [l["data"].get("message") for l in job_lines
                     if l["kind"] == "note"]
            assert "done" in notes


class TestRestartResume:
    def test_jobs_survive_server_restart(self, tmp_path):
        spec = cavity_job(base=12, levels=2, steps=8, tenant="t0",
                          job_id="survivor", checkpoint_every=2)

        async def phase1():
            srv = JobServer(str(tmp_path), workers=1)
            await srv.start()
            jid = await srv.submit(spec)
            while srv.status(jid).steps_done < 2:
                await asyncio.sleep(0.005)
            await srv.stop()  # interrupts at a segment boundary
            return srv.status(jid)

        st = asyncio.run(phase1())
        assert not st.terminal and st.steps_done >= 2

        async def phase2():
            srv = JobServer(str(tmp_path), workers=1)
            await srv.start()  # resumes persisted non-terminal jobs
            await srv.drain()
            res = await srv.result("survivor")
            await srv.stop()
            return res, list(srv.started_order)

        res, started = asyncio.run(phase2())
        assert res.state == "done" and res.steps_done == 8
        assert "survivor" in started
        assert res.state_digest == serial_digest(spec)

    def test_fleet_summary_written_and_readable(self, tmp_path):
        async def run():
            async with JobServer(str(tmp_path), workers=2) as srv:
                for s in build_flood(jobs=4, tenants=2, seed=5,
                                     steps_min=2, steps_max=3):
                    await srv.submit(s)
                await srv.drain()

        asyncio.run(run())
        path = os.path.join(str(tmp_path), "fleet_summary.json")
        assert os.path.exists(path)
        summary = summary_from_disk(str(tmp_path))
        assert summary["jobs_total"] == 4
        assert summary["states"] == {"done": 4}
        assert set(summary["tenants"]) == {"tenant-0", "tenant-1"}

"""Activity bitmask packing (paper Section V-A)."""

import numpy as np
import pytest

from repro.grid.bitmask import pack_bits, popcount, unpack_bits, words_per_block
from repro.grid.bitmask import test_bits as query_bits

RNG = np.random.default_rng(3)


class TestWordsPerBlock:
    def test_exact_word(self):
        assert words_per_block(64) == 1

    def test_rounding(self):
        assert words_per_block(1) == 1
        assert words_per_block(65) == 2
        assert words_per_block(128) == 2
        assert words_per_block(129) == 3

    def test_invalid(self):
        with pytest.raises(ValueError):
            words_per_block(0)


class TestPackUnpack:
    @pytest.mark.parametrize("ncell", [1, 8, 27, 64, 125, 216])
    def test_roundtrip(self, ncell):
        flags = RNG.random((10, ncell)) < 0.4
        assert np.array_equal(unpack_bits(pack_bits(flags), ncell), flags)

    def test_b4_cube_is_single_word(self):
        flags = RNG.random((5, 64)) < 0.5
        assert pack_bits(flags).shape == (5, 1)

    def test_all_set(self):
        flags = np.ones((3, 64), dtype=bool)
        words = pack_bits(flags)
        assert (words == np.uint64(0xFFFFFFFFFFFFFFFF)).all()

    def test_none_set(self):
        words = pack_bits(np.zeros((3, 27), dtype=bool))
        assert (words == 0).all()

    def test_bit_order_is_local_index(self):
        flags = np.zeros((1, 64), dtype=bool)
        flags[0, 5] = True
        assert pack_bits(flags)[0, 0] == np.uint64(1) << np.uint64(5)

    def test_shape_errors(self):
        with pytest.raises(ValueError):
            pack_bits(np.zeros(64, dtype=bool))
        with pytest.raises(ValueError):
            unpack_bits(np.zeros(2, dtype=np.uint64), 64)


class TestPopcount:
    def test_matches_sum(self):
        flags = RNG.random((20, 64)) < 0.3
        assert np.array_equal(popcount(pack_bits(flags)), flags.sum(axis=1))

    def test_multiword(self):
        flags = RNG.random((7, 216)) < 0.6
        assert np.array_equal(popcount(pack_bits(flags)), flags.sum(axis=1))


class TestTestBits:
    def test_vectorised_query(self):
        flags = RNG.random((6, 64)) < 0.5
        words = pack_bits(flags)
        blocks = RNG.integers(0, 6, 100)
        locals_ = RNG.integers(0, 64, 100)
        assert np.array_equal(query_bits(words, blocks, locals_), flags[blocks, locals_])

    def test_multiword_query(self):
        flags = RNG.random((4, 216)) < 0.5
        words = pack_bits(flags)
        blocks = RNG.integers(0, 4, 50)
        locals_ = RNG.integers(0, 216, 50)
        assert np.array_equal(query_bits(words, blocks, locals_), flags[blocks, locals_])

"""Backend-parity suite: compiled step plans vs the interpreted reference.

The contract under test is the one ``docs/ARCHITECTURE.md`` states:

* compiled execution is **bit-identical** to interpreted execution —
  every level's ``f``/``fstar``/``ghost_acc`` and the recorded kernel
  trace — across all fusion configs in 2D and 3D;
* plans are **admitted** against the PR-5 certificate contract before
  their first replay, and refuse admission on a tampered stream;
* the plan **cache invalidates** when it must: config changes and
  regrids produce a new backend instance, checkpoint restores bump the
  engine's state epoch;
* runtime hooks that intercept individual launches (tracer, faults,
  executor) force a **counted fallback** to the interpreted path, with
  results still bit-identical.
"""

import os

import numpy as np
import pytest

from repro.backend import (CompiledAABackend, CompiledBackend,
                           InterpretedBackend, PlanAdmissionError,
                           available_backends, make_backend, resolve_backend)
from repro.backend.compiler import compile_plan
from repro.bench.workloads import lid_cavity
from repro.core.config import SimConfig
from repro.core.fusion import ABLATION_CONFIGS, ORIGINAL_BASELINE
from repro.core.simulation import Simulation

ALL_CONFIGS = (ORIGINAL_BASELINE,) + tuple(ABLATION_CONFIGS)


def cavity(dim="2d"):
    if dim == "2d":
        return lid_cavity(base=(16, 16), num_levels=2, lattice="D2Q9")
    return lid_cavity(base=(10, 10, 10), num_levels=2, lattice="D3Q19")


def build(wl, cfg, backend, **over):
    return Simulation.from_config(
        wl.spec, wl.sim_config(fusion=cfg), backend=backend,
        threaded=False, **over)


def states(sim):
    return [(b.f.copy(), b.fstar.copy(), b.ghost_acc.copy())
            for b in sim.engine.levels]


def assert_bit_identical(a, b, *, fields=("f", "fstar", "gacc")):
    names = ("f", "fstar", "gacc")
    for lv, (sa, sb) in enumerate(zip(a, b)):
        for name, xa, xb in zip(names, sa, sb):
            if name in fields:
                assert np.array_equal(xa, xb), f"{name}@{lv} diverged"


class TestBitIdentity:
    """Compiled replay must be bitwise equal to interpretation."""

    @pytest.mark.parametrize("dim", ["2d", "3d"])
    @pytest.mark.parametrize("cfg", ALL_CONFIGS, ids=lambda c: c.name)
    def test_full_state_and_trace(self, dim, cfg):
        wl = cavity(dim)
        si = build(wl, cfg, "interpreted")
        sc = build(wl, cfg, "compiled")
        si.run(5)
        sc.run(5)
        assert_bit_identical(states(si), states(sc))
        assert si.runtime.records == sc.runtime.records
        assert si.runtime.markers == sc.runtime.markers

    @pytest.mark.parametrize("cfg", ALL_CONFIGS, ids=lambda c: c.name)
    def test_aa_backend_matches_on_declared_fields(self, cfg):
        # compiled-aa drops lint-proven double buffers, so only the
        # fields the stream declares as live outputs must match.
        wl = cavity()
        si = build(wl, cfg, "interpreted")
        sa = build(wl, cfg, "compiled-aa")
        si.run(5)
        sa.run(5)
        assert_bit_identical(states(si), states(sa), fields=("f", "gacc"))
        assert si.runtime.records == sa.runtime.records

    def test_aa_backend_drops_case_register_file(self):
        wl = cavity()
        sa = build(wl, ABLATION_CONFIGS[-1], "compiled-aa")  # ours-4f
        sa.run(2)
        dropped = {d for p in sa.backend.plans.values() for d in p.dropped}
        assert "fstar@1" in dropped
        plan = next(iter(sa.backend.plans.values()))
        assert plan.arena_bytes > 0


class TestPlanCache:
    def test_hits_and_misses(self):
        sim = build(cavity(), ABLATION_CONFIGS[0], "compiled")
        sim.run(5)
        assert sim.backend.stats["plan_cache_misses"] == 1
        assert sim.backend.stats["plan_cache_hits"] == 4
        assert sim.backend.stats["plan_compile_seconds"] > 0

    def test_checkpoint_restore_forces_recompile(self, tmp_path):
        from repro.io.checkpoint import restore_checkpoint, save_checkpoint
        sim = build(cavity(), ABLATION_CONFIGS[0], "compiled")
        sim.run(2)
        path = str(tmp_path / "ck.npz")
        save_checkpoint(sim, path)
        assert len(sim.backend.plans) == 1
        restore_checkpoint(sim, path)
        sim.run(1)
        # The epoch bump keyed a second compilation.
        assert sim.backend.stats["plan_cache_misses"] == 2
        assert len(sim.backend.plans) == 2

    def test_restored_run_stays_bit_identical(self, tmp_path):
        from repro.io.checkpoint import restore_checkpoint, save_checkpoint
        wl = cavity()
        ref = build(wl, ABLATION_CONFIGS[-1], "interpreted")
        ref.run(6)
        sim = build(wl, ABLATION_CONFIGS[-1], "compiled")
        sim.run(3)
        path = str(tmp_path / "ck.npz")
        save_checkpoint(sim, path)
        restore_checkpoint(sim, path)
        sim.run(3)
        assert_bit_identical(states(ref), states(sim))

    def test_regrid_builds_fresh_backend(self):
        # Regrids construct a new Simulation, so the new run starts with
        # an empty plan cache bound to the new engine's buffers.
        from repro.core.amr import regrid
        wl = cavity()
        sim = build(wl, ABLATION_CONFIGS[0], "compiled")
        sim.run(2)
        old_backend = sim.backend
        new_sim = regrid(sim, regions=wl.spec.refine_regions)
        assert new_sim.backend is not old_backend
        assert new_sim.backend.plans == {}
        new_sim.run(1)
        assert new_sim.backend.stats["plan_cache_misses"] == 1

    def test_different_configs_get_different_plans(self):
        wl = cavity()
        a = build(wl, ABLATION_CONFIGS[0], "compiled")
        b = build(wl, ABLATION_CONFIGS[-1], "compiled")
        a.run(1)
        b.run(1)
        (pa,), (pb,) = a.backend.plans.values(), b.backend.plans.values()
        assert pa.digest != pb.digest
        assert len(pa) != len(pb)


class TestFallback:
    """Hooks that must see individual launches bypass plan replay."""

    def _parity_under(self, prepare):
        wl = cavity()
        si = build(wl, ABLATION_CONFIGS[0], "interpreted")
        sc = build(wl, ABLATION_CONFIGS[0], "compiled")
        prepare(si)
        prepare(sc)
        si.run(3)
        sc.run(3)
        assert_bit_identical(states(si), states(sc))
        return sc

    def test_executor_falls_back(self):
        sc = self._parity_under(lambda s: s.enable_threading(max_workers=2))
        assert sc.backend.stats["plan_fallback_steps"] == 3
        assert sc.backend.stats["plan_cache_misses"] == 0
        sc.close()

    def test_access_tracer_falls_back(self):
        sc = self._parity_under(lambda s: s.runtime.capture_start())
        assert sc.backend.stats["plan_fallback_steps"] == 3
        assert sc.runtime.captured  # tracer really observed the launches

    def test_fault_injector_falls_back(self):
        from repro.resilience.faults import FaultInjector
        sc = self._parity_under(lambda s: FaultInjector([]).install(s))
        assert sc.backend.stats["plan_fallback_steps"] == 3

    def test_spans_do_not_fall_back(self):
        wl = cavity()
        sc = build(wl, ABLATION_CONFIGS[0], "compiled")
        rec = sc.enable_tracing()
        sc.run(3)
        assert sc.backend.stats["plan_fallback_steps"] == 0
        assert sc.backend.stats["plan_cache_hits"] == 2
        # one span per record, even on replayed steps
        assert len(rec.kernel_spans) == len(sc.runtime.records)
        events = [e for e in rec.events if e.name == "plan_compile"]
        assert len(events) == 1
        assert events[0].meta["kernels"] == len(
            next(iter(sc.backend.plans.values())))

    def test_compiled_mid_plan_failure_closes_step(self):
        wl = cavity()
        sc = build(wl, ABLATION_CONFIGS[0], "compiled")
        sc.run(1)
        plan = next(iter(sc.backend.plans.values()))
        boom_at = len(plan.bodies) // 2

        def boom():
            raise RuntimeError("mid-plan failure")

        object.__setattr__(plan, "bodies",
                           plan.bodies[:boom_at] + (boom,)
                           + plan.bodies[boom_at + 1:])
        with pytest.raises(RuntimeError, match="mid-plan failure") as ei:
            sc.run(1)
        rt = sc.runtime
        # error contract: partial step closed, kernel named on the exc
        assert rt.markers[-1] == len(rt.records)
        assert ei.value.kernel_span["name"] == plan.records[boom_at].name
        assert sc.steps_done == 1


class TestAdmission:
    def test_plans_carry_validated_certificates(self):
        from repro.analysis.certificate import validate_certificate
        sim = build(cavity(), ABLATION_CONFIGS[-1], "compiled")
        sim.run(1)
        plan = next(iter(sim.backend.plans.values()))
        assert plan.certificate["stream_digest"] == plan.digest
        assert validate_certificate(plan.certificate,
                                    list(plan.records)) == []

    def test_empty_capture_refused(self):
        sim = build(cavity(), ABLATION_CONFIGS[0], "compiled")

        class NoopStepper:
            engine = sim.engine
            config = ABLATION_CONFIGS[0]
            num_levels = sim.num_levels
            def _advance(self, lv):
                pass

        with pytest.raises(PlanAdmissionError, match="empty"):
            compile_plan(NoopStepper())

    def test_tampered_stream_refused(self):
        # Dropping the recursion's fine substeps produces a stream whose
        # certificate/legality no longer matches the config's contract.
        sim = build(cavity(), ABLATION_CONFIGS[0], "compiled")
        stepper = sim.stepper

        class CoarseOnly:
            engine = stepper.engine
            config = stepper.config
            num_levels = stepper.num_levels
            def _advance(self, lv):
                eng = self.engine
                eng.op_collide(lv)
                eng.op_stream(lv)

        with pytest.raises(PlanAdmissionError):
            compile_plan(CoarseOnly())


class TestSelection:
    def test_registry_and_unknown_name(self):
        assert available_backends() == ("interpreted", "compiled",
                                        "compiled-aa", "mp")
        assert isinstance(make_backend("compiled"), CompiledBackend)
        assert isinstance(make_backend("compiled-aa"), CompiledAABackend)
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("torch")

    def test_simconfig_validates_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            SimConfig(viscosity=0.05, backend="warp")
        cfg = SimConfig(viscosity=0.05, backend="compiled")
        assert cfg.as_dict()["backend"] == "compiled"

    def test_env_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "compiled")
        assert isinstance(resolve_backend(None), CompiledBackend)
        monkeypatch.delenv("REPRO_BACKEND")
        assert isinstance(resolve_backend(None), InterpretedBackend)
        # an explicit config name beats the environment
        monkeypatch.setenv("REPRO_BACKEND", "compiled")
        assert isinstance(resolve_backend("interpreted"),
                          InterpretedBackend)

    def test_simulation_wires_selected_backend(self):
        wl = cavity()
        sim = build(wl, ABLATION_CONFIGS[0], "compiled")
        assert sim.backend.name == "compiled"
        assert sim.backend is sim.stepper.backend


class TestObservability:
    def test_run_metrics_publish_plan_counters(self):
        from repro.obs.metrics import run_metrics
        sim = build(cavity(), ABLATION_CONFIGS[0], "compiled")
        sim.run(4)
        reg = run_metrics(sim)
        assert reg["plan_cache_misses"].value == 1
        assert reg["plan_cache_hits"].value == 3
        assert reg["plan_fallback_steps"].value == 0
        assert reg["plan_compile_seconds"].value > 0

    def test_measure_records_backend(self):
        from repro.bench.harness import measure
        wl = cavity()
        m = measure(wl, ABLATION_CONFIGS[0], steps=2, warmup=1,
                    backend="compiled")
        assert m.backend == "compiled"
        assert m.summary()["backend"] == "compiled"

    def test_history_digest_salted_by_backend(self):
        from repro.bench.history import build_record, config_digest
        metrics = {"wall_seconds": 1.0}
        assert config_digest(metrics) != config_digest(
            metrics, backend="compiled")
        assert config_digest(metrics, backend="compiled") != config_digest(
            metrics, backend="interpreted")
        rec = build_record("b", metrics, backend="compiled", sha="x")
        assert rec["backend"] == "compiled"
        assert rec["config_digest"] == config_digest(metrics,
                                                     backend="compiled")

    def test_smoke_payload_shape(self):
        # tiny but real end-to-end: both series plus per-config speedups
        from repro.bench.smoke import SMOKE_CONFIGS, run_smoke
        payload = run_smoke(steps=1, warmup=1)
        for name in SMOKE_CONFIGS:
            assert payload["measurements"][name]["backend"] == "interpreted"
            assert payload["compiled"][name]["backend"] == "compiled"
            assert payload["speedup"][name]["speedup"] > 0
        assert payload["speedup"]["mean"]["speedup"] > 0


class TestTieredLeg:
    def test_env_var_reaches_default_construction(self, monkeypatch):
        # The CI compiled leg sets $REPRO_BACKEND; make sure a config
        # that does not name a backend picks it up.
        monkeypatch.setenv("REPRO_BACKEND", "compiled")
        wl = cavity()
        sim = Simulation.from_config(wl.spec, wl.sim_config(
            fusion=ABLATION_CONFIGS[0]), threaded=False)
        assert sim.backend.name == "compiled"

    def test_env_default_is_interpreted(self):
        assert os.environ.get("REPRO_BACKEND", "") or True  # env-agnostic
        assert resolve_backend("interpreted").name == "interpreted"

"""Validation data tables, analytic solutions and error metrics."""

import numpy as np
import pytest

from repro.validation.analytic import (couette_profile, poiseuille_profile,
                                       taylor_green_2d, taylor_green_decay_rate)
from repro.validation.ghia import (GHIA_RE100_U, GHIA_RE100_V, GHIA_RE400_U,
                                   centered, profiles)
from repro.validation.metrics import interp_profile, l2_error, linf_error, relative_l2


class TestGhiaTables:
    def test_u_profile_endpoints(self):
        # no-slip floor and the moving lid
        assert GHIA_RE100_U[0].tolist() == [0.0, 0.0]
        assert GHIA_RE100_U[-1].tolist() == [1.0, 1.0]

    def test_v_profile_endpoints(self):
        assert GHIA_RE100_V[0, 1] == 0.0
        assert GHIA_RE100_V[-1, 1] == 0.0

    def test_coordinates_monotonic(self):
        for table in (GHIA_RE100_U, GHIA_RE100_V, GHIA_RE400_U):
            assert (np.diff(table[:, 0]) > 0).all()

    def test_re100_u_minimum_location(self):
        # the primary vortex puts the u-minimum just below mid-height
        i = GHIA_RE100_U[:, 1].argmin()
        assert 0.4 < GHIA_RE100_U[i, 0] < 0.55
        assert GHIA_RE100_U[i, 1] == pytest.approx(-0.21090)

    def test_profiles_lookup(self):
        u, v = profiles(100)
        assert u is GHIA_RE100_U and v is GHIA_RE100_V
        with pytest.raises(KeyError):
            profiles(1000)

    def test_centered_shifts_origin(self):
        c = centered(GHIA_RE100_U)
        assert c[0, 0] == pytest.approx(-0.5)
        assert c[-1, 0] == pytest.approx(0.5)
        assert np.array_equal(c[:, 1], GHIA_RE100_U[:, 1])


class TestAnalytic:
    def test_taylor_green_incompressible(self):
        rng = np.random.default_rng(0)
        pts = rng.random((200, 2)) * 32
        eps = 1e-5
        dudx = (taylor_green_2d(pts + [eps, 0], 0, 0.1, 1, (32, 32))[0]
                - taylor_green_2d(pts - [eps, 0], 0, 0.1, 1, (32, 32))[0]) / (2 * eps)
        dvdy = (taylor_green_2d(pts + [0, eps], 0, 0.1, 1, (32, 32))[1]
                - taylor_green_2d(pts - [0, eps], 0, 0.1, 1, (32, 32))[1]) / (2 * eps)
        assert np.allclose(dudx + dvdy, 0.0, atol=1e-6)

    def test_taylor_green_decay(self):
        pts = np.array([[3.0, 7.0]])
        u0 = taylor_green_2d(pts, 0.0, 0.05, 1.0, (16, 16))
        rate = taylor_green_decay_rate(0.05, (16.0, 16.0)) / 2  # velocity rate
        u1 = taylor_green_2d(pts, 10.0, 0.05, 1.0, (16, 16))
        assert np.allclose(u1, u0 * np.exp(-rate * 10.0), rtol=1e-12)

    def test_poiseuille_profile(self):
        y = np.array([0.0, 0.5, 1.0])
        p = poiseuille_profile(y, 1.0, 2.0)
        assert p.tolist() == [0.0, 2.0, 0.0]

    def test_couette_profile(self):
        y = np.array([0.0, 0.5, 1.0])
        assert couette_profile(y, 1.0, 0.1).tolist() == [0.0, 0.05, 0.1]


class TestMetrics:
    def test_l2_and_linf(self):
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([1.0, 2.0, 4.0])
        assert linf_error(a, b) == 1.0
        assert l2_error(a, b) == pytest.approx(np.sqrt(1.0 / 3.0))

    def test_relative_l2(self):
        ref = np.array([3.0, 4.0])
        assert relative_l2(ref * 1.1, ref) == pytest.approx(0.1)
        with pytest.raises(ValueError):
            relative_l2(ref, np.zeros(2))

    def test_interp_profile_unsorted_input(self):
        x = np.array([2.0, 0.0, 1.0])
        v = np.array([4.0, 0.0, 2.0])
        out = interp_profile(np.array([0.5, 1.5]), x, v)
        assert np.allclose(out, [1.0, 3.0])

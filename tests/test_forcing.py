"""Guo body-force scheme and reduced-precision storage (library extensions)."""

import numpy as np
import pytest

from repro.core.collision import BGK, KBC, equilibrium, guo_source
from repro.core.lattice import D2Q9, D3Q27
from repro.core.simulation import Simulation
from repro.grid.geometry import wall_refinement
from repro.grid.multigrid import DomainBC, FaceBC, RefinementSpec
from repro.validation.analytic import poiseuille_profile

PERIODIC_X = DomainBC({"x-": FaceBC("periodic"), "x+": FaceBC("periodic")})


class TestGuoSource:
    def test_zeroth_moment_vanishes(self):
        lat = D2Q9
        u = 0.02 * np.random.default_rng(0).standard_normal((2, 10))
        s = guo_source(lat, u, np.array([1e-4, 0.0]), omega=1.3)
        assert np.allclose(s.sum(axis=0), 0.0, atol=1e-15)

    def test_first_moment_is_scaled_force(self):
        lat = D2Q9
        u = 0.02 * np.random.default_rng(1).standard_normal((2, 10))
        force = np.array([2e-4, -1e-4])
        omega = 1.4
        s = guo_source(lat, u, force, omega)
        mom = lat.ef.T @ s
        expected = (1.0 - 0.5 * omega) * force
        assert np.allclose(mom, expected[:, None], atol=1e-15)

    def test_collision_adds_momentum(self):
        lat = D2Q9
        force = np.array([1e-4, 0.0])
        feq = equilibrium(lat, np.ones(5), np.zeros((2, 5)))
        out = BGK(lat).collide(feq, 1.2, force=force)
        mom = lat.ef.T @ out
        # from rest, the raw post-collision momentum is exactly F:
        # omega*(F/2) from relaxing toward the shifted equilibrium plus
        # (1 - omega/2)*F from the source term
        assert np.allclose(mom[0], force[0], atol=1e-15)

    def test_kbc_accepts_force(self):
        lat = D3Q27
        feq = equilibrium(lat, np.ones(4), np.zeros((3, 4)))
        out = KBC(lat).collide(feq, 1.5, force=np.array([1e-4, 0.0, 0.0]))
        assert np.isfinite(out).all()
        assert (lat.ef.T @ out)[0].mean() > 0


class TestPoiseuille:
    def test_refined_channel_matches_analytic(self):
        # body-force-driven channel flow across a refinement interface
        H, nu, g = 12, 0.3, 1e-5
        region = np.zeros((H, H), dtype=bool)
        region[:, :4] = True
        spec = RefinementSpec((H, H), [region], bc=PERIODIC_X)
        sim = Simulation(spec, "D2Q9", "bgk", viscosity=nu, force=(g, 0.0))
        sim.run(800)
        u_max = g * H * H / (8.0 * nu)
        for lv in range(2):
            _, u = sim.macroscopics(lv)
            y = (sim.positions(lv)[:, 1] + 0.5) * 2.0 ** (-lv)
            exact = poiseuille_profile(y, float(H), u_max)
            assert np.abs(u[0] - exact).max() / u_max < 0.06

    def test_force_scales_across_levels(self):
        spec = RefinementSpec((8, 8), wall_refinement((8, 8), 2, [2.0]))
        sim = Simulation(spec, "D2Q9", "bgk", viscosity=0.1, force=(1e-4, 0.0))
        assert sim.engine.force[1][0] == pytest.approx(0.5e-4)

    def test_force_shape_validated(self):
        spec = RefinementSpec((8, 8))
        with pytest.raises(ValueError):
            Simulation(spec, "D2Q9", "bgk", viscosity=0.1, force=(1e-4, 0, 0))

    def test_all_fusion_variants_identical_with_force(self):
        from repro.core.fusion import ABLATION_CONFIGS, ORIGINAL_BASELINE
        H = 12
        region = np.zeros((H, H), dtype=bool)
        region[:, :4] = True
        spec = RefinementSpec((H, H), [region], bc=PERIODIC_X)
        ref = None
        for cfg in (ORIGINAL_BASELINE,) + tuple(ABLATION_CONFIGS):
            sim = Simulation(spec, "D2Q9", "bgk", viscosity=0.2,
                             force=(1e-5, 0.0), config=cfg)
            sim.run(5)
            state = np.concatenate([b.f[:, :b.n_owned].ravel()
                                    for b in sim.engine.levels])
            if ref is None:
                ref = state
            else:
                assert np.array_equal(state, ref), cfg.name


class TestReducedPrecision:
    def make(self, dtype):
        bc = DomainBC({"y+": FaceBC("moving", velocity=(0.06, 0.0))})
        spec = RefinementSpec((16, 16), wall_refinement((16, 16), 2, [3.0]), bc=bc)
        sim = Simulation(spec, "D2Q9", "bgk", viscosity=0.05, dtype=dtype)
        sim.run(30)
        return sim

    def test_fp32_buffers(self):
        sim = self.make(np.float32)
        assert sim.engine.levels[0].f.dtype == np.float32
        assert sim.engine.levels[0].ghost_acc.dtype == np.float32

    def test_fp32_tracks_fp64(self):
        s32, s64 = self.make(np.float32), self.make(np.float64)
        for a, b in zip(s32.engine.levels, s64.engine.levels):
            diff = np.abs(a.f[:, :a.n_owned].astype(np.float64)
                          - b.f[:, :b.n_owned]).max()
            assert diff < 1e-5

    def test_fp32_halves_traffic(self):
        s32, s64 = self.make(np.float32), self.make(np.float64)
        ratio = s32.runtime.total_bytes() / s64.runtime.total_bytes()
        assert 0.45 < ratio < 0.6  # metadata bytes keep it slightly above 1/2

    def test_invalid_dtype(self):
        spec = RefinementSpec((8, 8))
        with pytest.raises(ValueError):
            Simulation(spec, "D2Q9", "bgk", viscosity=0.1, dtype=np.int32)

    def test_fp32_stable(self):
        sim = self.make(np.float32)
        assert sim.is_stable()

"""Cross-cutting integration matrix: every lattice x collision x config
combination drives a real multi-level simulation end-to-end."""

import dataclasses

import numpy as np
import pytest

from repro.core.fusion import FUSED_FULL, MODIFIED_BASELINE, ORIGINAL_BASELINE
from repro.core.simulation import Simulation
from repro.grid.geometry import wall_refinement
from repro.grid.multigrid import DomainBC, FaceBC, RefinementSpec


def cavity_spec(d, base=16, levels=2):
    shape = (base,) * d
    lid_axis = f"{'xyz'[d - 1]}+"
    vel = tuple([0.05] + [0.0] * (d - 1))
    widths = [3.0] if levels == 2 else [5.0, 1.8]
    return RefinementSpec(shape, wall_refinement(shape, levels, widths),
                          bc=DomainBC({lid_axis: FaceBC("moving", velocity=vel)}))


MATRIX = [
    ("D2Q9", "bgk"), ("D2Q9", "trt"), ("D2Q9", "kbc"),
    ("D3Q19", "bgk"), ("D3Q19", "trt"),
    ("D3Q27", "bgk"), ("D3Q27", "trt"), ("D3Q27", "kbc"),
]


@pytest.mark.parametrize("lattice,collision", MATRIX)
def test_lattice_collision_matrix(lattice, collision):
    d = 2 if lattice == "D2Q9" else 3
    sim = Simulation(cavity_spec(d, base=12 if d == 3 else 16),
                     lattice, collision, viscosity=0.05)
    m0 = sim.engine.total_mass()
    sim.run(4)
    assert sim.is_stable()
    assert abs(sim.engine.total_mass() - m0) / m0 < 1e-4
    assert 0.0 < sim.max_velocity() < 0.2


@pytest.mark.parametrize("lattice,collision", [("D2Q9", "trt"), ("D3Q19", "bgk")])
def test_variant_equivalence_holds_for_every_collision(lattice, collision):
    d = 2 if lattice == "D2Q9" else 3
    spec = cavity_spec(d, base=12 if d == 3 else 16)
    states = []
    for cfg in (ORIGINAL_BASELINE, MODIFIED_BASELINE, FUSED_FULL):
        sim = Simulation(spec, lattice, collision, viscosity=0.05, config=cfg)
        sim.run(3)
        states.append(np.concatenate([b.f[:, :b.n_owned].ravel()
                                      for b in sim.engine.levels]))
    assert np.array_equal(states[0], states[1])
    assert np.array_equal(states[1], states[2])


def test_four_level_stack():
    """Deep hierarchies exercise the recursion: 2^3 = 8 finest substeps."""
    spec = cavity_spec(2, base=24, levels=2)
    regions = wall_refinement((24, 24), 4, [9.0, 4.0, 1.6])
    spec = dataclasses.replace(spec, refine_regions=regions)
    sim = Simulation(spec, "D2Q9", "bgk", viscosity=0.05)
    assert sim.num_levels == 4
    sim.run(2)
    assert sim.is_stable()
    # finest level ran 8 substeps per coarse step: count CASE launches
    case = [r for r in sim.runtime.records if r.name == "CASE"]
    assert len(case) == 2 * 8


@pytest.mark.parametrize("block_size", [2, 4, 8])
def test_block_size_invariance(block_size):
    """Physics must not depend on the memory-block size (Section V-B)."""
    spec = dataclasses.replace(cavity_spec(2), block_size=block_size)
    sim = Simulation(spec, "D2Q9", "bgk", viscosity=0.05)
    sim.run(5)
    rho, u = sim.macroscopics(1)
    key = (float(rho.sum()), float(np.abs(u).sum()))
    spec4 = dataclasses.replace(cavity_spec(2), block_size=4)
    ref = Simulation(spec4, "D2Q9", "bgk", viscosity=0.05)
    ref.run(5)
    rho_r, u_r = ref.macroscopics(1)
    assert key[0] == pytest.approx(float(rho_r.sum()), rel=1e-12)
    assert key[1] == pytest.approx(float(np.abs(u_r).sum()), rel=1e-12)


@pytest.mark.parametrize("curve", ["sweep", "morton", "hilbert"])
def test_curve_invariance(curve):
    """Physics must not depend on the block ordering (Section V-A)."""
    spec = dataclasses.replace(cavity_spec(2), curve=curve)
    sim = Simulation(spec, "D2Q9", "bgk", viscosity=0.05)
    sim.run(5)
    rho, _ = sim.macroscopics(0)
    assert rho.sum() == pytest.approx(sim.mgrid.levels[0].n_owned, rel=1e-3)
    pos = sim.positions(0)
    order = np.lexsort(pos.T)
    spec_ref = dataclasses.replace(cavity_spec(2), curve="morton")
    ref = Simulation(spec_ref, "D2Q9", "bgk", viscosity=0.05)
    ref.run(5)
    rho_ref, _ = ref.macroscopics(0)
    order_ref = np.lexsort(ref.positions(0).T)
    assert np.allclose(rho[order], rho_ref[order_ref], atol=1e-13)


def test_mixed_bc_wind_tunnel_with_slip_walls():
    """Half-model tunnel: inlet, outflow, slip sides — a realistic setup."""
    bc = DomainBC({"x-": FaceBC("inlet", velocity=(0.04, 0.0, 0.0)),
                   "x+": FaceBC("outflow"),
                   "y-": FaceBC("slip"), "y+": FaceBC("slip"),
                   "z-": FaceBC("slip"), "z+": FaceBC("slip")})
    region = np.zeros((16, 8, 8), dtype=bool)
    region[4:10, 2:6, 2:6] = True
    spec = RefinementSpec((16, 8, 8), [region], bc=bc)
    sim = Simulation(spec, "D3Q19", "bgk", viscosity=0.03)
    sim.initialize(u=np.array([0.04, 0.0, 0.0]))
    sim.run(2)
    assert sim.is_stable()
    # slip sides and the matched inlet are exact for a uniform stream; the
    # paper's weights-based outflow launches a pressure wave, which after
    # two steps has reached at most ~2 cells upstream of the outlet
    for lv in range(2):
        _, u = sim.macroscopics(lv)
        pos = sim.positions(lv)
        interior = pos[:, 0] < 12 * 2 ** lv
        assert np.abs(u[0, interior] - 0.04).max() < 1e-10
        assert np.abs(u[1:, interior]).max() < 1e-10
    sim.run(20)  # and the perturbed flow stays stable long-term
    assert sim.is_stable()


def test_long_run_remains_bounded():
    sim = Simulation(cavity_spec(2), "D2Q9", "bgk", viscosity=0.02)
    sim.run(300)
    assert sim.is_stable()
    assert sim.max_velocity() < 0.15
    rho, _ = sim.macroscopics(0)
    assert abs(rho.mean() - 1.0) < 0.01

"""Multi-GPU scaling projection (Section-VII future work)."""

import pytest

from repro.gpu.costmodel import TraceCost
from repro.gpu.device import A100_40GB
from repro.gpu.multigpu import (NVLINK3, PCIE4, Interconnect, multi_gpu_time_us,
                                scaling_curve)

SINGLE = TraceCost(total_us=10_000.0, launch_us=1_000.0, mem_us=9_000.0,
                   kernels=10, bytes_total=10 ** 9, device=A100_40GB)
COUNTS = [175_000, 296_000, 602_000]


class TestMultiGpuTime:
    def test_one_gpu_no_comm(self):
        t = multi_gpu_time_us(SINGLE, 1, COUNTS, 1)
        assert t == pytest.approx(SINGLE.mem_us + SINGLE.launch_us)

    def test_two_gpus_faster_than_one(self):
        t1 = multi_gpu_time_us(SINGLE, 1, COUNTS, 1)
        t2 = multi_gpu_time_us(SINGLE, 1, COUNTS, 2)
        assert t2 < t1

    def test_comm_added_beyond_one(self):
        no_comm = SINGLE.mem_us / 2 + SINGLE.launch_us
        t2 = multi_gpu_time_us(SINGLE, 1, COUNTS, 2)
        assert t2 > no_comm

    def test_slower_link_costs_more(self):
        t_nv = multi_gpu_time_us(SINGLE, 1, COUNTS, 4, link=NVLINK3)
        t_pci = multi_gpu_time_us(SINGLE, 1, COUNTS, 4, link=PCIE4)
        assert t_pci > t_nv

    def test_imbalance_penalty(self):
        t = multi_gpu_time_us(SINGLE, 1, COUNTS, 4)
        t_imb = multi_gpu_time_us(SINGLE, 1, COUNTS, 4, imbalance=1.3)
        assert t_imb > t

    def test_validation(self):
        with pytest.raises(ValueError):
            multi_gpu_time_us(SINGLE, 1, COUNTS, 0)
        with pytest.raises(ValueError):
            multi_gpu_time_us(SINGLE, 1, COUNTS, 2, imbalance=0.5)


class TestScalingCurve:
    def test_structure(self):
        rows = scaling_curve(SINGLE, 1, COUNTS, max_gpus=8)
        assert len(rows) == 8
        assert rows[0]["speedup"] == pytest.approx(1.0)
        assert rows[0]["efficiency"] == pytest.approx(1.0)

    def test_speedup_monotone_but_sublinear(self):
        rows = scaling_curve(SINGLE, 1, COUNTS, max_gpus=8)
        speedups = [r["speedup"] for r in rows]
        assert all(b >= a for a, b in zip(speedups, speedups[1:]))
        assert speedups[-1] < 8.0  # comm + undivided overhead

    def test_efficiency_declines(self):
        rows = scaling_curve(SINGLE, 1, COUNTS, max_gpus=8)
        effs = [r["efficiency"] for r in rows]
        assert all(b <= a + 1e-12 for a, b in zip(effs, effs[1:]))

    def test_mlups_times_consistent(self):
        rows = scaling_curve(SINGLE, 3, COUNTS, max_gpus=2)
        updates = sum(v * 2 ** lv for lv, v in enumerate(COUNTS)) * 3
        for r in rows:
            assert r["mlups"] == pytest.approx(updates / r["time_us"])

    def test_custom_link(self):
        slow = Interconnect("slow", bandwidth_gbs=1.0, latency_us=100.0)
        rows = scaling_curve(SINGLE, 1, COUNTS, max_gpus=4, link=slow)
        # with a terrible link, scaling can invert — the model must show it
        assert rows[3]["speedup"] < 2.0

"""Roofline cost model and device specs."""

import pytest

from repro.gpu.costmodel import cost_trace, kernel_time_us, predicted_mlups
from repro.gpu.device import (A100_40GB, CPU_XEON_32C, DeviceSpec, get_device)
from repro.neon.runtime import FieldRef, KernelRecord


def rec(name="C", level=0, n_cells=1_000_000, br=None, bw=None, atomic=0):
    q = 19
    br = q * 8 * n_cells if br is None else br
    bw = q * 8 * n_cells if bw is None else bw
    return KernelRecord(name=name, level=level, n_cells=n_cells,
                        bytes_read=br, bytes_written=bw, reads=(), writes=(),
                        atomic_bytes=atomic)


class TestDevice:
    def test_registry(self):
        assert get_device("A100-40GB") is A100_40GB
        with pytest.raises(KeyError):
            get_device("H100")

    def test_effective_bandwidth_units(self):
        # bytes per microsecond = GB/s * 1e3 * fraction
        d = DeviceSpec("x", 1000.0, 1.0, sustained_fraction=0.5)
        assert d.effective_bandwidth == pytest.approx(0.5e6)

    def test_capacity(self):
        assert A100_40GB.capacity_bytes == 40_000_000_000


class TestKernelTime:
    def test_memory_bound_scaling(self):
        t1 = kernel_time_us(rec(n_cells=1_000_000), A100_40GB).time_us
        t2 = kernel_time_us(rec(n_cells=2_000_000), A100_40GB).time_us
        assert t2 > 1.8 * (t1 - A100_40GB.launch_overhead_us)

    def test_launch_overhead_included(self):
        t = kernel_time_us(rec(n_cells=1, br=8, bw=8), A100_40GB)
        assert t.time_us == pytest.approx(A100_40GB.launch_overhead_us, rel=0.01)

    def test_launch_can_be_excluded(self):
        t = kernel_time_us(rec(), A100_40GB, include_launch=False)
        assert t.time_us == pytest.approx(max(t.mem_us, t.flop_us))

    def test_atomic_penalty(self):
        plain = kernel_time_us(rec(name="A"), A100_40GB).time_us
        atomic = kernel_time_us(rec(name="A", atomic=19 * 8 * 1_000_000),
                                A100_40GB).time_us
        assert atomic > plain

    def test_kbc_raises_flop_cost_of_collision_only(self):
        c_bgk = kernel_time_us(rec("C"), A100_40GB, kbc=False)
        c_kbc = kernel_time_us(rec("C"), A100_40GB, kbc=True)
        s_bgk = kernel_time_us(rec("S"), A100_40GB, kbc=False)
        s_kbc = kernel_time_us(rec("S"), A100_40GB, kbc=True)
        assert c_kbc.flop_us > c_bgk.flop_us
        assert s_kbc.flop_us == s_bgk.flop_us

    def test_memory_bound_regime(self):
        # at A100 ratios, LBM kernels sit on the memory roof
        t = kernel_time_us(rec("C"), A100_40GB)
        assert t.mem_us > t.flop_us

    def test_cpu_slower_than_gpu(self):
        tg = kernel_time_us(rec(), A100_40GB).time_us
        tc = kernel_time_us(rec(), CPU_XEON_32C).time_us
        assert tc > 5 * tg


class TestCostTrace:
    def test_serial_charges_sync_per_kernel(self):
        records = [rec("C"), rec("S")]
        c = cost_trace(records, A100_40GB, concurrent=False)
        expected = 2 * (A100_40GB.launch_overhead_us + A100_40GB.sync_overhead_us)
        assert c.launch_us == pytest.approx(expected)

    def test_concurrent_charges_sync_per_wave(self):
        f, fs = FieldRef("f", 0), FieldRef("fstar", 0)
        dep = [
            KernelRecord("C", 0, 100, 80, 80, reads=(f,), writes=(fs,)),
            KernelRecord("C", 1, 100, 80, 80, reads=(FieldRef("f", 1),),
                         writes=(FieldRef("fstar", 1),)),
            KernelRecord("S", 0, 100, 80, 80, reads=(fs,), writes=(f,)),
        ]
        c = cost_trace(dep, A100_40GB, concurrent=True)
        expected = (3 * A100_40GB.launch_overhead_us
                    + 2 * A100_40GB.sync_overhead_us)  # two waves
        assert c.launch_us == pytest.approx(expected)

    def test_concurrent_never_slower(self):
        records = [rec("C"), rec("S"), rec("O")]
        serial = cost_trace(records, A100_40GB, concurrent=False).total_us
        conc = cost_trace(records, A100_40GB, concurrent=True).total_us
        assert conc <= serial

    def test_totals(self):
        records = [rec("C"), rec("S")]
        c = cost_trace(records, A100_40GB)
        assert c.kernels == 2
        assert c.bytes_total == sum(r.bytes_total for r in records)
        assert c.total_us == pytest.approx(c.launch_us + c.mem_us)

    def test_per_step(self):
        c = cost_trace([rec()] * 10, A100_40GB)
        assert c.per_step(5) == pytest.approx(c.total_us / 5)


class TestPredictedMlups:
    def test_formula(self):
        # MLUPS = sum V_L 2^L N / T(us)
        trace = cost_trace([rec(n_cells=1)], A100_40GB)
        active = [1000, 2000]
        n = 7
        expected = (1000 * 1 + 2000 * 2) * n / trace.total_us
        assert predicted_mlups(active, n, trace) == pytest.approx(expected)

    def test_roofline_sanity_uniform_d3q19(self):
        # A perfectly fused uniform D3Q19 double-precision kernel moves
        # 2*19*8 = 304 B per update; the model should land in the
        # low-thousands MLUPS on an A100 (paper quotes >2000 for uniform).
        n = 50_000_000
        trace = cost_trace([rec("CASE", n_cells=n)], A100_40GB)
        m = predicted_mlups([n], 1, trace)
        assert 2000 < m < 5000

"""Block-sparse grid structure (paper Section V-A)."""

import numpy as np
import pytest

from repro.grid.sparse_grid import BlockSparseGrid

RNG = np.random.default_rng(5)


def blobby_mask(shape, p=0.5):
    """A random but spatially-coherent activity mask."""
    coarse = RNG.random(tuple(max(s // 4, 1) for s in shape)) < p
    mask = coarse
    for axis in range(len(shape)):
        mask = np.repeat(mask, 4, axis=axis)
    return mask[tuple(slice(0, s) for s in shape)]


class TestConstruction:
    def test_active_count_matches_mask(self):
        mask = blobby_mask((20, 17, 13))
        if not mask.any():
            mask[0, 0, 0] = True
        g = BlockSparseGrid.from_mask(mask, block_size=4)
        assert g.n_active == mask.sum()

    def test_alloc_is_block_granular(self):
        mask = np.zeros((8, 8, 8), dtype=bool)
        mask[0, 0, 0] = True  # a single active cell still allocates a block
        g = BlockSparseGrid.from_mask(mask, block_size=4)
        assert g.n_blocks == 1
        assert g.n_alloc == 64
        assert g.n_active == 1

    def test_full_box(self):
        g = BlockSparseGrid.from_mask(np.ones((8, 8), dtype=bool), block_size=4)
        assert g.n_blocks == 4
        assert g.n_active == 64
        assert g.active().all()

    def test_non_multiple_shape_padding(self):
        mask = np.ones((6, 7), dtype=bool)
        g = BlockSparseGrid.from_mask(mask, block_size=4)
        assert g.n_active == 42
        assert g.n_alloc == 4 * 16  # 2x2 blocks of 4x4

    def test_empty_mask_rejected(self):
        with pytest.raises(ValueError):
            BlockSparseGrid.from_mask(np.zeros((8, 8), dtype=bool))

    def test_small_block_rejected(self):
        with pytest.raises(ValueError):
            BlockSparseGrid.from_mask(np.ones((4, 4), dtype=bool), block_size=1)

    @pytest.mark.parametrize("curve", ["sweep", "morton", "hilbert"])
    def test_curves_give_same_cells(self, curve):
        mask = blobby_mask((16, 16, 16))
        mask[0, 0, 0] = True
        g = BlockSparseGrid.from_mask(mask, curve=curve)
        assert g.n_active == mask.sum()


class TestLookup:
    def test_positions_roundtrip(self):
        mask = blobby_mask((16, 12, 16))
        mask[0, 0, 0] = True
        g = BlockSparseGrid.from_mask(mask)
        pos = g.cell_positions()
        ids = g.lookup(pos)
        assert np.array_equal(ids, np.arange(g.n_alloc))

    def test_outside_box_is_minus_one(self):
        g = BlockSparseGrid.from_mask(np.ones((8, 8), dtype=bool))
        assert g.lookup(np.array([[-1, 0], [8, 3], [3, 100]])).tolist() == [-1, -1, -1]

    def test_unallocated_block_is_minus_one(self):
        mask = np.zeros((8, 8), dtype=bool)
        mask[:4, :4] = True
        g = BlockSparseGrid.from_mask(mask, block_size=4)
        assert g.lookup(np.array([[6, 6]]))[0] == -1
        assert g.lookup(np.array([[1, 1]]))[0] >= 0

    def test_active_flags_follow_bitmask(self):
        mask = blobby_mask((12, 12))
        mask[0, 0] = True
        g = BlockSparseGrid.from_mask(mask)
        pos = g.cell_positions()
        assert np.array_equal(g.active(), mask[tuple(pos.T)])


class TestNeighbors:
    @pytest.mark.parametrize("d", [2, 3])
    def test_matches_coordinate_arithmetic(self, d):
        shape = (12,) * d
        mask = blobby_mask(shape)
        mask[(0,) * d] = True
        g = BlockSparseGrid.from_mask(mask)
        pos = g.cell_positions()
        dirs = [(1,) + (0,) * (d - 1), (-1,) * d, (0,) * (d - 1) + (1,)]
        for v in dirs:
            expected = g.lookup(pos + np.asarray(v))
            assert np.array_equal(g.neighbor_ids(v), expected)

    def test_neighbor_table_shape(self):
        mask = np.ones((8, 8, 8), dtype=bool)
        g = BlockSparseGrid.from_mask(mask)
        e = np.array([[0, 0, 0], [1, 0, 0], [0, -1, 0], [1, 1, 1]])
        table = g.neighbor_table(e)
        assert table.shape == (4, g.n_alloc)
        assert np.array_equal(table[0], np.arange(g.n_alloc))  # rest = self

    def test_missing_block_neighbor(self):
        mask = np.zeros((8, 8), dtype=bool)
        mask[:4, :4] = True
        g = BlockSparseGrid.from_mask(mask)
        ids = g.neighbor_ids((1, 0))
        pos = g.cell_positions()
        # cells on the x=3 row have their +x neighbour in an absent block
        edge = pos[:, 0] == 3
        assert (ids[edge] == -1).all()
        interior = pos[:, 0] < 3
        assert (ids[interior] >= 0).all()


class TestMemoryAccounting:
    def test_bitmask_one_word_for_b4(self):
        g = BlockSparseGrid.from_mask(np.ones((8, 8, 8), dtype=bool), block_size=4)
        meta = g.metadata_bytes()
        assert meta["bitmask"] == g.n_blocks * 8

    def test_field_bytes(self):
        g = BlockSparseGrid.from_mask(np.ones((8, 8, 8), dtype=bool))
        assert g.field_bytes(ncomp=19, itemsize=8) == g.n_alloc * 19 * 8

    def test_neighbor_table_bytes(self):
        g = BlockSparseGrid.from_mask(np.ones((8, 8, 8), dtype=bool))
        assert g.metadata_bytes()["block_neighbors"] == g.n_blocks * 27 * 4

"""Multi-resolution stack construction, validation and interface maps."""

import numpy as np
import pytest

from repro.core.lattice import D2Q9, D3Q19
from repro.grid import kinds
from repro.grid.geometry import Sphere, shell_refinement, voxelize, wall_refinement
from repro.grid.multigrid import (DomainBC, FaceBC, RefinementSpec, build_multigrid)


def two_level_2d(base=(16, 16), width=3.0, bc=None):
    regions = wall_refinement(base, 2, [width])
    return RefinementSpec(base_shape=base, refine_regions=regions,
                          bc=bc or DomainBC())


def center_patch_spec(base=(16, 16), lo=5, hi=11):
    region = np.zeros(base, dtype=bool)
    region[lo:hi, lo:hi] = True
    return RefinementSpec(base_shape=base, refine_regions=[region])


class TestValidation:
    def test_shape_mismatch(self):
        spec = RefinementSpec((16, 16), [np.zeros((8, 8), dtype=bool)])
        with pytest.raises(ValueError, match="shape"):
            build_multigrid(spec, D2Q9)

    def test_empty_region(self):
        spec = RefinementSpec((16, 16), [np.zeros((16, 16), dtype=bool)])
        with pytest.raises(ValueError, match="refines nothing"):
            build_multigrid(spec, D2Q9)

    def test_nesting_violation(self):
        r0 = np.zeros((8, 8), dtype=bool)
        r0[2:6, 2:6] = True
        r1 = np.zeros((16, 16), dtype=bool)
        r1[0:4, 0:4] = True  # outside the level-1 covered region
        spec = RefinementSpec((8, 8), [r0, r1])
        with pytest.raises(ValueError, match="nest"):
            build_multigrid(spec, D2Q9)

    def test_level_jump_violation(self):
        r0 = np.zeros((8, 8), dtype=bool)
        r0[2:6, 2:6] = True
        r1 = np.zeros((16, 16), dtype=bool)
        r1[4:12, 4:12] = True  # touches the level-0/1 interface
        spec = RefinementSpec((8, 8), [r0, r1])
        with pytest.raises(ValueError, match="jump|too close"):
            build_multigrid(spec, D2Q9)

    def test_ghost_children_violation(self):
        r0 = np.zeros((12, 12), dtype=bool)
        r0[2:10, 2:10] = True
        r1 = np.zeros((24, 24), dtype=bool)
        # passes the jump check (one covered cell of clearance) but lands
        # on the ghost layer's children: still illegal
        r1[5:18, 5:18] = True
        spec = RefinementSpec((12, 12), [r0, r1])
        with pytest.raises(ValueError, match="too close"):
            build_multigrid(spec, D2Q9)

    def test_three_levels_with_clearance(self):
        r0 = np.zeros((12, 12), dtype=bool)
        r0[2:10, 2:10] = True
        r1 = np.zeros((24, 24), dtype=bool)
        r1[8:16, 8:16] = True  # two level-1 cells clear of the interface
        spec = RefinementSpec((12, 12), [r0, r1])
        mg = build_multigrid(spec, D2Q9)
        assert mg.num_levels == 3

    def test_lattice_dimension_mismatch(self):
        with pytest.raises(ValueError, match="-D"):
            build_multigrid(two_level_2d(), D3Q19)

    def test_periodic_must_pair(self):
        bc = DomainBC({"x-": FaceBC("periodic")})
        with pytest.raises(ValueError, match="paired"):
            build_multigrid(two_level_2d(bc=bc), D2Q9)

    def test_unknown_face(self):
        bc = DomainBC({"z-": FaceBC("wall")})
        with pytest.raises(ValueError, match="unknown face"):
            build_multigrid(two_level_2d(bc=bc), D2Q9)

    def test_solid_needs_finest_shell(self):
        # solid adjacent to non-finest cells is rejected
        base = (16, 16)
        region = np.zeros(base, dtype=bool)
        region[:8, :] = True
        solid = np.zeros((32, 32), dtype=bool)
        solid[14:18, 14:18] = True  # straddles the interface
        spec = RefinementSpec(base, [region], solid=solid)
        with pytest.raises(ValueError, match="solid"):
            build_multigrid(spec, D2Q9)

    def test_moving_face_requires_velocity(self):
        with pytest.raises(ValueError, match="velocity"):
            FaceBC("moving")

    def test_unknown_face_kind(self):
        with pytest.raises(ValueError, match="unknown face BC"):
            FaceBC("zou-he")


class TestPartition:
    def test_levels_partition_space_2d(self):
        mg = build_multigrid(two_level_2d(), D2Q9)
        total = sum(lv.n_owned * 4 ** (mg.num_levels - 1 - lv.level)
                    for lv in mg.levels)
        assert total == 32 * 32  # finest-resolution cell count

    def test_levels_partition_space_3d_with_solid(self):
        sphere = Sphere((8.0, 8.0, 8.0), 2.0)
        base = (16, 16, 16)
        regions = shell_refinement(sphere, base, 2, [4.0])
        solid = voxelize(sphere, (32, 32, 32), 1)
        spec = RefinementSpec(base, regions, solid=solid)
        mg = build_multigrid(spec, D3Q19)
        total = sum(lv.n_owned * 8 ** (mg.num_levels - 1 - lv.level)
                    for lv in mg.levels)
        assert total == 32 ** 3 - solid.sum()

    def test_uniform_single_level(self):
        spec = RefinementSpec((12, 12))
        mg = build_multigrid(spec, D2Q9)
        assert mg.num_levels == 1
        assert mg.total_active() == 144
        lv = mg.levels[0]
        assert lv.n_ghost == 0
        assert lv.exp_q.size == 0 and lv.coal_q.size == 0

    def test_finest_first_distribution(self):
        mg = build_multigrid(two_level_2d(), D2Q9)
        dist = mg.finest_first_distribution()
        assert dist == list(reversed(mg.active_per_level()))


class TestInterfaceMaps:
    def test_explosion_sources_are_coarse_owned(self):
        mg = build_multigrid(two_level_2d(), D2Q9)
        fine = mg.levels[1]
        coarse = mg.levels[0]
        owned = set(coarse.owned_slots.tolist())
        assert fine.exp_q.size > 0
        assert set(fine.exp_src.tolist()) <= owned

    def test_explosion_source_is_parent_of_pull_position(self):
        mg = build_multigrid(two_level_2d(), D2Q9)
        fine, coarse = mg.levels[1], mg.levels[0]
        fine_pos = fine.grid.cell_positions()
        coarse_pos = coarse.grid.cell_positions()
        cells = fine.owned_slots[fine.exp_cell]
        src_pos = fine_pos[cells] - mg.lattice.e[fine.exp_q]
        assert np.array_equal(coarse_pos[fine.exp_src], src_pos // 2)

    def test_coalescence_sources_are_ghost_rows(self):
        mg = build_multigrid(two_level_2d(), D2Q9)
        coarse = mg.levels[0]
        assert coarse.coal_q.size > 0
        assert coarse.coal_src.min() >= 0
        assert coarse.coal_src.max() < coarse.n_ghost

    def test_accumulate_children_count(self):
        mg = build_multigrid(two_level_2d(), D2Q9)
        coarse = mg.levels[0]
        assert coarse.acc_fine_slots.size == coarse.n_ghost * 4
        # each ghost row receives exactly 2^d children
        counts = np.bincount(coarse.acc_ghost_rows, minlength=coarse.n_ghost)
        assert (counts == 4).all()

    def test_accumulate_children_are_true_children(self):
        mg = build_multigrid(two_level_2d(), D2Q9)
        coarse, fine = mg.levels[0], mg.levels[1]
        gpos = coarse.grid.cell_positions()[coarse.ghost_slots]
        cpos = fine.grid.cell_positions()[coarse.acc_fine_slots]
        parents = cpos // 2
        assert np.array_equal(parents, np.repeat(gpos, 4, axis=0))

    def test_fine_ghost_four_layers(self):
        mg = build_multigrid(center_patch_spec(), D2Q9)
        fine = mg.levels[1]
        assert fine.fine_ghost_slots.size > 0
        fpos = fine.grid.cell_positions()[fine.fine_ghost_slots]
        # fine-ghost cells lie outside the owned fine region (the centre
        # patch is [10, 22) at fine resolution) but within 4 cells of it
        inside = ((fpos >= 10) & (fpos < 22)).all(axis=1)
        assert not inside.any()
        assert ((fpos >= 6) & (fpos < 26)).all()

    def test_interface_cell_counts_positive(self):
        mg = build_multigrid(two_level_2d(), D2Q9)
        assert mg.levels[1].n_interface_fine > 0
        assert mg.levels[0].n_interface_coarse > 0


class TestBoundaryClassification:
    def test_cavity_kind_census(self):
        bc = DomainBC({"y+": FaceBC("moving", velocity=(0.05, 0.0))})
        mg = build_multigrid(two_level_2d(bc=bc), D2Q9)
        fine = mg.levels[1]
        assert fine.mov_q.size > 0      # lid links live on the fine level
        assert fine.bb_q.size > 0       # side/bottom walls
        coarse = mg.levels[0]
        assert coarse.bb_q.size == 0    # coarse region is interior only
        assert coarse.mov_q.size == 0

    def test_moving_term_value(self):
        lid = (0.05, 0.0)
        bc = DomainBC({"y+": FaceBC("moving", velocity=lid)})
        mg = build_multigrid(two_level_2d(bc=bc), D2Q9)
        fine = mg.levels[1]
        lat = mg.lattice
        expected = 2.0 * lat.w[fine.mov_q] * (lat.ef[fine.mov_q] @ np.asarray(lid)) / lat.cs2
        assert np.allclose(fine.mov_term, expected)

    def test_outflow_values_are_weights(self):
        bc = DomainBC({"x+": FaceBC("outflow")})
        mg = build_multigrid(two_level_2d(bc=bc), D2Q9)
        fine = mg.levels[1]
        assert fine.out_q.size > 0
        assert np.allclose(fine.out_val, mg.lattice.w[fine.out_q])

    def test_periodic_has_no_boundary_entries(self):
        bc = DomainBC({f: FaceBC("periodic") for f in ("x-", "x+", "y-", "y+")})
        mg = build_multigrid(center_patch_spec(), D2Q9)  # walls by default
        mg_p = build_multigrid(
            RefinementSpec((16, 16), [center_patch_spec().refine_regions[0]], bc=bc),
            D2Q9)
        assert mg.levels[0].bb_q.size > 0
        assert mg_p.levels[0].bb_q.size == 0
        assert (mg_p.levels[0].kind == kinds.INTERIOR).sum() > \
            (mg.levels[0].kind == kinds.INTERIOR).sum()

    def test_solid_classified_bounceback(self):
        sphere = Sphere((8.0, 8.0), 2.0)
        base = (16, 16)
        regions = shell_refinement(sphere, base, 2, [4.0])
        solid = voxelize(sphere, (32, 32), 1)
        spec = RefinementSpec(base, regions, solid=solid)
        mg = build_multigrid(spec, D2Q9)
        fine = mg.levels[1]
        assert (fine.kind == kinds.BOUNCEBACK).any()
        # solid cells themselves are not owned
        pos = fine.grid.cell_positions()[fine.owned_slots]
        assert not solid[tuple(pos.T)].any()

    def test_kind_matrix_consistency(self):
        bc = DomainBC({"x-": FaceBC("inlet", velocity=(0.04, 0.0)),
                       "x+": FaceBC("outflow")})
        mg = build_multigrid(two_level_2d(bc=bc), D2Q9)
        for lv in mg.levels:
            assert (lv.kind[lv.exp_q, lv.exp_cell] == kinds.EXPLOSION).all()
            assert (lv.kind[lv.coal_q, lv.coal_cell] == kinds.COALESCENCE).all()
            assert (lv.kind[lv.mov_q, lv.mov_cell] == kinds.MOVING).all()
            assert (lv.kind[lv.out_q, lv.out_cell] == kinds.OUTFLOW).all()
            assert (lv.kind[lv.bb_q, lv.bb_cell] == kinds.BOUNCEBACK).all()

"""Process-parallel backend suite: mp worker pool vs the in-process paths.

The contract under test extends the backend-parity one
(``tests/test_backend.py``) across a process boundary:

* mp execution is **bit-identical** to interpreted execution — every
  level's ``f``/``fstar``/``ghost_acc``, the recorded kernel trace and
  the step markers — across all fusion configs in 2D and 3D;
* a **dead worker** surfaces as a structured :class:`MpWorkerError`
  carrying the mid-step error contract (``kernel_span``), the pool
  respawns lazily, and :class:`ResilientRunner` rides the failure to a
  bit-identical finish (rollback-retry, then the mp → threaded ladder
  rung when strikes accumulate);
* ``$REPRO_BACKEND=mp`` selects the backend ambiently in a fresh
  process, exactly like the compiled backends (the spawn-mode smoke the
  CI leg relies on).
"""

import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.backend import (MpWorkerError, MultiprocessBackend,
                           available_backends, make_backend)
from repro.backend.mp import default_mp_workers
from repro.bench.workloads import lid_cavity
from repro.core.config import SimConfig
from repro.core.fusion import ABLATION_CONFIGS, ORIGINAL_BASELINE
from repro.core.simulation import Simulation
from repro.resilience import ResilientRunner, RetryPolicy

ALL_CONFIGS = (ORIGINAL_BASELINE,) + tuple(ABLATION_CONFIGS)


def cavity(dim="2d"):
    if dim == "2d":
        return lid_cavity(base=(16, 16), num_levels=2, lattice="D2Q9")
    return lid_cavity(base=(10, 10, 10), num_levels=2, lattice="D3Q19")


def build(wl, cfg, backend, **over):
    return Simulation.from_config(
        wl.spec, wl.sim_config(fusion=cfg), backend=backend,
        threaded=False, mp_workers=2, **over)


def states(sim):
    return [(b.f.copy(), b.fstar.copy(), b.ghost_acc.copy())
            for b in sim.engine.levels]


def assert_bit_identical(a, b):
    names = ("f", "fstar", "gacc")
    for lv, (sa, sb) in enumerate(zip(a, b)):
        for name, xa, xb in zip(names, sa, sb):
            assert np.array_equal(xa, xb), f"{name}@{lv} diverged"


class TestRegistry:
    def test_mp_backend_registered(self):
        assert "mp" in available_backends()
        assert isinstance(make_backend("mp"), MultiprocessBackend)

    def test_mp_workers_validation(self):
        with pytest.raises(ValueError):
            SimConfig(lattice="D2Q9", viscosity=0.05, mp_workers=0)

    def test_configure_reads_sim_config(self):
        be = MultiprocessBackend()
        be.configure(SimConfig(lattice="D2Q9", viscosity=0.05, mp_workers=3))
        assert be.workers == 3

    def test_default_worker_count_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_WORKERS", "5")
        assert default_mp_workers() == 5


class TestBitIdentity:
    """Pool replay must be bitwise equal to in-process interpretation."""

    @pytest.mark.parametrize("dim", ["2d", "3d"])
    @pytest.mark.parametrize("cfg", ALL_CONFIGS, ids=lambda c: c.name)
    def test_full_state_and_trace(self, dim, cfg):
        wl = cavity(dim)
        si = build(wl, cfg, "interpreted")
        si.run(3)
        with build(wl, cfg, "mp") as sm:
            sm.run(3)
            assert_bit_identical(states(si), states(sm))
            assert si.runtime.records == sm.runtime.records
            assert si.runtime.markers == sm.runtime.markers
            assert sm.backend.stats["plan_fallback_steps"] == 0
            assert sm.backend.stats["mp_steps"] == 3

    def test_close_releases_pool_and_respawns_lazily(self):
        wl = cavity()
        sm = build(wl, ALL_CONFIGS[-1], "mp")
        sm.run(2)
        sm.close()
        assert not sm.backend._procs
        assert sm.backend._shm is None
        # The simulation stays usable after close(): the next step
        # rebuilds the arena and respawns the pool on demand.
        sm.step()
        assert sm.steps_done == 3
        assert sm.backend._procs
        sm.close()


class TestWorkerDeath:
    def test_dead_worker_raises_structured_error(self):
        wl = cavity()
        with build(wl, ALL_CONFIGS[-1], "mp") as sm:
            sm.run(1)
            sm.backend._procs[0].kill()
            with pytest.raises(MpWorkerError) as exc:
                sm.step()
            assert hasattr(exc.value, "kernel_span")
            assert sm.backend.stats["mp_worker_restarts"] == 1
            # Trace contract: the aborted step left no partial records.
            assert len(sm.runtime.markers) == 1
            assert len(sm.runtime.records) == sm.runtime.markers[-1]
            # The pool respawns lazily and stepping resumes.
            sm.step()
            assert sm.steps_done == 2


def cavity_spec():
    from repro.grid.geometry import wall_refinement
    from repro.grid.multigrid import DomainBC, FaceBC, RefinementSpec
    base = (16, 16)
    bc = DomainBC({"y+": FaceBC("moving", velocity=(0.06, 0.0))})
    return RefinementSpec(base, wall_refinement(base, 2, [3.0]), bc=bc)


def mp_config(**overrides):
    kw = dict(backend="mp", mp_workers=2, threaded=False)
    kw.update(overrides)
    return SimConfig(lattice="D2Q9", viscosity=0.05, **kw)


class TestResilience:
    def test_runner_recovers_worker_kill_bit_identically(self):
        spec = cavity_spec()
        with Simulation.from_config(
                spec, mp_config(backend="interpreted")) as ref:
            ref.run(4)
            expect = states(ref)
        runner = ResilientRunner(spec, mp_config(),
                                 policy=RetryPolicy(checkpoint_every=2))
        with runner:
            assert runner.mode == "mp"
            runner.run(2)
            runner.sim.backend._procs[0].kill()
            report = runner.run(2).report
            assert report.final_step == 4
            assert report.outcome == "ok"
            assert report.retries >= 1
            assert report.failures[0]["kind"] == "worker"
            assert runner.mode == "mp"
            assert_bit_identical(expect, states(runner.sim))

    def test_repeated_worker_failures_degrade_to_threaded(self):
        runner = ResilientRunner(
            cavity_spec(), mp_config(),
            policy=RetryPolicy(checkpoint_every=2, max_retries=5,
                               executor_failures_before_serial=2))
        with runner:
            def doomed_step(stepper):
                raise MpWorkerError("injected pool failure")

            runner.sim.backend.step = doomed_step
            report = runner.run(2).report
            assert [d["rung"] for d in report.degradations] == ["threaded"]
            assert runner.mode == "threaded"
            assert report.final_step == 2
            assert report.outcome == "degraded"


class TestSpawnEnv:
    def test_ambient_backend_selection(self, tmp_path):
        # A real script file: multiprocessing's spawn start method must
        # be able to re-import the main module in the workers.
        script = tmp_path / "mp_env_smoke.py"
        script.write_text(textwrap.dedent("""\
            from repro.bench.workloads import lid_cavity
            from repro.core.simulation import Simulation

            # The guard is load-bearing: spawned workers re-run this
            # module's top level under __name__ == "__mp_main__".
            if __name__ == "__main__":
                wl = lid_cavity(base=(12, 12), num_levels=2,
                                lattice="D2Q9")
                with Simulation.from_config(
                        wl.spec,
                        wl.sim_config(fusion="ours-4f", threaded=False,
                                      mp_workers=2)) as sim:
                    assert sim.backend.name == "mp", sim.backend.name
                    sim.run(1)
                    assert sim.backend.stats["mp_steps"] == 1
                    assert sim.backend.stats["plan_fallback_steps"] == 0
                print("MP-ENV-OK")
        """))
        env = dict(os.environ, REPRO_BACKEND="mp")
        env.setdefault("PYTHONPATH", "")
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env["PYTHONPATH"]
        out = subprocess.run([sys.executable, str(script)], env=env,
                             capture_output=True, text=True, timeout=180)
        assert out.returncode == 0, out.stderr
        assert "MP-ENV-OK" in out.stdout

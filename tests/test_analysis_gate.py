"""CI gate: the analysis linter must stay green on every configuration.

This mirrors the ``python -m repro.analysis --all-configs`` job in
``.github/workflows/ci.yml`` so the gate also runs wherever only pytest
is available.  The ruff/mypy checks piggyback here too, skipping
gracefully when the tools are not installed.
"""

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import ALL_CONFIGS, lint_config, main, small_workloads

REPO = Path(__file__).resolve().parents[1]


@pytest.mark.parametrize("workload", sorted(small_workloads()))
@pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: c.name)
def test_config_is_clean(config, workload):
    rep = lint_config(config, workload)
    assert rep["findings"] == []
    assert rep["races"] == []
    assert rep["refined_races"] == []
    assert rep["stable"]


def test_cli_all_configs_exits_zero(capsys):
    assert main(["--all-configs", "--workload", "cavity2d-2lvl"]) == 0
    out = capsys.readouterr().out
    assert "0 problem(s)" in out
    assert out.count("[OK]") == len(ALL_CONFIGS)


def test_ruff_clean():
    if shutil.which("ruff") is None:
        pytest.skip("ruff not installed")
    proc = subprocess.run(["ruff", "check", "src", "tests"],
                          cwd=REPO, capture_output=True, text=True)
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_mypy_clean():
    if shutil.which("mypy") is None:
        pytest.skip("mypy not installed")
    proc = subprocess.run([sys.executable, "-m", "mypy"],
                          cwd=REPO, capture_output=True, text=True)
    assert proc.returncode == 0, proc.stdout + proc.stderr

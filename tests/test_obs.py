"""Observability layer: spans, Perfetto export, metrics, watchdog, CLI."""

import json

import numpy as np
import pytest

from repro.bench.harness import Measurement
from repro.bench.workloads import lid_cavity
from repro.core.fusion import FUSED_FULL, MODIFIED_BASELINE
from repro.core.simulation import Simulation
from repro.gpu.costmodel import TraceCost
from repro.gpu.device import A100_40GB
from repro.grid.geometry import wall_refinement
from repro.grid.multigrid import DomainBC, FaceBC, RefinementSpec
from repro.neon.runtime import Runtime
from repro.obs import (HealthWatchdog, MetricsRegistry, SimulationDiverged,
                       SpanRecorder, chrome_trace, run_metrics, validate_trace,
                       write_bench_json)
from repro.obs.cli import main as obs_main


def small_sim(config=FUSED_FULL, runtime=None):
    wl = lid_cavity(base=(20, 20), num_levels=2, lattice="D2Q9")
    return Simulation(wl.spec, wl.lattice, wl.collision,
                      viscosity=wl.viscosity, config=config, runtime=runtime)


def golden_sim(config):
    """The Fig. 2 golden setup (29 baseline / 10 fused kernels per step)."""
    base = (24, 24)
    bc = DomainBC({"y+": FaceBC("moving", velocity=(0.05, 0.0))})
    spec = RefinementSpec(base, wall_refinement(base, 3, [7.0, 2.0]), bc=bc)
    return Simulation(spec, "D2Q9", "bgk", viscosity=0.05, config=config)


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("launches").inc()
        reg.counter("launches").inc(4)
        reg.gauge("mlups").set(123.5)
        h = reg.histogram("dur")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        assert reg["launches"].value == 5
        assert reg["mlups"].value == 123.5
        assert h.count == 3 and h.min == 1.0 and h.max == 3.0
        assert h.mean == pytest.approx(2.0)

    def test_counter_never_decreases(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_snapshot_series(self):
        reg = MetricsRegistry()
        g = reg.gauge("cells")
        for step in range(3):
            g.set(step * 10)
            reg.snapshot(step=step)
        assert len(reg.snapshots) == 3
        assert reg.snapshots[2]["labels"] == {"step": 2}
        assert reg.snapshots[2]["metrics"]["cells"]["value"] == 20
        json.loads(reg.to_json())  # serializable

    def test_write_bench_json(self, tmp_path):
        path = write_bench_json("unit", {"speedup": 2.0}, out_dir=str(tmp_path))
        data = json.loads((tmp_path / "BENCH_unit.json").read_text())
        assert path.endswith("BENCH_unit.json")
        assert data == {"bench": "unit", "speedup": 2.0}


class TestSpanRecorder:
    def test_spans_default_off(self):
        sim = small_sim()
        sim.run(1)
        assert sim.runtime.spans is None  # opt-in: hot path untouched

    def test_one_span_per_launch(self):
        sim = small_sim()
        rec = sim.enable_tracing()
        sim.run(2)
        assert len(rec.kernel_spans) == len(sim.runtime.records)
        assert len(rec.step_spans) == 2
        assert all(s.dur_us >= 0 for s in rec.kernel_spans)
        assert rec.total_us() > 0
        for span in rec.kernel_spans:
            assert span.record is sim.runtime.records[span.index]

    def test_step_spans_partition_records(self):
        sim = small_sim()
        rec = sim.enable_tracing()
        sim.run(3)
        bounds = [(s.start_record, s.end_record) for s in rec.step_spans]
        assert bounds[0][0] == 0
        assert all(a[1] == b[0] for a, b in zip(bounds, bounds[1:]))
        assert bounds[-1][1] == len(sim.runtime.records)

    def test_level_runs_cover_all_kernels(self):
        sim = golden_sim(FUSED_FULL)
        rec = sim.enable_tracing()
        sim.run(2)
        runs = rec.level_runs()
        covered = sum(r.end_record - r.start_record for r in runs)
        assert covered == len(sim.runtime.records)
        # runs are single-level and nest inside their step's record range
        for r in runs:
            step = rec.step_spans[r.step]
            assert step.start_record <= r.start_record < r.end_record \
                <= step.end_record
            levels = {sim.runtime.records[i].level
                      for i in range(r.start_record, r.end_record)}
            assert levels == {r.level}

    def test_disable_and_reset(self):
        sim = small_sim()
        rec = sim.enable_tracing()
        sim.run(1)
        sim.runtime.reset()
        assert rec.kernel_spans == [] and rec.step_spans == []
        sim.disable_tracing()
        sim.run(1)
        assert rec.kernel_spans == []

    def test_spans_do_not_perturb_capture_or_results(self):
        """Analysis gate stays green with span hooks installed."""
        from repro.analysis.races import detect_races
        from repro.analysis.verify import verify_trace
        from repro.neon.graph import build_dependency_graph, schedule_waves

        rt = Runtime()
        SpanRecorder().install(rt)
        rt.capture_start()
        sim = small_sim(runtime=rt)
        sim.run(2)
        captured = rt.capture_stop()
        findings = verify_trace(rt.records, captured)
        waves = schedule_waves(build_dependency_graph(rt.records, reduce=False))
        races = detect_races(rt.records, captured, waves)
        assert findings == [] and races == []
        assert len(rt.spans.kernel_spans) == len(rt.records)

        # and the functional result is bit-identical with spans on
        plain = small_sim()
        plain.run(2)
        for lv in range(sim.num_levels):
            np.testing.assert_array_equal(
                sim.engine.levels[lv].f, plain.engine.levels[lv].f)


class TestChromeTrace:
    @pytest.fixture(scope="class")
    def traced(self):
        out = {}
        for name, cfg in (("base", MODIFIED_BASELINE), ("ours", FUSED_FULL)):
            sim = golden_sim(cfg)
            rec = sim.enable_tracing()
            sim.run(2)
            out[name] = (sim, rec)
        return out

    def test_round_trip_and_slice_per_record(self, traced):
        for sim, rec in traced.values():
            trace = json.loads(json.dumps(chrome_trace(rec)))
            assert validate_trace(trace, len(sim.runtime.records)) == []
            slices = [e for e in trace["traceEvents"]
                      if e.get("cat") == "kernel"]
            assert len(slices) == len(sim.runtime.records)
            by_index = {e["args"]["index"] for e in slices}
            assert by_index == set(range(len(sim.runtime.records)))

    def test_fig2_golden_slices_per_step(self, traced):
        def per_step(rec):
            trace = chrome_trace(rec)
            counts = {}
            for e in trace["traceEvents"]:
                if e.get("cat") == "kernel":
                    counts[e["args"]["step"]] = counts.get(e["args"]["step"], 0) + 1
            return counts
        assert per_step(traced["base"][1]) == {0: 29, 1: 29}
        assert per_step(traced["ours"][1]) == {0: 10, 1: 10}

    def test_slice_names_match_records(self, traced):
        sim, rec = traced["ours"]
        trace = chrome_trace(rec)
        for e in trace["traceEvents"]:
            if e.get("cat") == "kernel":
                r = sim.runtime.records[e["args"]["index"]]
                assert e["name"] == f"{r.name}{r.level}"

    def test_predicted_track_present(self, traced):
        _, rec = traced["ours"]
        trace = chrome_trace(rec)
        predicted = [e for e in trace["traceEvents"]
                     if e.get("cat") == "kernel-predicted"]
        observed = [e for e in trace["traceEvents"] if e.get("cat") == "kernel"]
        assert len(predicted) == len(observed)
        assert all(e["pid"] != observed[0]["pid"] for e in predicted)
        assert all(e["dur"] > 0 for e in predicted)
        # observed slices carry the skew vs the model
        assert all("predicted_us" in e["args"] for e in observed)

    def test_step_and_level_tracks(self, traced):
        _, rec = traced["ours"]
        trace = chrome_trace(rec)
        steps = [e for e in trace["traceEvents"] if e.get("cat") == "step"]
        levels = [e for e in trace["traceEvents"] if e.get("cat") == "level"]
        assert len(steps) == 2
        assert {e["args"]["level"] for e in levels} == {0, 1, 2}

    def test_streams_follow_wave_schedule(self, traced):
        _, rec = traced["base"]
        trace = chrome_trace(rec)
        slices = [e for e in trace["traceEvents"] if e.get("cat") == "kernel"]
        # the baseline schedule has real concurrency: >1 stream in use
        assert len({e["args"]["stream"] for e in slices}) >= 2
        # kernels sharing (step, wave) never share a stream
        seen = set()
        for e in slices:
            key = (e["args"]["step"], e["args"]["wave"], e["args"]["stream"])
            assert key not in seen
            seen.add(key)


class TestRunMetrics:
    def test_standard_metrics_published(self):
        sim = golden_sim(FUSED_FULL)
        rec = sim.enable_tracing()
        sim.run(2)
        reg = run_metrics(sim, recorder=rec)
        assert reg["kernels_per_step"].value == pytest.approx(10.0)
        assert reg["steps_total"].value == 2
        assert reg["bytes_per_step"].value > 0
        assert reg["atomic_bytes_total"].value > 0
        assert "active_cells.L2" in reg
        assert reg["wave_depth"].value > 0
        assert reg["kernel_wall_us"].count == len(sim.runtime.records)

    def test_steps_from_trace_not_steps_done(self):
        """After a warmup + reset, per-step metrics divide by traced steps."""
        sim = golden_sim(FUSED_FULL)
        sim.run(3)       # warmup
        sim.runtime.reset()
        sim.run(2)
        reg = run_metrics(sim)
        assert reg["steps_total"].value == 2
        assert reg["kernels_per_step"].value == pytest.approx(10.0)


class TestMeasurementGuards:
    def make(self, steps):
        cost = TraceCost(total_us=10.0, launch_us=1.0, mem_us=9.0, kernels=7,
                         bytes_total=1000, device=A100_40GB)
        return Measurement(workload="w", config="c", steps=steps,
                           active_per_level=[10], wall_seconds=0.0,
                           wall_mlups=0.0, trace=[], cost=cost, sim_mlups=0.0)

    def test_zero_steps_is_not_an_error(self):
        m = self.make(0)
        assert m.kernels_per_step == 0.0
        assert m.bytes_per_step == 0.0
        json.dumps(m.summary())  # serializable digest

    def test_nonzero_steps_unchanged(self):
        m = self.make(2)
        assert m.kernels_per_step == pytest.approx(3.5)
        assert m.bytes_per_step == pytest.approx(500.0)


class TestWatchdog:
    def test_healthy_run_reports_ok(self):
        sim = small_sim()
        wd = HealthWatchdog(sim, every=2)
        sim.run(4, callback=wd.callback)
        assert wd.checks_run == 2  # cadence honoured
        assert wd.last_report["status"] == "ok"
        assert wd.last_report["levels"][0]["rho_max"] >= 1.0

    def test_nan_in_fstar_mid_run_fires_with_level_and_step(self):
        sim = small_sim()
        sim.enable_tracing()
        wd = HealthWatchdog(sim, every=1, last_n_spans=4)

        def sabotage_then_check(stepper):
            if stepper.steps_done == 2:
                sim.engine.levels[1].fstar[0, 5] = np.nan
            wd.callback(stepper)

        with pytest.raises(SimulationDiverged) as exc:
            sim.run(4, callback=sabotage_then_check)
        p = exc.value.payload
        assert exc.value.level == 1 and p["level"] == 1
        assert exc.value.step == 2 and p["step"] == 2
        assert p["field"] == "fstar" and p["reason"] == "non-finite"
        assert p["cells"] == [5]
        assert len(p["spans"]) == 4          # diagnostic dump of last spans
        assert p["positions"]                # offending cell coordinates

    def test_inf_in_f_propagates_and_fires(self):
        sim = small_sim()
        wd = HealthWatchdog(sim)
        sim.run(1, callback=wd.callback)
        sim.engine.levels[0].f[3, 7] = np.inf
        with pytest.raises(SimulationDiverged) as exc:
            with np.errstate(invalid="ignore", over="ignore"):
                sim.run(3, callback=wd.callback)
        assert exc.value.reason == "non-finite"

    def test_density_bounds(self):
        sim = small_sim()
        sim.run(1)
        wd = HealthWatchdog(sim, rho_bounds=(0.9, 1.1))
        buf = sim.engine.levels[0]
        buf.f[:, :buf.n_owned] *= 2.0        # rho ~ 2 everywhere
        with pytest.raises(SimulationDiverged) as exc:
            wd.check()
        assert exc.value.reason == "density-bounds"
        assert exc.value.payload["field"] == "rho"
        assert all(v == pytest.approx(2.0, rel=0.1)
                   for v in exc.value.payload["values"])

    def test_velocity_bound(self):
        sim = small_sim()
        sim.run(1)
        wd = HealthWatchdog(sim, max_velocity=1e-9)
        with pytest.raises(SimulationDiverged) as exc:
            wd.check()
        assert exc.value.reason == "velocity-bound"

    def test_registry_integration(self):
        reg = MetricsRegistry()
        sim = small_sim()
        wd = HealthWatchdog(sim, registry=reg)
        sim.run(2, callback=wd.callback)
        assert reg["watchdog_checks"].value == 2
        assert "rho_max.L0" in reg and "u_max.L1" in reg

    def test_bad_cadence_rejected(self):
        with pytest.raises(ValueError):
            HealthWatchdog(small_sim(), every=0)


class TestObsCli:
    def test_smoke_cavity2d_2lvl(self, tmp_path, capsys):
        rc = obs_main(["--workload", "cavity2d-2lvl", "--config", "case",
                       "--steps", "2", "--out", str(tmp_path)])
        assert rc == 0
        trace = json.loads(
            (tmp_path / "trace_cavity2d-2lvl_ours-4f.json").read_text())
        metrics = json.loads(
            (tmp_path / "metrics_cavity2d-2lvl_ours-4f.json").read_text())
        assert validate_trace(trace, metrics["n_records"]) == []
        assert metrics["watchdog"]["status"] == "ok"
        assert "wall_mlups" in metrics["metrics"]["metrics"]
        assert "trace OK" in capsys.readouterr().out

    def test_golden_kernel_counts_by_config(self, tmp_path, capsys):
        for alias, expect in (("case", 10), ("baseline", 29)):
            rc = obs_main(["--workload", "cavity2d", "--config", alias,
                           "--steps", "2", "--out", str(tmp_path)])
            assert rc == 0
            out = capsys.readouterr().out
            assert f"kernels/step : {expect:.1f}" in out

    def test_unknown_config_errors(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            obs_main(["--config", "nope", "--out", str(tmp_path)])
        assert exc.value.code == 2

"""Two-relaxation-time collision operator."""

import numpy as np
import pytest

from repro.core.collision import BGK, TRT, equilibrium, macroscopics, make_collision
from repro.core.lattice import D2Q9, D3Q19, D3Q27
from repro.core.simulation import Simulation
from repro.grid.multigrid import DomainBC, FaceBC, RefinementSpec
from repro.validation.analytic import poiseuille_profile

RNG = np.random.default_rng(9)
PERIODIC_X = DomainBC({"x-": FaceBC("periodic"), "x+": FaceBC("periodic")})


def random_state(lat, n=40):
    rho = 1.0 + 0.03 * RNG.standard_normal(n)
    u = 0.03 * RNG.standard_normal((lat.d, n))
    feq = equilibrium(lat, rho, u)
    return feq * (1.0 + 0.01 * RNG.standard_normal(feq.shape))


@pytest.mark.parametrize("lat", [D2Q9, D3Q19, D3Q27], ids=lambda l: l.name)
class TestTRT:
    def test_conserves_invariants(self, lat):
        f = random_state(lat)
        out = TRT(lat).collide(f, 1.4)
        assert np.allclose(out.sum(axis=0), f.sum(axis=0), rtol=1e-12)
        assert np.allclose(lat.ef.T @ out, lat.ef.T @ f, atol=1e-13)

    def test_equilibrium_fixed_point(self, lat):
        feq = equilibrium(lat, np.ones(6), 0.02 * RNG.standard_normal((lat.d, 6)))
        out = TRT(lat).collide(feq, 1.7)
        assert np.allclose(out, feq, atol=1e-13)

    def test_reduces_to_bgk_at_magic_quarter(self, lat):
        # Lambda = (1/w - 1/2)^2  <=>  omega_minus == omega == BGK
        omega = 1.3
        lam = (1.0 / omega - 0.5) ** 2
        f = random_state(lat)
        out_trt = TRT(lat, magic=lam).collide(f, omega)
        out_bgk = BGK(lat).collide(f, omega)
        assert np.allclose(out_trt, out_bgk, atol=1e-13)

    def test_omega_minus_in_stable_range(self, lat):
        trt = TRT(lat)
        for omega in np.linspace(0.1, 1.99, 25):
            assert 0.0 < trt.omega_minus(omega) < 2.0


def test_magic_validation():
    with pytest.raises(ValueError):
        TRT(D2Q9, magic=0.0)


def test_factory():
    assert make_collision("trt", D2Q9).name == "TRT"


class TestTRTPhysics:
    def test_poiseuille_wall_placement_beats_bgk(self):
        # the magic parameter 3/16 makes the channel profile grid-exact;
        # compare max deviation against BGK at an omega where BGK's wall
        # slip error is visible
        H, g = 10, 1e-5
        nu = 0.02  # omega ~ 1.79: large BGK wall-slip error regime
        errs = {}
        for model in ("bgk", "trt"):
            spec = RefinementSpec((H, H), bc=PERIODIC_X)
            sim = Simulation(spec, "D2Q9", model, viscosity=nu, force=(g, 0.0))
            sim.run(3000)
            _, u = sim.macroscopics(0)
            y = sim.positions(0)[:, 1] + 0.5
            u_max = g * H * H / (8.0 * nu)
            exact = poiseuille_profile(y, float(H), u_max)
            errs[model] = np.abs(u[0] - exact).max() / u_max
        assert errs["trt"] < errs["bgk"]
        assert errs["trt"] < 0.02

    def test_refined_cavity_with_trt_stable(self):
        from repro.grid.geometry import wall_refinement
        bc = DomainBC({"y+": FaceBC("moving", velocity=(0.08, 0.0))})
        spec = RefinementSpec((16, 16), wall_refinement((16, 16), 2, [3.0]), bc=bc)
        sim = Simulation(spec, "D2Q9", "trt", viscosity=0.02)
        sim.run(60)
        assert sim.is_stable()

    def test_all_variants_identical_with_trt(self):
        from repro.core.fusion import ABLATION_CONFIGS
        from repro.grid.geometry import wall_refinement
        bc = DomainBC({"y+": FaceBC("moving", velocity=(0.05, 0.0))})
        spec = RefinementSpec((16, 16), wall_refinement((16, 16), 2, [3.0]), bc=bc)
        ref = None
        for cfg in (ABLATION_CONFIGS[0], ABLATION_CONFIGS[-1]):
            sim = Simulation(spec, "D2Q9", "trt", viscosity=0.05, config=cfg)
            sim.run(5)
            state = np.concatenate([b.f[:, :b.n_owned].ravel()
                                    for b in sim.engine.levels])
            if ref is None:
                ref = state
            else:
                assert np.array_equal(state, ref)

"""High-level Simulation facade and the MLUPS metric."""

import numpy as np
import pytest

from repro.core.fusion import FUSED_FULL
from repro.core.simulation import Simulation, mlups
from repro.grid.geometry import wall_refinement
from repro.grid.multigrid import DomainBC, FaceBC, RefinementSpec


def spec_2d():
    bc = DomainBC({"y+": FaceBC("moving", velocity=(0.05, 0.0))})
    return RefinementSpec((16, 16), wall_refinement((16, 16), 2, [3.0]), bc=bc)


class TestConstruction:
    def test_exactly_one_relaxation_spec(self):
        with pytest.raises(ValueError):
            Simulation(spec_2d(), "D2Q9", "bgk")
        with pytest.raises(ValueError):
            Simulation(spec_2d(), "D2Q9", "bgk", viscosity=0.1, omega0=1.0)

    def test_lattice_by_name_or_object(self):
        from repro.core.lattice import D2Q9
        a = Simulation(spec_2d(), "d2q9", "bgk", viscosity=0.1)
        b = Simulation(spec_2d(), D2Q9, "bgk", viscosity=0.1)
        assert a.lattice is b.lattice

    def test_collision_object(self):
        from repro.core.collision import BGK
        from repro.core.lattice import D2Q9
        sim = Simulation(spec_2d(), "D2Q9", BGK(D2Q9), viscosity=0.1)
        assert sim.engine.collision.name == "BGK"

    def test_collision_lattice_mismatch(self):
        from repro.core.collision import BGK
        from repro.core.lattice import D3Q19
        with pytest.raises(ValueError):
            Simulation(spec_2d(), "D2Q9", BGK(D3Q19), viscosity=0.1)

    def test_default_config_is_fused(self):
        sim = Simulation(spec_2d(), "D2Q9", "bgk", viscosity=0.1)
        assert sim.stepper.config is FUSED_FULL


class TestRun:
    def test_step_counting(self):
        sim = Simulation(spec_2d(), "D2Q9", "bgk", viscosity=0.1)
        sim.run(3)
        sim.step()
        assert sim.steps_done == 4

    def test_run_returns_structured_result(self):
        sim = Simulation(spec_2d(), "D2Q9", "bgk", viscosity=0.1)
        res = sim.run(2)
        assert res.steps == 2 and res.final_step == 2
        assert res.seconds > 0
        assert float(res) == res.seconds  # numeric shim for old callers
        assert sim.elapsed >= res.seconds
        assert res.backend == sim.backend.name
        assert res.mode == sim.mode
        assert res.mlups > 0
        assert res.report is None and res.outcome == "ok"
        d = res.as_dict()
        assert d["steps"] == 2 and d["report"] is None

    def test_callback_cadence(self):
        sim = Simulation(spec_2d(), "D2Q9", "bgk", viscosity=0.1)
        hits = []
        sim.run(6, callback=lambda s: hits.append(s.steps_done), callback_every=2)
        assert hits == [2, 4, 6]

    def test_initialize_resets(self):
        sim = Simulation(spec_2d(), "D2Q9", "bgk", viscosity=0.1)
        sim.run(3)
        sim.initialize()
        assert sim.steps_done == 0 and sim.elapsed == 0.0
        assert np.allclose(sim.engine.total_momentum(), 0.0, atol=1e-12)


class TestObservables:
    def test_wallclock_mlups(self):
        sim = Simulation(spec_2d(), "D2Q9", "bgk", viscosity=0.1)
        sim.run(5)
        m = sim.wallclock_mlups()
        expected_updates = sum(v * 2 ** lv for lv, v in
                               enumerate(sim.mgrid.active_per_level())) * 5
        assert m == pytest.approx(expected_updates / (sim.elapsed * 1e6))

    def test_is_stable_detects_nan(self):
        sim = Simulation(spec_2d(), "D2Q9", "bgk", viscosity=0.1)
        assert sim.is_stable()
        sim.engine.levels[0].f[0, 0] = np.nan
        assert not sim.is_stable()

    def test_max_velocity_at_rest(self):
        sim = Simulation(spec_2d(), "D2Q9", "bgk", viscosity=0.1)
        assert sim.max_velocity() == pytest.approx(0.0, abs=1e-12)

    def test_positions_in_level_units(self):
        sim = Simulation(spec_2d(), "D2Q9", "bgk", viscosity=0.1)
        # the fine level hugs the walls, so it reaches the box edge (31 at
        # fine resolution); the coarse level owns only the interior
        assert sim.positions(1).max() == 31
        assert 8 <= sim.positions(0).max() < 16


class TestMlupsFormula:
    def test_paper_formula(self):
        # MLUPS = sum_L V_L 2^L N / T_us
        assert mlups([100, 200], 10, 1.0) == pytest.approx(
            (100 * 1 + 200 * 2) * 10 / 1e6)

    def test_rejects_zero_time(self):
        with pytest.raises(ValueError):
            mlups([10], 1, 0.0)


class TestCloseIdempotency:
    """close() must be safe from finally-paths and double-shutdown."""

    def _sim(self, **overrides):
        from repro.core.config import SimConfig
        cfg = SimConfig(lattice="D2Q9", viscosity=0.1, **overrides)
        return Simulation.from_config(spec_2d(), cfg)

    def test_double_close_serial(self):
        sim = self._sim(threaded=False)
        sim.run(1)
        sim.close()
        sim.close()  # regression: second close must be a no-op

    def test_double_close_threaded(self):
        sim = self._sim(threaded=True)
        sim.run(1)
        sim.close()
        sim.close()
        assert sim.executor is None

    def test_double_close_mp(self):
        sim = self._sim(backend="mp", mp_workers=2, threaded=False)
        try:
            sim.run(1)
        finally:
            sim.close()
            sim.close()  # arena/pool teardown must tolerate repeats

    def test_close_then_run_then_close_again(self):
        sim = self._sim(threaded=False)
        sim.run(1)
        sim.close()
        sim.run(1)   # simulation stays usable after close
        sim.close()
        assert sim.steps_done == 2

    def test_close_on_partially_built_simulation(self):
        # A simulation whose _build failed must still close() cleanly
        # from a caller's finally path.
        sim = Simulation.__new__(Simulation)
        sim.close()

    def test_resilient_runner_double_close(self):
        from repro.resilience import ResilientRunner, RetryPolicy
        from repro.core.config import SimConfig
        runner = ResilientRunner(spec_2d(),
                                 SimConfig(lattice="D2Q9", viscosity=0.1,
                                           threaded=False),
                                 policy=RetryPolicy(checkpoint_every=2))
        runner.run(2)
        runner.close()
        runner.close()

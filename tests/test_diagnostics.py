"""Free-slip boundaries, obstacle forces and checkpointing."""

import numpy as np
import pytest

from repro.core.diagnostics import (drag_coefficient, enstrophy_2d, kinetic_energy,
                                    solid_force)
from repro.core.simulation import Simulation
from repro.grid import kinds
from repro.grid.geometry import Sphere, shell_refinement, voxelize
from repro.grid.multigrid import DomainBC, FaceBC, RefinementSpec
from repro.io.checkpoint import restore_checkpoint, save_checkpoint


def sphere_spec(radius=1.6):
    sphere = Sphere((6.0, 5.0, 5.0), radius)
    base = (14, 10, 10)
    regions = shell_refinement(sphere, base, 2, [3.2])
    solid = voxelize(sphere, (28, 20, 20), 1)
    bc = DomainBC({"x-": FaceBC("inlet", velocity=(0.05, 0.0, 0.0)),
                   "x+": FaceBC("outflow")})
    return RefinementSpec(base, regions, solid=solid, bc=bc), sphere


class TestSlipBoundary:
    def channel(self, top_kind):
        bc = DomainBC({"x-": FaceBC("periodic"), "x+": FaceBC("periodic"),
                       "y-": FaceBC(top_kind) if top_kind == "slip" else FaceBC("wall"),
                       "y+": FaceBC(top_kind)})
        spec = RefinementSpec((12, 12), bc=bc)
        sim = Simulation(spec, "D2Q9", "bgk", viscosity=0.1)
        return sim

    def test_classification_contains_slip(self):
        sim = self.channel("slip")
        lv = sim.engine.mgrid.levels[0]
        assert lv.sl_q.size > 0
        assert (lv.kind == kinds.SLIP).any()

    def test_plug_flow_preserved_exactly(self):
        # free-slip walls exert no tangential stress: a uniform stream
        # through a slip channel must persist to machine precision
        bc = DomainBC({"x-": FaceBC("periodic"), "x+": FaceBC("periodic"),
                       "y-": FaceBC("slip"), "y+": FaceBC("slip")})
        spec = RefinementSpec((12, 12), bc=bc)
        sim = Simulation(spec, "D2Q9", "bgk", viscosity=0.1)
        sim.initialize(u=np.array([0.04, 0.0]))
        sim.run(20)
        _, u = sim.macroscopics(0)
        assert np.abs(u[0] - 0.04).max() < 1e-13
        assert np.abs(u[1]).max() < 1e-13

    def test_noslip_decays_plug_flow(self):
        sim = self.channel("wall")
        sim.initialize(u=np.array([0.04, 0.0]))
        sim.run(20)
        _, u = sim.macroscopics(0)
        assert u[0].min() < 0.035  # boundary layer developed

    def test_slip_conserves_mass(self):
        sim = self.channel("slip")
        sim.initialize(u=np.array([0.03, 0.01]))
        m0 = sim.engine.total_mass()
        sim.run(30)
        assert sim.engine.total_mass() == pytest.approx(m0, rel=1e-12)

    def test_slip_reflects_normal_momentum(self):
        # normal velocity flips at the plane: a vertical stream in a
        # slip-walled closed box keeps |u| but reverses u_y over time
        bc = DomainBC({"y-": FaceBC("slip"), "y+": FaceBC("slip"),
                       "x-": FaceBC("periodic"), "x+": FaceBC("periodic")})
        spec = RefinementSpec((8, 8), bc=bc)
        sim = Simulation(spec, "D2Q9", "bgk", viscosity=0.2)
        sim.initialize(u=np.array([0.0, 0.03]))
        sim.run(60)
        assert sim.is_stable()
        _, u = sim.macroscopics(0)
        assert np.abs(u[1]).max() < 0.03 + 1e-12


class TestSolidForce:
    def test_zero_without_solid(self):
        spec = RefinementSpec((8, 8, 8))
        sim = Simulation(spec, "D3Q19", "bgk", viscosity=0.05)
        sim.run(2)
        assert np.allclose(solid_force(sim.engine), 0.0)

    def test_zero_in_still_fluid(self):
        spec, _ = sphere_spec()
        bc_still = DomainBC()  # all resting walls
        spec_still = RefinementSpec(spec.base_shape, spec.refine_regions,
                                    solid=spec.solid, bc=bc_still)
        sim = Simulation(spec_still, "D3Q19", "bgk", viscosity=0.05)
        sim.run(3)
        assert np.abs(solid_force(sim.engine)).max() < 1e-12

    def test_drag_points_downstream(self):
        spec, sphere = sphere_spec()
        sim = Simulation(spec, "D3Q19", "bgk", viscosity=0.02)
        sim.run(40)
        fx, fy, fz = solid_force(sim.engine)
        assert fx > 0.0                      # drag along the inlet flow
        assert abs(fy) < 0.3 * fx            # lateral symmetry
        assert abs(fz) < 0.3 * fx

    def test_drag_coefficient_plausible(self):
        spec, sphere = sphere_spec()
        sim = Simulation(spec, "D3Q19", "bgk", viscosity=0.02)
        sim.run(60)
        fx = solid_force(sim.engine)[0]
        area = np.pi * (2 * sphere.radius) ** 2  # frontal area, fine units R*2
        cd = drag_coefficient(fx, 1.0, 0.05, area)
        assert 0.1 < cd < 30.0  # moderate-Re sphere: O(1-10)

    def test_drag_coefficient_validation(self):
        with pytest.raises(ValueError):
            drag_coefficient(1.0, 1.0, 0.0, 1.0)


class TestEnergyDiagnostics:
    def test_kinetic_energy_of_uniform_flow(self):
        spec = RefinementSpec((8, 8))
        sim = Simulation(spec, "D2Q9", "bgk", viscosity=0.1)
        sim.initialize(u=np.array([0.02, 0.0]))
        e = kinetic_energy(sim.engine)
        assert e == pytest.approx(0.5 * 64 * 0.02 ** 2, rel=1e-3)

    def test_enstrophy_positive_for_shear(self):
        bc = DomainBC({"y+": FaceBC("moving", velocity=(0.05, 0.0))})
        spec = RefinementSpec((12, 12), bc=bc)
        sim = Simulation(spec, "D2Q9", "bgk", viscosity=0.1)
        sim.run(30)
        assert enstrophy_2d(sim) > 0.0

    def test_enstrophy_needs_2d(self):
        spec = RefinementSpec((6, 6, 6))
        sim = Simulation(spec, "D3Q19", "bgk", viscosity=0.1)
        with pytest.raises(ValueError):
            enstrophy_2d(sim)


class TestCheckpoint:
    def make(self):
        spec, _ = sphere_spec()
        return Simulation(spec, "D3Q19", "bgk", viscosity=0.03)

    def test_bitwise_resume(self, tmp_path):
        path = str(tmp_path / "ck.npz")
        a = self.make()
        a.run(4)
        save_checkpoint(a, path)
        a.run(3)

        b = self.make()
        restore_checkpoint(b, path)
        assert b.steps_done == 4
        b.run(3)
        for la, lb in zip(a.engine.levels, b.engine.levels):
            assert np.array_equal(la.f, lb.f)

    def test_structural_validation(self, tmp_path):
        path = str(tmp_path / "ck.npz")
        a = self.make()
        save_checkpoint(a, path)
        other = Simulation(RefinementSpec((8, 8, 8)), "D3Q19", "bgk",
                           viscosity=0.03)
        with pytest.raises(ValueError):
            restore_checkpoint(other, path)

    def test_lattice_validation(self, tmp_path):
        path = str(tmp_path / "ck.npz")
        spec = RefinementSpec((8, 8, 8))
        a = Simulation(spec, "D3Q19", "bgk", viscosity=0.03)
        save_checkpoint(a, path)
        b = Simulation(spec, "D3Q27", "bgk", viscosity=0.03)
        with pytest.raises(ValueError, match="lattice"):
            restore_checkpoint(b, path)

    def test_base_shape_validation(self, tmp_path):
        # A transposed domain has identical per-level cell counts and
        # buffer shapes, so it used to restore silently — the stored
        # base_shape must be checked, not just the derived censuses.
        path = str(tmp_path / "ck.npz")
        a = Simulation(RefinementSpec((8, 12)), "D2Q9", "bgk", viscosity=0.05)
        a.run(2)
        save_checkpoint(a, path)
        b = Simulation(RefinementSpec((12, 8)), "D2Q9", "bgk", viscosity=0.05)
        assert b.mgrid.active_per_level() == a.mgrid.active_per_level()
        with pytest.raises(ValueError, match="base shape"):
            restore_checkpoint(b, path)

    def test_restore_rebases_metrics(self, tmp_path):
        from repro.obs.metrics import run_metrics

        path = str(tmp_path / "ck.npz")
        a = self.make()
        a.run(4)
        save_checkpoint(a, path)

        b = self.make()
        restore_checkpoint(b, path)
        # The 4 restored steps happened outside this runtime's trace:
        # metrics must report 0 traced steps, not inherit steps_done.
        reg = run_metrics(b)
        assert reg["steps_total"].value == 0
        assert b.runtime.steps_base == 4
        b.run(3)
        reg = run_metrics(b)
        assert reg["steps_total"].value == 3

"""Mini-Neon runtime and dependency-graph extraction (Fig. 2, Section V-C)."""

import networkx as nx

from repro.core.fusion import FUSED_FULL, MODIFIED_BASELINE
from repro.core.simulation import Simulation
from repro.grid.geometry import wall_refinement
from repro.grid.multigrid import DomainBC, FaceBC, RefinementSpec
from repro.neon.graph import build_dependency_graph, graph_stats, schedule_waves
from repro.neon.runtime import FieldRef, KernelRecord, Runtime


def rec(name, level, reads=(), writes=()):
    return KernelRecord(name=name, level=level, n_cells=10, bytes_read=100,
                        bytes_written=100, reads=tuple(reads), writes=tuple(writes))


F0, FS0 = FieldRef("f", 0), FieldRef("fstar", 0)
F1, FS1 = FieldRef("f", 1), FieldRef("fstar", 1)


class TestRuntime:
    def test_launch_executes_and_records(self):
        rt = Runtime()
        hit = []
        rt.launch("C", 0, n_cells=5, bytes_read=10, bytes_written=20,
                  fn=lambda: hit.append(1))
        assert hit == [1]
        assert rt.launches() == 1
        assert rt.records[0].bytes_total == 30

    def test_step_marker_slicing(self):
        rt = Runtime()
        rt.launch("C", 0, n_cells=1, bytes_read=1, bytes_written=1)
        rt.step_marker()
        rt.launch("S", 0, n_cells=1, bytes_read=1, bytes_written=1)
        rt.launch("O", 0, n_cells=1, bytes_read=1, bytes_written=1)
        rt.step_marker()
        last = rt.last_step()
        assert [r.name for r in last] == ["S", "O"]

    def test_last_step_without_markers(self):
        rt = Runtime()
        rt.launch("C", 0, n_cells=1, bytes_read=1, bytes_written=1)
        assert len(rt.last_step()) == 1

    def test_summary_by_name(self):
        rt = Runtime()
        for _ in range(3):
            rt.launch("C", 0, n_cells=7, bytes_read=2, bytes_written=3)
        s = rt.summary_by_name()
        assert s["C"] == {"launches": 3, "cells": 21, "bytes": 15}

    def test_reset(self):
        rt = Runtime()
        rt.launch("C", 0, n_cells=1, bytes_read=1, bytes_written=1)
        rt.step_marker()
        rt.reset()
        assert rt.launches() == 0 and rt.markers == []


class TestDependencyGraph:
    def test_raw_edge(self):
        g = build_dependency_graph([
            rec("C", 0, reads=[F0], writes=[FS0]),
            rec("S", 0, reads=[FS0], writes=[F0]),
        ])
        assert g.has_edge(0, 1)
        assert g.number_of_edges() == 1

    def test_war_edge(self):
        g = build_dependency_graph([
            rec("S", 0, reads=[FS0], writes=[F0]),
            rec("C", 0, reads=[F0], writes=[FS0]),  # writes what 0 read
        ], reduce=False)
        assert g.has_edge(0, 1)

    def test_waw_edge(self):
        g = build_dependency_graph([
            rec("E", 1, writes=[F1]),
            rec("S", 1, writes=[F1]),
        ], reduce=False)
        assert g.has_edge(0, 1)

    def test_independent_kernels_unconnected(self):
        g = build_dependency_graph([
            rec("C", 0, reads=[F0], writes=[FS0]),
            rec("C", 1, reads=[F1], writes=[FS1]),
        ])
        assert g.number_of_edges() == 0

    def test_acyclic(self):
        sim = Simulation(RefinementSpec((16, 16), wall_refinement((16, 16), 2, [3.0])),
                         "D2Q9", "bgk", viscosity=0.05, config=MODIFIED_BASELINE)
        sim.run(2)
        g = build_dependency_graph(sim.runtime.records, reduce=False)
        assert nx.is_directed_acyclic_graph(g)

    def test_labels_follow_paper_naming(self):
        g = build_dependency_graph([rec("C", 0), rec("S", 1)])
        assert g.nodes[0]["label"] == "C0"
        assert g.nodes[1]["label"] == "S1"


class TestScheduleWaves:
    def test_chain_depth(self):
        g = build_dependency_graph([
            rec("C", 0, reads=[F0], writes=[FS0]),
            rec("S", 0, reads=[FS0], writes=[F0]),
            rec("C", 0, reads=[F0], writes=[FS0]),
        ], reduce=False)
        waves = schedule_waves(g)
        assert [len(w) for w in waves] == [1, 1, 1]

    def test_parallel_wave(self):
        g = build_dependency_graph([
            rec("C", 0, reads=[F0], writes=[FS0]),
            rec("C", 1, reads=[F1], writes=[FS1]),
            rec("S", 0, reads=[FS0, FS1], writes=[F0]),
        ], reduce=False)
        waves = schedule_waves(g)
        assert waves[0] == [0, 1]
        assert waves[1] == [2]

    def test_empty(self):
        assert schedule_waves(nx.DiGraph()) == []


class TestGraphEdgeCases:
    def test_empty_trace(self):
        g = build_dependency_graph([])
        assert g.number_of_nodes() == 0 and g.number_of_edges() == 0
        assert schedule_waves(g) == []
        assert graph_stats(g) == {"kernels": 0, "edges": 0, "depth": 0,
                                  "max_width": 0, "mean_width": 0.0}

    def test_single_kernel(self):
        g = build_dependency_graph([rec("C", 0, reads=[F0], writes=[FS0])])
        assert schedule_waves(g) == [[0]]
        stats = graph_stats(g)
        assert stats["kernels"] == 1 and stats["depth"] == 1

    def test_kernel_with_no_declared_fields_floats_free(self):
        g = build_dependency_graph([
            rec("C", 0, reads=[F0], writes=[FS0]),
            rec("N", 0),  # no declarations: depends on nothing
        ], reduce=False)
        assert g.number_of_edges() == 0
        assert schedule_waves(g) == [[0, 1]]

    def test_war_only_chain(self):
        # k0 reads A; k1 overwrites A and reads B; k2 overwrites B:
        # two WAR edges, no RAW/WAW, depth 3.
        A, B = FieldRef("a", 0), FieldRef("b", 0)
        g = build_dependency_graph([
            rec("R", 0, reads=[A]),
            rec("W", 0, reads=[B], writes=[A]),
            rec("V", 0, writes=[B]),
        ], reduce=False)
        assert g.number_of_edges() == 2
        assert all(d["dep"] == "war" for _, _, d in g.edges(data=True))
        assert schedule_waves(g) == [[0], [1], [2]]

    def test_self_access_makes_no_self_loop(self):
        g = build_dependency_graph([rec("O", 0, reads=[F0], writes=[F0])],
                                   reduce=False)
        assert g.number_of_edges() == 0


class TestIntervalRefinement:
    """Half-open interval semantics of the access-refined conflict test."""

    @staticmethod
    def _graph(span_a, span_b):
        from repro.analysis.capture import Access
        records = [rec("W", 0, writes=[F0]), rec("R", 0, reads=[F0])]
        amap = {0: [Access(F0, "write", span_a[0], span_a[1], 8)],
                1: [Access(F0, "read", span_b[0], span_b[1], 8)]}
        return build_dependency_graph(records, reduce=False, access_map=amap)

    def test_touching_half_open_intervals_do_not_conflict(self):
        # [0,5) then [5,10): row 5 is in exactly one of them
        assert self._graph((0, 5), (5, 10)).number_of_edges() == 0
        assert self._graph((5, 10), (0, 5)).number_of_edges() == 0

    def test_one_row_overlap_conflicts(self):
        assert self._graph((0, 6), (5, 10)).number_of_edges() == 1

    def test_identical_single_row_conflicts(self):
        assert self._graph((5, 6), (5, 6)).number_of_edges() == 1

    def test_empty_interval_never_conflicts(self):
        assert self._graph((5, 5), (0, 10)).number_of_edges() == 0

    def test_exact_entry_sets_refine_overlapping_envelopes(self):
        # interleaved scatter patches: same bounding interval, disjoint
        # entries — must not conflict; sharing one entry must
        from repro.analysis.static import StaticAccess

        def graph(e0, e1):
            records = [rec("W", 0, writes=[F0]), rec("V", 0, writes=[F0])]
            amap = {0: [StaticAccess(F0, "write", 0, 10, 8,
                                     entries=frozenset(e0))],
                    1: [StaticAccess(F0, "write", 0, 10, 8,
                                     entries=frozenset(e1))]}
            return build_dependency_graph(records, reduce=False,
                                          access_map=amap)

        assert graph({0, 2, 4}, {1, 3, 5}).number_of_edges() == 0
        assert graph({0, 2, 4}, {1, 4, 5}).number_of_edges() == 1


class TestDegenerateSchedules:
    """stream_assignment / graph_stats on empty, single and serial graphs."""

    def test_empty_stream(self):
        from repro.neon.graph import stream_assignment
        g = build_dependency_graph([])
        assert stream_assignment(g) == {}
        assert graph_stats(g)["mean_width"] == 0.0

    def test_single_kernel(self):
        from repro.neon.graph import stream_assignment
        g = build_dependency_graph([rec("C", 0, reads=[F0], writes=[FS0])])
        assert stream_assignment(g) == {0: (0, 0)}
        stats = graph_stats(g)
        assert stats == {"kernels": 1, "edges": 0, "depth": 1,
                         "max_width": 1, "mean_width": 1.0}

    def test_fully_serial_chain(self):
        from repro.neon.graph import stream_assignment
        n = 6
        records = []
        for k in range(n):
            records.append(rec("C" if k % 2 == 0 else "S", 0,
                               reads=[F0 if k % 2 == 0 else FS0],
                               writes=[FS0 if k % 2 == 0 else F0]))
        g = build_dependency_graph(records, reduce=False)
        assign = stream_assignment(g)
        # every kernel alone in its wave, always on stream 0
        assert assign == {k: (k, 0) for k in range(n)}
        stats = graph_stats(g)
        assert stats["depth"] == n
        assert stats["max_width"] == 1 and stats["mean_width"] == 1.0

    def test_all_independent_single_wave(self):
        from repro.neon.graph import stream_assignment
        records = [rec("C", lv, reads=[FieldRef("f", lv)],
                       writes=[FieldRef("fstar", lv)]) for lv in range(4)]
        g = build_dependency_graph(records, reduce=False)
        assign = stream_assignment(g)
        assert assign == {k: (0, k) for k in range(4)}
        assert graph_stats(g)["max_width"] == 4


class TestGoldenKernelCounts:
    """Pin the Fig. 2 per-coarse-step launch counts (~3x reduction)."""

    SPEC = dict(base=(24, 24), levels=3, widths=[7.0, 2.0])

    def last_step(self, config):
        bc = DomainBC({"y+": FaceBC("moving", velocity=(0.05, 0.0))})
        spec = RefinementSpec(self.SPEC["base"],
                              wall_refinement(self.SPEC["base"],
                                              self.SPEC["levels"],
                                              self.SPEC["widths"]), bc=bc)
        sim = Simulation(spec, "D2Q9", "bgk", viscosity=0.05, config=config)
        sim.run(2)
        return sim.runtime.last_step()

    def counts(self, config):
        from collections import Counter
        return Counter(f"{r.name}{r.level}" for r in self.last_step(config))

    def test_modified_baseline_composition(self):
        assert self.counts(MODIFIED_BASELINE) == {
            "C0": 1, "S0": 1, "O0": 1,
            "C1": 2, "A1": 2, "E1": 2, "S1": 2, "O1": 2,
            "C2": 4, "A2": 4, "E2": 4, "S2": 4,
        }

    def test_fused_full_composition(self):
        assert self.counts(FUSED_FULL) == {
            "C0": 1, "SO0": 1,
            "CA1": 2, "SEO1": 2,
            "CASE2": 4,
        }

    def test_fig2_reduction_is_29_to_10(self):
        n_base = sum(self.counts(MODIFIED_BASELINE).values())
        n_ours = sum(self.counts(FUSED_FULL).values())
        assert (n_base, n_ours) == (29, 10)


class TestStepGraphs:
    def make(self, config):
        bc = DomainBC({"y+": FaceBC("moving", velocity=(0.05, 0.0))})
        spec = RefinementSpec((24, 24), wall_refinement((24, 24), 3, [7.0, 2.0]),
                              bc=bc)
        sim = Simulation(spec, "D2Q9", "bgk", viscosity=0.05, config=config)
        sim.run(2)
        return build_dependency_graph(sim.runtime.last_step(), reduce=False)

    def test_fig2_kernel_ratio(self):
        sb = graph_stats(self.make(MODIFIED_BASELINE))
        so = graph_stats(self.make(FUSED_FULL))
        assert 2.5 <= sb["kernels"] / so["kernels"] <= 3.5

    def test_fused_graph_is_shallower(self):
        sb = graph_stats(self.make(MODIFIED_BASELINE))
        so = graph_stats(self.make(FUSED_FULL))
        assert so["depth"] < sb["depth"]

    def test_baseline_has_concurrency_to_exploit(self):
        sb = graph_stats(self.make(MODIFIED_BASELINE))
        assert sb["max_width"] >= 2

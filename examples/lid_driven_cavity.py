#!/usr/bin/env python
"""Lid-driven cavity with Ghia validation (paper Figs. 6 and 7).

Runs the nonuniform cavity at Re = 100, saves velocity-magnitude slices
at a few iterations (the Fig.-6 snapshots) and compares the centerline
velocity profiles against Ghia, Ghia & Shin (1982) — the Fig.-7
validation.  The default is a fast 2-D run; pass ``--three-d`` for the
paper's 3-D configuration (slower) and ``--resolution/--steps`` to refine.

Run:  python examples/lid_driven_cavity.py [--three-d] [--resolution 24]
"""

import argparse
import os

import numpy as np

from repro import Simulation
from repro.bench.workloads import lid_cavity
from repro.io.sampling import centerline_profile, plane_slice, save_snapshot
from repro.io.tables import print_table
from repro.validation import GHIA_RE100_U, GHIA_RE100_V, interp_profile


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--resolution", type=int, default=24,
                    help="coarse cells across the cavity (finest = 4x)")
    ap.add_argument("--levels", type=int, default=3)
    ap.add_argument("--steps", type=int, default=1500,
                    help="coarse time steps (increase for tighter profiles)")
    ap.add_argument("--three-d", action="store_true",
                    help="run the 3-D cavity of the paper (slower)")
    ap.add_argument("--outdir", default="cavity_output")
    args = ap.parse_args()

    d = 3 if args.three_d else 2
    base = (args.resolution,) * d
    lid = 0.1
    wl = lid_cavity(base=base, num_levels=args.levels, reynolds=100.0,
                    lid_speed=lid, lattice="D3Q19" if args.three_d else "D2Q9")
    sim = Simulation.from_config(wl.spec, wl.sim_config())
    print(f"cavity: {d}-D, {args.levels} levels, finest {wl.finest_shape()}, "
          f"Re=100, active voxels {sim.mgrid.active_per_level()}")

    os.makedirs(args.outdir, exist_ok=True)
    snapshots = [args.steps // 8, args.steps // 2, args.steps]
    done = 0
    for target in snapshots:
        sim.run(target - done)
        done = target
        _, speed = plane_slice(sim, axis=d - 1, position=0.5)
        path = os.path.join(args.outdir, f"cavity_iter{target}.npz")
        save_snapshot(sim, path)
        print(f"iter {target}: max|u|/u_lid = {speed.max() / lid:.3f}  "
              f"stable={sim.is_stable()}  -> {path}")

    # Fig.-7 probes: u(y) on the vertical centerline, v(x) on the horizontal.
    vert_axis = d - 1          # the lid moves along +x, lid face on last axis
    y, u = centerline_profile(sim, axis=vert_axis, component=0)
    x, v = centerline_profile(sim, axis=0, component=vert_axis)

    ug = interp_profile(GHIA_RE100_U[:, 0], y, u / lid)
    vg = interp_profile(GHIA_RE100_V[:, 0], x, v / lid)
    rows_u = [[f"{yy:.4f}", float(sim_u), float(ref)]
              for yy, sim_u, ref in zip(GHIA_RE100_U[:, 0], ug, GHIA_RE100_U[:, 1])]
    print_table(["y", "u/u_lid (ours)", "u/u_lid (Ghia)"], rows_u,
                title="\nFig. 7 left: u-profile on the vertical centerline",
                floatfmt="{:.4f}")
    rows_v = [[f"{xx:.4f}", float(sim_v), float(ref)]
              for xx, sim_v, ref in zip(GHIA_RE100_V[:, 0], vg, GHIA_RE100_V[:, 1])]
    print_table(["x", "v/u_lid (ours)", "v/u_lid (Ghia)"], rows_v,
                title="\nFig. 7 right: v-profile on the horizontal centerline",
                floatfmt="{:.4f}")
    err_u = np.abs(ug - GHIA_RE100_U[:, 1]).max()
    err_v = np.abs(vg - GHIA_RE100_V[:, 1]).max()
    print(f"\nmax deviation from Ghia: u {err_u:.4f}, v {err_v:.4f} "
          f"(paper reports 'well-aligned' curves)")
    np.savez(os.path.join(args.outdir, "ghia_profiles.npz"),
             y=y, u=u / lid, x=x, v=v / lid,
             ghia_u=GHIA_RE100_U, ghia_v=GHIA_RE100_V)


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""The Fig.-1 capability experiment: an airplane in a 1596x840x840 tunnel.

The headline of the paper: grid refinement makes a domain of
1596x840x840 (finest-level resolution) simulatable on a single 40 GB
A100, while the best uniform-grid layout (single-buffer AA method) tops
out around 794^3.  This example

1. evaluates the full-size memory footprint analytically (Monte-Carlo
   voxel counts over the airplane proxy's refinement shells),
2. compares against the uniform AA-method bound, and
3. runs a small functional instance of the same workload end-to-end.

The paper's aircraft mesh is proprietary; an ellipsoid-composed proxy with
the same role (slender body, thin refinement shells) substitutes for it —
see DESIGN.md for the substitution rationale.

Run:  python examples/airplane_capability.py
"""


from repro import Simulation
from repro.bench.workloads import airplane_geometry, airplane_tunnel
from repro.gpu.device import A100_40GB
from repro.gpu.memory import (mc_level_counts, refined_memory_bytes,
                              uniform_aa_max_cube, uniform_memory_bytes)
from repro.io.tables import print_table

FINEST = (1596, 840, 840)
LEVELS = 4

# -- 1. full-size memory analysis -----------------------------------------------
base, plane, widths = airplane_geometry(finest_shape=FINEST, scale=1.0,
                                        num_levels=LEVELS)
counts = mc_level_counts(plane, base, widths, samples=500_000)
rows = [[f"level {lv}", f"{n / 1e6:.2f}M"]
        for lv, n in enumerate(counts["owned"])]
print_table(["Grid level (0 = coarsest)", "Active voxels"], rows,
            title=f"Refined {FINEST[0]}x{FINEST[1]}x{FINEST[2]} tunnel, "
                  f"{LEVELS} levels")

rep = refined_memory_bytes(counts, q=27, itemsize=8, scheme="optimized")
print(f"\nrefined footprint (D3Q27, double, two buffers): "
      f"{rep.total / 1e9:.1f} GB  -> fits A100-40GB: {rep.fits(A100_40GB)}")

uniform = uniform_memory_bytes(FINEST, q=27, itemsize=8, buffers=1)
print(f"uniform AA-method at the same finest resolution: "
      f"{uniform / 1e9:.0f} GB  -> fits: {uniform <= A100_40GB.capacity_bytes}")
print(f"largest uniform AA cube on 40 GB (D3Q19/fp32, paper's bound): "
      f"{uniform_aa_max_cube(A100_40GB, 19, 4)}^3  (paper: ~794^3)")

# -- 2. small functional instance of the same workload ----------------------------
print("\nrunning a scaled functional instance (scale = 0.06) ...")
wl = airplane_tunnel(finest_shape=FINEST, scale=0.06, num_levels=3)
sim = Simulation.from_config(wl.spec, wl.sim_config())
print(f"base {wl.spec.base_shape}, active voxels {sim.mgrid.active_per_level()}")
sim.run(8)
print(f"8 coarse steps: stable={sim.is_stable()}, "
      f"max|u|/u_in={sim.max_velocity() / wl.char_velocity:.2f}, "
      f"{sim.wallclock_mlups():.2f} wall-clock MLUPS")

#!/usr/bin/env python
"""Quickstart: a 3-level lid-driven cavity on the public API.

Builds the nonuniform grid of the paper's Fig. 6 (refinement hugging all
walls), runs the fully fused algorithm (Fig. 4f), and reports wall-clock
MLUPS plus the kernel-launch savings over the baseline schedule.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (FUSED_FULL, MODIFIED_BASELINE, DomainBC, FaceBC,
                   RefinementSpec, SimConfig, Simulation, wall_refinement)

# -- 1. describe the domain ---------------------------------------------------
# A 24^3 coarse box, refined twice near the walls: the finest level spans
# 96 voxels across the cavity.
base = (24, 24, 24)
spec = RefinementSpec(
    base_shape=base,
    refine_regions=wall_refinement(base, num_levels=3, widths=[5.0, 1.75]),
    bc=DomainBC({"z+": FaceBC("moving", velocity=(0.06, 0.0, 0.0))}),
)

# -- 2. build and run the simulation ------------------------------------------
nu = 0.06 * base[0] / 100.0  # Re = u_lid * L / nu = 100
cfg = SimConfig(lattice="D3Q19", collision="bgk", viscosity=nu,
                fusion=FUSED_FULL)
sim = Simulation.from_config(spec, cfg)
print(f"levels: {sim.num_levels}, active voxels per level: "
      f"{sim.mgrid.active_per_level()}")

sim.run(20)
print(f"20 coarse steps in {sim.elapsed:.2f}s "
      f"-> {sim.wallclock_mlups():.2f} MLUPS (NumPy wall-clock)")
print(f"stable: {sim.is_stable()}, max |u|: {sim.max_velocity():.4f}")

# -- 3. inspect the flow --------------------------------------------------------
rho, u = sim.macroscopics(sim.num_levels - 1)
print(f"finest level: {rho.size} cells, "
      f"mean density {rho.mean():.6f}, max speed {np.sqrt((u*u).sum(0)).max():.4f}")

# -- 4. what did fusion buy? ---------------------------------------------------
base_sim = Simulation.from_config(spec, cfg.replace(fusion=MODIFIED_BASELINE))
base_sim.run(1)
sim.runtime.reset()
sim.run(1)
print(f"kernel launches per coarse step: baseline "
      f"{base_sim.runtime.launches()} vs fused {sim.runtime.launches()} "
      f"({base_sim.runtime.launches() / sim.runtime.launches():.1f}x fewer)")

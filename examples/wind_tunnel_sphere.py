#!/usr/bin/env python
"""Flow over a sphere in a virtual wind tunnel (paper Fig. 8 / Table I).

Three refinement levels focus resolution around a sphere at Re = 4000
using the entropic KBC collision model on D3Q27 — the paper's turbulent
configuration.  The domain is a scaled-down instance of Table I's
272x192x272 tunnel (full size needs a 40 GB GPU; pass ``--scale`` to grow
it).  Prints flow evolution snapshots and then compares the modified
baseline (Fig. 4b) against the fully fused implementation (Fig. 4f), both
functionally (identical physics) and on the A100 cost model.

Run:  python examples/wind_tunnel_sphere.py [--scale 0.125] [--steps 30]
"""

import argparse

import numpy as np

from repro import FUSED_FULL, MODIFIED_BASELINE, Simulation, drag_coefficient, solid_force
from repro.bench.harness import full_scale_mlups, measure
from repro.bench.workloads import TABLE1_DISTRIBUTIONS, sphere_tunnel
from repro.io.sampling import plane_slice
from repro.io.tables import print_table


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--scale", type=float, default=0.125,
                    help="fraction of the Table-I 272x192x272 tunnel")
    ap.add_argument("--steps", type=int, default=30)
    args = ap.parse_args()

    wl = sphere_tunnel(scale=args.scale)
    sim = Simulation.from_config(wl.spec, wl.sim_config(fusion=FUSED_FULL))
    print(f"tunnel {wl.spec.base_shape} (coarse), 3 levels, "
          f"active voxels {sim.mgrid.active_per_level()}, "
          f"KBC/D3Q27, Re={wl.reynolds:g}")

    # -- flow evolution (the Fig.-8 snapshots) -------------------------------
    thirds = [args.steps // 3, 2 * args.steps // 3, args.steps]
    done = 0
    for t in thirds:
        sim.run(t - done)
        done = t
        _, speed = plane_slice(sim, axis=2, position=0.5)
        fx = solid_force(sim.engine)[0]
        radius_fine = 0.11 * min(wl.spec.base_shape[1:]) * 4  # finest units
        cd = drag_coefficient(fx, 1.0, wl.char_velocity,
                              np.pi * radius_fine ** 2)
        print(f"iter {t:4d}: max|u|/u_in = "
              f"{np.nanmax(speed) / wl.char_velocity:.2f}, "  # NaN = solid cells
              f"drag C_d = {cd:.2f}, stable={sim.is_stable()}")

    # -- baseline vs ours (Table I, scaled + extrapolated) ---------------------
    print("\nmeasuring both schedules on this instance...")
    mb = measure(wl, MODIFIED_BASELINE, steps=3)
    mo = measure(wl, FUSED_FULL, steps=3)
    print(f"identical physics, different schedules: baseline "
          f"{mb.kernels_per_step:.0f} kernels/step vs ours "
          f"{mo.kernels_per_step:.0f}")

    rows = []
    for size, dist in zip(("272x192x272", "544x384x544", "816x576x816"),
                          TABLE1_DISTRIBUTIONS):
        fb, _ = full_scale_mlups(mb, list(dist))
        fo, _ = full_scale_mlups(mo, list(dist))
        rows.append([size, fb, fo, fo / fb])
    print_table(["Size", "Baseline (MLUPS)", "Ours (MLUPS)", "Speedup"], rows,
                title="\nTable I on the A100 cost model "
                      "(paper: 483/1082 x2.20, 1116/1646 x1.48, 1300/1805 x1.39)")


if __name__ == "__main__":
    main()

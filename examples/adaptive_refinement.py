#!/usr/bin/env python
"""Adaptive mesh refinement following a travelling vortex pair.

The paper's closing future-work item (Section VII): "Adaptive Mesh
Refinement (AMR) for LBM, enabling dynamic grid resolution adjustments
during runtime".  This example demonstrates the capability built on top
of the static multi-resolution machinery:

1. a Taylor-Green-like vortex field is advected across a periodic box by
   a mean flow;
2. every ``--interval`` coarse steps the vorticity sensor flags the
   cells that need the finest resolution;
3. ``regrid`` legalises the indicator into nested octree regions,
   rebuilds the grid and transfers the solution conservatively.

Watch the fine-level bounding box follow the vortices downstream.

Run:  python examples/adaptive_refinement.py [--steps 120] [--interval 30]
"""

import argparse

import numpy as np

from repro import (DomainBC, FaceBC, RefinementSpec, SimConfig, Simulation,
                   regrid, vorticity_indicator)
from repro.validation.analytic import taylor_green_2d


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--size", type=int, default=48, help="coarse box edge")
    ap.add_argument("--steps", type=int, default=120)
    ap.add_argument("--interval", type=int, default=30,
                    help="coarse steps between regrids")
    args = ap.parse_args()

    L = args.size
    bc = DomainBC({f: FaceBC("periodic") for f in ("x-", "x+", "y-", "y+")})
    nu, u0, drift = 0.02, 0.03, 0.04

    # initial refinement around the initial vortex position
    region = np.zeros((L, L), dtype=bool)
    region[2:L // 3, 2:L // 3] = True
    spec = RefinementSpec((L, L), [region], bc=bc)
    sim = Simulation.from_config(spec, SimConfig(lattice="D2Q9", viscosity=nu))

    def initial_u(centers):
        # one vortex quarter-wavelength cell, plus a uniform drift along +x
        local = taylor_green_2d(centers * 3.0, 0.0, nu, u0, (L, L))
        window = np.exp(-(((centers[:, 0] - L / 6) ** 2
                           + (centers[:, 1] - L / 6) ** 2) / (L / 8) ** 2))
        u = local * window
        u[0] += drift
        return u

    sim.initialize(u=initial_u)
    print(f"periodic {L}x{L} box, drift {drift}, regrid every {args.interval} steps")

    done = 0
    while done < args.steps:
        n = min(args.interval, args.steps - done)
        sim.run(n)
        done += n
        pos = sim.positions(1)
        center = pos.mean(axis=0) / 2.0  # fine coords -> coarse units
        ind = vorticity_indicator(sim, fraction=0.3)
        print(f"step {done:4d}: fine cells {pos.shape[0]:5d}, "
              f"fine-region centroid ({center[0]:5.1f}, {center[1]:5.1f}), "
              f"flagged {ind.sum():5d} finest cells, stable={sim.is_stable()}")
        if done < args.steps:
            sim = regrid(sim, desired_finest=ind)

    print("\nThe centroid drifts with the mean flow: the refinement follows "
          "the vortices, which is exactly the AMR capability the paper "
          "lists as future work.")


if __name__ == "__main__":
    main()

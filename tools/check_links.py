#!/usr/bin/env python
"""Internal markdown link checker (stdlib only) — part of `make docs-check`.

Walks every tracked ``*.md`` file in the repository, extracts inline
markdown links ``[text](target)``, and verifies the *internal* ones:

* relative file links must resolve to an existing file or directory;
* ``#fragment`` anchors (same-file or ``file.md#fragment``) must match
  a heading in the target document, using GitHub's slug rules
  (lowercase, punctuation stripped, spaces to hyphens, duplicate slugs
  suffixed ``-1``, ``-2``, …).

External links (``http(s)://``, ``mailto:``) are skipped — this gate
must pass offline and never flake on someone else's server.  Exit
status is non-zero iff any internal link is broken; every problem is
printed as ``file:line: message``.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
from collections import Counter

#: Inline links; images share the syntax bar the leading ``!``.
_LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^()\s]+(?:\([^()]*\))?)\)")
_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_CODE_FENCE_RE = re.compile(r"^(```|~~~)")
#: Markup stripped from heading text before slugging (emphasis, code).
_MD_MARKUP_RE = re.compile(r"[*_`]|\[([^\]]*)\]\([^)]*\)")
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading (ASCII approximation)."""
    text = _MD_MARKUP_RE.sub(lambda m: m.group(1) or "", heading).strip().lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def heading_anchors(path: pathlib.Path) -> set[str]:
    """All anchor slugs a markdown file exposes (fenced code excluded)."""
    slugs: Counter[str] = Counter()
    out: set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _CODE_FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = _HEADING_RE.match(line)
        if not m:
            continue
        slug = github_slug(m.group(2))
        n = slugs[slug]
        slugs[slug] += 1
        out.add(slug if n == 0 else f"{slug}-{n}")
    return out


def iter_links(path: pathlib.Path):
    """Yield ``(lineno, target)`` for every inline link, skipping code fences."""
    in_fence = False
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        if _CODE_FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in _LINK_RE.finditer(line):
            yield lineno, m.group(1)


def check_file(path: pathlib.Path, root: pathlib.Path,
               anchor_cache: dict[pathlib.Path, set[str]]) -> list[str]:
    """All broken-internal-link findings for one markdown file."""
    problems: list[str] = []
    rel = path.relative_to(root)
    for lineno, target in iter_links(path):
        if target.startswith(_EXTERNAL):
            continue
        base, _, fragment = target.partition("#")
        if base:
            dest = (root / base if base.startswith("/")
                    else path.parent / base).resolve()
            if not dest.exists():
                problems.append(f"{rel}:{lineno}: broken link: {target} "
                                f"({base} does not exist)")
                continue
        else:
            dest = path.resolve()
        if fragment and dest.suffix == ".md" and dest.is_file():
            if dest not in anchor_cache:
                anchor_cache[dest] = heading_anchors(dest)
            if fragment.lower() not in anchor_cache[dest]:
                problems.append(f"{rel}:{lineno}: broken anchor: {target} "
                                f"(no heading #{fragment})")
    return problems


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="python tools/check_links.py",
        description="Verify internal markdown links and anchors resolve.")
    parser.add_argument("--root", default=None,
                        help="repository root (default: this script's parent)")
    args = parser.parse_args(argv)
    root = pathlib.Path(args.root).resolve() if args.root \
        else pathlib.Path(__file__).resolve().parent.parent
    md_files = sorted(
        p for p in root.rglob("*.md")
        if not any(part.startswith(".") or part in ("node_modules", "build")
                   for part in p.relative_to(root).parts))
    anchor_cache: dict[pathlib.Path, set[str]] = {}
    problems: list[str] = []
    for path in md_files:
        problems.extend(check_file(path, root, anchor_cache))
    for p in problems:
        print(p)
    print(f"checked {len(md_files)} markdown files: "
          f"{len(problems)} broken internal link(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-threaded test-compiled test-mp lint lint-strict docs-check analysis static-check threaded-check obs report bench-smoke bench-check resilience-check serve-check check

test:
	$(PYTHON) -m pytest -x -q

# Same tier-1 suite, but every Simulation defaults to the deferred
# threaded wave executor (bit-identical by contract).
test-threaded:
	REPRO_THREADED=1 $(PYTHON) -m pytest -x -q

# Same tier-1 suite under the compiled step-plan backend (bit-identical
# by contract; hooks that need per-launch dispatch fall back visibly).
test-compiled:
	REPRO_BACKEND=compiled $(PYTHON) -m pytest -x -q

# Spawn-mode smoke: a focused tier-1 subset executed through the
# process-parallel mp backend (ambient $REPRO_BACKEND selection).  Every
# stepping simulation spawns its own worker pool, so the *full* suite
# under mp would be pathological; the dedicated suite plus the
# facade/physics subsets cover the contract.
test-mp:
	REPRO_BACKEND=mp $(PYTHON) -m pytest -x -q tests/test_mp_backend.py \
		tests/test_simulation.py tests/test_fusion_equivalence.py

# ruff and mypy are optional dev tools (pip install -e ".[lint]").
# Skipping when absent is deliberate: the guard only bypasses the tool
# lookup, never a real lint failure.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed -- skipping (pip install -e '.[lint]')"; \
	fi
	@if command -v mypy >/dev/null 2>&1; then \
		mypy; \
	else \
		echo "mypy not installed -- skipping (pip install -e '.[lint]')"; \
	fi

# CI variant of `lint`: the tools are mandatory.  CI installs them
# unconditionally (pip install -e ".[lint]"), so a missing tool there is
# an environment bug, not something to skip over.
lint-strict:
	@command -v ruff >/dev/null 2>&1 || { echo "lint-strict: ruff not installed"; exit 1; }
	@command -v mypy >/dev/null 2>&1 || { echo "lint-strict: mypy not installed"; exit 1; }
	ruff check src tests benchmarks examples
	mypy

# Documentation gate: pydocstyle D rules on the public API surface of
# repro.backend / repro.neon (scoped in pyproject.toml) plus the
# internal markdown link/anchor checker.  Like `lint`, a missing ruff
# is skipped locally; CI installs it and so enforces both halves.
docs-check:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src/repro/backend src/repro/neon; \
	else \
		echo "ruff not installed -- skipping docstring lint (pip install -e '.[lint]')"; \
	fi
	$(PYTHON) tools/check_links.py

analysis:
	$(PYTHON) -m repro analysis --all-configs

# Declaration-only gate: symbolic access sets, fusion-legality proofs,
# lint pass, step-plan certificates, static ⊇ dynamic cross-check and
# the seeded-illegal negative control.
static-check:
	$(PYTHON) -m repro analysis --static --all-configs --cert-dir certificates

# Race-gate every config's captured schedule AND verify the threaded
# wave executor reproduces serial results bit-for-bit.
threaded-check:
	$(PYTHON) -m repro analysis --all-configs --threaded

# Telemetry smoke: trace + metrics artifacts for the Fig. 2 golden cavity.
obs:
	$(PYTHON) -m repro obs --workload cavity2d --config case --out-dir obs-artifacts
	$(PYTHON) -m repro obs --workload cavity2d --config baseline --out-dir obs-artifacts

# Observatory run report: trace + metrics + roofline + lint + certificate
# digest + event log for the Fig. 2 golden cavity, text/HTML/JSON.
report:
	$(PYTHON) -m repro report --workload cavity2d --config case \
		--out-dir report-artifacts

# Quick benchmark pass that appends to BENCH_HISTORY.jsonl: one small
# measurement per direction-setting config (pytest-benchmark not needed).
bench-smoke:
	$(PYTHON) -m repro bench --out-dir $${BENCH_OUT_DIR:-.}

# The regression gate over the appended trajectory.  Lenient by default:
# warnings (< 5x) inform, hard regressions (>= 5x) fail the target.
bench-check: bench-smoke
	$(PYTHON) -m repro history --check

# Fault matrix: inject NaN / kernel / OOM faults into every fusion
# config, serial and threaded, and require bit-identical recovery plus
# visible telemetry (retries_total, rollback events).  Exit status gates.
resilience-check:
	$(PYTHON) -m repro resilience --out-dir resilience-artifacts

# Job-server gate: a chaos-flooded multi-tenant demo (exit code fails on
# any lost job) plus the focused fairness / restart-resume / chaos tests.
serve-check:
	$(PYTHON) -m repro serve --jobs 12 --tenants 3 --workers 2 \
		--chaos 0.3 --seed 1 --out-dir serve-artifacts
	$(PYTHON) -m repro serve --summary --out-dir serve-artifacts
	$(PYTHON) -m pytest -x -q tests/test_serve.py -k "fair or resume or chaos"

check: lint docs-check test test-threaded test-compiled test-mp threaded-check static-check resilience-check serve-check report bench-check

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint analysis check

test:
	$(PYTHON) -m pytest -x -q

# ruff and mypy are optional dev tools (pip install -e ".[lint]").
# Skipping when absent is deliberate: the guard only bypasses the tool
# lookup, never a real lint failure.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed -- skipping (pip install -e '.[lint]')"; \
	fi
	@if command -v mypy >/dev/null 2>&1; then \
		mypy; \
	else \
		echo "mypy not installed -- skipping (pip install -e '.[lint]')"; \
	fi

analysis:
	$(PYTHON) -m repro.analysis --all-configs

check: lint test analysis
